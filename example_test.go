package predabs_test

import (
	"fmt"

	"predabs"
)

// ExampleProgram_Abstract runs C2bp on a two-line program and prints the
// abstraction of the assignment.
func ExampleProgram_Abstract() {
	prog, err := predabs.Load(`
void f(int x) {
  x = x + 1;
}
`)
	if err != nil {
		panic(err)
	}
	bprog, err := prog.Abstract("f:\n  x > 0", predabs.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Print(bprog.Text())
	// Output:
	// void f({x > 0}) begin
	//   {x > 0} := choose({x > 0}, false); // x = x + 1;
	//  __exit:
	//   return;
	// end
}

// ExampleCheckResult_InvariantAt model checks an abstraction and queries
// the invariant Bebop computed at a label.
func ExampleCheckResult_InvariantAt() {
	prog, err := predabs.Load(`
void f(int x) {
  assume(x > 0);
  while (x > 1) {
    x = x - 1;
  }
L: assert(x > 0);
}
`)
	if err != nil {
		panic(err)
	}
	bprog, err := prog.Abstract("f:\n  x > 0, x > 1", predabs.DefaultOptions())
	if err != nil {
		panic(err)
	}
	res, err := bprog.Check("f")
	if err != nil {
		panic(err)
	}
	inv, err := res.InvariantAt("f", "L")
	if err != nil {
		panic(err)
	}
	fmt.Println(inv)
	_, _, bad := res.ErrorReachable()
	fmt.Println("assert can fail:", bad)
	// Output:
	// {x > 0} & !{x > 1}
	// assert can fail: false
}

// ExampleVerifySpec runs the full SLAM loop on a locking property.
func ExampleVerifySpec() {
	src := `
void lock(void) { }
void unlock(void) { }
void main(int n) {
  lock();
  if (n > 0) {
    unlock();
    lock();
  }
  unlock();
}
`
	spec := `
state { int held = 0; }
event lock entry { if (held == 1) { abort; } held = 1; }
event unlock entry { if (held == 0) { abort; } held = 0; }
`
	res, err := predabs.VerifySpec(src, spec, "main", predabs.DefaultVerifyConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Outcome)
	// Output:
	// verified
}
