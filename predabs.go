// Package predabs is a from-scratch reproduction of "Automatic Predicate
// Abstraction of C Programs" (Ball, Majumdar, Millstein, Rajamani; PLDI
// 2001): the C2bp predicate-abstraction tool, the Bebop boolean-program
// model checker, the Newton predicate-discovery step, and the SLAM
// counterexample-guided abstraction refinement loop that ties them
// together.
//
// The package operates on MiniC, a C subset with integers, structs,
// pointers, arrays (under the paper's logical memory model) and
// procedures. Three entry points cover the paper's workflows:
//
//   - Load + Program.Abstract: run C2bp, producing a boolean program
//     (paper Sections 2-5);
//   - BooleanProgram.Check: run Bebop reachability, yielding
//     per-statement invariants and assertion results (Section 2.2);
//   - Verify / VerifySpec: the full SLAM loop for temporal safety
//     properties, with automatic predicate discovery (Section 6.1).
package predabs

import (
	"context"
	"fmt"
	"time"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/checkpoint"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/newton"
	"predabs/internal/prover"
	"predabs/internal/slam"
	"predabs/internal/trace"
)

// Version identifies the toolkit build. It feeds the checkpoint
// compatibility hash, so bump it whenever a change alters what any tool
// computes — a stale journal must never warm-start a newer binary.
// 0.5: incremental prover sessions and the model-enumeration engine.
const Version = "0.5"

// Options re-exports the C2bp precision/efficiency knobs (Section 5.2).
type Options = abstract.Options

// Abstraction engine names for Options.Engine / the -abs-engine flag.
// EngineCubes (also the meaning of an empty Engine) is the paper's
// per-cube prover query search; EngineModels computes the same F_V by
// enumerating prover models of the weakest-precondition query and
// classifying cubes by membership. Both emit byte-identical boolean
// programs on non-degraded runs; see DESIGN.md for the tradeoff.
const (
	EngineCubes  = abstract.EngineCubes
	EngineModels = abstract.EngineModels
)

// ValidEngine reports whether s names a known abstraction engine ("",
// meaning the default cube engine, is valid).
func ValidEngine(s string) bool { return abstract.ValidEngine(s) }

// Limits re-exports the resource limits every pipeline stage honours:
// whole-run wall clock, per-prover-query timeout, per-procedure cube
// budget, and Bebop's BDD node ceiling. Hitting any limit weakens the
// result soundly instead of aborting; zero values are unlimited.
type Limits = budget.Limits

// DegradeEvent re-exports one recorded sound weakening: the stage and
// limit that triggered it, with a repeat count.
type DegradeEvent = budget.Event

// DefaultOptions returns the paper's standard configuration: cube length
// limit 3, cone of influence, syntactic heuristics, skip-unchanged, and
// enforce invariants all enabled.
func DefaultOptions() Options { return abstract.DefaultOptions() }

// Program is a parsed, type-checked MiniC program in the paper's simple
// intermediate form, with points-to information attached.
type Program struct {
	norm  *cnorm.Result
	alias *alias.Analysis

	parseTime time.Duration
	aliasTime time.Duration
}

// LoadStats reports the wall time of the frontend stages run by Load:
// parsing/type checking/normalization, and the points-to analysis.
func (p *Program) LoadStats() (parse, aliasAnalysis time.Duration) {
	return p.parseTime, p.aliasTime
}

// Load parses, type checks and normalizes MiniC source, then runs the
// flow-insensitive points-to analysis.
func Load(src string) (*Program, error) {
	start := time.Now()
	parsed, err := cparse.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("predabs: parse: %w", err)
	}
	info, err := ctype.Check(parsed)
	if err != nil {
		return nil, fmt.Errorf("predabs: type check: %w", err)
	}
	norm, err := cnorm.Normalize(info)
	if err != nil {
		return nil, fmt.Errorf("predabs: normalize: %w", err)
	}
	parseTime := time.Since(start)
	aliasStart := time.Now()
	aa := alias.Analyze(norm)
	return &Program{
		norm: norm, alias: aa,
		parseTime: parseTime, aliasTime: time.Since(aliasStart),
	}, nil
}

// LoadGhostAliasing loads like Load, but entry-point parameters are NOT
// assumed to alias each other or the heap reachable from other
// parameters. This reproduces the paper's auxiliary-variable idiom
// (Figure 3's h "chosen non-deterministically to point at any element of
// the list"): h and hnext act as ghost observers whose cells the list
// mutations do not touch. The mode is unsound as a general alias
// treatment — use it only for ghost-style observer parameters; see the
// Figure 3 discussion in EXPERIMENTS.md.
func LoadGhostAliasing(src string) (*Program, error) {
	start := time.Now()
	parsed, err := cparse.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("predabs: parse: %w", err)
	}
	info, err := ctype.Check(parsed)
	if err != nil {
		return nil, fmt.Errorf("predabs: type check: %w", err)
	}
	norm, err := cnorm.Normalize(info)
	if err != nil {
		return nil, fmt.Errorf("predabs: normalize: %w", err)
	}
	parseTime := time.Since(start)
	aliasStart := time.Now()
	aa := alias.AnalyzeOpts(norm, alias.Options{OpenCallers: false})
	return &Program{
		norm: norm, alias: aa,
		parseTime: parseTime, aliasTime: time.Since(aliasStart),
	}, nil
}

// StageTime is a named wall-time measurement (per-procedure abstraction
// times in AbstractStats).
type StageTime struct {
	Name string
	D    time.Duration
}

// AbstractStats reports the cost of one abstraction run: the columns of
// the paper's Tables 1 and 2, plus the per-stage timings and prover
// cache behaviour behind the -stats flag of cmd/c2bp.
type AbstractStats struct {
	// ProverCalls is the number of theorem-prover queries.
	ProverCalls int
	// CacheHits counts prover queries answered from the memo cache
	// (the paper's optimization 5).
	CacheHits int
	// CacheMisses counts prover queries that reached the decision
	// procedures (ProverCalls - CacheHits).
	CacheMisses int
	// ProverGaveUp counts queries abandoned on resource caps.
	ProverGaveUp int
	// ProverTimeouts counts queries abandoned on the per-query deadline
	// (a subset of ProverGaveUp; their verdicts are not cached).
	ProverTimeouts int
	// CubesChecked counts cube implication candidates examined.
	CubesChecked int
	// CubeRounds counts prover-backed cube-search rounds (one per cube
	// size that produced candidates).
	CubeRounds int
	// Predicates is the number of input predicates.
	Predicates int

	// ProverSessions counts incremental prover sessions opened by the
	// model-enumeration engine (zero under the default cube engine).
	ProverSessions int
	// SessionChecks counts incremental session checks; ProverCalls +
	// SessionChecks is the run's total query count, the number to use
	// when comparing engines.
	SessionChecks int
	// ModelsExtracted counts models returned by session checks.
	ModelsExtracted int
	// BlockingClauses counts blocking-clause assertions — the model
	// enumeration's loop iterations.
	BlockingClauses int

	// ParseTime covers parsing, type checking and normalization (from
	// Load).
	ParseTime time.Duration
	// AliasTime covers the points-to analysis (from Load).
	AliasTime time.Duration
	// SignatureTime covers the signature pass (Section 4.5.2).
	SignatureTime time.Duration
	// AbstractTime covers the whole abstraction run.
	AbstractTime time.Duration
	// CubeSearchTime is the portion of AbstractTime spent in the
	// prover-backed cube search F_V/G_V (the paper's dominant cost).
	CubeSearchTime time.Duration
	// SolverTime is the wall time inside the decision procedures,
	// summed across cube-search workers (can exceed AbstractTime when
	// Options.Jobs > 1).
	SolverTime time.Duration
	// ProcTimes lists the abstraction wall time of each procedure.
	ProcTimes []StageTime
	// ProcCubes lists each procedure's cube-search rounds and candidate
	// cubes, in program order.
	ProcCubes []ProcCubeStat

	// DegradedProcs lists procedures whose cube search was truncated by
	// a resource limit: their statements are soundly weaker than the
	// most precise abstraction.
	DegradedProcs []string
	// Degradations lists every sound weakening taken under a resource
	// limit during this run.
	Degradations []DegradeEvent
}

// ProcCubeStat re-exports the per-procedure cube-search counters.
type ProcCubeStat = abstract.ProcCubeStat

// BooleanProgram is the result of predicate abstraction: BP(P, E).
type BooleanProgram struct {
	prog  *bp.Program
	stats AbstractStats
}

// Abstract runs C2bp on the program with the given predicate input file
// (sections "procname: e1, e2, ..." and optionally "global: ...").
// Opts.Jobs controls the cube-search worker pool; the output is
// byte-identical for every value.
func (p *Program) Abstract(predicates string, opts Options) (*BooleanProgram, error) {
	return p.AbstractCtx(context.Background(), predicates, opts, Limits{})
}

// AbstractCtx is Abstract under a cancellation context and resource
// limits. Hitting a limit (or the context's deadline) truncates the cube
// search, which weakens the emitted boolean program but keeps it a sound
// abstraction; the truncations appear in Stats().Degradations. The
// truncated output is still byte-identical for every Opts.Jobs value.
func (p *Program) AbstractCtx(ctx context.Context, predicates string, opts Options, lim Limits) (*BooleanProgram, error) {
	return p.AbstractCheckpointed(ctx, predicates, opts, lim, nil)
}

// AbstractCheckpointed is AbstractCtx with a durable checkpoint
// attached: the prover's memo cache warm-starts from the journal's
// replayed snapshot, and on success one iteration record (predicates,
// signatures, cache spill) plus a final record are committed — so a
// later c2bp (or slam) run over the same inputs skips straight to cache
// hits. A nil manager behaves exactly like AbstractCtx. Persistence
// errors are reported via ckpt.Err(), never by failing the abstraction.
func (p *Program) AbstractCheckpointed(ctx context.Context, predicates string, opts Options, lim Limits, ckpt *checkpoint.Manager) (*BooleanProgram, error) {
	sections, err := cparse.ParsePredFile(predicates)
	if err != nil {
		return nil, fmt.Errorf("predabs: predicates: %w", err)
	}
	if lim.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.RunTimeout)
		defer cancel()
	}
	bt := budget.New(ctx, lim, opts.Tracer)
	opts.Budget = bt
	if lim.CubeBudget > 0 {
		opts.CubeBudget = lim.CubeBudget
	}
	pv := prover.New()
	pv.Trace = opts.Tracer
	pv.QueryTimeout = lim.QueryTimeout
	pv.Budget = bt
	if snap := ckpt.Snapshot(); snap != nil {
		restoreSpan := opts.Tracer.Begin("checkpoint", "restore")
		pv.ImportCache(snap.Cache)
		restoreSpan.End(trace.Int("iteration", snap.Iter),
			trace.Int("cache_entries", len(snap.Cache)))
	}
	start := time.Now()
	res, err := abstract.Abstract(p.norm, p.alias, pv, sections, opts)
	if err != nil {
		return nil, fmt.Errorf("predabs: abstraction: %w", err)
	}
	abstractTime := time.Since(start)
	if ckpt != nil && !ckpt.ReadOnly() {
		commitSpan := opts.Tracer.Begin("checkpoint", "commit")
		rec := checkpoint.IterationRecord{Iter: 1, Cache: pv.ExportCache()}
		for _, sec := range sections {
			rec.Pool = append(rec.Pool, checkpoint.ScopePreds{
				Scope: sec.Name, Preds: append([]string{}, sec.Texts...)})
		}
		var procOrder []string
		for _, f := range p.norm.Prog.Funcs {
			procOrder = append(procOrder, f.Name)
		}
		rec.Sigs = abstract.SignatureRecords(res.Sigs, procOrder)
		rec.Counters = checkpoint.Counters{ProverCalls: pv.Calls(), CacheHits: pv.CacheHits()}
		ckpt.AppendIteration(rec)
		ckpt.AppendFinal("abstracted", "")
		commitSpan.End(trace.Int("n", 1), trace.Int("cache_entries", len(rec.Cache)))
	}
	n := 0
	for _, sec := range sections {
		n += len(sec.Exprs)
	}
	procTimes := make([]StageTime, len(res.Stats.ProcTimes))
	for i, pt := range res.Stats.ProcTimes {
		procTimes[i] = StageTime{Name: pt.Name, D: pt.D}
	}
	return &BooleanProgram{
		prog: res.BP,
		stats: AbstractStats{
			ProverCalls:     pv.Calls(),
			CacheHits:       pv.CacheHits(),
			CacheMisses:     pv.Calls() + pv.SessionChecks() - pv.CacheHits(),
			ProverGaveUp:    pv.GaveUp(),
			ProverTimeouts:  pv.Timeouts(),
			CubesChecked:    res.Stats.CubesChecked,
			CubeRounds:      res.Stats.CubeRounds,
			Predicates:      n,
			ProverSessions:  pv.Sessions(),
			SessionChecks:   pv.SessionChecks(),
			ModelsExtracted: pv.ModelsExtracted(),
			BlockingClauses: pv.BlockingClauses(),
			ParseTime:      p.parseTime,
			AliasTime:      p.aliasTime,
			SignatureTime:  res.Stats.SignatureTime,
			AbstractTime:   abstractTime,
			CubeSearchTime: res.Stats.CubeSearchTime,
			SolverTime:     pv.SolverTime(),
			ProcTimes:      procTimes,
			ProcCubes:      append([]ProcCubeStat{}, res.Stats.ProcCubes...),
			DegradedProcs:  append([]string{}, res.Stats.DegradedProcs...),
			Degradations:   bt.Events(),
		},
	}, nil
}

// Degraded reports whether any resource limit truncated this
// abstraction; the program is then soundly weaker than the most precise
// BP(P, E).
func (b *BooleanProgram) Degraded() bool { return len(b.stats.Degradations) > 0 }

// Text renders the boolean program in its surface syntax (parseable by
// ParseBooleanProgram and the bebop command).
func (b *BooleanProgram) Text() string { return bp.Print(b.prog) }

// Stats returns the abstraction cost metrics.
func (b *BooleanProgram) Stats() AbstractStats { return b.stats }

// ParseBooleanProgram parses boolean-program surface syntax, for use with
// Check (the standalone Bebop workflow).
func ParseBooleanProgram(src string) (*BooleanProgram, error) {
	prog, err := bp.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("predabs: boolean program: %w", err)
	}
	return &BooleanProgram{prog: prog}, nil
}

// CheckResult is the outcome of Bebop reachability analysis.
type CheckResult struct {
	checker *bebop.Checker
	entry   string
	budget  *budget.Tracker
}

// Degraded reports whether a resource limit truncated the fixpoint, and
// which limit. A degraded, failure-free check proves nothing (the
// explored state set under-approximates reachability); a failure found
// by a degraded check is still a genuine abstract failure.
func (r *CheckResult) Degraded() (reason string, degraded bool) {
	return r.checker.DegradeReason, r.checker.Degraded
}

// Degradations lists the sound truncations this check recorded.
func (r *CheckResult) Degradations() []DegradeEvent { return r.budget.Events() }

// Check runs the Bebop model checker from the entry procedure.
func (b *BooleanProgram) Check(entry string) (*CheckResult, error) {
	return b.CheckTraced(entry, nil)
}

// CheckTraced is Check with a structured-event tracer attached (nil
// behaves exactly like Check).
func (b *BooleanProgram) CheckTraced(entry string, tr *trace.Tracer) (*CheckResult, error) {
	return b.CheckCtx(context.Background(), entry, tr, Limits{})
}

// CheckCtx is CheckTraced under a cancellation context and resource
// limits (the BDD node ceiling and the wall clock apply here). A
// truncated fixpoint UNDER-approximates the abstraction's reachable
// states: failures it finds are genuine abstract failures, but a
// failure-free degraded run proves nothing — check Degraded before
// trusting a clean answer.
func (b *BooleanProgram) CheckCtx(ctx context.Context, entry string, tr *trace.Tracer, lim Limits) (*CheckResult, error) {
	if lim.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.RunTimeout)
		defer cancel()
	}
	bt := budget.New(ctx, lim, tr)
	ch, err := bebop.CheckLimited(b.prog, entry, tr, bebop.Limits{Budget: bt, MaxBDDNodes: lim.BDDMaxNodes})
	if err != nil {
		return nil, fmt.Errorf("predabs: bebop: %w", err)
	}
	return &CheckResult{checker: ch, entry: entry, budget: bt}, nil
}

// CheckStats reports the model checker's cost: worklist iterations to
// the interprocedural fixpoint (total and split per procedure) and the
// fixpoint wall time.
type CheckStats struct {
	Iterations   int
	FixpointTime time.Duration
	// IterationsByProc counts worklist items per procedure.
	IterationsByProc map[string]int
}

// Stats returns the Bebop cost metrics for this check.
func (r *CheckResult) Stats() CheckStats {
	byProc := map[string]int{}
	for p, n := range r.checker.IterationsByProc {
		byProc[p] = n
	}
	return CheckStats{
		Iterations:       r.checker.Iterations,
		FixpointTime:     r.checker.FixpointTime,
		IterationsByProc: byProc,
	}
}

// ErrorReachable reports whether some assert can fail, and where.
func (r *CheckResult) ErrorReachable() (proc string, stmt int, reachable bool) {
	f, bad := r.checker.ErrorReachable()
	return f.Proc, f.Stmt, bad
}

// InvariantAt returns the reachable-state invariant at a labelled
// statement, rendered as a disjunction of cubes over the boolean
// variables (Section 2.2's output format).
func (r *CheckResult) InvariantAt(proc, label string) (string, error) {
	idx, ok := r.checker.StmtAtLabel(proc, label)
	if !ok {
		return "", fmt.Errorf("predabs: no label %q in %q", label, proc)
	}
	return r.checker.InvariantString(proc, idx), nil
}

// InvariantHolds reports whether the boolean-program expression holds in
// every reachable state at the labelled statement.
func (r *CheckResult) InvariantHolds(proc, label, expr string) (bool, error) {
	idx, ok := r.checker.StmtAtLabel(proc, label)
	if !ok {
		return false, fmt.Errorf("predabs: no label %q in %q", label, proc)
	}
	cond, err := bp.ParseExpr(expr)
	if err != nil {
		return false, fmt.Errorf("predabs: expression: %w", err)
	}
	return r.checker.HoldsAt(proc, idx, cond), nil
}

// LabelledInvariants renders "proc:label: invariant" lines for every
// labelled statement in the program (the paper's invariant-detection
// use case).
func (r *CheckResult) LabelledInvariants() []string {
	return r.checker.LabelledInvariants()
}

// ErrorTrace renders a counterexample trace for the first reachable
// assertion violation as human-readable lines.
func (r *CheckResult) ErrorTrace() ([]string, bool) {
	f, bad := r.checker.ErrorReachable()
	if !bad {
		return nil, false
	}
	steps, ok := r.checker.Trace(r.entry, f)
	if !ok {
		return nil, false
	}
	out := make([]string, 0, len(steps))
	for _, s := range steps {
		line := fmt.Sprintf("%s:%d  %s", s.Proc, s.Stmt, bp.StmtString(s.BP))
		if s.BP.Comment != "" {
			line += "   // " + s.BP.Comment
		}
		out = append(out, line)
	}
	return out, true
}

// Outcome re-exports the SLAM verdicts.
type Outcome = slam.Outcome

// SLAM outcomes.
const (
	Verified   = slam.Verified
	ErrorFound = slam.ErrorFound
	Unknown    = slam.Unknown
)

// VerifyResult re-exports the SLAM result.
type VerifyResult = slam.Result

// VerifyConfig re-exports the SLAM configuration.
type VerifyConfig = slam.Config

// DefaultVerifyConfig returns the standard CEGAR configuration.
func DefaultVerifyConfig() VerifyConfig { return slam.DefaultConfig() }

// StageError re-exports the stage-attributed pipeline failure: Verify
// and VerifySpec convert a panicking stage (frontend, abstract, bebop,
// newton) into one of these instead of crashing the process.
type StageError = slam.StageError

// Verify checks that no assert in the MiniC source can fail, running the
// full SLAM abstract-check-refine loop from the entry procedure.
func Verify(src, entry string, cfg VerifyConfig) (*VerifyResult, error) {
	return slam.Verify(src, entry, cfg)
}

// VerifyCtx is Verify under a cancellation context: when ctx is
// cancelled or cfg.Limits.RunTimeout elapses, the loop retreats soundly
// to Unknown with partial results (see VerifyResult.LimitName,
// Degradations and PartialInvariants) instead of hanging.
func VerifyCtx(ctx context.Context, src, entry string, cfg VerifyConfig) (*VerifyResult, error) {
	return slam.VerifyCtx(ctx, src, entry, cfg)
}

// VerifySpec checks a SLIC-style temporal-safety specification against
// the program (see package spec for the specification syntax).
func VerifySpec(src, specSrc, entry string, cfg VerifyConfig) (*VerifyResult, error) {
	return slam.VerifySpec(src, specSrc, entry, cfg)
}

// VerifySpecCtx is VerifySpec under a cancellation context; see
// VerifyCtx.
func VerifySpecCtx(ctx context.Context, src, specSrc, entry string, cfg VerifyConfig) (*VerifyResult, error) {
	return slam.VerifySpecCtx(ctx, src, specSrc, entry, cfg)
}

// PathFeasibility runs Newton alone on the first counterexample of the
// abstraction built from the given predicates; exposed for tooling and
// tests.
func (p *Program) PathFeasibility(predicates, entry string) (feasible bool, newPreds map[string][]string, err error) {
	bprog, err := p.Abstract(predicates, DefaultOptions())
	if err != nil {
		return false, nil, err
	}
	ch, err := bebop.Check(bprog.prog, entry)
	if err != nil {
		return false, nil, err
	}
	f, bad := ch.ErrorReachable()
	if !bad {
		return false, nil, fmt.Errorf("predabs: no counterexample to analyze")
	}
	trace, ok := ch.Trace(entry, f)
	if !ok {
		return false, nil, fmt.Errorf("predabs: trace extraction failed")
	}
	nres, err := newton.Analyze(p.norm, p.alias, prover.New(), trace)
	if err != nil {
		return false, nil, err
	}
	return nres.Feasible, nres.NewPreds, nil
}
