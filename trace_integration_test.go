package predabs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"

	"predabs/internal/trace"
)

// The locking example from the paper's motivating discussion: the second
// AcquireLock drives the CEGAR loop through one refinement (harvesting
// {locked == 1}) before the real double-acquire shows up.
const lockBadSrc = `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  AcquireLock();
}
`

const lockSpecSrc = `
state { int locked = 0; }
event AcquireLock entry { if (locked == 1) { abort; } locked = 1; }
event ReleaseLock entry { if (locked == 0) { abort; } locked = 0; }
`

// runTracedSlam runs the lock example through the full SLAM pipeline with
// a tracer attached, returning the result, the finished tracer and the
// JSONL it wrote.
func runTracedSlam(t *testing.T, jobs int) (*VerifyResult, *trace.Tracer, *bytes.Buffer) {
	t.Helper()
	var buf bytes.Buffer
	tr := trace.New(trace.Config{JSONL: &buf})
	cfg := DefaultVerifyConfig()
	cfg.Opts.Jobs = jobs
	cfg.Tracer = tr
	res, err := VerifySpec(lockBadSrc, lockSpecSrc, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr, &buf
}

// normalizeTraceEvents strips the timing data (ts, dur, *_ns fields) from
// a JSONL event stream and renders each event as one deterministic line,
// so the stream can be pinned against a golden file.
func normalizeTraceEvents(t *testing.T, jsonl []byte) string {
	t.Helper()
	dec := json.NewDecoder(bytes.NewReader(jsonl))
	dec.UseNumber()
	var b strings.Builder
	for dec.More() {
		var ev struct {
			Type   string         `json:"type"`
			Cat    string         `json:"cat"`
			Name   string         `json:"name"`
			TS     json.Number    `json:"ts"`
			Dur    json.Number    `json:"dur"`
			Tid    json.Number    `json:"tid"`
			Fields map[string]any `json:"fields"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("decode trace line: %v", err)
		}
		fmt.Fprintf(&b, "%s %s/%s", ev.Type, ev.Cat, ev.Name)
		if ev.Tid != "" {
			fmt.Fprintf(&b, " tid=%s", ev.Tid)
		}
		keys := make([]string, 0, len(ev.Fields))
		for k := range ev.Fields {
			if strings.HasSuffix(k, "_ns") {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%v", k, ev.Fields[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func compareGolden(t *testing.T, got, path string) {
	t.Helper()
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1 go test -run %s)", err, t.Name())
	}
	if got != string(want) {
		t.Errorf("output changed; regenerate with UPDATE_GOLDEN=1 go test -run %s\n--- got ---\n%s\n--- want ---\n%s",
			t.Name(), got, want)
	}
}

// TestSlamTraceJSONLGolden pins the structured event stream of a full
// SLAM run: every line must pass the schema validator, and the
// timing-stripped event sequence (categories, names and counter fields)
// is compared against a golden file. Jobs=1 keeps the stream fully
// deterministic.
func TestSlamTraceJSONLGolden(t *testing.T) {
	_, _, buf := runTracedSlam(t, 1)
	if n, err := trace.Validate(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("schema validation failed after %d lines: %v", n, err)
	} else if n == 0 {
		t.Fatal("no trace events emitted")
	}
	compareGolden(t, normalizeTraceEvents(t, buf.Bytes()), "testdata/slam_lock_trace_events.golden")
}

var (
	durRE = regexp.MustCompile(`\d+(\.\d+)?(ns|µs|ms|s)\b`)
	padRE = regexp.MustCompile(` +DUR`)
)

// maskDurations replaces every rendered wall time with "DUR" and
// collapses the column padding in front of it (right-aligned duration
// strings pad differently run to run).
func maskDurations(text string) string {
	return padRE.ReplaceAllString(durRE.ReplaceAllString(text, "DUR"), " DUR")
}

// TestSlamReportTextGolden pins the deterministic head of the -report
// text (outcome, counters, stage and procedure tables, bebop and newton
// rollups) with every wall time masked. The latency histogram and
// top-query list are timing-dependent, so only their presence is
// asserted.
func TestSlamReportTextGolden(t *testing.T) {
	_, tr, _ := runTracedSlam(t, 1)
	text := tr.Report().Text()
	for _, section := range []string{"prover latency histogram:", "most expensive prover queries:"} {
		if !strings.Contains(text, section) {
			t.Errorf("report missing section %q:\n%s", section, text)
		}
	}
	head := text
	if i := strings.Index(text, "prover latency histogram:"); i >= 0 {
		head = text[:i]
	}
	compareGolden(t, sortCostSections(maskDurations(head)), "testdata/slam_lock_report.golden")
}

// sortCostSections reorders the per-procedure lines of the report's
// "procedures (abstraction cost)" section alphabetically: the report
// sorts them by wall time, which is not deterministic across runs.
func sortCostSections(text string) string {
	lines := strings.Split(text, "\n")
	start := -1
	for i, l := range lines {
		if strings.HasPrefix(l, "procedures (") {
			start = i + 1
			continue
		}
		if start >= 0 && !strings.HasPrefix(l, "  ") {
			sort.Strings(lines[start:i])
			start = -1
		}
	}
	return strings.Join(lines, "\n")
}

// reportAggregates is the subset of the report that must not depend on
// the cube-search worker count: every counter, but no wall time, no
// cache split (workers race on first computation of shared queries) and
// no event total (worker-lane spans scale with the pool size).
type reportAggregates struct {
	Outcome               string
	Iterations            int
	Predicates            int
	ProverCalls           int
	CubeRounds            int
	CubesChecked          int
	Procs                 []ProcCubeStat
	BebopIterations       int
	BebopIterationsByProc map[string]int
	MaxWorklist           int
	MaxBDDNodes           int
	NewtonRounds          []trace.NewtonRound
}

func aggregatesOf(rep *trace.Report) reportAggregates {
	a := reportAggregates{
		Outcome:               rep.Outcome,
		Iterations:            rep.Iterations,
		Predicates:            rep.Predicates,
		ProverCalls:           rep.ProverCalls,
		CubeRounds:            rep.CubeRounds,
		CubesChecked:          rep.CubesChecked,
		BebopIterations:       rep.BebopIterations,
		BebopIterationsByProc: rep.BebopIterationsByProc,
		MaxWorklist:           rep.MaxWorklist,
		MaxBDDNodes:           rep.MaxBDDNodes,
		NewtonRounds:          rep.NewtonRounds,
	}
	for _, p := range rep.Procs {
		a.Procs = append(a.Procs, ProcCubeStat{Name: p.Name, Rounds: p.Rounds, Cubes: p.Cubes})
	}
	return a
}

// TestReportAggregateDeterminism asserts the report aggregates are
// identical for a sequential and an 8-worker cube search: scheduling may
// reshuffle event timing and the cache hit/miss split, but never the
// counters the paper's tables are built from.
func TestReportAggregateDeterminism(t *testing.T) {
	runs := map[int]reportAggregates{}
	for _, jobs := range []int{1, 8} {
		_, tr, _ := runTracedSlam(t, jobs)
		runs[jobs] = aggregatesOf(tr.Report())
	}
	if !reflect.DeepEqual(runs[1], runs[8]) {
		t.Errorf("report aggregates differ between -j 1 and -j 8:\n--- j=1 ---\n%+v\n--- j=8 ---\n%+v",
			runs[1], runs[8])
	}
}

// TestReportTotalsMatchStats cross-checks the two bookkeeping paths: the
// counters aggregated from the event stream must equal the ones the
// facade reports through AbstractStats / CheckStats — for both
// abstraction engines (the models sub-run also pins the session
// counters, which the cube engine must leave at zero).
func TestReportTotalsMatchStats(t *testing.T) {
	var bprog *BooleanProgram
	for _, engine := range []string{EngineCubes, EngineModels} {
		t.Run(engine, func(t *testing.T) {
			tr := trace.New(trace.Config{})
			prog, err := Load(partitionSrc)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.Jobs = 1
			opts.Engine = engine
			opts.Tracer = tr
			bprog, err = prog.Abstract(partitionPreds, opts)
			if err != nil {
				t.Fatal(err)
			}
			s := bprog.Stats()
			rep := tr.Report()
			for _, c := range []struct {
				name      string
				rep, stat int
			}{
				{"prover calls", rep.ProverCalls, s.ProverCalls},
				{"cache hits", rep.CacheHits, s.CacheHits},
				{"cache misses", rep.CacheMisses, s.CacheMisses},
				{"gave up", rep.ProverGaveUp, s.ProverGaveUp},
				{"cubes checked", rep.CubesChecked, s.CubesChecked},
				{"cube rounds", rep.CubeRounds, s.CubeRounds},
				{"predicates", rep.Predicates, s.Predicates},
				{"sessions", rep.Sessions, s.ProverSessions},
				{"session checks", rep.SessionChecks, s.SessionChecks},
				{"models extracted", rep.ModelsExtracted, s.ModelsExtracted},
			} {
				if c.rep != c.stat {
					t.Errorf("%s: report %d != stats %d", c.name, c.rep, c.stat)
				}
			}
			switch engine {
			case EngineCubes:
				if s.ProverSessions != 0 || s.SessionChecks != 0 || s.ModelsExtracted != 0 || s.BlockingClauses != 0 {
					t.Errorf("cube engine reported session activity: %+v", s)
				}
			case EngineModels:
				if s.ProverSessions == 0 {
					t.Error("models engine opened no sessions on partition")
				}
				// Every extracted model is answered with exactly one
				// blocking clause.
				if s.BlockingClauses != s.ModelsExtracted {
					t.Errorf("blocking clauses %d != models extracted %d",
						s.BlockingClauses, s.ModelsExtracted)
				}
			}
			var repProcs []ProcCubeStat
			for _, p := range rep.Procs {
				repProcs = append(repProcs, ProcCubeStat{Name: p.Name, Rounds: p.Rounds, Cubes: p.Cubes})
			}
			if !reflect.DeepEqual(repProcs, s.ProcCubes) {
				t.Errorf("per-proc cube stats: report %+v != stats %+v", repProcs, s.ProcCubes)
			}
		})
	}

	tr2 := trace.New(trace.Config{})
	chk, err := bprog.CheckTraced("partition", tr2)
	if err != nil {
		t.Fatal(err)
	}
	cs := chk.Stats()
	rep2 := tr2.Report()
	if rep2.BebopIterations != cs.Iterations {
		t.Errorf("bebop iterations: report %d != stats %d", rep2.BebopIterations, cs.Iterations)
	}
	if !reflect.DeepEqual(rep2.BebopIterationsByProc, cs.IterationsByProc) {
		t.Errorf("bebop iterations by proc: report %v != stats %v", rep2.BebopIterationsByProc, cs.IterationsByProc)
	}
}

// TestSlamResultMatchesReport asserts the slam Result totals agree with
// the trace aggregation for the same run.
func TestSlamResultMatchesReport(t *testing.T) {
	res, tr, _ := runTracedSlam(t, 1)
	rep := tr.Report()
	if rep.Outcome != res.Outcome.String() {
		t.Errorf("outcome: report %q != result %q", rep.Outcome, res.Outcome)
	}
	if rep.Iterations != res.Iterations {
		t.Errorf("iterations: report %d != result %d", rep.Iterations, res.Iterations)
	}
	if rep.ProverCalls != res.ProverCalls {
		t.Errorf("prover calls: report %d != result %d", rep.ProverCalls, res.ProverCalls)
	}
	if rep.BebopIterations != res.CheckIterations {
		t.Errorf("bebop iterations: report %d != result %d", rep.BebopIterations, res.CheckIterations)
	}
	if !reflect.DeepEqual(rep.BebopIterationsByProc, res.CheckIterationsByProc) {
		t.Errorf("bebop iterations by proc: report %v != result %v", rep.BebopIterationsByProc, res.CheckIterationsByProc)
	}
}

// TestExplainAnnotatedTrace exercises the source-level rendering of a
// counterexample: locations, branch annotations and predicate valuations.
func TestExplainAnnotatedTrace(t *testing.T) {
	res, _, _ := runTracedSlam(t, 1)
	if res.Outcome != ErrorFound {
		t.Fatalf("outcome %v, want error-found", res.Outcome)
	}
	lines := res.Explain("bad.c")
	if len(lines) == 0 {
		t.Fatal("Explain returned no lines")
	}
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{
		"in main:",
		"in AcquireLock:",
		"bad.c:",
		"[then branch taken]",
		"{locked == 1}=true",
	} {
		if !strings.Contains(joined, frag) {
			t.Errorf("Explain output missing %q:\n%s", frag, joined)
		}
	}
	// A verified run has no trace to explain.
	var empty *VerifyResult = &VerifyResult{}
	if got := empty.Explain("x.c"); got != nil {
		t.Errorf("Explain on empty trace = %v, want nil", got)
	}
}
