package predabs

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (Section 6). Each benchmark prints the paper's row format
// ("program  lines  predicates  thm-prover-calls  runtime") through the
// standard metrics: predicates/op, proverCalls/op and ns/op; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/cnorm"
	"predabs/internal/corpus"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/form"
	"predabs/internal/prover"
	"predabs/internal/slam"
)

// abstractOnce runs the frontend and C2bp on one corpus program,
// returning (#predicates, prover calls).
func abstractOnce(b *testing.B, p corpus.Program, opts abstract.Options) (int, int) {
	b.Helper()
	prog, err := cparse.Parse(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		b.Fatal(err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		b.Fatal(err)
	}
	aa := alias.AnalyzeOpts(res, alias.Options{OpenCallers: !p.GhostAliasing})
	pv := prover.New()
	secs, err := cparse.ParsePredFile(p.Preds)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := abstract.Abstract(res, aa, pv, secs, opts); err != nil {
		b.Fatal(err)
	}
	n := 0
	for _, s := range secs {
		n += len(s.Exprs)
	}
	return n, pv.Calls()
}

// BenchmarkTable1 reproduces Table 1: the device drivers run through the
// SLAM toolkit (C2bp dominating the cost), checking the locking and IRP
// disciplines. The paper's columns are lines, predicates, theorem prover
// calls and runtime; the SLAM loop discovers the predicates itself.
func BenchmarkTable1(b *testing.B) {
	for _, p := range corpus.Drivers() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var preds, calls, iters int
			var outcome slam.Outcome
			for i := 0; i < b.N; i++ {
				cfg := slam.DefaultConfig()
				cfg.MaxIterations = 30
				res, err := slam.VerifySpec(p.Source, p.Spec, p.Entry, cfg)
				if err != nil {
					b.Fatal(err)
				}
				preds, calls, iters = res.PredCount, res.ProverCalls, res.Iterations
				outcome = res.Outcome
			}
			want := slam.Verified
			if p.ExpectError {
				want = slam.ErrorFound
			}
			if outcome != want {
				b.Fatalf("%s: outcome %s, want %s", p.Name, outcome, want)
			}
			b.ReportMetric(float64(p.Lines()), "lines")
			b.ReportMetric(float64(preds), "predicates")
			b.ReportMetric(float64(calls), "proverCalls")
			b.ReportMetric(float64(iters), "cegarIters")
			if b.N == 1 {
				fmt.Printf("  [table1] %-10s lines=%-4d predicates=%-3d prover-calls=%-6d outcome=%s\n",
					p.Name, p.Lines(), preds, calls, outcome)
			}
		})
	}
}

// BenchmarkTable2 reproduces Table 2: the array- and heap-intensive
// programs run through C2bp with the paper-style predicate input files.
// The shape to check against the paper: reverse is the expensive subject
// (every pair of node pointers may alias), the others stay cheap thanks
// to the cone-of-influence heuristics.
func BenchmarkTable2(b *testing.B) {
	for _, p := range corpus.Table2() {
		p := p
		b.Run(p.Name, func(b *testing.B) {
			var preds, calls int
			for i := 0; i < b.N; i++ {
				preds, calls = abstractOnce(b, p, abstract.DefaultOptions())
			}
			b.ReportMetric(float64(p.Lines()), "lines")
			b.ReportMetric(float64(preds), "predicates")
			b.ReportMetric(float64(calls), "proverCalls")
			if b.N == 1 {
				fmt.Printf("  [table2] %-10s lines=%-4d predicates=%-3d prover-calls=%-6d\n",
					p.Name, p.Lines(), preds, calls)
			}
		})
	}
}

// BenchmarkFigure1_Partition regenerates Figure 1(b): the boolean program
// of the list partition example, plus the Section 2.2 Bebop invariant at
// label L.
func BenchmarkFigure1_Partition(b *testing.B) {
	p, _ := corpus.ByName("partition")
	for i := 0; i < b.N; i++ {
		prog, err := Load(p.Source)
		if err != nil {
			b.Fatal(err)
		}
		bprog, err := prog.Abstract(p.Preds, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := bprog.Check("partition")
		if err != nil {
			b.Fatal(err)
		}
		inv, err := res.InvariantAt("partition", "L")
		if err != nil {
			b.Fatal(err)
		}
		if inv == "false" {
			b.Fatal("L unreachable")
		}
	}
}

// fooBarSrc is the paper's Figure 2 input.
const fooBarSrc = `
int bar(int* q, int y) {
  int l1, l2;
  l1 = y;
  l2 = y - 1;
  if (*q <= y) { l1 = *q; }
  return l1;
}

void foo(int* p, int x) {
  int r;
  if (*p <= x) {
    *p = x;
  } else {
    *p = *p + x;
  }
  r = bar(p, x);
}
`

const fooBarPreds = `
bar:
  y >= 0, *q <= y, y == l1, y > l2
foo:
  *p <= 0, x == 0, r == 0
`

// BenchmarkFigure2_FooBar regenerates Figure 2's interprocedural
// abstraction: signatures E_f/E_r for bar and the call translation in foo.
func BenchmarkFigure2_FooBar(b *testing.B) {
	var calls int
	for i := 0; i < b.N; i++ {
		prog, err := Load(fooBarSrc)
		if err != nil {
			b.Fatal(err)
		}
		bprog, err := prog.Abstract(fooBarPreds, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		calls = bprog.Stats().ProverCalls
	}
	b.ReportMetric(float64(calls), "proverCalls")
}

// BenchmarkFigure3_Mark regenerates the Figure 3 experiment: abstract the
// mark (reverse) procedure with the seven paper predicates and verify the
// heap-shape preservation h->next == hnext with Bebop.
func BenchmarkFigure3_Mark(b *testing.B) {
	p, _ := corpus.ByName("reverse")
	var calls int
	for i := 0; i < b.N; i++ {
		prog, err := LoadGhostAliasing(p.Source)
		if err != nil {
			b.Fatal(err)
		}
		bprog, err := prog.Abstract(p.Preds, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		res, err := bprog.Check("mark")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, bad := res.ErrorReachable(); bad {
			b.Fatal("shape property violated")
		}
		calls = bprog.Stats().ProverCalls
	}
	b.ReportMetric(float64(calls), "proverCalls")
}

// --- Ablations for the Section 5.2 design choices ---

func ablationRun(b *testing.B, name string, opts abstract.Options) {
	p, _ := corpus.ByName(name)
	var calls int
	for i := 0; i < b.N; i++ {
		_, calls = abstractOnce(b, p, opts)
	}
	b.ReportMetric(float64(calls), "proverCalls")
}

// BenchmarkAblationCubeLength sweeps the max cube length k: the paper
// reports k=3 provides the needed precision; larger k costs more prover
// calls for no gain on these subjects.
func BenchmarkAblationCubeLength(b *testing.B) {
	for _, k := range []int{1, 2, 3, 0} {
		k := k
		name := fmt.Sprintf("k=%d", k)
		if k == 0 {
			name = "k=unlimited"
		}
		b.Run(name, func(b *testing.B) {
			opts := abstract.DefaultOptions()
			opts.MaxCubeLen = k
			ablationRun(b, "partition", opts)
		})
	}
}

// BenchmarkAblationCone toggles the cone-of-influence optimization on the
// reverse example — the subject where the paper notes the heuristics
// could not avoid the exponential blowup, and on kmp where they help.
func BenchmarkAblationCone(b *testing.B) {
	for _, sub := range []string{"kmp", "partition"} {
		for _, on := range []bool{true, false} {
			sub, on := sub, on
			name := fmt.Sprintf("%s/cone=%v", sub, on)
			b.Run(name, func(b *testing.B) {
				opts := abstract.DefaultOptions()
				opts.ConeOfInfluence = on
				ablationRun(b, sub, opts)
			})
		}
	}
}

// BenchmarkAblationCache toggles prover result caching (optimization 5).
func BenchmarkAblationCache(b *testing.B) {
	p, _ := corpus.ByName("partition")
	for _, on := range []bool{true, false} {
		on := on
		b.Run(fmt.Sprintf("cache=%v", on), func(b *testing.B) {
			var hits int
			for i := 0; i < b.N; i++ {
				prog, err := cparse.Parse(p.Source)
				if err != nil {
					b.Fatal(err)
				}
				info, _ := ctype.Check(prog)
				res, _ := cnorm.Normalize(info)
				aa := alias.Analyze(res)
				pv := prover.New()
				pv.DisableCache = !on
				secs, _ := cparse.ParsePredFile(p.Preds)
				if _, err := abstract.Abstract(res, aa, pv, secs, abstract.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
				hits = pv.CacheHits()
			}
			b.ReportMetric(float64(hits), "cacheHits")
		})
	}
}

// BenchmarkAblationHeuristics toggles the syntactic-match heuristics
// (optimization 4) and the skip-unchanged optimization (optimization 2).
func BenchmarkAblationHeuristics(b *testing.B) {
	configs := []struct {
		name string
		mod  func(*abstract.Options)
	}{
		{"all-on", func(o *abstract.Options) {}},
		{"no-syntactic", func(o *abstract.Options) { o.SyntacticHeuristics = false }},
		{"no-skip-unchanged", func(o *abstract.Options) { o.SkipUnchanged = false }},
		{"f-on-atoms", func(o *abstract.Options) { o.FOnAtoms = true }},
		{"no-enforce", func(o *abstract.Options) { o.EmitEnforce = false }},
	}
	for _, c := range configs {
		c := c
		b.Run(c.name, func(b *testing.B) {
			opts := abstract.DefaultOptions()
			c.mod(&opts)
			ablationRun(b, "partition", opts)
		})
	}
}

// BenchmarkCubeSearch compares the sequential cube search (-j 1) with
// the bounded-worker-pool parallel search on the most prover-intensive
// Table 2 subject. The outputs are byte-identical (see
// TestParallelAbstractionDeterminism); only wall-clock should move.
// Run with: go test -run Bench -bench CubeSearch
func BenchmarkCubeSearch(b *testing.B) {
	p, _ := corpus.ByName("qsort")
	for _, j := range []int{1, 2, 4, 8} {
		j := j
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			opts := abstract.DefaultOptions()
			opts.Jobs = j
			var calls int
			for i := 0; i < b.N; i++ {
				_, calls = abstractOnce(b, p, opts)
			}
			b.ReportMetric(float64(calls), "proverCalls")
		})
	}
}

// BenchmarkBebopOnly isolates the model checker: the paper reports "Bebop
// ran in under 10 seconds on the boolean program output by C2bp" for all
// subjects; here it is milliseconds.
func BenchmarkBebopOnly(b *testing.B) {
	p, _ := corpus.ByName("reverse")
	prog, err := LoadGhostAliasing(p.Source)
	if err != nil {
		b.Fatal(err)
	}
	bprog, err := prog.Abstract(p.Preds, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	parsed, err := ParseBooleanProgram(bprog.Text())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := parsed.Check("mark")
		if err != nil {
			b.Fatal(err)
		}
		if _, _, bad := res.ErrorReachable(); bad {
			b.Fatal("unexpected violation")
		}
	}
}

// BenchmarkProver isolates the decision procedures on representative
// C2bp-style queries.
func BenchmarkProver(b *testing.B) {
	queries := []struct{ hyp, goal string }{
		{"x == 2", "x < 4"},
		{"curr != NULL && curr->val > v && (prev->val <= v || prev == NULL)", "prev != curr"},
		{"p == &x && *p == 3", "x == 3"},
		{"i <= j && j <= i && a[i] == 1", "a[j] == 1"},
	}
	for i := 0; i < b.N; i++ {
		pv := prover.New()
		pv.DisableCache = true
		for _, q := range queries {
			he, err := cparse.ParseExpr(q.hyp)
			if err != nil {
				b.Fatal(err)
			}
			ge, err := cparse.ParseExpr(q.goal)
			if err != nil {
				b.Fatal(err)
			}
			hf, err := form.FromCond(he)
			if err != nil {
				b.Fatal(err)
			}
			gf, err := form.FromCond(ge)
			if err != nil {
				b.Fatal(err)
			}
			if !pv.Valid(hf, gf) {
				b.Fatalf("query (%s) => (%s) should be valid", q.hyp, q.goal)
			}
		}
	}
}

// BenchmarkEndToEndSLAM measures one full CEGAR verification of the
// correlated-branch locking example from scratch.
func BenchmarkEndToEndSLAM(b *testing.B) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(int x) {
  if (x == 0) {
    AcquireLock();
  }
  if (x == 0) {
    ReleaseLock();
  }
}
`
	specSrc := `
state { int locked = 0; }
event AcquireLock entry { if (locked == 1) { abort; } locked = 1; }
event ReleaseLock entry { if (locked == 0) { abort; } locked = 0; }
`
	for i := 0; i < b.N; i++ {
		res, err := VerifySpec(src, specSrc, "main", DefaultVerifyConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Outcome != Verified {
			b.Fatalf("outcome %s", res.Outcome)
		}
	}
}
