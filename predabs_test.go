package predabs

import (
	"strings"
	"testing"
)

const partitionSrc = `
typedef struct cell { int val; struct cell* next; } *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

const partitionPreds = `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`

// TestSection22InvariantAtL reproduces the paper's Section 2.2 result:
// Bebop's invariant at label L is
//
//	(curr ≠ NULL) ∧ (curr->val > v) ∧ ((prev->val ≤ v) ∨ (prev = NULL)).
func TestSection22InvariantAtL(t *testing.T) {
	prog, err := Load(partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	bprog, err := prog.Abstract(partitionPreds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := bprog.Check("partition")
	if err != nil {
		t.Fatal(err)
	}
	inv, err := res.InvariantAt("partition", "L")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("invariant at L: %s", inv)

	holds := func(expr string) bool {
		ok, err := res.InvariantHolds("partition", "L", expr)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	if !holds("!{curr == NULL}") {
		t.Error("invariant must imply curr != NULL")
	}
	if !holds("{curr->val > v}") {
		t.Error("invariant must imply curr->val > v")
	}
	if !holds("!{prev->val > v} | {prev == NULL}") {
		t.Error("invariant must imply prev->val <= v or prev == NULL")
	}
	// And it is not degenerate.
	if holds("{prev == NULL}") {
		t.Error("prev == NULL alone should not be invariant (loop iterates)")
	}
	if inv == "false" {
		t.Error("L must be reachable")
	}
}

// TestFigure3MarkInvariant reproduces the Section 6.2 reverse example:
// the mark procedure traverses a list setting back pointers, then
// restores them; the shape is preserved: h->next == hnext at the end,
// for an arbitrary non-NULL node h with hnext = h->next initially.
func TestFigure3MarkInvariant(t *testing.T) {
	src := `
struct node { int mark; struct node* next; };

void mark(struct node* list, struct node* h) {
  struct node* this;
  struct node* tmp;
  struct node* prev;
  struct node* hnext;
  assume(h != NULL);
  hnext = h->next;
  prev = NULL;
  this = list;
  while (this != NULL) {
    if (this->mark == 1) { break; }
    this->mark = 1;
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }
  while (prev != NULL) {
    tmp = this;
    this = prev;
    prev = prev->next;
    this->next = tmp;
  }
  assert(h->next == hnext);
}
`
	preds := `
mark:
  h == NULL, prev == h, this == h, this->next == hnext,
  prev == this, h->next == hnext, hnext->next == h
`
	// The paper's auxiliary variables h/hnext are ghost observers; see
	// EXPERIMENTS.md ("Figure 3 and ghost aliasing") for why the sound
	// open-caller alias mode cannot prove this with quantifier-free
	// predicates.
	prog, err := LoadGhostAliasing(src)
	if err != nil {
		t.Fatal(err)
	}
	bprog, err := prog.Abstract(preds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := bprog.Check("mark")
	if err != nil {
		t.Fatal(err)
	}
	if proc, stmt, bad := res.ErrorReachable(); bad {
		t.Fatalf("h->next == hnext not preserved: violation at %s:%d\nboolean program:\n%s",
			proc, stmt, bprog.Text())
	}
}

func TestQuickstartAPI(t *testing.T) {
	prog, err := Load(`
void main(int x) {
  int y;
  y = x + 1;
L: assert(y > x);
}
`)
	if err != nil {
		t.Fatal(err)
	}
	bprog, err := prog.Abstract("main:\n y > x", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bprog.Stats().Predicates != 1 {
		t.Errorf("stats: %+v", bprog.Stats())
	}
	res, err := bprog.Check("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, bad := res.ErrorReachable(); bad {
		t.Fatalf("y > x always holds after y = x+1:\n%s", bprog.Text())
	}
}

func TestParseBooleanProgramRoundTrip(t *testing.T) {
	prog, err := Load(partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	bprog, err := prog.Abstract(partitionPreds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reparsed, err := ParseBooleanProgram(bprog.Text())
	if err != nil {
		t.Fatalf("printed boolean program does not reparse: %v", err)
	}
	res, err := reparsed.Check("partition")
	if err != nil {
		t.Fatal(err)
	}
	inv, err := res.InvariantAt("partition", "L")
	if err != nil {
		t.Fatal(err)
	}
	if inv == "false" {
		t.Error("reparsed program lost reachability")
	}
}

func TestVerifyFacade(t *testing.T) {
	res, err := Verify(`
void main(int x) {
  int y;
  y = 0;
  if (x > 3) { y = 1; }
  if (x > 5) { assert(y == 1); }
}
`, "main", DefaultVerifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s (x>5 implies x>3 implies y==1); preds %v", res.Outcome, res.Predicates)
	}
}

func TestVerifySpecFacade(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(int n) {
  AcquireLock();
  if (n > 0) {
    ReleaseLock();
    AcquireLock();
  }
  ReleaseLock();
}
`
	specSrc := `
state { int locked = 0; }
event AcquireLock entry { if (locked == 1) { abort; } locked = 1; }
event ReleaseLock entry { if (locked == 0) { abort; } locked = 0; }
`
	res, err := VerifySpec(src, specSrc, "main", DefaultVerifyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations; preds %v", res.Outcome, res.Iterations, res.Predicates)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		"void f( {",
		"void f(void) { x = 1; }",
	}
	for _, src := range cases {
		if _, err := Load(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
	prog, _ := Load("void f(int x) { x = 1; }")
	if _, err := prog.Abstract("nosuch:\n x == 1", DefaultOptions()); err == nil ||
		!strings.Contains(err.Error(), "unknown procedure") {
		t.Errorf("got %v", err)
	}
}
