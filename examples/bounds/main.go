// Bounds: array-bounds loop invariants in the style of the Necula
// proof-carrying-code examples (Section 6.2, kmp and qsort). The paper's
// observation: "where an array a was indexed in a loop by a variable
// index, we simply had to model the bounds index >= 0 and index <=
// length(a) in order to produce the appropriate loop invariant".
//
// We run the inner scan of a string matcher and ask Bebop for the
// invariant at the array access: both bounds hold at every access, so the
// accesses are safe and the asserts are validated.
package main

import (
	"fmt"
	"log"

	"predabs"
)

const scanSrc = `
int scan(int a[], int n, int key) {
  int i;
  int found;
  assume(n >= 0);
  found = 0 - 1;
  i = 0;
  while (i < n) {
L:  assert(i >= 0);
    assert(i < n);
    if (a[i] == key) {
      found = i;
    }
    i = i + 1;
  }
  return found;
}
`

const scanPreds = `
scan:
  i >= 0, i < n, n >= 0
`

func main() {
	prog, err := predabs.Load(scanSrc)
	if err != nil {
		log.Fatal(err)
	}
	bprog, err := prog.Abstract(scanPreds, predabs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	s := bprog.Stats()
	fmt.Printf("abstracted scan with %d predicates (%d theorem prover calls)\n",
		s.Predicates, s.ProverCalls)

	res, err := bprog.Check("scan")
	if err != nil {
		log.Fatal(err)
	}
	inv, err := res.InvariantAt("scan", "L")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loop-body invariant at the array access:")
	fmt.Println("  " + inv)

	if proc, stmt, bad := res.ErrorReachable(); bad {
		fmt.Printf("UNEXPECTED: bounds can be violated at %s:%d\n", proc, stmt)
		return
	}
	fmt.Println("verified: 0 <= i < n at every a[i] access (loop invariant found).")
}
