// Quickstart: the paper's running example (Figures 1 and 2 territory).
//
// We abstract the list partition procedure with respect to four
// predicates, model check the resulting boolean program with Bebop, and
// print the invariant Bebop computes at label L — the Section 2.2 result
//
//	(curr ≠ NULL) ∧ (curr->val > v) ∧ ((prev->val ≤ v) ∨ (prev = NULL))
//
// which, fed to a decision procedure, refines alias information: *prev
// and *curr are never aliases at L.
package main

import (
	"fmt"
	"log"

	"predabs"
)

const partitionSrc = `
typedef struct cell { int val; struct cell* next; } *list;

list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

const predicates = `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`

func main() {
	prog, err := predabs.Load(partitionSrc)
	if err != nil {
		log.Fatal(err)
	}

	bprog, err := prog.Abstract(predicates, predabs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== boolean program BP(P, E) ===")
	fmt.Println(bprog.Text())
	s := bprog.Stats()
	fmt.Printf("(%d predicates, %d theorem prover calls)\n\n", s.Predicates, s.ProverCalls)

	res, err := bprog.Check("partition")
	if err != nil {
		log.Fatal(err)
	}
	inv, err := res.InvariantAt("partition", "L")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Bebop invariant at label L ===")
	fmt.Println(inv)

	for _, claim := range []string{
		"!{curr == NULL}",
		"{curr->val > v}",
		"!{prev->val > v} | {prev == NULL}",
	} {
		ok, err := res.InvariantHolds("partition", "L", claim)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("invariant implies %-40s %v\n", claim+":", ok)
	}
	fmt.Println("\nConsequence (via the decision procedures): *prev and *curr")
	fmt.Println("are never aliases at L — prev is NULL or holds a value <= v,")
	fmt.Println("while curr holds a value > v.")
}
