// Heapinv: the Figure 3 / Section 6.2 reverse example. The mark procedure
// (a simplified mark phase of a mark-and-sweep collector) traverses a
// list setting back pointers, then traverses back restoring them. We
// verify the shape is preserved: for an arbitrary non-NULL node h with
// hnext = h->next initially, h->next == hnext holds at the end.
//
// The paper highlights this because the predicate language is
// quantifier-free, yet the heap-structural property is provable with
// seven simple predicates. Following the paper's auxiliary-variable
// construction, h and hnext are ghost observers (LoadGhostAliasing); see
// the Figure 3 discussion in EXPERIMENTS.md for why that treatment is the
// one that makes the quantifier-free proof possible.
package main

import (
	"fmt"
	"log"

	"predabs"
)

const markSrc = `
struct node { int mark; struct node* next; };

void mark(struct node* list, struct node* h) {
  struct node* this;
  struct node* tmp;
  struct node* prev;
  struct node* hnext;
  assume(h != NULL);
  hnext = h->next;
  prev = NULL;
  this = list;

  /* traverse list and mark, setting back pointers */
  while (this != NULL) {
    if (this->mark == 1) { break; }
    this->mark = 1;
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }

  /* traverse back, resetting the pointers */
  while (prev != NULL) {
    tmp = this;
    this = prev;
    prev = prev->next;
    this->next = tmp;
  }

  assert(h->next == hnext);
}
`

// The predicate input from the paper's Section 6.2.
const markPreds = `
mark:
  h == NULL, prev == h, this == h, this->next == hnext,
  prev == this, h->next == hnext, hnext->next == h
`

func main() {
	prog, err := predabs.LoadGhostAliasing(markSrc)
	if err != nil {
		log.Fatal(err)
	}
	bprog, err := prog.Abstract(markPreds, predabs.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	s := bprog.Stats()
	fmt.Printf("abstracted mark with %d predicates (%d theorem prover calls)\n",
		s.Predicates, s.ProverCalls)

	res, err := bprog.Check("mark")
	if err != nil {
		log.Fatal(err)
	}
	if proc, stmt, bad := res.ErrorReachable(); bad {
		fmt.Printf("UNEXPECTED: h->next == hnext can be violated at %s:%d\n", proc, stmt)
		return
	}
	fmt.Println("verified: at the end of mark, h->next == hnext —")
	fmt.Println("the procedure leaves the shape of the structure unchanged.")
}
