// Driver: the SLAM workflow from Section 6.1 — check a locking discipline
// on a device-driver-style program with the full abstract / model check /
// refine loop. Predicates are discovered automatically by Newton; no
// annotations are required.
//
// Two runs are shown: a correct driver (validated) and a buggy variant
// where an error path releases the lock twice (error path reported).
package main

import (
	"fmt"
	"log"

	"predabs"
)

const lockSpec = `
state {
  int locked = 0;
}

event KeAcquireSpinLock entry {
  if (locked == 1) { abort; }
  locked = 1;
}

event KeReleaseSpinLock entry {
  if (locked == 0) { abort; }
  locked = 0;
}
`

const goodDriver = `
void KeAcquireSpinLock(void) { }
void KeReleaseSpinLock(void) { }

int processRequest(int kind, int budget) {
  int status;
  status = 0;
  KeAcquireSpinLock();
  if (kind == 1) {
    status = 1;
  }
  KeReleaseSpinLock();
  return status;
}

void DeviceLoop(int pending) {
  while (pending > 0) {
    processRequest(pending, 8);
    pending = pending - 1;
  }
}
`

const buggyDriver = `
void KeAcquireSpinLock(void) { }
void KeReleaseSpinLock(void) { }

int processRequest(int kind) {
  int status;
  status = 0;
  KeAcquireSpinLock();
  if (kind == 1) {
    KeReleaseSpinLock();
    status = 1;
  }
  KeReleaseSpinLock();
  return status;
}

void DeviceLoop(int pending) {
  if (pending > 0) {
    processRequest(pending);
  }
}
`

func run(name, src string) {
	cfg := predabs.DefaultVerifyConfig()
	cfg.Logf = func(format string, args ...any) {
		fmt.Printf("  "+format+"\n", args...)
	}
	fmt.Printf("--- %s ---\n", name)
	res, err := predabs.VerifySpec(src, lockSpec, "DeviceLoop", cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outcome: %s (iterations=%d, predicates=%d, prover calls=%d)\n",
		res.Outcome, res.Iterations, res.PredCount, res.ProverCalls)
	if res.Outcome == predabs.ErrorFound {
		fmt.Println("error path:")
		for _, e := range res.ErrorTrace {
			fmt.Println("  " + e)
		}
	}
	fmt.Println()
}

func main() {
	run("correct driver", goodDriver)
	run("buggy driver (double release on kind == 1)", buggyDriver)
}
