GO ?= go

.PHONY: build test verify verify-extended bench tools

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: everything must build and the full suite must pass.
verify: build test

# Extended gate: static analysis plus the race detector over the whole
# tree (exercises the parallel cube search and the concurrent tracer).
verify-extended: verify
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

tools:
	$(GO) build -o bin/ ./cmd/...
