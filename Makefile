GO ?= go

.PHONY: build test verify verify-extended chaos leakcheck bench tools

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: everything must build and the full suite must pass.
verify: build test

# Extended gate: static analysis plus the race detector over the whole
# tree (exercises the parallel cube search and the concurrent tracer),
# then the fault-injection matrix and the cancellation leak check.
verify-extended: verify chaos leakcheck
	$(GO) vet ./...
	$(GO) test -race ./...

# Chaos gate: the deterministic fault-injection matrix (seeded prover
# timeouts, spurious failures, forced unknowns, latency spikes, crashes)
# run against the end-to-end soundness oracle under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faultinject/

# Leak gate: concurrent cancellation mid-cube-search at -j 8 must leave
# no goroutine behind and keep the degraded report deterministic.
leakcheck:
	$(GO) test -race -count=1 -run 'TestConcurrentCancellationNoGoroutineLeak|TestDegradedReportDeterministic' ./internal/slam/

bench:
	$(GO) test -bench=. -benchmem .

tools:
	$(GO) build -o bin/ ./cmd/...
