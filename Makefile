GO ?= go

.PHONY: build test verify verify-extended chaos crash corrupt serve-chaos fleet-chaos cache-chaos disk-chaos leakcheck metrics-lint bench bench-json bench-cache lint-docs tools

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-1 gate: everything must build and the full suite must pass.
verify: build test

# Extended gate: static analysis plus the race detector over the whole
# tree (exercises the parallel cube search and the concurrent tracer),
# then the fault-injection matrix and the cancellation leak check.
verify-extended: verify lint-docs metrics-lint chaos crash corrupt serve-chaos fleet-chaos cache-chaos disk-chaos leakcheck
	$(GO) test -race ./...

# Chaos gate: the deterministic fault-injection matrix (seeded prover
# timeouts, spurious failures, forced unknowns, latency spikes, crashes)
# run against the end-to-end soundness oracle under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faultinject/

# Crash gate: the kill/resume matrix — the real slam binary SIGKILLed at
# every checkpoint commit point (full and torn frames), resumed, and
# required to reproduce the uninterrupted run byte-for-byte at -j 1 and
# -j 8, with the buggy subject never laundered into "verified".
crash:
	$(GO) test -count=1 -run 'TestCrash' ./internal/faultinject/

# Corruption gate: damaged journals (bit-flip sweep, truncation, bad
# magic, wrong compatibility hash) must be detected and recovered from —
# tail truncation or a diagnosed cold start — never a wrong answer.
corrupt:
	$(GO) test -count=1 -run 'TestCorrupt' ./internal/faultinject/

# Serve-chaos gate: the daemon-level kill matrix — predabsd workers
# SIGKILLed at every checkpoint commit, supervised retries required to
# deliver verdicts byte-identical to direct slam runs; retry exhaustion
# must retreat to "unknown" (never a verdict), and a hard daemon kill
# plus restart must resume journaled jobs from the ledger. Deterministic
# crash schedules, bounded wall clock.
serve-chaos:
	$(GO) test -count=1 -timeout 10m -run 'TestServeChaos' ./internal/faultinject/

# Fleet-chaos gate: the router-level kill matrix — backends SIGKILLed
# while holding dispatched jobs (lease expiry must fail the work over to
# a survivor) and the frontend SIGKILLed at every ledger commit point
# (admit, dispatch, lease, adopt, verdict) via its deterministic crash
# hook. Every cell requires verdicts byte-identical to direct slam runs,
# dedup collapse across restarts, and exactly one verdict per job —
# nothing lost, nothing double-credited.
fleet-chaos:
	$(GO) test -count=1 -timeout 10m -run 'TestFleetChaos' ./internal/faultinject/

# Cache-chaos gate: the shared prover cache must be a pure accelerator.
# Every cell — warm cache, cache SIGKILLed mid-run, nothing listening,
# restart over a torn/corrupted store, responses slower than the lookup
# budget, garbage responses, and a poisoned cache under verify mode —
# requires verdict stdout byte-identical to a cache-off run; the poison
# cell additionally requires detection and quarantine.
cache-chaos:
	$(GO) test -count=1 -timeout 10m -run 'TestCacheChaos' ./internal/faultinject/

# Disk-chaos gate: deterministic filesystem fault schedules (ENOSPC,
# short writes, fsync and read EIO, rename failure) injected under every
# durable store — journal, job ledger, per-job event logs, fleet ledger,
# cache store — plus their compaction/rotation paths. Every cell
# requires: no wrong verdict, no crash on an injected fault, sticky
# persistence-degraded shedding while the disk is bad, restart recovery
# of every acked record via torn-tail repair, compacted generations
# serving byte-identically to unbounded twins, and no job or cache entry
# lost or double-credited.
disk-chaos:
	$(GO) test -race -count=1 -timeout 10m -run 'TestDiskChaos' ./internal/faultinject/ ./internal/checkpoint/ ./internal/server/ ./internal/fleet/ ./internal/cacheserv/

# Metrics gate: the Prometheus exposition's golden byte-for-byte family
# ordering, the disabled-registry zero-allocation pin (the nil-tracer
# contract extended to metrics), and the registry under the race
# detector with racing registration, updates, and scrapes.
metrics-lint:
	$(GO) test -race -count=1 -run 'TestPromExpositionGolden|TestDisabledMetricsZeroAlloc|TestRegistryConcurrentStress' ./internal/metrics/
	$(GO) test -race -count=1 -run 'TestCacheMetricsExpositionDeterministic' ./internal/cacheserv/
	$(GO) test -race -count=1 -run 'TestNilRemoteTierZeroAlloc|TestRemoteWireFormatGolden' ./internal/prover/

# Leak gate: concurrent cancellation mid-cube-search at -j 8 must leave
# no goroutine behind and keep the degraded report deterministic, and
# the daemon must return to its goroutine/fd baseline after drains,
# deadline SIGKILLs, retry exhaustion, and shutdowns racing submitters.
leakcheck:
	$(GO) test -race -count=1 -run 'TestConcurrentCancellationNoGoroutineLeak|TestDegradedReportDeterministic' ./internal/slam/
	$(GO) test -race -count=1 -run 'TestServerLifecycleLeaks|TestShutdownStress' ./internal/server/

bench:
	$(GO) test -bench=. -benchmem .

# Bench trajectory: both abstraction engines over the full corpus
# (Table 2 subjects and the Table 1 drivers' converged predicate
# pools), written to the committed BENCH_abstraction.json. absbench
# exits nonzero if the engines' boolean programs ever diverge, so the
# committed numbers always describe identical outputs.
bench-json:
	$(GO) run ./cmd/absbench -o BENCH_abstraction.json

# Cache trajectory: every Table 1 driver verified with no remote tier,
# against a cold predcached store, and against a fleet-warmed one —
# wall clock, prover queries and remote hit/fallback traffic, written
# to the committed BENCH_cache.json. cachebench exits nonzero if any
# mode's verdict or prover-call count diverges.
bench-cache:
	$(GO) run ./cmd/cachebench -o BENCH_cache.json

# Doc gate: static analysis plus the exported-identifier doc-comment
# check over the facade and the prover (the packages the paper's
# readers land in first).
lint-docs:
	$(GO) vet ./...
	$(GO) run ./cmd/lintdocs . ./internal/prover

tools:
	$(GO) build -o bin/ ./cmd/...
