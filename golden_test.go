package predabs

import (
	"os"
	"testing"
)

// TestFigure1GoldenOutput pins the complete boolean program C2bp emits
// for the Figure 1 partition example against a golden file, protecting
// the end-to-end abstraction (WP, alias pruning, cube search, skips,
// guard assumes) from silent regressions. Regenerate with:
//
//	go run ./cmd/c2bp -preds <predfile> <partition.c> > testdata/figure1_partition.bp.golden
func TestFigure1GoldenOutput(t *testing.T) {
	prog, err := Load(partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	bprog, err := prog.Abstract(partitionPreds, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/figure1_partition.bp.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got := bprog.Text(); got != string(want) {
		t.Errorf("abstraction output changed; diff against testdata/figure1_partition.bp.golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
