package predabs

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predabs/internal/bp"
	"predabs/internal/corpus"
)

// abstractWith runs one corpus subject's abstraction under the given
// engine and returns the boolean program plus its stats.
func abstractWith(t *testing.T, p corpus.Program, engine string) *BooleanProgram {
	t.Helper()
	load := Load
	if p.GhostAliasing {
		load = LoadGhostAliasing
	}
	prog, err := load(p.Source)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Engine = engine
	bprog, err := prog.Abstract(p.Preds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return bprog
}

// totalQueries is the cross-engine comparison metric: plain Valid/Unsat
// calls plus incremental session checks.
func totalQueries(s AbstractStats) int { return s.ProverCalls + s.SessionChecks }

// TestEngineDifferentialTable2 is the corpus-wide differential oracle
// for the abstraction step: on every Table 2 subject the two engines
// must emit byte-identical boolean programs, and the model engine must
// never issue more prover interactions than the cube engine.
func TestEngineDifferentialTable2(t *testing.T) {
	for _, p := range corpus.Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cubes := abstractWith(t, p, EngineCubes)
			models := abstractWith(t, p, EngineModels)
			if cubes.Text() != models.Text() {
				t.Errorf("boolean programs differ\n--- cubes ---\n%s\n--- models ---\n%s",
					cubes.Text(), models.Text())
			}
			if cubes.Degraded() || models.Degraded() {
				t.Fatalf("unexpected degradation (cubes %v, models %v)",
					cubes.Degraded(), models.Degraded())
			}
			cq, mq := totalQueries(cubes.Stats()), totalQueries(models.Stats())
			if mq > cq {
				t.Errorf("model engine issued more queries: %d > %d", mq, cq)
			}
			t.Logf("%s: queries cubes=%d models=%d (%.1fx)", p.Name, cq, mq, float64(cq)/float64(mq))
		})
	}
}

// TestEngineDifferentialDrivers runs the full CEGAR loop over every
// Table 1 driver under both engines: the verdict, iteration count,
// final predicate pool and final boolean program must be byte-identical,
// and the model engine's total query count must never exceed the cube
// engine's.
func TestEngineDifferentialDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("full driver corpus in -short mode")
	}
	for _, p := range corpus.Drivers() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			run := func(engine string) *VerifyResult {
				cfg := DefaultVerifyConfig()
				cfg.Opts.Engine = engine
				res, err := VerifySpec(p.Source, p.Spec, p.Entry, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			cubes := run(EngineCubes)
			models := run(EngineModels)
			if cubes.Outcome != models.Outcome {
				t.Errorf("outcome: cubes %v, models %v", cubes.Outcome, models.Outcome)
			}
			if cubes.Iterations != models.Iterations {
				t.Errorf("iterations: cubes %d, models %d", cubes.Iterations, models.Iterations)
			}
			if cubes.PredCount != models.PredCount {
				t.Errorf("predicates: cubes %d, models %d", cubes.PredCount, models.PredCount)
			}
			for scope, preds := range cubes.Predicates {
				if got := strings.Join(models.Predicates[scope], ";"); got != strings.Join(preds, ";") {
					t.Errorf("predicate pool [%s]: cubes %v, models %v", scope, preds, models.Predicates[scope])
				}
			}
			if c, m := bp.Print(cubes.FinalBP), bp.Print(models.FinalBP); c != m {
				t.Errorf("final boolean programs differ\n--- cubes ---\n%s\n--- models ---\n%s", c, m)
			}
			if strings.Join(cubes.ErrorTrace, "\n") != strings.Join(models.ErrorTrace, "\n") {
				t.Errorf("error traces differ")
			}
			cq := cubes.ProverCalls + cubes.SessionChecks
			mq := models.ProverCalls + models.SessionChecks
			if mq > cq {
				t.Errorf("model engine issued more queries: %d > %d", mq, cq)
			}
			if models.ProverSessions == 0 {
				t.Error("models engine opened no sessions")
			}
			t.Logf("%s: %v after %d iteration(s); queries cubes=%d models=%d (%.1fx)",
				p.Name, cubes.Outcome, cubes.Iterations, cq, mq, float64(cq)/float64(mq))
		})
	}
}

// genProc emits one random small MiniC procedure plus a predicate file
// over its variables, for the differential fuzz test. Everything is
// drawn from rng only, so a seed fully determines the subject.
func genProc(rng *rand.Rand) (src, preds string) {
	vars := []string{"x", "y", "z"}
	conds := []string{
		"x < y", "x == 0", "y > 0", "z == x", "x <= z", "y == z + 1", "z > 1",
	}
	var b strings.Builder
	b.WriteString("int f(int x, int y) {\n  int z;\n  z = 0;\n")
	exprOf := func() string {
		v := vars[rng.Intn(len(vars))]
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", rng.Intn(4))
		case 1:
			return v
		default:
			return fmt.Sprintf("%s + %d", v, 1+rng.Intn(3))
		}
	}
	assign := func(indent string) {
		fmt.Fprintf(&b, "%s%s = %s;\n", indent, vars[rng.Intn(len(vars))], exprOf())
	}
	n := 2 + rng.Intn(4)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			assign("  ")
		case 1:
			cond := conds[rng.Intn(len(conds))]
			fmt.Fprintf(&b, "  if (%s) {\n", cond)
			assign("    ")
			b.WriteString("  } else {\n")
			assign("    ")
			b.WriteString("  }\n")
		case 2:
			cond := conds[rng.Intn(len(conds))]
			fmt.Fprintf(&b, "  while (%s) {\n", cond)
			assign("    ")
			b.WriteString("  }\n")
		default:
			assign("  ")
		}
	}
	b.WriteString("  return z;\n}\n")

	// At most 3 predicates keeps the minterm spaces small enough that
	// the model engine's |S|+|T|+2 checks stay within the cube engine's
	// per-candidate query bill on every subject.
	k := 1 + rng.Intn(3)
	picked := map[string]bool{}
	var ps []string
	for len(ps) < k {
		c := conds[rng.Intn(len(conds))]
		if !picked[c] {
			picked[c] = true
			ps = append(ps, c)
		}
	}
	return b.String(), "f:\n  " + strings.Join(ps, ", ") + "\n"
}

// TestEngineDifferentialFuzz feeds deterministically generated random
// procedures through both engines: byte-identical output, and never
// more model-engine queries, on every subject.
func TestEngineDifferentialFuzz(t *testing.T) {
	subjects := 60
	if testing.Short() {
		subjects = 10
	}
	for seed := 0; seed < subjects; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src, preds := genProc(rng)
		run := func(engine string) *BooleanProgram {
			prog, err := Load(src)
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			opts := DefaultOptions()
			opts.Engine = engine
			bprog, err := prog.Abstract(preds, opts)
			if err != nil {
				t.Fatalf("seed %d: %v\n%s", seed, err, src)
			}
			return bprog
		}
		cubes := run(EngineCubes)
		models := run(EngineModels)
		if cubes.Text() != models.Text() {
			t.Errorf("seed %d: boolean programs differ\n--- source ---\n%s--- preds ---\n%s--- cubes ---\n%s--- models ---\n%s",
				seed, src, preds, cubes.Text(), models.Text())
		}
		if cq, mq := totalQueries(cubes.Stats()), totalQueries(models.Stats()); mq > cq {
			t.Errorf("seed %d: model engine issued more queries (%d > %d)\n--- source ---\n%s--- preds ---\n%s",
				seed, mq, cq, src, preds)
		}
	}
}
