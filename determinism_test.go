package predabs

import (
	"testing"

	"predabs/internal/corpus"
)

// TestParallelAbstractionDeterminism asserts that the boolean-program
// output of C2bp is byte-identical whether the cube search runs on one
// worker or eight: the parallel rounds merge their prover verdicts in
// canonical enumeration order, so scheduling must never leak into the
// output. Runs over the whole Table 2 golden corpus.
func TestParallelAbstractionDeterminism(t *testing.T) {
	for _, p := range corpus.Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			load := Load
			if p.GhostAliasing {
				load = LoadGhostAliasing
			}
			texts := map[int]string{}
			for _, jobs := range []int{1, 8} {
				prog, err := load(p.Source)
				if err != nil {
					t.Fatal(err)
				}
				opts := DefaultOptions()
				opts.Jobs = jobs
				bprog, err := prog.Abstract(p.Preds, opts)
				if err != nil {
					t.Fatal(err)
				}
				texts[jobs] = bprog.Text()
			}
			if texts[1] != texts[8] {
				t.Errorf("%s: -j 1 and -j 8 outputs differ:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
					p.Name, texts[1], texts[8])
			}
		})
	}
}

// TestParallelAbstractionStatsDeterminism pins the deterministic subset
// of the statistics: the cube candidates submitted to the prover must
// not depend on the worker count (prover cache hits may, since workers
// race on first computation of a shared query).
func TestParallelAbstractionStatsDeterminism(t *testing.T) {
	p, _ := corpus.ByName("partition")
	checked := map[int]int{}
	for _, jobs := range []int{1, 8} {
		prog, err := Load(p.Source)
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.Jobs = jobs
		bprog, err := prog.Abstract(p.Preds, opts)
		if err != nil {
			t.Fatal(err)
		}
		checked[jobs] = bprog.Stats().CubesChecked
	}
	if checked[1] != checked[8] {
		t.Errorf("CubesChecked differs: j=1 %d, j=8 %d", checked[1], checked[8])
	}
}
