// Command absbench benchmarks the two abstraction engines against each
// other over the paper's corpus and emits the committed bench trajectory
// (BENCH_abstraction.json, written by `make bench-json`).
//
// Table 2 subjects are abstracted directly from their predicate files.
// Table 1 drivers are first verified with the default cube engine to
// obtain the converged predicate pool of the final CEGAR iteration; the
// bench then measures one abstraction of that pool under each engine —
// the abstraction step is where the engines differ, while the Newton
// refinement queries are shared between them and would dilute the
// comparison in a full-loop measurement.
//
// Both engines must emit byte-identical boolean programs for every
// subject; absbench exits nonzero if they diverge, so the numbers can
// never describe two different computations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"predabs"
	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bp"
	"predabs/internal/cnorm"
	"predabs/internal/corpus"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
	"predabs/internal/spec"
)

// engineRow is one engine's measured cost on one subject.
type engineRow struct {
	// WallMS is the minimum abstraction wall time over the reps.
	WallMS float64 `json:"wall_ms"`
	// ProverCalls counts plain Valid/Unsat queries; SessionChecks counts
	// incremental session checks. Their sum, TotalQueries, is the
	// cross-engine comparison metric.
	ProverCalls   int `json:"prover_calls"`
	SessionChecks int `json:"session_checks"`
	TotalQueries  int `json:"total_queries"`
	// CacheHits counts queries (of either style) answered from the memo
	// cache.
	CacheHits int `json:"cache_hits"`
	// Sessions, ModelsExtracted and BlockingClauses describe the model
	// engine's enumeration loops (BlockingClauses is its blocking-loop
	// iteration count); all zero under the cube engine.
	Sessions        int `json:"sessions,omitempty"`
	ModelsExtracted int `json:"models_extracted,omitempty"`
	BlockingClauses int `json:"blocking_clauses,omitempty"`
}

// subjectRow is one corpus subject's measurement under both engines.
type subjectRow struct {
	Name string `json:"name"`
	// Kind is "table2" (direct predicate file) or "driver" (converged
	// pool of a cube-engine CEGAR run).
	Kind string `json:"kind"`
	// Predicates is the number of predicates abstracted over.
	Predicates int                  `json:"predicates"`
	Engines    map[string]engineRow `json:"engines"`
	// QueryRatio is cubes' total queries over models' (higher means the
	// model engine saves more).
	QueryRatio float64 `json:"query_ratio"`
}

// benchFile is the committed BENCH_abstraction.json layout.
type benchFile struct {
	Tool    string `json:"tool"`
	Version string `json:"version"`
	// Note documents what the driver rows measure.
	Note     string       `json:"note"`
	Subjects []subjectRow `json:"subjects"`
}

var engines = []string{predabs.EngineCubes, predabs.EngineModels}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	reps := flag.Int("reps", 3, "timing repetitions per engine (minimum wall time is reported)")
	flag.Parse()

	bench := benchFile{
		Tool:    "absbench",
		Version: predabs.Version,
		Note: "driver rows measure one abstraction of the converged predicate pool " +
			"(from a cube-engine CEGAR run); refinement queries are shared between " +
			"engines and excluded",
	}
	for _, p := range corpus.Table2() {
		row, err := benchTable2(p, *reps)
		if err != nil {
			fatal(err)
		}
		bench.Subjects = append(bench.Subjects, row)
	}
	for _, p := range corpus.Drivers() {
		row, err := benchDriver(p, *reps)
		if err != nil {
			fatal(err)
		}
		bench.Subjects = append(bench.Subjects, row)
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d subjects)\n", *out, len(bench.Subjects))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "absbench:", err)
	os.Exit(1)
}

// benchTable2 measures one Table 2 subject through the facade.
func benchTable2(p corpus.Program, reps int) (subjectRow, error) {
	load := predabs.Load
	if p.GhostAliasing {
		load = predabs.LoadGhostAliasing
	}
	row := subjectRow{Name: p.Name, Kind: "table2", Engines: map[string]engineRow{}}
	texts := map[string]string{}
	for _, engine := range engines {
		var er engineRow
		var minWall float64
		for rep := 0; rep < reps; rep++ {
			prog, err := load(p.Source)
			if err != nil {
				return row, fmt.Errorf("%s: %w", p.Name, err)
			}
			opts := predabs.DefaultOptions()
			opts.Engine = engine
			start := time.Now()
			bprog, err := prog.Abstract(p.Preds, opts)
			if err != nil {
				return row, fmt.Errorf("%s: %w", p.Name, err)
			}
			wall := time.Since(start)
			s := bprog.Stats()
			cur := engineRow{
				WallMS:          float64(wall.Microseconds()) / 1000,
				ProverCalls:     s.ProverCalls,
				SessionChecks:   s.SessionChecks,
				TotalQueries:    s.ProverCalls + s.SessionChecks,
				CacheHits:       s.CacheHits,
				Sessions:        s.ProverSessions,
				ModelsExtracted: s.ModelsExtracted,
				BlockingClauses: s.BlockingClauses,
			}
			row.Predicates = s.Predicates
			texts[engine] = bprog.Text()
			if rep == 0 || cur.WallMS < minWall {
				minWall = cur.WallMS
			}
			er = cur
		}
		er.WallMS = minWall
		row.Engines[engine] = er
	}
	return row, finish(&row, texts)
}

// benchDriver converges a driver's predicate pool with the cube engine,
// then measures one abstraction of that pool under each engine via the
// internal pipeline (the pool belongs to the spec-instrumented program,
// which the facade's Load cannot rebuild).
func benchDriver(p corpus.Program, reps int) (subjectRow, error) {
	row := subjectRow{Name: p.Name, Kind: "driver", Engines: map[string]engineRow{}}
	res, err := predabs.VerifySpec(p.Source, p.Spec, p.Entry, predabs.DefaultVerifyConfig())
	if err != nil {
		return row, fmt.Errorf("%s: verify: %w", p.Name, err)
	}
	scopes := make([]string, 0, len(res.Predicates))
	for scope := range res.Predicates {
		scopes = append(scopes, scope)
	}
	sort.Strings(scopes)
	var sb strings.Builder
	for _, scope := range scopes {
		sb.WriteString(scope + ":\n  " + strings.Join(res.Predicates[scope], ",\n  ") + "\n")
	}
	predSrc := sb.String()

	prog, err := cparse.Parse(p.Source)
	if err != nil {
		return row, fmt.Errorf("%s: %w", p.Name, err)
	}
	sp, err := spec.Parse(p.Spec)
	if err != nil {
		return row, fmt.Errorf("%s: %w", p.Name, err)
	}
	inst, err := spec.Instrument(prog, sp, p.Entry)
	if err != nil {
		return row, fmt.Errorf("%s: %w", p.Name, err)
	}
	info, err := ctype.Check(inst)
	if err != nil {
		return row, fmt.Errorf("%s: %w", p.Name, err)
	}
	nres, err := cnorm.Normalize(info)
	if err != nil {
		return row, fmt.Errorf("%s: %w", p.Name, err)
	}
	aa := alias.Analyze(nres)
	secs, err := cparse.ParsePredFile(predSrc)
	if err != nil {
		return row, fmt.Errorf("%s: predicates: %w", p.Name, err)
	}
	for _, sec := range secs {
		row.Predicates += len(sec.Exprs)
	}

	texts := map[string]string{}
	for _, engine := range engines {
		var er engineRow
		var minWall float64
		for rep := 0; rep < reps; rep++ {
			pv := prover.New()
			opts := abstract.DefaultOptions()
			opts.Engine = engine
			start := time.Now()
			ares, err := abstract.Abstract(nres, aa, pv, secs, opts)
			if err != nil {
				return row, fmt.Errorf("%s: abstraction: %w", p.Name, err)
			}
			wall := time.Since(start)
			cur := engineRow{
				WallMS:          float64(wall.Microseconds()) / 1000,
				ProverCalls:     pv.Calls(),
				SessionChecks:   pv.SessionChecks(),
				TotalQueries:    pv.Calls() + pv.SessionChecks(),
				CacheHits:       pv.CacheHits(),
				Sessions:        pv.Sessions(),
				ModelsExtracted: pv.ModelsExtracted(),
				BlockingClauses: pv.BlockingClauses(),
			}
			texts[engine] = bp.Print(ares.BP)
			if rep == 0 || cur.WallMS < minWall {
				minWall = cur.WallMS
			}
			er = cur
		}
		er.WallMS = minWall
		row.Engines[engine] = er
	}
	return row, finish(&row, texts)
}

// finish cross-checks byte identity and computes the query ratio.
func finish(row *subjectRow, texts map[string]string) error {
	if texts[predabs.EngineCubes] != texts[predabs.EngineModels] {
		return fmt.Errorf("%s: engines emitted different boolean programs", row.Name)
	}
	cq := row.Engines[predabs.EngineCubes].TotalQueries
	mq := row.Engines[predabs.EngineModels].TotalQueries
	if mq > 0 {
		row.QueryRatio = roundRatio(float64(cq) / float64(mq))
	}
	return nil
}

// roundRatio keeps the committed JSON to two decimals.
func roundRatio(r float64) float64 {
	return float64(int(r*100+0.5)) / 100
}
