// Command cachebench measures what the fleet-shared prover cache
// (predcached, internal/cacheserv) buys on the paper's Table 1 drivers
// and emits the committed trajectory (BENCH_cache.json, written by
// `make bench-cache`).
//
// Each driver runs in three modes: no remote tier at all, a cold cache
// (fresh store, every lookup misses, every decided verdict published),
// and a fleet-warmed cache (a prior run of the same driver populated
// it). The cache is a real cacheserv.Server behind a real HTTP
// listener, so the measured lookups pay the loopback round trip the
// fleet pays. All three modes must produce identical verdicts and
// identical prover-call counts — the cache is an accelerator, never a
// different computation — and cachebench exits nonzero if they ever
// diverge.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"predabs"
	"predabs/internal/cacheserv"
	"predabs/internal/checkpoint"
	"predabs/internal/corpus"
	"predabs/internal/prover"
)

// modeRow is one mode's measured cost on one driver.
type modeRow struct {
	// WallMS is the minimum whole-run wall time over the reps.
	WallMS float64 `json:"wall_ms"`
	// ProverCalls is the run's prover query count — identical across
	// modes by the byte-identity contract.
	ProverCalls int `json:"prover_calls"`
	// RemoteHits / RemoteFallbacks / RemotePublished describe the remote
	// tier's traffic (absent in nocache mode).
	RemoteHits      int64 `json:"remote_hits,omitempty"`
	RemoteFallbacks int64 `json:"remote_fallbacks,omitempty"`
	RemotePublished int64 `json:"remote_published,omitempty"`
}

// driverRow is one Table 1 driver's measurement across the modes.
type driverRow struct {
	Name    string             `json:"name"`
	Outcome string             `json:"outcome"`
	Modes   map[string]modeRow `json:"modes"`
	// WarmSpeedup is nocache wall time over warm wall time.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// benchFile is the committed BENCH_cache.json layout.
type benchFile struct {
	Tool    string      `json:"tool"`
	Version string      `json:"version"`
	Note    string      `json:"note"`
	Drivers []driverRow `json:"drivers"`
}

func main() {
	out := flag.String("o", "", "output path (default stdout)")
	reps := flag.Int("reps", 3, "timing repetitions per mode (minimum wall time is reported)")
	flag.Parse()

	bench := benchFile{
		Tool:    "cachebench",
		Version: predabs.Version,
		Note: "cold populates a fresh predcached store over loopback HTTP; warm re-runs " +
			"the driver against the store a prior identical run filled; verdicts and " +
			"prover-call counts are required identical across all modes. The paper " +
			"drivers' queries decide in microseconds, so a warm_speedup below 1 means " +
			"the loopback round trip costs more than recomputing — the tier pays off " +
			"when queries are expensive or results are shared fleet-wide, and the " +
			"numbers here pin its overhead ceiling, not its best case",
	}
	for _, p := range corpus.Drivers() {
		row, err := benchDriver(p, *reps)
		if err != nil {
			fatal(err)
		}
		bench.Drivers = append(bench.Drivers, row)
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d drivers)\n", *out, len(bench.Drivers))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cachebench:", err)
	os.Exit(1)
}

// cacheServer is one live predcached instance over a loopback listener.
type cacheServer struct {
	srv  *cacheserv.Server
	http *http.Server
	url  string
}

func startCache(dir string) (*cacheServer, error) {
	srv, err := cacheserv.New(cacheserv.Config{Dir: dir})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return &cacheServer{srv: srv, http: hs, url: "http://" + ln.Addr().String()}, nil
}

func (c *cacheServer) stop() {
	c.http.Close()
	c.srv.Close()
}

// partition computes the compatibility hash a real slam run over this
// driver would use, so cold and warm runs address the same shard.
func partition(p corpus.Program) string {
	cfg := predabs.DefaultVerifyConfig()
	return checkpoint.CompatKey{
		Tool: "slam", Version: predabs.Version,
		Program: p.Source, Spec: p.Spec, Entry: p.Entry,
		MaxCubeLen: cfg.Opts.MaxCubeLen,
		AbsEngine:  predabs.EngineCubes,
	}.Hash()
}

// oneRun executes a full CEGAR verification of p, optionally through a
// remote tier pointed at cacheURL, and returns the result, the wall
// time and the tier's final stats (zero without a cache). A generous
// lookup budget keeps loopback timing noise out of the hit counts the
// committed JSON asserts on.
func oneRun(p corpus.Program, cacheURL string) (*predabs.VerifyResult, time.Duration, prover.RemoteStats, error) {
	cfg := predabs.DefaultVerifyConfig()
	var tier *prover.RemoteTier
	if cacheURL != "" {
		tier = prover.NewRemoteTier(prover.RemoteConfig{
			URL:          cacheURL,
			Partition:    partition(p),
			LookupBudget: 250 * time.Millisecond,
		})
		cfg.RemoteCache = tier
	}
	start := time.Now()
	res, err := predabs.VerifySpec(p.Source, p.Spec, p.Entry, cfg)
	wall := time.Since(start)
	var stats prover.RemoteStats
	if tier != nil {
		tier.Close() // flushes pending publishes before stats are read
		stats = tier.Stats()
	}
	return res, wall, stats, err
}

func benchDriver(p corpus.Program, reps int) (driverRow, error) {
	row := driverRow{Name: p.Name, Modes: map[string]modeRow{}}

	measure := func(mode string, run func(rep int) (*predabs.VerifyResult, time.Duration, prover.RemoteStats, error)) error {
		var mr modeRow
		var minWall float64
		for rep := 0; rep < reps; rep++ {
			res, wall, stats, err := run(rep)
			if err != nil {
				return fmt.Errorf("%s/%s: %w", p.Name, mode, err)
			}
			cur := modeRow{
				WallMS:          float64(wall.Microseconds()) / 1000,
				ProverCalls:     res.ProverCalls,
				RemoteHits:      stats.Hits,
				RemoteFallbacks: stats.Fallbacks,
				RemotePublished: stats.Published,
			}
			if row.Outcome == "" {
				row.Outcome = res.Outcome.String()
			}
			if res.Outcome.String() != row.Outcome || (mode != "nocache" && res.ProverCalls != row.Modes["nocache"].ProverCalls) {
				return fmt.Errorf("%s/%s: diverged from nocache run (outcome %s, %d prover calls)",
					p.Name, mode, res.Outcome, res.ProverCalls)
			}
			if rep == 0 || cur.WallMS < minWall {
				minWall = cur.WallMS
			}
			mr = cur
		}
		mr.WallMS = minWall
		row.Modes[mode] = mr
		return nil
	}

	if err := measure("nocache", func(int) (*predabs.VerifyResult, time.Duration, prover.RemoteStats, error) {
		return oneRun(p, "")
	}); err != nil {
		return row, err
	}

	// Cold: every rep gets a pristine store, so every rep pays the full
	// miss+publish traffic.
	if err := measure("cold", func(int) (*predabs.VerifyResult, time.Duration, prover.RemoteStats, error) {
		dir, err := os.MkdirTemp("", "cachebench-cold-")
		if err != nil {
			return nil, 0, prover.RemoteStats{}, err
		}
		defer os.RemoveAll(dir)
		cs, err := startCache(dir)
		if err != nil {
			return nil, 0, prover.RemoteStats{}, err
		}
		defer cs.stop()
		return oneRun(p, cs.url)
	}); err != nil {
		return row, err
	}

	// Warm: one store, filled by a priming run, then measured reps that
	// should answer (nearly) every decided query remotely.
	dir, err := os.MkdirTemp("", "cachebench-warm-")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	cs, err := startCache(dir)
	if err != nil {
		return row, err
	}
	defer cs.stop()
	if _, _, _, err := oneRun(p, cs.url); err != nil {
		return row, fmt.Errorf("%s: warm priming: %w", p.Name, err)
	}
	if err := measure("warm", func(int) (*predabs.VerifyResult, time.Duration, prover.RemoteStats, error) {
		return oneRun(p, cs.url)
	}); err != nil {
		return row, err
	}

	if w := row.Modes["warm"].WallMS; w > 0 {
		row.WarmSpeedup = roundRatio(row.Modes["nocache"].WallMS / w)
	}
	if row.Modes["warm"].RemoteHits == 0 {
		return row, fmt.Errorf("%s: warm run got no remote hits — the cache is inert", p.Name)
	}
	return row, nil
}

// roundRatio keeps the committed JSON to two decimals.
func roundRatio(r float64) float64 {
	return float64(int(r*100+0.5)) / 100
}
