// Command lintdocs enforces doc comments on the exported surface of the
// given package directories: every exported top-level function, method
// on an exported type, type, variable and constant must carry a doc
// comment (a group comment on the enclosing var/const/type block
// counts). It prints one file:line per violation and exits nonzero if
// any were found — `make lint-docs` runs it over the facade and the
// prover as part of verify-extended.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdocs <pkgdir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		n, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdocs:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdocs: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir checks one package directory (test files excluded) and
// reports the number of undocumented exported identifiers.
func lintDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: exported %s %s has no doc comment\n", p.Filename, p.Line, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "function", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(d, report)
				}
			}
		}
	}
	return bad, nil
}

// exportedRecv reports whether a method's receiver type is exported
// (free functions count as exported receivers).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// lintGenDecl checks a type/var/const declaration: a doc comment on the
// declaration group covers the whole block; otherwise each exported
// spec needs its own doc or trailing comment.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Tok != token.TYPE && d.Tok != token.VAR && d.Tok != token.CONST {
		return
	}
	if d.Doc != nil {
		return
	}
	kind := map[token.Token]string{token.TYPE: "type", token.VAR: "variable", token.CONST: "constant"}[d.Tok]
	for _, s := range d.Specs {
		switch spec := s.(type) {
		case *ast.TypeSpec:
			if spec.Name.IsExported() && spec.Doc == nil && spec.Comment == nil {
				report(spec.Pos(), kind, spec.Name.Name)
			}
		case *ast.ValueSpec:
			if spec.Doc != nil || spec.Comment != nil {
				continue
			}
			for _, name := range spec.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
