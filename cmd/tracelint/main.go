// Command tracelint validates a structured trace emitted by the predabs
// tools with -trace-out: every line must be a JSON object matching the
// event schema (known category/name taxonomy, non-negative timestamps,
// span/event duration rules, scalar field values).
//
// Usage:
//
//	tracelint run.jsonl [more.jsonl ...]
//	slam -trace-out /dev/stdout prog.c | tracelint
//	predabsd artifact | tracelint -
//
// A "-" argument reads standard input, so daemon job artifacts can be
// piped through the validator without temp files even alongside file
// arguments.
//
// Exit status 0 when every line validates, 1 on the first invalid line
// (reported with its file and line number), 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"predabs/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-file ok lines")
	flag.Parse()

	if flag.NArg() == 0 {
		if code := lint("<stdin>", os.Stdin, *quiet); code != 0 {
			os.Exit(code)
		}
		return
	}
	status := 0
	for _, name := range flag.Args() {
		if name == "-" {
			if code := lint("<stdin>", os.Stdin, *quiet); code > status {
				status = code
			}
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracelint:", err)
			os.Exit(2)
		}
		if code := lint(name, f, *quiet); code > status {
			status = code
		}
		f.Close()
	}
	os.Exit(status)
}

func lint(name string, r io.Reader, quiet bool) int {
	n, err := trace.Validate(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", name, err)
		return 1
	}
	if !quiet {
		fmt.Printf("%s: %d events ok\n", name, n)
	}
	return 0
}
