// Command tracelint validates a structured trace emitted by the predabs
// tools with -trace-out: every line must be a JSON object matching the
// event schema (known category/name taxonomy, non-negative timestamps,
// span/event duration rules, scalar field values).
//
// With -events it instead validates job-event streams — the NDJSON the
// daemon serves at GET /jobs/{id}/events (exported from each job's
// durable events.predabs log): sequence numbers must be dense and
// strictly increasing, and every record's payload must match its type
// (state transitions name known states, spawn/kill carry an attempt,
// progress heartbeats carry the CEGAR iteration counters). A log
// rotated under -events-max-bytes may open with one "truncate" record
// declaring the discarded range (its dropped count equals its seq, and
// the retained stream stays dense after it); the marker is only legal
// as the first record of a stream.
//
// With -fleet it validates fleet frontend event streams — the NDJSON a
// predabsd -frontend serves at the same route, synthesized from its
// durable ledger: an admit record first, dense sequence numbers,
// dispatch/lease/adopt payload rules, and exactly one terminal verdict
// (a failed verdict must retreat to outcome "unknown"). A ledger
// compacted under -ledger-snapshot-bytes declares its elisions: a
// verdict may carry a "dropped" count, and the stream's sequence then
// advances by exactly that gap — dropped counts anywhere else, or
// silent gaps, are violations.
//
// Usage:
//
//	tracelint run.jsonl [more.jsonl ...]
//	slam -trace-out /dev/stdout prog.c | tracelint
//	predabsd artifact | tracelint -
//	curl -s $DAEMON/jobs/job-000001/events | tracelint -events -
//	curl -s $FRONTEND/jobs/job-000001/events | tracelint -fleet -
//
// A "-" argument reads standard input, so daemon job artifacts can be
// piped through the validator without temp files even alongside file
// arguments.
//
// Exit status 0 when every line validates, 1 on the first invalid line
// (reported with its file and line number), 2 on usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"predabs/internal/fleet"
	"predabs/internal/server"
	"predabs/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-file ok lines")
	events := flag.Bool("events", false, "validate job-event NDJSON (GET /jobs/{id}/events) instead of trace JSONL")
	fleetEvents := flag.Bool("fleet", false, "validate fleet frontend event NDJSON instead of trace JSONL")
	flag.Parse()
	if *events && *fleetEvents {
		fmt.Fprintln(os.Stderr, "tracelint: -events and -fleet are mutually exclusive")
		os.Exit(2)
	}

	if flag.NArg() == 0 {
		if code := lint("<stdin>", os.Stdin, *quiet, *events, *fleetEvents); code != 0 {
			os.Exit(code)
		}
		return
	}
	status := 0
	for _, name := range flag.Args() {
		if name == "-" {
			if code := lint("<stdin>", os.Stdin, *quiet, *events, *fleetEvents); code > status {
				status = code
			}
			continue
		}
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracelint:", err)
			os.Exit(2)
		}
		if code := lint(name, f, *quiet, *events, *fleetEvents); code > status {
			status = code
		}
		f.Close()
	}
	os.Exit(status)
}

func lint(name string, r io.Reader, quiet, events, fleetEvents bool) int {
	validate := trace.Validate
	switch {
	case events:
		validate = server.ValidateEvents
	case fleetEvents:
		validate = fleet.ValidateEvents
	}
	n, err := validate(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracelint: %s: %v\n", name, err)
		return 1
	}
	if !quiet {
		fmt.Printf("%s: %d events ok\n", name, n)
	}
	return 0
}
