// Command predabsd is the SLAM verification daemon: it accepts
// verification jobs (program + specification + limits) over HTTP/JSON,
// admits them through a bounded queue with load shedding, and runs each
// in an isolated re-exec'd worker subprocess supervised with a hard
// deadline, SIGKILL on overrun, and checkpoint-resumed retries — so a
// crashing or wedged job can never take the service down or corrupt a
// sibling, and a daemon restart resumes every journaled in-flight job.
//
// Usage:
//
//	predabsd -data /var/lib/predabs [-addr :8745] [-workers 4]
//	curl -d '{"source":"...","spec":"...","entry":"main"}' http://localhost:8745/jobs
//	curl http://localhost:8745/jobs/job-000001
//
// The same binary re-execs itself as the worker (-worker -dir, internal).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predabs"
	"predabs/internal/metrics"
	"predabs/internal/server"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "predabsd: internal error: %v\n", p)
			code = 1
		}
	}()
	worker := flag.Bool("worker", false, "run as a job worker subprocess (internal)")
	dir := flag.String("dir", "", "job directory (with -worker)")
	addr := flag.String("addr", "127.0.0.1:8745", "HTTP listen address")
	data := flag.String("data", "", "data directory for the job ledger and per-job state (required)")
	queueCap := flag.Int("queue", 64, "admission queue capacity; submissions beyond it are shed with 503")
	workers := flag.Int("workers", 2, "concurrent worker subprocesses")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "hard per-attempt wall clock; overrunning workers are SIGKILLed and retried")
	retries := flag.Int("retries", 2, "retry budget per job (attempts = retries+1, counted across restarts)")
	retryBase := flag.Duration("retry-base", 250*time.Millisecond, "base retry backoff (exponential, ±50% jitter)")
	retryMax := flag.Duration("retry-max", 10*time.Second, "retry backoff ceiling")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown grace for running attempts before they are SIGKILLed")
	artifacts := flag.Bool("artifacts", true, "write per-job trace.jsonl and report.json artifacts")
	allowJobEnv := flag.Bool("allow-job-env", false, "honour job env injection (chaos testing only)")
	verbose := flag.Bool("v", false, "log job lifecycle events to stderr")
	flag.Parse()

	if *worker {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "predabsd: -worker requires -dir")
			return 2
		}
		return server.RunWorker(*dir, os.Stderr)
	}
	if flag.NArg() != 0 || *data == "" {
		fmt.Fprintln(os.Stderr, "usage: predabsd -data <dir> [-addr host:port]")
		return 2
	}
	for name, v := range map[string]int{"queue": *queueCap, "workers": *workers} {
		if v <= 0 {
			fmt.Fprintf(os.Stderr, "predabsd: flag -%s: %d: must be positive\n", name, v)
			return 2
		}
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "predabsd: flag -retries: %d: must not be negative\n", *retries)
		return 2
	}
	for name, d := range map[string]time.Duration{
		"job-timeout": *jobTimeout, "retry-base": *retryBase,
		"retry-max": *retryMax, "drain-timeout": *drainTimeout,
	} {
		if d <= 0 {
			fmt.Fprintf(os.Stderr, "predabsd: flag -%s: %v: must be positive\n", name, d)
			return 2
		}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		return 1
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	// Version at startup: the one log line every incident review wants,
	// and the same value /healthz and /statz report while running.
	fmt.Fprintf(os.Stderr, "predabsd: version %s starting\n", predabs.Version)
	srv, err := server.New(server.Config{
		DataDir:        *data,
		WorkerBin:      self,
		QueueCap:       *queueCap,
		Workers:        *workers,
		AttemptTimeout: *jobTimeout,
		Retries:        *retries,
		RetryBase:      *retryBase,
		RetryMax:       *retryMax,
		Artifacts:      *artifacts,
		AllowJobEnv:    *allowJobEnv,
		Metrics:        metrics.New(),
		Logf:           logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		return 1
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		srv.Shutdown(context.Background())
		return 1
	}
	// The resolved address line is the readiness signal for scripts and
	// the chaos harness (with -addr :0 the port is kernel-assigned).
	fmt.Printf("predabsd: listening on http://%s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "predabsd: received %v, draining\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		srv.Shutdown(context.Background())
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "predabsd: drain timed out; interrupted attempts were refunded and their jobs stay journaled for resume (%v)\n", err)
	}
	return 0
}
