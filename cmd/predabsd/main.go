// Command predabsd is the SLAM verification daemon: it accepts
// verification jobs (program + specification + limits) over HTTP/JSON,
// admits them through a bounded queue with load shedding, and runs each
// in an isolated re-exec'd worker subprocess supervised with a hard
// deadline, SIGKILL on overrun, and checkpoint-resumed retries — so a
// crashing or wedged job can never take the service down or corrupt a
// sibling, and a daemon restart resumes every journaled in-flight job.
//
// Usage:
//
//	predabsd -data /var/lib/predabs [-addr :8745] [-workers 4]
//	curl -d '{"source":"...","spec":"...","entry":"main"}' http://localhost:8745/jobs
//	curl http://localhost:8745/jobs/job-000001
//
// With -frontend the same binary runs as the fleet router instead: it
// owns no workers, speaks the identical HTTP API, and dispatches each
// deduplicated job across the listed backend predabsd nodes with
// circuit breakers, lease-based failover and a durable ledger of its
// own (see internal/fleet):
//
//	predabsd -frontend http://n1:8745,http://n2:8745 -data /var/lib/predabs-fe
//
// With -cache the same binary runs as predcached, the fleet-shared
// prover cache: a durable store of decided prover verdicts partitioned
// by checkpoint compatibility hash, served over batched GET/PUT (see
// internal/cacheserv). Workers reach it via -cache-url (stamped into
// their environment as PREDABSD_CACHE_URL):
//
//	predabsd -cache -data /var/lib/predcached [-addr :8750]
//	predabsd -data /var/lib/predabs -cache-url http://cachehost:8750
//
// The same binary re-execs itself as the worker (-worker -dir, internal).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"predabs"
	"predabs/internal/cacheserv"
	"predabs/internal/fleet"
	"predabs/internal/metrics"
	"predabs/internal/server"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "predabsd: internal error: %v\n", p)
			code = 1
		}
	}()
	worker := flag.Bool("worker", false, "run as a job worker subprocess (internal)")
	dir := flag.String("dir", "", "job directory (with -worker)")
	addr := flag.String("addr", "127.0.0.1:8745", "HTTP listen address")
	data := flag.String("data", "", "data directory for the job ledger and per-job state (required)")
	queueCap := flag.Int("queue", 64, "admission queue capacity; submissions beyond it are shed with 503")
	workers := flag.Int("workers", 2, "concurrent worker subprocesses")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "hard per-attempt wall clock; overrunning workers are SIGKILLed and retried")
	retries := flag.Int("retries", 2, "retry budget per job (attempts = retries+1, counted across restarts)")
	retryBase := flag.Duration("retry-base", 250*time.Millisecond, "base retry backoff (exponential, ±50% jitter)")
	retryMax := flag.Duration("retry-max", 10*time.Second, "retry backoff ceiling")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown grace for running attempts before they are SIGKILLed")
	artifacts := flag.Bool("artifacts", true, "write per-job trace.jsonl and report.json artifacts")
	allowJobEnv := flag.Bool("allow-job-env", false, "honour job env injection (chaos testing only)")
	verbose := flag.Bool("v", false, "log job lifecycle events to stderr")
	frontend := flag.String("frontend", "", "run as the fleet frontend, routing to these comma-separated backend base URLs")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "with -frontend: heartbeat lease before a backend is declared dead")
	pollInterval := flag.Duration("poll-interval", 500*time.Millisecond, "with -frontend: backend event-stream poll spacing")
	dispatchRetries := flag.Int("dispatch-retries", 4, "with -frontend: backend attempts per run before failing it unknown")
	eventWait := flag.Duration("event-wait", 0, "with -frontend: long-poll hold per backend event fetch (0 = min(lease-ttl/3, 5s), negative disables)")
	cache := flag.Bool("cache", false, "run as predcached, the fleet-shared prover cache service")
	cacheURL := flag.String("cache-url", "", "shared prover cache (predcached) base URL workers inherit; empty disables the remote tier")
	cacheVerify := flag.Bool("cache-verify", false, "make workers revalidate sampled remote cache hits locally, quarantining the cache on any mismatch")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "with -cache: compact the store into a new generation above this size, evicting cold partitions (0 = unbounded)")
	ledgerSnapshotBytes := flag.Int64("ledger-snapshot-bytes", 0, "fold terminal jobs into a snapshot record at restart replay once the ledger exceeds this size (0 = never fold)")
	eventsMaxBytes := flag.Int64("events-max-bytes", 0, "rotate each job's event log behind a truncation record above this size (0 = unbounded)")
	flag.Parse()

	if *worker {
		if *dir == "" {
			fmt.Fprintln(os.Stderr, "predabsd: -worker requires -dir")
			return 2
		}
		return server.RunWorker(*dir, os.Stderr)
	}
	if flag.NArg() != 0 || *data == "" {
		fmt.Fprintln(os.Stderr, "usage: predabsd -data <dir> [-addr host:port] [-frontend url,url | -cache]")
		return 2
	}
	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *cache {
		fmt.Fprintf(os.Stderr, "predabsd: version %s starting (cache)\n", predabs.Version)
		cs, err := cacheserv.New(cacheserv.Config{
			Dir:      *data,
			MaxBytes: *cacheMaxBytes,
			Metrics:  metrics.New(),
			Logf:     logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "predabsd:", err)
			return 1
		}
		return serveAPI(cs.Handler(), *addr, *drainTimeout, func(context.Context) error {
			return cs.Close()
		})
	}
	if *frontend != "" {
		if *dispatchRetries <= 0 || *leaseTTL <= 0 || *pollInterval <= 0 || *queueCap <= 0 {
			fmt.Fprintln(os.Stderr, "predabsd: -dispatch-retries, -lease-ttl, -poll-interval and -queue must be positive")
			return 2
		}
		fmt.Fprintf(os.Stderr, "predabsd: version %s starting (frontend)\n", predabs.Version)
		fe, err := fleet.New(fleet.Config{
			DataDir:             *data,
			Backends:            strings.Split(*frontend, ","),
			QueueCap:            *queueCap,
			DispatchRetries:     *dispatchRetries,
			LeaseTTL:            *leaseTTL,
			PollInterval:        *pollInterval,
			EventWait:           *eventWait,
			CacheURL:            *cacheURL,
			AllowJobEnv:         *allowJobEnv,
			LedgerSnapshotBytes: *ledgerSnapshotBytes,
			Metrics:             metrics.New(),
			Logf:                logf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "predabsd:", err)
			return 1
		}
		return serveAPI(fe.Handler(), *addr, *drainTimeout, func(context.Context) error {
			fe.Shutdown()
			return nil
		})
	}
	for name, v := range map[string]int{"queue": *queueCap, "workers": *workers} {
		if v <= 0 {
			fmt.Fprintf(os.Stderr, "predabsd: flag -%s: %d: must be positive\n", name, v)
			return 2
		}
	}
	if *retries < 0 {
		fmt.Fprintf(os.Stderr, "predabsd: flag -retries: %d: must not be negative\n", *retries)
		return 2
	}
	for name, d := range map[string]time.Duration{
		"job-timeout": *jobTimeout, "retry-base": *retryBase,
		"retry-max": *retryMax, "drain-timeout": *drainTimeout,
	} {
		if d <= 0 {
			fmt.Fprintf(os.Stderr, "predabsd: flag -%s: %v: must be positive\n", name, d)
			return 2
		}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		return 1
	}
	// Version at startup: the one log line every incident review wants,
	// and the same value /healthz and /statz report while running.
	fmt.Fprintf(os.Stderr, "predabsd: version %s starting\n", predabs.Version)
	srv, err := server.New(server.Config{
		DataDir:             *data,
		WorkerBin:           self,
		QueueCap:            *queueCap,
		Workers:             *workers,
		AttemptTimeout:      *jobTimeout,
		Retries:             *retries,
		RetryBase:           *retryBase,
		RetryMax:            *retryMax,
		Artifacts:           *artifacts,
		AllowJobEnv:         *allowJobEnv,
		CacheURL:            *cacheURL,
		CacheVerify:         *cacheVerify,
		LedgerSnapshotBytes: *ledgerSnapshotBytes,
		EventsMaxBytes:      *eventsMaxBytes,
		Metrics:             metrics.New(),
		Logf:                logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		return 1
	}
	srv.Start()
	return serveAPI(srv.Handler(), *addr, *drainTimeout, srv.Shutdown)
}

// serveAPI listens, prints the readiness line, serves h, and drains on
// SIGINT/SIGTERM — shared by the single-node daemon and the fleet
// frontend.
func serveAPI(h http.Handler, addr string, drainTimeout time.Duration, shutdown func(context.Context) error) int {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		shutdown(context.Background())
		return 1
	}
	// The resolved address line is the readiness signal for scripts and
	// the chaos harness (with -addr :0 the port is kernel-assigned).
	fmt.Printf("predabsd: listening on http://%s\n", ln.Addr())
	os.Stdout.Sync()

	httpSrv := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "predabsd: received %v, draining\n", got)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "predabsd:", err)
		shutdown(context.Background())
		return 1
	}
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "predabsd: drain timed out; interrupted attempts were refunded and their jobs stay journaled for resume (%v)\n", err)
	}
	return 0
}
