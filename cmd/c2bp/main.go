// Command c2bp performs predicate abstraction of a MiniC program: given a
// C source file and a predicate input file, it emits the boolean program
// BP(P, E), mirroring the paper's C2bp tool.
//
// Usage:
//
//	c2bp -preds partition.preds partition.c
//	c2bp -preds partition.preds -trace-out run.jsonl -report partition.c
package main

import (
	"flag"
	"fmt"
	"os"

	"predabs"
	"predabs/internal/checkpoint"
	"predabs/internal/cparse"
	"predabs/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// A crash anywhere below becomes a diagnosable error exit: the
	// abstraction must never take the terminal down with a raw panic.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "c2bp: internal error: %v\n", p)
			code = 1
		}
	}()
	predFile := flag.String("preds", "", "predicate input file (required)")
	maxCube := flag.Int("maxcube", 3, "maximum cube length in the F computation (0 = unlimited)")
	noCone := flag.Bool("nocone", false, "disable the cone-of-influence optimization")
	noEnforce := flag.Bool("noenforce", false, "do not emit enforce invariants")
	jobs := flag.Int("j", 0, "cube-search worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	absEngine := flag.String("abs-engine", "cubes", "abstraction engine: cubes (per-cube prover queries) or models (incremental model enumeration)")
	stats := flag.Bool("stats", false, "print abstraction statistics and per-stage timings to stderr")
	obsFlags := obs.Register()
	flag.Parse()

	if *predFile == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: c2bp [-j N] [-stats] -preds <predfile> <source.c>")
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "c2bp: flag -j: %d: must not be negative (0 = GOMAXPROCS)\n", *jobs)
		return 2
	}
	if *maxCube < 0 {
		fmt.Fprintf(os.Stderr, "c2bp: flag -maxcube: %d: must not be negative (0 = unlimited)\n", *maxCube)
		return 2
	}
	if !predabs.ValidEngine(*absEngine) {
		fmt.Fprintf(os.Stderr, "c2bp: flag -abs-engine: %q: must be %q or %q\n",
			*absEngine, predabs.EngineCubes, predabs.EngineModels)
		return 2
	}
	if err := obsFlags.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "c2bp:", err)
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return fatal(err)
	}
	preds, err := os.ReadFile(*predFile)
	if err != nil {
		return fatal(err)
	}
	tracer, finish, err := obsFlags.Start()
	if err != nil {
		return fatal(err)
	}
	prog, err := predabs.Load(string(src))
	if err != nil {
		finish()
		return fatalFile(flag.Arg(0), err)
	}
	opts := predabs.DefaultOptions()
	opts.MaxCubeLen = *maxCube
	opts.ConeOfInfluence = !*noCone
	opts.EmitEnforce = !*noEnforce
	opts.Jobs = *jobs
	if *absEngine == "" {
		*absEngine = predabs.EngineCubes
	}
	opts.Engine = *absEngine
	opts.Tracer = tracer
	if _, err := cparse.ParsePredFile(string(preds)); err != nil {
		finish()
		return fatalFile(*predFile, err)
	}
	// The key pins what this abstraction computes; -j and wall-clock
	// limits stay out (worker-count-independent output, environmental
	// degradations never persisted).
	ckpt, err := obsFlags.OpenCheckpoint(checkpoint.CompatKey{
		Tool: "c2bp", Version: predabs.Version,
		Program: string(src), Spec: string(preds),
		MaxCubeLen:  opts.MaxCubeLen,
		CubeBudget:  int64(obsFlags.CubeBudget),
		BDDMaxNodes: int64(obsFlags.BDDMaxNodes),
		AbsEngine:   opts.Engine,
		Extra:       fmt.Sprintf("cone=%t/enforce=%t", opts.ConeOfInfluence, opts.EmitEnforce),
	}, tracer)
	if err != nil {
		finish()
		return fatal(err)
	}
	defer ckpt.Close()
	ctx, cancel := obsFlags.Context()
	defer cancel()
	bprog, err := prog.AbstractCheckpointed(ctx, string(preds), opts, obsFlags.Limits(), ckpt)
	if err != nil {
		finish()
		return fatalFile(flag.Arg(0), err)
	}
	if err := ckpt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "c2bp: warning: checkpointing disabled:", err)
	}
	if err := finish(); err != nil {
		fmt.Fprintln(os.Stderr, "c2bp:", err)
	}
	fmt.Print(bprog.Text())
	if *stats {
		s := bprog.Stats()
		fmt.Fprintf(os.Stderr, "predicates: %d\ntheorem prover calls: %d\nprover cache hits: %d\nprover cache misses: %d\nprover gave up: %d\ncubes checked: %d\ncube-search rounds: %d\n",
			s.Predicates, s.ProverCalls, s.CacheHits, s.CacheMisses, s.ProverGaveUp, s.CubesChecked, s.CubeRounds)
		if s.ProverSessions > 0 {
			fmt.Fprintf(os.Stderr, "prover sessions: %d\nsession checks: %d\nmodels extracted: %d\nblocking clauses: %d\n",
				s.ProverSessions, s.SessionChecks, s.ModelsExtracted, s.BlockingClauses)
		}
		fmt.Fprintf(os.Stderr, "stage parse+check+normalize: %v\nstage alias analysis: %v\nstage signatures: %v\nstage abstraction: %v\n  of which cube search: %v\n  of which theory solving: %v\n",
			s.ParseTime, s.AliasTime, s.SignatureTime, s.AbstractTime, s.CubeSearchTime, s.SolverTime)
		for _, pt := range s.ProcTimes {
			fmt.Fprintf(os.Stderr, "  proc %s: %v\n", pt.Name, pt.D)
		}
		for _, pc := range s.ProcCubes {
			fmt.Fprintf(os.Stderr, "  proc %s: %d cube rounds, %d cubes\n", pc.Name, pc.Rounds, pc.Cubes)
		}
	}
	// A degraded abstraction is weaker but still sound, so the program
	// above is usable as-is and the exit stays 0; the truncations are
	// named on stderr so nobody mistakes it for the most precise output.
	if bprog.Degraded() {
		s := bprog.Stats()
		fmt.Fprintf(os.Stderr, "c2bp: output soundly weakened by resource limits (degraded procs: %d, prover timeouts: %d):\n",
			len(s.DegradedProcs), s.ProverTimeouts)
		for _, d := range s.Degradations {
			fmt.Fprintf(os.Stderr, "  stage %-8s limit %-14s %s (x%d)\n", d.Stage, d.Limit, d.Detail, d.Count)
		}
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "c2bp:", err)
	return 1
}

// fatalFile attributes an input error to its file; the parser errors
// already carry the line, so this yields file:line diagnostics.
func fatalFile(name string, err error) int {
	fmt.Fprintf(os.Stderr, "c2bp: %s: %v\n", name, err)
	return 1
}
