// Command slam statically checks a temporal safety property of a MiniC
// program by iterative predicate abstraction (C2bp), model checking
// (Bebop) and predicate discovery (Newton) — the SLAM toolkit's process.
//
// Usage:
//
//	slam -spec locking.slic -entry main driver.c
//	slam -entry main program_with_asserts.c
//	slam -trace-out run.jsonl -report -explain -entry main program.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"predabs"
	"predabs/internal/checkpoint"
	"predabs/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// Stage panics are already converted to StageErrors inside the
	// pipeline; this net catches everything else (flag handling, output
	// rendering) so the CLI never dies with a raw panic.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "slam: internal error: %v\n", p)
			code = 1
		}
	}()
	specFile := flag.String("spec", "", "SLIC-style specification file (optional; without it, asserts in the source are checked)")
	entry := flag.String("entry", "main", "entry procedure")
	maxIters := flag.Int("maxiters", 10, "maximum abstraction refinement iterations")
	jobs := flag.Int("j", 0, "cube-search worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	stats := flag.Bool("stats", false, "print per-stage timings and prover statistics to stderr")
	explain := flag.Bool("explain", false, "render a found error path as an annotated source-level trace")
	verbose := flag.Bool("v", false, "log each refinement iteration")
	obsFlags := obs.Register()
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slam [-spec file] -entry <proc> <source.c>")
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return fatal(err)
	}
	var specSrc []byte
	if *specFile != "" {
		if specSrc, err = os.ReadFile(*specFile); err != nil {
			return fatal(err)
		}
	}
	tracer, finish, err := obsFlags.Start()
	if err != nil {
		return fatal(err)
	}
	cfg := predabs.DefaultVerifyConfig()
	cfg.MaxIterations = *maxIters
	cfg.Opts.Jobs = *jobs
	cfg.Tracer = tracer
	cfg.Limits = obsFlags.Limits()
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	// The compatibility key covers everything that changes what the run
	// computes. -j and the wall-clock limits are deliberately absent:
	// results are worker-count-independent, and wall-clock degradations
	// are never persisted.
	ckpt, err := obsFlags.OpenCheckpoint(checkpoint.CompatKey{
		Tool: "slam", Version: predabs.Version,
		Program: string(src), Spec: string(specSrc), Entry: *entry,
		MaxCubeLen:  cfg.Opts.MaxCubeLen,
		CubeBudget:  int64(obsFlags.CubeBudget),
		BDDMaxNodes: int64(obsFlags.BDDMaxNodes),
	}, tracer)
	if err != nil {
		finish()
		return fatal(err)
	}
	defer ckpt.Close()
	cfg.Checkpoint = ckpt
	ctx, cancel := obsFlags.Context()
	defer cancel()

	var res *predabs.VerifyResult
	if *specFile != "" {
		res, err = predabs.VerifySpecCtx(ctx, string(src), string(specSrc), *entry, cfg)
	} else {
		res, err = predabs.VerifyCtx(ctx, string(src), *entry, cfg)
	}
	if err != nil {
		finish()
		return fatalFile(flag.Arg(0), err)
	}
	if err := ckpt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "slam: warning: checkpointing disabled:", err)
	}
	if err := finish(); err != nil {
		fmt.Fprintln(os.Stderr, "slam:", err)
	}

	fmt.Printf("RESULT: %s (iterations: %d, predicates: %d, prover calls: %d)\n",
		res.Outcome, res.Iterations, res.PredCount, res.ProverCalls)
	if *stats {
		fmt.Fprintf(os.Stderr, "prover calls: %d\nprover cache hits: %d\ntheory solver time: %v\n",
			res.ProverCalls, res.CacheHits, res.SolverTime)
		fmt.Fprintf(os.Stderr, "stage abstraction (c2bp): %v\nstage model checking (bebop): %v\nstage predicate discovery (newton): %v\n",
			res.AbstractTime, res.CheckTime, res.NewtonTime)
		fmt.Fprintf(os.Stderr, "bebop iterations: %d\n", res.CheckIterations)
		for _, p := range sortedProcs(res.CheckIterationsByProc) {
			fmt.Fprintf(os.Stderr, "  proc %s: %d\n", p, res.CheckIterationsByProc[p])
		}
	}
	switch res.Outcome {
	case predabs.ErrorFound:
		if *explain {
			fmt.Println("error path (annotated):")
			for _, e := range res.Explain(flag.Arg(0)) {
				fmt.Println("  " + e)
			}
		} else {
			fmt.Println("error path:")
			for _, e := range res.ErrorTrace {
				fmt.Println("  " + e)
			}
		}
		return 1
	case predabs.Unknown:
		if res.LimitName != "" {
			fmt.Printf("stopped by limit %q in stage %q\n", res.LimitName, res.LimitStage)
		}
		for _, d := range res.Degradations {
			fmt.Fprintf(os.Stderr, "slam: degraded: stage %s limit %s %s (x%d)\n", d.Stage, d.Limit, d.Detail, d.Count)
		}
		if *explain {
			fmt.Println("partial results:")
			for _, line := range res.ExplainUnknown() {
				fmt.Println("  " + line)
			}
		}
		return 2
	}
	return 0
}

func sortedProcs(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "slam:", err)
	return 1
}

// fatalFile attributes an input error to its file; parser errors carry
// the line, yielding file:line diagnostics.
func fatalFile(name string, err error) int {
	fmt.Fprintf(os.Stderr, "slam: %s: %v\n", name, err)
	return 1
}
