// Command slam statically checks a temporal safety property of a MiniC
// program by iterative predicate abstraction (C2bp), model checking
// (Bebop) and predicate discovery (Newton) — the SLAM toolkit's process.
//
// Usage:
//
//	slam -spec locking.slic -entry main driver.c
//	slam -entry main program_with_asserts.c
package main

import (
	"flag"
	"fmt"
	"os"

	"predabs"
)

func main() {
	specFile := flag.String("spec", "", "SLIC-style specification file (optional; without it, asserts in the source are checked)")
	entry := flag.String("entry", "main", "entry procedure")
	maxIters := flag.Int("maxiters", 10, "maximum abstraction refinement iterations")
	jobs := flag.Int("j", 0, "cube-search worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	stats := flag.Bool("stats", false, "print per-stage timings and prover statistics to stderr")
	verbose := flag.Bool("v", false, "log each refinement iteration")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slam [-spec file] -entry <proc> <source.c>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cfg := predabs.DefaultVerifyConfig()
	cfg.MaxIterations = *maxIters
	cfg.Opts.Jobs = *jobs
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var res *predabs.VerifyResult
	if *specFile != "" {
		specSrc, err := os.ReadFile(*specFile)
		if err != nil {
			fatal(err)
		}
		res, err = predabs.VerifySpec(string(src), string(specSrc), *entry, cfg)
		if err != nil {
			fatal(err)
		}
	} else {
		res, err = predabs.Verify(string(src), *entry, cfg)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("RESULT: %s (iterations: %d, predicates: %d, prover calls: %d)\n",
		res.Outcome, res.Iterations, res.PredCount, res.ProverCalls)
	if *stats {
		fmt.Fprintf(os.Stderr, "prover calls: %d\nprover cache hits: %d\ntheory solver time: %v\n",
			res.ProverCalls, res.CacheHits, res.SolverTime)
		fmt.Fprintf(os.Stderr, "stage abstraction (c2bp): %v\nstage model checking (bebop): %v\nstage predicate discovery (newton): %v\n",
			res.AbstractTime, res.CheckTime, res.NewtonTime)
	}
	switch res.Outcome {
	case predabs.ErrorFound:
		fmt.Println("error path:")
		for _, e := range res.ErrorTrace {
			fmt.Println("  " + e)
		}
		os.Exit(1)
	case predabs.Unknown:
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "slam:", err)
	os.Exit(1)
}
