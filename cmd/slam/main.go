// Command slam statically checks a temporal safety property of a MiniC
// program by iterative predicate abstraction (C2bp), model checking
// (Bebop) and predicate discovery (Newton) — the SLAM toolkit's process.
//
// Usage:
//
//	slam -spec locking.slic -entry main driver.c
//	slam -entry main program_with_asserts.c
//	slam -trace-out run.jsonl -report -explain -entry main program.c
//
// The run itself (pipeline wiring, checkpointing, output rendering)
// lives in internal/runner, shared with the predabsd verification
// daemon so daemon verdicts are byte-identical to direct slam runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"predabs"
	"predabs/internal/obs"
	"predabs/internal/runner"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// Stage panics are already converted to StageErrors inside the
	// pipeline and runner.Run nets the rest of the run; this catches
	// flag handling and file reading so the CLI never dies raw.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "slam: internal error: %v\n", p)
			code = 1
		}
	}()
	specFile := flag.String("spec", "", "SLIC-style specification file (optional; without it, asserts in the source are checked)")
	entry := flag.String("entry", "main", "entry procedure")
	maxIters := flag.Int("maxiters", 10, "maximum abstraction refinement iterations")
	jobs := flag.Int("j", 0, "cube-search worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	absEngine := flag.String("abs-engine", "cubes", "abstraction engine: cubes (per-cube prover queries) or models (incremental model enumeration)")
	cacheURL := flag.String("cache-url", "", "shared prover cache (predcached) base URL; empty disables the remote tier")
	cacheVerify := flag.Bool("cache-verify", false, "revalidate a sample of remote cache hits against the local prover; any mismatch quarantines the cache for the run")
	stats := flag.Bool("stats", false, "print per-stage timings and prover statistics to stderr")
	explain := flag.Bool("explain", false, "render a found error path as an annotated source-level trace")
	verbose := flag.Bool("v", false, "log each refinement iteration")
	obsFlags := obs.Register()
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: slam [-spec file] -entry <proc> <source.c>")
		return 2
	}
	if *jobs < 0 {
		fmt.Fprintf(os.Stderr, "slam: flag -j: %d: must not be negative (0 = GOMAXPROCS)\n", *jobs)
		return 2
	}
	if *maxIters <= 0 {
		fmt.Fprintf(os.Stderr, "slam: flag -maxiters: %d: must be positive\n", *maxIters)
		return 2
	}
	if !predabs.ValidEngine(*absEngine) {
		fmt.Fprintf(os.Stderr, "slam: flag -abs-engine: %q: must be %q or %q\n",
			*absEngine, predabs.EngineCubes, predabs.EngineModels)
		return 2
	}
	if err := obsFlags.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "slam:", err)
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "slam:", err)
		return 1
	}
	var specSrc []byte
	if *specFile != "" {
		if specSrc, err = os.ReadFile(*specFile); err != nil {
			fmt.Fprintln(os.Stderr, "slam:", err)
			return 1
		}
	}
	code, _ = runner.Run(runner.Input{
		SourceName:  flag.Arg(0),
		Source:      string(src),
		Spec:        string(specSrc),
		HasSpec:     *specFile != "",
		Entry:       *entry,
		MaxIters:    *maxIters,
		Jobs:        *jobs,
		Engine:      *absEngine,
		Stats:       *stats,
		Explain:     *explain,
		Verbose:     *verbose,
		CacheURL:    *cacheURL,
		CacheVerify: *cacheVerify,
		Obs:         obsFlags,
	}, os.Stdout, os.Stderr)
	return code
}
