// Command bebop model checks a boolean program: it computes the reachable
// states of every statement by interprocedural dataflow analysis over
// BDDs and reports whether any assert can fail, mirroring the paper's
// Bebop tool.
//
// Usage:
//
//	bebop -entry main program.bp
//	bebop -entry partition -invariant partition:L program.bp
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"predabs"
)

func main() {
	entry := flag.String("entry", "main", "entry procedure")
	invariant := flag.String("invariant", "", "print the invariant at proc:label")
	allInvariants := flag.Bool("invariants", false, "print the invariant at every labelled statement")
	showTrace := flag.Bool("trace", false, "print a counterexample trace for a reachable violation")
	stats := flag.Bool("stats", false, "print fixpoint statistics to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bebop -entry <proc> [-invariant proc:label] <program.bp>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	bprog, err := predabs.ParseBooleanProgram(string(src))
	if err != nil {
		fatal(err)
	}
	res, err := bprog.Check(*entry)
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := res.Stats()
		fmt.Fprintf(os.Stderr, "fixpoint iterations: %d\nfixpoint time: %v\n",
			s.Iterations, s.FixpointTime)
	}
	if *invariant != "" {
		parts := strings.SplitN(*invariant, ":", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("bad -invariant %q, want proc:label", *invariant))
		}
		inv, err := res.InvariantAt(parts[0], parts[1])
		if err != nil {
			fatal(err)
		}
		fmt.Printf("invariant at %s:\n  %s\n", *invariant, inv)
	}
	if *allInvariants {
		for _, line := range res.LabelledInvariants() {
			fmt.Println(line)
		}
	}
	if proc, stmt, bad := res.ErrorReachable(); bad {
		fmt.Printf("RESULT: assertion violation reachable at %s (statement %d)\n", proc, stmt)
		if *showTrace {
			steps, ok := res.ErrorTrace()
			if ok {
				fmt.Println("trace:")
				for _, s := range steps {
					fmt.Println("  " + s)
				}
			} else {
				fmt.Println("trace: (extraction failed)")
			}
		}
		os.Exit(1)
	}
	fmt.Println("RESULT: no assertion violation is reachable")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bebop:", err)
	os.Exit(1)
}
