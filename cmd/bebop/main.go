// Command bebop model checks a boolean program: it computes the reachable
// states of every statement by interprocedural dataflow analysis over
// BDDs and reports whether any assert can fail, mirroring the paper's
// Bebop tool.
//
// Usage:
//
//	bebop -entry main program.bp
//	bebop -entry partition -invariant partition:L program.bp
//	bebop -trace-out run.jsonl -report -entry main program.bp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"predabs"
	"predabs/internal/checkpoint"
	"predabs/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	// Convert any internal crash into a diagnosable error exit.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "bebop: internal error: %v\n", p)
			code = 1
		}
	}()
	entry := flag.String("entry", "main", "entry procedure")
	invariant := flag.String("invariant", "", "print the invariant at proc:label")
	allInvariants := flag.Bool("invariants", false, "print the invariant at every labelled statement")
	showTrace := flag.Bool("trace", false, "print a counterexample trace for a reachable violation")
	stats := flag.Bool("stats", false, "print fixpoint statistics to stderr")
	obsFlags := obs.Register()
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bebop -entry <proc> [-invariant proc:label] <program.bp>")
		return 2
	}
	if err := obsFlags.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bebop:", err)
		return 2
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return fatal(err)
	}
	bprog, err := predabs.ParseBooleanProgram(string(src))
	if err != nil {
		return fatalFile(flag.Arg(0), err)
	}
	tracer, finish, err := obsFlags.Start()
	if err != nil {
		return fatal(err)
	}
	// Bebop recomputes its fixpoint from scratch (no prover cache to
	// spill), so the journal records only the final verdict — but the
	// state directory is still validated, so a corrupted or foreign
	// journal is diagnosed here rather than silently trusted by a later
	// slam run.
	ckpt, err := obsFlags.OpenCheckpoint(checkpoint.CompatKey{
		Tool: "bebop", Version: predabs.Version,
		Program: string(src), Entry: *entry,
		BDDMaxNodes: int64(obsFlags.BDDMaxNodes),
	}, tracer)
	if err != nil {
		finish()
		return fatal(err)
	}
	defer ckpt.Close()
	ctx, cancel := obsFlags.Context()
	defer cancel()
	res, err := bprog.CheckCtx(ctx, *entry, tracer, obsFlags.Limits())
	if err != nil {
		finish()
		return fatal(err)
	}
	outcome := "no-violation"
	limit := ""
	if _, _, bad := res.ErrorReachable(); bad {
		outcome = "violation"
	} else if reason, degraded := res.Degraded(); degraded {
		outcome, limit = "unknown", reason
	}
	if err := ckpt.AppendFinal(outcome, limit); err != nil {
		fmt.Fprintln(os.Stderr, "bebop: warning: checkpoint final record failed:", err)
	}
	if err := finish(); err != nil {
		fmt.Fprintln(os.Stderr, "bebop:", err)
	}
	if *stats {
		s := res.Stats()
		fmt.Fprintf(os.Stderr, "fixpoint iterations: %d\nfixpoint time: %v\n",
			s.Iterations, s.FixpointTime)
		procs := make([]string, 0, len(s.IterationsByProc))
		for p := range s.IterationsByProc {
			procs = append(procs, p)
		}
		sort.Strings(procs)
		for _, p := range procs {
			fmt.Fprintf(os.Stderr, "  proc %s: %d\n", p, s.IterationsByProc[p])
		}
	}
	if *invariant != "" {
		parts := strings.SplitN(*invariant, ":", 2)
		if len(parts) != 2 {
			return fatal(fmt.Errorf("bad -invariant %q, want proc:label", *invariant))
		}
		inv, err := res.InvariantAt(parts[0], parts[1])
		if err != nil {
			return fatal(err)
		}
		fmt.Printf("invariant at %s:\n  %s\n", *invariant, inv)
	}
	if *allInvariants {
		for _, line := range res.LabelledInvariants() {
			fmt.Println(line)
		}
	}
	if proc, stmt, bad := res.ErrorReachable(); bad {
		// Failures found by a truncated fixpoint are genuine (the
		// explored set under-approximates reachability), so degradation
		// does not soften this verdict.
		fmt.Printf("RESULT: assertion violation reachable at %s (statement %d)\n", proc, stmt)
		if *showTrace {
			steps, ok := res.ErrorTrace()
			if ok {
				fmt.Println("trace:")
				for _, s := range steps {
					fmt.Println("  " + s)
				}
			} else {
				fmt.Println("trace: (extraction failed)")
			}
		}
		return 1
	}
	if reason, degraded := res.Degraded(); degraded {
		// A failure-free truncated fixpoint proves nothing: the answer
		// is unknown, with the partial exploration named.
		fmt.Printf("RESULT: unknown (fixpoint truncated by limit %q; no violation found in the explored states)\n", reason)
		for _, d := range res.Degradations() {
			fmt.Fprintf(os.Stderr, "bebop: degraded: stage %s limit %s %s (x%d)\n", d.Stage, d.Limit, d.Detail, d.Count)
		}
		return 2
	}
	fmt.Println("RESULT: no assertion violation is reachable")
	return 0
}

func fatal(err error) int {
	fmt.Fprintln(os.Stderr, "bebop:", err)
	return 1
}

// fatalFile attributes an input error to its file; parser errors carry
// the line, yielding file:line diagnostics.
func fatalFile(name string, err error) int {
	fmt.Fprintf(os.Stderr, "bebop: %s: %v\n", name, err)
	return 1
}
