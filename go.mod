module predabs

go 1.22
