// Package obs wires the shared observability command-line flags —
// structured tracing, run reports and CPU profiling — into the predabs
// CLIs (c2bp, bebop, slam). It owns the lifecycle: open sinks before the
// run, attach a *trace.Tracer, then flush the Chrome export, render the
// report and stop the profiler afterwards.
package obs

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"predabs/internal/budget"
	"predabs/internal/checkpoint"
	"predabs/internal/trace"
)

// Flags holds the shared observability flag values.
type Flags struct {
	// TraceOut is the JSONL structured-event log path (-trace-out).
	TraceOut string
	// ChromeOut is the Chrome trace_event JSON path (-trace-chrome),
	// loadable in Perfetto or chrome://tracing.
	ChromeOut string
	// Report enables the end-of-run text report on stderr (-report).
	Report bool
	// ReportJSON is the end-of-run JSON report path (-report-json).
	ReportJSON string
	// CPUProfile is the pprof CPU profile path (-pprof).
	CPUProfile string

	// Timeout bounds the whole run's wall clock (-timeout); the pipeline
	// degrades soundly to a partial answer instead of being killed.
	Timeout time.Duration
	// QueryTimeout bounds each theorem-prover query (-query-timeout); a
	// timed-out query answers "could not prove".
	QueryTimeout time.Duration
	// CubeBudget caps prover-backed cube candidates per procedure
	// (-cube-budget); exhausted procedures weaken soundly.
	CubeBudget int
	// BDDMaxNodes caps Bebop's BDD node count (-bdd-max-nodes); hitting
	// it truncates the fixpoint, so a failure-free answer means unknown.
	BDDMaxNodes int

	// State is the checkpoint state directory (-state): enable the
	// durable journal there, warm-starting from a compatible one when it
	// exists, cold-starting (with a diagnostic) otherwise.
	State string
	// Resume (-resume) makes warm-starting mandatory: a missing,
	// corrupted or incompatible journal is a startup error instead of a
	// silent cold start.
	Resume bool
	// NoPersist (-no-persist) warm-starts read-only: the journal is
	// replayed but never written, not even torn-tail repairs.
	NoPersist bool
}

// Register declares the shared flags on the default flag set.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.TraceOut, "trace-out", "", "write structured JSONL trace events to `file`")
	flag.StringVar(&f.ChromeOut, "trace-chrome", "", "write a Chrome trace_event JSON (Perfetto-loadable) to `file`")
	flag.BoolVar(&f.Report, "report", false, "print an end-of-run report to stderr")
	flag.StringVar(&f.ReportJSON, "report-json", "", "write the end-of-run report as JSON to `file`")
	flag.StringVar(&f.CPUProfile, "pprof", "", "write a CPU profile to `file`")
	flag.DurationVar(&f.Timeout, "timeout", 0, "whole-run wall-clock deadline (0 = none); the run degrades soundly and reports partial results")
	flag.DurationVar(&f.QueryTimeout, "query-timeout", 0, "per-prover-query deadline (0 = none); timed-out queries count as \"could not prove\"")
	flag.IntVar(&f.CubeBudget, "cube-budget", 0, "max prover-backed cube candidates per procedure (0 = unlimited)")
	flag.IntVar(&f.BDDMaxNodes, "bdd-max-nodes", 0, "Bebop BDD node ceiling (0 = unlimited); exceeding it truncates the fixpoint")
	flag.StringVar(&f.State, "state", "", "checkpoint state `dir`: journal refinement state there and warm-start from a compatible journal")
	flag.BoolVar(&f.Resume, "resume", false, "require a valid compatible journal in -state (error instead of cold start)")
	flag.BoolVar(&f.NoPersist, "no-persist", false, "warm-start from -state read-only; never write the journal")
	return f
}

// OpenCheckpoint applies the -state/-resume/-no-persist semantics for
// key, returning the manager to hand to the pipeline (nil when -state is
// unset). Diagnostics — torn-tail repairs, rejected journals — go to
// stderr and the tracer; a corrupt or incompatible journal under plain
// -state cold-starts with a fresh journal, under -resume it is fatal.
func (f *Flags) OpenCheckpoint(key checkpoint.CompatKey, tracer *trace.Tracer) (*checkpoint.Manager, error) {
	return f.OpenCheckpointW(os.Stderr, key, tracer)
}

// OpenCheckpointW is OpenCheckpoint with the diagnostic stream made
// explicit, for callers that do not own the process stderr (the runner
// package, predabsd workers).
func (f *Flags) OpenCheckpointW(w io.Writer, key checkpoint.CompatKey, tracer *trace.Tracer) (*checkpoint.Manager, error) {
	if f.State == "" {
		if f.Resume || f.NoPersist {
			return nil, fmt.Errorf("-resume and -no-persist require -state")
		}
		return nil, nil
	}
	m, err := checkpoint.Open(f.State, key, f.NoPersist)
	if err != nil {
		var ce *checkpoint.CorruptError
		var ie *checkpoint.IncompatibleError
		if !errors.As(err, &ce) && !errors.As(err, &ie) {
			return nil, err
		}
		if f.Resume {
			return nil, fmt.Errorf("%w (-resume forbids a cold start)", err)
		}
		fmt.Fprintf(w, "warning: %v; cold-starting with a fresh journal\n", err)
		tracer.Event("checkpoint", "coldstart", trace.Str("reason", err.Error()))
		if f.NoPersist {
			// Nothing to recreate read-only: run stateless.
			return nil, nil
		}
		return checkpoint.Create(f.State, key)
	}
	for _, warning := range m.Warnings() {
		fmt.Fprintf(w, "warning: checkpoint: %s\n", warning)
		tracer.Event("checkpoint", "repair", trace.Str("detail", warning))
	}
	if f.Resume && m.Snapshot() == nil {
		m.Close()
		return nil, fmt.Errorf("checkpoint: %s: no committed iteration to resume from (-resume forbids a cold start)", f.State)
	}
	return m, nil
}

// Validate rejects nonsensical limit flag values before any work runs.
// The wall-clock flags default to 0 ("no limit"), so they are only
// checked when the user set them explicitly on the default flag set —
// an explicit -timeout 0 (or a negative one) is a contradiction, not a
// request for an unlimited run. Counting limits must not be negative.
// The returned errors are flag:value-style diagnostics; callers print
// them and exit 2 (usage error), mirroring the parse-failure contract.
func (f *Flags) Validate() error {
	set := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })
	if set["timeout"] && f.Timeout <= 0 {
		return fmt.Errorf("flag -timeout: %v: must be positive (omit the flag for no deadline)", f.Timeout)
	}
	if set["query-timeout"] && f.QueryTimeout <= 0 {
		return fmt.Errorf("flag -query-timeout: %v: must be positive (omit the flag for no deadline)", f.QueryTimeout)
	}
	if f.CubeBudget < 0 {
		return fmt.Errorf("flag -cube-budget: %d: must not be negative (0 = unlimited)", f.CubeBudget)
	}
	if f.BDDMaxNodes < 0 {
		return fmt.Errorf("flag -bdd-max-nodes: %d: must not be negative (0 = unlimited)", f.BDDMaxNodes)
	}
	return nil
}

// Limits bundles the resource-limit flag values.
func (f *Flags) Limits() budget.Limits {
	return budget.Limits{
		RunTimeout:   f.Timeout,
		QueryTimeout: f.QueryTimeout,
		CubeBudget:   f.CubeBudget,
		BDDMaxNodes:  f.BDDMaxNodes,
	}
}

// Context returns the run's root context, honouring -timeout. Call the
// returned cancel func when the run finishes.
func (f *Flags) Context() (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(context.Background(), f.Timeout)
	}
	return context.WithCancel(context.Background())
}

// session tracks the open sinks between Start and Finish.
type session struct {
	flags     *Flags
	tracer    *trace.Tracer
	jsonlFile *os.File
	pprofFile *os.File
}

// Start opens the requested sinks and returns the tracer to thread
// through the pipeline (nil when no observability flag was given, which
// disables tracing at zero cost) plus a finish func to call after the
// run. The finish func is safe to call exactly once, including on the
// error paths that skip the run's output.
func (f *Flags) Start() (*trace.Tracer, func() error, error) {
	s := &session{flags: f}
	var cfg trace.Config
	if f.TraceOut != "" {
		file, err := os.Create(f.TraceOut)
		if err != nil {
			return nil, nil, fmt.Errorf("trace-out: %w", err)
		}
		s.jsonlFile = file
		cfg.JSONL = file
	}
	cfg.RetainChrome = f.ChromeOut != ""
	if f.TraceOut != "" || f.ChromeOut != "" || f.Report || f.ReportJSON != "" {
		s.tracer = trace.New(cfg)
	}
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			s.close()
			return nil, nil, fmt.Errorf("pprof: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			s.close()
			return nil, nil, fmt.Errorf("pprof: %w", err)
		}
		s.pprofFile = file
	}
	return s.tracer, s.finish, nil
}

func (s *session) close() {
	if s.jsonlFile != nil {
		s.jsonlFile.Close()
		s.jsonlFile = nil
	}
}

// finish stops the profiler, writes the Chrome export and report sinks,
// and closes every open file. The first error wins; later steps still
// run.
func (s *session) finish() error {
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if s.pprofFile != nil {
		pprof.StopCPUProfile()
		keep(s.pprofFile.Close())
		s.pprofFile = nil
	}
	if s.jsonlFile != nil {
		keep(s.jsonlFile.Close())
		s.jsonlFile = nil
	}
	if s.flags.ChromeOut != "" && s.tracer != nil {
		file, err := os.Create(s.flags.ChromeOut)
		if err != nil {
			keep(err)
		} else {
			keep(s.tracer.WriteChrome(file))
			keep(file.Close())
		}
	}
	if s.tracer != nil && (s.flags.Report || s.flags.ReportJSON != "") {
		rep := s.tracer.Report()
		if s.flags.Report {
			fmt.Fprint(os.Stderr, rep.Text())
		}
		if s.flags.ReportJSON != "" {
			data, err := rep.JSON()
			if err != nil {
				keep(err)
			} else {
				keep(os.WriteFile(s.flags.ReportJSON, append(data, '\n'), 0o644))
			}
		}
	}
	return firstErr
}
