// Package wp computes weakest liberal preconditions for MiniC assignments
// over the quantifier-free logic of package form, using Morris' general
// axiom of assignment for pointer stores (paper Section 4.2):
//
//	φ[x,e,y] = (&x = &y ∧ φ[e/y]) ∨ (&x ≠ &y ∧ φ)
//
// applied simultaneously over every location read by φ. A may-alias oracle
// prunes disjuncts for provably non-aliased pairs and partially evaluates
// must-alias pairs, exactly as C2bp does with its points-to analysis.
package wp

import (
	"sort"
	"strings"

	"predabs/internal/form"
)

// Oracle answers may-alias queries between two location terms. The zero
// oracle (nil) is maximally conservative.
type Oracle interface {
	MayAlias(x, y form.Term) bool
}

// AlwaysMayAlias is the oracle without points-to information: every pair of
// same-kind locations may alias (the paper's 2^k-disjunct worst case).
type AlwaysMayAlias struct{}

// MayAlias always reports true.
func (AlwaysMayAlias) MayAlias(x, y form.Term) bool { return true }

// placeholder is the protected variable standing for the assigned value
// during simultaneous substitution; it cannot collide with program
// variables because MiniC identifiers cannot contain '$'.
var placeholder = form.Var{Name: "$rhs$"}

// maxRounds bounds the alias-fixpoint iteration. Substituting the
// right-hand side into dereference spines can create new read locations
// (e.g. *q := e turns *p into *e when q may point at p); those must be
// case-split too. Type-correct MiniC programs converge in one or two
// rounds; the cap triggers only on pathological pointer-to-pointer chains.
const maxRounds = 4

// Assignment returns WP(lhs := rhs, phi). lhs must be a location term.
// If the alias fixpoint does not converge it returns false, which is a
// sound no-information answer for the abstraction (see AssignmentOK).
func Assignment(o Oracle, lhs, rhs form.Term, phi form.Formula) form.Formula {
	f, _ := AssignmentOK(o, lhs, rhs, phi)
	return f
}

// AssignmentOK is Assignment with an explicit convergence flag. When ok is
// false the returned formula is false: not the true weakest precondition,
// but sound for predicate abstraction, where WP results are only ever used
// positively (F_V(false) = false simply yields no information and the
// abstraction havocs the predicate).
func AssignmentOK(o Oracle, lhs, rhs form.Term, phi form.Formula) (res form.Formula, ok bool) {
	if o == nil {
		o = AlwaysMayAlias{}
	}
	processed := map[string]bool{}
	cur := phi
	for round := 0; ; round++ {
		var pending []form.Term
		for _, y := range form.ReadLocations(cur) {
			s := y.String()
			if processed[s] || s == placeholder.Name {
				continue
			}
			// After the first round, everything already present is a
			// pre-state read (including alias-guard terms); only locations
			// newly created by substituting the placeholder into a
			// dereference spine (*$rhs$, $rhs$->f, ...) read post-memory
			// and still need case splits.
			if round > 0 && !strings.Contains(s, placeholder.Name) {
				continue
			}
			processed[s] = true
			if classify(o, lhs, y) != aliasNo {
				pending = append(pending, y)
			}
		}
		if len(pending) == 0 {
			return form.SubstReads(cur, placeholder, rhs), true
		}
		if round >= maxRounds {
			return form.FalseF{}, false
		}
		// Innermost-first: a read like *p resolves its base pointer p
		// before the dereference itself, mirroring bottom-up evaluation in
		// the post-state. Outer chains rewritten by an inner substitution
		// become placeholder-containing hybrids handled next round.
		sort.SliceStable(pending, func(i, j int) bool {
			si, sj := form.TermSize(pending[i]), form.TermSize(pending[j])
			if si != sj {
				return si < sj
			}
			return pending[i].String() < pending[j].String()
		})
		cur = split(o, lhs, cur, pending)
	}
}

// aliasClass classifies the relationship of the assignment target with a
// location read by the predicate.
type aliasClass int

const (
	aliasNo aliasClass = iota
	aliasMust
	aliasMay
)

func classify(o Oracle, lhs, y form.Term) aliasClass {
	if form.TermEq(lhs, y) {
		return aliasMust
	}
	if !compatibleKinds(lhs, y) {
		return aliasNo
	}
	if !o.MayAlias(lhs, y) {
		return aliasNo
	}
	return aliasMay
}

// compatibleKinds applies purely syntactic never-alias rules so the
// computation is sound even with the trivial oracle: distinct variables
// never alias; different struct fields never alias.
func compatibleKinds(x, y form.Term) bool {
	if vx, ok := x.(form.Var); ok {
		if vy, ok := y.(form.Var); ok {
			return vx.Name == vy.Name
		}
	}
	if sx, ok := x.(form.Sel); ok {
		if sy, ok := y.(form.Sel); ok && sx.Field != sy.Field {
			return false
		}
	}
	return true
}

func split(o Oracle, lhs form.Term, phi form.Formula, locs []form.Term) form.Formula {
	for len(locs) > 0 {
		y := locs[0]
		locs = locs[1:]
		switch classify(o, lhs, y) {
		case aliasNo:
			continue
		case aliasMust:
			phi = form.SubstReads(phi, y, placeholder)
			continue
		case aliasMay:
			addrEq := addrEqFormula(lhs, y)
			thenF := split(o, lhs, form.SubstReads(phi, y, placeholder), locs)
			elseF := split(o, lhs, phi, locs)
			switch addrEq.(type) {
			case form.TrueF:
				return thenF
			case form.FalseF:
				return elseF
			}
			return form.MkOr(
				form.MkAnd(addrEq, thenF),
				form.MkAnd(form.MkNot(addrEq), elseF),
			)
		}
	}
	return phi
}

// addrEqFormula builds the formula expressing &x = &y, using structural
// decompositions where possible so the prover sees simple pointer
// equalities:
//
//	&*p = &*q      ⇔  p = q
//	&(b1.f) = &(b2.f) ⇔ &b1 = &b2
//	&a[i] = &a[j]  ⇔  &a = &a ∧ i = j
func addrEqFormula(x, y form.Term) form.Formula {
	switch x := x.(type) {
	case form.Sel:
		if ys, ok := y.(form.Sel); ok {
			if x.Field != ys.Field {
				return form.FalseF{}
			}
			return structBaseEq(x.X, ys.X)
		}
	case form.Idx:
		if yi, ok := y.(form.Idx); ok {
			baseEq := structBaseEq(x.X, yi.X)
			idxEq := form.MkCmp(form.Eq, x.I, yi.I)
			return form.MkAnd(baseEq, idxEq)
		}
	}
	ax, ay := form.Addr(x), form.Addr(y)
	// Prefer the plain pointer on the left ("p == &x" rather than
	// "&x == p"), matching the paper's presentation.
	if _, isAddr := ax.(form.AddrOf); isAddr {
		if _, yAddr := ay.(form.AddrOf); !yAddr {
			ax, ay = ay, ax
		}
	}
	return form.MkCmp(form.Eq, ax, ay)
}

// structBaseEq expresses that two Sel/Idx base locations have equal
// addresses.
func structBaseEq(b1, b2 form.Term) form.Formula {
	d1, ok1 := b1.(form.Deref)
	d2, ok2 := b2.(form.Deref)
	if ok1 && ok2 {
		return form.MkCmp(form.Eq, d1.X, d2.X)
	}
	v1, okv1 := b1.(form.Var)
	v2, okv2 := b2.(form.Var)
	if okv1 && okv2 {
		if v1.Name == v2.Name {
			return form.TrueF{}
		}
		return form.FalseF{}
	}
	return form.MkCmp(form.Eq, form.Addr(b1), form.Addr(b2))
}
