package wp

import (
	"testing"

	"predabs/internal/form"
)

func TestWPConvergenceFlag(t *testing.T) {
	// Ordinary assignments converge.
	_, ok := AssignmentOK(nil, pt(t, "x"), pt(t, "y"), pf(t, "x < 5"))
	if !ok {
		t.Fatal("simple assignment should converge")
	}
}

func TestWPStructFieldOnValue(t *testing.T) {
	// s.f is a direct sub-object: assigning it rewrites reads of s.f and
	// nothing else.
	got := Assignment(noAlias{}, pt(t, "s.f"), pt(t, "7"), pf(t, "s.f == 7 && s.g == 1"))
	if got.String() != "s.g == 1" {
		t.Errorf("got %q", got)
	}
}

func TestWPSameFieldDifferentValueVars(t *testing.T) {
	// x.f vs y.f on distinct struct VALUES never alias.
	got := Assignment(nil, pt(t, "x.f"), pt(t, "1"), pf(t, "y.f == 0"))
	if got.String() != "y.f == 0" {
		t.Errorf("got %q", got)
	}
}

func TestWPChainThroughTwoStores(t *testing.T) {
	// Compose WP over a two-statement path manually:
	//   p->next = q;  r = p->next;   φ = (r == q)
	phi := pf(t, "r == q")
	phi = Assignment(heapOnly{}, pt(t, "r"), pt(t, "p->next"), phi)
	if phi.String() != "p->next == q" {
		t.Fatalf("after r = p->next: %q", phi)
	}
	phi = Assignment(heapOnly{}, pt(t, "p->next"), pt(t, "q"), phi)
	if _, ok := phi.(form.TrueF); !ok {
		t.Fatalf("after p->next = q: %q, want true", phi)
	}
}

func TestWPNullDerefTotalSemantics(t *testing.T) {
	// Reads through NULL are total in the logic: WP stays well-defined.
	got := Assignment(heapOnly{}, pt(t, "p"), pt(t, "NULL"), pf(t, "p->val > 0"))
	// p->val becomes NULL->val, an opaque term.
	if got.String() != "0->val > 0" {
		t.Errorf("got %q", got)
	}
}

func TestWPPreservesUntouchedDisjunct(t *testing.T) {
	got := Assignment(noAlias{}, pt(t, "x"), pt(t, "0"),
		pf(t, "x == 1 || y == 2"))
	if got.String() != "y == 2" {
		t.Errorf("got %q", got)
	}
}

func TestWPSelfAssignment(t *testing.T) {
	got := Assignment(noAlias{}, pt(t, "x"), pt(t, "x"), pf(t, "x > 0 && y < x"))
	if got.String() != "(x > 0) && (y < x)" {
		t.Errorf("self assignment must be identity: %q", got)
	}
}

func TestWPSwapComposition(t *testing.T) {
	// tmp=x; x=y; y=tmp preserves {x==a && y==b} ↦ {x==b && y==a}.
	phi := pf(t, "x == b && y == a")
	phi = Assignment(noAlias{}, pt(t, "y"), pt(t, "tmp"), phi)
	phi = Assignment(noAlias{}, pt(t, "x"), pt(t, "y"), phi)
	phi = Assignment(noAlias{}, pt(t, "tmp"), pt(t, "x"), phi)
	want := "(y == b) && (x == a)"
	if phi.String() != want {
		t.Errorf("got %q, want %q", phi, want)
	}
}

func TestWPThroughIndexChain(t *testing.T) {
	// a[a[i]] style nesting: the subscript itself reads a cell.
	phi := pf(t, "a[j] == 1")
	got := Assignment(heapOnly{}, pt(t, "j"), pt(t, "a[i]"), phi)
	if got.String() != "a[a[i]] == 1" {
		t.Errorf("got %q", got)
	}
}

// A regression distilled from the randomized suite: storing through a
// pointer that may point at the predicate's own base pointer (the
// innermost-first + hybrid-rounds case).
func TestWPStoreHitsBasePointer(t *testing.T) {
	// *q := t, φ = (*p == 0), where q may point at p (int** world).
	lhs, rhs := pt(t, "*q"), pt(t, "t")
	phi := pf(t, "*p == 0")
	wpf := Assignment(nil, lhs, rhs, phi)

	// Concrete check across the aliasing scenarios.
	for _, qAtP := range []bool{true, false} {
		env := form.NewEnv()
		pa := env.AddrOfVar("p")
		env.AddrOfVar("x")
		env.Store(form.Var{Name: "x"}, 0)
		env.Store(form.Var{Name: "p"}, env.AddrOfVar("x"))
		env.Store(form.Var{Name: "t"}, env.AddrOfVar("x"))
		if qAtP {
			env.Store(form.Var{Name: "q"}, pa)
		} else {
			env.Store(form.Var{Name: "q"}, env.AddrOfVar("y"))
		}
		pre, err := env.EvalFormula(wpf)
		if err != nil {
			t.Fatal(err)
		}
		post := env.Clone()
		tv, _ := post.Eval(rhs)
		if err := post.Store(lhs, tv); err != nil {
			t.Fatal(err)
		}
		after, err := post.EvalFormula(phi)
		if err != nil {
			t.Fatal(err)
		}
		if pre != after {
			t.Fatalf("qAtP=%v: pre=%v after=%v (wp=%s)", qAtP, pre, after, wpf)
		}
	}
}
