package wp

import (
	"math/rand"
	"testing"

	"predabs/internal/cparse"
	"predabs/internal/form"
)

func pf(t *testing.T, src string) form.Formula {
	t.Helper()
	e, err := cparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	f, err := form.FromCond(e)
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	return f
}

func pt(t *testing.T, src string) form.Term {
	t.Helper()
	e, err := cparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	tm, err := form.FromExpr(e)
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	return tm
}

// noAlias is an oracle where nothing aliases (beyond syntactic identity).
type noAlias struct{}

func (noAlias) MayAlias(x, y form.Term) bool { return false }

// heapOnly is an oracle for programs where no variable has its address
// taken: plain variables are never aliased, heap cells may be.
type heapOnly struct{}

func (heapOnly) MayAlias(x, y form.Term) bool {
	if _, ok := x.(form.Var); ok {
		return false
	}
	if _, ok := y.(form.Var); ok {
		return false
	}
	return true
}

func TestWPScalarAssignment(t *testing.T) {
	// Paper Section 4.1: WP(x=x+1, x<5) = x+1 < 5.
	got := Assignment(nil, pt(t, "x"), pt(t, "x + 1"), pf(t, "x < 5"))
	if got.String() != "(x + 1) < 5" {
		t.Errorf("got %q", got)
	}
}

func TestWPUnrelatedPredicate(t *testing.T) {
	got := Assignment(noAlias{}, pt(t, "x"), pt(t, "y"), pf(t, "z < 5"))
	if got.String() != "z < 5" {
		t.Errorf("got %q", got)
	}
}

func TestWPPointerStoreMorris(t *testing.T) {
	// Paper Section 4.2: WP(x=3, *p>5) = (&x = p ∧ 3 > 5) ∨ (&x ≠ p ∧ *p > 5).
	// The 3>5 disjunct folds away, leaving &x != p ∧ *p > 5.
	got := Assignment(nil, pt(t, "x"), pt(t, "3"), pf(t, "*p > 5"))
	want := "(p != &x) && (*p > 5)"
	if got.String() != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWPDerefStore(t *testing.T) {
	// WP(*p = 3, x > 5): case split on p == &x.
	got := Assignment(nil, pt(t, "*p"), pt(t, "3"), pf(t, "x > 5"))
	// (p == &x ∧ 3 > 5) ∨ (p ≠ &x ∧ x > 5) → p != &x && x > 5.
	want := "(p != &x) && (x > 5)"
	if got.String() != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWPDerefStoreBothDerefs(t *testing.T) {
	// WP(*p = 1, *q == 1) = (p == q ∧ true) ∨ (p ≠ q ∧ *q == 1)
	got := Assignment(heapOnly{}, pt(t, "*p"), pt(t, "1"), pf(t, "*q == 1"))
	want := "(p == q) || ((p != q) && (*q == 1))"
	if got.String() != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWPNoAliasOraclePrunes(t *testing.T) {
	got := Assignment(noAlias{}, pt(t, "*p"), pt(t, "1"), pf(t, "*q == 1"))
	if got.String() != "*q == 1" {
		t.Errorf("got %q, want unchanged", got)
	}
}

func TestWPFieldStore(t *testing.T) {
	// WP(prev->next = nc, curr->next == w) splits on prev == curr.
	got := Assignment(heapOnly{}, pt(t, "prev->next"), pt(t, "nc"), pf(t, "curr->next == w"))
	want := "((prev == curr) && (nc == w)) || ((prev != curr) && (curr->next == w))"
	if got.String() != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestWPDifferentFieldsNoSplit(t *testing.T) {
	got := Assignment(heapOnly{}, pt(t, "prev->next"), pt(t, "nc"), pf(t, "curr->val > v"))
	if got.String() != "curr->val > v" {
		t.Errorf("got %q, want unchanged", got)
	}
}

func TestWPSameLocationMust(t *testing.T) {
	got := Assignment(heapOnly{}, pt(t, "curr->val"), pt(t, "5"), pf(t, "curr->val > v"))
	if got.String() != "5 > v" {
		t.Errorf("got %q", got)
	}
}

func TestWPPointerVarAssignRewritesChain(t *testing.T) {
	// WP(prev = curr, prev->val > v) = curr->val > v (address-not-taken).
	got := Assignment(noAlias{}, pt(t, "prev"), pt(t, "curr"), pf(t, "prev->val > v"))
	if got.String() != "curr->val > v" {
		t.Errorf("got %q", got)
	}
	// WP(prev = NULL, prev == NULL) = true.
	got = Assignment(noAlias{}, pt(t, "prev"), pt(t, "NULL"), pf(t, "prev == NULL"))
	if _, ok := got.(form.TrueF); !ok {
		t.Errorf("got %q, want true", got)
	}
}

func TestWPArrayStore(t *testing.T) {
	// WP(a[i] = 0, a[j] == 1) splits on i == j.
	got := Assignment(heapOnly{}, pt(t, "a[i]"), pt(t, "0"), pf(t, "a[j] == 1"))
	want := "(i != j) && (a[j] == 1)"
	if got.String() != want {
		t.Errorf("got %q, want %q", got, want)
	}
	// Same index: must alias.
	got = Assignment(heapOnly{}, pt(t, "a[i]"), pt(t, "7"), pf(t, "a[i] == 7"))
	if _, ok := got.(form.TrueF); !ok {
		t.Errorf("same-cell store: got %q, want true", got)
	}
}

func TestWPAddressOfOccurrenceUntouched(t *testing.T) {
	// Assigning to x must not rewrite &x.
	got := Assignment(nil, pt(t, "x"), pt(t, "9"), pf(t, "p == &x"))
	if got.String() != "p == &x" {
		t.Errorf("got %q", got)
	}
}

func TestWPIndexVariableInSubscript(t *testing.T) {
	// Assigning the index variable rewrites the subscript read.
	got := Assignment(noAlias{}, pt(t, "i"), pt(t, "i + 1"), pf(t, "a[i] == 0"))
	if got.String() != "a[(i + 1)] == 0" {
		t.Errorf("got %q", got)
	}
}

// --- Property-based testing against the concrete little machine ---

// randomEnv builds an environment where pointer variables hold plausible
// addresses, so aliasing actually happens.
func randomEnv(r *rand.Rand, intVars, ptrVars []string) *form.Env {
	env := form.NewEnv()
	for _, v := range intVars {
		env.Store(form.Var{Name: v}, int64(r.Intn(9)-4))
	}
	// Allocate addresses for all vars first.
	for _, v := range intVars {
		env.AddrOfVar(v)
	}
	for _, v := range ptrVars {
		env.AddrOfVar(v)
	}
	for _, v := range ptrVars {
		var val int64
		switch r.Intn(4) {
		case 0:
			val = 0 // NULL
		case 1, 2:
			// Address of a random int variable.
			val = env.AddrOfVar(intVars[r.Intn(len(intVars))])
		case 3:
			// Address of a random pointer variable (pointer to pointer).
			val = env.AddrOfVar(ptrVars[r.Intn(len(ptrVars))])
		}
		env.Store(form.Var{Name: v}, val)
	}
	return env
}

// randomPredicate builds a random formula over the given variables.
func randomPredicate(r *rand.Rand, t *testing.T) form.Formula {
	preds := []string{
		"x < y", "x == 0", "y >= 1", "*p == x", "*q <= y", "p == q",
		"p == NULL", "*p != *q", "x + y < 3", "p == &x", "*p + 1 == y",
	}
	f := pf(t, preds[r.Intn(len(preds))])
	if r.Intn(2) == 0 {
		g := pf(t, preds[r.Intn(len(preds))])
		if r.Intn(2) == 0 {
			return form.MkAnd(f, g)
		}
		return form.MkOr(f, g)
	}
	return f
}

// TestWPAgainstConcreteSemantics: for random states, random assignments and
// random predicates, WP(s,φ) holds before executing s iff φ holds after.
// This is the defining property of the weakest (liberal) precondition for
// terminating deterministic assignments.
func TestWPAgainstConcreteSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	intVars := []string{"x", "y"}
	ptrVars := []string{"p", "q"}

	assignments := []struct{ lhs, rhs string }{
		{"x", "x + 1"}, {"x", "y"}, {"x", "0"}, {"y", "x + y"},
		{"*p", "3"}, {"*p", "x"}, {"*q", "*p"}, {"*p", "*p + 1"},
		{"p", "q"}, {"p", "&x"}, {"q", "&y"}, {"x", "*q"},
	}

	const trials = 4000
	for i := 0; i < trials; i++ {
		env := randomEnv(r, intVars, ptrVars)
		phi := randomPredicate(r, t)
		asn := assignments[r.Intn(len(assignments))]
		lhs, rhs := pt(t, asn.lhs), pt(t, asn.rhs)

		// Skip executions that would dereference NULL (undefined in C).
		if d, ok := lhs.(form.Deref); ok {
			pv, err := env.Eval(d.X)
			if err != nil || pv == 0 {
				continue
			}
		}
		wpf := Assignment(nil, lhs, rhs, phi)

		pre, err := env.EvalFormula(wpf)
		if err != nil {
			t.Fatalf("eval WP: %v (wp=%s)", err, wpf)
		}
		// Execute.
		post := env.Clone()
		rv, err := post.Eval(rhs)
		if err != nil {
			t.Fatalf("eval rhs: %v", err)
		}
		if err := post.Store(lhs, rv); err != nil {
			t.Fatalf("store: %v", err)
		}
		after, err := post.EvalFormula(phi)
		if err != nil {
			t.Fatalf("eval post: %v", err)
		}
		if pre != after {
			t.Fatalf("WP mismatch (trial %d):\n  stmt: %s = %s\n  phi:  %s\n  wp:   %s\n  pre=%v after=%v\n  env: %+v",
				i, asn.lhs, asn.rhs, phi, wpf, pre, after, env)
		}
	}
}

// Same property for field stores over linked-list shapes.
func TestWPFieldsAgainstConcreteSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const trials = 3000
	assignments := []struct{ lhs, rhs string }{
		{"this->next", "tmp"}, {"prev->next", "this"}, {"this->mark", "1"},
		{"this", "prev"}, {"prev", "this->next"}, {"tmp", "prev->next"},
	}
	preds := []string{
		"this->next == h", "prev->next == tmp", "this == prev",
		"this->mark == 1", "prev->next->mark == 0", "this != NULL",
	}
	for i := 0; i < trials; i++ {
		env := form.NewEnv()
		// Three node variables acting as heap cells, plus pointers.
		nodes := []string{"n1", "n2", "n3"}
		for _, n := range nodes {
			env.AddrOfVar(n)
		}
		addrOf := func(n string) int64 { return env.AddrOfVar(n) }
		randNode := func() int64 {
			if r.Intn(5) == 0 {
				return 0
			}
			return addrOf(nodes[r.Intn(len(nodes))])
		}
		for _, n := range nodes {
			env.Store(form.Sel{X: form.Var{Name: n}, Field: "next"}, randNode())
			env.Store(form.Sel{X: form.Var{Name: n}, Field: "mark"}, int64(r.Intn(2)))
		}
		for _, p := range []string{"this", "prev", "tmp", "h"} {
			env.Store(form.Var{Name: p}, randNode())
		}

		phi := pf(t, preds[r.Intn(len(preds))])
		asn := assignments[r.Intn(len(assignments))]
		lhs, rhs := pt(t, asn.lhs), pt(t, asn.rhs)

		// Skip NULL dereferences on either side.
		skip := false
		for _, tm := range []form.Term{lhs, rhs} {
			for _, loc := range form.TermReadLocations(tm) {
				if s, ok := loc.(form.Sel); ok {
					if d, ok := s.X.(form.Deref); ok {
						pv, err := env.Eval(d.X)
						if err != nil || pv == 0 {
							skip = true
						}
					}
				}
			}
		}
		// Predicates reading through NULL are undefined too.
		for _, loc := range form.ReadLocations(phi) {
			if s, ok := loc.(form.Sel); ok {
				if d, ok := s.X.(form.Deref); ok {
					pv, err := env.Eval(d.X)
					if err != nil || pv == 0 {
						skip = true
					}
				}
			}
		}
		if skip {
			continue
		}

		wpf := Assignment(nil, lhs, rhs, phi)
		pre, err := env.EvalFormula(wpf)
		if err != nil {
			t.Fatalf("eval WP: %v", err)
		}
		post := env.Clone()
		rv, err := post.Eval(rhs)
		if err != nil {
			t.Fatalf("eval rhs: %v", err)
		}
		if err := post.Store(lhs, rv); err != nil {
			t.Fatalf("store: %v", err)
		}
		after, err := post.EvalFormula(phi)
		if err != nil {
			t.Fatalf("eval post: %v", err)
		}
		if pre != after {
			t.Fatalf("WP mismatch (trial %d):\n  stmt: %s = %s\n  phi:  %s\n  wp:   %s\n  pre=%v after=%v",
				i, asn.lhs, asn.rhs, phi, wpf, pre, after)
		}
	}
}
