package cast

import (
	"fmt"
	"strings"
)

// Print renders the program as MiniC source. The output re-parses to an
// equivalent program; tests rely on print→parse→print being a fixpoint.
func Print(p *Program) string {
	var b strings.Builder
	pr := printer{b: &b}
	for _, s := range p.Structs {
		pr.structDef(s)
	}
	for _, g := range p.Globals {
		fmt.Fprintf(&b, "%s;\n", declString(g.Type, g.Name))
	}
	for _, f := range p.Funcs {
		pr.funcDef(f)
	}
	return b.String()
}

// PrintStmt renders a single statement at the given indent level.
func PrintStmt(s Stmt) string {
	var b strings.Builder
	pr := printer{b: &b}
	pr.stmt(s, 0)
	return b.String()
}

type printer struct {
	b *strings.Builder
}

func (pr *printer) indent(n int) {
	for i := 0; i < n; i++ {
		pr.b.WriteString("  ")
	}
}

// declString renders "type name" with C declarator syntax for pointers and
// arrays (e.g. "int *p", "int a[10]", "struct cell *l").
func declString(t Type, name string) string {
	suffix := ""
	for {
		if at, ok := t.(ArrayType); ok {
			if at.Len < 0 {
				suffix += "[]"
			} else {
				suffix += fmt.Sprintf("[%d]", at.Len)
			}
			t = at.Elem
			continue
		}
		break
	}
	stars := ""
	for {
		if pt, ok := t.(PointerType); ok {
			stars += "*"
			t = pt.Elem
			continue
		}
		break
	}
	return fmt.Sprintf("%s %s%s%s", t, stars, name, suffix)
}

func (pr *printer) structDef(s *StructDef) {
	fmt.Fprintf(pr.b, "struct %s {\n", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(pr.b, "  %s;\n", declString(f.Type, f.Name))
	}
	fmt.Fprintf(pr.b, "};\n")
}

func (pr *printer) funcDef(f *FuncDef) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = declString(p.Type, p.Name)
	}
	fmt.Fprintf(pr.b, "%s %s(%s) ", f.Ret, f.Name, strings.Join(params, ", "))
	pr.block(f.Body, 0)
	pr.b.WriteString("\n")
}

func (pr *printer) block(blk *Block, depth int) {
	pr.b.WriteString("{\n")
	for _, s := range blk.Stmts {
		pr.stmt(s, depth+1)
	}
	pr.indent(depth)
	pr.b.WriteString("}")
}

func (pr *printer) stmt(s Stmt, depth int) {
	switch s := s.(type) {
	case *Block:
		pr.indent(depth)
		pr.block(s, depth)
		pr.b.WriteString("\n")
	case *DeclStmt:
		pr.indent(depth)
		if s.Init != nil {
			fmt.Fprintf(pr.b, "%s = %s;\n", declString(s.Type, s.Name), s.Init)
		} else {
			fmt.Fprintf(pr.b, "%s;\n", declString(s.Type, s.Name))
		}
	case *AssignStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "%s = %s;\n", s.Lhs, s.Rhs)
	case *ExprStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "%s;\n", s.X)
	case *IfStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "if (%s) ", s.Cond)
		pr.stmtAsBlock(s.Then, depth)
		if s.Else != nil {
			pr.b.WriteString(" else ")
			pr.stmtAsBlock(s.Else, depth)
		}
		pr.b.WriteString("\n")
	case *WhileStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "while (%s) ", s.Cond)
		pr.stmtAsBlock(s.Body, depth)
		pr.b.WriteString("\n")
	case *GotoStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "goto %s;\n", s.Label)
	case *LabeledStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "%s:\n", s.Label)
		pr.stmt(s.Stmt, depth)
	case *ReturnStmt:
		pr.indent(depth)
		if s.X != nil {
			fmt.Fprintf(pr.b, "return %s;\n", s.X)
		} else {
			pr.b.WriteString("return;\n")
		}
	case *BreakStmt:
		pr.indent(depth)
		pr.b.WriteString("break;\n")
	case *ContinueStmt:
		pr.indent(depth)
		pr.b.WriteString("continue;\n")
	case *AssertStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "assert(%s);\n", s.X)
	case *AssumeStmt:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "assume(%s);\n", s.X)
	case *EmptyStmt:
		pr.indent(depth)
		pr.b.WriteString(";\n")
	default:
		pr.indent(depth)
		fmt.Fprintf(pr.b, "/* unknown stmt %T */;\n", s)
	}
}

// stmtAsBlock prints a statement as the body of an if/while, bracing
// non-block bodies so that dangling-else ambiguity never arises on reparse.
func (pr *printer) stmtAsBlock(s Stmt, depth int) {
	if blk, ok := s.(*Block); ok {
		pr.block(blk, depth)
		return
	}
	pr.b.WriteString("{\n")
	pr.stmt(s, depth+1)
	pr.indent(depth)
	pr.b.WriteString("}")
}
