package cast

import (
	"fmt"
	"strings"

	"predabs/internal/ctok"
)

// UnaryOp enumerates MiniC unary operators.
type UnaryOp int

// Unary operators.
const (
	Neg    UnaryOp = iota // -x
	Not                   // !x
	Deref_                // *x
	AddrOf                // &x
)

func (op UnaryOp) String() string {
	switch op {
	case Neg:
		return "-"
	case Not:
		return "!"
	case Deref_:
		return "*"
	case AddrOf:
		return "&"
	}
	return "?"
}

// BinOp enumerates MiniC binary operators.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	LAnd
	LOr
)

func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "=="
	case Ne:
		return "!="
	case LAnd:
		return "&&"
	case LOr:
		return "||"
	}
	return "?"
}

// IsRelational reports whether op compares values yielding a boolean.
func (op BinOp) IsRelational() bool {
	switch op {
	case Lt, Le, Gt, Ge, Eq, Ne:
		return true
	}
	return false
}

// IsLogical reports whether op is && or ||.
func (op BinOp) IsLogical() bool { return op == LAnd || op == LOr }

// Expr is a MiniC expression node.
type Expr interface {
	expr()
	Pos() ctok.Pos
	String() string
}

type exprBase struct{ P ctok.Pos }

func (e exprBase) Pos() ctok.Pos { return e.P }
func (exprBase) expr()           {}

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// NullLit is the NULL pointer literal.
type NullLit struct{ exprBase }

// VarRef is a reference to a named variable.
type VarRef struct {
	exprBase
	Name string
}

// Unary is a unary operation: -x, !x, *x, &x.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinOp
	X, Y Expr
}

// Field is a field access: X.Name (Arrow=false) or X->Name (Arrow=true).
type Field struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// Index is an array subscript X[I].
type Index struct {
	exprBase
	X Expr
	I Expr
}

// Call is a function call by name.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

func (e *IntLit) String() string  { return fmt.Sprintf("%d", e.Value) }
func (e *NullLit) String() string { return "NULL" }
func (e *VarRef) String() string  { return e.Name }

func (e *Unary) String() string {
	return fmt.Sprintf("%s%s", e.Op, parenExpr(e.X))
}

func (e *Binary) String() string {
	return fmt.Sprintf("%s %s %s", parenExpr(e.X), e.Op, parenExpr(e.Y))
}

func (e *Field) String() string {
	sep := "."
	if e.Arrow {
		sep = "->"
	}
	return parenExpr(e.X) + sep + e.Name
}

func (e *Index) String() string { return fmt.Sprintf("%s[%s]", parenExpr(e.X), e.I) }

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// parenExpr renders a subexpression, parenthesizing compound forms so that
// printed trees re-parse with the same structure.
func parenExpr(e Expr) string {
	switch e.(type) {
	case *IntLit, *NullLit, *VarRef, *Call, *Field, *Index:
		return e.String()
	default:
		return "(" + e.String() + ")"
	}
}

// Stmt is a MiniC statement node.
type Stmt interface {
	stmt()
	Pos() ctok.Pos
}

type stmtBase struct{ P ctok.Pos }

func (s stmtBase) Pos() ctok.Pos { return s.P }
func (stmtBase) stmt()           {}

// Block is a brace-delimited statement sequence.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally with an initializer.
type DeclStmt struct {
	stmtBase
	Name string
	Type Type
	Init Expr // may be nil
}

// AssignStmt is Lhs = Rhs.
type AssignStmt struct {
	stmtBase
	Lhs Expr
	Rhs Expr
}

// ExprStmt evaluates an expression for effect (in MiniC, a call).
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if (Cond) Then [else Else].
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is while (Cond) Body.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// GotoStmt jumps to a label.
type GotoStmt struct {
	stmtBase
	Label string
}

// LabeledStmt is Label: Stmt.
type LabeledStmt struct {
	stmtBase
	Label string
	Stmt  Stmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	stmtBase
	X Expr // may be nil
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ stmtBase }

// AssertStmt is assert(X): an error if X can be false.
type AssertStmt struct {
	stmtBase
	X Expr
}

// AssumeStmt is assume(X): executions where X is false are ignored.
type AssumeStmt struct {
	stmtBase
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ stmtBase }

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDef is a function definition.
type FuncDef struct {
	Name   string
	Ret    Type
	Params []Param
	Body   *Block
	P      ctok.Pos
}

// VarDecl is a global variable declaration.
type VarDecl struct {
	Name string
	Type Type
	P    ctok.Pos
}

// Program is a parsed MiniC translation unit.
type Program struct {
	Structs []*StructDef
	Globals []*VarDecl
	Funcs   []*FuncDef
}

// Struct returns the definition of the named struct, or nil.
func (p *Program) Struct(name string) *StructDef {
	for _, s := range p.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func returns the definition of the named function, or nil.
func (p *Program) Func(name string) *FuncDef {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global returns the declaration of the named global, or nil.
func (p *Program) Global(name string) *VarDecl {
	for _, g := range p.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// NewInt is a convenience constructor for integer literals.
func NewInt(v int64) *IntLit { return &IntLit{Value: v} }

// NewVar is a convenience constructor for variable references.
func NewVar(name string) *VarRef { return &VarRef{Name: name} }
