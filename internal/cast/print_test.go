package cast

import (
	"strings"
	"testing"
)

func TestDeclString(t *testing.T) {
	cases := []struct {
		t    Type
		name string
		want string
	}{
		{IntType{}, "x", "int x"},
		{PointerType{Elem: IntType{}}, "p", "int *p"},
		{PointerType{Elem: PointerType{Elem: IntType{}}}, "pp", "int **pp"},
		{ArrayType{Elem: IntType{}, Len: 10}, "a", "int a[10]"},
		{ArrayType{Elem: IntType{}, Len: -1}, "a", "int a[]"},
		{PointerType{Elem: StructType{Name: "cell"}}, "c", "struct cell *c"},
	}
	for _, c := range cases {
		if got := declString(c.t, c.name); got != c.want {
			t.Errorf("declString(%v, %s) = %q, want %q", c.t, c.name, got, c.want)
		}
	}
}

func TestTypesEqual(t *testing.T) {
	if !TypesEqual(PointerType{Elem: IntType{}}, PointerType{Elem: IntType{}}) {
		t.Error("int* == int*")
	}
	if TypesEqual(PointerType{Elem: IntType{}}, IntType{}) {
		t.Error("int* != int")
	}
	if !TypesEqual(StructType{Name: "s"}, StructType{Name: "s"}) {
		t.Error("struct s == struct s")
	}
	if TypesEqual(StructType{Name: "s"}, StructType{Name: "t"}) {
		t.Error("struct s != struct t")
	}
	if !TypesEqual(ArrayType{Elem: IntType{}, Len: 3}, ArrayType{Elem: IntType{}, Len: 5}) {
		t.Error("array equality ignores length (logical model)")
	}
}

func TestExprStrings(t *testing.T) {
	e := &Binary{Op: Add, X: NewVar("x"), Y: &Unary{Op: Neg, X: NewInt(3)}}
	if got := e.String(); got != "x + (-3)" {
		t.Errorf("got %q", got)
	}
	f := &Field{X: &Unary{Op: Deref_, X: NewVar("p")}, Name: "val"}
	if got := f.String(); got != "(*p).val" {
		t.Errorf("got %q", got)
	}
	g := &Field{X: NewVar("p"), Name: "val", Arrow: true}
	if got := g.String(); got != "p->val" {
		t.Errorf("got %q", got)
	}
	ix := &Index{X: NewVar("a"), I: &Binary{Op: Add, X: NewVar("i"), Y: NewInt(1)}}
	if got := ix.String(); got != "a[i + 1]" {
		t.Errorf("got %q", got)
	}
	c := &Call{Name: "f", Args: []Expr{NewVar("x"), NewInt(2)}}
	if got := c.String(); got != "f(x, 2)" {
		t.Errorf("got %q", got)
	}
}

func TestPrintStmtShapes(t *testing.T) {
	s := &IfStmt{
		Cond: &Binary{Op: Gt, X: NewVar("x"), Y: NewInt(0)},
		Then: &AssignStmt{Lhs: NewVar("y"), Rhs: NewInt(1)},
		Else: &Block{Stmts: []Stmt{&GotoStmt{Label: "L"}}},
	}
	out := PrintStmt(s)
	for _, frag := range []string{"if (x > 0)", "y = 1;", "goto L;", "else"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q in:\n%s", frag, out)
		}
	}
}

func TestProgramAccessors(t *testing.T) {
	p := &Program{
		Structs: []*StructDef{{Name: "s", Fields: []FieldDef{{Name: "f", Type: IntType{}}}}},
		Globals: []*VarDecl{{Name: "g", Type: IntType{}}},
		Funcs:   []*FuncDef{{Name: "main", Ret: VoidType{}, Body: &Block{}}},
	}
	if p.Struct("s") == nil || p.Struct("t") != nil {
		t.Error("Struct lookup")
	}
	if p.Struct("s").Field("f") == nil || p.Struct("s").Field("g") != nil {
		t.Error("Field lookup")
	}
	if p.Global("g") == nil || p.Global("x") != nil {
		t.Error("Global lookup")
	}
	if p.Func("main") == nil || p.Func("f") != nil {
		t.Error("Func lookup")
	}
}
