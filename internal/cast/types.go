// Package cast defines the abstract syntax tree for MiniC, the C subset
// consumed by the predabs toolkit, together with its type representations
// and a source printer.
package cast

import (
	"fmt"
	"strings"
)

// Type is a MiniC type. MiniC has int, void, named struct types, pointers,
// and (logically modelled) arrays.
type Type interface {
	typ()
	String() string
}

// IntType is the MiniC int type (also used for boolean-valued expressions).
type IntType struct{}

// VoidType is the type of procedures with no return value.
type VoidType struct{}

// StructType is a nominal reference to a struct definition; fields are
// resolved through the enclosing Program.
type StructType struct{ Name string }

// PointerType is a pointer to Elem.
type PointerType struct{ Elem Type }

// ArrayType is an array of Elem. Len < 0 means unknown length. Under the
// paper's logical memory model an array denotes one abstract object.
type ArrayType struct {
	Elem Type
	Len  int
}

func (IntType) typ()     {}
func (VoidType) typ()    {}
func (StructType) typ()  {}
func (PointerType) typ() {}
func (ArrayType) typ()   {}

func (IntType) String() string      { return "int" }
func (VoidType) String() string     { return "void" }
func (t StructType) String() string { return "struct " + t.Name }
func (t PointerType) String() string {
	return t.Elem.String() + "*"
}
func (t ArrayType) String() string {
	if t.Len < 0 {
		return t.Elem.String() + "[]"
	}
	return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
}

// TypesEqual reports structural equality of two MiniC types.
func TypesEqual(a, b Type) bool {
	switch a := a.(type) {
	case IntType:
		_, ok := b.(IntType)
		return ok
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case StructType:
		bb, ok := b.(StructType)
		return ok && a.Name == bb.Name
	case PointerType:
		bb, ok := b.(PointerType)
		return ok && TypesEqual(a.Elem, bb.Elem)
	case ArrayType:
		bb, ok := b.(ArrayType)
		return ok && TypesEqual(a.Elem, bb.Elem)
	}
	return false
}

// IsPointer reports whether t is a pointer type.
func IsPointer(t Type) bool {
	_, ok := t.(PointerType)
	return ok
}

// Deref returns the pointee type of a pointer (or array element type), and
// whether t was dereferenceable.
func Deref(t Type) (Type, bool) {
	switch t := t.(type) {
	case PointerType:
		return t.Elem, true
	case ArrayType:
		return t.Elem, true
	}
	return nil, false
}

// FieldDef is a named field inside a struct definition.
type FieldDef struct {
	Name string
	Type Type
}

// StructDef is a struct type definition.
type StructDef struct {
	Name   string
	Fields []FieldDef
}

// Field returns the definition of the named field, or nil.
func (s *StructDef) Field(name string) *FieldDef {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

func (s *StructDef) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s { ", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(&b, "%s %s; ", f.Type, f.Name)
	}
	b.WriteString("}")
	return b.String()
}
