package spec

import (
	"strings"
	"testing"

	"predabs/internal/cast"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
)

const lockSpec = `
state {
  int locked = 0;
}

event AcquireLock entry {
  if (locked == 1) { abort; }
  locked = 1;
}

event ReleaseLock entry {
  if (locked == 0) { abort; }
  locked = 0;
}
`

func TestParseLockSpec(t *testing.T) {
	sp, err := Parse(lockSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.States) != 1 || sp.States[0].Name != "locked" || sp.States[0].Init != 0 {
		t.Fatalf("states: %+v", sp.States)
	}
	if len(sp.Events) != 2 {
		t.Fatalf("events: %+v", sp.Events)
	}
	if sp.Events[0].Proc != "AcquireLock" {
		t.Errorf("event proc: %s", sp.Events[0].Proc)
	}
	// abort became assert(0) inside an if.
	ifs, ok := sp.Events[0].Body[0].(*cast.IfStmt)
	if !ok {
		t.Fatalf("body[0]: %T", sp.Events[0].Body[0])
	}
	blk := ifs.Then.(*cast.Block)
	if _, ok := blk.Stmts[0].(*cast.AssertStmt); !ok {
		t.Fatalf("abort not rewritten: %T", blk.Stmts[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"event X exit { }", "unknown"},
		{"state { int a = 0; }", "no events"},
		{"banana { }", "expected 'state' or 'event'"},
		{"state { float x; } event f entry { }", "must be int"},
		{"event f entry { abort }", ""},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error", c.src)
		}
	}
}

func TestNegativeInit(t *testing.T) {
	sp, err := Parse("state { int s = -3; } event f entry { s = 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if sp.States[0].Init != -3 {
		t.Fatalf("init: %d", sp.States[0].Init)
	}
}

func TestInstrument(t *testing.T) {
	prog := cparse.MustParse(`
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  ReleaseLock();
}
`)
	sp := MustParse(lockSpec)
	inst, err := Instrument(prog, sp, "main")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Global("locked") == nil {
		t.Fatal("state variable not added as global")
	}
	// The instrumented program type checks.
	if _, err := ctype.Check(inst); err != nil {
		t.Fatalf("instrumented program fails to check: %v\n%s", err, cast.Print(inst))
	}
	// main starts with locked = 0.
	main := inst.Func("main")
	as, ok := main.Body.Stmts[0].(*cast.AssignStmt)
	if !ok || as.Lhs.String() != "locked" {
		t.Fatalf("missing state init: %s", cast.PrintStmt(main.Body.Stmts[0]))
	}
	// AcquireLock starts with the event body.
	acq := inst.Func("AcquireLock")
	if _, ok := acq.Body.Stmts[0].(*cast.IfStmt); !ok {
		t.Fatalf("event body not prepended: %s", cast.PrintStmt(acq.Body.Stmts[0]))
	}
	// Original program untouched.
	if len(prog.Globals) != 0 {
		t.Error("original program mutated")
	}
}

func TestInstrumentErrors(t *testing.T) {
	prog := cparse.MustParse("void f(void) { }")
	sp := MustParse("state { int s = 0; } event g entry { s = 1; }")
	if _, err := Instrument(prog, sp, "f"); err == nil || !strings.Contains(err.Error(), "unknown procedure") {
		t.Errorf("got %v", err)
	}
	sp2 := MustParse("event f entry { }")
	if _, err := Instrument(prog, sp2, "nosuch"); err == nil || !strings.Contains(err.Error(), "entry procedure") {
		t.Errorf("got %v", err)
	}
	progG := cparse.MustParse("int s; void f(void) { s = 1; }")
	sp3 := MustParse("state { int s = 0; } event f entry { s = 2; }")
	if _, err := Instrument(progG, sp3, "f"); err == nil || !strings.Contains(err.Error(), "collides") {
		t.Errorf("got %v", err)
	}
}
