// Package spec implements a SLIC-style temporal-safety specification
// language and its instrumentation into MiniC programs, as used by the
// SLAM toolkit to check interface usage rules (paper Section 6.1: "proper
// usage of locks and proper handling of interrupt request packets").
//
// A specification declares integer state variables and event handlers
// attached to procedure entries:
//
//	state {
//	  int locked = 0;
//	}
//
//	event AcquireLock entry {
//	  if (locked == 1) { abort; }
//	  locked = 1;
//	}
//
// Instrumentation adds the state variables as globals, initializes them
// at the entry procedure, and prepends each event body to its procedure.
// "abort;" becomes "assert(0);", so SLAM's reachability question is
// exactly "can an abort statement execute?".
package spec

import (
	"fmt"
	"strconv"
	"strings"

	"predabs/internal/cast"
	"predabs/internal/cparse"
	"predabs/internal/ctok"
)

// StateVar is one specification state variable.
type StateVar struct {
	Name string
	Init int64
}

// Event attaches a handler body to a procedure entry.
type Event struct {
	Proc string
	Body []cast.Stmt
}

// Spec is a parsed temporal-safety specification.
type Spec struct {
	States []StateVar
	Events []Event
}

// Parse parses specification source text.
func Parse(src string) (*Spec, error) {
	toks, errs := ctok.ScanAll(src)
	if len(errs) > 0 {
		return nil, errs[0]
	}
	sp := &Spec{}
	i := 0
	peek := func() ctok.Token { return toks[i] }
	next := func() ctok.Token {
		t := toks[i]
		if t.Kind != ctok.EOF {
			i++
		}
		return t
	}

	takeBraceSpan := func() ([]ctok.Token, error) {
		if peek().Kind != ctok.LBrace {
			return nil, fmt.Errorf("%s: expected '{'", peek().Pos)
		}
		next()
		depth := 1
		start := i
		for depth > 0 {
			t := next()
			switch t.Kind {
			case ctok.LBrace:
				depth++
			case ctok.RBrace:
				depth--
			case ctok.EOF:
				return nil, fmt.Errorf("unterminated block")
			}
		}
		return toks[start : i-1], nil
	}

	for peek().Kind != ctok.EOF {
		t := next()
		if t.Kind != ctok.IDENT {
			return nil, fmt.Errorf("%s: expected 'state' or 'event', found %s", t.Pos, t)
		}
		switch t.Text {
		case "state":
			span, err := takeBraceSpan()
			if err != nil {
				return nil, err
			}
			states, err := parseStates(span)
			if err != nil {
				return nil, err
			}
			sp.States = append(sp.States, states...)
		case "event":
			nameTok := next()
			if nameTok.Kind != ctok.IDENT {
				return nil, fmt.Errorf("%s: expected procedure name", nameTok.Pos)
			}
			kindTok := next()
			if kindTok.Kind != ctok.IDENT || kindTok.Text != "entry" {
				return nil, fmt.Errorf("%s: only 'entry' events are supported", kindTok.Pos)
			}
			span, err := takeBraceSpan()
			if err != nil {
				return nil, err
			}
			body, err := parseBody(span)
			if err != nil {
				return nil, fmt.Errorf("event %s: %w", nameTok.Text, err)
			}
			sp.Events = append(sp.Events, Event{Proc: nameTok.Text, Body: body})
		default:
			return nil, fmt.Errorf("%s: expected 'state' or 'event', found %q", t.Pos, t.Text)
		}
	}
	if len(sp.Events) == 0 {
		return nil, fmt.Errorf("specification has no events")
	}
	return sp, nil
}

// MustParse panics on error.
func MustParse(src string) *Spec {
	sp, err := Parse(src)
	if err != nil {
		panic("spec.MustParse: " + err.Error())
	}
	return sp
}

// parseStates parses "int name = value;" declarations.
func parseStates(span []ctok.Token) ([]StateVar, error) {
	var out []StateVar
	i := 0
	for i < len(span) {
		if span[i].Kind != ctok.KwInt {
			return nil, fmt.Errorf("%s: state variables must be int", span[i].Pos)
		}
		i++
		if i >= len(span) || span[i].Kind != ctok.IDENT {
			return nil, fmt.Errorf("bad state declaration")
		}
		name := span[i].Text
		i++
		var init int64
		if i < len(span) && span[i].Kind == ctok.Assign {
			i++
			neg := false
			if i < len(span) && span[i].Kind == ctok.Minus {
				neg = true
				i++
			}
			if i >= len(span) || span[i].Kind != ctok.INT {
				return nil, fmt.Errorf("state %s: bad initializer", name)
			}
			v, err := strconv.ParseInt(span[i].Text, 10, 64)
			if err != nil {
				return nil, err
			}
			if neg {
				v = -v
			}
			init = v
			i++
		}
		if i >= len(span) || span[i].Kind != ctok.Semi {
			return nil, fmt.Errorf("state %s: missing ';'", name)
		}
		i++
		out = append(out, StateVar{Name: name, Init: init})
	}
	return out, nil
}

// parseBody reconstructs the event body source (rewriting "abort;" to
// "assert(0);") and parses it with the MiniC parser.
func parseBody(span []ctok.Token) ([]cast.Stmt, error) {
	var b strings.Builder
	for j := 0; j < len(span); j++ {
		t := span[j]
		if t.Kind == ctok.IDENT && t.Text == "abort" {
			b.WriteString(" assert(0)")
			continue
		}
		b.WriteString(" " + t.Text)
	}
	src := "void __evt(void) {" + b.String() + "}"
	// Parsing requires the state variables in scope; declare a permissive
	// superset by leaving resolution to instrumentation time (the MiniC
	// parser itself is scope-free; the type checker runs later on the
	// instrumented program).
	prog, err := cparse.Parse(src)
	if err != nil {
		return nil, err
	}
	f := prog.Func("__evt")
	if f == nil {
		return nil, fmt.Errorf("internal: event wrapper lost")
	}
	return f.Body.Stmts, nil
}

// Instrument weaves the specification into a program: state variables
// become globals initialized at the top of the entry procedure, and each
// event body is prepended to its procedure. The returned program shares
// unmodified function bodies with the input.
func Instrument(prog *cast.Program, sp *Spec, entry string) (*cast.Program, error) {
	out := &cast.Program{Structs: prog.Structs}
	out.Globals = append(out.Globals, prog.Globals...)
	for _, sv := range sp.States {
		if prog.Global(sv.Name) != nil {
			return nil, fmt.Errorf("spec state %q collides with a program global", sv.Name)
		}
		out.Globals = append(out.Globals, &cast.VarDecl{Name: sv.Name, Type: cast.IntType{}})
	}
	eventFor := map[string][]cast.Stmt{}
	for _, ev := range sp.Events {
		if prog.Func(ev.Proc) == nil {
			return nil, fmt.Errorf("spec event for unknown procedure %q", ev.Proc)
		}
		eventFor[ev.Proc] = append(eventFor[ev.Proc], ev.Body...)
	}
	foundEntry := false
	for _, f := range prog.Funcs {
		nf := &cast.FuncDef{Name: f.Name, Ret: f.Ret, Params: f.Params, P: f.P}
		var pre []cast.Stmt
		if f.Name == entry {
			foundEntry = true
			for _, sv := range sp.States {
				pre = append(pre, &cast.AssignStmt{
					Lhs: cast.NewVar(sv.Name),
					Rhs: cast.NewInt(sv.Init),
				})
			}
		}
		pre = append(pre, eventFor[f.Name]...)
		if len(pre) == 0 {
			nf.Body = f.Body
		} else {
			nf.Body = &cast.Block{Stmts: append(pre, f.Body.Stmts...)}
		}
		out.Funcs = append(out.Funcs, nf)
	}
	if !foundEntry {
		return nil, fmt.Errorf("entry procedure %q not found", entry)
	}
	return out, nil
}
