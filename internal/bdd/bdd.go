// Package bdd implements reduced ordered binary decision diagrams with the
// operations the Bebop model checker needs: boolean connectives, ite,
// existential quantification, variable renaming, satisfying-assignment
// enumeration and counting. The paper's Bebop represents reachable-state
// sets and transfer functions with BDDs (Section 2.2).
package bdd

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// terminalVar orders terminals below every real variable.
const terminalVar = int(^uint(0) >> 1)

type node struct {
	v      int // variable index
	lo, hi int // cofactor node ids
}

type triple struct{ v, lo, hi int }

type applyKey struct {
	op   byte
	a, b int
}

// Manager owns a shared node store for a set of BDDs. It is not safe for
// concurrent use.
type Manager struct {
	nodes   []node
	unique  map[triple]int
	apply   map[applyKey]int
	notMemo map[int]int
	numVars int
}

// New returns a manager with n variables (more can be added with AddVar).
func New(n int) *Manager {
	m := &Manager{
		unique:  map[triple]int{},
		apply:   map[applyKey]int{},
		notMemo: map[int]int{},
		numVars: n,
	}
	// Node 0 = false, node 1 = true.
	m.nodes = append(m.nodes, node{v: terminalVar}, node{v: terminalVar})
	return m
}

// NumVars returns the current variable count.
func (m *Manager) NumVars() int { return m.numVars }

// AddVar introduces a fresh variable (appended to the order) and returns
// its index.
func (m *Manager) AddVar() int {
	m.numVars++
	return m.numVars - 1
}

// NumNodes returns the number of allocated nodes (diagnostics).
func (m *Manager) NumNodes() int { return len(m.nodes) }

// False returns the constant false BDD.
func (m *Manager) False() int { return 0 }

// True returns the constant true BDD.
func (m *Manager) True() int { return 1 }

// IsFalse reports whether f is the constant false.
func (m *Manager) IsFalse(f int) bool { return f == 0 }

// IsTrue reports whether f is the constant true.
func (m *Manager) IsTrue(f int) bool { return f == 1 }

func (m *Manager) mk(v, lo, hi int) int {
	if lo == hi {
		return lo
	}
	key := triple{v, lo, hi}
	if id, ok := m.unique[key]; ok {
		return id
	}
	id := len(m.nodes)
	m.nodes = append(m.nodes, node{v: v, lo: lo, hi: hi})
	m.unique[key] = id
	return id
}

// Var returns the BDD for variable i.
func (m *Manager) Var(i int) int {
	if i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range (%d vars)", i, m.numVars))
	}
	return m.mk(i, 0, 1)
}

// NVar returns the BDD for ¬variable i.
func (m *Manager) NVar(i int) int {
	if i >= m.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range (%d vars)", i, m.numVars))
	}
	return m.mk(i, 1, 0)
}

// Not returns ¬f.
func (m *Manager) Not(f int) int {
	switch f {
	case 0:
		return 1
	case 1:
		return 0
	}
	if r, ok := m.notMemo[f]; ok {
		return r
	}
	n := m.nodes[f]
	r := m.mk(n.v, m.Not(n.lo), m.Not(n.hi))
	m.notMemo[f] = r
	return r
}

const (
	opAnd byte = iota
	opOr
	opXor
)

// And returns a ∧ b.
func (m *Manager) And(a, b int) int { return m.applyOp(opAnd, a, b) }

// Or returns a ∨ b.
func (m *Manager) Or(a, b int) int { return m.applyOp(opOr, a, b) }

// Xor returns a ⊕ b.
func (m *Manager) Xor(a, b int) int { return m.applyOp(opXor, a, b) }

// Implies returns a → b.
func (m *Manager) Implies(a, b int) int { return m.Or(m.Not(a), b) }

// Iff returns a ↔ b.
func (m *Manager) Iff(a, b int) int { return m.Not(m.Xor(a, b)) }

// Ite returns if f then g else h.
func (m *Manager) Ite(f, g, h int) int {
	return m.Or(m.And(f, g), m.And(m.Not(f), h))
}

func (m *Manager) applyOp(op byte, a, b int) int {
	switch op {
	case opAnd:
		if a == 0 || b == 0 {
			return 0
		}
		if a == 1 {
			return b
		}
		if b == 1 {
			return a
		}
		if a == b {
			return a
		}
	case opOr:
		if a == 1 || b == 1 {
			return 1
		}
		if a == 0 {
			return b
		}
		if b == 0 {
			return a
		}
		if a == b {
			return a
		}
	case opXor:
		if a == 0 {
			return b
		}
		if b == 0 {
			return a
		}
		if a == b {
			return 0
		}
	}
	if a > b && (op == opAnd || op == opOr || op == opXor) {
		a, b = b, a // commutative: canonical order doubles cache hits
	}
	key := applyKey{op, a, b}
	if r, ok := m.apply[key]; ok {
		return r
	}
	na, nb := m.nodes[a], m.nodes[b]
	v := na.v
	if nb.v < v {
		v = nb.v
	}
	alo, ahi := a, a
	if na.v == v {
		alo, ahi = na.lo, na.hi
	}
	blo, bhi := b, b
	if nb.v == v {
		blo, bhi = nb.lo, nb.hi
	}
	r := m.mk(v, m.applyOp(op, alo, blo), m.applyOp(op, ahi, bhi))
	m.apply[key] = r
	return r
}

// AndN folds And over the arguments (true for none).
func (m *Manager) AndN(fs ...int) int {
	r := 1
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

// OrN folds Or over the arguments (false for none).
func (m *Manager) OrN(fs ...int) int {
	r := 0
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Exists existentially quantifies the given variables out of f.
func (m *Manager) Exists(f int, vars []int) int {
	if len(vars) == 0 {
		return f
	}
	set := map[int]bool{}
	for _, v := range vars {
		set[v] = true
	}
	memo := map[int]int{}
	return m.exists(f, set, memo)
}

func (m *Manager) exists(f int, set map[int]bool, memo map[int]int) int {
	if f <= 1 {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	n := m.nodes[f]
	lo := m.exists(n.lo, set, memo)
	hi := m.exists(n.hi, set, memo)
	var r int
	if set[n.v] {
		r = m.Or(lo, hi)
	} else {
		r = m.mk(n.v, lo, hi)
	}
	memo[f] = r
	return r
}

// RelProd returns ∃vars. a ∧ b (conjoin-then-quantify, fused).
func (m *Manager) RelProd(a, b int, vars []int) int {
	// The fused version matters for very large relations; at Bebop's
	// scale conjoin-then-quantify is fine and simpler to trust.
	return m.Exists(m.And(a, b), vars)
}

// Replace renames variables in f according to the map (variables not in
// the map are unchanged). Implemented by Shannon recomposition, which is
// correct for arbitrary (injective) renamings regardless of order.
func (m *Manager) Replace(f int, rename map[int]int) int {
	if len(rename) == 0 {
		return f
	}
	memo := map[int]int{}
	return m.replace(f, rename, memo)
}

func (m *Manager) replace(f int, rename map[int]int, memo map[int]int) int {
	if f <= 1 {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	n := m.nodes[f]
	v := n.v
	if nv, ok := rename[v]; ok {
		v = nv
	}
	lo := m.replace(n.lo, rename, memo)
	hi := m.replace(n.hi, rename, memo)
	r := m.Ite(m.Var(v), hi, lo)
	memo[f] = r
	return r
}

// Restrict fixes variable v to value val in f.
func (m *Manager) Restrict(f, v int, val bool) int {
	memo := map[int]int{}
	var rec func(int) int
	rec = func(g int) int {
		if g <= 1 {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := m.nodes[g]
		var r int
		switch {
		case n.v == v:
			if val {
				r = n.hi
			} else {
				r = n.lo
			}
		case n.v > v:
			r = g
		default:
			r = m.mk(n.v, rec(n.lo), rec(n.hi))
		}
		memo[g] = r
		return r
	}
	return rec(f)
}

// Eval evaluates f under a total assignment (indexed by variable).
func (m *Manager) Eval(f int, assignment []bool) bool {
	for f > 1 {
		n := m.nodes[f]
		if n.v < len(assignment) && assignment[n.v] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == 1
}

// Support returns the sorted set of variables f depends on.
func (m *Manager) Support(f int) []int {
	set := map[int]bool{}
	seen := map[int]bool{}
	var rec func(int)
	rec = func(g int) {
		if g <= 1 || seen[g] {
			return
		}
		seen[g] = true
		n := m.nodes[g]
		set[n.v] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// SatCount returns the number of satisfying assignments of f over the
// given number of variables.
func (m *Manager) SatCount(f, nvars int) float64 {
	memo := map[int]float64{}
	var rec func(int) float64
	rec = func(g int) float64 {
		if g == 0 {
			return 0
		}
		if g == 1 {
			return 1
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := m.nodes[g]
		r := rec(n.lo)*weight(m, n.lo, n.v) + rec(n.hi)*weight(m, n.hi, n.v)
		memo[g] = r
		return r
	}
	if f <= 1 {
		if f == 1 {
			return math.Exp2(float64(nvars))
		}
		return 0
	}
	top := m.nodes[f].v
	return rec(f) * math.Exp2(float64(top))
}

// weight accounts for variables skipped between a node and its child.
func weight(m *Manager, child, parentVar int) float64 {
	cv := terminalVar
	if child > 1 {
		cv = m.nodes[child].v
	}
	gap := cv - parentVar - 1
	if child <= 1 {
		gap = m.numVars - parentVar - 1
	}
	return math.Exp2(float64(gap))
}

// AllSat enumerates satisfying assignments of f projected onto vars: each
// result maps (by position) to 0, 1. Variables outside the BDD's support
// are expanded, so every returned vector is a concrete assignment.
func (m *Manager) AllSat(f int, vars []int) [][]byte {
	pos := map[int]int{}
	for i, v := range vars {
		pos[v] = i
	}
	var out [][]byte
	cur := make([]byte, len(vars))
	var rec func(f int, idx int)
	rec = func(f int, idx int) {
		if f == 0 {
			return
		}
		if idx == len(vars) {
			if m.forcedTrue(f, pos) {
				row := make([]byte, len(cur))
				copy(row, cur)
				out = append(out, row)
			}
			return
		}
		v := vars[idx]
		cur[idx] = 0
		rec(m.Restrict(f, v, false), idx+1)
		cur[idx] = 1
		rec(m.Restrict(f, v, true), idx+1)
	}
	rec(f, 0)
	return out
}

// forcedTrue reports whether f is satisfiable regardless of the projected
// variables (all of which have been restricted away by AllSat).
func (m *Manager) forcedTrue(f int, _ map[int]int) bool {
	return f != 0
}

// AnySat returns one satisfying assignment over the given variables, or
// nil if f is unsatisfiable.
func (m *Manager) AnySat(f int, vars []int) []byte {
	if f == 0 {
		return nil
	}
	cur := make([]byte, len(vars))
	for i, v := range vars {
		lo := m.Restrict(f, v, false)
		if lo != 0 {
			cur[i] = 0
			f = lo
		} else {
			cur[i] = 1
			f = m.Restrict(f, v, true)
		}
	}
	if f == 0 {
		return nil
	}
	return cur
}

// String renders f as a sum of cubes over its support (diagnostics).
func (m *Manager) String(f int) string {
	if f == 0 {
		return "false"
	}
	if f == 1 {
		return "true"
	}
	support := m.Support(f)
	rows := m.AllSat(f, support)
	var parts []string
	for _, row := range rows {
		var cube []string
		for i, b := range row {
			if b == 1 {
				cube = append(cube, fmt.Sprintf("v%d", support[i]))
			} else {
				cube = append(cube, fmt.Sprintf("!v%d", support[i]))
			}
		}
		parts = append(parts, strings.Join(cube, "&"))
	}
	return strings.Join(parts, " | ")
}
