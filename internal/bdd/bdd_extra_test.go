package bdd

import (
	"math/rand"
	"testing"
)

func TestRelProdEqualsExistsAnd(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 80; trial++ {
		m := New(6)
		a, _ := randomFormula(m, r, 3)
		b, _ := randomFormula(m, r, 3)
		vars := []int{r.Intn(6), r.Intn(6)}
		if m.RelProd(a, b, vars) != m.Exists(m.And(a, b), vars) {
			t.Fatal("RelProd != Exists∘And")
		}
	}
}

func TestImpliesAndIff(t *testing.T) {
	m := New(2)
	a, b := m.Var(0), m.Var(1)
	// a → b false only at a=1,b=0.
	imp := m.Implies(a, b)
	if m.Eval(imp, []bool{true, false}) {
		t.Error("1→0 should be false")
	}
	if !m.Eval(imp, []bool{false, false}) {
		t.Error("0→0 should be true")
	}
	iff := m.Iff(a, b)
	if !m.Eval(iff, []bool{true, true}) || m.Eval(iff, []bool{true, false}) {
		t.Error("iff broken")
	}
}

func TestRestrictThenSupport(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Or(m.Var(1), m.Var(2)))
	g := m.Restrict(f, 1, true)
	// With v1=1, f reduces to v0.
	if g != m.Var(0) {
		t.Errorf("restrict: got %s", m.String(g))
	}
	sup := m.Support(g)
	if len(sup) != 1 || sup[0] != 0 {
		t.Errorf("support: %v", sup)
	}
}

func TestAddVarGrowsManager(t *testing.T) {
	m := New(1)
	v := m.AddVar()
	if v != 1 || m.NumVars() != 2 {
		t.Fatalf("AddVar: %d, NumVars %d", v, m.NumVars())
	}
	f := m.And(m.Var(0), m.Var(v))
	if m.SatCount(f, 2) != 1 {
		t.Error("new variable unusable")
	}
}

func TestReplaceWithOverlappingRange(t *testing.T) {
	// Rename into variables that interleave with the existing support.
	m := New(6)
	f := m.And(m.Var(1), m.NVar(3))
	g := m.Replace(f, map[int]int{1: 2, 3: 0})
	want := m.And(m.Var(2), m.NVar(0))
	if g != want {
		t.Error("interleaved replace failed")
	}
}

func TestAllSatCoversExactly(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	for trial := 0; trial < 60; trial++ {
		m := New(5)
		f, _ := randomFormula(m, r, 3)
		rows := m.AllSat(f, []int{0, 1, 2, 3, 4})
		// Every row satisfies f, and the count matches SatCount.
		for _, row := range rows {
			a := make([]bool, 5)
			for i, b := range row {
				a[i] = b == 1
			}
			if !m.Eval(f, a) {
				t.Fatalf("AllSat row %v does not satisfy f", row)
			}
		}
		if float64(len(rows)) != m.SatCount(f, 5) {
			t.Fatalf("AllSat %d rows, SatCount %v", len(rows), m.SatCount(f, 5))
		}
	}
}

func TestNodeSharingAcrossFormulas(t *testing.T) {
	m := New(3)
	before := m.NumNodes()
	f := m.And(m.Var(0), m.Var(1))
	mid := m.NumNodes()
	// Rebuilding the identical function allocates nothing new.
	g := m.And(m.Var(0), m.Var(1))
	if g != f {
		t.Fatal("hash consing broken")
	}
	if m.NumNodes() != mid {
		t.Error("identical formula allocated nodes")
	}
	_ = before
}
