package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicIdentities(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	if m.And(a, m.Not(a)) != m.False() {
		t.Error("a ∧ ¬a != false")
	}
	if m.Or(a, m.Not(a)) != m.True() {
		t.Error("a ∨ ¬a != true")
	}
	if m.And(a, b) != m.And(b, a) {
		t.Error("∧ not commutative (canonicity broken)")
	}
	if m.Not(m.Not(a)) != a {
		t.Error("double negation")
	}
	if m.Xor(a, a) != m.False() {
		t.Error("a ⊕ a != false")
	}
	if m.NVar(0) != m.Not(m.Var(0)) {
		t.Error("NVar != Not(Var)")
	}
}

func TestCanonicity(t *testing.T) {
	m := New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	// (a∧b)∨c == ¬(¬c∧¬(a∧b)) structurally.
	lhs := m.Or(m.And(a, b), c)
	rhs := m.Not(m.And(m.Not(c), m.Not(m.And(a, b))))
	if lhs != rhs {
		t.Error("equivalent formulas have different node ids")
	}
}

// randomFormula builds a random BDD and a mirror evaluator function.
func randomFormula(m *Manager, r *rand.Rand, depth int) (int, func([]bool) bool) {
	if depth == 0 || r.Intn(4) == 0 {
		v := r.Intn(m.NumVars())
		if r.Intn(2) == 0 {
			return m.Var(v), func(a []bool) bool { return a[v] }
		}
		return m.NVar(v), func(a []bool) bool { return !a[v] }
	}
	l, fl := randomFormula(m, r, depth-1)
	rr, fr := randomFormula(m, r, depth-1)
	switch r.Intn(3) {
	case 0:
		return m.And(l, rr), func(a []bool) bool { return fl(a) && fr(a) }
	case 1:
		return m.Or(l, rr), func(a []bool) bool { return fl(a) || fr(a) }
	default:
		return m.Xor(l, rr), func(a []bool) bool { return fl(a) != fr(a) }
	}
}

// Property: BDD evaluation agrees with direct formula evaluation on all
// assignments.
func TestEvalAgainstFormula(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	const nvars = 6
	for trial := 0; trial < 200; trial++ {
		m := New(nvars)
		f, eval := randomFormula(m, r, 4)
		for mask := 0; mask < 1<<nvars; mask++ {
			a := make([]bool, nvars)
			for i := range a {
				a[i] = mask&(1<<i) != 0
			}
			if m.Eval(f, a) != eval(a) {
				t.Fatalf("trial %d mask %b: BDD %v formula %v", trial, mask, m.Eval(f, a), eval(a))
			}
		}
	}
}

func TestExists(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	// ∃b. a∧b == a.
	if m.Exists(m.And(a, b), []int{1}) != a {
		t.Error("∃b.(a∧b) != a")
	}
	// ∃a. a∧¬a == false.
	if m.Exists(m.And(a, m.Not(a)), []int{0}) != m.False() {
		t.Error("∃a.false != false")
	}
	// ∃a,b. a∨b == true.
	if m.Exists(m.Or(a, b), []int{0, 1}) != m.True() {
		t.Error("∃a,b.(a∨b) != true")
	}
}

// Property: Exists(f, {v}) == f[v:=0] ∨ f[v:=1].
func TestExistsShannon(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		m := New(5)
		f, _ := randomFormula(m, r, 4)
		v := r.Intn(5)
		want := m.Or(m.Restrict(f, v, false), m.Restrict(f, v, true))
		if got := m.Exists(f, []int{v}); got != want {
			t.Fatalf("trial %d: exists != shannon", trial)
		}
	}
}

func TestReplace(t *testing.T) {
	m := New(4)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, m.Not(b))
	g := m.Replace(f, map[int]int{0: 2, 1: 3})
	want := m.And(m.Var(2), m.Not(m.Var(3)))
	if g != want {
		t.Error("replace failed")
	}
	// Swap (order-violating for naive implementations).
	h := m.Replace(f, map[int]int{0: 1, 1: 0})
	want2 := m.And(m.Var(1), m.Not(m.Var(0)))
	if h != want2 {
		t.Error("swap replace failed")
	}
}

// Property: Replace distributes over And for disjoint renamings.
func TestReplaceHomomorphic(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	rename := map[int]int{0: 4, 1: 5, 2: 6, 3: 7}
	for trial := 0; trial < 60; trial++ {
		m := New(8)
		f, _ := randomFormula4(m, r)
		g, _ := randomFormula4(m, r)
		lhs := m.Replace(m.And(f, g), rename)
		rhs := m.And(m.Replace(f, rename), m.Replace(g, rename))
		if lhs != rhs {
			t.Fatalf("trial %d: replace not homomorphic", trial)
		}
	}
}

// randomFormula4 builds a formula over variables 0..3 only.
func randomFormula4(m *Manager, r *rand.Rand) (int, func([]bool) bool) {
	sub := New(4)
	_ = sub
	var rec func(depth int) int
	rec = func(depth int) int {
		if depth == 0 || r.Intn(4) == 0 {
			v := r.Intn(4)
			if r.Intn(2) == 0 {
				return m.Var(v)
			}
			return m.NVar(v)
		}
		l, rr := rec(depth-1), rec(depth-1)
		switch r.Intn(3) {
		case 0:
			return m.And(l, rr)
		case 1:
			return m.Or(l, rr)
		default:
			return m.Xor(l, rr)
		}
	}
	return rec(3), nil
}

func TestSatCount(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	cases := []struct {
		f    int
		want float64
	}{
		{m.True(), 8},
		{m.False(), 0},
		{a, 4},
		{m.And(a, b), 2},
		{m.Or(a, b), 6},
		{m.Xor(a, b), 4},
	}
	for i, c := range cases {
		if got := m.SatCount(c.f, 3); got != c.want {
			t.Errorf("case %d: SatCount = %v, want %v", i, got, c.want)
		}
	}
}

// Property: SatCount equals brute-force model counting.
func TestSatCountBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	const nvars = 5
	for trial := 0; trial < 100; trial++ {
		m := New(nvars)
		f, _ := randomFormula(m, r, 3)
		count := 0
		for mask := 0; mask < 1<<nvars; mask++ {
			a := make([]bool, nvars)
			for i := range a {
				a[i] = mask&(1<<i) != 0
			}
			if m.Eval(f, a) {
				count++
			}
		}
		if got := m.SatCount(f, nvars); got != float64(count) {
			t.Fatalf("trial %d: SatCount %v, brute force %d", trial, got, count)
		}
	}
}

func TestAllSat(t *testing.T) {
	m := New(3)
	a, b := m.Var(0), m.Var(1)
	f := m.And(a, m.Not(b))
	rows := m.AllSat(f, []int{0, 1, 2})
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	for _, row := range rows {
		if row[0] != 1 || row[1] != 0 {
			t.Errorf("bad row %v", row)
		}
	}
}

func TestAnySat(t *testing.T) {
	m := New(4)
	f := m.AndN(m.Var(0), m.NVar(1), m.Var(3))
	row := m.AnySat(f, []int{0, 1, 2, 3})
	if row == nil {
		t.Fatal("no assignment found")
	}
	a := make([]bool, 4)
	for i, b := range row {
		a[i] = b == 1
	}
	if !m.Eval(f, a) {
		t.Fatalf("returned assignment %v does not satisfy f", row)
	}
	if m.AnySat(m.False(), []int{0}) != nil {
		t.Error("false has no satisfying assignment")
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(4)))
	got := m.Support(f)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("support %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("support %v, want %v", got, want)
		}
	}
}

// quick.Check property: Ite(f,g,h) == (f∧g)∨(¬f∧h) pointwise.
func TestIteQuick(t *testing.T) {
	m := New(4)
	cfg := &quick.Config{MaxCount: 200}
	err := quick.Check(func(s0, s1, s2 uint8, mask uint8) bool {
		mk := func(s uint8) int {
			f := m.True()
			for i := 0; i < 4; i++ {
				switch (s >> (2 * i)) & 3 {
				case 0:
					f = m.And(f, m.Var(i))
				case 1:
					f = m.Or(f, m.NVar(i))
				case 2:
					f = m.Xor(f, m.Var(i))
				}
			}
			return f
		}
		f, g, h := mk(s0), mk(s1), mk(s2)
		ite := m.Ite(f, g, h)
		a := make([]bool, 4)
		for i := range a {
			a[i] = mask&(1<<i) != 0
		}
		want := m.Eval(g, a)
		if !m.Eval(f, a) {
			want = m.Eval(h, a)
		}
		return m.Eval(ite, a) == want
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}
