package cnorm

import (
	"testing"

	"predabs/internal/cast"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
)

func normalize(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v\nsource after parse:\n%s", err, cast.Print(prog))
	}
	return res
}

// checkSimpleForm walks the normalized program verifying the paper's
// simple-intermediate-form invariants.
func checkSimpleForm(t *testing.T, res *Result) {
	t.Helper()
	for _, f := range res.Prog.Funcs {
		returns := 0
		var walkStmt func(s cast.Stmt)
		var checkExpr func(e cast.Expr, callOK bool)
		checkExpr = func(e cast.Expr, callOK bool) {
			switch e := e.(type) {
			case *cast.Call:
				if !callOK {
					t.Errorf("%s: call %s not at top level", f.Name, e)
				}
				for _, a := range e.Args {
					checkExpr(a, false)
				}
			case *cast.Unary:
				if e.Op == cast.Deref_ {
					if _, ok := e.X.(*cast.VarRef); !ok {
						t.Errorf("%s: nested indirection in %s", f.Name, e)
					}
				}
				checkExpr(e.X, false)
			case *cast.Field:
				if e.Arrow {
					if _, ok := e.X.(*cast.VarRef); !ok {
						t.Errorf("%s: nested indirection in %s", f.Name, e)
					}
				}
				checkExpr(e.X, false)
			case *cast.Index:
				if _, ok := e.X.(*cast.VarRef); !ok {
					t.Errorf("%s: array base not a variable in %s", f.Name, e)
				}
				checkExpr(e.I, false)
			case *cast.Binary:
				checkExpr(e.X, false)
				checkExpr(e.Y, false)
			}
		}
		retVar := res.RetVar[f.Name]
		walkStmt = func(s cast.Stmt) {
			switch s := s.(type) {
			case *cast.Block:
				for _, sub := range s.Stmts {
					walkStmt(sub)
				}
			case *cast.AssignStmt:
				checkExpr(s.Lhs, false)
				checkExpr(s.Rhs, true)
				if isBoolExpr(s.Rhs) {
					t.Errorf("%s: boolean-valued assignment survived: %s", f.Name, cast.PrintStmt(s))
				}
			case *cast.ExprStmt:
				checkExpr(s.X, true)
			case *cast.IfStmt:
				checkExpr(s.Cond, false)
				if !isBoolExpr(s.Cond) {
					t.Errorf("%s: non-boolean if condition %s", f.Name, s.Cond)
				}
				walkStmt(s.Then)
				if s.Else != nil {
					walkStmt(s.Else)
				}
			case *cast.WhileStmt:
				checkExpr(s.Cond, false)
				if !isBoolExpr(s.Cond) {
					t.Errorf("%s: non-boolean while condition %s", f.Name, s.Cond)
				}
				walkStmt(s.Body)
			case *cast.LabeledStmt:
				walkStmt(s.Stmt)
			case *cast.ReturnStmt:
				returns++
				if s.X != nil {
					if v, ok := s.X.(*cast.VarRef); !ok || v.Name != retVar {
						t.Errorf("%s: return of non-return-variable %s (want %s)", f.Name, s.X, retVar)
					}
				}
			case *cast.BreakStmt, *cast.ContinueStmt:
				t.Errorf("%s: break/continue survived normalization", f.Name)
			case *cast.AssertStmt:
				checkExpr(s.X, false)
			case *cast.AssumeStmt:
				checkExpr(s.X, false)
			}
		}
		walkStmt(f.Body)
		if returns != 1 {
			t.Errorf("%s: %d return statements, want exactly 1", f.Name, returns)
		}
	}
}

const partitionSrc = `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

func TestNormalizePartition(t *testing.T) {
	res := normalize(t, partitionSrc)
	checkSimpleForm(t, res)
	// partition ends with the single "return newl;", which is kept.
	if res.RetVar["partition"] != "newl" {
		t.Errorf("RetVar: %v", res.RetVar)
	}
}

func TestNormalizeNestedDeref(t *testing.T) {
	res := normalize(t, `
struct cell { int val; struct cell* next; };
int f(struct cell* p) {
  int x;
  x = p->next->val;
  return x;
}
`)
	checkSimpleForm(t, res)
	// The chain must have been split via a temp.
	f := res.Prog.Func("f")
	found := false
	var walk func(s cast.Stmt)
	walk = func(s cast.Stmt) {
		if blk, ok := s.(*cast.Block); ok {
			for _, sub := range blk.Stmts {
				walk(sub)
			}
			return
		}
		if as, ok := s.(*cast.AssignStmt); ok {
			if v, ok := as.Lhs.(*cast.VarRef); ok && v.Name == "__t0" {
				found = true
			}
		}
	}
	walk(f.Body)
	if !found {
		t.Errorf("no temp introduced:\n%s", cast.Print(res.Prog))
	}
}

func TestNormalizeCallLifting(t *testing.T) {
	res := normalize(t, `
int g(int a) { return a + 1; }
int f(int x) {
  int z;
  z = x + g(x);
  return z;
}
`)
	checkSimpleForm(t, res)
}

func TestNormalizeCallInCondition(t *testing.T) {
	res := normalize(t, `
int g(int a) { return a + 1; }
int f(int x) {
  while (g(x) < 10) {
    x = x + 1;
  }
  if (g(x) == 11) { x = 0; }
  return x;
}
`)
	checkSimpleForm(t, res)
}

func TestNormalizeBreakContinue(t *testing.T) {
	res := normalize(t, `
int f(int x) {
  while (x > 0) {
    x = x - 1;
    if (x == 5) { break; }
    if (x == 7) { continue; }
    x = x - 1;
  }
  return x;
}
`)
	checkSimpleForm(t, res)
}

func TestNormalizeBooleanAssignment(t *testing.T) {
	res := normalize(t, `
int f(int a, int b) {
  int c;
  c = a < b;
  return c;
}
`)
	checkSimpleForm(t, res)
	// c = a < b must have become an if/else over 0/1.
	f := res.Prog.Func("f")
	hasIf := false
	for _, s := range f.Body.Stmts {
		if _, ok := s.(*cast.IfStmt); ok {
			hasIf = true
		}
	}
	if !hasIf {
		t.Errorf("boolean assignment not desugared:\n%s", cast.Print(res.Prog))
	}
}

func TestNormalizeScalarConditions(t *testing.T) {
	res := normalize(t, `
struct s { int a; };
int f(struct s* p, int x) {
  if (p) { x = 1; }
  while (x) { x = x - 1; }
  if (!p) { x = 2; }
  return x;
}
`)
	checkSimpleForm(t, res)
}

func TestNormalizePointerArithmetic(t *testing.T) {
	res := normalize(t, `
int f(int* p, int i) {
  int x;
  x = *(p + i);
  return x;
}
`)
	checkSimpleForm(t, res)
	// *(p+i) must have collapsed to *p under the logical memory model.
	printed := cast.Print(res.Prog)
	if want := "*p"; !containsStr(printed, want) {
		t.Errorf("expected %q in:\n%s", want, printed)
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexStr(haystack, needle) >= 0
}

func indexStr(h, n string) int {
	for i := 0; i+len(n) <= len(h); i++ {
		if h[i:i+len(n)] == n {
			return i
		}
	}
	return -1
}

func TestNormalizeVoidReturn(t *testing.T) {
	res := normalize(t, `
void f(int x) {
  if (x > 0) { return; }
  x = 1;
}
`)
	checkSimpleForm(t, res)
}

func TestNormalizeReturnCall(t *testing.T) {
	res := normalize(t, `
int g(int a) { return a; }
int f(int x) { return g(x) + 1; }
`)
	checkSimpleForm(t, res)
}

func TestNormalizeDeclInit(t *testing.T) {
	res := normalize(t, `
int f(void) {
  int x = 5;
  int y = x + 1;
  return y;
}
`)
	checkSimpleForm(t, res)
}

func TestNormalizedProgramReparses(t *testing.T) {
	res := normalize(t, partitionSrc)
	printed := cast.Print(res.Prog)
	prog2, err := cparse.Parse(printed)
	if err != nil {
		t.Fatalf("normalized program does not reparse: %v\n%s", err, printed)
	}
	if _, err := ctype.Check(prog2); err != nil {
		t.Fatalf("normalized program does not recheck: %v\n%s", err, printed)
	}
}
