package cnorm

import (
	"strings"
	"testing"

	"predabs/internal/cast"
)

func TestSingleTrailingReturnKept(t *testing.T) {
	res := normalize(t, `
int f(int x) {
  int r;
  r = x + 1;
  return r;
}
`)
	if res.RetVar["f"] != "r" {
		t.Errorf("RetVar = %q, want r (paper form kept)", res.RetVar["f"])
	}
	// No __ret variable introduced.
	if _, ok := res.Info.FuncVars["f"][RetVarName]; ok {
		t.Error("__ret introduced unnecessarily")
	}
}

func TestMultipleReturnsGetRetVar(t *testing.T) {
	res := normalize(t, `
int f(int x) {
  if (x > 0) { return 1; }
  return 0;
}
`)
	if res.RetVar["f"] != RetVarName {
		t.Errorf("RetVar = %q, want %s", res.RetVar["f"], RetVarName)
	}
	checkSimpleForm(t, res)
}

func TestMidBodyReturnGetsRetVar(t *testing.T) {
	// A single return that is not trailing still needs the exit rewrite.
	res := normalize(t, `
int f(int x) {
  int y;
  if (x > 0) {
    return x;
  }
  y = 0 - x;
  x = y;
  return x;
}
`)
	checkSimpleForm(t, res)
}

func TestNestedLoopBreakTargets(t *testing.T) {
	res := normalize(t, `
int f(int n, int m) {
  int count;
  count = 0;
  while (n > 0) {
    while (m > 0) {
      if (m == 2) { break; }
      m = m - 1;
      count = count + 1;
    }
    if (n == 3) { break; }
    n = n - 1;
  }
  return count;
}
`)
	checkSimpleForm(t, res)
	// Two distinct break targets must exist.
	printed := cast.Print(res.Prog)
	if strings.Count(printed, "__done") < 2 {
		t.Errorf("expected two loop exit labels:\n%s", printed)
	}
}

func TestCallArgumentsLifted(t *testing.T) {
	res := normalize(t, `
struct cell { int val; struct cell* next; };
int get(struct cell* c) { return c->val; }
int f(struct cell* p) {
  int x;
  x = get(p->next);
  return x;
}
`)
	checkSimpleForm(t, res)
	// p->next stays (one indirection) as a direct argument.
	printed := cast.Print(res.Prog)
	if !strings.Contains(printed, "get(p->next)") {
		t.Errorf("single-level argument should not be lifted:\n%s", printed)
	}
}

func TestDeepCallArgumentLifted(t *testing.T) {
	res := normalize(t, `
struct cell { int val; struct cell* next; };
int get(struct cell* c) { return c->val; }
int f(struct cell* p) {
  int x;
  x = get(p->next->next);
  return x;
}
`)
	checkSimpleForm(t, res)
	printed := cast.Print(res.Prog)
	if !strings.Contains(printed, "__t0") {
		t.Errorf("two-level argument must be lifted through a temp:\n%s", printed)
	}
}

func TestAssumeConditionNormalized(t *testing.T) {
	res := normalize(t, `
struct s { int a; };
void f(struct s* p) {
  assume(p);
  p->a = 1;
}
`)
	checkSimpleForm(t, res)
	printed := cast.Print(res.Prog)
	if !strings.Contains(printed, "assume(p != NULL)") {
		t.Errorf("pointer assume should compare against NULL:\n%s", printed)
	}
}

func TestWhileWithCallCondDesugared(t *testing.T) {
	res := normalize(t, `
int more(int n) { return n - 1; }
void f(int n) {
  while (more(n) > 0) {
    n = n - 1;
  }
}
`)
	checkSimpleForm(t, res)
	// The while must have been desugared into label+if+goto so the call
	// re-executes every iteration.
	f := res.Prog.Func("f")
	hasWhile := false
	var walk func(s cast.Stmt)
	walk = func(s cast.Stmt) {
		switch s := s.(type) {
		case *cast.Block:
			for _, sub := range s.Stmts {
				walk(sub)
			}
		case *cast.WhileStmt:
			hasWhile = true
		case *cast.IfStmt:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *cast.LabeledStmt:
			walk(s.Stmt)
		}
	}
	walk(f.Body)
	if hasWhile {
		t.Errorf("while with call condition should be goto-desugared:\n%s", cast.Print(res.Prog))
	}
}

func TestEmptyFunctionNormalizes(t *testing.T) {
	res := normalize(t, "void f(void) { }")
	checkSimpleForm(t, res)
}

func TestChainedTypedefs(t *testing.T) {
	res := normalize(t, `
typedef int myint;
typedef myint myint2;
myint2 g;
void f(myint2 x) { g = x; }
`)
	checkSimpleForm(t, res)
}
