// Package cnorm lowers a type-checked MiniC program into the C2bp paper's
// "simple intermediate form" (Section 4):
//
//  1. all intraprocedural control flow is if-then-else statements, while
//     loops with simple conditions, gotos and labels (break/continue are
//     desugared to gotos; loop conditions that need preludes are desugared
//     to label+if+goto form);
//  2. all expressions are free of side effects and contain no multiple
//     dereferences of a pointer (**p, p->f->g are flattened via temps);
//  3. a function call occurs only at the top-most level of an expression
//     (z = x + f(y) becomes t = f(y); z = x + t);
//  4. each function has exactly one return statement, of the form
//     "return r" for a distinguished return variable (or a bare return);
//  5. conditions are boolean-shaped (scalars are compared against 0/NULL)
//     and boolean-valued right-hand sides become if/else over 0/1;
//  6. pointer arithmetic p+i is collapsed to p, per the paper's logical
//     memory model.
package cnorm

import (
	"fmt"

	"predabs/internal/cast"
	"predabs/internal/ctype"
)

// RetVarName is the distinguished return variable introduced for non-void
// functions ("we assume there is only one return statement and it has the
// form return r").
const RetVarName = "__ret"

// ExitLabel is the label of the single return statement.
const ExitLabel = "__exit"

// Result carries the normalized program and its refreshed type information.
type Result struct {
	Prog *cast.Program
	Info *ctype.Info
	// RetVar maps each non-void function to its return variable name.
	RetVar map[string]string
}

// Normalize lowers prog (which must have type-checked as info) into simple
// intermediate form and re-type-checks the result.
func Normalize(info *ctype.Info) (*Result, error) {
	n := &normalizer{info: info}
	out := &cast.Program{Structs: info.Prog.Structs, Globals: info.Prog.Globals}
	retVars := map[string]string{}
	for _, f := range info.Prog.Funcs {
		nf, retVar := n.normalizeFunc(f)
		out.Funcs = append(out.Funcs, nf)
		if retVar != "" {
			retVars[f.Name] = retVar
		}
	}
	newInfo, err := ctype.Check(out)
	if err != nil {
		return nil, fmt.Errorf("cnorm: normalized program fails to re-check: %w", err)
	}
	return &Result{Prog: out, Info: newInfo, RetVar: retVars}, nil
}

type normalizer struct {
	info *ctype.Info

	fn       *cast.FuncDef
	decls    []*cast.DeclStmt
	tempN    int
	labelN   int
	usesRet  bool
	breakLbl []string
	contLbl  []string
	usedLbls map[string]bool
	localTy  map[string]cast.Type
	// retVarOverride names the source-level return variable when the
	// function already has the paper's "single trailing return r" shape.
	retVarOverride string
}

// singleVarReturn reports whether f's only return statement is a trailing
// top-level "return v;" for a plain variable v.
func singleVarReturn(f *cast.FuncDef) (string, bool) {
	if _, isVoid := f.Ret.(cast.VoidType); isVoid {
		return "", false
	}
	count := 0
	var countReturns func(s cast.Stmt)
	countReturns = func(s cast.Stmt) {
		switch s := s.(type) {
		case *cast.Block:
			for _, sub := range s.Stmts {
				countReturns(sub)
			}
		case *cast.ReturnStmt:
			count++
		case *cast.IfStmt:
			countReturns(s.Then)
			if s.Else != nil {
				countReturns(s.Else)
			}
		case *cast.WhileStmt:
			countReturns(s.Body)
		case *cast.LabeledStmt:
			countReturns(s.Stmt)
		}
	}
	countReturns(f.Body)
	if count != 1 || len(f.Body.Stmts) == 0 {
		return "", false
	}
	last, ok := f.Body.Stmts[len(f.Body.Stmts)-1].(*cast.ReturnStmt)
	if !ok || last.X == nil {
		return "", false
	}
	v, ok := last.X.(*cast.VarRef)
	if !ok {
		return "", false
	}
	return v.Name, true
}

func (n *normalizer) freshTemp(t cast.Type) string {
	name := fmt.Sprintf("__t%d", n.tempN)
	n.tempN++
	n.decls = append(n.decls, &cast.DeclStmt{Name: name, Type: t})
	n.localTy[name] = t
	return name
}

func (n *normalizer) freshLabel(hint string) string {
	name := fmt.Sprintf("__%s%d", hint, n.labelN)
	n.labelN++
	return name
}

func (n *normalizer) typeOf(e cast.Expr) cast.Type {
	// Prefer the checker's recorded type; fall back to recomputation for
	// freshly built nodes.
	if t, ok := n.info.Types[e]; ok {
		return t
	}
	switch e := e.(type) {
	case *cast.VarRef:
		if t, ok := n.localTy[e.Name]; ok {
			return t
		}
		if t, ok := n.info.VarType(n.fn.Name, e.Name); ok {
			return t
		}
	case *cast.IntLit:
		return cast.IntType{}
	case *cast.Unary:
		if e.Op == cast.Deref_ {
			if elem, ok := cast.Deref(n.typeOf(e.X)); ok {
				return elem
			}
		}
		if e.Op == cast.AddrOf {
			return cast.PointerType{Elem: n.typeOf(e.X)}
		}
		return cast.IntType{}
	case *cast.Field:
		base := n.typeOf(e.X)
		if e.Arrow {
			if elem, ok := cast.Deref(base); ok {
				base = elem
			}
		}
		if st, ok := base.(cast.StructType); ok {
			if def := n.info.Prog.Struct(st.Name); def != nil {
				if fd := def.Field(e.Name); fd != nil {
					return fd.Type
				}
			}
		}
		return cast.IntType{}
	case *cast.Index:
		if elem, ok := cast.Deref(n.typeOf(e.X)); ok {
			return elem
		}
		return cast.IntType{}
	case *cast.Call:
		if f := n.info.Prog.Func(e.Name); f != nil {
			return f.Ret
		}
	}
	return cast.IntType{}
}

func (n *normalizer) normalizeFunc(f *cast.FuncDef) (*cast.FuncDef, string) {
	n.fn = f
	n.decls = nil
	n.tempN = 0
	n.labelN = 0
	n.usesRet = false
	n.usedLbls = map[string]bool{}
	n.localTy = map[string]cast.Type{}
	for _, p := range f.Params {
		n.localTy[p.Name] = p.Type
	}

	_, isVoid := f.Ret.(cast.VoidType)
	if !isVoid {
		n.localTy[RetVarName] = f.Ret
	}

	// The paper assumes each function has one return statement of the form
	// "return r". When the source already ends with a single top-level
	// "return var;" (Figure 2's bar returns l1), keep that variable as the
	// return variable r — the signature computation (Section 4.5.2)
	// classifies predicates mentioning r, so rewriting to a fresh __ret
	// would lose them. Otherwise introduce __ret and a single exit label.
	if r, ok := singleVarReturn(f); ok {
		n.retVarOverride = r
	} else {
		n.retVarOverride = ""
	}

	body := n.stmts(f.Body)

	// Single exit point (unless the source already has the right shape).
	if n.retVarOverride == "" {
		var exitStmt cast.Stmt
		if isVoid {
			exitStmt = &cast.ReturnStmt{}
		} else {
			exitStmt = &cast.ReturnStmt{X: cast.NewVar(RetVarName)}
		}
		body = append(body, &cast.LabeledStmt{Label: ExitLabel, Stmt: exitStmt})
	}

	// Hoisted declarations (original locals first, then temps) at entry.
	var pre []cast.Stmt
	if !isVoid && n.retVarOverride == "" {
		pre = append(pre, &cast.DeclStmt{Name: RetVarName, Type: f.Ret})
	}
	seen := map[string]bool{RetVarName: true}
	var hoisted []*cast.DeclStmt
	collectOriginalDecls(f.Body, &hoisted)
	for _, d := range hoisted {
		if !seen[d.Name] {
			seen[d.Name] = true
			pre = append(pre, &cast.DeclStmt{Name: d.Name, Type: d.Type})
		}
	}
	for _, d := range n.decls {
		pre = append(pre, d)
	}

	nf := &cast.FuncDef{
		Name:   f.Name,
		Ret:    f.Ret,
		Params: f.Params,
		Body:   &cast.Block{Stmts: append(pre, body...)},
		P:      f.P,
	}
	switch {
	case isVoid:
		return nf, ""
	case n.retVarOverride != "":
		return nf, n.retVarOverride
	default:
		return nf, RetVarName
	}
}

func collectOriginalDecls(s cast.Stmt, out *[]*cast.DeclStmt) {
	switch s := s.(type) {
	case *cast.Block:
		for _, sub := range s.Stmts {
			collectOriginalDecls(sub, out)
		}
	case *cast.DeclStmt:
		*out = append(*out, s)
	case *cast.IfStmt:
		collectOriginalDecls(s.Then, out)
		if s.Else != nil {
			collectOriginalDecls(s.Else, out)
		}
	case *cast.WhileStmt:
		collectOriginalDecls(s.Body, out)
	case *cast.LabeledStmt:
		collectOriginalDecls(s.Stmt, out)
	}
}

func (n *normalizer) stmts(blk *cast.Block) []cast.Stmt {
	var out []cast.Stmt
	for _, s := range blk.Stmts {
		out = append(out, n.stmt(s)...)
	}
	return out
}

func (n *normalizer) stmt(s cast.Stmt) []cast.Stmt {
	switch s := s.(type) {
	case *cast.Block:
		return n.stmts(s)
	case *cast.EmptyStmt:
		return nil
	case *cast.DeclStmt:
		if s.Init == nil {
			return nil // hoisted
		}
		as := &cast.AssignStmt{Lhs: cast.NewVar(s.Name), Rhs: s.Init}
		as.P = s.Pos()
		return n.stmt(as)
	case *cast.AssignStmt:
		return n.assign(s)
	case *cast.ExprStmt:
		call, ok := s.X.(*cast.Call)
		if !ok {
			return nil // checker already reported; drop
		}
		pre, nc := n.normalizeCallArgs(call)
		es := &cast.ExprStmt{X: nc}
		es.P = s.Pos()
		return append(pre, es)
	case *cast.IfStmt:
		pre, cond := n.cond(s.Cond)
		thn := n.stmtAsBlockStmts(s.Then)
		var els []cast.Stmt
		if s.Else != nil {
			els = n.stmtAsBlockStmts(s.Else)
		}
		ifs := &cast.IfStmt{Cond: cond, Then: &cast.Block{Stmts: thn}}
		if els != nil {
			ifs.Else = &cast.Block{Stmts: els}
		}
		ifs.P = s.Pos()
		return append(pre, ifs)
	case *cast.WhileStmt:
		return n.while(s)
	case *cast.GotoStmt:
		return []cast.Stmt{s}
	case *cast.LabeledStmt:
		inner := n.stmt(s.Stmt)
		if len(inner) == 0 {
			inner = []cast.Stmt{&cast.EmptyStmt{}}
		}
		lbl := &cast.LabeledStmt{Label: s.Label, Stmt: inner[0]}
		lbl.P = s.Pos()
		return append([]cast.Stmt{lbl}, inner[1:]...)
	case *cast.ReturnStmt:
		if n.retVarOverride != "" {
			// Single trailing "return r" kept verbatim.
			r := &cast.ReturnStmt{X: cast.NewVar(n.retVarOverride)}
			r.P = s.Pos()
			return []cast.Stmt{r}
		}
		if s.X == nil {
			g := &cast.GotoStmt{Label: ExitLabel}
			g.P = s.Pos()
			return []cast.Stmt{g}
		}
		as := &cast.AssignStmt{Lhs: cast.NewVar(RetVarName), Rhs: s.X}
		as.P = s.Pos()
		out := n.stmt(as)
		g := &cast.GotoStmt{Label: ExitLabel}
		g.P = s.Pos()
		return append(out, g)
	case *cast.BreakStmt:
		if len(n.breakLbl) == 0 {
			return nil
		}
		g := &cast.GotoStmt{Label: n.breakLbl[len(n.breakLbl)-1]}
		g.P = s.Pos()
		n.usedLbls[g.Label] = true
		return []cast.Stmt{g}
	case *cast.ContinueStmt:
		if len(n.contLbl) == 0 {
			return nil
		}
		g := &cast.GotoStmt{Label: n.contLbl[len(n.contLbl)-1]}
		g.P = s.Pos()
		n.usedLbls[g.Label] = true
		return []cast.Stmt{g}
	case *cast.AssertStmt:
		pre, cond := n.cond(s.X)
		a := &cast.AssertStmt{X: cond}
		a.P = s.Pos()
		return append(pre, a)
	case *cast.AssumeStmt:
		pre, cond := n.cond(s.X)
		a := &cast.AssumeStmt{X: cond}
		a.P = s.Pos()
		return append(pre, a)
	}
	return []cast.Stmt{s}
}

func (n *normalizer) stmtAsBlockStmts(s cast.Stmt) []cast.Stmt {
	out := n.stmt(s)
	if out == nil {
		out = []cast.Stmt{}
	}
	return out
}

// assign normalizes "lhs = rhs".
func (n *normalizer) assign(s *cast.AssignStmt) []cast.Stmt {
	// Boolean-valued RHS becomes a branch over 0/1 so the term language
	// downstream stays arithmetic.
	if isBoolExpr(s.Rhs) {
		pre, cond := n.cond(s.Rhs)
		preL, lhs := n.lvalue(s.Lhs)
		one := &cast.AssignStmt{Lhs: lhs, Rhs: cast.NewInt(1)}
		zero := &cast.AssignStmt{Lhs: cloneExpr(lhs), Rhs: cast.NewInt(0)}
		ifs := &cast.IfStmt{
			Cond: cond,
			Then: &cast.Block{Stmts: []cast.Stmt{one}},
			Else: &cast.Block{Stmts: []cast.Stmt{zero}},
		}
		ifs.P = s.Pos()
		return append(append(pre, preL...), ifs)
	}

	preL, lhs := n.lvalue(s.Lhs)

	// Call at top level of the RHS stays put.
	if call, ok := s.Rhs.(*cast.Call); ok {
		preC, nc := n.normalizeCallArgs(call)
		as := &cast.AssignStmt{Lhs: lhs, Rhs: nc}
		as.P = s.Pos()
		return append(append(preL, preC...), as)
	}

	preR, rhs := n.rvalue(s.Rhs)
	as := &cast.AssignStmt{Lhs: lhs, Rhs: rhs}
	as.P = s.Pos()
	return append(append(preL, preR...), as)
}

func (n *normalizer) while(s *cast.WhileStmt) []cast.Stmt {
	head := n.freshLabel("loop")
	exit := n.freshLabel("done")
	n.breakLbl = append(n.breakLbl, exit)
	n.contLbl = append(n.contLbl, head)
	wasUsedB := n.usedLbls[exit]
	pre, cond := n.cond(s.Cond)
	body := n.stmtAsBlockStmts(s.Body)
	n.breakLbl = n.breakLbl[:len(n.breakLbl)-1]
	n.contLbl = n.contLbl[:len(n.contLbl)-1]

	if len(pre) == 0 {
		// Keep the structured while; continue re-enters via the head label.
		w := &cast.WhileStmt{Cond: cond, Body: &cast.Block{Stmts: body}}
		w.P = s.Pos()
		out := []cast.Stmt{&cast.LabeledStmt{Label: head, Stmt: w}}
		if n.usedLbls[exit] && !wasUsedB {
			out = append(out, &cast.LabeledStmt{Label: exit, Stmt: &cast.EmptyStmt{}})
		}
		return out
	}

	// Condition needs a prelude: desugar to label+if+goto so the prelude is
	// re-executed on each iteration.
	//   head: pre; if (cond) { body; goto head; }
	//   exit: ;
	body = append(body, &cast.GotoStmt{Label: head})
	ifs := &cast.IfStmt{Cond: cond, Then: &cast.Block{Stmts: body}}
	ifs.P = s.Pos()
	seq := append(pre, ifs)
	out := []cast.Stmt{&cast.LabeledStmt{Label: head, Stmt: seq[0]}}
	out = append(out, seq[1:]...)
	out = append(out, &cast.LabeledStmt{Label: exit, Stmt: &cast.EmptyStmt{}})
	return out
}

// cond normalizes a condition into boolean shape, lifting calls and nested
// derefs into the returned prelude.
func (n *normalizer) cond(e cast.Expr) ([]cast.Stmt, cast.Expr) {
	switch e := e.(type) {
	case *cast.Binary:
		if e.Op.IsLogical() {
			preX, x := n.cond(e.X)
			preY, y := n.cond(e.Y)
			b := &cast.Binary{Op: e.Op, X: x, Y: y}
			b.P = e.Pos()
			return append(preX, preY...), b
		}
		if e.Op.IsRelational() {
			preX, x := n.rvalue(e.X)
			preY, y := n.rvalue(e.Y)
			b := &cast.Binary{Op: e.Op, X: x, Y: y}
			b.P = e.Pos()
			return append(preX, preY...), b
		}
	case *cast.Unary:
		if e.Op == cast.Not {
			pre, x := n.cond(e.X)
			u := &cast.Unary{Op: cast.Not, X: x}
			u.P = e.Pos()
			return pre, u
		}
	case *cast.IntLit:
		return nil, boolOfScalar(e, cast.IntType{})
	}
	// Scalar condition: compare against 0 / NULL.
	pre, x := n.rvalue(e)
	return pre, boolOfScalar(x, n.typeOf(x))
}

func boolOfScalar(e cast.Expr, t cast.Type) cast.Expr {
	var zero cast.Expr
	if cast.IsPointer(t) {
		zero = &cast.NullLit{}
	} else {
		zero = cast.NewInt(0)
	}
	b := &cast.Binary{Op: cast.Ne, X: e, Y: zero}
	b.P = e.Pos()
	return b
}

// isBoolExpr reports whether e is boolean-shaped (relational/logical/not).
func isBoolExpr(e cast.Expr) bool {
	switch e := e.(type) {
	case *cast.Binary:
		return e.Op.IsRelational() || e.Op.IsLogical()
	case *cast.Unary:
		return e.Op == cast.Not
	}
	return false
}

// lvalue normalizes an assignment target: at most one pointer indirection,
// no calls.
func (n *normalizer) lvalue(e cast.Expr) ([]cast.Stmt, cast.Expr) {
	switch e := e.(type) {
	case *cast.VarRef:
		return nil, e
	case *cast.Unary:
		if e.Op == cast.Deref_ {
			pre, base := n.simpleBase(e.X)
			u := &cast.Unary{Op: cast.Deref_, X: base}
			u.P = e.Pos()
			return pre, u
		}
	case *cast.Field:
		if e.Arrow {
			pre, base := n.simpleBase(e.X)
			f := &cast.Field{X: base, Name: e.Name, Arrow: true}
			f.P = e.Pos()
			return pre, f
		}
		pre, base := n.lvalue(e.X)
		f := &cast.Field{X: base, Name: e.Name}
		f.P = e.Pos()
		return pre, f
	case *cast.Index:
		preB, base := n.simpleBase(e.X)
		preI, idx := n.simpleIndex(e.I)
		ix := &cast.Index{X: base, I: idx}
		ix.P = e.Pos()
		return append(preB, preI...), ix
	}
	return n.rvalue(e)
}

// rvalue normalizes a general expression: calls lifted out, indirection
// chains flattened to depth one, pointer arithmetic collapsed.
func (n *normalizer) rvalue(e cast.Expr) ([]cast.Stmt, cast.Expr) {
	switch e := e.(type) {
	case *cast.IntLit, *cast.NullLit, *cast.VarRef:
		return nil, e
	case *cast.Unary:
		switch e.Op {
		case cast.Deref_:
			pre, base := n.simpleBase(e.X)
			u := &cast.Unary{Op: cast.Deref_, X: base}
			u.P = e.Pos()
			return pre, u
		case cast.AddrOf:
			pre, x := n.lvalue(e.X)
			u := &cast.Unary{Op: cast.AddrOf, X: x}
			u.P = e.Pos()
			return pre, u
		default:
			pre, x := n.rvalue(e.X)
			u := &cast.Unary{Op: e.Op, X: x}
			u.P = e.Pos()
			return pre, u
		}
	case *cast.Binary:
		// Logical memory model: pointer ± int collapses to the pointer.
		if (e.Op == cast.Add || e.Op == cast.Sub) && cast.IsPointer(n.typeOf(e)) {
			if cast.IsPointer(n.typeOf(e.X)) || isArray(n.typeOf(e.X)) {
				return n.rvalue(e.X)
			}
			return n.rvalue(e.Y)
		}
		preX, x := n.rvalue(e.X)
		preY, y := n.rvalue(e.Y)
		b := &cast.Binary{Op: e.Op, X: x, Y: y}
		b.P = e.Pos()
		return append(preX, preY...), b
	case *cast.Field:
		if e.Arrow {
			pre, base := n.simpleBase(e.X)
			f := &cast.Field{X: base, Name: e.Name, Arrow: true}
			f.P = e.Pos()
			return pre, f
		}
		pre, base := n.lvalue(e.X)
		f := &cast.Field{X: base, Name: e.Name}
		f.P = e.Pos()
		return pre, f
	case *cast.Index:
		preB, base := n.simpleBase(e.X)
		preI, idx := n.simpleIndex(e.I)
		ix := &cast.Index{X: base, I: idx}
		ix.P = e.Pos()
		return append(preB, preI...), ix
	case *cast.Call:
		pre, nc := n.normalizeCallArgs(e)
		t := n.freshTemp(n.typeOf(e))
		as := &cast.AssignStmt{Lhs: cast.NewVar(t), Rhs: nc}
		as.P = e.Pos()
		return append(pre, as), cast.NewVar(t)
	}
	return nil, e
}

func isArray(t cast.Type) bool {
	_, ok := t.(cast.ArrayType)
	return ok
}

// simpleBase normalizes the base of an indirection (deref, ->, index) so
// the result is a plain variable (possibly a fresh temp), guaranteeing no
// multiple dereferences of a pointer in one expression.
func (n *normalizer) simpleBase(e cast.Expr) ([]cast.Stmt, cast.Expr) {
	pre, x := n.rvalue(e)
	if _, ok := x.(*cast.VarRef); ok {
		return pre, x
	}
	t := n.freshTemp(n.typeOf(x))
	as := &cast.AssignStmt{Lhs: cast.NewVar(t), Rhs: x}
	as.P = e.Pos()
	return append(pre, as), cast.NewVar(t)
}

// simpleIndex normalizes an array subscript; subscripts containing
// indirection or calls are lifted into temps.
func (n *normalizer) simpleIndex(e cast.Expr) ([]cast.Stmt, cast.Expr) {
	pre, x := n.rvalue(e)
	if containsIndirection(x) {
		t := n.freshTemp(cast.IntType{})
		as := &cast.AssignStmt{Lhs: cast.NewVar(t), Rhs: x}
		as.P = e.Pos()
		return append(pre, as), cast.NewVar(t)
	}
	return pre, x
}

func containsIndirection(e cast.Expr) bool {
	switch e := e.(type) {
	case *cast.Unary:
		return e.Op == cast.Deref_ || containsIndirection(e.X)
	case *cast.Binary:
		return containsIndirection(e.X) || containsIndirection(e.Y)
	case *cast.Field:
		return true
	case *cast.Index:
		return true
	}
	return false
}

// normalizeCallArgs normalizes every argument to be call- and
// nested-indirection-free.
func (n *normalizer) normalizeCallArgs(c *cast.Call) ([]cast.Stmt, *cast.Call) {
	var pre []cast.Stmt
	args := make([]cast.Expr, len(c.Args))
	for i, a := range c.Args {
		p, na := n.rvalue(a)
		pre = append(pre, p...)
		args[i] = na
	}
	nc := &cast.Call{Name: c.Name, Args: args}
	nc.P = c.Pos()
	return pre, nc
}

// cloneExpr makes a structural copy of an expression (needed when the same
// lvalue appears in both branches of a desugared boolean assignment, since
// type information is keyed by node identity).
func cloneExpr(e cast.Expr) cast.Expr {
	switch e := e.(type) {
	case *cast.IntLit:
		c := *e
		return &c
	case *cast.NullLit:
		c := *e
		return &c
	case *cast.VarRef:
		c := *e
		return &c
	case *cast.Unary:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *cast.Binary:
		c := *e
		c.X = cloneExpr(e.X)
		c.Y = cloneExpr(e.Y)
		return &c
	case *cast.Field:
		c := *e
		c.X = cloneExpr(e.X)
		return &c
	case *cast.Index:
		c := *e
		c.X = cloneExpr(e.X)
		c.I = cloneExpr(e.I)
		return &c
	case *cast.Call:
		c := *e
		c.Args = make([]cast.Expr, len(e.Args))
		for i, a := range e.Args {
			c.Args[i] = cloneExpr(a)
		}
		return &c
	}
	return e
}
