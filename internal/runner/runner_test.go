// White-box test for Run's panic recovery: a panic inside the pipeline
// must still flush and close the run's trace/report artifacts. Daemon
// workers rely on this — with -artifacts, a recovered panic must not
// leave trace.jsonl unclosed or report.json unwritten for the attempt.
package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predabs/internal/obs"
)

func TestPanicRecoveryFlushesArtifacts(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	reportPath := filepath.Join(dir, "report.json")
	defer func(old func()) { pipelineHook = old }(pipelineHook)
	pipelineHook = func() { panic("injected pipeline panic") }

	var stdout, stderr bytes.Buffer
	code, outcome := Run(Input{
		SourceName: "t.c",
		Source:     "void main(int x) { if (x > 3) { assert(x > 1); } }",
		Entry:      "main",
		MaxIters:   10,
		Obs:        &obs.Flags{TraceOut: tracePath, ReportJSON: reportPath},
	}, &stdout, &stderr)

	if code != ExitError || outcome != "" {
		t.Fatalf("recovered run: code %d outcome %q, want %d and empty", code, outcome, ExitError)
	}
	if !strings.Contains(stderr.String(), "internal error") {
		t.Fatalf("recovered panic not diagnosed on stderr:\n%s", stderr.String())
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report.json not written after a recovered panic: %v", err)
	}
	if !json.Valid(bytes.TrimSpace(raw)) {
		t.Fatalf("report.json is not valid JSON after a recovered panic:\n%s", raw)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("trace.jsonl missing after a recovered panic: %v", err)
	}
}

// TestPanicAfterFinishRecovered exercises the finish wrapper's
// idempotence: the RESULT rendering runs after the normal finish, so a
// panic there reaches the recovery path with the artifacts already
// flushed — the second finish must be a harmless no-op and the run must
// still degrade to an internal error, keeping report.json intact.
func TestPanicAfterFinishRecovered(t *testing.T) {
	reportPath := filepath.Join(t.TempDir(), "report.json")
	var stderr bytes.Buffer
	code, outcome := Run(Input{
		SourceName: "t.c",
		Source:     "void main() {}",
		Entry:      "main",
		MaxIters:   10,
		Obs:        &obs.Flags{ReportJSON: reportPath},
	}, panicWriter{}, &stderr)
	if code != ExitError || outcome != "" {
		t.Fatalf("late panic: code %d outcome %q, want %d and empty", code, outcome, ExitError)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil || !json.Valid(bytes.TrimSpace(raw)) {
		t.Fatalf("report.json damaged after a post-finish panic: %v\n%s", err, raw)
	}
}

// panicWriter panics on the first write — for Run's stdout, that is the
// RESULT rendering, which happens after the normal finish.
type panicWriter struct{}

func (panicWriter) Write([]byte) (int, error) { panic("injected render panic") }
