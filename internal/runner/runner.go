// Package runner executes one complete SLAM verification run — the
// checkpoint-aware pipeline invocation plus the canonical result
// rendering — behind an io.Writer pair. It is the single place the
// "RESULT: ..." output format lives: cmd/slam drives it for terminal
// use, and the predabsd worker (internal/server) drives it for daemon
// jobs, which is what makes a daemon verdict byte-identical to a direct
// slam run over the same inputs. The checkpoint compatibility key is
// built here too (Tool: "slam"), so a journal written by a daemon
// worker warm-starts a later slam invocation and vice versa.
package runner

import (
	"fmt"
	"io"
	"sort"

	"predabs"
	"predabs/internal/checkpoint"
	"predabs/internal/obs"
	"predabs/internal/prover"
)

// Input is one verification run's full configuration: the program text
// (already read — attribution stays with SourceName), the optional
// specification, and the knobs cmd/slam exposes as flags.
type Input struct {
	// SourceName attributes diagnostics and -explain output (the
	// file:line style errors); it is never read from disk.
	SourceName string
	// Source is the MiniC program text.
	Source string
	// Spec is the SLIC specification text; consulted only when HasSpec.
	Spec string
	// HasSpec selects the specification workflow (VerifySpecCtx) over
	// the assert-checking workflow (VerifyCtx). An empty Spec with
	// HasSpec set is still the specification workflow.
	HasSpec bool
	// Entry is the entry procedure.
	Entry string
	// MaxIters bounds the refinement iterations (cmd/slam -maxiters).
	MaxIters int
	// Jobs sizes the cube-search worker pool (cmd/slam -j).
	Jobs int
	// Engine selects the abstraction engine (cmd/slam -abs-engine):
	// predabs.EngineCubes, predabs.EngineModels, or "" for the default
	// cube engine. Unlike Jobs it changes what the run computes along the
	// way (prover cache contents, budget degradations), so it feeds the
	// checkpoint compatibility key.
	Engine string
	// Stats, Explain and Verbose mirror the slam flags of the same name.
	Stats   bool
	Explain bool
	Verbose bool
	// CacheURL, when non-empty, layers the shared predcached prover
	// cache behind the local cache (cmd/slam -cache-url; predabsd
	// workers inherit it via PREDABSD_CACHE_URL). The tier is
	// partitioned by the same compatibility key as the checkpoint
	// journal, and every failure mode degrades to local-only behavior,
	// so the verdict is byte-identical with or without it.
	CacheURL string
	// CacheVerify enables the remote tier's revalidation mode: remote
	// hits never short-circuit; a deterministic sample is recomputed
	// locally and any disagreement quarantines the tier for the run.
	CacheVerify bool
	// Progress receives CEGAR iteration-boundary heartbeats (see
	// predabs.VerifyConfig.Progress). The predabsd worker uses it to
	// append durable progress records to its job's event log; nil
	// disables the hook at zero cost.
	Progress func(iter, preds int, queries int64, engine string)
	// Obs carries the shared observability/limit/checkpoint flag values.
	// Nil means all defaults (no tracing, no limits, no state dir).
	Obs *obs.Flags
}

// Exit codes of a run, matching cmd/slam's contract.
const (
	ExitVerified = 0
	ExitError    = 1 // error found, or a fatal input/internal error
	ExitUnknown  = 2
)

// Run executes the pipeline for in, rendering the canonical slam output
// to stdout and diagnostics to stderr. It returns the process exit code
// and the outcome label ("verified", "error-found", "unknown"; "" when
// the run failed before producing a verdict). Panics anywhere in the
// run are converted to an "internal error" diagnostic and ExitError —
// Run never lets one escape to the caller.
func Run(in Input, stdout, stderr io.Writer) (code int, outcome string) {
	// finish is assigned once tracing starts and is idempotent, so the
	// recovery path can flush and close the trace/report artifacts even
	// when the panic strikes after the normal finish already ran —
	// without it a recovered panic leaves trace.jsonl unclosed and
	// report.json unwritten for the attempt.
	var finish func() error
	defer func() {
		if p := recover(); p != nil {
			if finish != nil {
				finish()
			}
			fmt.Fprintf(stderr, "slam: internal error: %v\n", p)
			code, outcome = ExitError, ""
		}
	}()
	flags := in.Obs
	if flags == nil {
		flags = &obs.Flags{}
	}
	tracer, finishSession, err := flags.Start()
	if err != nil {
		return fatal(stderr, err), ""
	}
	finished := false
	finish = func() error {
		if finished {
			return nil
		}
		finished = true
		return finishSession()
	}
	if !predabs.ValidEngine(in.Engine) {
		finish()
		return fatal(stderr, fmt.Errorf("unknown -abs-engine %q (want %q or %q)",
			in.Engine, predabs.EngineCubes, predabs.EngineModels)), ""
	}
	engine := in.Engine
	if engine == "" {
		engine = predabs.EngineCubes
	}
	cfg := predabs.DefaultVerifyConfig()
	cfg.MaxIterations = in.MaxIters
	cfg.Opts.Jobs = in.Jobs
	cfg.Opts.Engine = engine
	cfg.Tracer = tracer
	cfg.Limits = flags.Limits()
	cfg.Progress = in.Progress
	if in.Verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		}
	}
	// The compatibility key covers everything that changes what the run
	// computes. -j and the wall-clock limits are deliberately absent:
	// results are worker-count-independent, and wall-clock degradations
	// are never persisted. The same key partitions the shared prover
	// cache: only runs that would compute identical verdicts exchange
	// them.
	key := checkpoint.CompatKey{
		Tool: "slam", Version: predabs.Version,
		Program: in.Source, Spec: in.Spec, Entry: in.Entry,
		MaxCubeLen:  cfg.Opts.MaxCubeLen,
		CubeBudget:  int64(flags.CubeBudget),
		BDDMaxNodes: int64(flags.BDDMaxNodes),
		AbsEngine:   engine,
	}
	ckpt, err := flags.OpenCheckpointW(stderr, key, tracer)
	if err != nil {
		finish()
		return fatal(stderr, err), ""
	}
	defer ckpt.Close()
	cfg.Checkpoint = ckpt
	if in.CacheURL != "" {
		tier := prover.NewRemoteTier(prover.RemoteConfig{
			URL:       in.CacheURL,
			Partition: key.Hash(),
			Verify:    in.CacheVerify,
			Trace:     tracer,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(stderr, "slam: "+format+"\n", args...)
			},
		})
		defer func() {
			tier.Close()
			if in.Stats {
				s := tier.Stats()
				fmt.Fprintf(stderr, "remote cache: lookups %d, hits %d, misses %d, fallbacks %d, published %d, dropped %d, verified %d, mismatches %d, quarantined %t\n",
					s.Lookups, s.Hits, s.Misses, s.Fallbacks, s.Published, s.Dropped, s.Verified, s.Mismatches, s.Quarantined)
			}
		}()
		cfg.RemoteCache = tier
	}
	ctx, cancel := flags.Context()
	defer cancel()
	pipelineHook()

	var res *predabs.VerifyResult
	if in.HasSpec {
		res, err = predabs.VerifySpecCtx(ctx, in.Source, in.Spec, in.Entry, cfg)
	} else {
		res, err = predabs.VerifyCtx(ctx, in.Source, in.Entry, cfg)
	}
	if err != nil {
		finish()
		fmt.Fprintf(stderr, "slam: %s: %v\n", in.SourceName, err)
		return ExitError, ""
	}
	if err := ckpt.Err(); err != nil {
		fmt.Fprintln(stderr, "slam: warning: checkpointing disabled:", err)
	}
	if err := finish(); err != nil {
		fmt.Fprintln(stderr, "slam:", err)
	}

	fmt.Fprintf(stdout, "RESULT: %s (iterations: %d, predicates: %d, prover calls: %d)\n",
		res.Outcome, res.Iterations, res.PredCount, res.ProverCalls)
	if in.Stats {
		fmt.Fprintf(stderr, "prover calls: %d\nprover cache hits: %d\ntheory solver time: %v\n",
			res.ProverCalls, res.CacheHits, res.SolverTime)
		if res.ProverSessions > 0 {
			fmt.Fprintf(stderr, "prover sessions: %d\nsession checks: %d\nmodels extracted: %d\nblocking clauses: %d\n",
				res.ProverSessions, res.SessionChecks, res.ModelsExtracted, res.BlockingClauses)
		}
		fmt.Fprintf(stderr, "stage abstraction (c2bp): %v\nstage model checking (bebop): %v\nstage predicate discovery (newton): %v\n",
			res.AbstractTime, res.CheckTime, res.NewtonTime)
		fmt.Fprintf(stderr, "bebop iterations: %d\n", res.CheckIterations)
		for _, p := range sortedProcs(res.CheckIterationsByProc) {
			fmt.Fprintf(stderr, "  proc %s: %d\n", p, res.CheckIterationsByProc[p])
		}
	}
	switch res.Outcome {
	case predabs.ErrorFound:
		if in.Explain {
			fmt.Fprintln(stdout, "error path (annotated):")
			for _, e := range res.Explain(in.SourceName) {
				fmt.Fprintln(stdout, "  "+e)
			}
		} else {
			fmt.Fprintln(stdout, "error path:")
			for _, e := range res.ErrorTrace {
				fmt.Fprintln(stdout, "  "+e)
			}
		}
		return ExitError, res.Outcome.String()
	case predabs.Unknown:
		if res.LimitName != "" {
			fmt.Fprintf(stdout, "stopped by limit %q in stage %q\n", res.LimitName, res.LimitStage)
		}
		for _, d := range res.Degradations {
			fmt.Fprintf(stderr, "slam: degraded: stage %s limit %s %s (x%d)\n", d.Stage, d.Limit, d.Detail, d.Count)
		}
		if in.Explain {
			fmt.Fprintln(stdout, "partial results:")
			for _, line := range res.ExplainUnknown() {
				fmt.Fprintln(stdout, "  "+line)
			}
		}
		return ExitUnknown, res.Outcome.String()
	}
	return ExitVerified, res.Outcome.String()
}

func sortedProcs(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func fatal(w io.Writer, err error) int {
	fmt.Fprintln(w, "slam:", err)
	return ExitError
}

// pipelineHook is a test seam: the runner tests override it to inject a
// panic inside the pipeline section of Run.
var pipelineHook = func() {}
