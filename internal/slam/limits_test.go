package slam

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"predabs/internal/budget"
	"predabs/internal/cparse"
	"predabs/internal/form"
)

// correlatedSrc needs CEGAR refinement (the classic SLAM example), so a
// starved run has real partial state to surface.
const correlatedSrc = `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(int x) {
  if (x == 0) {
    AcquireLock();
  }
  if (x == 0) {
    ReleaseLock();
  }
}
`

func TestRunTimeoutRetreatsToUnknown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Limits = budget.Limits{RunTimeout: time.Nanosecond}
	res, err := VerifySpec(correlatedSrc, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Unknown {
		t.Fatalf("outcome %s under a 1ns deadline, want unknown", res.Outcome)
	}
	if res.LimitName != budget.LimitDeadline {
		t.Fatalf("LimitName=%q LimitStage=%q, want deadline", res.LimitName, res.LimitStage)
	}
	if len(res.Degradations) == 0 {
		t.Fatal("no degradations recorded")
	}
}

func TestCancelledContextRetreatsToUnknown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := VerifySpecCtx(ctx, correlatedSrc, lockSpec, "main", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Unknown || res.LimitName != budget.LimitDeadline {
		t.Fatalf("outcome %s limit %q, want unknown/deadline", res.Outcome, res.LimitName)
	}
}

func TestIterationExhaustionKeepsPartialResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxIterations = 1
	res, err := VerifySpec(correlatedSrc, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Unknown {
		t.Fatalf("outcome %s with 1 iteration, want unknown", res.Outcome)
	}
	if res.LimitStage != "slam" || res.LimitName != budget.LimitIterations {
		t.Fatalf("limit = %s/%s, want slam/iterations", res.LimitStage, res.LimitName)
	}
	if len(res.PartialInvariants) == 0 {
		t.Error("iteration exhaustion lost the last round's invariants")
	}
	lines := res.ExplainUnknown()
	if len(lines) == 0 {
		t.Fatal("ExplainUnknown returned nothing")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "iterations") || !strings.Contains(joined, "partial invariants") {
		t.Errorf("ExplainUnknown missing limit or invariants:\n%s", joined)
	}
}

// panicProver crashes on its first query, standing in for a decision
// procedure bug.
type panicProver struct{}

func (panicProver) Valid(hyp, goal form.Formula) bool { panic("prover exploded") }
func (panicProver) Unsat(f form.Formula) bool         { panic("prover exploded") }

func TestStagePanicBecomesStageError(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prover = panicProver{}
	_, err := VerifySpec(correlatedSrc, lockSpec, "main", cfg)
	if err == nil {
		t.Fatal("panicking prover produced no error")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *StageError", err, err)
	}
	if !se.Panicked || se.Stage != "abstract" {
		t.Fatalf("StageError = %+v, want panicked in stage abstract", se)
	}
	if !strings.Contains(err.Error(), "prover exploded") {
		t.Errorf("panic value lost: %v", err)
	}
}

func TestCubeBudgetThreadedToAbstraction(t *testing.T) {
	// Seed enough predicates that the cube search has more than one
	// candidate, so a budget of 1 must truncate and log a degradation.
	// The truncated abstraction is weaker but sound, so any of the three
	// outcomes remains admissible; the test pins the plumbing.
	preds, err := cparse.ParsePredFile("main:\n  x == 0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InitialPreds = preds
	cfg.Limits = budget.Limits{CubeBudget: 1}
	res, err := VerifySpec(correlatedSrc, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range res.Degradations {
		if d.Stage == "abstract" && d.Limit == budget.LimitCubeBudget {
			found = true
		}
	}
	if !found {
		t.Fatalf("no abstract/cube-budget degradation recorded: %+v (outcome %s)",
			res.Degradations, res.Outcome)
	}
}
