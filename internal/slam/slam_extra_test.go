package slam

import (
	"strings"
	"testing"

	"predabs/internal/cparse"
)

// The property-checking problem is undecidable and the paper notes the
// SLAM process "may not converge in theory". Heap-shape preservation with
// sound parameter aliasing is exactly such a case (see EXPERIMENTS.md):
// the loop must terminate with Unknown or the iteration budget, never a
// wrong verdict.
func TestShapePropertyDoesNotMisverify(t *testing.T) {
	src := `
struct node { int mark; struct node* next; };
void mark(struct node* list, struct node* h) {
  struct node* this;
  struct node* tmp;
  struct node* prev;
  struct node* hnext;
  assume(h != NULL);
  hnext = h->next;
  prev = NULL;
  this = list;
  while (this != NULL) {
    if (this->mark == 1) { break; }
    this->mark = 1;
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }
  while (prev != NULL) {
    tmp = this;
    this = prev;
    prev = prev->next;
    this->next = tmp;
  }
  assert(h->next == hnext);
}
`
	cfg := DefaultConfig()
	// The refinement cannot close this; keep the demonstration cheap: two
	// rounds with a small cube bound are enough to show no wrong verdict.
	cfg.MaxIterations = 2
	cfg.Opts.MaxCubeLen = 2
	res, err := Verify(src, "mark", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Crucially: never "verified" (that would be unsound) and never a
	// definitively-feasible "error-found" (Newton must not validate a
	// spurious path — the property does hold concretely).
	if res.Outcome == Verified {
		t.Fatalf("unsound verification of a shape property that needs shape analysis")
	}
	t.Logf("outcome after %d iterations: %s (expected: unknown/budget)", res.Iterations, res.Outcome)
}

func TestRecursiveProgramVerification(t *testing.T) {
	src := `
int dec(int n) {
  int r;
  if (n <= 0) {
    return 0;
  }
  r = dec(n - 1);
  return r;
}

void main(int n) {
  int out;
  out = dec(n);
  assert(out == 0);
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := Verify(src, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations (preds %v)", res.Outcome, res.Iterations, res.Predicates)
	}
}

func TestInitialPredicatesSkipIterations(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(int x) {
  if (x == 0) { AcquireLock(); }
  if (x == 0) { ReleaseLock(); }
}
`
	// Without seeds CEGAR needs several rounds; with the right predicates
	// seeded up front it verifies in one.
	seeds, err := cparse.ParsePredFile(`
global:
  locked == 1
main:
  x == 0
`)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InitialPreds = seeds
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s (preds %v)", res.Outcome, res.Predicates)
	}
	if res.Iterations != 1 {
		t.Errorf("seeded run took %d iterations, want 1", res.Iterations)
	}
}

func TestIterationBudgetRespected(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(int x) {
  if (x == 0) { AcquireLock(); }
  if (x == 0) { AcquireLock(); }
}
`
	cfg := DefaultConfig()
	cfg.MaxIterations = 1
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One iteration cannot decide this double-acquire (it needs the
	// locked/x predicates), so the loop must stop at the budget.
	if res.Iterations > 1 {
		t.Fatalf("budget exceeded: %d iterations", res.Iterations)
	}
}

func TestErrorTraceMentionsEvents(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  ReleaseLock();
}
`
	res, err := VerifySpec(src, lockSpec, "main", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ErrorFound {
		t.Fatalf("outcome %s", res.Outcome)
	}
	joined := strings.Join(res.ErrorTrace, "\n")
	if !strings.Contains(joined, "locked") {
		t.Errorf("trace should mention the spec state:\n%s", joined)
	}
	if !strings.Contains(joined, "ReleaseLock") {
		t.Errorf("trace should mention the event procedure:\n%s", joined)
	}
}

func TestVerifyRejectsBadSource(t *testing.T) {
	if _, err := Verify("void f( {", "f", DefaultConfig()); err == nil {
		t.Error("parse error expected")
	}
	if _, err := VerifySpec("void f(void) { }", "state { int s = 0; }", "f", DefaultConfig()); err == nil {
		t.Error("spec without events should fail")
	}
	if _, err := Verify("void f(void) { }", "nosuch", DefaultConfig()); err == nil {
		t.Error("unknown entry should fail")
	}
}

// Nested spec state machine: a three-state protocol (init -> opened ->
// closed) with an ordering rule.
func TestThreeStateProtocol(t *testing.T) {
	spec := `
state { int phase = 0; }
event Open entry {
  if (phase != 0) { abort; }
  phase = 1;
}
event Use entry {
  if (phase != 1) { abort; }
}
event Close entry {
  if (phase != 1) { abort; }
  phase = 2;
}
`
	good := `
void Open(void) { }
void Use(void) { }
void Close(void) { }
void main(int n) {
  Open();
  while (n > 0) {
    Use();
    n = n - 1;
  }
  Close();
}
`
	res, err := VerifySpec(good, spec, "main", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("good protocol: %s (preds %v)", res.Outcome, res.Predicates)
	}

	bad := `
void Open(void) { }
void Use(void) { }
void Close(void) { }
void main(void) {
  Open();
  Close();
  Use();
}
`
	res, err = VerifySpec(bad, spec, "main", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ErrorFound {
		t.Fatalf("use-after-close: %s", res.Outcome)
	}
}
