package slam

import (
	"strings"
	"testing"

	"predabs/internal/budget"
)

// A run stopped before any iteration completed (tight deadline, stage
// error) has no partial state: -explain must say so instead of
// rendering "after 0 iteration(s)" around an empty report.
func TestExplainUnknownZeroIterations(t *testing.T) {
	r := &Result{Outcome: Unknown, LimitName: budget.LimitDeadline, LimitStage: "slam"}
	lines := r.ExplainUnknown()
	if len(lines) == 0 {
		t.Fatal("ExplainUnknown returned nothing for a zero-iteration Unknown")
	}
	if !strings.Contains(lines[0], "no iterations completed") {
		t.Errorf("first line = %q, want a 'no iterations completed' notice", lines[0])
	}
	if !strings.Contains(lines[0], budget.LimitDeadline) {
		t.Errorf("first line = %q, should still name the limit that stopped the run", lines[0])
	}

	r = &Result{Outcome: Unknown}
	lines = r.ExplainUnknown()
	if len(lines) == 0 || lines[0] != "no iterations completed" {
		t.Errorf("limit-free zero-iteration explanation = %q, want \"no iterations completed\"", lines)
	}
}

func TestExplainNilResult(t *testing.T) {
	var r *Result
	if got := r.Explain("x.c"); got != nil {
		t.Errorf("nil Result Explain = %v, want nil", got)
	}
	if got := r.ExplainUnknown(); got != nil {
		t.Errorf("nil Result ExplainUnknown = %v, want nil", got)
	}
}

// Completed iterations keep the iteration-count phrasing.
func TestExplainUnknownAfterIterations(t *testing.T) {
	r := &Result{Outcome: Unknown, Iterations: 3}
	lines := r.ExplainUnknown()
	if len(lines) == 0 || !strings.Contains(lines[0], "after 3 iteration(s)") {
		t.Errorf("explanation = %q, want the dead-end phrasing with the count", lines)
	}
}
