// Package slam implements the SLAM process (paper Section 6.1): given a C
// program and a temporal safety property, iterate (1) abstraction with
// C2bp, (2) model checking with Bebop, (3) predicate discovery with
// Newton, until the property is validated or a feasible error path is
// found. The toolkit never reports spurious error paths: infeasible
// counterexamples refine the abstraction instead.
package slam

import (
	"context"
	"fmt"
	"strings"
	"time"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/cast"
	"predabs/internal/checkpoint"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/newton"
	"predabs/internal/prover"
	"predabs/internal/spec"
	tracepkg "predabs/internal/trace"
)

// Outcome classifies a verification run.
type Outcome int

// Verification outcomes.
const (
	// Verified: no abort/assert violation is reachable.
	Verified Outcome = iota
	// ErrorFound: a feasible error path exists; see Result.Trace.
	ErrorFound
	// Unknown: the refinement loop stopped without an answer (iteration
	// budget, no new predicates, or prover incompleteness).
	Unknown
)

func (o Outcome) String() string {
	switch o {
	case Verified:
		return "verified"
	case ErrorFound:
		return "error-found"
	case Unknown:
		return "unknown"
	}
	return "?"
}

// Config tunes the CEGAR loop.
type Config struct {
	// MaxIterations bounds the abstract-check-refine loop (default 10).
	MaxIterations int
	// Opts configures C2bp.
	Opts abstract.Options
	// InitialPreds seeds the predicate set (may be nil).
	InitialPreds []cparse.PredSection
	// Trace enables per-iteration logging through Logf.
	Logf func(format string, args ...any)
	// Tracer receives structured events from every pipeline stage
	// (frontend, abstraction, cube search, prover, Bebop, Newton, CEGAR
	// iterations). nil disables tracing at zero cost.
	Tracer *tracepkg.Tracer
	// Limits bounds the run's resources: whole-run wall clock, per-query
	// prover timeout, per-procedure cube budget and Bebop BDD node
	// ceiling. Every limit degrades soundly (the answer weakens toward
	// Unknown, never toward a wrong Verified/ErrorFound claim); zero
	// values are unlimited.
	Limits budget.Limits
	// Checkpoint persists refinement state across process deaths: each
	// iteration boundary appends one durable journal record (predicate
	// pool, per-procedure signatures, prover-cache spill), and when the
	// manager replayed a snapshot on open, the loop resumes after the
	// last committed iteration with the pool and prover cache warm. A
	// resumed run produces byte-identical deterministic results
	// (outcome, iterations, predicates, prover calls) to an
	// uninterrupted one. nil disables checkpointing; persistence errors
	// are logged, never fatal to the verification itself.
	Checkpoint *checkpoint.Manager
	// Progress, when non-nil, receives a heartbeat at each refining
	// CEGAR iteration boundary — the same commit point the checkpoint
	// journals — with the 1-based iteration number that just refined, the
	// predicate-pool size entering the next iteration, the cumulative
	// prover interaction count (queries + incremental-session checks) and
	// the active abstraction engine. Iterations that end the run
	// (verdict, give-up, limit) emit no heartbeat; the outcome channel
	// covers them. Pure observability: the loop never depends on it, and
	// a slow or failing hook only delays the boundary it runs on.
	Progress func(iter, preds int, queries int64, engine string)
	// Prover overrides the theorem prover — the hook for fault injection
	// and alternative decision procedures. nil builds a prover.New()
	// configured from Limits. An override is used as-is (QueryTimeout
	// from Limits is NOT applied to it); prover statistics appear in the
	// Result only when the override implements the optional Calls /
	// CacheHits / SolverTime / Timeouts methods.
	Prover prover.Querier
	// RemoteCache attaches a shared prover-cache tier to the prover the
	// loop builds when Prover is nil (a Prover override manages its own
	// tiers). The tier only serves verdicts the local decision procedure
	// could have computed, and every failure mode degrades to local-only
	// behavior, so results stay byte-identical with or without it. nil
	// disables the tier at zero cost.
	RemoteCache *prover.RemoteTier
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MaxIterations: 10, Opts: abstract.DefaultOptions()}
}

// Result reports a verification run.
type Result struct {
	Outcome    Outcome
	Iterations int
	// Predicates used in the final round, per scope.
	Predicates map[string][]string
	// PredCount is the total number of predicates in the final round.
	PredCount int
	// ProverCalls accumulates theorem prover calls across all rounds.
	ProverCalls int
	// CacheHits accumulates prover queries answered from the memo cache
	// (optimization 5 working across CEGAR iterations).
	CacheHits int
	// ProverSessions, SessionChecks, ModelsExtracted and BlockingClauses
	// accumulate the model-enumeration engine's incremental-session
	// activity across all rounds; all zero under the default cube engine.
	// ProverCalls + SessionChecks is the run's total prover interaction
	// count, the number to compare across engines.
	ProverSessions  int
	SessionChecks   int
	ModelsExtracted int
	BlockingClauses int
	// SolverTime is the cumulative wall time inside the decision
	// procedures.
	SolverTime time.Duration
	// AbstractTime, CheckTime and NewtonTime are the per-stage wall
	// times accumulated across all CEGAR iterations (C2bp, Bebop, Newton
	// respectively), the paper's "C2bp dominates the cost" observation
	// made measurable.
	AbstractTime time.Duration
	CheckTime    time.Duration
	NewtonTime   time.Duration
	// CheckIterations accumulates Bebop worklist iterations across all
	// CEGAR rounds; CheckIterationsByProc splits them per procedure.
	CheckIterations       int
	CheckIterationsByProc map[string]int
	// ErrorTrace holds the C-level rendering of the feasible error path.
	ErrorTrace []string
	// BPTrace is the boolean-program trace of the error.
	BPTrace []bebop.Step
	// FinalBP is the last boolean program (diagnostics).
	FinalBP *bp.Program
	// LimitStage and LimitName identify the first resource limit the run
	// hit ("" when none): the stage that degraded ("prover", "abstract",
	// "bebop", "newton", "slam") and the canonical limit name (see
	// package budget). An Unknown outcome with a non-empty LimitName is a
	// resource retreat, not a refinement dead end.
	LimitStage, LimitName string
	// Degradations lists every sound weakening taken under a resource
	// limit, deduplicated by (stage, limit) with repeat counts.
	Degradations []budget.Event
	// PartialInvariants holds the labelled reachable-state invariants of
	// the last abstraction when the loop stopped without a verdict
	// (iteration budget, resource limit, or no new predicates): partial
	// results that remain sound over-approximations for the predicate
	// set in Predicates.
	PartialInvariants []string
}

// VerifySpec checks a temporal-safety specification against a MiniC
// program: the spec is instrumented, then the abort reachability question
// is answered by the CEGAR loop.
func VerifySpec(src, specSrc, entry string, cfg Config) (*Result, error) {
	return VerifySpecCtx(context.Background(), src, specSrc, entry, cfg)
}

// VerifySpecCtx is VerifySpec under a cancellation context: when ctx is
// cancelled (or cfg.Limits.RunTimeout elapses) the loop retreats soundly
// to Unknown, carrying whatever partial results the finished stages
// produced.
func VerifySpecCtx(ctx context.Context, src, specSrc, entry string, cfg Config) (*Result, error) {
	parseSpan := cfg.Tracer.Begin("frontend", "parse")
	prog, err := cparse.Parse(src)
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("slam: parse: %w", err)
	}
	sp, err := spec.Parse(specSrc)
	if err != nil {
		return nil, fmt.Errorf("slam: spec: %w", err)
	}
	inst, err := spec.Instrument(prog, sp, entry)
	if err != nil {
		return nil, fmt.Errorf("slam: instrument: %w", err)
	}
	return VerifyProgramCtx(ctx, inst, entry, cfg)
}

// Verify checks that no assert in the program can fail, starting from
// entry.
func Verify(src, entry string, cfg Config) (*Result, error) {
	return VerifyCtx(context.Background(), src, entry, cfg)
}

// VerifyCtx is Verify under a cancellation context; see VerifySpecCtx.
func VerifyCtx(ctx context.Context, src, entry string, cfg Config) (*Result, error) {
	parseSpan := cfg.Tracer.Begin("frontend", "parse")
	prog, err := cparse.Parse(src)
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("slam: parse: %w", err)
	}
	return VerifyProgramCtx(ctx, prog, entry, cfg)
}

// VerifyProgram runs the CEGAR loop on a parsed program.
func VerifyProgram(prog *cast.Program, entry string, cfg Config) (*Result, error) {
	return VerifyProgramCtx(context.Background(), prog, entry, cfg)
}

// VerifyProgramCtx runs the CEGAR loop on a parsed program under a
// cancellation context and the resource limits in cfg.Limits.
func VerifyProgramCtx(ctx context.Context, prog *cast.Program, entry string, cfg Config) (*Result, error) {
	out, err := verifyProgram(ctx, prog, entry, cfg)
	if err == nil && out != nil {
		cfg.Tracer.Event("slam", "outcome",
			tracepkg.Str("outcome", out.Outcome.String()),
			tracepkg.Int("iterations", out.Iterations))
	}
	return out, err
}

func verifyProgram(ctx context.Context, prog *cast.Program, entry string, cfg Config) (out *Result, retErr error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10
	}
	if cfg.Opts == (abstract.Options{}) {
		cfg.Opts = abstract.DefaultOptions()
	}
	if cfg.Tracer != nil {
		cfg.Opts.Tracer = cfg.Tracer
	}
	tracer := cfg.Tracer
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	if cfg.Limits.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Limits.RunTimeout)
		defer cancel()
	}
	bt := budget.New(ctx, cfg.Limits, tracer)
	cfg.Opts.Budget = bt
	if cfg.Limits.CubeBudget > 0 {
		cfg.Opts.CubeBudget = cfg.Limits.CubeBudget
	}
	bebopLimits := bebop.Limits{Budget: bt, MaxBDDNodes: cfg.Limits.BDDMaxNodes}

	var res *cnorm.Result
	var aa *alias.Analysis
	if err := runStage("frontend", func() error {
		info, err := ctype.Check(prog)
		if err != nil {
			return fmt.Errorf("type check: %w", err)
		}
		res, err = cnorm.Normalize(info)
		if err != nil {
			return fmt.Errorf("normalize: %w", err)
		}
		aliasSpan := tracer.Begin("frontend", "alias")
		aa = alias.Analyze(res)
		aliasSpan.End()
		return nil
	}); err != nil {
		return nil, fmt.Errorf("slam: %w", err)
	}

	pv := cfg.Prover
	if pv == nil {
		p := prover.New()
		p.Trace = tracer
		p.QueryTimeout = cfg.Limits.QueryTimeout
		p.Budget = bt
		p.Remote = cfg.RemoteCache
		pv = p
	}

	// Predicate pool, per scope, in insertion order.
	pool := map[string][]string{}
	poolSeen := map[string]bool{}
	addPred := func(scope, text string) bool {
		key := scope + "\x00" + text
		if poolSeen[key] {
			return false
		}
		poolSeen[key] = true
		pool[scope] = append(pool[scope], text)
		return true
	}
	for _, sec := range cfg.InitialPreds {
		for i := range sec.Exprs {
			addPred(sec.Name, sec.Texts[i])
		}
	}

	ckpt := cfg.Checkpoint
	out = &Result{Outcome: Unknown, CheckIterationsByProc: map[string]int{}}
	defer func() {
		// Runs after the degradation defer below (LIFO), so LimitName is
		// final: journal the outcome durably on every loop exit —
		// including the deadline retreat, so a timed-out run's journal
		// ends on a final record before the process exits.
		if retErr != nil || out == nil || ckpt == nil {
			return
		}
		if err := ckpt.AppendFinal(out.Outcome.String(), out.LimitName); err != nil {
			logf("slam: checkpoint final record failed: %v", err)
		}
		tracer.Event("checkpoint", "final",
			tracepkg.Str("outcome", out.Outcome.String()),
			tracepkg.Int("commits", ckpt.Commits()))
	}()
	defer func() {
		// Stage-error returns hand back a nil result; there is nothing
		// to annotate (named returns: `return nil, err` nils out).
		if out == nil {
			return
		}
		out.Degradations = bt.Events()
		if ev, ok := bt.First(); ok {
			out.LimitStage, out.LimitName = ev.Stage, ev.Limit
		}
	}()

	// Resume: replay the journal's last committed iteration — predicate
	// pool in original insertion order (addPred dedups the InitialPreds
	// prefix), warm prover cache, and the deterministic counters as the
	// base the fresh process accumulates on.
	var base checkpoint.Counters
	startIter := 1
	if snap := ckpt.Snapshot(); snap != nil {
		restoreSpan := tracer.Begin("checkpoint", "restore")
		for _, sp := range snap.Pool {
			for _, text := range sp.Preds {
				addPred(sp.Scope, text)
			}
		}
		if imp, ok := pv.(interface{ ImportCache([]prover.CacheEntry) }); ok {
			imp.ImportCache(snap.Cache)
		}
		base = snap.Counters
		startIter = snap.Iter + 1
		// Seed the result as if iterations 1..snap.Iter ran here, so
		// every exit path — including "iteration budget already spent",
		// where the loop body never runs — reports the same totals an
		// uninterrupted run would.
		out.Iterations = snap.Iter
		out.ProverCalls = base.ProverCalls
		out.CacheHits = base.CacheHits
		out.ProverSessions = base.ProverSessions
		out.SessionChecks = base.SessionChecks
		out.ModelsExtracted = base.ModelsExtracted
		out.BlockingClauses = base.BlockingClauses
		out.CheckIterations = base.CheckIterations
		for p, n := range base.CheckIterationsByProc {
			out.CheckIterationsByProc[p] = n
		}
		restoreSpan.End(tracepkg.Int("iteration", snap.Iter),
			tracepkg.Int("cache_entries", len(snap.Cache)))
		logf("slam: resumed from checkpoint: iteration %d committed, %d cached verdicts",
			snap.Iter, len(snap.Cache))
	}
	// lastChecker keeps the most recent Bebop fixpoint so an inconclusive
	// exit can surface its invariants as partial results.
	var lastChecker *bebop.Checker
	keepPartial := func() {
		if lastChecker == nil {
			return
		}
		// Entry invariants cover label-free programs; labelled invariants
		// add the user's marked program points. A degraded fixpoint makes
		// these under-approximations of the abstract reachable states —
		// still honest partial results, flagged by out.LimitName.
		for _, pr := range lastChecker.Prog.Procs {
			if len(pr.Stmts) == 0 {
				continue
			}
			inv := lastChecker.InvariantString(pr.Name, 0)
			if inv == "" {
				// Reachable with no predicate variables in scope.
				inv = "true"
			}
			out.PartialInvariants = append(out.PartialInvariants,
				pr.Name+": entry: "+inv)
		}
		out.PartialInvariants = append(out.PartialInvariants, lastChecker.LabelledInvariants()...)
	}
	for iter := startIter; iter <= cfg.MaxIterations; iter++ {
		if bt.Cancelled() {
			bt.Degrade("slam", budget.LimitDeadline,
				fmt.Sprintf("stopped before iteration %d", iter))
			logf("slam: deadline hit; answer unknown")
			keepPartial()
			return out, nil
		}
		out.Iterations = iter
		sections := poolSections(res, pool)
		out.Predicates = map[string][]string{}
		out.PredCount = 0
		for _, sec := range sections {
			out.Predicates[sec.Name] = append([]string{}, sec.Texts...)
			out.PredCount += len(sec.Texts)
		}
		logf("slam iteration %d: %d predicates", iter, out.PredCount)
		iterSpan := tracer.Begin("slam", "iteration")
		endIter := func() {
			iterSpan.End(tracepkg.Int("n", iter), tracepkg.Int("predicates", out.PredCount))
		}

		absStart := time.Now()
		var abs *abstract.Result
		err := runStage("abstract", func() (err error) {
			abs, err = abstract.Abstract(res, aa, pv, sections, cfg.Opts)
			return err
		})
		out.AbstractTime += time.Since(absStart)
		if err != nil {
			return nil, fmt.Errorf("slam (iteration %d): %w", iter, err)
		}
		out.FinalBP = abs.BP
		recordProverStats(out, pv, base)

		checkStart := time.Now()
		var checker *bebop.Checker
		err = runStage("bebop", func() (err error) {
			checker, err = bebop.CheckLimited(abs.BP, entry, tracer, bebopLimits)
			return err
		})
		out.CheckTime += time.Since(checkStart)
		if err != nil {
			return nil, fmt.Errorf("slam (iteration %d): %w", iter, err)
		}
		lastChecker = checker
		out.CheckIterations += checker.Iterations
		for p, n := range checker.IterationsByProc {
			out.CheckIterationsByProc[p] += n
		}
		failure, bad := checker.ErrorReachable()
		if !bad {
			if checker.Degraded {
				// The truncated fixpoint under-approximates reachability:
				// absence of a failure in the explored prefix proves
				// nothing. Retreat to Unknown with the partial fixpoint.
				logf("slam: bebop hit %s; answer unknown", checker.DegradeReason)
				out.Outcome = Unknown
				keepPartial()
				endIter()
				return out, nil
			}
			out.Outcome = Verified
			logf("slam: verified after %d iteration(s)", iter)
			endIter()
			return out, nil
		}

		trace, ok := checker.Trace(entry, failure)
		if !ok {
			logf("slam: counterexample trace extraction failed")
			out.Outcome = Unknown
			keepPartial()
			endIter()
			return out, nil
		}
		newtonStart := time.Now()
		var nres *newton.Result
		err = runStage("newton", func() (err error) {
			nres, err = newton.AnalyzeLimited(res, aa, pv, trace, tracer, bt)
			return err
		})
		out.NewtonTime += time.Since(newtonStart)
		if err != nil {
			return nil, fmt.Errorf("slam (iteration %d): %w", iter, err)
		}
		recordProverStats(out, pv, base)
		if nres.GaveUp {
			logf("slam: newton gave up on the path condition; answer unknown")
			out.Outcome = Unknown
			keepPartial()
			endIter()
			return out, nil
		}
		if nres.Feasible {
			out.Outcome = ErrorFound
			out.BPTrace = trace
			out.ErrorTrace = nres.Events
			logf("slam: feasible error path found after %d iteration(s)", iter)
			endIter()
			return out, nil
		}

		// Refine.
		added := 0
		for scope, preds := range nres.NewPreds {
			for _, p := range preds {
				if addPred(scope, p) {
					added++
					logf("slam: new predicate [%s] %s", scope, p)
				}
			}
		}
		endIter()
		if added == 0 {
			logf("slam: no new predicates; giving up")
			out.Outcome = Unknown
			keepPartial()
			return out, nil
		}
		// Commit point: the iteration refined the abstraction, so the
		// state entering iteration iter+1 — grown pool, signatures,
		// every fully decided prover verdict — is journaled durably
		// before the next round starts. Iterations that end the run
		// instead are covered by the final record.
		commitCheckpoint(ckpt, tracer, logf, iter, res, pool, abs, pv, out)
		if cfg.Progress != nil {
			poolSize := 0
			for _, preds := range pool {
				poolSize += len(preds)
			}
			engine := cfg.Opts.Engine
			if engine == "" {
				engine = abstract.EngineCubes
			}
			cfg.Progress(iter, poolSize, int64(out.ProverCalls+out.SessionChecks), engine)
		}
	}
	// Iteration budget exhausted: surface the last round's invariants and
	// the predicate pool (already in out.Predicates — the pool only grows,
	// so the final round's set is every predicate tried) as partial
	// results, and record the limit like any other resource retreat.
	bt.Degrade("slam", budget.LimitIterations,
		fmt.Sprintf("refinement stopped after %d iterations", cfg.MaxIterations))
	logf("slam: iteration budget exhausted")
	out.Predicates = map[string][]string{}
	out.PredCount = 0
	for _, scope := range poolScopes(res) {
		if len(pool[scope]) == 0 {
			continue
		}
		out.Predicates[scope] = append([]string{}, pool[scope]...)
		out.PredCount += len(pool[scope])
	}
	keepPartial()
	return out, nil
}

// recordProverStats copies the prover's running counters into the result
// when the Querier exposes them (a Config.Prover override may not). base
// carries the totals a resumed run inherited from its checkpoint: the
// fresh process's prover counts only post-resume work, and the sum
// reproduces the uninterrupted run's totals.
func recordProverStats(out *Result, pv prover.Querier, base checkpoint.Counters) {
	if s, ok := pv.(interface{ Calls() int }); ok {
		out.ProverCalls = base.ProverCalls + s.Calls()
	}
	if s, ok := pv.(interface{ CacheHits() int }); ok {
		out.CacheHits = base.CacheHits + s.CacheHits()
	}
	if s, ok := pv.(interface{ SolverTime() time.Duration }); ok {
		out.SolverTime = s.SolverTime()
	}
	if s, ok := pv.(interface{ Sessions() int }); ok {
		out.ProverSessions = base.ProverSessions + s.Sessions()
	}
	if s, ok := pv.(interface{ SessionChecks() int }); ok {
		out.SessionChecks = base.SessionChecks + s.SessionChecks()
	}
	if s, ok := pv.(interface{ ModelsExtracted() int }); ok {
		out.ModelsExtracted = base.ModelsExtracted + s.ModelsExtracted()
	}
	if s, ok := pv.(interface{ BlockingClauses() int }); ok {
		out.BlockingClauses = base.BlockingClauses + s.BlockingClauses()
	}
}

// commitCheckpoint journals one iteration boundary. The prover is
// quiescent here (the loop runs stages sequentially), so the cache
// export is the deterministic boundary state the byte-identical-resume
// guarantee needs. Persistence failures are logged and the run
// continues un-checkpointed — a verification answer is never sacrificed
// to a full disk.
func commitCheckpoint(ckpt *checkpoint.Manager, tracer *tracepkg.Tracer, logf func(string, ...any),
	iter int, res *cnorm.Result, pool map[string][]string, abs *abstract.Result, pv prover.Querier, out *Result) {
	if ckpt == nil || ckpt.ReadOnly() {
		return
	}
	span := tracer.Begin("checkpoint", "commit")
	scopes := poolScopes(res)
	rec := checkpoint.IterationRecord{Iter: iter}
	for _, scope := range scopes {
		if len(pool[scope]) == 0 {
			continue
		}
		rec.Pool = append(rec.Pool, checkpoint.ScopePreds{
			Scope: scope, Preds: append([]string{}, pool[scope]...)})
	}
	rec.Sigs = abstract.SignatureRecords(abs.Sigs, scopes[1:])
	if exp, ok := pv.(interface{ ExportCache() []prover.CacheEntry }); ok {
		rec.Cache = exp.ExportCache()
	}
	rec.Counters = checkpoint.Counters{
		ProverCalls:           out.ProverCalls,
		CacheHits:             out.CacheHits,
		CheckIterations:       out.CheckIterations,
		CheckIterationsByProc: out.CheckIterationsByProc,
		ProverSessions:        out.ProverSessions,
		SessionChecks:         out.SessionChecks,
		ModelsExtracted:       out.ModelsExtracted,
		BlockingClauses:       out.BlockingClauses,
	}
	if err := ckpt.AppendIteration(rec); err != nil {
		logf("slam: checkpoint commit failed: %v (continuing without persistence)", err)
	}
	span.End(tracepkg.Int("n", iter), tracepkg.Int("cache_entries", len(rec.Cache)))
}

// poolSections converts the predicate pool into parsed sections, dropping
// predicates that no longer parse (should not happen).
// poolScopes lists the predicate scopes in deterministic order: global
// first, then program function order.
func poolScopes(res *cnorm.Result) []string {
	scopes := []string{abstract.GlobalScope}
	for _, f := range res.Prog.Funcs {
		scopes = append(scopes, f.Name)
	}
	return scopes
}

func poolSections(res *cnorm.Result, pool map[string][]string) []cparse.PredSection {
	var out []cparse.PredSection
	for _, scope := range poolScopes(res) {
		preds := pool[scope]
		if len(preds) == 0 {
			continue
		}
		src := scope + ":\n  " + strings.Join(preds, ",\n  ")
		secs, err := cparse.ParsePredFile(src)
		if err != nil {
			continue
		}
		out = append(out, secs...)
	}
	return out
}
