// Package slam implements the SLAM process (paper Section 6.1): given a C
// program and a temporal safety property, iterate (1) abstraction with
// C2bp, (2) model checking with Bebop, (3) predicate discovery with
// Newton, until the property is validated or a feasible error path is
// found. The toolkit never reports spurious error paths: infeasible
// counterexamples refine the abstraction instead.
package slam

import (
	"fmt"
	"strings"
	"time"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/bp"
	"predabs/internal/cast"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/newton"
	"predabs/internal/prover"
	"predabs/internal/spec"
	tracepkg "predabs/internal/trace"
)

// Outcome classifies a verification run.
type Outcome int

// Verification outcomes.
const (
	// Verified: no abort/assert violation is reachable.
	Verified Outcome = iota
	// ErrorFound: a feasible error path exists; see Result.Trace.
	ErrorFound
	// Unknown: the refinement loop stopped without an answer (iteration
	// budget, no new predicates, or prover incompleteness).
	Unknown
)

func (o Outcome) String() string {
	switch o {
	case Verified:
		return "verified"
	case ErrorFound:
		return "error-found"
	case Unknown:
		return "unknown"
	}
	return "?"
}

// Config tunes the CEGAR loop.
type Config struct {
	// MaxIterations bounds the abstract-check-refine loop (default 10).
	MaxIterations int
	// Opts configures C2bp.
	Opts abstract.Options
	// InitialPreds seeds the predicate set (may be nil).
	InitialPreds []cparse.PredSection
	// Trace enables per-iteration logging through Logf.
	Logf func(format string, args ...any)
	// Tracer receives structured events from every pipeline stage
	// (frontend, abstraction, cube search, prover, Bebop, Newton, CEGAR
	// iterations). nil disables tracing at zero cost.
	Tracer *tracepkg.Tracer
}

// DefaultConfig returns the standard configuration.
func DefaultConfig() Config {
	return Config{MaxIterations: 10, Opts: abstract.DefaultOptions()}
}

// Result reports a verification run.
type Result struct {
	Outcome    Outcome
	Iterations int
	// Predicates used in the final round, per scope.
	Predicates map[string][]string
	// PredCount is the total number of predicates in the final round.
	PredCount int
	// ProverCalls accumulates theorem prover calls across all rounds.
	ProverCalls int
	// CacheHits accumulates prover queries answered from the memo cache
	// (optimization 5 working across CEGAR iterations).
	CacheHits int
	// SolverTime is the cumulative wall time inside the decision
	// procedures.
	SolverTime time.Duration
	// AbstractTime, CheckTime and NewtonTime are the per-stage wall
	// times accumulated across all CEGAR iterations (C2bp, Bebop, Newton
	// respectively), the paper's "C2bp dominates the cost" observation
	// made measurable.
	AbstractTime time.Duration
	CheckTime    time.Duration
	NewtonTime   time.Duration
	// CheckIterations accumulates Bebop worklist iterations across all
	// CEGAR rounds; CheckIterationsByProc splits them per procedure.
	CheckIterations       int
	CheckIterationsByProc map[string]int
	// ErrorTrace holds the C-level rendering of the feasible error path.
	ErrorTrace []string
	// BPTrace is the boolean-program trace of the error.
	BPTrace []bebop.Step
	// FinalBP is the last boolean program (diagnostics).
	FinalBP *bp.Program
}

// VerifySpec checks a temporal-safety specification against a MiniC
// program: the spec is instrumented, then the abort reachability question
// is answered by the CEGAR loop.
func VerifySpec(src, specSrc, entry string, cfg Config) (*Result, error) {
	parseSpan := cfg.Tracer.Begin("frontend", "parse")
	prog, err := cparse.Parse(src)
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("slam: parse: %w", err)
	}
	sp, err := spec.Parse(specSrc)
	if err != nil {
		return nil, fmt.Errorf("slam: spec: %w", err)
	}
	inst, err := spec.Instrument(prog, sp, entry)
	if err != nil {
		return nil, fmt.Errorf("slam: instrument: %w", err)
	}
	return VerifyProgram(inst, entry, cfg)
}

// Verify checks that no assert in the program can fail, starting from
// entry.
func Verify(src, entry string, cfg Config) (*Result, error) {
	parseSpan := cfg.Tracer.Begin("frontend", "parse")
	prog, err := cparse.Parse(src)
	parseSpan.End()
	if err != nil {
		return nil, fmt.Errorf("slam: parse: %w", err)
	}
	return VerifyProgram(prog, entry, cfg)
}

// VerifyProgram runs the CEGAR loop on a parsed program.
func VerifyProgram(prog *cast.Program, entry string, cfg Config) (*Result, error) {
	out, err := verifyProgram(prog, entry, cfg)
	if err == nil && out != nil {
		cfg.Tracer.Event("slam", "outcome",
			tracepkg.Str("outcome", out.Outcome.String()),
			tracepkg.Int("iterations", out.Iterations))
	}
	return out, err
}

func verifyProgram(prog *cast.Program, entry string, cfg Config) (*Result, error) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 10
	}
	if cfg.Opts == (abstract.Options{}) {
		cfg.Opts = abstract.DefaultOptions()
	}
	if cfg.Tracer != nil {
		cfg.Opts.Tracer = cfg.Tracer
	}
	tracer := cfg.Tracer
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	info, err := ctype.Check(prog)
	if err != nil {
		return nil, fmt.Errorf("slam: type check: %w", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		return nil, fmt.Errorf("slam: normalize: %w", err)
	}
	aliasSpan := tracer.Begin("frontend", "alias")
	aa := alias.Analyze(res)
	aliasSpan.End()
	pv := prover.New()
	pv.Trace = tracer

	// Predicate pool, per scope, in insertion order.
	pool := map[string][]string{}
	poolSeen := map[string]bool{}
	addPred := func(scope, text string) bool {
		key := scope + "\x00" + text
		if poolSeen[key] {
			return false
		}
		poolSeen[key] = true
		pool[scope] = append(pool[scope], text)
		return true
	}
	for _, sec := range cfg.InitialPreds {
		for i := range sec.Exprs {
			addPred(sec.Name, sec.Texts[i])
		}
	}

	out := &Result{Outcome: Unknown, CheckIterationsByProc: map[string]int{}}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		out.Iterations = iter
		sections := poolSections(res, pool)
		out.Predicates = map[string][]string{}
		out.PredCount = 0
		for _, sec := range sections {
			out.Predicates[sec.Name] = append([]string{}, sec.Texts...)
			out.PredCount += len(sec.Texts)
		}
		logf("slam iteration %d: %d predicates", iter, out.PredCount)
		iterSpan := tracer.Begin("slam", "iteration")
		endIter := func() {
			iterSpan.End(tracepkg.Int("n", iter), tracepkg.Int("predicates", out.PredCount))
		}

		absStart := time.Now()
		abs, err := abstract.Abstract(res, aa, pv, sections, cfg.Opts)
		out.AbstractTime += time.Since(absStart)
		if err != nil {
			return nil, fmt.Errorf("slam: abstraction (iteration %d): %w", iter, err)
		}
		out.FinalBP = abs.BP
		out.ProverCalls = pv.Calls()
		out.CacheHits = pv.CacheHits()
		out.SolverTime = pv.SolverTime()

		checkStart := time.Now()
		checker, err := bebop.CheckTraced(abs.BP, entry, tracer)
		out.CheckTime += time.Since(checkStart)
		if err != nil {
			return nil, fmt.Errorf("slam: bebop (iteration %d): %w", iter, err)
		}
		out.CheckIterations += checker.Iterations
		for p, n := range checker.IterationsByProc {
			out.CheckIterationsByProc[p] += n
		}
		failure, bad := checker.ErrorReachable()
		if !bad {
			out.Outcome = Verified
			logf("slam: verified after %d iteration(s)", iter)
			endIter()
			return out, nil
		}

		trace, ok := checker.Trace(entry, failure)
		if !ok {
			logf("slam: counterexample trace extraction failed")
			out.Outcome = Unknown
			endIter()
			return out, nil
		}
		newtonStart := time.Now()
		nres, err := newton.AnalyzeTraced(res, aa, pv, trace, tracer)
		out.NewtonTime += time.Since(newtonStart)
		if err != nil {
			return nil, fmt.Errorf("slam: newton (iteration %d): %w", iter, err)
		}
		out.ProverCalls = pv.Calls()
		out.CacheHits = pv.CacheHits()
		out.SolverTime = pv.SolverTime()
		if nres.GaveUp {
			logf("slam: newton gave up on the path condition; answer unknown")
			out.Outcome = Unknown
			endIter()
			return out, nil
		}
		if nres.Feasible {
			out.Outcome = ErrorFound
			out.BPTrace = trace
			out.ErrorTrace = nres.Events
			logf("slam: feasible error path found after %d iteration(s)", iter)
			endIter()
			return out, nil
		}

		// Refine.
		added := 0
		for scope, preds := range nres.NewPreds {
			for _, p := range preds {
				if addPred(scope, p) {
					added++
					logf("slam: new predicate [%s] %s", scope, p)
				}
			}
		}
		endIter()
		if added == 0 {
			logf("slam: no new predicates; giving up")
			out.Outcome = Unknown
			return out, nil
		}
	}
	logf("slam: iteration budget exhausted")
	return out, nil
}

// poolSections converts the predicate pool into parsed sections, dropping
// predicates that no longer parse (should not happen).
func poolSections(res *cnorm.Result, pool map[string][]string) []cparse.PredSection {
	var out []cparse.PredSection
	// Deterministic order: global first, then program function order.
	scopes := []string{abstract.GlobalScope}
	for _, f := range res.Prog.Funcs {
		scopes = append(scopes, f.Name)
	}
	for _, scope := range scopes {
		preds := pool[scope]
		if len(preds) == 0 {
			continue
		}
		src := scope + ":\n  " + strings.Join(preds, ",\n  ")
		secs, err := cparse.ParsePredFile(src)
		if err != nil {
			continue
		}
		out = append(out, secs...)
	}
	return out
}
