package slam

import (
	"fmt"
	"sort"
	"strings"

	"predabs/internal/abstract"
	"predabs/internal/bp"
	"predabs/internal/cast"
)

// Explain renders the boolean-program counterexample in Result.BPTrace as
// an annotated source-level error path: one line per executed statement
// with its C source location (filename:line) and source text, followed by
// the predicate valuations that held at that step. Boolean-program
// bookkeeping steps with no C origin (gotos, skips) are elided, as are
// compiler temporaries (names containing '$') in the valuations. Returns
// nil when the run produced no counterexample trace.
func (r *Result) Explain(filename string) []string {
	if len(r.BPTrace) == 0 {
		return nil
	}
	var out []string
	lastProc := ""
	lastVals := ""
	for _, s := range r.BPTrace {
		origin := s.BP.Origin
		branch := ""
		if bo, ok := origin.(abstract.BranchOrigin); ok {
			if bo.Then {
				branch = "   [then branch taken]"
			} else {
				branch = "   [else branch taken]"
			}
			origin = bo.Stmt
		} else if o, ok := origin.(interface{ OriginStmt() any }); ok {
			origin = o.OriginStmt()
		}
		st, _ := origin.(cast.Stmt)
		if st == nil && s.BP.Comment == "" {
			continue
		}
		if s.Proc != lastProc {
			out = append(out, fmt.Sprintf("in %s:", s.Proc))
			lastProc = s.Proc
			lastVals = ""
		}
		loc := filename
		if st != nil {
			loc = fmt.Sprintf("%s:%d", filename, st.Pos().Line)
		}
		text := s.BP.Comment
		if text == "" && st != nil {
			text = firstLine(cast.PrintStmt(st))
		}
		if text == "" {
			text = bp.StmtString(s.BP)
		}
		out = append(out, fmt.Sprintf("  %-12s %s%s", loc, text, branch))
		if vals := valuationString(s.State); vals != "" && vals != lastVals {
			out = append(out, "               "+vals)
			lastVals = vals
		}
	}
	return out
}

// firstLine compresses a multi-line statement rendering (a block, an if
// with a body) to its first line.
func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = strings.TrimSpace(s[:i]) + " ..."
	}
	return s
}

// valuationString renders a step's predicate valuations in deterministic
// order, skipping compiler temporaries.
func valuationString(state map[string]bool) string {
	if len(state) == 0 {
		return ""
	}
	names := make([]string, 0, len(state))
	for n := range state {
		if strings.Contains(n, "$") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("{%s}=%v", n, state[n])
	}
	return "[" + strings.Join(parts, " ") + "]"
}
