package slam

import (
	"fmt"
	"sort"
	"strings"

	"predabs/internal/abstract"
	"predabs/internal/bp"
	"predabs/internal/cast"
)

// Explain renders the boolean-program counterexample in Result.BPTrace as
// an annotated source-level error path: one line per executed statement
// with its C source location (filename:line) and source text, followed by
// the predicate valuations that held at that step. Boolean-program
// bookkeeping steps with no C origin (gotos, skips) are elided, as are
// compiler temporaries (names containing '$') in the valuations. Returns
// nil when the run produced no counterexample trace.
func (r *Result) Explain(filename string) []string {
	if r == nil || len(r.BPTrace) == 0 {
		return nil
	}
	var out []string
	lastProc := ""
	lastVals := ""
	for _, s := range r.BPTrace {
		origin := s.BP.Origin
		branch := ""
		if bo, ok := origin.(abstract.BranchOrigin); ok {
			if bo.Then {
				branch = "   [then branch taken]"
			} else {
				branch = "   [else branch taken]"
			}
			origin = bo.Stmt
		} else if o, ok := origin.(interface{ OriginStmt() any }); ok {
			origin = o.OriginStmt()
		}
		st, _ := origin.(cast.Stmt)
		if st == nil && s.BP.Comment == "" {
			continue
		}
		if s.Proc != lastProc {
			out = append(out, fmt.Sprintf("in %s:", s.Proc))
			lastProc = s.Proc
			lastVals = ""
		}
		loc := filename
		if st != nil {
			loc = fmt.Sprintf("%s:%d", filename, st.Pos().Line)
		}
		text := s.BP.Comment
		if text == "" && st != nil {
			text = firstLine(cast.PrintStmt(st))
		}
		if text == "" {
			text = bp.StmtString(s.BP)
		}
		out = append(out, fmt.Sprintf("  %-12s %s%s", loc, text, branch))
		if vals := valuationString(s.State); vals != "" && vals != lastVals {
			out = append(out, "               "+vals)
			lastVals = vals
		}
	}
	return out
}

// ExplainUnknown renders an inconclusive run's partial results: why the
// loop stopped (the first resource limit hit, or a refinement dead end),
// every sound degradation taken along the way, the predicate set tried,
// and the labelled invariants of the last abstraction — which remain
// sound for that predicate set even though the property stayed open.
// Returns nil for conclusive runs.
func (r *Result) ExplainUnknown() []string {
	if r == nil || r.Outcome != Unknown {
		return nil
	}
	var out []string
	switch {
	// A run can go Unknown before its first iteration finishes (a tight
	// -timeout, a stage error): there is no partial state to explain, so
	// say that instead of "after 0 iteration(s)".
	case r.Iterations == 0 && r.LimitName != "":
		out = append(out, fmt.Sprintf("no iterations completed (stopped by limit %q in stage %q)",
			r.LimitName, r.LimitStage))
	case r.Iterations == 0:
		out = append(out, "no iterations completed")
	case r.LimitName != "":
		out = append(out, fmt.Sprintf("stopped by limit %q in stage %q after %d iteration(s)",
			r.LimitName, r.LimitStage, r.Iterations))
	default:
		out = append(out, fmt.Sprintf("refinement dead end after %d iteration(s) (no new predicates or no usable trace)",
			r.Iterations))
	}
	for _, d := range r.Degradations {
		line := fmt.Sprintf("degraded: stage %-8s limit %-14s %s", d.Stage, d.Limit, d.Detail)
		if d.Count > 1 {
			line += fmt.Sprintf(" (x%d)", d.Count)
		}
		out = append(out, line)
	}
	if r.PredCount > 0 {
		out = append(out, fmt.Sprintf("predicates tried (%d):", r.PredCount))
		scopes := make([]string, 0, len(r.Predicates))
		for s := range r.Predicates {
			scopes = append(scopes, s)
		}
		sort.Strings(scopes)
		for _, s := range scopes {
			out = append(out, fmt.Sprintf("  %s: %s", s, strings.Join(r.Predicates[s], ", ")))
		}
	}
	if len(r.PartialInvariants) > 0 {
		out = append(out, "partial invariants (sound for the predicates above):")
		for _, inv := range r.PartialInvariants {
			out = append(out, "  "+inv)
		}
	}
	return out
}

// firstLine compresses a multi-line statement rendering (a block, an if
// with a body) to its first line.
func firstLine(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = strings.TrimSpace(s[:i]) + " ..."
	}
	return s
}

// valuationString renders a step's predicate valuations in deterministic
// order, skipping compiler temporaries.
func valuationString(state map[string]bool) string {
	if len(state) == 0 {
		return ""
	}
	names := make([]string, 0, len(state))
	for n := range state {
		if strings.Contains(n, "$") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("{%s}=%v", n, state[n])
	}
	return "[" + strings.Join(parts, " ") + "]"
}
