package slam

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"predabs/internal/checkpoint"
)

// ckptCorrelatedSrc needs CEGAR refinement (≥2 iterations), so an
// interrupted run has a committed checkpoint to resume from.
const ckptCorrelatedSrc = `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(int x) {
  if (x == 0) {
    AcquireLock();
  }
  if (x == 0) {
    ReleaseLock();
  }
}
`

func ckptKey() checkpoint.CompatKey {
	return checkpoint.CompatKey{
		Tool: "slam-test", Version: "test", Program: ckptCorrelatedSrc,
		Spec: lockSpec, Entry: "main",
	}
}

// sameDeterministicResult compares every field the byte-identical-resume
// guarantee covers (wall times and FinalBP pointers excluded).
func sameDeterministicResult(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Outcome != want.Outcome {
		t.Errorf("Outcome = %s, want %s", got.Outcome, want.Outcome)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("Iterations = %d, want %d", got.Iterations, want.Iterations)
	}
	if got.PredCount != want.PredCount {
		t.Errorf("PredCount = %d, want %d", got.PredCount, want.PredCount)
	}
	if !reflect.DeepEqual(got.Predicates, want.Predicates) {
		t.Errorf("Predicates = %v, want %v", got.Predicates, want.Predicates)
	}
	if got.ProverCalls != want.ProverCalls {
		t.Errorf("ProverCalls = %d, want %d", got.ProverCalls, want.ProverCalls)
	}
	if got.CacheHits != want.CacheHits {
		t.Errorf("CacheHits = %d, want %d", got.CacheHits, want.CacheHits)
	}
	if got.CheckIterations != want.CheckIterations {
		t.Errorf("CheckIterations = %d, want %d", got.CheckIterations, want.CheckIterations)
	}
}

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	// Reference: one uninterrupted run, no checkpointing.
	cfg := DefaultConfig()
	want, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want.Outcome != Verified || want.Iterations < 2 {
		t.Fatalf("reference run: outcome %s after %d iterations, need Verified after ≥2",
			want.Outcome, want.Iterations)
	}

	// Interrupted run: the iteration budget stops the loop after the
	// first (refining) iteration — from the journal's point of view,
	// indistinguishable from a crash after commit 1.
	dir := t.TempDir()
	m1, err := checkpoint.Create(dir, ckptKey())
	if err != nil {
		t.Fatal(err)
	}
	cut := cfg
	cut.MaxIterations = 1
	cut.Checkpoint = m1
	partial, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", cut)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if partial.Outcome != Unknown {
		t.Fatalf("interrupted run: outcome %s, want unknown (iteration budget)", partial.Outcome)
	}
	if m1.Commits() == 0 {
		t.Fatal("interrupted run committed nothing — no refinement happened?")
	}

	// Resume with the full budget: must reproduce the reference run.
	m2, err := checkpoint.Open(dir, ckptKey(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	snap := m2.Snapshot()
	if snap == nil || snap.Iter != 1 {
		t.Fatalf("snapshot = %+v, want iteration 1", snap)
	}
	if len(snap.Cache) == 0 {
		t.Fatal("no prover verdicts journaled")
	}
	res := cfg
	res.Checkpoint = m2
	got, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", res)
	if err != nil {
		t.Fatal(err)
	}
	sameDeterministicResult(t, got, want)
}

func TestCheckpointResumeCompletedRun(t *testing.T) {
	cfg := DefaultConfig()
	dir := t.TempDir()
	key := ckptKey()
	m1, err := checkpoint.Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := cfg
	cfg1.Checkpoint = m1
	want, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", cfg1)
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	// Re-running a completed run replays the last refinement and lands
	// on the same verdict.
	m2, err := checkpoint.Open(dir, key, false)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if snap := m2.Snapshot(); snap == nil || snap.Outcome != "verified" {
		t.Fatalf("snapshot = %+v, want recorded verified outcome", snap)
	}
	cfg2 := cfg
	cfg2.Checkpoint = m2
	got, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	sameDeterministicResult(t, got, want)
}

func TestCheckpointReadOnlyResume(t *testing.T) {
	cfg := DefaultConfig()
	dir := t.TempDir()
	key := ckptKey()
	m1, err := checkpoint.Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	cut := cfg
	cut.MaxIterations = 1
	cut.Checkpoint = m1
	if _, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", cut); err != nil {
		t.Fatal(err)
	}
	m1.Close()
	path := filepath.Join(dir, checkpoint.JournalName)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// -no-persist: warm-start from the journal but never write to it.
	ro, err := checkpoint.Open(dir, key, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	cfg2 := cfg
	cfg2.Checkpoint = ro
	got, err := VerifySpec(ckptCorrelatedSrc, lockSpec, "main", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Outcome != Verified {
		t.Errorf("read-only resume: outcome %s, want verified", got.Outcome)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("read-only resume modified the journal")
	}
}
