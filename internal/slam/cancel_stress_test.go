package slam

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"predabs/internal/faultinject"
	"predabs/internal/prover"
)

// TestConcurrentCancellationNoGoroutineLeak cancels full pipeline runs at
// staggered points — including mid-cube-search with an 8-wide worker pool
// and artificially slowed prover queries — and checks that every run
// returns a sound verdict and that no worker goroutine outlives its run.
// Designed to be run under -race (the Makefile's leakcheck target).
func TestConcurrentCancellationNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	for i := 0; i < 12; i++ {
		i := i
		t.Run(fmt.Sprintf("cancel-%02d", i), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()

			cfg := DefaultConfig()
			cfg.Opts.Jobs = 8
			// Slow every prover query so the staggered cancel points below
			// land inside the parallel cube search, not before or after it.
			cfg.Prover = faultinject.New(prover.New(), faultinject.Config{
				Seed:        int64(i),
				LatencyRate: 1,
				Latency:     200 * time.Microsecond,
			})

			done := make(chan struct{})
			go func() {
				defer close(done)
				// Stagger the cancellation point across iterations: from
				// before the first query to well inside the cube search.
				time.Sleep(time.Duration(i) * 300 * time.Microsecond)
				cancel()
			}()

			res, err := VerifySpecCtx(ctx, correlatedSrc, lockSpec, "main", cfg)
			<-done
			if err != nil {
				t.Fatalf("cancelled run errored: %v", err)
			}
			// A cancelled run may still finish with a genuine verdict if it
			// beat the cancel, but it must never claim Verified after being
			// degraded by the deadline.
			if res.Outcome == Verified && res.LimitName != "" {
				t.Fatalf("Verified claimed despite hitting limit %q in stage %q",
					res.LimitName, res.LimitStage)
			}
			if res.Outcome == Unknown && res.LimitName == "" && res.Iterations < cfg.MaxIterations {
				t.Fatalf("Unknown without a limit after %d iterations:\n%s",
					res.Iterations, strings.Join(res.ExplainUnknown(), "\n"))
			}
		})
	}

	// Every cube worker exits when its round drains, cancelled or not; give
	// the scheduler a moment, then compare against the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d live, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedReportDeterministic pins the partial-report determinism
// guarantee: with a fixed fault-injection seed the degraded run's entire
// observable report — outcome, limit attribution, degradation log,
// partial invariants — is byte-identical across repeated runs and across
// worker counts, because every sound weakening is keyed on query content
// and budgets are spent on the canonical candidate order, never on
// scheduling.
func TestDegradedReportDeterministic(t *testing.T) {
	report := func(jobs int) string {
		cfg := DefaultConfig()
		cfg.MaxIterations = 3
		cfg.Opts.Jobs = jobs
		cfg.Limits.CubeBudget = 5
		cfg.Prover = faultinject.New(prover.New(), faultinject.Config{
			Seed:        42,
			TimeoutRate: 0.3,
		})
		res, err := VerifySpec(correlatedSrc, lockSpec, "main", cfg)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "outcome: %s\n", res.Outcome)
		fmt.Fprintf(&b, "limit: %s/%s\n", res.LimitStage, res.LimitName)
		for _, d := range res.Degradations {
			fmt.Fprintf(&b, "degraded: %s %s %s x%d\n", d.Stage, d.Limit, d.Detail, d.Count)
		}
		for _, line := range res.ErrorTrace {
			fmt.Fprintf(&b, "trace: %s\n", line)
		}
		for _, line := range res.ExplainUnknown() {
			fmt.Fprintf(&b, "explain: %s\n", line)
		}
		return b.String()
	}

	first := report(1)
	if !strings.Contains(first, "degraded:") {
		t.Fatalf("run did not degrade; nothing to pin:\n%s", first)
	}
	for run := 0; run < 3; run++ {
		if got := report(8); got != first {
			t.Fatalf("degraded report differs (run %d, j=8):\n--- j=1\n%s\n--- j=8\n%s",
				run, first, got)
		}
	}
}
