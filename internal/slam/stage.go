package slam

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// StageError attributes a pipeline failure to the stage that produced it
// (frontend, abstract, bebop, newton). A panicking stage is converted into
// a StageError with Panicked set and the (trimmed) stack in the message,
// so a crash inside one stage surfaces as a diagnosable error instead of
// taking the whole process down.
type StageError struct {
	// Stage is the pipeline stage name: "frontend", "abstract", "bebop"
	// or "newton".
	Stage string
	// Panicked reports that the stage crashed (the wrapped error carries
	// the panic value and stack) rather than returning an error.
	Panicked bool
	// Err is the underlying failure.
	Err error
}

func (e *StageError) Error() string {
	if e.Panicked {
		return fmt.Sprintf("stage %s panicked: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("stage %s: %v", e.Stage, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// maxStackLines bounds the stack rendering inside a recovered panic; the
// top frames carry the crash site, the rest is scheduler noise.
const maxStackLines = 16

// runStage runs one pipeline stage, converting both returned errors and
// panics into *StageError. Recovery happens at the stage boundary only:
// the stage's partial side effects (e.g. statistics already accumulated)
// remain visible, which is fine because a failed stage aborts the run.
func runStage(stage string, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &StageError{
				Stage:    stage,
				Panicked: true,
				Err:      fmt.Errorf("%v\n%s", p, trimStack(debug.Stack())),
			}
		}
	}()
	if err := fn(); err != nil {
		return &StageError{Stage: stage, Err: err}
	}
	return nil
}

// trimStack keeps the first maxStackLines lines of a panic stack.
func trimStack(stack []byte) string {
	lines := strings.Split(strings.TrimSpace(string(stack)), "\n")
	if len(lines) > maxStackLines {
		lines = append(lines[:maxStackLines], "\t...")
	}
	return strings.Join(lines, "\n")
}
