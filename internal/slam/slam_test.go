package slam

import (
	"testing"
)

const lockSpec = `
state {
  int locked = 0;
}

event AcquireLock entry {
  if (locked == 1) { abort; }
  locked = 1;
}

event ReleaseLock entry {
  if (locked == 0) { abort; }
  locked = 0;
}
`

func logTo(t *testing.T) func(string, ...any) {
	return func(format string, args ...any) { t.Logf(format, args...) }
}

func TestLockStraightLineVerified(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(void) {
  AcquireLock();
  ReleaseLock();
  AcquireLock();
  ReleaseLock();
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations (preds: %v)", res.Outcome, res.Iterations, res.Predicates)
	}
}

func TestLockDoubleAcquireError(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(void) {
  AcquireLock();
  AcquireLock();
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ErrorFound {
		t.Fatalf("outcome %s, want error-found", res.Outcome)
	}
	if len(res.ErrorTrace) == 0 {
		t.Error("error trace missing")
	}
}

func TestLockReleaseWithoutAcquireError(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(void) {
  ReleaseLock();
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ErrorFound {
		t.Fatalf("outcome %s, want error-found", res.Outcome)
	}
}

// The classic SLAM motivating example: correlated branches guarded by the
// same condition. Data predicates (x == 0 and the lock state) must be
// discovered automatically by Newton.
func TestLockCorrelatedBranchesVerified(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(int x) {
  if (x == 0) {
    AcquireLock();
  }
  if (x == 0) {
    ReleaseLock();
  }
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations (preds: %v)", res.Outcome, res.Iterations, res.Predicates)
	}
	if res.Iterations < 2 {
		t.Errorf("expected CEGAR refinement, verified in %d iteration(s)", res.Iterations)
	}
}

func TestLockMismatchedBranchesError(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(int x) {
  if (x == 0) {
    AcquireLock();
  }
  if (x == 1) {
    ReleaseLock();
  }
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// x == 1 releases without acquiring: real error.
	if res.Outcome != ErrorFound {
		t.Fatalf("outcome %s, want error-found", res.Outcome)
	}
}

// Lock usage in a loop, the pattern the paper highlights for NT drivers
// ("it has converged on all NT device drivers we have analyzed (even
// though they contain loops)").
func TestLockLoopVerified(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void main(int n) {
  while (n > 0) {
    AcquireLock();
    ReleaseLock();
    n = n - 1;
  }
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations", res.Outcome, res.Iterations)
	}
}

func TestAssertDirectVerify(t *testing.T) {
	src := `
void main(int x) {
  int y;
  y = 1;
  if (x > 0) {
    y = 2;
  }
  assert(y > 0);
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := Verify(src, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations (preds %v)", res.Outcome, res.Iterations, res.Predicates)
	}
}

func TestAssertDirectError(t *testing.T) {
	src := `
void main(int x) {
  int y;
  y = 0;
  if (x > 0) {
    y = 1;
  }
  assert(y == 1);
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := Verify(src, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != ErrorFound {
		t.Fatalf("outcome %s, want error-found", res.Outcome)
	}
}

// Interprocedural lock discipline: the helper acquires, the caller
// releases; the correlation flows through the call.
func TestLockInterproceduralVerified(t *testing.T) {
	src := `
void AcquireLock(void) { }
void ReleaseLock(void) { }

void helper(void) {
  AcquireLock();
}

void main(void) {
  helper();
  ReleaseLock();
}
`
	cfg := DefaultConfig()
	cfg.Logf = logTo(t)
	res, err := VerifySpec(src, lockSpec, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Verified {
		t.Fatalf("outcome %s after %d iterations (preds %v)", res.Outcome, res.Iterations, res.Predicates)
	}
}
