package metrics

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestPromExpositionGolden pins the Prometheus text output byte for
// byte: family ordering (sorted by name regardless of registration
// order), HELP/TYPE lines, histogram bucket layout and float rendering.
// Any change to the exposition layout must update this golden on
// purpose.
func TestPromExpositionGolden(t *testing.T) {
	r := New()
	// Register deliberately out of name order: exposition must sort.
	g := r.Gauge("predabsd_queue_depth", "Jobs waiting in the admission queue.")
	c := r.Counter("predabsd_jobs_submitted_total", "Jobs admitted.")
	h := r.Histogram("predabsd_backoff_sleep_seconds", "Backoff sleeps between attempts.",
		[]float64{0.25, 0.5, 1})
	r.GaugeFunc("predabsd_uptime_seconds", "Seconds since daemon start.", func() int64 { return 17 })

	c.Add(3)
	c.Inc()
	g.Set(2)
	h.Observe(0.125)
	h.Observe(0.5)
	h.Observe(4)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP predabsd_backoff_sleep_seconds Backoff sleeps between attempts.
# TYPE predabsd_backoff_sleep_seconds histogram
predabsd_backoff_sleep_seconds_bucket{le="0.25"} 1
predabsd_backoff_sleep_seconds_bucket{le="0.5"} 2
predabsd_backoff_sleep_seconds_bucket{le="1"} 2
predabsd_backoff_sleep_seconds_bucket{le="+Inf"} 3
predabsd_backoff_sleep_seconds_sum 4.625
predabsd_backoff_sleep_seconds_count 3
# HELP predabsd_jobs_submitted_total Jobs admitted.
# TYPE predabsd_jobs_submitted_total counter
predabsd_jobs_submitted_total 4
# HELP predabsd_queue_depth Jobs waiting in the admission queue.
# TYPE predabsd_queue_depth gauge
predabsd_queue_depth 2
# HELP predabsd_uptime_seconds Seconds since daemon start.
# TYPE predabsd_uptime_seconds gauge
predabsd_uptime_seconds 17
`
	if got := buf.String(); got != want {
		t.Errorf("exposition diverges from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A second scrape of unchanged state is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteText(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != want {
		t.Error("second scrape of unchanged state is not byte-identical")
	}
}

// TestRegistryGetOrCreate checks that re-registration returns the same
// instrument and that a kind clash panics instead of silently aliasing.
func TestRegistryGetOrCreate(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters diverge")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestRegistryConcurrentStress hammers one registry from many
// goroutines — counters, gauges, histograms, registration and scrapes
// all racing — and checks the final counts. Run under -race by the
// metrics-lint gate.
func TestRegistryConcurrentStress(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Registration races: every worker re-registers the same
			// families and must observe the same instruments.
			c := r.Counter("stress_total", "stress")
			g := r.Gauge("stress_gauge", "stress")
			h := r.Histogram("stress_seconds", "stress", DurationBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%7) * 0.01)
				if i%100 == 0 {
					if err := r.WriteText(io.Discard); err != nil {
						t.Error(err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("stress_total", "stress").Value(); got != workers*perWorker {
		t.Errorf("counter after stress: %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("stress_gauge", "stress").Value(); got != 0 {
		t.Errorf("gauge after balanced adds: %d, want 0", got)
	}
	if got := r.Histogram("stress_seconds", "stress", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count after stress: %d, want %d", got, workers*perWorker)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stress_total 16000") {
		t.Errorf("final exposition missing the stress counter:\n%s", buf.String())
	}
}

// TestDisabledMetricsZeroAlloc mirrors trace's TestNilTracerZeroAlloc:
// every operation on a disabled (nil) registry and the nil instruments
// it hands out must allocate nothing, so the daemon can thread metrics
// unconditionally through admission, backoff and supervision.
func TestDisabledMetricsZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("predabsd_jobs_submitted_total", "disabled")
	g := r.Gauge("predabsd_queue_depth", "disabled")
	h := r.Histogram("predabsd_backoff_sleep_seconds", "disabled", DurationBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	cases := map[string]func(){
		"Counter.Inc/Add":   func() { c.Inc(); c.Add(3) },
		"Gauge.Set/Inc/Dec": func() { g.Set(7); g.Inc(); g.Dec() },
		"Histogram.Observe": func() { h.Observe(0.25) },
		"Registry.Counter":  func() { r.Counter("x_total", "x") },
		"Registry.GaugeFunc": func() {
			r.GaugeFunc("y", "y", func() int64 { return 0 })
		},
		"WriteText": func() { r.WriteText(io.Discard) },
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s on disabled metrics: %.1f allocs/op, want 0", name, n)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := New().Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", "bench", DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkDisabledCounterInc(b *testing.B) {
	var reg *Registry
	c := reg.Counter("bench_total", "bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkWriteText(b *testing.B) {
	reg := New()
	for i := 0; i < 20; i++ {
		reg.Counter(fmt.Sprintf("bench_%02d_total", i), "bench").Add(int64(i))
	}
	reg.Histogram("bench_seconds", "bench", DurationBuckets).Observe(0.042)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.WriteText(io.Discard)
	}
}

func TestLabeledExpositionGolden(t *testing.T) {
	reg := New()
	up := reg.GaugeVec("fleet_backend_up", "Backend readiness.", "backend")
	up.With("http://b:1").Set(1)
	up.With("http://a:1").Set(0)
	disp := reg.CounterVec("fleet_dispatches_total", "Dispatches per backend.", "backend")
	disp.With(`odd"quote\and
newline`).Add(3)
	// Same name + label returns the same series; a scrape renders label
	// values sorted and escaped.
	if got := reg.CounterVec("fleet_dispatches_total", "x", "backend"); got != disp {
		t.Fatal("re-registration did not return the existing vec")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP fleet_backend_up Backend readiness.
# TYPE fleet_backend_up gauge
fleet_backend_up{backend="http://a:1"} 0
fleet_backend_up{backend="http://b:1"} 1
# HELP fleet_dispatches_total Dispatches per backend.
# TYPE fleet_dispatches_total counter
fleet_dispatches_total{backend="odd\"quote\\and\nnewline"} 3
`
	if buf.String() != want {
		t.Fatalf("labeled exposition mismatch:\n got: %q\nwant: %q", buf.String(), want)
	}
}

func TestLabeledNilSafety(t *testing.T) {
	var reg *Registry
	cv := reg.CounterVec("x_total", "x", "l")
	gv := reg.GaugeVec("x_up", "x", "l")
	if cv != nil || gv != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
	cv.With("a").Inc() // must not panic
	gv.With("a").Set(7)
	if cv.With("a").Value() != 0 || gv.With("a").Value() != 0 {
		t.Fatal("nil vec instruments must read zero")
	}
}

func TestLabeledKindMismatchPanics(t *testing.T) {
	reg := New()
	reg.Counter("plain_total", "x")
	for name, fn := range map[string]func(){
		"vec over plain": func() { reg.CounterVec("plain_total", "x", "l") },
		"plain over vec": func() { reg.CounterVec("vec_total", "x", "l"); reg.Counter("vec_total", "x") },
		"label mismatch": func() { reg.GaugeVec("g_up", "x", "l"); reg.GaugeVec("g_up", "x", "other") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected a panic", name)
				}
			}()
			fn()
		}()
	}
}
