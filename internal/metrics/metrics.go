// Package metrics is a dependency-free, race-safe metrics registry for
// the predabs daemons: monotonic counters, gauges (direct or callback),
// fixed-bucket histograms, and single-label counter/gauge families
// (CounterVec/GaugeVec — the fleet frontend's per-backend series),
// exposed in the Prometheus text format with byte-deterministic family
// ordering (families sort by name and labeled series by label value, so
// two scrapes of the same state render identically).
//
// A nil *Registry is the valid "disabled" registry, mirroring the nil
// *trace.Tracer contract: every method — including the instruments it
// hands out, which are then nil — is nil-safe, returns immediately, and
// allocates nothing (guarded by TestDisabledMetricsZeroAlloc). Server
// code therefore threads instruments unconditionally through its hot
// paths (admission, backoff, attempt supervision) without branching on
// whether metrics are on.
//
// All methods on non-nil instruments are safe for concurrent use; a
// scrape (WriteText) may race arbitrarily many writers and observes
// each instrument atomically.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. A nil *Counter (from a
// nil Registry) no-ops at zero cost.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n; negative n is ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil *Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order (an implicit +Inf bucket is always appended), fixed at
// registration so the exposition layout is deterministic for the life of
// the process. A nil *Histogram no-ops.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec is a counter family keyed by one label: every With(value)
// returns the counter for that label value, creating it on first use.
// The fleet frontend uses it for per-backend counters — one family, one
// series per backend URL. A nil *CounterVec (from a nil Registry) hands
// out nil *Counters, which no-op at zero cost.
type CounterVec struct {
	mu     sync.Mutex
	series map[string]*Counter
}

// With returns the counter for the given label value.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.series[value]
	if !ok {
		c = &Counter{}
		v.series[value] = c
	}
	return c
}

// GaugeVec is a gauge family keyed by one label; see CounterVec.
type GaugeVec struct {
	mu     sync.Mutex
	series map[string]*Gauge
}

// With returns the gauge for the given label value.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.series[value]
	if !ok {
		g = &Gauge{}
		v.series[value] = g
	}
	return g
}

// snapshot returns the label values (sorted, so the exposition is
// byte-deterministic) and their instruments.
func (v *CounterVec) snapshot() ([]string, map[string]*Counter) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.series))
	out := make(map[string]*Counter, len(v.series))
	for val, c := range v.series {
		vals = append(vals, val)
		out[val] = c
	}
	sort.Strings(vals)
	return vals, out
}

func (v *GaugeVec) snapshot() ([]string, map[string]*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.series))
	out := make(map[string]*Gauge, len(v.series))
	for val, g := range v.series {
		vals = append(vals, val)
		out[val] = g
	}
	sort.Strings(vals)
	return vals, out
}

// DurationBuckets are the default latency buckets in seconds: fixed and
// deterministic (1ms to 60s, roughly 1-2.5-5 per decade), shared by
// every duration histogram so dashboards line up across metrics.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// family kinds.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// family is one registered metric family. Labeled families (cv/gv set)
// carry the label key and render one line per label value; exactly one
// of the instrument fields is non-nil.
type family struct {
	name, help, kind string
	label            string // labeled families only
	c                *Counter
	g                *Gauge
	gf               func() int64 // callback gauge; g is nil
	h                *Histogram
	cv               *CounterVec
	gv               *GaugeVec
}

// Registry holds metric families. The zero value is not useful; use New.
// A nil *Registry is the disabled registry: registration returns nil
// instruments and WriteText writes nothing.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register looks name up, creating it via mk on first use. A name reused
// with a different kind is a programming error and panics.
func (r *Registry) register(name, help, kind string, mk func() *family) *family {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
		}
		return f
	}
	f := mk()
	f.name, f.help, f.kind = name, help, kind
	r.fams[name] = f
	return f
}

// Counter returns the counter named name, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindCounter, func() *family {
		return &family{c: &Counter{}}
	})
	if f.c == nil {
		panic(fmt.Sprintf("metrics: %s registered as a labeled counter", name))
	}
	return f.c
}

// CounterVec returns the labeled counter family named name with the
// given label key, registering it on first use. A name registered as a
// plain counter cannot be reused labeled (and vice versa).
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	checkName(label)
	f := r.register(name, help, kindCounter, func() *family {
		return &family{label: label, cv: &CounterVec{series: map[string]*Counter{}}}
	})
	if f.cv == nil {
		panic(fmt.Sprintf("metrics: %s registered as an unlabeled counter", name))
	}
	if f.label != label {
		panic(fmt.Sprintf("metrics: %s registered with label %q, requested with %q", name, f.label, label))
	}
	return f.cv
}

// GaugeVec returns the labeled gauge family named name with the given
// label key, registering it on first use; see CounterVec.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	if r == nil {
		return nil
	}
	checkName(label)
	f := r.register(name, help, kindGauge, func() *family {
		return &family{label: label, gv: &GaugeVec{series: map[string]*Gauge{}}}
	})
	if f.gv == nil {
		panic(fmt.Sprintf("metrics: %s registered as an unlabeled gauge", name))
	}
	if f.label != label {
		panic(fmt.Sprintf("metrics: %s registered with label %q, requested with %q", name, f.label, label))
	}
	return f.gv
}

// Gauge returns the gauge named name, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.register(name, help, kindGauge, func() *family {
		return &family{g: &Gauge{}}
	})
	if f.g == nil {
		panic(fmt.Sprintf("metrics: %s registered as a callback gauge", name))
	}
	return f.g
}

// GaugeFunc registers a callback gauge: fn is invoked at each scrape.
// fn must be safe for concurrent use and must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, func() *family {
		return &family{gf: fn}
	})
}

// Histogram returns the histogram named name with the given bucket upper
// bounds (ascending; +Inf is implicit), registering it on first use.
// Later calls ignore their bounds argument and return the first
// registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHist, func() *family {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: %s: bucket bounds not ascending", name))
			}
		}
		return &family{h: &Histogram{
			bounds: append([]float64{}, bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}}
	}).h
}

// WriteText renders every family in the Prometheus text exposition
// format (version 0.0.4). Families render sorted by name and each
// family's lines in a fixed order, so the output layout is
// byte-deterministic for a given set of values.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	b := make([]byte, 0, 256)
	for _, f := range fams {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, escapeHelp(f.help)...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.kind...)
		b = append(b, '\n')
		switch {
		case f.c != nil:
			b = append(b, f.name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, f.c.Value(), 10)
			b = append(b, '\n')
		case f.g != nil || f.gf != nil:
			v := f.gf
			if v == nil {
				v = f.g.Value
			}
			b = append(b, f.name...)
			b = append(b, ' ')
			b = strconv.AppendInt(b, v(), 10)
			b = append(b, '\n')
		case f.h != nil:
			b = appendHistogram(b, f.name, f.h)
		case f.cv != nil:
			vals, series := f.cv.snapshot()
			for _, val := range vals {
				b = appendLabeled(b, f.name, f.label, val, series[val].Value())
			}
		case f.gv != nil:
			vals, series := f.gv.snapshot()
			for _, val := range vals {
				b = appendLabeled(b, f.name, f.label, val, series[val].Value())
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// appendHistogram renders the cumulative _bucket series, _sum and
// _count. Bucket counts are read once into a snapshot so the cumulative
// sums are internally consistent even while writers race the scrape.
func appendHistogram(b []byte, name string, h *Histogram) []byte {
	snap := make([]int64, len(h.counts))
	for i := range h.counts {
		snap[i] = h.counts[i].Load()
	}
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += snap[i]
		b = append(b, name...)
		b = append(b, `_bucket{le="`...)
		b = appendFloat(b, bound)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
	}
	cum += snap[len(snap)-1]
	b = append(b, name...)
	b = append(b, `_bucket{le="+Inf"} `...)
	b = strconv.AppendInt(b, cum, 10)
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_sum "...)
	b = appendFloat(b, math.Float64frombits(h.sum.Load()))
	b = append(b, '\n')
	b = append(b, name...)
	b = append(b, "_count "...)
	b = strconv.AppendInt(b, cum, 10)
	return append(b, '\n')
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendLabeled renders one labeled series line: name{label="value"} v.
func appendLabeled(b []byte, name, label, value string, v int64) []byte {
	b = append(b, name...)
	b = append(b, '{')
	b = append(b, label...)
	b = append(b, `="`...)
	b = append(b, escapeLabelValue(value)...)
	b = append(b, `"} `...)
	b = strconv.AppendInt(b, v, 10)
	return append(b, '\n')
}

// escapeLabelValue escapes backslashes, double quotes and newlines per
// the exposition format's label-value rules.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// checkName rejects metric names outside [a-zA-Z_:][a-zA-Z0-9_:]*; an
// invalid name is a programming error, caught at registration.
func checkName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
}
