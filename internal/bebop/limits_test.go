package bebop

import (
	"context"
	"testing"

	"predabs/internal/bp"
	"predabs/internal/budget"
)

// loopy is a boolean program whose fixpoint takes many worklist items:
// three variables cycled through a loop.
const loopy = `
void main() begin
  decl a, b, c;
  a := *;
  b := *;
  c := *;
 L:
  skip;
  a := b;
  b := c;
  c := !a;
  assert(a | b | c);
  goto L;
end`

func TestBDDNodeCeilingDegrades(t *testing.T) {
	prog, err := bp.Parse(loopy)
	if err != nil {
		t.Fatal(err)
	}
	bt := budget.New(context.Background(), budget.Limits{BDDMaxNodes: 1}, nil)
	c, err := CheckLimited(prog, "main", nil, Limits{Budget: bt, MaxBDDNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Degraded || c.DegradeReason != budget.LimitBDDNodes {
		t.Fatalf("Degraded=%v reason=%q, want bdd-max-nodes", c.Degraded, c.DegradeReason)
	}
	ev, ok := bt.First()
	if !ok || ev.Stage != "bebop" || ev.Limit != budget.LimitBDDNodes {
		t.Fatalf("degradation log: %+v %v", ev, ok)
	}
	// A degraded, failure-free check proves nothing — the caller must map
	// it to Unknown; here we just confirm the truncation kept whatever
	// failures it had found (possibly none) and terminated.
}

func TestCancelledContextStopsFixpoint(t *testing.T) {
	prog, err := bp.Parse(loopy)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bt := budget.New(ctx, budget.Limits{}, nil)
	c, err := CheckLimited(prog, "main", nil, Limits{Budget: bt})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Degraded || c.DegradeReason != budget.LimitDeadline {
		t.Fatalf("Degraded=%v reason=%q, want deadline", c.Degraded, c.DegradeReason)
	}
	if c.Iterations != 0 {
		t.Fatalf("pre-cancelled run still ran %d iterations", c.Iterations)
	}
}

func TestZeroLimitsUnchanged(t *testing.T) {
	prog, err := bp.Parse(loopy)
	if err != nil {
		t.Fatal(err)
	}
	c, err := CheckLimited(prog, "main", nil, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Degraded {
		t.Fatal("unlimited run degraded")
	}
	if c.Iterations == 0 {
		t.Fatal("fixpoint did not run")
	}
}
