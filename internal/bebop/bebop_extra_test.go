package bebop

import (
	"testing"

	"predabs/internal/bp"
)

func TestMutualRecursion(t *testing.T) {
	// isEven/isOdd via mutual recursion over a boolean countdown chain:
	// reachability with summaries must terminate and be exact.
	c := check(t, `
decl g;

bool isEven(more) begin
  decl r;
  if (more) then
    r := isOdd(*);
  else
    r := true;
  fi
  return r;
end

bool isOdd(more) begin
  decl r;
  if (more) then
    r := isEven(*);
  else
    r := false;
  fi
  return r;
end

void main() begin
  decl v;
  v := isEven(false);
  assert(v);
  v := isOdd(false);
  assert(!v);
  return;
end`, "main")
	if f, bad := c.ErrorReachable(); bad {
		t.Fatalf("mutual recursion broken: %+v", f)
	}
}

// Regression: on a recursive self-call the callee's parameter binding
// must not be constrained against the caller's own entry columns —
// rec(false) recursing into rec(true) must reach the assert.
func TestRecursiveCallWithChangedParameter(t *testing.T) {
	c := check(t, `
void rec(x) begin
  if (x) then
    assert(false);
  else
    rec(true);
  fi
  return;
end

void main() begin
  rec(false);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); !bad {
		t.Fatal("assert is reachable through the recursive call with x=true")
	}
	// And the trace must descend twice into rec.
	f, _ := c.ErrorReachable()
	trace, ok := c.Trace("main", f)
	if !ok {
		t.Fatal("no trace")
	}
	recEntries := 0
	for _, s := range trace {
		if s.Proc == "rec" && s.Stmt == 0 {
			recEntries++
		}
	}
	if recEntries < 2 {
		t.Fatalf("trace should enter rec twice, got %d", recEntries)
	}
}

func TestSummaryContextSensitivity(t *testing.T) {
	// The same callee invoked with different arguments must not conflate
	// contexts: summaries relate inputs to outputs relationally.
	c := check(t, `
bool id(x) begin
  return x;
end

void main() begin
  decl a, b;
  a := id(true);
  b := id(false);
  assert(a);
  assert(!b);
  return;
end`, "main")
	if f, bad := c.ErrorReachable(); bad {
		t.Fatalf("summary conflated contexts: %+v", f)
	}
}

func TestCalleeSeesCallerGlobals(t *testing.T) {
	c := check(t, `
decl g;

void expectTrue() begin
  assert(g);
  return;
end

void main() begin
  g := true;
  expectTrue();
  g := false;
  skip;
  return;
end`, "main")
	if f, bad := c.ErrorReachable(); bad {
		t.Fatalf("callee saw wrong global: %+v", f)
	}
}

func TestCalleeEnforceFiltersEntry(t *testing.T) {
	// The callee's enforce invariant must filter its nondeterministic
	// local initialization.
	c := check(t, `
void callee(p) begin
  decl a, b;
  enforce !(a & b);
  assert(!(a & b));
  return;
end

void main() begin
  callee(true);
  return;
end`, "main")
	if f, bad := c.ErrorReachable(); bad {
		t.Fatalf("callee enforce not applied at entry: %+v", f)
	}
}

func TestVoidCallPreservesLocals(t *testing.T) {
	c := check(t, `
void noop(x) begin
  decl junk;
  junk := !x;
  return;
end

void main() begin
  decl mine;
  mine := true;
  noop(false);
  assert(mine);
  return;
end`, "main")
	if f, bad := c.ErrorReachable(); bad {
		t.Fatalf("caller locals clobbered by call: %+v", f)
	}
}

func TestUnreachableCallee(t *testing.T) {
	// A procedure never called has no reachable states.
	c := check(t, `
void dead() begin
  assert(false);
  return;
end

void main() begin
  skip;
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("assert in unreachable procedure must not fire")
	}
	if inv := c.InvariantString("dead", 0); inv != "false" {
		t.Errorf("dead entry invariant: %s", inv)
	}
}

func TestIterationCountReported(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := true;
  return;
end`, "main")
	if c.Iterations == 0 {
		t.Error("worklist iterations should be counted")
	}
}

func TestHoldsAtWithGlobals(t *testing.T) {
	c := check(t, `
decl g;
void main() begin
  g := true;
 L:
  skip;
  return;
end`, "main")
	idx, _ := c.StmtAtLabel("main", "L")
	g, err := bp.ParseExpr("g")
	if err != nil {
		t.Fatal(err)
	}
	ng, err := bp.ParseExpr("!g")
	if err != nil {
		t.Fatal(err)
	}
	if !c.HoldsAt("main", idx, g) {
		t.Error("g holds at L")
	}
	if c.HoldsAt("main", idx, ng) {
		t.Error("!g must not hold at L")
	}
}
