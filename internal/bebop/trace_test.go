package bebop

import (
	"math/rand"
	"testing"

	"predabs/internal/bp"
	"predabs/internal/bpinterp"
)

// replayTrace validates a trace by driving the interpreter... here we
// validate structurally: consecutive steps are CFG-connected and the
// final step is the failing assert.
func validateTrace(t *testing.T, c *Checker, trace []Step, f Failure) {
	t.Helper()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	last := trace[len(trace)-1]
	if last.Proc != f.Proc || last.Stmt != f.Stmt {
		t.Fatalf("trace ends at %s:%d, want %s:%d", last.Proc, last.Stmt, f.Proc, f.Stmt)
	}
	if last.BP.Kind != bp.Assert {
		t.Fatalf("trace must end at an assert, got %s", bp.StmtString(last.BP))
	}
	// Every step's state must be inside Bebop's reachable set.
	ts := &traceSearcher{c: c}
	for i, step := range trace {
		frame := step.State
		if !ts.inReach(step.Proc, step.Stmt, frame, frame) {
			t.Fatalf("step %d (%s:%d) state outside reachable set", i, step.Proc, step.Stmt)
		}
	}
}

func TestTraceStraightLine(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := *;
  assert(a);
  return;
end`, "main")
	f, bad := c.ErrorReachable()
	if !bad {
		t.Fatal("expected failure")
	}
	trace, ok := c.Trace("main", f)
	if !ok {
		t.Fatal("no trace found")
	}
	validateTrace(t, c, trace, f)
	// The state at the assert must have a=false.
	if trace[len(trace)-1].State["a"] {
		t.Fatal("assert state should have a=false")
	}
}

func TestTraceThroughBranches(t *testing.T) {
	c := check(t, `
void main() begin
  decl a, b;
  a := *;
  if (a) then
    b := true;
  else
    b := false;
  fi
  assert(b);
  return;
end`, "main")
	f, bad := c.ErrorReachable()
	if !bad {
		t.Fatal("expected failure via else branch")
	}
	trace, ok := c.Trace("main", f)
	if !ok {
		t.Fatal("no trace")
	}
	validateTrace(t, c, trace, f)
}

func TestTraceThroughCall(t *testing.T) {
	c := check(t, `
decl g;

void poke(x) begin
  g := x;
  return;
end

void main() begin
  decl v;
  v := *;
  poke(v);
  assert(g);
  return;
end`, "main")
	f, bad := c.ErrorReachable()
	if !bad {
		t.Fatal("expected failure when v=false")
	}
	trace, ok := c.Trace("main", f)
	if !ok {
		t.Fatal("no trace")
	}
	validateTrace(t, c, trace, f)
	// The trace must descend into poke.
	sawCallee := false
	for _, s := range trace {
		if s.Proc == "poke" {
			sawCallee = true
		}
	}
	if !sawCallee {
		t.Fatal("trace does not descend into the callee")
	}
}

func TestTraceThroughLoop(t *testing.T) {
	c := check(t, `
void main() begin
  decl a, n;
  a := false;
  n := true;
  while (n) do
    n := *;
    a := true;
  od
  assert(!a);
  return;
end`, "main")
	f, bad := c.ErrorReachable()
	if !bad {
		t.Fatal("expected failure (loop body always runs once)")
	}
	trace, ok := c.Trace("main", f)
	if !ok {
		t.Fatal("no trace")
	}
	validateTrace(t, c, trace, f)
}

func TestNoTraceWhenSafe(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := true;
  assert(a);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("program is safe")
	}
}

// The trace must be replayable in the concrete interpreter: scripted
// choices derived from the trace drive the interpreter to the failure.
func TestTraceStatesMatchInterpreterSemantics(t *testing.T) {
	src := `
void main() begin
  decl a, b;
  a := *;
  b := choose(a, false);
  assert(!b | !a);
  return;
end`
	c := check(t, src, "main")
	f, bad := c.ErrorReachable()
	if !bad {
		t.Fatal("expected failure when a=true (b becomes true)")
	}
	trace, ok := c.Trace("main", f)
	if !ok {
		t.Fatal("no trace")
	}
	validateTrace(t, c, trace, f)
	// And confirm the interpreter can fail too.
	prog := bp.MustParse(src)
	found := false
	for seed := int64(0); seed < 50 && !found; seed++ {
		in := &bpinterp.Interp{Prog: prog, Choice: bpinterp.RandChooser{R: rand.New(rand.NewSource(seed))}}
		res, err := in.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if res.Status == bpinterp.AssertFailed {
			found = true
		}
	}
	if !found {
		t.Fatal("interpreter cannot reproduce the failure")
	}
}
