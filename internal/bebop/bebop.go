// Package bebop implements the Bebop model checker for boolean programs
// (paper Section 2.2): an interprocedural dataflow analysis in the spirit
// of Sharir-Pnueli and Reps-Horwitz-Sagiv, computing the set of reachable
// states for each statement. State sets and transfer functions are
// represented with binary decision diagrams; control flow stays an
// explicit graph. Procedure calls are handled with summaries, so
// recursion needs no special mechanism.
package bebop

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"predabs/internal/bdd"
	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/trace"
)

// Limits bounds one model-checking run. The zero value is unlimited.
type Limits struct {
	// Budget carries the run deadline/cancellation and the degradation
	// log; nil means no deadline.
	Budget *budget.Tracker
	// MaxBDDNodes stops the fixpoint once the BDD node table exceeds this
	// many nodes (<= 0: unlimited). The paper reports Bebop's BDDs
	// staying small in practice; this is the safety net for the cases
	// where they do not.
	MaxBDDNodes int
}

// Column identifies one of the per-variable BDD variable copies.
type column int

const (
	colEntry   column = 0 // value at procedure entry (path-edge source)
	colCurrent column = 1 // value now
	colNext    column = 2 // value after the statement (primed)
	colScratch column = 3 // call-site summary input
	numColumns        = 4
)

// varSlot is one boolean-program variable's block of BDD variables.
type varSlot struct {
	name string
	base int // BDD variable index of colEntry
}

func (s varSlot) col(c column) int { return s.base + int(c) }

// procInfo caches per-procedure layout and CFG information.
type procInfo struct {
	proc   *bp.Proc
	params []varSlot
	locals []varSlot
	rets   []varSlot // return-value slots
	// scope maps names to slots (globals included).
	scope map[string]varSlot
	// succs[i] lists the successor statement indices of statement i.
	succs [][]int
	// preds is the reverse of succs.
	preds [][]int
	// enforce is the invariant BDD over colCurrent (1 if none).
	enfC int
	// enfP is the invariant over colNext.
	enfP int
}

// Failure locates a reachable assertion violation.
type Failure struct {
	Proc string
	Stmt int
}

// Checker runs reachability on one boolean program and answers queries
// about the computed fixpoint (paper Section 2.2: per-statement
// reachable-state sets, assertion reachability, counterexample traces).
//
// A Checker is not safe for concurrent use: both the fixpoint and the
// query methods (Reachable, InvariantRows, Trace, ...) mutate the shared
// BDD manager's node and memo tables. Run independent checks on
// independent Checkers.
type Checker struct {
	Prog  *bp.Program
	m     *bdd.Manager
	glob  []varSlot
	procs map[string]*procInfo
	// scratchNondet is a pool of BDD variables for * and choose.
	scratchNondet []int

	// pathEdges[proc][stmt] is the path-edge BDD over (entry, current).
	pathEdges map[string][]int
	// summaries[proc] is over (entry globals+params, next globals, ret).
	summaries map[string]int
	// entrySeeds[proc] accumulates seeded entry conditions.
	entrySeeds map[string]int

	// Failures lists reachable assertion violations.
	Failures []Failure

	// Iterations counts worklist items processed until the RHS fixpoint
	// (the model checker's cost metric; the paper reports Bebop "ran in
	// under 10 seconds" on every subject).
	Iterations int
	// IterationsByProc splits Iterations by the procedure whose statement
	// was processed.
	IterationsByProc map[string]int
	// FixpointTime is the wall time of the reachability fixpoint,
	// excluding BDD layout and CFG construction.
	FixpointTime time.Duration

	// Degraded reports that the fixpoint stopped early on a resource
	// limit. The path edges computed so far are then an
	// UNDER-approximation of the reachable states: every Failure found is
	// a genuine abstract failure, but the absence of failures must not be
	// read as "verified" — callers map a degraded, failure-free check to
	// an Unknown outcome.
	Degraded bool
	// DegradeReason is the canonical limit name that stopped the fixpoint
	// (budget.LimitBDDNodes or budget.LimitDeadline); "" when not
	// degraded.
	DegradeReason string

	// tr receives one bebop.iter event per worklist item (worklist depth,
	// BDD node count) plus check/fixpoint spans. nil-safe.
	tr *trace.Tracer
}

// Check runs Bebop on prog starting from the entry procedure with
// unconstrained globals and parameters, computing the interprocedural
// reachability fixpoint with procedure summaries (paper Section 2.2).
// prog must be resolved.
func Check(prog *bp.Program, entry string) (*Checker, error) {
	return CheckTraced(prog, entry, nil)
}

// CheckTraced is Check with a structured-event tracer attached (nil
// behaves exactly like Check).
func CheckTraced(prog *bp.Program, entry string, tr *trace.Tracer) (*Checker, error) {
	return CheckLimited(prog, entry, tr, Limits{})
}

// CheckLimited is CheckTraced under resource limits: the fixpoint stops
// early when the run deadline passes or the BDD node table exceeds
// lim.MaxBDDNodes, leaving the Checker Degraded (see that field's
// soundness note).
func CheckLimited(prog *bp.Program, entry string, tr *trace.Tracer, lim Limits) (*Checker, error) {
	e := prog.Proc(entry)
	if e == nil {
		return nil, fmt.Errorf("bebop: no procedure %q", entry)
	}
	c := &Checker{
		Prog:             prog,
		m:                bdd.New(0),
		procs:            map[string]*procInfo{},
		pathEdges:        map[string][]int{},
		summaries:        map[string]int{},
		entrySeeds:       map[string]int{},
		IterationsByProc: map[string]int{},
		tr:               tr,
	}
	checkSpan := tr.Begin("bebop", "check")
	c.layout()
	c.buildCFGs()
	start := time.Now()
	fixSpan := tr.Begin("bebop", "fixpoint")
	c.run(entry, lim)
	fixSpan.End(trace.Int("iterations", c.Iterations))
	c.FixpointTime = time.Since(start)
	checkSpan.End(trace.Int("bdd_nodes", c.m.NumNodes()))
	return c, nil
}

// layout allocates BDD variables: four columns per variable slot;
// globals first, then per-procedure params, locals and return slots.
func (c *Checker) layout() {
	alloc := func(name string) varSlot {
		base := c.m.NumVars()
		for i := 0; i < numColumns; i++ {
			c.m.AddVar()
		}
		return varSlot{name: name, base: base}
	}
	for _, g := range c.Prog.Globals {
		c.glob = append(c.glob, alloc(g))
	}
	for _, pr := range c.Prog.Procs {
		pi := &procInfo{proc: pr, scope: map[string]varSlot{}}
		for _, s := range c.glob {
			pi.scope[s.name] = s
		}
		for _, p := range pr.Params {
			s := alloc(pr.Name + "::" + p)
			s.name = p
			pi.params = append(pi.params, s)
			pi.scope[p] = s
		}
		for _, l := range pr.Locals {
			s := alloc(pr.Name + "::" + l)
			s.name = l
			pi.locals = append(pi.locals, s)
			pi.scope[l] = s
		}
		for i := 0; i < pr.NRet; i++ {
			s := alloc(fmt.Sprintf("%s::$ret%d", pr.Name, i))
			pi.rets = append(pi.rets, s)
		}
		c.procs[pr.Name] = pi
	}
	// Nondeterminism scratch pool (grown on demand).
	for i := 0; i < 8; i++ {
		c.scratchNondet = append(c.scratchNondet, c.m.AddVar())
	}
}

func (c *Checker) buildCFGs() {
	for _, pr := range c.Prog.Procs {
		pi := c.procs[pr.Name]
		n := len(pr.Stmts)
		pi.succs = make([][]int, n)
		pi.preds = make([][]int, n)
		for i, s := range pr.Stmts {
			switch s.Kind {
			case bp.Goto:
				for _, tgt := range s.Targets {
					idx, _ := pr.LabelIndex(tgt)
					pi.succs[i] = append(pi.succs[i], idx)
				}
			case bp.Return:
				// No successors.
			default:
				if i+1 < n {
					pi.succs[i] = append(pi.succs[i], i+1)
				}
			}
		}
		for i, ss := range pi.succs {
			for _, j := range ss {
				pi.preds[j] = append(pi.preds[j], i)
			}
		}
		pi.enfC = 1
		pi.enfP = 1
		if pr.Enforce != nil {
			pi.enfC = c.exprBDD(pi, pr.Enforce, colCurrent, nil)
			pi.enfP = c.exprBDD(pi, pr.Enforce, colNext, nil)
		}
	}
}

// nondetVar hands out a scratch variable for one * occurrence.
func (c *Checker) nondetVar(used *int) int {
	for *used >= len(c.scratchNondet) {
		c.scratchNondet = append(c.scratchNondet, c.m.AddVar())
	}
	v := c.scratchNondet[*used]
	*used++
	return v
}

// exprBDD translates a boolean-program expression into a BDD over the
// given column. Unknown and unresolved choose consume scratch variables
// recorded in *nondet (nil means the expression must be deterministic).
func (c *Checker) exprBDD(pi *procInfo, e bp.Expr, col column, nondet *[]int) int {
	switch e := e.(type) {
	case bp.Const:
		if e.Val {
			return c.m.True()
		}
		return c.m.False()
	case bp.Ref:
		slot, ok := pi.scope[e.Name]
		if !ok {
			return c.m.False()
		}
		return c.m.Var(slot.col(col))
	case bp.Unknown:
		if nondet == nil {
			return c.m.True() // deterministic context: treat as true-assume
		}
		used := len(*nondet)
		v := c.nondetVar(&used)
		*nondet = append(*nondet, v)
		return c.m.Var(v)
	case bp.Not:
		return c.m.Not(c.exprBDD(pi, e.X, col, nondet))
	case bp.Bin:
		x := c.exprBDD(pi, e.X, col, nondet)
		y := c.exprBDD(pi, e.Y, col, nondet)
		switch e.Op {
		case bp.And:
			return c.m.And(x, y)
		case bp.Or:
			return c.m.Or(x, y)
		case bp.Implies:
			return c.m.Implies(x, y)
		case bp.Iff:
			return c.m.Iff(x, y)
		}
	case bp.Choose:
		pos := c.exprBDD(pi, e.Pos, col, nondet)
		neg := c.exprBDD(pi, e.Neg, col, nondet)
		if nondet == nil {
			return pos
		}
		used := len(*nondet)
		v := c.nondetVar(&used)
		*nondet = append(*nondet, v)
		// pos ? true : (neg ? false : ν)
		return c.m.Or(pos, c.m.And(c.m.Not(neg), c.m.Var(v)))
	}
	return c.m.False()
}

// scopeSlots returns every slot in the procedure's scope (globals,
// params, locals), deterministically ordered.
func (c *Checker) scopeSlots(pi *procInfo) []varSlot {
	out := make([]varSlot, 0, len(c.glob)+len(pi.params)+len(pi.locals))
	out = append(out, c.glob...)
	out = append(out, pi.params...)
	out = append(out, pi.locals...)
	return out
}

func colVars(slots []varSlot, col column) []int {
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = s.col(col)
	}
	return out
}

func renameMap(slots []varSlot, from, to column) map[int]int {
	m := map[int]int{}
	for _, s := range slots {
		m[s.col(from)] = s.col(to)
	}
	return m
}

// assignRelation builds the transition relation (current → next) of a
// parallel assignment, including the frame condition and the enforce
// invariant on the next state.
func (c *Checker) assignRelation(pi *procInfo, lhs []string, rhs []bp.Expr) int {
	assigned := map[string]bool{}
	rel := c.m.True()
	var nondet []int
	for i, name := range lhs {
		assigned[name] = true
		slot, ok := pi.scope[name]
		if !ok {
			continue
		}
		val := c.exprBDD(pi, rhs[i], colCurrent, &nondet)
		rel = c.m.And(rel, c.m.Iff(c.m.Var(slot.col(colNext)), val))
	}
	for _, s := range c.scopeSlots(pi) {
		if !assigned[s.name] {
			rel = c.m.And(rel, c.m.Iff(c.m.Var(s.col(colNext)), c.m.Var(s.col(colCurrent))))
		}
	}
	rel = c.m.And(rel, pi.enfP)
	// The scratch nondeterminism variables are free: quantify them out.
	if len(nondet) > 0 {
		rel = c.m.Exists(rel, nondet)
	}
	return rel
}

// image applies a (current→next) relation to a path-edge set.
func (c *Checker) image(pi *procInfo, pe, rel int) int {
	slots := c.scopeSlots(pi)
	conj := c.m.And(pe, rel)
	ex := c.m.Exists(conj, colVars(slots, colCurrent))
	return c.m.Replace(ex, renameMap(slots, colNext, colCurrent))
}

type workItem struct {
	proc string
	stmt int
}

// run executes the RHS-style worklist to a fixpoint.
// cancelPollStride is how many worklist items run between cancellation
// polls (BDD-node checks are O(1) and run every item).
const cancelPollStride = 32

// degrade marks the fixpoint as truncated and records the event.
func (c *Checker) degrade(lim Limits, limit, detail string) {
	c.Degraded = true
	c.DegradeReason = limit
	lim.Budget.Degrade("bebop", limit, detail)
}

func (c *Checker) run(entry string, lim Limits) {
	for name, pi := range c.procs {
		c.pathEdges[name] = make([]int, len(pi.proc.Stmts))
		c.summaries[name] = c.m.False()
		c.entrySeeds[name] = c.m.False()
	}

	// Callers index: who calls whom, for summary-growth requeueing.
	callSites := map[string][]workItem{}
	for _, pr := range c.Prog.Procs {
		for i, s := range pr.Stmts {
			if s.Kind == bp.Call {
				callSites[s.Callee] = append(callSites[s.Callee], workItem{pr.Name, i})
			}
		}
	}

	var queue []workItem
	inQueue := map[workItem]bool{}
	push := func(w workItem) {
		if !inQueue[w] {
			inQueue[w] = true
			queue = append(queue, w)
		}
	}

	// Seed the entry procedure: unconstrained globals and parameters.
	epi := c.procs[entry]
	seed := pi0Seed(c, epi)
	c.seedEntry(entry, seed, push)

	for len(queue) > 0 {
		// Resource limits: stopping the worklist early leaves the path
		// edges an under-approximation (see Checker.Degraded).
		if lim.MaxBDDNodes > 0 && c.m.NumNodes() > lim.MaxBDDNodes {
			c.degrade(lim, budget.LimitBDDNodes,
				fmt.Sprintf("%d nodes after %d iterations", c.m.NumNodes(), c.Iterations))
			return
		}
		if c.Iterations%cancelPollStride == 0 && lim.Budget.Cancelled() {
			c.degrade(lim, budget.LimitDeadline,
				fmt.Sprintf("after %d iterations", c.Iterations))
			return
		}
		w := queue[0]
		queue = queue[1:]
		inQueue[w] = false
		c.Iterations++
		c.IterationsByProc[w.proc]++
		c.tr.Event("bebop", "iter", trace.Str("proc", w.proc),
			trace.Int("worklist", len(queue)), trace.Int("bdd_nodes", c.m.NumNodes()))

		pi := c.procs[w.proc]
		pe := c.pathEdges[w.proc][w.stmt]
		if pe == 0 {
			continue
		}
		s := pi.proc.Stmts[w.stmt]

		propagate := func(to int, newPE int) {
			old := c.pathEdges[w.proc][to]
			union := c.m.Or(old, newPE)
			if union != old {
				c.pathEdges[w.proc][to] = union
				push(workItem{w.proc, to})
			}
		}

		switch s.Kind {
		case bp.Skip, bp.Goto:
			for _, nxt := range pi.succs[w.stmt] {
				propagate(nxt, pe)
			}
		case bp.Assume:
			// A nondeterministic condition passes if some resolution does.
			var nondet []int
			cond := c.exprBDD(pi, s.Cond, colCurrent, &nondet)
			filtered := c.m.Exists(c.m.And(pe, cond), nondet)
			for _, nxt := range pi.succs[w.stmt] {
				propagate(nxt, filtered)
			}
		case bp.Assert:
			// A nondeterministic assert fails if some resolution fails.
			var nondet []int
			cond := c.exprBDD(pi, s.Cond, colCurrent, &nondet)
			fail := c.m.Exists(c.m.And(pe, c.m.Not(cond)), nondet)
			if !c.m.IsFalse(fail) {
				c.recordFailure(w.proc, w.stmt)
			}
			pass := c.m.Exists(c.m.And(pe, cond), nondet)
			for _, nxt := range pi.succs[w.stmt] {
				propagate(nxt, pass)
			}
		case bp.Assign:
			rel := c.assignRelation(pi, s.Lhs, s.Rhs)
			out := c.image(pi, pe, rel)
			for _, nxt := range pi.succs[w.stmt] {
				propagate(nxt, out)
			}
		case bp.Call:
			out, grewCallee := c.applyCall(pi, w, s, push)
			_ = grewCallee
			if out != 0 && !c.m.IsFalse(out) {
				for _, nxt := range pi.succs[w.stmt] {
					propagate(nxt, out)
				}
			}
		case bp.Return:
			if c.growSummary(pi, w, s) {
				for _, cs := range callSites[w.proc] {
					push(cs)
				}
			}
		}
	}
}

// pi0Seed builds the unconstrained initial path edge for the entry
// procedure: entry columns free, current = entry for globals and params,
// locals free, enforce holds.
func pi0Seed(c *Checker, pi *procInfo) int {
	seed := c.m.True()
	for _, s := range c.glob {
		seed = c.m.And(seed, c.m.Iff(c.m.Var(s.col(colEntry)), c.m.Var(s.col(colCurrent))))
	}
	for _, s := range pi.params {
		seed = c.m.And(seed, c.m.Iff(c.m.Var(s.col(colEntry)), c.m.Var(s.col(colCurrent))))
	}
	return c.m.And(seed, pi.enfC)
}

// seedEntry adds entry states (over entry columns of globals and params,
// mirrored into current columns) for a procedure.
func (c *Checker) seedEntry(proc string, seed int, push func(workItem)) {
	old := c.entrySeeds[proc]
	union := c.m.Or(old, seed)
	if union == old {
		return
	}
	c.entrySeeds[proc] = union
	pe := c.pathEdges[proc][0]
	pe2 := c.m.Or(pe, seed)
	if pe2 != pe && len(c.procs[proc].proc.Stmts) > 0 {
		c.pathEdges[proc][0] = pe2
		push(workItem{proc, 0})
	}
}

// applyCall binds arguments, seeds the callee, and applies the callee's
// summary, producing the post-call path edges.
func (c *Checker) applyCall(pi *procInfo, w workItem, s *bp.Stmt, push func(workItem)) (int, bool) {
	pe := c.pathEdges[w.proc][w.stmt]
	callee := c.procs[s.Callee]

	// Bind arguments into the callee's parameter SCRATCH columns. (Not the
	// entry columns: on a recursive self-call those are the caller's own
	// path-edge source and must stay unconstrained.)
	bind := c.m.True()
	var nondet []int
	for j, a := range s.Args {
		val := c.exprBDD(pi, a, colCurrent, &nondet)
		bind = c.m.And(bind, c.m.Iff(c.m.Var(callee.params[j].col(colScratch)), val))
	}
	combined := c.m.And(pe, bind)
	if len(nondet) > 0 {
		combined = c.m.Exists(combined, nondet)
	}

	// Seed the callee's entry: inputs are (current globals, bound params).
	slots := c.scopeSlots(pi)
	inputs := c.m.Exists(combined, append(colVars(slots, colEntry), colVars(pi.locals, colCurrent)...))
	inputs = c.m.Exists(inputs, colVars(pi.params, colCurrent))
	// inputs is over (gC, callee params in colScratch). Move both to the
	// entry columns.
	inputs = c.m.Replace(inputs, renameMap(c.glob, colCurrent, colEntry))
	inputs = c.m.Replace(inputs, renameMap(callee.params, colScratch, colEntry))
	// Mirror entries into current columns; locals unconstrained modulo
	// enforce.
	seed := inputs
	for _, sl := range c.glob {
		seed = c.m.And(seed, c.m.Iff(c.m.Var(sl.col(colEntry)), c.m.Var(sl.col(colCurrent))))
	}
	for _, sl := range callee.params {
		seed = c.m.And(seed, c.m.Iff(c.m.Var(sl.col(colEntry)), c.m.Var(sl.col(colCurrent))))
	}
	seed = c.m.And(seed, callee.enfC)
	c.seedEntry(s.Callee, seed, push)

	// Apply the summary. Summary layout: input globals and input params in
	// colScratch, output globals in colNext, returns in callee ret
	// colCurrent.
	summ := c.summaries[s.Callee]
	if c.m.IsFalse(summ) {
		return 0, false
	}
	// Match summary input globals with the caller's current globals.
	match := c.m.True()
	for _, g := range c.glob {
		match = c.m.And(match, c.m.Iff(c.m.Var(g.col(colScratch)), c.m.Var(g.col(colCurrent))))
	}
	out := c.m.AndN(combined, match, summ)
	// Drop old globals, summary inputs, and callee parameter bindings.
	out = c.m.Exists(out, colVars(c.glob, colCurrent))
	out = c.m.Exists(out, colVars(c.glob, colScratch))
	out = c.m.Exists(out, colVars(callee.params, colScratch))
	// New globals move from colNext to colCurrent.
	out = c.m.Replace(out, renameMap(c.glob, colNext, colCurrent))
	// Copy return values into the call targets.
	if len(s.CallLhs) > 0 {
		copyRel := c.m.True()
		for i, name := range s.CallLhs {
			slot := pi.scope[name]
			copyRel = c.m.And(copyRel, c.m.Iff(c.m.Var(slot.col(colNext)), c.m.Var(callee.rets[i].col(colCurrent))))
		}
		out = c.m.And(out, copyRel)
		lhsSlots := make([]varSlot, 0, len(s.CallLhs))
		for _, name := range s.CallLhs {
			lhsSlots = append(lhsSlots, pi.scope[name])
		}
		out = c.m.Exists(out, colVars(lhsSlots, colCurrent))
		out = c.m.Exists(out, colVars(callee.rets, colCurrent))
		out = c.m.Replace(out, renameMap(lhsSlots, colNext, colCurrent))
	} else {
		out = c.m.Exists(out, colVars(callee.rets, colCurrent))
	}
	out = c.m.And(out, pi.enfC)
	return out, false
}

// growSummary folds a reached return statement into the procedure's
// summary relation. Reports whether the summary grew.
func (c *Checker) growSummary(pi *procInfo, w workItem, s *bp.Stmt) bool {
	pe := c.pathEdges[w.proc][w.stmt]
	if c.m.IsFalse(pe) {
		return false
	}
	// Attach return values.
	rel := pe
	var nondet []int
	for i, e := range s.RetVals {
		val := c.exprBDD(pi, e, colCurrent, &nondet)
		rel = c.m.And(rel, c.m.Iff(c.m.Var(pi.rets[i].col(colCurrent)), val))
	}
	if len(nondet) > 0 {
		rel = c.m.Exists(rel, nondet)
	}
	// Summary output globals: current → next column.
	rel = c.m.Replace(rel, renameMap(c.glob, colCurrent, colNext))
	// Drop locals and current params.
	rel = c.m.Exists(rel, colVars(pi.locals, colCurrent))
	rel = c.m.Exists(rel, colVars(pi.params, colCurrent))
	// Summary inputs: entry → scratch column (globals and params), so call
	// sites can match them without touching their own entry columns.
	rel = c.m.Replace(rel, renameMap(c.glob, colEntry, colScratch))
	rel = c.m.Replace(rel, renameMap(pi.params, colEntry, colScratch))
	old := c.summaries[w.proc]
	union := c.m.Or(old, rel)
	if union == old {
		return false
	}
	c.summaries[w.proc] = union
	return true
}

func (c *Checker) recordFailure(proc string, stmt int) {
	for _, f := range c.Failures {
		if f.Proc == proc && f.Stmt == stmt {
			return
		}
	}
	c.Failures = append(c.Failures, Failure{Proc: proc, Stmt: stmt})
}

// ErrorReachable reports the first reachable assertion violation.
func (c *Checker) ErrorReachable() (Failure, bool) {
	if len(c.Failures) == 0 {
		return Failure{}, false
	}
	return c.Failures[0], true
}

// Reachable returns the reachable current-state set at (proc, stmt) as a
// BDD over the current columns (entry columns quantified away).
func (c *Checker) Reachable(proc string, stmt int) int {
	pi := c.procs[proc]
	pe := c.pathEdges[proc][stmt]
	slots := c.scopeSlots(pi)
	return c.m.Exists(pe, colVars(slots, colEntry))
}

// StmtAtLabel resolves a label to its statement index.
func (c *Checker) StmtAtLabel(proc, label string) (int, bool) {
	pi, ok := c.procs[proc]
	if !ok {
		return 0, false
	}
	return pi.proc.LabelIndex(label)
}

// InvariantRows enumerates the reachable states at (proc, stmt) as
// valuations of the in-scope variables (globals, params, locals).
func (c *Checker) InvariantRows(proc string, stmt int) ([]string, [][]byte) {
	pi := c.procs[proc]
	slots := c.scopeSlots(pi)
	names := make([]string, len(slots))
	for i, s := range slots {
		names[i] = s.name
	}
	reach := c.Reachable(proc, stmt)
	rows := c.m.AllSat(reach, colVars(slots, colCurrent))
	return names, rows
}

// InvariantString renders the invariant at (proc, stmt) as a disjunction
// of cubes over variable names (diagnostics and tests).
func (c *Checker) InvariantString(proc string, stmt int) string {
	names, rows := c.InvariantRows(proc, stmt)
	if len(rows) == 0 {
		return "false"
	}
	var parts []string
	for _, row := range rows {
		var lits []string
		for i, b := range row {
			name := bp.Ref{Name: names[i]}.String()
			if b == 1 {
				lits = append(lits, name)
			} else {
				lits = append(lits, "!"+name)
			}
		}
		parts = append(parts, strings.Join(lits, " & "))
	}
	sort.Strings(parts)
	return strings.Join(parts, "  |  ")
}

// StateReachable reports whether a (possibly partial) concrete state is
// compatible with the reachable set at (proc, stmt): variables present in
// the map are fixed, others existentially quantified. Used by the
// abstraction-soundness property tests.
func (c *Checker) StateReachable(proc string, stmt int, state map[string]bool) bool {
	pi, ok := c.procs[proc]
	if !ok || stmt >= len(pi.proc.Stmts) {
		return false
	}
	f := c.Reachable(proc, stmt)
	for _, s := range c.scopeSlots(pi) {
		v, ok := state[s.name]
		if !ok {
			continue
		}
		f = c.m.Restrict(f, s.col(colCurrent), v)
		if c.m.IsFalse(f) {
			return false
		}
	}
	return !c.m.IsFalse(f)
}

// StmtsWithOrigin returns the statement indices in proc whose Origin is
// the given value (pointer identity), in program order.
func (c *Checker) StmtsWithOrigin(proc string, origin any) []int {
	pi, ok := c.procs[proc]
	if !ok {
		return nil
	}
	var out []int
	for i, s := range pi.proc.Stmts {
		if s.Origin == origin {
			out = append(out, i)
		} else if bo, ok := s.Origin.(interface{ OriginStmt() any }); ok && bo.OriginStmt() == origin {
			out = append(out, i)
		}
	}
	return out
}

// HoldsAt reports whether the boolean expression over in-scope variables
// holds in every reachable state at (proc, stmt).
func (c *Checker) HoldsAt(proc string, stmt int, e bp.Expr) bool {
	pi := c.procs[proc]
	cond := c.exprBDD(pi, e, colCurrent, nil)
	reach := c.Reachable(proc, stmt)
	return c.m.IsFalse(c.m.And(reach, c.m.Not(cond)))
}

// LabelledInvariants renders the reachable-state invariant at every
// labelled statement of every procedure, one "proc:label: cubes" line per
// label, in program order (internal labels generated by the abstraction
// are skipped).
func (c *Checker) LabelledInvariants() []string {
	var out []string
	for _, pr := range c.Prog.Procs {
		for i, s := range pr.Stmts {
			for _, l := range s.Labels {
				if len(l) > 0 && (l[0] == '$' || l[0] == '_') {
					continue // generated label
				}
				out = append(out, pr.Name+":"+l+": "+c.InvariantString(pr.Name, i))
			}
		}
	}
	return out
}
