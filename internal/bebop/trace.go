package bebop

import (
	"fmt"
	"sort"
	"strings"

	"predabs/internal/bp"
)

// Step is one element of a counterexample trace: a statement executed in
// some procedure, with the state before it.
type Step struct {
	Proc  string
	Stmt  int
	BP    *bp.Stmt
	State map[string]bool
}

// traceSearcher performs a depth-first search for a concrete path to a
// failing assertion, pruned by Bebop's reachable-state sets so it only
// explores states the fixpoint proved reachable.
type traceSearcher struct {
	c       *Checker
	target  Failure
	visited map[string]bool
	fuel    int
	found   []Step
}

// Trace reconstructs a concrete execution path from the entry procedure
// to the failing assertion. ok is false if the search exhausted its
// budget (which should not happen for genuine failures at Bebop scale).
func (c *Checker) Trace(entry string, f Failure) ([]Step, bool) {
	ts := &traceSearcher{
		c:       c,
		target:  f,
		visited: map[string]bool{},
		fuel:    500000,
	}
	epi := c.procs[entry]
	// Enumerate viable initial states from the entry's reachable set at
	// statement 0.
	if len(epi.proc.Stmts) == 0 {
		return nil, false
	}
	for _, st := range ts.viableStates(entry, 0) {
		frame := map[string]bool{}
		globals := map[string]bool{}
		for _, g := range c.glob {
			globals[g.name] = st[g.name]
		}
		for _, s := range append(append([]varSlot{}, epi.params...), epi.locals...) {
			frame[s.name] = st[s.name]
		}
		if ts.run(entry, 0, frame, globals) {
			return ts.found, true
		}
	}
	return nil, false
}

// viableStates enumerates concrete states in Reach(proc, stmt).
func (ts *traceSearcher) viableStates(proc string, stmt int) []map[string]bool {
	c := ts.c
	pi := c.procs[proc]
	slots := c.scopeSlots(pi)
	reach := c.Reachable(proc, stmt)
	rows := c.m.AllSat(reach, colVars(slots, colCurrent))
	out := make([]map[string]bool, 0, len(rows))
	for _, row := range rows {
		st := map[string]bool{}
		for i, s := range slots {
			st[s.name] = row[i] == 1
		}
		out = append(out, st)
	}
	return out
}

// inReach checks that a concrete state is inside Reach(proc, stmt).
func (ts *traceSearcher) inReach(proc string, stmt int, frame, globals map[string]bool) bool {
	c := ts.c
	pi := c.procs[proc]
	slots := c.scopeSlots(pi)
	reach := c.Reachable(proc, stmt)
	f := reach
	for _, s := range slots {
		val, ok := frame[s.name]
		if !ok {
			val = globals[s.name]
		}
		f = c.m.Restrict(f, s.col(colCurrent), val)
		if c.m.IsFalse(f) {
			return false
		}
	}
	return !c.m.IsFalse(f)
}

func stateKey(proc string, pc int, frame, globals map[string]bool, depth int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d|", proc, pc, depth)
	writeBits := func(m map[string]bool) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if m[k] {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
	}
	writeBits(globals)
	b.WriteByte('|')
	writeBits(frame)
	return b.String()
}

func cloneState(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// evalChoices evaluates an expression under all resolutions of * and
// unresolved choose, returning the set of possible values.
func evalChoices(e bp.Expr, get func(string) bool) []bool {
	switch e := e.(type) {
	case bp.Const:
		return []bool{e.Val}
	case bp.Ref:
		return []bool{get(e.Name)}
	case bp.Unknown:
		return []bool{false, true}
	case bp.Not:
		return mapVals(evalChoices(e.X, get), func(v bool) bool { return !v })
	case bp.Bin:
		xs := evalChoices(e.X, get)
		ys := evalChoices(e.Y, get)
		var out []bool
		for _, x := range xs {
			for _, y := range ys {
				var v bool
				switch e.Op {
				case bp.And:
					v = x && y
				case bp.Or:
					v = x || y
				case bp.Implies:
					v = !x || y
				case bp.Iff:
					v = x == y
				}
				out = appendVal(out, v)
			}
		}
		return out
	case bp.Choose:
		pos := evalChoices(e.Pos, get)
		neg := evalChoices(e.Neg, get)
		var out []bool
		for _, p := range pos {
			if p {
				out = appendVal(out, true)
				continue
			}
			for _, n := range neg {
				if n {
					out = appendVal(out, false)
				} else {
					out = appendVal(out, false)
					out = appendVal(out, true)
				}
			}
		}
		return out
	}
	return []bool{false}
}

func mapVals(in []bool, f func(bool) bool) []bool {
	var out []bool
	for _, v := range in {
		out = appendVal(out, f(v))
	}
	return out
}

func appendVal(out []bool, v bool) []bool {
	for _, x := range out {
		if x == v {
			return out
		}
	}
	return append(out, v)
}

// enumerateAssignments expands all nondeterministic outcomes of a parallel
// assignment.
func enumerateAssignments(lhs []string, rhs []bp.Expr, get func(string) bool) [][]bool {
	options := make([][]bool, len(rhs))
	for i, e := range rhs {
		options[i] = evalChoices(e, get)
	}
	out := [][]bool{{}}
	for _, opts := range options {
		var next [][]bool
		for _, partial := range out {
			for _, v := range opts {
				row := append(append([]bool{}, partial...), v)
				next = append(next, row)
			}
		}
		out = next
	}
	return out
}

// cont is the continuation invoked at return statements, carrying the
// return values in frame["$ret<i>"] and the trace so far.
type contFn func(frame, globals map[string]bool, trace []Step) bool

// run is the DFS over configurations.
// Returning true means ts.found holds a complete trace.
func (ts *traceSearcher) run(proc string, pc int, frame, globals map[string]bool) bool {
	return ts.step(proc, pc, frame, globals, 0, "",
		func(map[string]bool, map[string]bool, []Step) bool {
			// Falling off the entry procedure without hitting the target.
			return false
		}, nil)
}

// step executes from (proc, pc). ctx is the call-site chain, making the
// visited set context-sensitive so alternate continuations are explored.
func (ts *traceSearcher) step(proc string, pc int, frame, globals map[string]bool,
	depth int, ctx string, cont contFn, trace []Step) bool {

	c := ts.c
	pi := c.procs[proc]
	for {
		ts.fuel--
		if ts.fuel <= 0 || depth > 64 {
			return false
		}
		if pc >= len(pi.proc.Stmts) {
			return false
		}
		key := ctx + "\x00" + stateKey(proc, pc, frame, globals, depth)
		if ts.visited[key] {
			return false
		}
		ts.visited[key] = true
		if !ts.inReach(proc, pc, frame, globals) {
			return false
		}

		s := pi.proc.Stmts[pc]
		get := func(name string) bool {
			if v, ok := frame[name]; ok {
				return v
			}
			return globals[name]
		}
		set := func(name string, v bool) {
			if _, ok := frame[name]; ok {
				frame[name] = v
				return
			}
			if _, ok := globals[name]; ok {
				globals[name] = v
				return
			}
			frame[name] = v
		}
		snapshot := func() map[string]bool {
			st := cloneState(globals)
			for k, v := range frame {
				st[k] = v
			}
			return st
		}
		trace = append(trace, Step{Proc: proc, Stmt: pc, BP: s, State: snapshot()})

		// Target reached?
		if proc == ts.target.Proc && pc == ts.target.Stmt && s.Kind == bp.Assert {
			for _, v := range evalChoices(s.Cond, get) {
				if !v {
					ts.found = append([]Step{}, trace...)
					return true
				}
			}
		}

		switch s.Kind {
		case bp.Skip:
			pc++
		case bp.Assume:
			ok := false
			for _, v := range evalChoices(s.Cond, get) {
				if v {
					ok = true
				}
			}
			if !ok {
				return false
			}
			pc++
		case bp.Assert:
			ok := false
			for _, v := range evalChoices(s.Cond, get) {
				if v {
					ok = true
				}
			}
			if !ok {
				return false // failing assert that is not the target: stop
			}
			pc++
		case bp.Goto:
			for _, tgt := range s.Targets {
				idx, _ := pi.proc.LabelIndex(tgt)
				if ts.step(proc, idx, cloneState(frame), cloneState(globals), depth, ctx, cont, trace) {
					return true
				}
			}
			return false
		case bp.Assign:
			rows := enumerateAssignments(s.Lhs, s.Rhs, get)
			if len(rows) == 1 {
				for i, name := range s.Lhs {
					set(name, rows[0][i])
				}
				if pi.enfC != 1 && !enforceHolds(pi, frame, globals) {
					return false
				}
				pc++
				continue
			}
			for _, row := range rows {
				f2, g2 := cloneState(frame), cloneState(globals)
				for i, name := range s.Lhs {
					setIn(f2, g2, name, row[i])
				}
				if pi.enfC != 1 && !enforceHolds(pi, f2, g2) {
					continue
				}
				if ts.step(proc, pc+1, f2, g2, depth, ctx, cont, trace) {
					return true
				}
			}
			return false
		case bp.Call:
			callee := c.procs[s.Callee]
			// Evaluate arguments (possibly nondeterministic).
			argRows := enumerateAssignments(callee.proc.Params, s.Args, get)
			innerCtx := fmt.Sprintf("%s%s:%d/", ctx, proc, pc)
			for _, args := range argRows {
				// Enumerate viable callee local initializations via the
				// callee's entry reachable set.
				for _, init := range ts.calleeInits(s.Callee, args, globals) {
					pcNext := pc
					sNext := s
					fOuter := cloneState(frame)
					done := ts.step(s.Callee, 0, init, cloneState(globals), depth+1, innerCtx,
						func(retFrame, retGlobals map[string]bool, retTrace []Step) bool {
							// Back in the caller: bind returns, continue.
							f3 := cloneState(fOuter)
							g3 := cloneState(retGlobals)
							for i, name := range sNext.CallLhs {
								setIn(f3, g3, name, retFrame[fmt.Sprintf("$ret%d", i)])
							}
							if pi.enfC != 1 && !enforceHolds(pi, f3, g3) {
								return false
							}
							return ts.step(proc, pcNext+1, f3, g3, depth, ctx, cont, retTrace)
						}, trace)
					if done {
						return true
					}
				}
			}
			return false
		case bp.Return:
			// Encode return values for the continuation.
			retFrame := cloneState(frame)
			rows := enumerateAssignments(retNames(len(s.RetVals)), s.RetVals, get)
			for _, row := range rows {
				rf := cloneState(retFrame)
				for i := range s.RetVals {
					rf[fmt.Sprintf("$ret%d", i)] = row[i]
				}
				if cont(rf, cloneState(globals), trace) {
					return true
				}
			}
			return false
		}
	}
}

func retNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("$ret%d", i)
	}
	return out
}

func setIn(frame, globals map[string]bool, name string, v bool) {
	if _, ok := frame[name]; ok {
		frame[name] = v
		return
	}
	if _, ok := globals[name]; ok {
		globals[name] = v
		return
	}
	frame[name] = v
}

func enforceHolds(pi *procInfo, frame, globals map[string]bool) bool {
	if pi.proc.Enforce == nil {
		return true
	}
	get := func(name string) bool {
		if v, ok := frame[name]; ok {
			return v
		}
		return globals[name]
	}
	vals := evalChoices(pi.proc.Enforce, get)
	for _, v := range vals {
		if v {
			return true
		}
	}
	return false
}

// calleeInits enumerates callee frames (params bound to args, locals
// filtered by the callee's reachable entry states under the current
// globals).
func (ts *traceSearcher) calleeInits(callee string, args []bool, globals map[string]bool) []map[string]bool {
	c := ts.c
	pi := c.procs[callee]
	if len(pi.proc.Stmts) == 0 {
		return nil
	}
	reach := c.Reachable(callee, 0)
	f := reach
	for _, g := range c.glob {
		f = c.m.Restrict(f, g.col(colCurrent), globals[g.name])
	}
	for i, p := range pi.params {
		f = c.m.Restrict(f, p.col(colCurrent), args[i])
	}
	if c.m.IsFalse(f) {
		return nil
	}
	rows := c.m.AllSat(f, colVars(pi.locals, colCurrent))
	var out []map[string]bool
	for _, row := range rows {
		frame := map[string]bool{}
		for i, p := range pi.proc.Params {
			frame[p] = args[i]
		}
		for i, l := range pi.locals {
			frame[l.name] = row[i] == 1
		}
		out = append(out, frame)
	}
	return out
}
