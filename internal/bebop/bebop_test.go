package bebop

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"predabs/internal/bp"
	"predabs/internal/bpinterp"
)

func check(t *testing.T, src, entry string) *Checker {
	t.Helper()
	prog, err := bp.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Check(prog, entry)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestStraightLine(t *testing.T) {
	c := check(t, `
void main() begin
  decl a, b;
  a := true;
  b := !a;
 L:
  skip;
  return;
end`, "main")
	idx, ok := c.StmtAtLabel("main", "L")
	if !ok {
		t.Fatal("no label L")
	}
	inv := c.InvariantString("main", idx)
	if inv != "a & !b" {
		t.Errorf("invariant at L: %q, want \"a & !b\"", inv)
	}
}

func TestAssertUnreachableViolation(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := true;
  assert(a);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("no violation expected")
	}
}

func TestAssertReachableViolation(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := *;
  assert(a);
  return;
end`, "main")
	f, bad := c.ErrorReachable()
	if !bad {
		t.Fatal("violation expected (a may be false)")
	}
	if f.Proc != "main" {
		t.Errorf("failure at %v", f)
	}
}

func TestAssumeFilters(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := *;
  assume(a);
  assert(a);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("assume should protect the assert")
	}
}

func TestCorrelationTracked(t *testing.T) {
	// Sets of bit vectors, not independent bits: after the swap the
	// correlation a != b must be exact.
	c := check(t, `
void main() begin
  decl a, b;
  a := *;
  b := !a;
  a, b := b, a;
 L:
  assert(!(a & b));
  assert(a | b);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("swap preserves a != b")
	}
	idx, _ := c.StmtAtLabel("main", "L")
	inv := c.InvariantString("main", idx)
	if inv != "!a & b  |  a & !b" {
		t.Errorf("invariant: %q", inv)
	}
}

func TestLoopFixpoint(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := false;
  while (*) do
    a := !a;
  od
  assert(a | !a);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("tautology cannot fail")
	}
}

func TestInterproceduralSummary(t *testing.T) {
	c := check(t, `
decl g;

bool id(x) begin
  return x;
end

void main() begin
  decl a, b;
  a := *;
  b := id(a);
  assert(b <=> a);
  g := id(true);
  assert(g);
  return;
end`, "main")
	if f, bad := c.ErrorReachable(); bad {
		t.Fatalf("identity summary broken: %+v", f)
	}
}

func TestGlobalSideEffects(t *testing.T) {
	c := check(t, `
decl g;

void setit() begin
  g := true;
  return;
end

void main() begin
  g := false;
  setit();
  assert(g);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("global side effect lost")
	}
}

func TestMultipleReturns(t *testing.T) {
	c := check(t, `
bool<2> pair(x) begin
  return x, !x;
end

void main() begin
  decl a, b, v;
  v := *;
  a, b := pair(v);
  assert(a <=> v);
  assert(b <=> !v);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("multiple returns broken")
	}
}

func TestRecursionTerminates(t *testing.T) {
	// Boolean programs with recursion have decidable reachability via
	// summaries (the paper: "recursive and mutually recursive procedures
	// with no additional mechanism").
	c := check(t, `
decl g;

void rec(x) begin
  if (x) then
    rec(false);
  else
    g := true;
  fi
  return;
end

void main() begin
  g := false;
  rec(true);
  assert(g);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("recursion summary broken")
	}
}

func TestEnforceRestrictsStates(t *testing.T) {
	c := check(t, `
void main() begin
  decl a, b;
  enforce !(a & b);
  a := *;
  b := *;
 L:
  assert(!(a & b));
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("enforce must exclude a & b")
	}
	idx, _ := c.StmtAtLabel("main", "L")
	names, rows := c.InvariantRows("main", idx)
	ai, bi := -1, -1
	for i, n := range names {
		switch n {
		case "a":
			ai = i
		case "b":
			bi = i
		}
	}
	for _, row := range rows {
		if row[ai] == 1 && row[bi] == 1 {
			t.Errorf("invariant contains forbidden state a=b=1: %v", rows)
		}
	}
	if len(rows) != 3 {
		t.Errorf("expected 3 allowed states, got %d", len(rows))
	}
}

func TestChooseSemantics(t *testing.T) {
	c := check(t, `
void main() begin
  decl p, v;
  p := *;
  v := choose(p, !p);
  assert(v <=> p);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("choose(p, !p) must equal p")
	}
	// choose(false,false) is free.
	c2 := check(t, `
void main() begin
  decl v;
  v := choose(false, false);
  assert(v);
  return;
end`, "main")
	if _, bad := c2.ErrorReachable(); !bad {
		t.Fatal("choose(false,false) can be false")
	}
}

func TestUnreachableCodeHasFalseInvariant(t *testing.T) {
	c := check(t, `
void main() begin
  decl a;
  a := true;
  goto done;
 dead:
  assert(false);
  goto done;
 done:
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("dead assert must not fire")
	}
	idx, _ := c.StmtAtLabel("main", "dead")
	if inv := c.InvariantString("main", idx); inv != "false" {
		t.Errorf("dead code invariant: %s", inv)
	}
}

func TestParamPassingByValue(t *testing.T) {
	c := check(t, `
void mut(x) begin
  x := !x;
  return;
end

void main() begin
  decl a;
  a := true;
  mut(a);
  assert(a);
  return;
end`, "main")
	if _, bad := c.ErrorReachable(); bad {
		t.Fatal("call-by-value violated")
	}
}

// Property test: Bebop's reachability agrees with many random concrete
// interpreter runs — every interpreted state at a labelled point must be
// inside Bebop's invariant (soundness of the fixpoint), and asserts that
// Bebop calls safe must never fail concretely.
func TestBebopSoundAgainstInterpreter(t *testing.T) {
	src := `
decl g;

bool flip(x) begin
  decl t;
  t := !x;
  g := g | t;
  return t;
end

void main() begin
  decl a, b, c;
  a := *;
  b := choose(a, false);
  c := false;
  while (*) do
    c := flip(b);
    if (c) then
      b := !b;
    else
      skip;
    fi
  od
 L:
  skip;
  return;
end`
	prog := bp.MustParse(src)
	checker, err := Check(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := checker.StmtAtLabel("main", "L")
	pi := checker.procs["main"]
	slots := checker.scopeSlots(pi)
	reach := checker.Reachable("main", idx)

	for seed := int64(0); seed < 300; seed++ {
		in := &bpinterp.Interp{
			Prog:        prog,
			Choice:      bpinterp.RandChooser{R: rand.New(rand.NewSource(seed))},
			RecordTrace: true,
		}
		res, err := in.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != bpinterp.Completed {
			continue
		}
		// Reconstruct the state at L from the trace by replay is complex;
		// instead check the global at completion is allowed by the
		// invariant at L projected onto g... the final state passed
		// through L, where only g is global.
		// Project the invariant onto g.
		gSlot := checker.glob[0]
		gOnly := checker.m.Exists(reach, colVars(slots, colCurrent))
		_ = gOnly
		gTrue := checker.m.And(reach, checker.m.Var(gSlot.col(colCurrent)))
		gFalse := checker.m.And(reach, checker.m.Not(checker.m.Var(gSlot.col(colCurrent))))
		if res.Globals["g"] && checker.m.IsFalse(gTrue) {
			t.Fatalf("seed %d: interpreter reached g=true at exit but invariant forbids it", seed)
		}
		if !res.Globals["g"] && checker.m.IsFalse(gFalse) {
			t.Fatalf("seed %d: interpreter reached g=false at exit but invariant forbids it", seed)
		}
	}
}

// Property test: on random small single-procedure programs, Bebop reports
// an assert violation iff random interpretation can find one (with enough
// seeds, for these tiny state spaces agreement is near-certain in the
// "reachable" direction, and the "unreachable" direction must be exact).
func TestBebopVsInterpreterOnRandomPrograms(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		src := randomProgram(r)
		prog, err := bp.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		checker, err := Check(prog, "main")
		if err != nil {
			t.Fatal(err)
		}
		_, bebopBad := checker.ErrorReachable()

		interpBad := false
		for seed := int64(0); seed < 400; seed++ {
			in := &bpinterp.Interp{Prog: prog, Choice: bpinterp.RandChooser{R: rand.New(rand.NewSource(seed))}}
			res, err := in.Run("main")
			if err != nil {
				t.Fatal(err)
			}
			if res.Status == bpinterp.AssertFailed {
				interpBad = true
				break
			}
		}
		if interpBad && !bebopBad {
			t.Fatalf("trial %d: interpreter found a violation Bebop missed\n%s", trial, src)
		}
	}
}

// randomProgram generates a small boolean program over 3 variables.
func randomProgram(r *rand.Rand) string {
	vars := []string{"a", "b", "c"}
	var b strings.Builder
	b.WriteString("void main() begin\n  decl a, b, c;\n")
	expr := func() string {
		v := vars[r.Intn(len(vars))]
		switch r.Intn(4) {
		case 0:
			return v
		case 1:
			return "!" + v
		case 2:
			return "*"
		default:
			w := vars[r.Intn(len(vars))]
			op := []string{"&", "|"}[r.Intn(2)]
			return v + " " + op + " " + w
		}
	}
	n := 4 + r.Intn(5)
	for i := 0; i < n; i++ {
		switch r.Intn(5) {
		case 0, 1:
			fmt.Fprintf(&b, "  %s := %s;\n", vars[r.Intn(3)], expr())
		case 2:
			fmt.Fprintf(&b, "  if (%s) then %s := %s; else %s := %s; fi\n",
				expr(), vars[r.Intn(3)], expr(), vars[r.Intn(3)], expr())
		case 3:
			fmt.Fprintf(&b, "  assume(%s);\n", expr())
		case 4:
			fmt.Fprintf(&b, "  assert(%s);\n", expr())
		}
	}
	b.WriteString("  return;\nend\n")
	return b.String()
}
