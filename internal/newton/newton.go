// Package newton implements SLAM's predicate-discovery step (the paper's
// Section 6.1: "Newton, a tool that discovers additional predicates to
// refine the boolean program, by analyzing the feasibility of paths in
// the C program").
//
// Given a counterexample trace through the boolean program, Newton maps
// each step back to its originating C statement, renames locals per call
// frame, and decides feasibility by a backward weakest-precondition sweep
// along the path: the path is feasible iff the accumulated condition over
// the initial state is satisfiable. On infeasibility, the atoms of the
// contradiction become candidate predicates for the next C2bp round.
package newton

import (
	"fmt"
	"strings"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/cast"
	"predabs/internal/cnorm"
	"predabs/internal/form"
	"predabs/internal/prover"
	tracepkg "predabs/internal/trace"
	"predabs/internal/wp"
)

// Result reports the feasibility analysis of one trace.
type Result struct {
	// Feasible means the counterexample corresponds to a real C execution
	// (as far as the prover can tell): SLAM reports the error.
	Feasible bool
	// NewPreds maps scope names (procedure name or "global") to predicate
	// source texts to add for refinement.
	NewPreds map[string][]string
	// GaveUp reports that the feasibility analysis hit its resource cap
	// (pointer-heavy paths can make the backward condition grow
	// exponentially); neither verdict is claimed and no predicates are
	// proposed, so SLAM answers Unknown.
	GaveUp bool
	// Condition is the accumulated path condition over the initial state.
	Condition form.Formula
	// InfeasibleIndex is the backward-step count (from the end of the
	// path) at which the condition became unsatisfiable; -1 when the path
	// was feasible or the analysis gave up.
	InfeasibleIndex int
	// Events is the rendered C-level path (diagnostics).
	Events []string
}

// pathEvent is one C-level step after frame renaming.
type pathEvent struct {
	// Exactly one of assign/assume is set.
	isAssign bool
	lhs, rhs form.Term
	cond     form.Formula // for assume events
	text     string
	frameFn  string
}

// frameSep separates the frame qualifier from the variable name.
const frameSep = "::"

// Analyze decides the feasibility of a Bebop counterexample trace against
// the original (normalized) C program.
func Analyze(res *cnorm.Result, aa *alias.Analysis, pv prover.Querier, trace []bebop.Step) (*Result, error) {
	return AnalyzeTraced(res, aa, pv, trace, nil)
}

// AnalyzeTraced is Analyze with a structured-event tracer attached: one
// newton.analyze span per refinement round, carrying the path length,
// the infeasibility point and the number of predicates harvested. A nil
// tracer behaves exactly like Analyze.
func AnalyzeTraced(res *cnorm.Result, aa *alias.Analysis, pv prover.Querier, steps []bebop.Step, tr *tracepkg.Tracer) (*Result, error) {
	return AnalyzeLimited(res, aa, pv, steps, tr, nil)
}

// AnalyzeLimited is AnalyzeTraced with a resource-budget tracker attached.
// A cancelled tracker makes the backward sweep give up at the next step
// boundary: GaveUp is reported and no verdict is claimed, which is sound
// because SLAM maps GaveUp to Unknown. A nil tracker never cancels.
func AnalyzeLimited(res *cnorm.Result, aa *alias.Analysis, pv prover.Querier, steps []bebop.Step, tr *tracepkg.Tracer, bt *budget.Tracker) (*Result, error) {
	span := tr.Begin("newton", "analyze")
	out, err := analyze(res, aa, pv, steps, bt)
	if err != nil {
		span.End(tracepkg.Int("path_len", len(steps)))
		return nil, err
	}
	span.End(
		tracepkg.Int("path_len", len(steps)),
		tracepkg.Int("infeasible_index", out.InfeasibleIndex),
		tracepkg.Int("preds_harvested", predCount(out.NewPreds)),
		tracepkg.Bool("feasible", out.Feasible),
		tracepkg.Bool("gave_up", out.GaveUp),
	)
	return out, err
}

func analyze(res *cnorm.Result, aa *alias.Analysis, pv prover.Querier, trace []bebop.Step, bt *budget.Tracker) (*Result, error) {
	events, err := buildEvents(res, trace)
	if err != nil {
		return nil, err
	}

	oracle := &pathOracle{aa: aa}

	// Backward WP sweep with per-step satisfiability checks: the first
	// point (from the end) where the condition becomes unsatisfiable
	// pinpoints the contradiction.
	out := &Result{NewPreds: map[string][]string{}, InfeasibleIndex: -1}
	for _, e := range events {
		out.Events = append(out.Events, e.text)
	}

	// maxCondSize caps the rendered size of the path condition.
	const maxCondSize = 20000

	phi := form.Formula(form.TrueF{})
	// snapshots records the condition after each backward step, so that on
	// infeasibility predicates can be harvested from the entire infeasible
	// suffix — the correlation chain usually spans several statements and
	// frames (e.g. a return value flowing through a local into an assert).
	var snapshots []form.Formula
	for i := len(events) - 1; i >= 0; i-- {
		if bt.Cancelled() {
			// Deadline hit mid-sweep: neither verdict is claimed, so SLAM
			// answers Unknown — a sound retreat, never a wrong claim.
			bt.Degrade("newton", budget.LimitDeadline,
				fmt.Sprintf("gave up %d steps into the backward sweep", len(snapshots)))
			out.GaveUp = true
			out.Feasible = false
			out.Condition = phi
			return out, nil
		}
		e := events[i]
		if e.isAssign {
			phi = wp.Assignment(oracle, e.lhs, e.rhs, phi)
		} else {
			phi = form.MkAnd(e.cond, phi)
		}
		snapshots = append(snapshots, phi)
		if len(phi.String()) > maxCondSize {
			bt.Degrade("newton", budget.LimitCondSize,
				fmt.Sprintf("path condition exceeded %d chars after %d backward steps", maxCondSize, len(snapshots)))
			out.GaveUp = true
			out.Feasible = false
			out.Condition = phi
			return out, nil
		}
		if pv.Unsat(phi) {
			// Infeasible: harvest predicates from the conditions along the
			// contradictory suffix, nearest the contradiction first, up to
			// a budget (unbounded harvesting floods the next abstraction
			// round; SLAM's Newton similarly limits predicates).
			out.Feasible = false
			out.Condition = phi
			out.InfeasibleIndex = len(snapshots) - 1
			if !e.isAssign {
				harvest(res, e.cond, out.NewPreds)
			}
			for j := len(snapshots) - 1; j >= 0 && predCount(out.NewPreds) < maxHarvest; j-- {
				harvest(res, snapshots[j], out.NewPreds)
			}
			return out, nil
		}
	}
	if bt.Cancelled() {
		// A cancelled tracker short-circuits prover queries to "could not
		// prove", so a sweep that reached the start may have skipped the
		// very unsat check that would have refuted the path. Don't claim
		// feasibility off skipped queries.
		bt.Degrade("newton", budget.LimitDeadline, "sweep finished under cancellation; feasibility not claimed")
		out.GaveUp = true
		out.Feasible = false
		out.Condition = phi
		return out, nil
	}
	out.Feasible = true
	out.Condition = phi
	return out, nil
}

// buildEvents maps the boolean-program trace back to renamed C-level
// assignments and assumptions.
func buildEvents(res *cnorm.Result, trace []bebop.Step) ([]pathEvent, error) {
	var events []pathEvent
	type frame struct {
		fn string
		id int
		// pendingLhs is the caller-side result location for the active
		// call, if any.
		callerLhs   form.Term
		callerFrame *frame
	}
	frameN := 0
	newFrame := func(fn string) *frame {
		frameN++
		return &frame{fn: fn, id: frameN}
	}
	var stack []*frame
	top := func() *frame { return stack[len(stack)-1] }

	if len(trace) == 0 {
		return nil, fmt.Errorf("newton: empty trace")
	}
	stack = append(stack, newFrame(trace[0].Proc))

	for i, step := range trace {
		fr := top()
		if step.Proc != fr.fn {
			return nil, fmt.Errorf("newton: trace step %d in %s but frame is %s", i, step.Proc, fr.fn)
		}
		s := step.BP
		switch s.Kind {
		case bp.Assume:
			switch o := s.Origin.(type) {
			case abstract.BranchOrigin:
				cond, err := condOf(o.Stmt)
				if err != nil {
					return nil, err
				}
				if !o.Then {
					cond = form.NNF(form.MkNot(cond))
				}
				cond = renameFormula(res, fr.fn, fr.id, cond)
				events = append(events, pathEvent{
					cond: cond, frameFn: fr.fn,
					text: fmt.Sprintf("[%s] assume %s", fr.fn, cond),
				})
			case cast.Stmt:
				if as, ok := o.(*cast.AssumeStmt); ok {
					cond, err := form.FromCond(as.X)
					if err != nil {
						return nil, err
					}
					cond = renameFormula(res, fr.fn, fr.id, cond)
					events = append(events, pathEvent{
						cond: cond, frameFn: fr.fn,
						text: fmt.Sprintf("[%s] assume %s", fr.fn, cond),
					})
				}
			}
		case bp.Assign, bp.Skip:
			// A C assignment may abstract to a skip (no predicate is
			// affected); Newton must still execute it symbolically.
			o, ok := s.Origin.(cast.Stmt)
			if !ok {
				continue // post-call update or synthetic
			}
			as, ok := o.(*cast.AssignStmt)
			if !ok {
				continue
			}
			if _, isCall := as.Rhs.(*cast.Call); isCall {
				continue // handled at the bp.Call step
			}
			lhsT, err := form.FromExpr(as.Lhs)
			if err != nil {
				continue
			}
			rhsT, err := form.FromExpr(as.Rhs)
			if err != nil {
				continue
			}
			events = append(events, pathEvent{
				isAssign: true,
				lhs:      renameTerm(res, fr.fn, fr.id, lhsT),
				rhs:      renameTerm(res, fr.fn, fr.id, rhsT),
				frameFn:  fr.fn,
				text:     fmt.Sprintf("[%s] %s = %s", fr.fn, as.Lhs, as.Rhs),
			})
		case bp.Goto, bp.Assert:
			// Assert: the SLAM target is reached; the violated C condition
			// is handled by the caller of Analyze if needed (SLAM checks
			// reachability of abort points, whose condition is false).
			if s.Kind == bp.Assert {
				if o, ok := s.Origin.(cast.Stmt); ok {
					if asrt, ok := o.(*cast.AssertStmt); ok {
						cond, err := form.FromCond(asrt.X)
						if err == nil {
							neg := renameFormula(res, fr.fn, fr.id, form.NNF(form.MkNot(cond)))
							events = append(events, pathEvent{
								cond: neg, frameFn: fr.fn,
								text: fmt.Sprintf("[%s] violate %s", fr.fn, asrt.X),
							})
						}
					}
				}
			}
		case bp.Call:
			// The next trace step enters the callee; bind formals.
			o, _ := s.Origin.(cast.Stmt)
			var callExpr *cast.Call
			var lhs cast.Expr
			switch o := o.(type) {
			case *cast.AssignStmt:
				callExpr, _ = o.Rhs.(*cast.Call)
				lhs = o.Lhs
			case *cast.ExprStmt:
				callExpr, _ = o.X.(*cast.Call)
			}
			if callExpr == nil {
				continue
			}
			callee := res.Prog.Func(callExpr.Name)
			if callee == nil {
				continue
			}
			nf := newFrame(callExpr.Name)
			nf.callerFrame = fr
			if lhs != nil {
				if t, err := form.FromExpr(lhs); err == nil {
					nf.callerLhs = renameTerm(res, fr.fn, fr.id, t)
				}
			}
			// Parameter binding events (callee frame receives caller
			// values).
			for j, p := range callee.Params {
				if j >= len(callExpr.Args) {
					break
				}
				argT, err := form.FromExpr(callExpr.Args[j])
				if err != nil {
					continue
				}
				events = append(events, pathEvent{
					isAssign: true,
					lhs:      form.Var{Name: qualifyFn(nf.id, callExpr.Name, p.Name)},
					rhs:      renameTerm(res, fr.fn, fr.id, argT),
					frameFn:  callExpr.Name,
					text:     fmt.Sprintf("[%s] %s = %s (bind)", callExpr.Name, p.Name, callExpr.Args[j]),
				})
			}
			stack = append(stack, nf)
		case bp.Return:
			// Copy the return value into the caller's result location.
			if fr.callerLhs != nil {
				if rv, ok := res.RetVar[fr.fn]; ok {
					events = append(events, pathEvent{
						isAssign: true,
						lhs:      fr.callerLhs,
						rhs:      form.Var{Name: qualifyFn(fr.id, fr.fn, rv)},
						frameFn:  fr.fn,
						text:     fmt.Sprintf("[%s] return %s", fr.fn, rv),
					})
				}
			}
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return events, nil
}

func condOf(s cast.Stmt) (form.Formula, error) {
	switch s := s.(type) {
	case *cast.IfStmt:
		return form.FromCond(s.Cond)
	case *cast.WhileStmt:
		return form.FromCond(s.Cond)
	}
	return nil, fmt.Errorf("newton: branch origin is %T", s)
}

// qualify attaches a frame id and owning function to a local variable
// name: "f<id>@<fn>::name".
func qualify(frameID int, name string) string {
	return fmt.Sprintf("f%d%s%s", frameID, frameSep, name)
}

// qualifyFn is qualify with the owning function recorded.
func qualifyFn(frameID int, fn, name string) string {
	return fmt.Sprintf("f%d@%s%s%s", frameID, fn, frameSep, name)
}

// splitQualified recovers the bare name; ok reports whether the variable
// was frame-qualified (i.e. a local).
func splitQualified(v string) (string, bool) {
	if i := strings.Index(v, frameSep); i >= 0 {
		return v[i+len(frameSep):], true
	}
	return v, false
}

// qualifierFn extracts the owning function from a qualified name.
func qualifierFn(v string) string {
	i := strings.Index(v, frameSep)
	if i < 0 {
		return ""
	}
	head := v[:i]
	if j := strings.Index(head, "@"); j >= 0 {
		return head[j+1:]
	}
	return ""
}

// renameTerm qualifies every local variable of fn with the frame id;
// globals stay bare.
func renameTerm(res *cnorm.Result, fn string, frameID int, t form.Term) form.Term {
	for _, v := range form.TermVars(t) {
		if _, isLocal := res.Info.FuncVars[fn][v]; isLocal {
			t = form.SubstTerm(t, form.Var{Name: v}, form.Var{Name: qualifyFn(frameID, fn, v)})
		}
	}
	return t
}

func renameFormula(res *cnorm.Result, fn string, frameID int, f form.Formula) form.Formula {
	for _, v := range form.FormulaVars(f) {
		if _, isLocal := res.Info.FuncVars[fn][v]; isLocal {
			f = form.Subst(f, form.Var{Name: v}, form.Var{Name: qualifyFn(frameID, fn, v)})
		}
	}
	return f
}

// stripTerm removes frame qualifiers for predicate harvesting and alias
// queries.
func stripName(v string) string {
	name, _ := splitQualified(v)
	return name
}

// maxHarvest bounds the predicates proposed per refinement round.
const maxHarvest = 12

func predCount(m map[string][]string) int {
	n := 0
	for _, v := range m {
		n += len(v)
	}
	return n
}

// constantDeref reports whether the atom reads through a constant address
// (e.g. 0->next, introduced by substituted NULLs) — useless as a predicate.
func constantDeref(f form.Formula) bool {
	for _, loc := range form.ReadLocations(f) {
		switch loc := loc.(type) {
		case form.Deref:
			if _, ok := loc.X.(form.Num); ok {
				return true
			}
		case form.Sel:
			if d, ok := loc.X.(form.Deref); ok {
				if _, ok := d.X.(form.Num); ok {
					return true
				}
			}
		}
	}
	return false
}

// harvest extracts candidate predicates from the contradiction formula:
// each atom whose variables come from a single frame (or only globals)
// becomes a predicate in that procedure's scope.
func harvest(res *cnorm.Result, phi form.Formula, out map[string][]string) {
	for _, atom := range form.Atoms(phi) {
		if constantDeref(atom) {
			continue
		}
		vars := form.FormulaVars(atom)
		scope := ""
		frame := ""
		mixed := false
		for _, v := range vars {
			if i := strings.Index(v, frameSep); i >= 0 {
				fr := v[:i]
				if frame == "" {
					frame = fr
				} else if frame != fr {
					mixed = true
				}
			}
		}
		if mixed {
			continue
		}
		// Identify the owning procedure by looking the bare locals up.
		bare := form.Formula(atom)
		for _, v := range vars {
			name := stripName(v)
			if name != v {
				bare = form.Subst(bare, form.Var{Name: v}, form.Var{Name: name})
			}
		}
		if frame == "" {
			scope = abstract.GlobalScope
		} else {
			// Find which function owns these locals.
			for _, f := range res.Prog.Funcs {
				owns := true
				for _, v := range vars {
					name := stripName(v)
					if name == v {
						continue // global
					}
					if _, ok := res.Info.FuncVars[f.Name][name]; !ok {
						owns = false
						break
					}
				}
				if owns && ownsAnyLocal(res, f.Name, vars) {
					scope = f.Name
					break
				}
			}
		}
		if scope == "" {
			continue
		}
		// Skip internal placeholder atoms.
		text := bare.String()
		if strings.Contains(text, "$") {
			continue
		}
		out[scope] = appendUnique(out[scope], text)
	}
}

func ownsAnyLocal(res *cnorm.Result, fn string, vars []string) bool {
	for _, v := range vars {
		name := stripName(v)
		if name == v {
			continue
		}
		if _, ok := res.Info.FuncVars[fn][name]; ok {
			return true
		}
	}
	return false
}

func appendUnique(list []string, s string) []string {
	for _, x := range list {
		if x == s {
			return list
		}
	}
	return append(list, s)
}

// pathOracle answers may-alias queries over frame-qualified terms by
// stripping qualifiers and delegating to the points-to analysis, with
// the syntactic never-alias refinements preserved.
type pathOracle struct {
	aa *alias.Analysis
}

// MayAlias is conservative across frames: distinct qualified variables
// never alias; a variable whose address is never taken (in its owning
// function) is never aliased by a dereference; same-frame (or global)
// queries delegate to the whole-program unification classes; queries that
// mix locals of different functions answer with the sound syntactic rules
// only.
func (o *pathOracle) MayAlias(x, y form.Term) bool {
	if vx, ok := x.(form.Var); ok {
		if vy, ok := y.(form.Var); ok {
			return vx.Name == vy.Name
		}
	}
	// Plain variable vs indirection: no alias unless its address is taken.
	if v, ok := x.(form.Var); ok {
		if fn := qualifierFn(v.Name); fn != "" && !o.aa.AddressTaken(fn, stripName(v.Name)) {
			return false
		}
	}
	if v, ok := y.(form.Var); ok {
		if fn := qualifierFn(v.Name); fn != "" && !o.aa.AddressTaken(fn, stripName(v.Name)) {
			return false
		}
	}
	// Different struct fields never alias.
	if sx, ok := x.(form.Sel); ok {
		if sy, ok := y.(form.Sel); ok && sx.Field != sy.Field {
			return false
		}
	}
	fnX, fnY := termFrameFn(x), termFrameFn(y)
	if fnX != "" && fnY != "" && fnX != fnY {
		return true // cross-frame heap access: stay conservative
	}
	fn := fnX
	if fn == "" {
		fn = fnY
	}
	sx := stripTermQualifiers(x)
	sy := stripTermQualifiers(y)
	return o.aa.MayAlias(fn, sx, sy)
}

// termFrameFn returns the owning function of the term's qualified locals,
// or "" if it mentions only globals.
func termFrameFn(t form.Term) string {
	for _, v := range form.TermVars(t) {
		if fn := qualifierFn(v); fn != "" {
			return fn
		}
	}
	return ""
}

func stripTermQualifiers(t form.Term) form.Term {
	for _, v := range form.TermVars(t) {
		name := stripName(v)
		if name != v {
			t = form.SubstTerm(t, form.Var{Name: v}, form.Var{Name: name})
		}
	}
	return t
}
