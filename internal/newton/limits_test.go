package newton

import (
	"context"
	"testing"

	"predabs/internal/budget"
)

func TestCancelledTrackerGivesUp(t *testing.T) {
	src := `
void main(void) {
  int x;
  x = 1;
  assert(x == 1);
}
`
	res, aa, pv, trace := setup(t, src, "", "main")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bt := budget.New(ctx, budget.Limits{}, nil)
	nres, err := AnalyzeLimited(res, aa, pv, trace, nil, bt)
	if err != nil {
		t.Fatal(err)
	}
	if !nres.GaveUp || nres.Feasible {
		t.Fatalf("cancelled sweep: GaveUp=%v Feasible=%v, want gave-up", nres.GaveUp, nres.Feasible)
	}
	ev, ok := bt.First()
	if !ok || ev.Stage != "newton" || ev.Limit != budget.LimitDeadline {
		t.Fatalf("degradation log: %+v %v", ev, ok)
	}
}

func TestNilTrackerUnchanged(t *testing.T) {
	src := `
void main(void) {
  int x;
  x = 1;
  assert(x == 1);
}
`
	res, aa, pv, trace := setup(t, src, "", "main")
	nres, err := AnalyzeLimited(res, aa, pv, trace, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if nres.GaveUp || nres.Feasible {
		t.Fatalf("nil tracker changed verdict: GaveUp=%v Feasible=%v", nres.GaveUp, nres.Feasible)
	}
}
