package newton

import (
	"strings"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/bebop"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
)

// setup runs frontend + abstraction + bebop and returns the first failure
// trace.
func setup(t *testing.T, src, predSrc, entry string) (*cnorm.Result, *alias.Analysis, *prover.Prover, []bebop.Step) {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	aa := alias.Analyze(res)
	pv := prover.New()
	var sections []cparse.PredSection
	if predSrc != "" {
		sections, err = cparse.ParsePredFile(predSrc)
		if err != nil {
			t.Fatal(err)
		}
	}
	abs, err := abstract.Abstract(res, aa, pv, sections, abstract.DefaultOptions())
	if err != nil {
		t.Fatalf("abstract: %v", err)
	}
	ch, err := bebop.Check(abs.BP, entry)
	if err != nil {
		t.Fatal(err)
	}
	f, bad := ch.ErrorReachable()
	if !bad {
		t.Fatalf("no failure to analyze")
	}
	trace, ok := ch.Trace(entry, f)
	if !ok {
		t.Fatal("no trace")
	}
	return res, aa, pv, trace
}

func TestInfeasiblePathDiscovery(t *testing.T) {
	// The assert can never fail, but with no predicates the abstraction
	// cannot see it; Newton must prove the path infeasible and propose
	// predicates about x.
	src := `
void main(void) {
  int x;
  x = 1;
  assert(x == 1);
}
`
	res, aa, pv, trace := setup(t, src, "", "main")
	nres, err := Analyze(res, aa, pv, trace)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Feasible {
		t.Fatalf("path is infeasible (x==1 always holds); events: %v", nres.Events)
	}
	found := false
	for _, preds := range nres.NewPreds {
		for _, p := range preds {
			if strings.Contains(p, "x") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no predicate about x discovered: %v", nres.NewPreds)
	}
}

func TestFeasiblePathReported(t *testing.T) {
	src := `
void main(int x) {
  assert(x == 0);
}
`
	res, aa, pv, trace := setup(t, src, "", "main")
	nres, err := Analyze(res, aa, pv, trace)
	if err != nil {
		t.Fatal(err)
	}
	if !nres.Feasible {
		t.Fatalf("path is feasible (x is arbitrary): %v", nres.Events)
	}
}

func TestBranchCorrelationInfeasible(t *testing.T) {
	// Taking (x>0) then (!(x>0)) branches is contradictory.
	src := `
void main(int x) {
  int y;
  y = 0;
  if (x > 0) {
    y = 1;
  }
  if (x > 0) {
    assert(y == 1);
  }
}
`
	// With no predicates the abstraction lets the error path take the
	// then branch first and the else branch second.
	res, aa, pv, trace := setup(t, src, "", "main")
	nres, err := Analyze(res, aa, pv, trace)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Feasible {
		t.Fatalf("spurious path should be infeasible; events:\n%s", strings.Join(nres.Events, "\n"))
	}
	if len(nres.NewPreds) == 0 {
		t.Fatal("no predicates discovered")
	}
}

func TestInterproceduralRenaming(t *testing.T) {
	// The callee's local x is distinct from the caller's x.
	src := `
int inc(int x) {
  int r;
  r = x + 1;
  return r;
}

void main(void) {
  int x;
  int y;
  x = 5;
  y = inc(x);
  assert(y == 6);
}
`
	res, aa, pv, trace := setup(t, src, "", "main")
	nres, err := Analyze(res, aa, pv, trace)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Feasible {
		t.Fatalf("y is always 6; events:\n%s", strings.Join(nres.Events, "\n"))
	}
}

func TestPointerPathInfeasible(t *testing.T) {
	src := `
void main(void) {
  int v;
  int* p;
  p = &v;
  *p = 3;
  assert(v == 3);
}
`
	res, aa, pv, trace := setup(t, src, "", "main")
	nres, err := Analyze(res, aa, pv, trace)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Feasible {
		t.Fatalf("*p writes v; the assert holds. events:\n%s", strings.Join(nres.Events, "\n"))
	}
}
