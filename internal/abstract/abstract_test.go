package abstract

import (
	"strings"
	"testing"

	"predabs/internal/alias"
	"predabs/internal/bp"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
)

// pipeline runs the full frontend + abstraction.
func pipeline(t *testing.T, src, predSrc string, opts Options) (*Result, *prover.Prover) {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	aa := alias.Analyze(res)
	sections, err := cparse.ParsePredFile(predSrc)
	if err != nil {
		t.Fatalf("predicates: %v", err)
	}
	pv := prover.New()
	out, err := Abstract(res, aa, pv, sections, opts)
	if err != nil {
		t.Fatalf("abstract: %v", err)
	}
	return out, pv
}

const partitionSrc = `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

const partitionPreds = `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`

// TestFigure1Partition checks the key transfer functions of Figure 1(b).
func TestFigure1Partition(t *testing.T) {
	out, _ := pipeline(t, partitionSrc, partitionPreds, DefaultOptions())
	printed := bp.Print(out.BP)
	t.Logf("boolean program:\n%s", printed)

	pr := out.BP.Proc("partition")
	if pr == nil {
		t.Fatal("no partition procedure")
	}
	// The paper's partition() has no parameters and no returns: every
	// predicate mentions a local.
	if len(pr.Params) != 0 || pr.NRet != 0 {
		t.Errorf("params %v, nret %d; want none", pr.Params, pr.NRet)
	}

	find := func(sub string) bool { return strings.Contains(printed, sub) }

	// prev = NULL: {prev==NULL} := true; {prev->val>v} := *.
	if !find("{prev == NULL}") {
		t.Errorf("missing prev==NULL variable")
	}
	// prev = NULL: {prev==NULL} := true. The paper's Figure 1(b) shows
	// {prev->val>v} := unknown(); our prover additionally derives a
	// conditional value through NULL congruence (total-memory semantics,
	// as in Simplify), which is sound and strictly more precise, so we
	// only pin the first component.
	var prevNull *bp.Stmt
	for _, s := range pr.Stmts {
		if s.Kind == bp.Assign && strings.Contains(s.Comment, "prev = NULL") {
			prevNull = s
		}
	}
	if prevNull == nil {
		t.Fatal("no abstraction of prev = NULL")
	}
	okTrue := false
	for i, v := range prevNull.Lhs {
		if v == "prev == NULL" {
			if c, ok := prevNull.Rhs[i].(bp.Const); ok && c.Val {
				okTrue = true
			}
		}
	}
	if !okTrue {
		t.Errorf("prev = NULL should set {prev == NULL} := true: %s", bp.StmtString(prevNull))
	}

	wantFragments := []string{
		// prev = curr: exact copies
		"{prev == NULL}, {prev->val > v} := {curr == NULL}, {curr->val > v};",
		// curr = nextCurr invalidates both curr predicates
		"{curr == NULL}, {curr->val > v} := *, *;",
		// while guard
		"assume(!{curr == NULL});",
		"assume({curr == NULL});",
		// if (curr->val > v) guard
		"assume({curr->val > v});",
		"assume(!{curr->val > v});",
		// if (prev != NULL) guard
		"assume(!{prev == NULL});",
	}
	for _, frag := range wantFragments {
		if !find(frag) {
			t.Errorf("missing fragment %q in:\n%s", frag, printed)
		}
	}

	// newl = NULL, prev->next = nextCurr, curr->next = newl, *l = nextCurr
	// must all be skips.
	for _, c := range []string{"newl = NULL", "prev->next = nextCurr", "curr->next = newl", "*l = nextCurr"} {
		found := false
		for _, s := range pr.Stmts {
			if s.Kind == bp.Skip && strings.Contains(s.Comment, c) {
				found = true
			}
		}
		if !found {
			t.Errorf("statement %q should abstract to skip", c)
		}
	}
}

const fooBarSrc = `
int bar(int* q, int y) {
  int l1, l2;
  l1 = y;
  l2 = y - 1;
  if (*q <= y) { l1 = *q; }
  return l1;
}

void foo(int* p, int x) {
  int r;
  if (*p <= x) {
    *p = x;
  } else {
    *p = *p + x;
  }
  r = bar(p, x);
}
`

const fooBarPreds = `
bar:
  y >= 0, *q <= y, y == l1, y > l2
foo:
  *p <= 0, x == 0, r == 0
`

// TestFigure2Signatures checks E_f and E_r from Section 4.5.2.
func TestFigure2Signatures(t *testing.T) {
	out, _ := pipeline(t, fooBarSrc, fooBarPreds, DefaultOptions())
	sig := out.Sigs["bar"]
	if sig == nil {
		t.Fatal("no signature for bar")
	}
	efNames := predNames(sig.Ef)
	erNames := predNames(sig.Er)
	wantEf := map[string]bool{"y >= 0": true, "*q <= y": true}
	wantEr := map[string]bool{"y == l1": true, "*q <= y": true}
	if !sameSet(efNames, wantEf) {
		t.Errorf("E_f = %v, want {y >= 0, *q <= y}", efNames)
	}
	if !sameSet(erNames, wantEr) {
		t.Errorf("E_r = %v, want {y == l1, *q <= y}", erNames)
	}
	// The boolean bar takes the two formal predicates and returns two
	// values.
	pr := out.BP.Proc("bar")
	if len(pr.Params) != 2 || pr.NRet != 2 {
		t.Errorf("bar: params %v nret %d", pr.Params, pr.NRet)
	}
}

func predNames(ps []Pred) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

func sameSet(got []string, want map[string]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, g := range got {
		if !want[g] {
			return false
		}
	}
	return true
}

// TestFigure2CallAbstraction checks the call translation of Section 4.5.3:
// actuals choose(F(e'),F(¬e')), temporaries for returns, and the post-call
// update of r==0 and *p<=0 (x==0 is untouched).
func TestFigure2CallAbstraction(t *testing.T) {
	out, _ := pipeline(t, fooBarSrc, fooBarPreds, DefaultOptions())
	printed := bp.Print(out.BP)
	t.Logf("boolean program:\n%s", printed)

	foo := out.BP.Proc("foo")
	var callStmt *bp.Stmt
	var postUpdate *bp.Stmt
	for i, s := range foo.Stmts {
		if s.Kind == bp.Call && s.Callee == "bar" {
			callStmt = s
			if i+1 < len(foo.Stmts) && foo.Stmts[i+1].Kind == bp.Assign {
				postUpdate = foo.Stmts[i+1]
			}
		}
	}
	if callStmt == nil {
		t.Fatalf("no call to bar in:\n%s", printed)
	}
	if len(callStmt.Args) != 2 || len(callStmt.CallLhs) != 2 {
		t.Fatalf("call shape: %s", bp.StmtString(callStmt))
	}
	// One actual is choose({x == 0}, false) — for formal predicate y>=0.
	argStrs := []string{callStmt.Args[0].String(), callStmt.Args[1].String()}
	foundYGe0 := false
	for _, a := range argStrs {
		if a == "choose({x == 0}, false)" {
			foundYGe0 = true
		}
	}
	if !foundYGe0 {
		t.Errorf("expected actual choose({x == 0}, false) for y>=0, got %v", argStrs)
	}
	// The other mentions both *p<=0 and x==0 (for *q<=y → *p<=x).
	foundQle := false
	for _, a := range argStrs {
		if strings.Contains(a, "{*p <= 0}") && strings.Contains(a, "{x == 0}") {
			foundQle = true
		}
	}
	if !foundQle {
		t.Errorf("expected actual over {*p <= 0} and {x == 0}, got %v", argStrs)
	}

	if postUpdate == nil {
		t.Fatalf("no post-call update after %s", bp.StmtString(callStmt))
	}
	updated := map[string]bool{}
	for _, v := range postUpdate.Lhs {
		updated[v] = true
	}
	if !updated["*p <= 0"] || !updated["r == 0"] {
		t.Errorf("post-call update targets %v, want *p<=0 and r==0", postUpdate.Lhs)
	}
	if updated["x == 0"] {
		t.Errorf("x == 0 must not be updated by the call")
	}
	// The updates reference the temporaries and x==0, as in the paper:
	// {*p<=0} := choose(t1 & {x==0}, !t1 & {x==0}).
	for i, v := range postUpdate.Lhs {
		rhs := postUpdate.Rhs[i].String()
		if !strings.Contains(rhs, "t$") || !strings.Contains(rhs, "{x == 0}") {
			t.Errorf("update of %q = %s should use a temp and {x == 0}", v, rhs)
		}
	}
}

// TestFigure2AssignmentAbstraction: *p = *p + x from Section 4.3.
func TestFigure2AssignmentAbstraction(t *testing.T) {
	out, _ := pipeline(t, fooBarSrc, fooBarPreds, DefaultOptions())
	foo := out.BP.Proc("foo")
	var assign *bp.Stmt
	for _, s := range foo.Stmts {
		if s.Kind == bp.Assign && strings.Contains(s.Comment, "*p = (*p) + x") {
			assign = s
		}
	}
	if assign == nil {
		t.Fatal("no abstraction of *p = *p + x")
	}
	// Only {*p <= 0} changes: WP leaves x==0 and r==0 untouched.
	if len(assign.Lhs) != 1 || assign.Lhs[0] != "*p <= 0" {
		t.Fatalf("targets: %v", assign.Lhs)
	}
	rhs := assign.Rhs[0].String()
	want := "choose({*p <= 0} & {x == 0}, !{*p <= 0} & {x == 0})"
	if rhs != want {
		t.Errorf("rhs = %s, want %s", rhs, want)
	}
}

func TestEnforceInvariant(t *testing.T) {
	src := `
void f(int x) {
  x = 1;
  x = 2;
}
`
	preds := `
f:
  x == 1, x == 2
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	pr := out.BP.Proc("f")
	if pr.Enforce == nil {
		t.Fatal("enforce missing")
	}
	e := pr.Enforce.String()
	if !strings.Contains(e, "{x == 1}") || !strings.Contains(e, "{x == 2}") {
		t.Errorf("enforce = %s", e)
	}
	// The invariant must rule out both-true.
	// !( {x==1} & {x==2} )
	if !strings.Contains(e, "&") {
		t.Errorf("enforce should exclude the conjunction: %s", e)
	}
}

func TestEnforceDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.EmitEnforce = false
	out, _ := pipeline(t, "void f(int x) { x = 1; }", "f:\n x == 1, x == 2", opts)
	if out.BP.Proc("f").Enforce != nil {
		t.Fatal("enforce emitted despite option")
	}
}

func TestAssertUsesUnderApproximation(t *testing.T) {
	src := `
void f(int x) {
  x = 5;
  assert(x > 0);
}
`
	preds := `
f:
  x == 5
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	pr := out.BP.Proc("f")
	var as *bp.Stmt
	for _, s := range pr.Stmts {
		if s.Kind == bp.Assert {
			as = s
		}
	}
	if as == nil {
		t.Fatal("no assert")
	}
	// F_V(x>0) over {x==5} is {x == 5}: the assert can only be proven via
	// the predicate.
	if as.Cond.String() != "{x == 5}" {
		t.Errorf("assert cond = %s, want {x == 5}", as.Cond)
	}
}

func TestAssumeUsesOverApproximation(t *testing.T) {
	src := `
void f(int x) {
  assume(x == 3);
  x = x + 1;
}
`
	preds := `
f:
  x > 0
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	pr := out.BP.Proc("f")
	var asm *bp.Stmt
	for _, s := range pr.Stmts {
		if s.Kind == bp.Assume && strings.Contains(s.Comment, "assume") {
			asm = s
		}
	}
	if asm == nil {
		t.Fatal("no assume")
	}
	// G_V(x==3) = ¬F_V(x≠3); x>0 does not imply x≠3 nor x==3... but
	// ¬(x>0) ⇒ x≠3, so F_V(x≠3) = !{x > 0} and G = {x > 0}.
	if asm.Cond.String() != "{x > 0}" {
		t.Errorf("assume cond = %s, want {x > 0}", asm.Cond)
	}
}

func TestGlobalPredicates(t *testing.T) {
	src := `
int locked;
void acquire(void) {
  locked = 1;
}
void release(void) {
  locked = 0;
}
void main(void) {
  acquire();
  release();
}
`
	preds := `
global:
  locked == 1
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	if len(out.BP.Globals) != 1 || out.BP.Globals[0] != "locked == 1" {
		t.Fatalf("globals: %v", out.BP.Globals)
	}
	// acquire sets the global to true, release to false.
	acq := out.BP.Proc("acquire")
	foundTrue := false
	for _, s := range acq.Stmts {
		if s.Kind == bp.Assign && len(s.Lhs) == 1 && s.Lhs[0] == "locked == 1" {
			if c, ok := s.Rhs[0].(bp.Const); ok && c.Val {
				foundTrue = true
			}
		}
	}
	if !foundTrue {
		t.Errorf("acquire should set {locked == 1} := true:\n%s", bp.Print(out.BP))
	}
}

func TestGlobalPredicateRejectsLocals(t *testing.T) {
	prog, _ := cparse.Parse("void f(int x) { x = 1; }")
	info, _ := ctype.Check(prog)
	res, _ := cnorm.Normalize(info)
	aa := alias.Analyze(res)
	sections, err := cparse.ParsePredFile("global:\n x == 1")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Abstract(res, aa, prover.New(), sections, DefaultOptions())
	if err == nil || !strings.Contains(err.Error(), "non-global") {
		t.Fatalf("got %v", err)
	}
}

func TestSkipUnchangedCutsProverCalls(t *testing.T) {
	// Disable the syntactic heuristics so the cost of recomputing
	// unchanged predicates is visible in the prover-call count.
	opts := DefaultOptions()
	opts.SyntacticHeuristics = false
	_, pvOn := pipeline(t, partitionSrc, partitionPreds, opts)
	opts.SkipUnchanged = false
	_, pvOff := pipeline(t, partitionSrc, partitionPreds, opts)
	if pvOn.Calls() >= pvOff.Calls() {
		t.Errorf("skip-unchanged should reduce prover calls: on=%d off=%d", pvOn.Calls(), pvOff.Calls())
	}
}

func TestGeneratedProgramReparses(t *testing.T) {
	out, _ := pipeline(t, fooBarSrc, fooBarPreds, DefaultOptions())
	printed := bp.Print(out.BP)
	if _, err := bp.Parse(printed); err != nil {
		t.Fatalf("generated program does not reparse: %v\n%s", err, printed)
	}
}
