package abstract

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"predabs/internal/bp"
	"predabs/internal/form"
	"predabs/internal/trace"
)

// Pred pairs a boolean-variable name with the C predicate it stands for.
// Construct predicates with NewPred; the zero value is still safe to use
// (Neg falls back to recomputing) but loses the negation memoization.
type Pred struct {
	// Name is the boolean program variable name (the predicate's source
	// text, e.g. "curr->val > v").
	Name string
	// F is the predicate as a formula.
	F form.Formula
	// neg lazily caches NNF(¬F). It is a pointer cell so the value-type
	// Pred can memoize across copies, and a sync.Once so concurrent cube
	// workers can share it safely.
	neg *negCell
}

// negCell memoizes a predicate's negation in NNF.
type negCell struct {
	once sync.Once
	f    form.Formula
}

// NewPred builds a predicate entry with a memoization cell for its
// negation (computed lazily on first use of Neg).
func NewPred(name string, f form.Formula) Pred {
	return Pred{Name: name, F: f, neg: &negCell{}}
}

// Neg returns NNF(¬F). For predicates built with NewPred the result is
// computed once and cached (safely under concurrent use); a zero-value
// Pred recomputes on every call, which is correct but slow — prefer
// NewPred.
func (p Pred) Neg() form.Formula {
	if p.neg == nil {
		return form.NNF(form.MkNot(p.F))
	}
	p.neg.once.Do(func() { p.neg.f = form.NNF(form.MkNot(p.F)) })
	return p.neg.f
}

// literal is one signed predicate occurrence in a cube.
type literal struct {
	idx int
	pos bool
}

// cubeVerdict classifies one candidate cube after its prover checks.
type cubeVerdict int8

const (
	// verdictNone: the cube neither implies the goal nor its negation.
	verdictNone cubeVerdict = iota
	// verdictImplicant: the cube implies the goal (kept as a disjunct).
	verdictImplicant
	// verdictContradiction: the cube implies ¬goal (pruned from longer
	// rounds: no consistent superset can imply the goal).
	verdictContradiction
)

// jobs resolves the worker-pool width for the parallel cube search
// (Options.Jobs; <= 0 means GOMAXPROCS).
func (ab *Abstractor) jobs() int {
	if ab.opts.Jobs > 0 {
		return ab.opts.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// minParallelRound is the smallest round worth fanning out: spawning
// workers for a handful of cubes costs more than the prover calls save.
const minParallelRound = 4

// checkRound evaluates check(i) for i in [0, n) on a bounded worker
// pool. Workers pull indices from a shared atomic counter; callers store
// per-index results, so output order is independent of scheduling. With
// jobs <= 1 (or a tiny round) it degenerates to the sequential scan,
// prover-call-for-prover-call identical to the pre-parallel code.
//
// When a tracer is active, each parallel worker's participation in the
// round is emitted as a cube.worker span on its own lane (Chrome tid
// w+1), so the workers render as parallel rows in Perfetto.
func checkRound(tr *trace.Tracer, n, jobs int, check func(i int)) {
	if jobs > n {
		jobs = n
	}
	if n < minParallelRound {
		jobs = 1
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			check(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := tr.BeginLane(w+1, "cube", "worker")
			done := 0
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					sp.End(trace.Int("cubes", done))
					return
				}
				check(i)
				done++
			}
		}(w)
	}
	wg.Wait()
}

// enumerateCubes generates every signed cube of exactly size literals
// over predicate indices [0, n), in the canonical order (ascending
// indices; positive literal before negative at each position), keeping
// those that pass the filter. This order is the contract that makes the
// parallel search deterministic: rounds are merged back in it.
func enumerateCubes(n, size int, keep func([]literal) bool) [][]literal {
	var out [][]literal
	cube := make([]literal, 0, size)
	var rec func(start, need int)
	rec = func(start, need int) {
		if need == 0 {
			if keep(cube) {
				out = append(out, append([]literal(nil), cube...))
			}
			return
		}
		for i := start; i <= n-need; i++ {
			for _, pos := range []bool{true, false} {
				cube = append(cube, literal{idx: i, pos: pos})
				rec(i+1, need-1)
				cube = cube[:len(cube)-1]
			}
		}
	}
	rec(0, size)
	return out
}

// fv computes F_V(phi): the largest disjunction of cubes over preds that
// implies phi (Section 4.1), as a boolean-program expression.
//
// The cube space is enumerated in sized rounds (Section 5.2,
// optimization 1) so pruning sees short implicants first, yielding prime
// implicants only. Within one round the candidate cubes are checked
// against the prover on a bounded worker pool (Options.Jobs wide): the
// superset pruning can never fire between two cubes of the same size
// (equal-size containment means equality, and enumeration never repeats
// a cube), so the recorded implicant/contradiction sets only change at
// round boundaries and the round's checks are order-independent. Results
// are merged back in canonical enumeration order, making the output
// byte-identical to the sequential scan for any worker count.
func (ab *Abstractor) fv(fn string, preds []Pred, phi form.Formula) bp.Expr {
	switch phi.(type) {
	case form.TrueF:
		return bp.Const{Val: true}
	case form.FalseF:
		return bp.Const{Val: false}
	}

	// Optimization 4 (syntactic heuristics): an exact predicate or negated
	// predicate match needs no prover calls.
	if ab.opts.SyntacticHeuristics {
		phiN := form.NNF(phi)
		for _, p := range preds {
			if form.FormulaEq(p.F, phi) || form.FormulaEq(form.NNF(p.F), phiN) {
				return bp.Ref{Name: p.Name}
			}
			if form.FormulaEq(p.Neg(), phiN) {
				return bp.Not{X: bp.Ref{Name: p.Name}}
			}
		}
	}

	// Optional precision tradeoff: distribute F through ∧ (lossless) and ∨
	// (lossy), operating on atomic pieces.
	if ab.opts.FOnAtoms {
		switch phi := phi.(type) {
		case form.And:
			out := bp.Expr(bp.Const{Val: true})
			for _, g := range phi.Fs {
				out = bp.MkAnd(out, ab.fv(fn, preds, g))
			}
			return out
		case form.Or:
			out := bp.Expr(bp.Const{Val: false})
			for _, g := range phi.Fs {
				out = bp.MkOr(out, ab.fv(fn, preds, g))
			}
			return out
		}
	}

	// Degraded fallback: once the procedure's cube budget is spent or the
	// run deadline has passed, F_V answers its weakest sound value. false
	// under-approximates every φ (Section 4.1 admits any
	// under-approximation), so assignments become choose(*,*) havoc,
	// assumes become assume(true), and asserts may report spurious
	// violations — precision is lost, soundness is not.
	if ab.degraded() {
		return bp.Const{Val: false}
	}

	// Engine dispatch: everything above (constant folding, syntactic
	// heuristics, FOnAtoms distribution, degraded fallback) is shared;
	// only the prover-backed search below differs between engines.
	if ab.useModels() {
		return ab.fvModels(fn, preds, phi)
	}

	// Everything below is prover-backed cube search; time it as one stage.
	searchStart := time.Now()
	searchSpan := ab.opts.Tracer.Begin("cube", "search")
	defer func() {
		ab.Stats.CubeSearchTime += time.Since(searchStart)
		searchSpan.End()
	}()

	// Degenerate goals: a valid phi needs no cubes at all, and an
	// unsatisfiable phi has none.
	if ab.pv.Valid(form.TrueF{}, phi) {
		return bp.Const{Val: true}
	}
	if ab.pv.Valid(phi, form.FalseF{}) {
		return bp.Const{Val: false}
	}

	// Optimization 3: cone of influence.
	domain := preds
	if ab.opts.ConeOfInfluence {
		domain = ab.cone(fn, preds, phi)
	}
	if len(domain) == 0 {
		return bp.Const{Val: false}
	}

	maxLen := ab.opts.MaxCubeLen
	if maxLen <= 0 || maxLen > len(domain) {
		maxLen = len(domain)
	}

	// Optimization 1: enumerate cubes by increasing length, pruning
	// supersets of accepted implicants (redundant) and of cubes that imply
	// ¬phi (can never imply phi consistently).
	notPhi := form.NNF(form.MkNot(phi))
	disjuncts := ab.fvRounds(domain, maxLen, func(cands [][]literal, verdicts []cubeVerdict) {
		checkRound(ab.opts.Tracer, len(cands), ab.jobs(), func(i int) {
			cubeF := cubeFormula(domain, cands[i])
			if ab.pv.Valid(cubeF, phi) {
				verdicts[i] = verdictImplicant
			} else if ab.pv.Valid(cubeF, notPhi) {
				verdicts[i] = verdictContradiction
			}
		})
	})
	return bp.OrAll(disjuncts)
}

// fvRounds runs the sized-round candidate enumeration shared by both
// abstraction engines: cubes by increasing length, superset pruning
// against accepted implicants and contradictions, the per-procedure
// cube budget, and the canonical-order merge. classify assigns a
// verdict to each candidate of one round — prover-backed for the cube
// engine, model-membership for the enumeration engine. Because the
// candidate generation, pruning and merge live here, the two engines
// produce byte-identical disjunct lists whenever classify agrees.
func (ab *Abstractor) fvRounds(domain []Pred, maxLen int,
	classify func(cands [][]literal, verdicts []cubeVerdict)) []bp.Expr {

	var implicants [][]literal
	var contradictions [][]literal
	var disjuncts []bp.Expr
	for size := 1; size <= maxLen; size++ {
		// A mid-search limit keeps the implicants found so far: each one
		// individually implies phi, so the partial disjunction is sound.
		if ab.degraded() {
			break
		}
		cands := enumerateCubes(len(domain), size, func(cube []literal) bool {
			return !supersetOfAny(cube, implicants) && !supersetOfAny(cube, contradictions)
		})
		cands = ab.takeCubes(cands)
		if len(cands) == 0 {
			continue
		}
		ab.Stats.CubesChecked += len(cands)
		ab.Stats.CubeRounds++
		roundSpan := ab.opts.Tracer.Begin("cube", "round")
		verdicts := make([]cubeVerdict, len(cands))
		classify(cands, verdicts)
		roundSpan.End(trace.Int("len", size), trace.Int("candidates", len(cands)))
		for i, v := range verdicts {
			switch v {
			case verdictImplicant:
				implicants = append(implicants, cands[i])
				disjuncts = append(disjuncts, cubeExpr(domain, cands[i]))
			case verdictContradiction:
				contradictions = append(contradictions, cands[i])
			}
		}
	}
	return disjuncts
}

// gv computes G_V(phi) = ¬F_V(¬phi): the strongest expressible formula
// implied by phi (Section 4.1). It inherits fv's parallelism and
// determinism guarantees.
func (ab *Abstractor) gv(fn string, preds []Pred, phi form.Formula) bp.Expr {
	inner := ab.fv(fn, preds, form.NNF(form.MkNot(phi)))
	return bpNot(inner)
}

func bpNot(e bp.Expr) bp.Expr { return bp.MkNot(e) }

// cubeFormula conjoins the cube's literals as a formula.
func cubeFormula(domain []Pred, cube []literal) form.Formula {
	fs := make([]form.Formula, len(cube))
	for i, l := range cube {
		if l.pos {
			fs[i] = domain[l.idx].F
		} else {
			fs[i] = domain[l.idx].Neg()
		}
	}
	return form.MkAnd(fs...)
}

// cubeExpr renders the cube as a boolean-program expression.
func cubeExpr(domain []Pred, cube []literal) bp.Expr {
	out := bp.Expr(bp.Const{Val: true})
	for _, l := range cube {
		var lit bp.Expr = bp.Ref{Name: domain[l.idx].Name}
		if !l.pos {
			lit = bp.Not{X: lit}
		}
		out = bp.MkAnd(out, lit)
	}
	return out
}

// supersetOfAny reports whether cube contains some recorded cube as a
// (signed) subset.
func supersetOfAny(cube []literal, recorded [][]literal) bool {
	for _, rec := range recorded {
		if containsAll(cube, rec) {
			return true
		}
	}
	return false
}

func containsAll(cube, sub []literal) bool {
	for _, l := range sub {
		found := false
		for _, c := range cube {
			if c == l {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// cone restricts the predicate domain to those that can possibly be part
// of a cube implying phi: predicates mentioning a location of phi or an
// alias of one, iterated to a fixpoint (Section 5.2, optimization 3).
func (ab *Abstractor) cone(fn string, preds []Pred, phi form.Formula) []Pred {
	locs := form.ReadLocations(phi)
	included := make([]bool, len(preds))
	changed := true
	for changed {
		changed = false
		for i, p := range preds {
			if included[i] {
				continue
			}
			if ab.predTouches(fn, p, locs) {
				included[i] = true
				changed = true
				locs = append(locs, form.ReadLocations(p.F)...)
			}
		}
	}
	var out []Pred
	for i, p := range preds {
		if included[i] {
			out = append(out, p)
		}
	}
	return out
}

// predTouches reports whether the predicate mentions one of the locations
// or a may-alias of one.
func (ab *Abstractor) predTouches(fn string, p Pred, locs []form.Term) bool {
	for _, pl := range form.ReadLocations(p.F) {
		for _, l := range locs {
			if form.TermEq(pl, l) || ab.aa.MayAlias(fn, pl, l) {
				return true
			}
		}
	}
	return false
}

// enforceExpr computes the per-procedure data invariant ¬F_{V}(false)
// (Section 5.1): F_V(false) is the disjunction of minimal inconsistent
// cubes over the predicates, which the enforce statement rules out. The
// rounds run on the same worker pool as fv with the same deterministic
// merge.
func (ab *Abstractor) enforceExpr(fn string, preds []Pred) bp.Expr {
	// A degraded procedure emits no (or a partial) enforce invariant.
	// Every cube the search did record is genuinely unsatisfiable, so a
	// partial disjunction only prunes impossible states — sound; pruning
	// fewer states than the full invariant merely loses precision.
	if ab.degraded() {
		return nil
	}
	searchStart := time.Now()
	searchSpan := ab.opts.Tracer.Begin("cube", "enforce")
	defer func() {
		ab.Stats.CubeSearchTime += time.Since(searchStart)
		searchSpan.End()
	}()

	maxLen := ab.opts.MaxCubeLen
	if maxLen <= 0 || maxLen > len(preds) {
		maxLen = len(preds)
	}
	if len(preds) == 0 {
		return nil
	}
	// Engine dispatch, mirroring fv: the model engine replaces the
	// per-candidate Unsat queries with one consistent-minterm
	// enumeration per scope, then replays the identical rounds below
	// with membership verdicts. The guard keeps tiny scopes on the cube
	// path, where enumerating every minterm costs more checks than the
	// handful of candidate queries it would replace — both paths compute
	// the same verdicts, so the emitted invariant does not depend on the
	// choice.
	if ab.useModels() && enforceEnumWins(len(preds), maxLen) {
		return ab.enforceModels(preds, maxLen)
	}
	return ab.enforceRounds(preds, maxLen, func(cands [][]literal, verdicts []cubeVerdict) {
		checkRound(ab.opts.Tracer, len(cands), ab.jobs(), func(i int) {
			if ab.pv.Unsat(cubeFormula(preds, cands[i])) {
				verdicts[i] = verdictContradiction
			}
		})
	})
}

// enforceEnumWins reports whether minterm enumeration can beat the
// per-candidate search on a scope of n predicates: its worst case is
// every minterm consistent (2^n sat checks plus the closing unsat),
// while the cube engine's worst case is one query per candidate with no
// pruning. When the enumeration's worst case is not strictly smaller —
// n == 1, or large n against the maxLen-bounded candidate count — the
// cube path preserves the model engine's never-more-queries guarantee.
func enforceEnumWins(n, maxLen int) bool {
	if n >= 30 {
		return false // 2^n dwarfs any candidate count long before here
	}
	enumWorst := int64(1)<<uint(n) + 1
	candWorst := int64(0)
	// Σ_{k=1..maxLen} C(n,k)·2^k, accumulated incrementally.
	binom := int64(1)
	for k := 1; k <= maxLen && k <= n; k++ {
		binom = binom * int64(n-k+1) / int64(k)
		candWorst += binom << uint(k)
		if candWorst >= enumWorst {
			return true
		}
	}
	return enumWorst < candWorst
}

// enforceRounds is the sized-round skeleton of the enforce search,
// shared by both engines so the emitted invariant is byte-identical:
// candidate enumeration order, superset pruning against already-found
// inconsistent cubes, cube-budget accounting and the collection order
// depend only on the verdicts, never on which engine produced them.
func (ab *Abstractor) enforceRounds(preds []Pred, maxLen int, classify func(cands [][]literal, verdicts []cubeVerdict)) bp.Expr {
	var found [][]literal
	var disjuncts []bp.Expr
	for size := 1; size <= maxLen; size++ {
		if ab.degraded() {
			break
		}
		cands := enumerateCubes(len(preds), size, func(cube []literal) bool {
			return !supersetOfAny(cube, found)
		})
		cands = ab.takeCubes(cands)
		if len(cands) == 0 {
			continue
		}
		ab.Stats.CubesChecked += len(cands)
		ab.Stats.CubeRounds++
		roundSpan := ab.opts.Tracer.Begin("cube", "round")
		verdicts := make([]cubeVerdict, len(cands))
		classify(cands, verdicts)
		roundSpan.End(trace.Int("len", size), trace.Int("candidates", len(cands)))
		for i, v := range verdicts {
			if v == verdictContradiction {
				found = append(found, cands[i])
				disjuncts = append(disjuncts, cubeExpr(preds, cands[i]))
			}
		}
	}
	if len(disjuncts) == 0 {
		return nil
	}
	return bp.MkNot(bp.OrAll(disjuncts))
}
