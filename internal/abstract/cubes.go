package abstract

import (
	"predabs/internal/bp"
	"predabs/internal/form"
)

// Pred pairs a boolean-variable name with the C predicate it stands for.
type Pred struct {
	// Name is the boolean program variable name (the predicate's source
	// text, e.g. "curr->val > v").
	Name string
	// F is the predicate as a formula.
	F form.Formula
	// neg caches NNF(¬F).
	neg form.Formula
}

// NewPred builds a predicate entry.
func NewPred(name string, f form.Formula) Pred {
	return Pred{Name: name, F: f, neg: form.NNF(form.MkNot(f))}
}

// Neg returns NNF(¬F).
func (p Pred) Neg() form.Formula {
	if p.neg == nil {
		return form.NNF(form.MkNot(p.F))
	}
	return p.neg
}

// literal is one signed predicate occurrence in a cube.
type literal struct {
	idx int
	pos bool
}

// fv computes F_V(phi): the largest disjunction of cubes over preds that
// implies phi (Section 4.1), as a boolean-program expression. hyp is an
// extra hypothesis conjoined to every cube (used to thread the enforce
// invariant through signatures); it may be nil.
func (ab *Abstractor) fv(fn string, preds []Pred, phi form.Formula) bp.Expr {
	switch phi.(type) {
	case form.TrueF:
		return bp.Const{Val: true}
	case form.FalseF:
		return bp.Const{Val: false}
	}

	// Optimization 4 (syntactic heuristics): an exact predicate or negated
	// predicate match needs no prover calls.
	if ab.opts.SyntacticHeuristics {
		phiN := form.NNF(phi)
		for _, p := range preds {
			if form.FormulaEq(p.F, phi) || form.FormulaEq(form.NNF(p.F), phiN) {
				return bp.Ref{Name: p.Name}
			}
			if form.FormulaEq(p.Neg(), phiN) {
				return bp.Not{X: bp.Ref{Name: p.Name}}
			}
		}
	}

	// Optional precision tradeoff: distribute F through ∧ (lossless) and ∨
	// (lossy), operating on atomic pieces.
	if ab.opts.FOnAtoms {
		switch phi := phi.(type) {
		case form.And:
			out := bp.Expr(bp.Const{Val: true})
			for _, g := range phi.Fs {
				out = bp.MkAnd(out, ab.fv(fn, preds, g))
			}
			return out
		case form.Or:
			out := bp.Expr(bp.Const{Val: false})
			for _, g := range phi.Fs {
				out = bp.MkOr(out, ab.fv(fn, preds, g))
			}
			return out
		}
	}

	// Degenerate goals: a valid phi needs no cubes at all, and an
	// unsatisfiable phi has none.
	if ab.pv.Valid(form.TrueF{}, phi) {
		return bp.Const{Val: true}
	}
	if ab.pv.Valid(phi, form.FalseF{}) {
		return bp.Const{Val: false}
	}

	// Optimization 3: cone of influence.
	domain := preds
	if ab.opts.ConeOfInfluence {
		domain = ab.cone(fn, preds, phi)
	}
	if len(domain) == 0 {
		return bp.Const{Val: false}
	}

	maxLen := ab.opts.MaxCubeLen
	if maxLen <= 0 || maxLen > len(domain) {
		maxLen = len(domain)
	}

	// Optimization 1: enumerate cubes by increasing length, pruning
	// supersets of accepted implicants (redundant) and of cubes that imply
	// ¬phi (can never imply phi consistently).
	var implicants [][]literal
	var contradictions [][]literal
	var disjuncts []bp.Expr
	notPhi := form.NNF(form.MkNot(phi))

	var cube []literal

	// Sized rounds: all cubes of length 1, then 2, ... so pruning sees
	// short implicants first (prime implicants only).
	for size := 1; size <= maxLen; size++ {
		var enumerateExact func(start int, need int)
		enumerateExact = func(start, need int) {
			if need == 0 {
				if supersetOfAny(cube, implicants) || supersetOfAny(cube, contradictions) {
					return
				}
				cubeF := cubeFormula(domain, cube)
				ab.Stats.CubesChecked++
				if ab.pv.Valid(cubeF, phi) {
					c := append([]literal(nil), cube...)
					implicants = append(implicants, c)
					disjuncts = append(disjuncts, cubeExpr(domain, cube))
					return
				}
				if ab.pv.Valid(cubeF, notPhi) {
					c := append([]literal(nil), cube...)
					contradictions = append(contradictions, c)
				}
				return
			}
			for i := start; i <= len(domain)-need; i++ {
				for _, pos := range []bool{true, false} {
					cube = append(cube, literal{idx: i, pos: pos})
					enumerateExact(i+1, need-1)
					cube = cube[:len(cube)-1]
				}
			}
		}
		enumerateExact(0, size)
	}
	return bp.OrAll(disjuncts)
}

// gv computes G_V(phi) = ¬F_V(¬phi): the strongest expressible formula
// implied by phi.
func (ab *Abstractor) gv(fn string, preds []Pred, phi form.Formula) bp.Expr {
	inner := ab.fv(fn, preds, form.NNF(form.MkNot(phi)))
	return bpNot(inner)
}

func bpNot(e bp.Expr) bp.Expr { return bp.MkNot(e) }

// cubeFormula conjoins the cube's literals as a formula.
func cubeFormula(domain []Pred, cube []literal) form.Formula {
	fs := make([]form.Formula, len(cube))
	for i, l := range cube {
		if l.pos {
			fs[i] = domain[l.idx].F
		} else {
			fs[i] = domain[l.idx].Neg()
		}
	}
	return form.MkAnd(fs...)
}

// cubeExpr renders the cube as a boolean-program expression.
func cubeExpr(domain []Pred, cube []literal) bp.Expr {
	out := bp.Expr(bp.Const{Val: true})
	for _, l := range cube {
		var lit bp.Expr = bp.Ref{Name: domain[l.idx].Name}
		if !l.pos {
			lit = bp.Not{X: lit}
		}
		out = bp.MkAnd(out, lit)
	}
	return out
}

// supersetOfAny reports whether cube contains some recorded cube as a
// (signed) subset.
func supersetOfAny(cube []literal, recorded [][]literal) bool {
	for _, rec := range recorded {
		if containsAll(cube, rec) {
			return true
		}
	}
	return false
}

func containsAll(cube, sub []literal) bool {
	for _, l := range sub {
		found := false
		for _, c := range cube {
			if c == l {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// cone restricts the predicate domain to those that can possibly be part
// of a cube implying phi: predicates mentioning a location of phi or an
// alias of one, iterated to a fixpoint (Section 5.2, optimization 3).
func (ab *Abstractor) cone(fn string, preds []Pred, phi form.Formula) []Pred {
	locs := form.ReadLocations(phi)
	included := make([]bool, len(preds))
	changed := true
	for changed {
		changed = false
		for i, p := range preds {
			if included[i] {
				continue
			}
			if ab.predTouches(fn, p, locs) {
				included[i] = true
				changed = true
				locs = append(locs, form.ReadLocations(p.F)...)
			}
		}
	}
	var out []Pred
	for i, p := range preds {
		if included[i] {
			out = append(out, p)
		}
	}
	return out
}

// predTouches reports whether the predicate mentions one of the locations
// or a may-alias of one.
func (ab *Abstractor) predTouches(fn string, p Pred, locs []form.Term) bool {
	for _, pl := range form.ReadLocations(p.F) {
		for _, l := range locs {
			if form.TermEq(pl, l) || ab.aa.MayAlias(fn, pl, l) {
				return true
			}
		}
	}
	return false
}

// enforceExpr computes the per-procedure data invariant ¬F_{V}(false)
// (Section 5.1): F_V(false) is the disjunction of minimal inconsistent
// cubes over the predicates, which the enforce statement rules out.
func (ab *Abstractor) enforceExpr(fn string, preds []Pred) bp.Expr {
	maxLen := ab.opts.MaxCubeLen
	if maxLen <= 0 || maxLen > len(preds) {
		maxLen = len(preds)
	}
	var found [][]literal
	var disjuncts []bp.Expr
	var cube []literal
	for size := 1; size <= maxLen; size++ {
		var enumerate func(start, need int)
		enumerate = func(start, need int) {
			if need == 0 {
				if supersetOfAny(cube, found) {
					return
				}
				ab.Stats.CubesChecked++
				if ab.pv.Unsat(cubeFormula(preds, cube)) {
					c := append([]literal(nil), cube...)
					found = append(found, c)
					disjuncts = append(disjuncts, cubeExpr(preds, cube))
				}
				return
			}
			for i := start; i <= len(preds)-need; i++ {
				for _, pos := range []bool{true, false} {
					cube = append(cube, literal{idx: i, pos: pos})
					enumerate(i+1, need-1)
					cube = cube[:len(cube)-1]
				}
			}
		}
		enumerate(0, size)
	}
	if len(disjuncts) == 0 {
		return nil
	}
	return bp.MkNot(bp.OrAll(disjuncts))
}
