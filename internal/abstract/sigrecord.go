package abstract

// SigRecord is the canonical serialized form of one procedure's
// signature (E_f, E_r): predicate names in predicate-file order, exactly
// as they become the boolean procedure's parameters and return values.
// internal/checkpoint journals these per CEGAR iteration, and a golden
// test pins the serialization so the checkpoint compatibility story
// survives refactors of the Signature computation.
type SigRecord struct {
	Proc string   `json:"proc"`
	Ef   []string `json:"ef,omitempty"`
	Er   []string `json:"er,omitempty"`
}

// SignatureRecords serializes the signature map in canonical order: one
// record per procedure, following procOrder (program order — the order
// slam and c2bp see res.Prog.Funcs). Procedures missing from sigs are
// skipped; predicate order within a record is the signature's own
// (predicate-file) order.
func SignatureRecords(sigs map[string]*Signature, procOrder []string) []SigRecord {
	out := make([]SigRecord, 0, len(procOrder))
	for _, proc := range procOrder {
		sig := sigs[proc]
		if sig == nil {
			continue
		}
		rec := SigRecord{Proc: proc}
		for _, p := range sig.Ef {
			rec.Ef = append(rec.Ef, p.Name)
		}
		for _, p := range sig.Er {
			rec.Er = append(rec.Er, p.Name)
		}
		out = append(out, rec)
	}
	return out
}
