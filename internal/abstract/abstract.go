// Package abstract implements C2bp, the paper's predicate-abstraction
// tool: given a MiniC program P and a set E of predicates, it constructs
// the boolean program BP(P,E) with identical control structure, one
// boolean variable per predicate, and conservative boolean transfer
// functions computed with weakest preconditions, alias-pruned Morris case
// splits, and theorem-prover-backed cube search (Sections 4 and 5).
package abstract

import (
	"fmt"
	"strings"
	"time"

	"predabs/internal/alias"
	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/cast"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/form"
	"predabs/internal/prover"
	"predabs/internal/trace"
	"predabs/internal/wp"
)

// Options are the precision/efficiency knobs from Section 5.2, plus the
// parallelism knob for the prover-backed cube search.
type Options struct {
	// MaxCubeLen bounds cube length in the F computation (paper: k=3
	// "provides the needed precision in most cases"). <= 0 means
	// unlimited.
	MaxCubeLen int
	// ConeOfInfluence restricts cube domains syntactically (opt. 3).
	ConeOfInfluence bool
	// SyntacticHeuristics matches predicates textually before calling the
	// prover (opt. 4).
	SyntacticHeuristics bool
	// SkipUnchanged leaves variables whose WP is unchanged alone (opt. 2).
	SkipUnchanged bool
	// FOnAtoms distributes F through ∧/∨ (precision tradeoff).
	FOnAtoms bool
	// EmitEnforce computes per-procedure enforce invariants (Section 5.1).
	EmitEnforce bool
	// Jobs bounds the worker pool for the parallel cube search (the
	// paper's dominant cost, Section 4.1). <= 0 means GOMAXPROCS; 1
	// restores the strictly sequential scan. The boolean-program output
	// is byte-identical for every value.
	Jobs int
	// Tracer receives structured events (per-procedure spans, cube-search
	// rounds, worker lanes). nil disables tracing at zero cost. A pointer
	// keeps Options comparable.
	Tracer *trace.Tracer
	// CubeBudget caps the cube candidates submitted to the prover per
	// procedure. Once spent, the procedure's remaining transfer functions
	// degrade soundly: F_V answers false, so assignments become the
	// trivially sound choose(*,*) havoc and assumes become assume(true).
	// The budget is consumed by truncating candidate lists in canonical
	// enumeration order, so the (weaker) output stays byte-identical for
	// every Jobs value. <= 0 means unlimited.
	CubeBudget int
	// Budget, when non-nil, carries the run deadline/cancellation and the
	// degradation log (internal/budget). A cancelled run degrades every
	// remaining procedure the same sound way the cube budget does. A
	// pointer keeps Options comparable.
	Budget *budget.Tracker
	// Engine selects the prover-backed F_V search: EngineCubes (or "")
	// enumerates candidate cubes with one Valid query each (the paper's
	// Section 4.1 loop); EngineModels enumerates prover models of the WP
	// query and classifies the same candidate cubes by membership, which
	// needs far fewer prover interactions on predicate-rich procedures.
	// Both engines emit byte-identical boolean programs on non-degraded
	// runs. EngineModels requires a prover with incremental sessions
	// (*prover.Prover); other Queriers silently use the cube engine.
	Engine string
}

// Engine names for Options.Engine (the -abs-engine CLI flag).
const (
	// EngineCubes is the paper's per-cube Valid query search (default).
	EngineCubes = "cubes"
	// EngineModels is the incremental model-enumeration search.
	EngineModels = "models"
)

// ValidEngine reports whether s names a known abstraction engine
// ("" means the default, EngineCubes).
func ValidEngine(s string) bool {
	return s == "" || s == EngineCubes || s == EngineModels
}

// DefaultOptions returns the configuration used in the paper's
// experiments.
func DefaultOptions() Options {
	return Options{
		MaxCubeLen:          3,
		ConeOfInfluence:     true,
		SyntacticHeuristics: true,
		SkipUnchanged:       true,
		EmitEnforce:         true,
	}
}

// Stats accumulates abstraction metrics (the paper's Tables 1 and 2
// columns come from here plus prover.Prover.Calls) and per-stage wall
// times for the -stats observability surface of cmd/c2bp and cmd/slam.
type Stats struct {
	// CubesChecked counts cube implication candidates submitted to the
	// prover-backed search (after superset pruning).
	CubesChecked int
	// CubeRounds counts prover-backed search rounds (one per cube size
	// that produced candidates, across every F_V/G_V/enforce invocation).
	CubeRounds int
	// Assignments, Calls and Conditionals count translated C statements.
	Assignments  int
	Calls        int
	Conditionals int

	// SignatureTime is the wall time of the first pass computing every
	// procedure's (E_f, E_r) signature (Section 4.5.2).
	SignatureTime time.Duration
	// CubeSearchTime is the cumulative wall time of the prover-backed
	// cube search (F_V/G_V rounds plus enforce invariants) — the cost the
	// paper's optimizations 1-5 attack.
	CubeSearchTime time.Duration
	// ProcTimes records the wall time spent abstracting each procedure,
	// in program order.
	ProcTimes []ProcTime
	// ProcCubes records per-procedure cube-search activity (rounds and
	// candidate cubes), in program order.
	ProcCubes []ProcCubeStat

	// DegradedProcs names the procedures whose abstraction hit the cube
	// budget or the run deadline (their remaining transfer functions are
	// the trivially sound fallback), in program order.
	DegradedProcs []string
}

// ProcTime is the abstraction wall time of one procedure.
type ProcTime struct {
	Name string
	D    time.Duration
}

// ProcCubeStat is the cube-search activity of one procedure's
// abstraction.
type ProcCubeStat struct {
	Name   string
	Rounds int
	Cubes  int
}

// Signature is the paper's four-tuple (F_R, r, E_f, E_r) restricted to
// the predicate parts (formals and return variable live in the normalized
// program).
type Signature struct {
	// Ef are the formal-parameter predicates, in predicate-file order;
	// they become the boolean procedure's parameters.
	Ef []Pred
	// Er are the return predicates; the boolean procedure returns one
	// boolean per entry.
	Er []Pred
}

// Result is the output of Abstract.
type Result struct {
	BP    *bp.Program
	Sigs  map[string]*Signature
	Stats Stats
	// GlobalPreds and LocalPreds echo the parsed predicate scoping.
	GlobalPreds []Pred
	LocalPreds  map[string][]Pred
}

// Abstractor holds the state of one abstraction run. It is not safe for
// concurrent use — the cube search spawns its own worker goroutines
// internally (Options.Jobs), and they share only the concurrency-safe
// Prover; all Abstractor state is mutated by the single coordinating
// goroutine.
type Abstractor struct {
	res  *cnorm.Result
	aa   *alias.Analysis
	pv   prover.Querier
	opts Options

	// Per-procedure degradation state (reset by beginProc). cubesUsed
	// counts upward against opts.CubeBudget so that a zero-value
	// Abstractor (unit tests drive fv directly) is unlimited.
	curProc      string
	cubesUsed    int
	procDegraded bool
	degradeLimit string

	globalPreds []Pred
	localPreds  map[string][]Pred
	sigs        map[string]*Signature
	// modifiedFormals[fn] holds formals (re)assigned inside fn, which are
	// excluded from return predicates (footnote 4).
	modifiedFormals map[string]map[string]bool

	Stats Stats
}

// GlobalScope is the section name for global predicates in predicate
// input files.
const GlobalScope = "global"

// Abstract runs C2bp. The predicate sections use procedure names or
// "global" as scope names. pv is usually a *prover.Prover; any Querier
// honoring the prover soundness contract (e.g. a fault-injecting
// wrapper) yields a sound, if possibly weaker, abstraction.
func Abstract(res *cnorm.Result, aa *alias.Analysis, pv prover.Querier,
	sections []cparse.PredSection, opts Options) (*Result, error) {

	ab := &Abstractor{
		res:             res,
		aa:              aa,
		pv:              pv,
		opts:            opts,
		localPreds:      map[string][]Pred{},
		sigs:            map[string]*Signature{},
		modifiedFormals: map[string]map[string]bool{},
	}
	tracer := opts.Tracer
	runSpan := tracer.Begin("abstract", "run")
	defer runSpan.End()
	if err := ab.loadPredicates(sections); err != nil {
		return nil, err
	}
	nPreds := len(ab.globalPreds)
	for _, ps := range ab.localPreds {
		nPreds += len(ps)
	}
	tracer.Event("abstract", "predicates", trace.Int("count", nPreds))
	ab.computeModifiedFormals()
	// First pass: signatures (each procedure in isolation, Section 4.5.2).
	sigStart := time.Now()
	sigSpan := tracer.Begin("abstract", "signatures")
	for _, f := range res.Prog.Funcs {
		ab.sigs[f.Name] = ab.signature(f)
	}
	sigSpan.End()
	ab.Stats.SignatureTime = time.Since(sigStart)
	// Second pass: abstract each procedure.
	prog := &bp.Program{}
	for _, p := range ab.globalPreds {
		prog.Globals = append(prog.Globals, p.Name)
	}
	for _, f := range res.Prog.Funcs {
		procStart := time.Now()
		procSpan := tracer.Begin("abstract", "proc")
		rounds0, cubes0 := ab.Stats.CubeRounds, ab.Stats.CubesChecked
		pr, err := ab.abstractProc(f)
		if err != nil {
			return nil, err
		}
		rounds, cubes := ab.Stats.CubeRounds-rounds0, ab.Stats.CubesChecked-cubes0
		procSpan.End(trace.Str("proc", f.Name),
			trace.Int("rounds", rounds), trace.Int("cubes", cubes))
		ab.Stats.ProcCubes = append(ab.Stats.ProcCubes,
			ProcCubeStat{Name: f.Name, Rounds: rounds, Cubes: cubes})
		ab.Stats.ProcTimes = append(ab.Stats.ProcTimes,
			ProcTime{Name: f.Name, D: time.Since(procStart)})
		prog.Procs = append(prog.Procs, pr)
	}
	if err := prog.Resolve(); err != nil {
		return nil, fmt.Errorf("abstract: generated boolean program invalid: %w", err)
	}
	return &Result{
		BP:          prog,
		Sigs:        ab.sigs,
		Stats:       ab.Stats,
		GlobalPreds: ab.globalPreds,
		LocalPreds:  ab.localPreds,
	}, nil
}

func (ab *Abstractor) loadPredicates(sections []cparse.PredSection) error {
	seen := map[string]map[string]bool{}
	for _, sec := range sections {
		if sec.Name != GlobalScope && ab.res.Prog.Func(sec.Name) == nil {
			return fmt.Errorf("abstract: predicate section for unknown procedure %q", sec.Name)
		}
		if seen[sec.Name] == nil {
			seen[sec.Name] = map[string]bool{}
		}
		for i, e := range sec.Exprs {
			f, err := form.FromCond(e)
			if err != nil {
				return fmt.Errorf("abstract: %s: bad predicate %q: %v", sec.Name, sec.Texts[i], err)
			}
			name := sec.Texts[i]
			if seen[sec.Name][name] {
				return fmt.Errorf("abstract: %s: duplicate predicate %q", sec.Name, name)
			}
			seen[sec.Name][name] = true
			p := NewPred(name, f)
			if sec.Name == GlobalScope {
				for _, v := range form.FormulaVars(f) {
					if _, isG := ab.res.Info.GlobalVars[v]; !isG {
						return fmt.Errorf("abstract: global predicate %q mentions non-global %q", name, v)
					}
				}
				ab.globalPreds = append(ab.globalPreds, p)
			} else {
				ab.localPreds[sec.Name] = append(ab.localPreds[sec.Name], p)
			}
		}
	}
	return nil
}

// computeModifiedFormals finds formal parameters whose value may change
// during the procedure (direct assignment or address taken).
func (ab *Abstractor) computeModifiedFormals() {
	for _, f := range ab.res.Prog.Funcs {
		mod := map[string]bool{}
		for _, p := range f.Params {
			if ab.aa.AddressTaken(f.Name, p.Name) {
				mod[p.Name] = true
			}
		}
		var walk func(s cast.Stmt)
		walk = func(s cast.Stmt) {
			switch s := s.(type) {
			case *cast.Block:
				for _, sub := range s.Stmts {
					walk(sub)
				}
			case *cast.AssignStmt:
				if v, ok := s.Lhs.(*cast.VarRef); ok {
					for _, p := range f.Params {
						if p.Name == v.Name {
							mod[v.Name] = true
						}
					}
				}
			case *cast.IfStmt:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *cast.WhileStmt:
				walk(s.Body)
			case *cast.LabeledStmt:
				walk(s.Stmt)
			}
		}
		walk(f.Body)
		ab.modifiedFormals[f.Name] = mod
	}
}

// signature computes (E_f, E_r) for a procedure per Section 4.5.2.
func (ab *Abstractor) signature(f *cast.FuncDef) *Signature {
	sig := &Signature{}
	preds := ab.localPreds[f.Name]
	formals := map[string]bool{}
	for _, p := range f.Params {
		formals[p.Name] = true
	}
	locals := map[string]bool{}
	for v := range ab.res.Info.FuncVars[f.Name] {
		if !formals[v] {
			locals[v] = true
		}
	}
	retVar := ab.res.RetVar[f.Name]
	mod := ab.modifiedFormals[f.Name]

	isGlobalVar := func(v string) bool {
		_, ok := ab.res.Info.GlobalVars[v]
		return ok && !formals[v] && !locals[v]
	}

	for _, p := range preds {
		vars := form.FormulaVars(p.F)
		mentionsLocal := false
		for _, v := range vars {
			if locals[v] {
				mentionsLocal = true
			}
		}
		if !mentionsLocal {
			sig.Ef = append(sig.Ef, p)
		}
	}

	inEf := map[string]bool{}
	for _, p := range sig.Ef {
		inEf[p.Name] = true
	}

	for _, p := range preds {
		vars := form.FormulaVars(p.F)
		// Footnote 4: drop predicates mentioning modified formals.
		usesModified := false
		for _, v := range vars {
			if mod[v] {
				usesModified = true
			}
		}
		if usesModified {
			continue
		}
		// Clause 1: mentions r and no other locals.
		if retVar != "" {
			mentionsRet := false
			otherLocal := false
			for _, v := range vars {
				if v == retVar {
					mentionsRet = true
				} else if locals[v] {
					otherLocal = true
				}
			}
			if mentionsRet && !otherLocal {
				sig.Er = append(sig.Er, p)
				continue
			}
		}
		// Clause 2: in E_f and references a global or dereferences a
		// formal.
		if inEf[p.Name] {
			hasGlobal := false
			for _, v := range vars {
				if isGlobalVar(v) {
					hasGlobal = true
				}
			}
			derefsFormal := false
			for _, v := range derefedVars(p.F) {
				if formals[v] {
					derefsFormal = true
				}
			}
			if hasGlobal || derefsFormal {
				sig.Er = append(sig.Er, p)
			}
		}
	}
	return sig
}

// derefedVars returns the variables dereferenced in the formula (pointer
// bases of *, ->, []).
func derefedVars(f form.Formula) []string {
	set := map[string]bool{}
	for _, loc := range form.ReadLocations(f) {
		switch loc := loc.(type) {
		case form.Deref:
			if v, ok := loc.X.(form.Var); ok {
				set[v.Name] = true
			}
		case form.Sel:
			if d, ok := loc.X.(form.Deref); ok {
				if v, ok := d.X.(form.Var); ok {
					set[v.Name] = true
				}
			}
		case form.Idx:
			if v, ok := loc.X.(form.Var); ok {
				set[v.Name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return out
}

// BranchOrigin tags the assume statements generated for conditionals so
// Newton can recover which branch a counterexample took.
type BranchOrigin struct {
	Stmt cast.Stmt
	Then bool
}

// OriginStmt exposes the underlying C statement uniformly (used by
// origin-based statement lookups in the model checker).
func (b BranchOrigin) OriginStmt() any { return b.Stmt }

// fnOracle adapts the whole-program alias analysis to wp's per-function
// oracle interface.
type fnOracle struct {
	aa *alias.Analysis
	fn string
}

func (o fnOracle) MayAlias(x, y form.Term) bool { return o.aa.MayAlias(o.fn, x, y) }

// translator holds per-procedure translation state.
type translator struct {
	ab     *Abstractor
	f      *cast.FuncDef
	sig    *Signature
	scope  []Pred // globals + locals of f (cube-search domain)
	oracle fnOracle

	stmts         []*bp.Stmt
	pendingLabels []string
	extraLocals   []string
	tempN         int
	labelN        int
}

// beginProc resets the per-procedure degradation state: each procedure
// gets a fresh cube budget, so one pathological procedure cannot starve
// the rest of the program of precision.
func (ab *Abstractor) beginProc(name string) {
	ab.curProc = name
	ab.procDegraded = false
	ab.degradeLimit = ""
	ab.cubesUsed = 0
}

// degraded reports whether the current procedure's prover-backed search
// has degraded, folding in a run cancellation first. Called only from
// the coordinating goroutine (never from cube workers).
func (ab *Abstractor) degraded() bool {
	if !ab.procDegraded && ab.opts.Budget.Cancelled() {
		ab.markDegraded(budget.LimitDeadline)
	}
	return ab.procDegraded
}

func (ab *Abstractor) markDegraded(limit string) {
	if !ab.procDegraded {
		ab.procDegraded = true
		ab.degradeLimit = limit
	}
}

// takeCubes spends the procedure's cube budget on a canonical candidate
// list, truncating it (in enumeration order, so partial output is
// byte-identical for every worker count) and marking the procedure
// degraded when the budget runs dry.
func (ab *Abstractor) takeCubes(cands [][]literal) [][]literal {
	limit := ab.opts.CubeBudget
	if limit <= 0 {
		return cands
	}
	left := limit - ab.cubesUsed
	if len(cands) <= left {
		ab.cubesUsed += len(cands)
		return cands
	}
	if left < 0 {
		left = 0
	}
	cands = cands[:left]
	ab.cubesUsed = limit
	ab.markDegraded(budget.LimitCubeBudget)
	return cands
}

func (ab *Abstractor) abstractProc(f *cast.FuncDef) (*bp.Proc, error) {
	sig := ab.sigs[f.Name]
	ab.beginProc(f.Name)
	defer func() {
		if ab.procDegraded {
			ab.Stats.DegradedProcs = append(ab.Stats.DegradedProcs, f.Name)
			ab.opts.Budget.Degrade("abstract", ab.degradeLimit, "proc "+f.Name)
		}
	}()
	tr := &translator{
		ab:     ab,
		f:      f,
		sig:    sig,
		oracle: fnOracle{aa: ab.aa, fn: f.Name},
	}
	tr.scope = append(tr.scope, ab.globalPreds...)
	tr.scope = append(tr.scope, ab.localPreds[f.Name]...)

	tr.block(f.Body)
	// Final return (paper form: procedures end with return of E_r).
	tr.emitReturn()

	pr := &bp.Proc{Name: f.Name, NRet: len(sig.Er)}
	inEf := map[string]bool{}
	for _, p := range sig.Ef {
		pr.Params = append(pr.Params, p.Name)
		inEf[p.Name] = true
	}
	for _, p := range ab.localPreds[f.Name] {
		if !inEf[p.Name] {
			pr.Locals = append(pr.Locals, p.Name)
		}
	}
	pr.Locals = append(pr.Locals, tr.extraLocals...)
	if ab.opts.EmitEnforce {
		pr.Enforce = ab.enforceExpr(f.Name, tr.scope)
	}
	pr.Stmts = tr.stmts
	return pr, nil
}

func (tr *translator) emit(s *bp.Stmt) {
	s.Labels = append(tr.pendingLabels, s.Labels...)
	tr.pendingLabels = nil
	tr.stmts = append(tr.stmts, s)
}

func (tr *translator) freshTemp() string {
	tr.tempN++
	name := fmt.Sprintf("t$%d", tr.tempN)
	tr.extraLocals = append(tr.extraLocals, name)
	return name
}

func (tr *translator) freshLabel() string {
	tr.labelN++
	return fmt.Sprintf("$A%d", tr.labelN)
}

// emitReturn emits the procedure's return of its E_r predicate values.
// Duplicate trailing returns are harmless (unreachable).
func (tr *translator) emitReturn() {
	if len(tr.stmts) > 0 && len(tr.pendingLabels) == 0 &&
		tr.stmts[len(tr.stmts)-1].Kind == bp.Return {
		return
	}
	tr.emit(tr.returnStmt(nil))
}

func (tr *translator) returnStmt(origin cast.Stmt) *bp.Stmt {
	vals := make([]bp.Expr, len(tr.sig.Er))
	for i, p := range tr.sig.Er {
		vals[i] = bp.Ref{Name: p.Name}
	}
	s := &bp.Stmt{Kind: bp.Return, RetVals: vals}
	if origin != nil {
		s.Origin = origin
	}
	return s
}

func (tr *translator) block(b *cast.Block) {
	for _, s := range b.Stmts {
		tr.stmt(s)
	}
}

func (tr *translator) stmt(s cast.Stmt) {
	switch s := s.(type) {
	case *cast.Block:
		tr.block(s)
	case *cast.DeclStmt:
		// Declarations carry no transfer function.
	case *cast.EmptyStmt:
		if len(tr.pendingLabels) > 0 {
			tr.emit(&bp.Stmt{Kind: bp.Skip, Origin: s})
		}
	case *cast.LabeledStmt:
		tr.pendingLabels = append(tr.pendingLabels, s.Label)
		tr.stmt(s.Stmt)
		if len(tr.pendingLabels) > 0 {
			// Label on an empty tail: pin it to a skip.
			tr.emit(&bp.Stmt{Kind: bp.Skip, Origin: s})
		}
	case *cast.GotoStmt:
		tr.emit(&bp.Stmt{Kind: bp.Goto, Targets: []string{s.Label}, Origin: s})
	case *cast.AssignStmt:
		if call, ok := s.Rhs.(*cast.Call); ok {
			tr.call(s, s.Lhs, call)
			return
		}
		tr.assign(s)
	case *cast.ExprStmt:
		if call, ok := s.X.(*cast.Call); ok {
			tr.call(s, nil, call)
		}
	case *cast.IfStmt:
		tr.ifStmt(s)
	case *cast.WhileStmt:
		tr.whileStmt(s)
	case *cast.AssertStmt:
		cond, err := form.FromCond(s.X)
		if err != nil {
			cond = form.FalseF{}
		}
		// Soundness for error detection: the boolean condition must
		// under-approximate the C condition, so a concrete violation is
		// always a boolean violation. F_V is exactly that.
		e := tr.ab.fv(tr.f.Name, tr.scope, cond)
		tr.emit(&bp.Stmt{Kind: bp.Assert, Cond: e, Origin: s, Comment: "assert(" + s.X.String() + ")"})
	case *cast.AssumeStmt:
		cond, err := form.FromCond(s.X)
		if err != nil {
			cond = form.TrueF{}
		}
		e := tr.ab.gv(tr.f.Name, tr.scope, cond)
		tr.emit(&bp.Stmt{Kind: bp.Assume, Cond: e, Origin: s, Comment: "assume(" + s.X.String() + ")"})
	case *cast.ReturnStmt:
		tr.emit(tr.returnStmt(s))
	}
}

func (tr *translator) ifStmt(s *cast.IfStmt) {
	tr.ab.Stats.Conditionals++
	cond, err := form.FromCond(s.Cond)
	if err != nil {
		cond = form.TrueF{}
	}
	lt, lf, le := tr.freshLabel(), tr.freshLabel(), tr.freshLabel()
	tr.emit(&bp.Stmt{Kind: bp.Goto, Targets: []string{lt, lf}, Origin: s,
		Comment: "if (" + s.Cond.String() + ")"})
	// Then branch: assume(G_V(cond)).
	tr.pendingLabels = append(tr.pendingLabels, lt)
	tr.emit(&bp.Stmt{Kind: bp.Assume, Cond: tr.ab.gv(tr.f.Name, tr.scope, cond),
		Origin: BranchOrigin{Stmt: s, Then: true}})
	if s.Then != nil {
		tr.stmt(s.Then)
	}
	tr.emit(&bp.Stmt{Kind: bp.Goto, Targets: []string{le}})
	// Else branch: assume(G_V(¬cond)).
	tr.pendingLabels = append(tr.pendingLabels, lf)
	notCond := form.NNF(form.MkNot(cond))
	tr.emit(&bp.Stmt{Kind: bp.Assume, Cond: tr.ab.gv(tr.f.Name, tr.scope, notCond),
		Origin: BranchOrigin{Stmt: s, Then: false}})
	if s.Else != nil {
		tr.stmt(s.Else)
	}
	tr.pendingLabels = append(tr.pendingLabels, le)
	tr.emit(&bp.Stmt{Kind: bp.Skip})
}

func (tr *translator) whileStmt(s *cast.WhileStmt) {
	tr.ab.Stats.Conditionals++
	cond, err := form.FromCond(s.Cond)
	if err != nil {
		cond = form.TrueF{}
	}
	lh, lb, le := tr.freshLabel(), tr.freshLabel(), tr.freshLabel()
	tr.pendingLabels = append(tr.pendingLabels, lh)
	tr.emit(&bp.Stmt{Kind: bp.Goto, Targets: []string{lb, le}, Origin: s,
		Comment: "while (" + s.Cond.String() + ")"})
	tr.pendingLabels = append(tr.pendingLabels, lb)
	tr.emit(&bp.Stmt{Kind: bp.Assume, Cond: tr.ab.gv(tr.f.Name, tr.scope, cond),
		Origin: BranchOrigin{Stmt: s, Then: true}})
	if s.Body != nil {
		tr.stmt(s.Body)
	}
	tr.emit(&bp.Stmt{Kind: bp.Goto, Targets: []string{lh}})
	tr.pendingLabels = append(tr.pendingLabels, le)
	notCond := form.NNF(form.MkNot(cond))
	tr.emit(&bp.Stmt{Kind: bp.Assume, Cond: tr.ab.gv(tr.f.Name, tr.scope, notCond),
		Origin: BranchOrigin{Stmt: s, Then: false}})
}

// assign abstracts a non-call assignment (Section 4.3).
func (tr *translator) assign(s *cast.AssignStmt) {
	tr.ab.Stats.Assignments++
	comment := strings.TrimSpace(cast.PrintStmt(s))

	lhsT, errL := form.FromExpr(s.Lhs)
	rhsT, errR := form.FromExpr(s.Rhs)
	if errL != nil || errR != nil || isStructTyped(tr.ab, tr.f.Name, s.Lhs) {
		// Unsupported shape (e.g. whole-struct assignment): havoc every
		// predicate that could be affected.
		tr.havoc(s, comment)
		return
	}

	var lhs []string
	var rhs []bp.Expr
	for _, p := range tr.scope {
		wpPos, okPos := wp.AssignmentOK(tr.oracle, lhsT, rhsT, p.F)
		if tr.ab.opts.SkipUnchanged && okPos && form.FormulaEq(wpPos, p.F) {
			// Optimization 2: the predicate is definitely unchanged.
			continue
		}
		wpNeg, _ := wp.AssignmentOK(tr.oracle, lhsT, rhsT, p.Neg())
		pos := tr.ab.fv(tr.f.Name, tr.scope, wpPos)
		neg := tr.ab.fv(tr.f.Name, tr.scope, wpNeg)
		e := mkChoose(pos, neg)
		if r, ok := e.(bp.Ref); ok && r.Name == p.Name {
			continue // identity update
		}
		lhs = append(lhs, p.Name)
		rhs = append(rhs, e)
	}
	if len(lhs) == 0 {
		tr.emit(&bp.Stmt{Kind: bp.Skip, Origin: s, Comment: comment})
		return
	}
	tr.emit(&bp.Stmt{Kind: bp.Assign, Lhs: lhs, Rhs: rhs, Origin: s, Comment: comment})
}

// havoc invalidates every predicate that may be affected by an
// unsupported assignment.
func (tr *translator) havoc(s *cast.AssignStmt, comment string) {
	vars := map[string]bool{}
	collectExprVars(s.Lhs, vars)
	var lhs []string
	var rhs []bp.Expr
	for _, p := range tr.scope {
		affected := false
		for _, v := range form.FormulaVars(p.F) {
			if vars[v] {
				affected = true
			}
		}
		// Any predicate with indirect locations may also be affected.
		if !affected {
			for _, loc := range form.ReadLocations(p.F) {
				if _, isVar := loc.(form.Var); !isVar {
					affected = true
					break
				}
			}
		}
		if affected {
			lhs = append(lhs, p.Name)
			rhs = append(rhs, bp.Unknown{})
		}
	}
	if len(lhs) == 0 {
		tr.emit(&bp.Stmt{Kind: bp.Skip, Origin: s, Comment: comment})
		return
	}
	tr.emit(&bp.Stmt{Kind: bp.Assign, Lhs: lhs, Rhs: rhs, Origin: s, Comment: comment})
}

func collectExprVars(e cast.Expr, out map[string]bool) {
	switch e := e.(type) {
	case *cast.VarRef:
		out[e.Name] = true
	case *cast.Unary:
		collectExprVars(e.X, out)
	case *cast.Binary:
		collectExprVars(e.X, out)
		collectExprVars(e.Y, out)
	case *cast.Field:
		collectExprVars(e.X, out)
	case *cast.Index:
		collectExprVars(e.X, out)
		collectExprVars(e.I, out)
	case *cast.Call:
		for _, a := range e.Args {
			collectExprVars(a, out)
		}
	}
}

func isStructTyped(ab *Abstractor, fn string, e cast.Expr) bool {
	t := ab.res.Info.TypeOf(e)
	_, ok := t.(cast.StructType)
	return ok
}

// mkChoose builds choose(pos, neg) with the obvious simplifications.
func mkChoose(pos, neg bp.Expr) bp.Expr {
	if c, ok := pos.(bp.Const); ok {
		if c.Val {
			return bp.Const{Val: true}
		}
		// choose(false, neg): false when neg, otherwise unknown.
		if cn, ok := neg.(bp.Const); ok {
			if cn.Val {
				return bp.Const{Val: false}
			}
			return bp.Unknown{}
		}
	}
	if cn, ok := neg.(bp.Const); ok && cn.Val {
		// choose(pos, true) ≡ pos.
		return pos
	}
	// Exact update: choose(e, !e) ≡ e.
	if bp.ExprEq(bp.MkNot(pos), neg) {
		return pos
	}
	return bp.Choose{Pos: pos, Neg: neg}
}

// call abstracts "lhs = callee(args)" or "callee(args)" (Section 4.5.3).
func (tr *translator) call(origin cast.Stmt, lhs cast.Expr, c *cast.Call) {
	tr.ab.Stats.Calls++
	callee := tr.ab.res.Prog.Func(c.Name)
	calleeSig := tr.ab.sigs[c.Name]
	if callee == nil || calleeSig == nil {
		tr.emit(&bp.Stmt{Kind: bp.Skip, Origin: origin, Comment: "call to unknown " + c.Name})
		return
	}
	comment := strings.TrimSpace(cast.PrintStmt(origin))

	// Actual argument terms.
	argTerms := make([]form.Term, len(c.Args))
	for i, a := range c.Args {
		t, err := form.FromExpr(a)
		if err != nil {
			t = form.Var{Name: "$badarg$"}
		}
		argTerms[i] = t
	}
	formalNames := make([]string, len(callee.Params))
	for i, p := range callee.Params {
		formalNames[i] = p.Name
	}

	// 1. Compute actuals for the callee's formal-parameter predicates:
	//    e' = e[a/f], passed as choose(F(e'), F(¬e')).
	args := make([]bp.Expr, len(calleeSig.Ef))
	for i, ep := range calleeSig.Ef {
		eprime := substVars(ep.F, formalNames, argTerms)
		pos := tr.ab.fv(tr.f.Name, tr.scope, eprime)
		neg := tr.ab.fv(tr.f.Name, tr.scope, form.NNF(form.MkNot(eprime)))
		args[i] = mkChoose(pos, neg)
	}

	// 2. Fresh temporaries receive the return predicates, with their
	//    meanings translated to the calling context: e_i[v/r, a/f].
	var lhsTerm form.Term
	if lhs != nil {
		if t, err := form.FromExpr(lhs); err == nil {
			lhsTerm = t
		}
	}
	retVar := tr.ab.res.RetVar[c.Name]
	temps := make([]string, len(calleeSig.Er))
	tempPreds := make([]Pred, 0, len(calleeSig.Er))
	for i, ep := range calleeSig.Er {
		temps[i] = tr.freshTemp()
		names := formalNames
		terms := argTerms
		mentionsRet := retVar != "" && containsVar(form.FormulaVars(ep.F), retVar)
		if mentionsRet {
			if lhsTerm == nil {
				// Result discarded: the temp's meaning is unusable.
				continue
			}
			names = append(append([]string{}, formalNames...), retVar)
			terms = append(append([]form.Term{}, argTerms...), lhsTerm)
		}
		eprime := substVars(ep.F, names, terms)
		tempPreds = append(tempPreds, NewPred(temps[i], eprime))
	}
	tr.emit(&bp.Stmt{
		Kind: bp.Call, Callee: c.Name, Args: args, CallLhs: temps,
		Origin: origin, Comment: comment,
	})

	// 3. Update caller-local predicates whose value may have changed
	//    (global predicate variables are updated by the callee itself).
	var updPreds []Pred
	for _, p := range tr.ab.localPreds[tr.f.Name] {
		if tr.predNeedsUpdate(p, lhsTerm, argTerms) {
			updPreds = append(updPreds, p)
		}
	}
	if len(updPreds) == 0 {
		return
	}
	inUpd := map[string]bool{}
	for _, p := range updPreds {
		inUpd[p.Name] = true
	}
	// Domain: unchanged predicates (E') plus the translated return
	// predicates (T).
	var domain []Pred
	for _, p := range tr.scope {
		if !inUpd[p.Name] {
			domain = append(domain, p)
		}
	}
	domain = append(domain, tempPreds...)

	var updLhs []string
	var updRhs []bp.Expr
	for _, p := range updPreds {
		pos := tr.ab.fv(tr.f.Name, domain, p.F)
		neg := tr.ab.fv(tr.f.Name, domain, p.Neg())
		updLhs = append(updLhs, p.Name)
		updRhs = append(updRhs, mkChoose(pos, neg))
	}
	// No Origin: the post-call update has no C-level counterpart (Newton
	// must not re-execute the call's effect).
	tr.emit(&bp.Stmt{Kind: bp.Assign, Lhs: updLhs, Rhs: updRhs,
		Comment: "post-call update"})
}

// predNeedsUpdate implements the paper's E_u: predicates mentioning the
// call result, a global variable, or a location reachable through a
// pointer actual (or an alias of one).
func (tr *translator) predNeedsUpdate(p Pred, lhsTerm form.Term, argTerms []form.Term) bool {
	// Mentions the result location?
	if lhsTerm != nil {
		for _, loc := range form.ReadLocations(p.F) {
			if form.TermEq(loc, lhsTerm) || tr.ab.aa.MayAlias(tr.f.Name, loc, lhsTerm) {
				return true
			}
		}
	}
	// Mentions a global variable?
	for _, v := range form.FormulaVars(p.F) {
		if tr.ab.res.Info.IsGlobal(tr.f.Name, v) {
			return true
		}
	}
	// Mentions memory reachable from a pointer actual?
	for _, loc := range form.ReadLocations(p.F) {
		if _, isVar := loc.(form.Var); isVar {
			continue // locals can't be changed through the heap unless aliased
		}
		for _, a := range argTerms {
			if tr.ab.aa.ReachableMayAlias(tr.f.Name, loc, a) {
				return true
			}
		}
	}
	return false
}

func containsVar(vars []string, v string) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

// substVars performs simultaneous substitution of variables by terms.
func substVars(f form.Formula, names []string, terms []form.Term) form.Formula {
	// Two-phase to make it simultaneous: name_i → $sub_i$ → term_i.
	for i, n := range names {
		f = form.Subst(f, form.Var{Name: n}, form.Var{Name: fmt.Sprintf("$sub%d$", i)})
	}
	for i, t := range terms {
		f = form.Subst(f, form.Var{Name: fmt.Sprintf("$sub%d$", i)}, t)
	}
	return f
}
