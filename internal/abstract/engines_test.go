package abstract

import (
	"testing"

	"predabs/internal/bp"
)

// engineCases are small program/predicate pairs exercised by the
// cross-engine differential tests. The root package runs the full paper
// corpus through both engines; these stay cheap and debuggable.
var engineCases = []struct {
	name  string
	src   string
	preds string
}{
	{"partition", partitionSrc, partitionPreds},
	{"branches", `
int sign(int x) {
  int s;
  if (x > 0) { s = 1; } else { if (x < 0) { s = -1; } else { s = 0; } }
  return s;
}`, `
sign:
  x > 0, x < 0, s == 0, s == 1
`},
	{"loop", `
int count(int n) {
  int i;
  i = 0;
  while (i < n) {
    i = i + 1;
  }
  return i;
}`, `
count:
  i < n, i == 0, n > 0
`},
	{"globals", `
int g;
void set(int v) {
  if (v > 3) { g = v; } else { g = 0; }
}`, `
global:
  g == 0, g > 3
set:
  v > 3, v == g
`},
}

// TestEnginesByteIdentical is the in-package differential oracle: both
// engines must emit byte-identical boolean programs, and the model
// engine must never issue more prover interactions (Valid/Unsat calls
// plus session checks) than the cube engine.
func TestEnginesByteIdentical(t *testing.T) {
	for _, tc := range engineCases {
		t.Run(tc.name, func(t *testing.T) {
			cubeOpts := DefaultOptions()
			cubeOpts.Engine = EngineCubes
			cubeRes, cubePv := pipeline(t, tc.src, tc.preds, cubeOpts)
			cubeText := bp.Print(cubeRes.BP)
			cubeQ := cubePv.Calls() + cubePv.SessionChecks()

			modelOpts := DefaultOptions()
			modelOpts.Engine = EngineModels
			modelRes, modelPv := pipeline(t, tc.src, tc.preds, modelOpts)
			modelText := bp.Print(modelRes.BP)
			modelQ := modelPv.Calls() + modelPv.SessionChecks()

			if cubeText != modelText {
				t.Errorf("boolean programs differ\n--- cubes ---\n%s\n--- models ---\n%s",
					cubeText, modelText)
			}
			if cubePv.SessionChecks() != 0 {
				t.Errorf("cube engine opened sessions: %d checks", cubePv.SessionChecks())
			}
			// Cases whose every F_V call resolves syntactically never open a
			// session; where the cube engine paid search queries, the model
			// engine must actually have enumerated.
			if modelPv.Sessions() == 0 && modelQ != cubeQ {
				t.Error("model engine never opened a session yet query counts differ")
			}
			if tc.name == "partition" && modelPv.Sessions() == 0 {
				t.Error("partition must exercise the enumeration engine")
			}
			if modelQ > cubeQ {
				t.Errorf("model engine issued more queries: %d > %d", modelQ, cubeQ)
			}
			t.Logf("queries: cubes=%d models=%d (sessions=%d models-extracted=%d blocked=%d)",
				cubeQ, modelQ, modelPv.Sessions(), modelPv.ModelsExtracted(), modelPv.BlockingClauses())

			// The round/candidate structure must replay identically too.
			if cubeRes.Stats.CubesChecked != modelRes.Stats.CubesChecked ||
				cubeRes.Stats.CubeRounds != modelRes.Stats.CubeRounds {
				t.Errorf("round structure differs: cubes %d/%d, models %d/%d",
					cubeRes.Stats.CubeRounds, cubeRes.Stats.CubesChecked,
					modelRes.Stats.CubeRounds, modelRes.Stats.CubesChecked)
			}
		})
	}
}

// TestEnginesJobsInvariance pins the model engine's determinism across
// worker counts: the enumeration loop is sequential, so -j must not
// change a byte of output.
func TestEnginesJobsInvariance(t *testing.T) {
	var want string
	for _, jobs := range []int{1, 4, 8} {
		opts := DefaultOptions()
		opts.Engine = EngineModels
		opts.Jobs = jobs
		res, _ := pipeline(t, partitionSrc, partitionPreds, opts)
		got := bp.Print(res.BP)
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("jobs=%d changed the model engine's output", jobs)
		}
	}
}

// TestEngineFallbackWithoutSessions pins the graceful fallback: a
// Querier without session support runs the cube engine even when
// EngineModels is requested.
func TestEngineFallbackWithoutSessions(t *testing.T) {
	ab := &Abstractor{opts: Options{Engine: EngineModels}}
	if ab.useModels() {
		t.Fatal("useModels() = true for a nil/plain Querier")
	}
}
