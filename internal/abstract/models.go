package abstract

import (
	"time"

	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/form"
	"predabs/internal/prover"
	"predabs/internal/trace"
)

// sessionProver is the incremental-session capability the
// model-enumeration engine needs; *prover.Prover satisfies it.
// Queriers without it (e.g. fault-injection wrappers) silently fall
// back to the cube engine, which needs only Valid/Unsat.
type sessionProver interface {
	prover.Querier
	NewSession() *prover.Session
}

// useModels reports whether fv should dispatch to the model-enumeration
// engine for this run.
func (ab *Abstractor) useModels() bool {
	if ab.opts.Engine != EngineModels {
		return false
	}
	_, ok := ab.pv.(sessionProver)
	return ok
}

// enumeration is one blocking-clause loop over a base formula: assert
// it once, then get-model → project onto the predicate domain → block
// the projection → re-check, until the prover reports unsat (the
// minterm set is complete) or gives up (it is not, and the caller must
// degrade). Minterms come out in the prover's deterministic first-model
// order, independent of Options.Jobs — the loop is inherently
// sequential, so the engine's output needs no parallel merge at all.
type enumeration struct {
	ab       *Abstractor
	sess     *prover.Session
	domain   []Pred
	kind     string
	span     trace.Span
	minterms [][]bool
	checks   int
	complete bool   // unsat reached: minterms is the full projection set
	limit    string // canonical budget limit that interrupted the loop
}

// startEnum opens a session for one enumeration: track every domain
// predicate (so models always project fully) and assert the base.
func (ab *Abstractor) startEnum(sp sessionProver, base form.Formula, domain []Pred, kind string) *enumeration {
	e := &enumeration{ab: ab, domain: domain, kind: kind}
	e.span = ab.opts.Tracer.Begin("abs.enum", "session")
	e.sess = sp.NewSession()
	for _, p := range domain {
		e.sess.Track(p.F)
	}
	e.sess.Push()
	e.sess.Assert(base)
	return e
}

// step runs one check of the blocking loop and reports whether more
// models may exist. After a false return, either complete is true (the
// set is exhaustive) or limit names the budget that fired.
func (e *enumeration) step() bool {
	if e.complete || e.limit != "" {
		return false
	}
	e.checks++
	v, m, limit := e.sess.Check()
	switch v {
	case prover.Unsat:
		e.complete = true
		return false
	case prover.Unknown:
		e.limit = limit
		return false
	}
	mt := make([]bool, len(e.domain))
	lits := make([]form.Formula, len(e.domain))
	for i, p := range e.domain {
		val, ok := m.Eval(p.F)
		if !ok {
			// Unreachable (every atom of every domain predicate is
			// tracked); treat as an incomplete enumeration to stay sound.
			e.limit = budget.LimitProverBudget
			return false
		}
		mt[i] = val
		if val {
			lits[i] = p.F
		} else {
			lits[i] = p.Neg()
		}
	}
	e.minterms = append(e.minterms, mt)
	e.sess.Block(form.NNF(form.MkNot(form.MkAnd(lits...))))
	return true
}

// run drains the blocking loop.
func (e *enumeration) run() {
	for e.step() {
	}
}

// close ends the session and its trace span.
func (e *enumeration) close() {
	e.span.End(trace.Str("kind", e.kind),
		trace.Int("checks", e.checks),
		trace.Int("models", len(e.minterms)),
		trace.Int("cache_hits", e.sess.CacheHits()),
		trace.Bool("complete", e.complete))
	e.sess.Pop()
	e.sess.Close()
}

// fvModels computes F_V(phi) by model enumeration instead of per-cube
// Valid queries. Two enumerations drive it:
//
//	S = projections onto the domain of prover models of ¬φ
//	T = projections onto the domain of prover models of φ
//
// A cube with no compatible minterm in S implies φ (any model of
// cube ∧ ¬φ would have projected into S), and a cube with no compatible
// minterm in T implies ¬φ — both verdicts are membership tests, so the
// candidate rounds below issue zero prover queries. The first check of
// S mirrors the cube engine's Valid(true, φ) degenerate query and the
// first check of T mirrors Valid(φ, false), keeping the engines'
// query counts aligned on degenerate goals. Candidate generation,
// superset pruning, the cube budget and the merge are the shared
// fvRounds, so the emitted disjunction is byte-identical to the cube
// engine's whenever the provers' theory verdicts agree (see DESIGN.md
// for the incompleteness corner).
//
// Soundness under budgets: if either enumeration is interrupted, its
// absence-of-model verdicts are untrustworthy, so the procedure
// degrades exactly like an exhausted cube budget — F_V answers false,
// the weakest sound value — instead of emitting unproven implicants.
func (ab *Abstractor) fvModels(fn string, preds []Pred, phi form.Formula) bp.Expr {
	sp := ab.pv.(sessionProver)
	searchStart := time.Now()
	searchSpan := ab.opts.Tracer.Begin("cube", "search")
	defer func() {
		ab.Stats.CubeSearchTime += time.Since(searchStart)
		searchSpan.End()
	}()

	// The cone is purely syntactic; computing it before the degenerate
	// checks (the cube engine computes it after) costs no queries and
	// lets the sessions track exactly the cube domain's atoms.
	domain := preds
	if ab.opts.ConeOfInfluence {
		domain = ab.cone(fn, preds, phi)
	}
	notPhi := form.NNF(form.MkNot(phi))

	eS := ab.startEnum(sp, notPhi, domain, "notphi")
	defer eS.close()
	moreS := eS.step()
	if eS.limit != "" {
		ab.markDegraded(eS.limit)
		return bp.Const{Val: false}
	}
	if !moreS {
		return bp.Const{Val: true} // ¬φ unsat: φ is valid
	}

	eT := ab.startEnum(sp, phi, domain, "phi")
	defer eT.close()
	moreT := eT.step()
	if eT.limit != "" {
		ab.markDegraded(eT.limit)
		return bp.Const{Val: false}
	}
	if !moreT {
		return bp.Const{Val: false} // φ unsat: no consistent cube implies it
	}
	if len(domain) == 0 {
		return bp.Const{Val: false}
	}

	eS.run()
	eT.run()
	if lim := eS.limit; lim != "" {
		ab.markDegraded(lim)
		return bp.Const{Val: false}
	}
	if lim := eT.limit; lim != "" {
		ab.markDegraded(lim)
		return bp.Const{Val: false}
	}

	maxLen := ab.opts.MaxCubeLen
	if maxLen <= 0 || maxLen > len(domain) {
		maxLen = len(domain)
	}
	disjuncts := ab.fvRounds(domain, maxLen, func(cands [][]literal, verdicts []cubeVerdict) {
		for i, cube := range cands {
			if !compatibleAny(eS.minterms, cube) {
				verdicts[i] = verdictImplicant
			} else if !compatibleAny(eT.minterms, cube) {
				verdicts[i] = verdictContradiction
			}
		}
	})
	return bp.OrAll(disjuncts)
}

// enforceModels computes the enforce invariant ¬F_V(false) by
// enumerating the theory-consistent minterms over the scope's
// predicates once (models of an unconstrained session, projected onto
// the predicate pool): a cube is unsatisfiable exactly when no
// consistent minterm is compatible with it, so the candidate rounds
// classify by membership with zero further prover queries. The cube
// engine instead pays one Unsat query per candidate — on the driver
// corpus, whose spec-state predicates are heavily mutually exclusive,
// the minterm set is far smaller than the candidate set and this is
// where most of the model engine's query savings come from.
//
// A give-up mid-enumeration means absence-of-model is untrustworthy, so
// the procedure degrades and no invariant is emitted — weaker than the
// cube engine's behaviour (which keeps the contradictions it already
// proved), but sound: enforce only ever prunes impossible states.
func (ab *Abstractor) enforceModels(preds []Pred, maxLen int) bp.Expr {
	sp := ab.pv.(sessionProver)
	e := ab.startEnum(sp, form.TrueF{}, preds, "enforce")
	defer e.close()
	e.run()
	if e.limit != "" {
		ab.markDegraded(e.limit)
		return nil
	}
	return ab.enforceRounds(preds, maxLen, func(cands [][]literal, verdicts []cubeVerdict) {
		for i, cube := range cands {
			if !compatibleAny(e.minterms, cube) {
				verdicts[i] = verdictContradiction
			}
		}
	})
}

// compatible reports whether every literal of the cube agrees with the
// minterm's truth assignment.
func compatible(mt []bool, cube []literal) bool {
	for _, l := range cube {
		if mt[l.idx] != l.pos {
			return false
		}
	}
	return true
}

// compatibleAny reports whether some minterm is compatible with the cube.
func compatibleAny(minterms [][]bool, cube []literal) bool {
	for _, mt := range minterms {
		if compatible(mt, cube) {
			return true
		}
	}
	return false
}
