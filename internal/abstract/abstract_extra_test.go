package abstract

import (
	"strings"
	"testing"

	"predabs/internal/alias"
	"predabs/internal/bp"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/form"
	"predabs/internal/prover"
)

// newAbstractor builds a bare Abstractor for direct F_V/G_V testing.
func newAbstractor(t *testing.T, src string, opts Options) *Abstractor {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatal(err)
	}
	return &Abstractor{
		res:             res,
		aa:              alias.Analyze(res),
		pv:              prover.New(),
		opts:            opts,
		localPreds:      map[string][]Pred{},
		sigs:            map[string]*Signature{},
		modifiedFormals: map[string]map[string]bool{},
	}
}

func mkPred(t *testing.T, text string) Pred {
	t.Helper()
	e, err := cparse.ParseExpr(text)
	if err != nil {
		t.Fatal(err)
	}
	f, err := form.FromCond(e)
	if err != nil {
		t.Fatal(err)
	}
	return NewPred(text, f)
}

func mkFormula(t *testing.T, text string) form.Formula {
	t.Helper()
	return mkPred(t, text).F
}

func TestFVPrimeImplicantsOnly(t *testing.T) {
	ab := newAbstractor(t, "void f(int x, int y) { x = y; }", DefaultOptions())
	ab.opts.SyntacticHeuristics = false
	preds := []Pred{
		mkPred(t, "x == 1"),
		mkPred(t, "y == 2"),
		mkPred(t, "x < 5"),
	}
	// F(x < 5): {x<5} is an implicant; {x==1} too; but {x==1 & x<5} must be
	// pruned as a superset of both.
	got := ab.fv("f", preds, mkFormula(t, "x < 5"))
	s := got.String()
	if !strings.Contains(s, "{x < 5}") || !strings.Contains(s, "{x == 1}") {
		t.Fatalf("missing singleton implicants: %s", s)
	}
	if strings.Contains(s, "{x == 1} & {x < 5}") || strings.Contains(s, "{x < 5} & {x == 1}") {
		t.Errorf("non-prime implicant in output: %s", s)
	}
	// {y==2} is irrelevant (cone off to check pruning by contradiction
	// path does not add it).
	if strings.Contains(s, "y == 2") {
		t.Errorf("irrelevant predicate in output: %s", s)
	}
}

func TestFVUnderapproximates(t *testing.T) {
	// E(F_V(φ)) must imply φ: sample the output cubes with the prover.
	ab := newAbstractor(t, "void f(int x, int y) { x = y; }", DefaultOptions())
	preds := []Pred{
		mkPred(t, "x > 0"),
		mkPred(t, "x > 10"),
		mkPred(t, "y < 0"),
	}
	phi := mkFormula(t, "x > 5")
	got := ab.fv("f", preds, phi)
	// x > 10 implies x > 5; nothing else does alone.
	if got.String() != "{x > 10}" {
		t.Errorf("F(x>5) = %s, want {x > 10}", got)
	}
}

func TestGVOverapproximates(t *testing.T) {
	ab := newAbstractor(t, "void f(int x, int y) { x = y; }", DefaultOptions())
	preds := []Pred{
		mkPred(t, "x > 0"),
		mkPred(t, "x > 10"),
	}
	// G(x > 5) = ¬F(x <= 5) = ¬(!{x>0}) = {x>0} ... plus any longer cubes
	// pruned: x>5 implies x>0.
	got := ab.gv("f", preds, mkFormula(t, "x > 5"))
	if !strings.Contains(got.String(), "x > 0") {
		t.Errorf("G(x>5) = %s, expected to mention x > 0", got)
	}
}

func TestCubeLengthLimitChangesPrecision(t *testing.T) {
	ab := newAbstractor(t, "void f(int a, int b, int c) { a = b; }", DefaultOptions())
	ab.opts.SyntacticHeuristics = false
	preds := []Pred{
		mkPred(t, "a > 0"),
		mkPred(t, "b > 0"),
		mkPred(t, "c > 0"),
	}
	phi := mkFormula(t, "a + b + c > 0")
	// Only the 3-cube {a>0 & b>0 & c>0} implies φ.
	ab.opts.MaxCubeLen = 2
	weak := ab.fv("f", preds, phi)
	if _, ok := weak.(bp.Const); !ok || weak.String() != "false" {
		t.Fatalf("k=2 should find nothing: %s", weak)
	}
	ab.opts.MaxCubeLen = 3
	strong := ab.fv("f", preds, phi)
	if !strings.Contains(strong.String(), "{a > 0} & {b > 0}") {
		t.Errorf("k=3 should find the triple cube: %s", strong)
	}
}

func TestHavocOnStructAssignment(t *testing.T) {
	src := `
struct pt { int x; int y; };
void f(struct pt a, struct pt b) {
  a = b;
}
`
	preds := `
f:
  a.x > 0, b.x > 0
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	pr := out.BP.Proc("f")
	// The whole-struct assignment must havoc a.x > 0 (conservatively) and
	// may havoc b.x > 0, but never leave a.x's variable untouched.
	var assign *bp.Stmt
	for _, s := range pr.Stmts {
		if s.Kind == bp.Assign {
			assign = s
		}
	}
	if assign == nil {
		t.Fatalf("struct assignment vanished:\n%s", bp.Print(out.BP))
	}
	touched := false
	for i, v := range assign.Lhs {
		if v == "a.x > 0" {
			if _, isUnknown := assign.Rhs[i].(bp.Unknown); isUnknown {
				touched = true
			}
		}
	}
	if !touched {
		t.Errorf("a.x > 0 not havocked: %s", bp.StmtString(assign))
	}
}

func TestVoidCallResultDiscarded(t *testing.T) {
	src := `
int get(void) {
  int r;
  r = 5;
  return r;
}
void f(void) {
  get();
}
`
	preds := `
get:
  r == 5
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	f := out.BP.Proc("f")
	var call *bp.Stmt
	for _, s := range f.Stmts {
		if s.Kind == bp.Call {
			call = s
		}
	}
	if call == nil {
		t.Fatal("call missing")
	}
	// get's E_r = {r == 5}: one return slot must still be received.
	if len(call.CallLhs) != 1 {
		t.Errorf("call shape: %s", bp.StmtString(call))
	}
}

func TestAssignCommentsForNewton(t *testing.T) {
	out, _ := pipeline(t, partitionSrc, partitionPreds, DefaultOptions())
	pr := out.BP.Proc("partition")
	for _, s := range pr.Stmts {
		if s.Kind == bp.Assign && s.Origin == nil {
			if s.Comment != "post-call update" {
				t.Errorf("assignment without origin and not a post-call update: %s // %s",
					bp.StmtString(s), s.Comment)
			}
		}
	}
}

func TestEnforceContainsCongruenceCubes(t *testing.T) {
	// For predicates this==h and this->next==x and h->next==x, the enforce
	// invariant must rule out this==h & this->next==x & !(h->next==x).
	src := `
struct node { struct node* next; };
void f(struct node* this, struct node* h, struct node* x) {
  this = h;
}
`
	preds := `
f:
  this == h, this->next == x, h->next == x
`
	out, _ := pipeline(t, src, preds, DefaultOptions())
	pr := out.BP.Proc("f")
	if pr.Enforce == nil {
		t.Fatal("enforce missing")
	}
	s := pr.Enforce.String()
	if !strings.Contains(s, "{this == h}") {
		t.Errorf("enforce lacks the congruence constraint: %s", s)
	}
}

func TestFOnAtomsStillSound(t *testing.T) {
	opts := DefaultOptions()
	opts.FOnAtoms = true
	out, _ := pipeline(t, partitionSrc, partitionPreds, opts)
	// The F-on-atoms abstraction must still produce a valid program with
	// the same exact updates for prev = curr.
	printed := bp.Print(out.BP)
	if !strings.Contains(printed, "{prev == NULL}, {prev->val > v} := {curr == NULL}, {curr->val > v};") {
		t.Errorf("prev = curr update lost precision under F-on-atoms:\n%s", printed)
	}
}
