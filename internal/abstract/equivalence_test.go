package abstract

import (
	"testing"

	"predabs/internal/bebop"
)

// Section 5.2: "the above optimizations all have the property that they
// leave the resulting BP(P,E) semantically equivalent to the boolean
// program produced without these optimizations." We check observational
// equivalence through Bebop: identical reachable-state invariants at the
// labelled program points for every optimization configuration. (MaxCube
// and FOnAtoms are precision *tradeoffs* and are exempt; FOnAtoms through
// ∧ is lossless but through ∨ may differ.)
func TestOptimizationsPreserveSemantics(t *testing.T) {
	subjects := []struct {
		name, src, preds, entry, proc, label string
	}{
		{
			name:  "partition",
			src:   partitionSrc,
			preds: partitionPreds,
			entry: "partition", proc: "partition", label: "L",
		},
		{
			name: "counter",
			src: `
void f(int x) {
  int y;
  y = 0;
  while (x > 0) {
    y = y + 1;
    x = x - 1;
  }
L: assert(y >= 0);
}
`,
			preds: "f:\n  x > 0, y >= 0, y > 0",
			entry: "f", proc: "f", label: "L",
		},
		{
			name: "callsite",
			src: `
int bump(int a) {
  int r;
  r = a + 1;
  return r;
}
void f(int x) {
  int z;
  z = bump(x);
L: assert(z > x);
}
`,
			preds: "bump:\n  r > a, a == a\nf:\n  z > x",
			entry: "f", proc: "f", label: "L",
		},
	}

	configs := []struct {
		name string
		mod  func(*Options)
	}{
		{"baseline-all-off", func(o *Options) {
			o.ConeOfInfluence = false
			o.SyntacticHeuristics = false
			o.SkipUnchanged = false
		}},
		{"cone-only", func(o *Options) {
			o.SyntacticHeuristics = false
			o.SkipUnchanged = false
		}},
		{"heuristics-only", func(o *Options) {
			o.ConeOfInfluence = false
			o.SkipUnchanged = false
		}},
		{"skip-unchanged-only", func(o *Options) {
			o.ConeOfInfluence = false
			o.SyntacticHeuristics = false
		}},
		{"all-on", func(o *Options) {}},
	}

	for _, sub := range subjects {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			var baselineInv string
			var baselineBad bool
			for i, c := range configs {
				opts := DefaultOptions()
				opts.MaxCubeLen = 0 // unlimited, so only the optimizations vary
				c.mod(&opts)
				out, _ := pipeline(t, sub.src, sub.preds, opts)
				ch, err := bebop.Check(out.BP, sub.entry)
				if err != nil {
					t.Fatal(err)
				}
				idx, ok := ch.StmtAtLabel(sub.proc, sub.label)
				if !ok {
					t.Fatalf("%s: label %s missing", c.name, sub.label)
				}
				inv := ch.InvariantString(sub.proc, idx)
				_, bad := ch.ErrorReachable()
				if i == 0 {
					baselineInv, baselineBad = inv, bad
					continue
				}
				if inv != baselineInv {
					t.Errorf("%s: invariant differs from baseline:\n  base: %s\n  got:  %s",
						c.name, baselineInv, inv)
				}
				if bad != baselineBad {
					t.Errorf("%s: error reachability differs from baseline", c.name)
				}
			}
		})
	}
}
