package abstract

import (
	"context"
	"testing"

	"predabs/internal/alias"
	"predabs/internal/bp"
	"predabs/internal/budget"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
)

// degradePipeline runs Abstract with explicit options on the shared
// partition example, failing the test on any pipeline error.
func degradePipeline(t *testing.T, opts Options) *Result {
	t.Helper()
	prog, err := cparse.Parse(partitionSrc)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatal(err)
	}
	sections, err := cparse.ParsePredFile(partitionPreds)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Abstract(res, alias.Analyze(res), prover.New(), sections, opts)
	if err != nil {
		t.Fatalf("abstract: %v", err)
	}
	return out
}

func TestCubeBudgetDegradesSoundly(t *testing.T) {
	full := degradePipeline(t, DefaultOptions())
	if len(full.Stats.DegradedProcs) != 0 {
		t.Fatalf("unlimited run degraded: %v", full.Stats.DegradedProcs)
	}

	opts := DefaultOptions()
	opts.CubeBudget = 8
	bt := budget.New(context.Background(), budget.Limits{CubeBudget: 8}, nil)
	opts.Budget = bt
	lim := degradePipeline(t, opts)
	if len(lim.Stats.DegradedProcs) == 0 {
		t.Fatal("cube budget 8 did not degrade partition")
	}
	// The degraded program still resolves (Abstract errors otherwise) and
	// is strictly cheaper in prover work.
	if lim.Stats.CubesChecked > 8 {
		t.Fatalf("budget 8 run checked %d cubes", lim.Stats.CubesChecked)
	}
	if full.Stats.CubesChecked <= lim.Stats.CubesChecked {
		t.Fatalf("budgeted run not cheaper: full=%d limited=%d",
			full.Stats.CubesChecked, lim.Stats.CubesChecked)
	}
	ev, ok := bt.First()
	if !ok || ev.Stage != "abstract" || ev.Limit != budget.LimitCubeBudget {
		t.Fatalf("degradation log: %+v %v", ev, ok)
	}
}

// TestCubeBudgetPartialOutputDeterministic pins the satellite guarantee:
// the weaker, budget-truncated boolean program is byte-identical for
// every worker count, because the budget is spent on the canonical
// candidate order before the round fans out.
func TestCubeBudgetPartialOutputDeterministic(t *testing.T) {
	render := func(jobs int) string {
		opts := DefaultOptions()
		opts.CubeBudget = 13
		opts.Jobs = jobs
		return bp.Print(degradePipeline(t, opts).BP)
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("budget-truncated output differs between j=1 and j=8:\n--- j=1\n%s\n--- j=8\n%s", seq, par)
	}
}

func TestCancelledContextDegradesEveryProc(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Budget = budget.New(ctx, budget.Limits{}, nil)
	out := degradePipeline(t, opts)
	if len(out.Stats.DegradedProcs) == 0 {
		t.Fatal("cancelled run did not record degradation")
	}
	// No prover-backed cube search should have run at all.
	if out.Stats.CubesChecked != 0 {
		t.Fatalf("cancelled run still checked %d cubes", out.Stats.CubesChecked)
	}
	ev, _ := opts.Budget.First()
	if ev.Limit != budget.LimitDeadline {
		t.Fatalf("degradation limit = %q, want deadline", ev.Limit)
	}
}
