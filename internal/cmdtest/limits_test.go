package cmdtest

import (
	"regexp"
	"strings"
	"testing"
)

// lineCol matches the parsers' "line:col" positions in diagnostics.
var lineCol = regexp.MustCompile(`\d+:\d+`)

const correlatedC = `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(int x) {
  if (x == 0) {
    AcquireLock();
  }
  if (x == 0) {
    ReleaseLock();
  }
}
`

// TestSlamTimeoutExitsCleanly pins the tentpole's CLI contract: a run
// that hits its wall-clock deadline exits 2 with a report naming the
// limit, instead of hanging or being killed.
func TestSlamTimeoutExitsCleanly(t *testing.T) {
	cFile := write(t, "corr.c", correlatedC)
	sFile := write(t, "lock.slic", lockSpec)
	out, code := run(t, "slam", "-timeout", "1ns", "-spec", sFile, "-entry", "main", cFile)
	if code != 2 {
		t.Fatalf("exit %d (want 2):\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: unknown") {
		t.Errorf("verdict missing:\n%s", out)
	}
	if !strings.Contains(out, `stopped by limit "deadline"`) {
		t.Errorf("limit report missing:\n%s", out)
	}
}

// TestSlamExplainUnknownPartialResults: iteration exhaustion renders the
// predicates tried and the last abstraction's invariants under -explain.
func TestSlamExplainUnknownPartialResults(t *testing.T) {
	cFile := write(t, "corr.c", correlatedC)
	sFile := write(t, "lock.slic", lockSpec)
	out, code := run(t, "slam", "-maxiters", "1", "-explain", "-spec", sFile, "-entry", "main", cFile)
	if code != 2 {
		t.Fatalf("exit %d (want 2):\n%s", code, out)
	}
	for _, frag := range []string{
		`stopped by limit "iterations"`,
		"partial results:",
		"partial invariants",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

// TestBebopBDDCeilingUnknown: a truncated, failure-free fixpoint must
// answer unknown (exit 2), never "no violation reachable".
func TestBebopBDDCeilingUnknown(t *testing.T) {
	bpFile := write(t, "loop.bp", `
void main() begin
  decl a, b, c;
  a := *;
  b := *;
  c := *;
 L:
  a := b;
  b := c;
  c := !a;
  goto L;
end
`)
	out, code := run(t, "bebop", "-bdd-max-nodes", "1", "-entry", "main", bpFile)
	if code != 2 {
		t.Fatalf("exit %d (want 2):\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: unknown") || !strings.Contains(out, "bdd-max-nodes") {
		t.Errorf("degradation report missing:\n%s", out)
	}
	// Without the ceiling the same program is conclusively clean.
	out0, code0 := run(t, "bebop", "-entry", "main", bpFile)
	if code0 != 0 || !strings.Contains(out0, "no assertion violation") {
		t.Errorf("unlimited run: exit %d\n%s", code0, out0)
	}
}

// TestC2bpCubeBudgetDegradedStillExitsZero: a budget-truncated
// abstraction is weaker but sound, so the program is emitted and the
// exit stays 0, with the weakening named on stderr.
func TestC2bpCubeBudgetDegradedStillExitsZero(t *testing.T) {
	cFile := write(t, "p.c", partitionC)
	pFile := write(t, "p.preds", partitionPreds)
	out, code := run(t, "c2bp", "-cube-budget", "1", "-preds", pFile, cFile)
	if code != 0 {
		t.Fatalf("exit %d (want 0):\n%s", code, out)
	}
	if !strings.Contains(out, "void partition() begin") {
		t.Errorf("boolean program missing:\n%s", out)
	}
	if !strings.Contains(out, "soundly weakened") || !strings.Contains(out, "cube-budget") {
		t.Errorf("degradation note missing:\n%s", out)
	}
}

// Satellite: malformed user input exits with file:line diagnostics,
// never a panic.
func TestC2bpBadPredicatesFileLine(t *testing.T) {
	cFile := write(t, "p.c", partitionC)
	pFile := write(t, "bad.preds", "partition:\n  curr == ((\n")
	out, code := run(t, "c2bp", "-preds", pFile, cFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "bad.preds") || !lineCol.MatchString(out) {
		t.Errorf("diagnostic missing file/line:\n%s", out)
	}
	if strings.Contains(out, "goroutine") {
		t.Errorf("looks like a panic:\n%s", out)
	}
}

func TestSlamBadSourceFileLine(t *testing.T) {
	cFile := write(t, "broken.c", "void main(void) { int x; x = ; }\n")
	out, code := run(t, "slam", "-entry", "main", cFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "broken.c") || !lineCol.MatchString(out) {
		t.Errorf("diagnostic missing file/line:\n%s", out)
	}
	if strings.Contains(out, "goroutine") {
		t.Errorf("looks like a panic:\n%s", out)
	}
}

func TestBebopBadProgramFileLine(t *testing.T) {
	bpFile := write(t, "broken.bp", "void main() begin\n  a := ;\nend\n")
	out, code := run(t, "bebop", "-entry", "main", bpFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "broken.bp") || !strings.Contains(out, "line") {
		t.Errorf("diagnostic missing file/line:\n%s", out)
	}
	if strings.Contains(out, "goroutine") {
		t.Errorf("looks like a panic:\n%s", out)
	}
}
