// CLI flag-validation coverage: nonsensical flag values must be
// rejected up front with a diagnostic naming the flag and exit code 2
// (usage), before any file is read — plus tracelint's `-` stdin mode.
package cmdtest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const flagsProbeC = `void main(int x) { if (x > 3) { assert(x > 1); } }`

// TestFlagValidationExitCodes sweeps the rejected flag values across
// slam, c2bp and bebop. Every case must exit 2 and name the offending
// flag on stderr; pointing the tools at a nonexistent input proves
// validation fires before I/O.
func TestFlagValidationExitCodes(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "does-not-exist")
	cases := []struct {
		bin  string
		args []string
		want string // stderr substring naming the rejected flag
	}{
		{"slam", []string{"-j", "-1", missing}, "flag -j"},
		{"slam", []string{"-maxiters", "0", missing}, "flag -maxiters"},
		{"slam", []string{"-maxiters", "-3", missing}, "flag -maxiters"},
		{"slam", []string{"-timeout", "0s", missing}, "flag -timeout"},
		{"slam", []string{"-timeout", "-5s", missing}, "flag -timeout"},
		{"slam", []string{"-query-timeout", "-1ms", missing}, "flag -query-timeout"},
		{"slam", []string{"-cube-budget", "-1", missing}, "flag -cube-budget"},
		{"slam", []string{"-bdd-max-nodes", "-1", missing}, "flag -bdd-max-nodes"},
		{"c2bp", []string{"-j", "-2", "-preds", missing, missing}, "flag -j"},
		{"c2bp", []string{"-maxcube", "-1", "-preds", missing, missing}, "flag -maxcube"},
		{"c2bp", []string{"-timeout", "0s", "-preds", missing, missing}, "flag -timeout"},
		{"bebop", []string{"-timeout", "-1s", missing}, "flag -timeout"},
		{"bebop", []string{"-bdd-max-nodes", "-7", missing}, "flag -bdd-max-nodes"},
	}
	for _, c := range cases {
		name := c.bin + " " + strings.Join(c.args[:len(c.args)-1], " ")
		out, code := run(t, c.bin, c.args...)
		if code != 2 {
			t.Errorf("%s: exit %d, want 2\n%s", name, code, out)
		}
		if !strings.Contains(out, c.want) {
			t.Errorf("%s: diagnostic does not name %q:\n%s", name, c.want, out)
		}
	}

	// The zero values stay valid defaults: -j 0 means GOMAXPROCS, and an
	// omitted -timeout means no deadline.
	src := write(t, "ok.c", flagsProbeC)
	if out, code := run(t, "slam", "-j", "0", "-entry", "main", src); code != 0 {
		t.Errorf("slam -j 0: exit %d\n%s", code, out)
	}
}

// TestTracelintStdin pipes a real slam trace into `tracelint -` and a
// damaged one after it: the dash must read stdin, with the ordinary
// exit-code contract (0 valid, 1 schema violation).
func TestTracelintStdin(t *testing.T) {
	src := write(t, "probe.c", flagsProbeC)
	jsonl := filepath.Join(t.TempDir(), "run.jsonl")
	if out, code := run(t, "slam", "-trace-out", jsonl, "-entry", "main", src); code != 0 {
		t.Fatalf("slam -trace-out: exit %d\n%s", code, out)
	}
	raw, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}

	out, code := runStdin(t, raw, "tracelint", "-")
	if code != 0 || !strings.Contains(out, "<stdin>") {
		t.Fatalf("tracelint - on a valid trace: exit %d\n%s", code, out)
	}
	out, code = runStdin(t, []byte(`{"ts":"not-an-event"}`+"\n"), "tracelint", "-")
	if code != 1 {
		t.Fatalf("tracelint - on a broken trace: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "<stdin>") {
		t.Fatalf("stdin lint errors must be attributed to <stdin>:\n%s", out)
	}
}

// runStdin is run with the given bytes fed to the tool's stdin.
func runStdin(t *testing.T, stdin []byte, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	cmd.Stdin = bytes.NewReader(stdin)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", bin, err, out)
	}
	return string(out), code
}
