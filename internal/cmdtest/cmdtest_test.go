// Package cmdtest smoke-tests the command-line tools end to end: the
// binaries are built once with the Go toolchain, then exercised on
// temporary files, checking the c2bp → bebop pipeline composes through
// the boolean-program surface syntax and that slam reports the right
// verdicts and exit codes.
package cmdtest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "predabs-bin-")
	if err != nil {
		panic(err)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir, "predabs/cmd/c2bp", "predabs/cmd/bebop", "predabs/cmd/slam")
	build.Dir = repoRoot()
	if out, err := build.CombinedOutput(); err != nil {
		panic("building tools: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

func repoRoot() string {
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd)) // internal/cmdtest -> repo root
}

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", bin, err, out)
	}
	return string(out), code
}

const partitionC = `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

const partitionPreds = `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`

func TestC2bpThenBebopPipeline(t *testing.T) {
	cFile := write(t, "partition.c", partitionC)
	pFile := write(t, "partition.preds", partitionPreds)

	out, code := run(t, "c2bp", "-preds", pFile, cFile)
	if code != 0 {
		t.Fatalf("c2bp exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "void partition() begin") {
		t.Fatalf("c2bp output missing procedure:\n%s", out)
	}
	bpFile := write(t, "partition.bp", out)

	out2, code2 := run(t, "bebop", "-entry", "partition", "-invariant", "partition:L", bpFile)
	if code2 != 0 {
		t.Fatalf("bebop exit %d:\n%s", code2, out2)
	}
	if !strings.Contains(out2, "no assertion violation") {
		t.Errorf("bebop verdict missing:\n%s", out2)
	}
	// The Section 2.2 invariant components must appear.
	for _, frag := range []string{"!{curr == NULL}", "{curr->val > v}"} {
		if !strings.Contains(out2, frag) {
			t.Errorf("invariant missing %q:\n%s", frag, out2)
		}
	}
}

func TestC2bpStatsFlag(t *testing.T) {
	cFile := write(t, "p.c", partitionC)
	pFile := write(t, "p.preds", partitionPreds)
	out, code := run(t, "c2bp", "-stats", "-preds", pFile, cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "theorem prover calls:") {
		t.Errorf("stats missing:\n%s", out)
	}
}

func TestC2bpBadUsage(t *testing.T) {
	_, code := run(t, "c2bp")
	if code == 0 {
		t.Error("missing args should fail")
	}
}

const lockSpec = `
state { int locked = 0; }
event AcquireLock entry { if (locked == 1) { abort; } locked = 1; }
event ReleaseLock entry { if (locked == 0) { abort; } locked = 0; }
`

func TestSlamVerified(t *testing.T) {
	cFile := write(t, "good.c", `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  ReleaseLock();
}
`)
	sFile := write(t, "lock.slic", lockSpec)
	out, code := run(t, "slam", "-spec", sFile, "-entry", "main", cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: verified") {
		t.Errorf("verdict:\n%s", out)
	}
}

func TestSlamErrorFoundExitCode(t *testing.T) {
	cFile := write(t, "bad.c", `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  AcquireLock();
}
`)
	sFile := write(t, "lock.slic", lockSpec)
	out, code := run(t, "slam", "-spec", sFile, "-entry", "main", cFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: error-found") || !strings.Contains(out, "error path:") {
		t.Errorf("verdict/trace:\n%s", out)
	}
}

func TestSlamAssertsWithoutSpec(t *testing.T) {
	cFile := write(t, "asserts.c", `
void main(int x) {
  int y;
  y = 1;
  if (x > 0) { y = 2; }
  assert(y > 0);
}
`)
	out, code := run(t, "slam", "-entry", "main", cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: verified") {
		t.Errorf("verdict:\n%s", out)
	}
}

func TestBebopTraceAndInvariantsFlags(t *testing.T) {
	bpFile := write(t, "trace.bp", `
void main() begin
  decl a;
 start:
  a := *;
  assert(a);
  return;
end
`)
	out, code := run(t, "bebop", "-entry", "main", "-trace", "-invariants", bpFile)
	if code != 1 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "main:start:") {
		t.Errorf("-invariants output missing:\n%s", out)
	}
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "assert(a)") {
		t.Errorf("-trace output missing:\n%s", out)
	}
}

func TestBebopViolationExitCode(t *testing.T) {
	bpFile := write(t, "bad.bp", `
void main() begin
  decl a;
  a := *;
  assert(a);
  return;
end
`)
	out, code := run(t, "bebop", "-entry", "main", bpFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "violation reachable") {
		t.Errorf("verdict:\n%s", out)
	}
}
