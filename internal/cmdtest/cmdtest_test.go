// Package cmdtest smoke-tests the command-line tools end to end: the
// binaries are built once with the Go toolchain, then exercised on
// temporary files, checking the c2bp → bebop pipeline composes through
// the boolean-program surface syntax and that slam reports the right
// verdicts and exit codes.
package cmdtest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "predabs-bin-")
	if err != nil {
		panic(err)
	}
	binDir = dir
	build := exec.Command("go", "build", "-o", binDir, "predabs/cmd/c2bp", "predabs/cmd/bebop", "predabs/cmd/slam", "predabs/cmd/tracelint")
	build.Dir = repoRoot()
	if out, err := build.CombinedOutput(); err != nil {
		panic("building tools: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

func repoRoot() string {
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd)) // internal/cmdtest -> repo root
}

func write(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, bin), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", bin, err, out)
	}
	return string(out), code
}

const partitionC = `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
L:    newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

const partitionPreds = `
partition:
  curr == NULL, prev == NULL, curr->val > v, prev->val > v
`

func TestC2bpThenBebopPipeline(t *testing.T) {
	cFile := write(t, "partition.c", partitionC)
	pFile := write(t, "partition.preds", partitionPreds)

	out, code := run(t, "c2bp", "-preds", pFile, cFile)
	if code != 0 {
		t.Fatalf("c2bp exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "void partition() begin") {
		t.Fatalf("c2bp output missing procedure:\n%s", out)
	}
	bpFile := write(t, "partition.bp", out)

	out2, code2 := run(t, "bebop", "-entry", "partition", "-invariant", "partition:L", bpFile)
	if code2 != 0 {
		t.Fatalf("bebop exit %d:\n%s", code2, out2)
	}
	if !strings.Contains(out2, "no assertion violation") {
		t.Errorf("bebop verdict missing:\n%s", out2)
	}
	// The Section 2.2 invariant components must appear.
	for _, frag := range []string{"!{curr == NULL}", "{curr->val > v}"} {
		if !strings.Contains(out2, frag) {
			t.Errorf("invariant missing %q:\n%s", frag, out2)
		}
	}
}

func TestC2bpStatsFlag(t *testing.T) {
	cFile := write(t, "p.c", partitionC)
	pFile := write(t, "p.preds", partitionPreds)
	out, code := run(t, "c2bp", "-stats", "-preds", pFile, cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "theorem prover calls:") {
		t.Errorf("stats missing:\n%s", out)
	}
}

func TestC2bpBadUsage(t *testing.T) {
	_, code := run(t, "c2bp")
	if code == 0 {
		t.Error("missing args should fail")
	}
}

const lockSpec = `
state { int locked = 0; }
event AcquireLock entry { if (locked == 1) { abort; } locked = 1; }
event ReleaseLock entry { if (locked == 0) { abort; } locked = 0; }
`

func TestSlamVerified(t *testing.T) {
	cFile := write(t, "good.c", `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  ReleaseLock();
}
`)
	sFile := write(t, "lock.slic", lockSpec)
	out, code := run(t, "slam", "-spec", sFile, "-entry", "main", cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: verified") {
		t.Errorf("verdict:\n%s", out)
	}
}

func TestSlamErrorFoundExitCode(t *testing.T) {
	cFile := write(t, "bad.c", `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  AcquireLock();
}
`)
	sFile := write(t, "lock.slic", lockSpec)
	out, code := run(t, "slam", "-spec", sFile, "-entry", "main", cFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: error-found") || !strings.Contains(out, "error path:") {
		t.Errorf("verdict/trace:\n%s", out)
	}
}

func TestSlamAssertsWithoutSpec(t *testing.T) {
	cFile := write(t, "asserts.c", `
void main(int x) {
  int y;
  y = 1;
  if (x > 0) { y = 2; }
  assert(y > 0);
}
`)
	out, code := run(t, "slam", "-entry", "main", cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "RESULT: verified") {
		t.Errorf("verdict:\n%s", out)
	}
}

func TestBebopTraceAndInvariantsFlags(t *testing.T) {
	bpFile := write(t, "trace.bp", `
void main() begin
  decl a;
 start:
  a := *;
  assert(a);
  return;
end
`)
	out, code := run(t, "bebop", "-entry", "main", "-trace", "-invariants", bpFile)
	if code != 1 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "main:start:") {
		t.Errorf("-invariants output missing:\n%s", out)
	}
	if !strings.Contains(out, "trace:") || !strings.Contains(out, "assert(a)") {
		t.Errorf("-trace output missing:\n%s", out)
	}
}

func TestBebopViolationExitCode(t *testing.T) {
	bpFile := write(t, "bad.bp", `
void main() begin
  decl a;
  a := *;
  assert(a);
  return;
end
`)
	out, code := run(t, "bebop", "-entry", "main", bpFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "violation reachable") {
		t.Errorf("verdict:\n%s", out)
	}
}

const lockBadC = `
void AcquireLock(void) { }
void ReleaseLock(void) { }
void main(void) {
  AcquireLock();
  AcquireLock();
}
`

// TestSlamObservabilityFlags drives the full observability surface in one
// run: JSONL trace (validated by tracelint), Chrome export, text and JSON
// reports, and the annotated -explain rendering of the error path.
func TestSlamObservabilityFlags(t *testing.T) {
	cFile := write(t, "bad.c", lockBadC)
	sFile := write(t, "lock.slic", lockSpec)
	dir := filepath.Dir(cFile)
	jsonl := filepath.Join(dir, "run.jsonl")
	chrome := filepath.Join(dir, "run.chrome.json")
	report := filepath.Join(dir, "report.json")

	out, code := run(t, "slam",
		"-spec", sFile, "-entry", "main",
		"-trace-out", jsonl, "-trace-chrome", chrome,
		"-report", "-report-json", report, "-explain", cFile)
	if code != 1 {
		t.Fatalf("exit %d (want 1):\n%s", code, out)
	}
	for _, frag := range []string{
		"RESULT: error-found",
		"=== run report ===",
		"error path (annotated):",
		"[then branch taken]",
		"bad.c:",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}

	lintOut, lintCode := run(t, "tracelint", jsonl)
	if lintCode != 0 {
		t.Errorf("tracelint exit %d:\n%s", lintCode, lintOut)
	}
	if !strings.Contains(lintOut, "events ok") {
		t.Errorf("tracelint output:\n%s", lintOut)
	}

	for _, f := range []string{chrome, report} {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if len(data) == 0 || data[0] != '{' {
			t.Errorf("%s does not look like JSON: %.40q", f, data)
		}
	}
}

// TestC2bpTraceFlags checks the abstraction-only workflow emits a valid
// trace and a report whose totals agree with -stats.
func TestC2bpTraceFlags(t *testing.T) {
	cFile := write(t, "p.c", partitionC)
	pFile := write(t, "p.preds", partitionPreds)
	jsonl := filepath.Join(filepath.Dir(cFile), "c2bp.jsonl")

	out, code := run(t, "c2bp", "-preds", pFile, "-trace-out", jsonl, "-report", "-stats", cFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "=== run report ===") {
		t.Errorf("report missing:\n%s", out)
	}
	if !strings.Contains(out, "cube-search rounds:") {
		t.Errorf("-stats cube round count missing:\n%s", out)
	}
	if lintOut, lintCode := run(t, "tracelint", "-q", jsonl); lintCode != 0 {
		t.Errorf("tracelint exit %d:\n%s", lintCode, lintOut)
	}
}

// TestBebopStatsByProc checks -stats reports per-procedure fixpoint
// iteration counts.
func TestBebopStatsByProc(t *testing.T) {
	bpFile := write(t, "s.bp", `
void main() begin
  decl a;
  a := *;
  return;
end
`)
	out, code := run(t, "bebop", "-entry", "main", "-stats", bpFile)
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "fixpoint iterations:") || !strings.Contains(out, "proc main:") {
		t.Errorf("-stats per-proc counts missing:\n%s", out)
	}
}

// TestTracelintRejectsInvalid feeds tracelint a file violating the event
// schema.
func TestTracelintRejectsInvalid(t *testing.T) {
	bad := write(t, "bad.jsonl", `{"ts":1,"type":"event","cat":"nope","name":"what"}`+"\n")
	out, code := run(t, "tracelint", bad)
	if code != 1 {
		t.Errorf("exit %d (want 1):\n%s", code, out)
	}
	if !strings.Contains(out, "line 1") {
		t.Errorf("diagnostic missing line number:\n%s", out)
	}
}
