package trace

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"
)

// topKQueries bounds the most-expensive-query list in the report.
const topKQueries = 10

// topKProcs bounds the most-expensive-procedure list in the report.
const topKProcs = 10

// histBuckets is the number of exponential prover-latency buckets:
// bucket i counts queries with duration in [2^(i-1), 2^i) microseconds
// (bucket 0 is < 1µs).
const histBuckets = 22

// ProcCost is the per-procedure abstraction cost rollup.
type ProcCost struct {
	Name string `json:"name"`
	// NS is the cumulative abstraction wall time (summed across CEGAR
	// iterations).
	NS int64 `json:"ns"`
	// Rounds is the number of prover-backed cube-search rounds.
	Rounds int `json:"rounds"`
	// Cubes is the number of cube candidates submitted to the prover.
	Cubes int `json:"cubes"`
}

// QueryCost is one entry of the most-expensive-query list.
type QueryCost struct {
	Kind    string `json:"kind"`
	Desc    string `json:"desc"`
	NS      int64  `json:"ns"`
	Size    int    `json:"size"`
	Verdict bool   `json:"verdict"`
}

// HistBucket is one prover-latency histogram bucket.
type HistBucket struct {
	// Label is the human-readable bucket range, e.g. "2µs–4µs".
	Label string `json:"label"`
	Count int    `json:"count"`
}

// NewtonRound is the cost rollup of one refinement round.
type NewtonRound struct {
	PathLen int `json:"path_len"`
	// InfeasibleIndex is the event index (from the end of the path) where
	// the backward condition became unsatisfiable; -1 if the path was
	// feasible or the analysis gave up.
	InfeasibleIndex int  `json:"infeasible_index"`
	PredsHarvested  int  `json:"preds_harvested"`
	Feasible        bool `json:"feasible"`
	GaveUp          bool `json:"gave_up"`
}

// DegradeCost is one degradation row of the report: a (stage, limit)
// pair that fired, with the first occurrence's detail. The count comes
// from the structured result (budget.Tracker); the trace stream carries
// only the first firing per pair.
type DegradeCost struct {
	Stage  string `json:"stage"`
	Limit  string `json:"limit"`
	Detail string `json:"detail,omitempty"`
}

// CheckpointInfo is the report's checkpoint/resume section, present only
// when the run touched a state directory (-state/-resume/-no-persist).
type CheckpointInfo struct {
	// Resumed is true when the run warm-started from a journal snapshot;
	// ResumedIteration is the last committed iteration it continued
	// after, and RestoredVerdicts the prover-cache entries imported.
	Resumed          bool `json:"resumed"`
	ResumedIteration int  `json:"resumed_iteration,omitempty"`
	RestoredVerdicts int  `json:"restored_verdicts,omitempty"`
	// RestoreNS is the wall time of journal replay + warm start.
	RestoreNS int64 `json:"restore_ns,omitempty"`
	// Commits counts durable iteration records appended this run;
	// CommitNS is their cumulative wall time (fsync included).
	Commits  int   `json:"commits"`
	CommitNS int64 `json:"commit_ns,omitempty"`
	// Repairs counts torn-tail truncations performed on open; ColdStarts
	// counts journals rejected (corrupt or incompatible) and recreated.
	Repairs    int `json:"repairs,omitempty"`
	ColdStarts int `json:"cold_starts,omitempty"`
	// FinalOutcome is the outcome durably journaled at exit ("" when the
	// run did not reach a final record).
	FinalOutcome string `json:"final_outcome,omitempty"`
}

// Report is the end-of-run aggregation of the event stream: the paper's
// Table 1/2 cost columns plus latency detail. The deterministic subset
// (counts, not wall times) is identical for any cube-search worker count;
// TestReportAggregateDeterminism pins that.
type Report struct {
	// Outcome is the slam verdict ("verified", "error-found", "unknown"),
	// or "" outside the slam workflow.
	Outcome string `json:"outcome,omitempty"`
	// Iterations is the number of CEGAR iterations (0 outside slam).
	Iterations int `json:"iterations,omitempty"`
	// Predicates is the number of predicates in the final abstraction.
	Predicates int `json:"predicates"`

	ProverCalls  int   `json:"prover_calls"`
	CacheHits    int   `json:"cache_hits"`
	CacheMisses  int   `json:"cache_misses"`
	ProverGaveUp int   `json:"prover_gave_up"`
	SolverNS     int64 `json:"solver_ns"`

	// Sessions, SessionChecks and ModelsExtracted aggregate the
	// model-enumeration engine's "abs.enum" spans; all zero (and omitted)
	// under the default cube engine. ProverCalls + SessionChecks is the
	// run's total prover interaction count.
	Sessions        int `json:"sessions,omitempty"`
	SessionChecks   int `json:"session_checks,omitempty"`
	ModelsExtracted int `json:"models_extracted,omitempty"`

	CubeRounds   int `json:"cube_rounds"`
	CubesChecked int `json:"cubes_checked"`

	// StageNS maps pipeline stage names (parse, alias, signatures,
	// abstract, cube-search, check, newton) to cumulative wall time.
	StageNS map[string]int64 `json:"stage_ns"`

	// Procs is the per-procedure abstraction rollup, in first-abstracted
	// order.
	Procs []ProcCost `json:"procs,omitempty"`

	BebopIterations int `json:"bebop_iterations,omitempty"`
	// BebopIterationsByProc counts worklist items per procedure.
	BebopIterationsByProc map[string]int `json:"bebop_iterations_by_proc,omitempty"`
	// MaxWorklist is the deepest worklist observed during the fixpoint.
	MaxWorklist int `json:"max_worklist,omitempty"`
	// MaxBDDNodes is the largest BDD node table observed.
	MaxBDDNodes int `json:"max_bdd_nodes,omitempty"`

	NewtonRounds []NewtonRound `json:"newton_rounds,omitempty"`

	// Degradations lists the resource limits that fired during the run,
	// in first-fired order (empty for an undegraded run).
	Degradations []DegradeCost `json:"degradations,omitempty"`

	// ProverHist is the query-latency histogram (non-cache-hit queries).
	ProverHist []HistBucket `json:"prover_hist,omitempty"`
	// TopQueries lists the most expensive individual prover queries.
	TopQueries []QueryCost `json:"top_queries,omitempty"`

	// Checkpoint reports checkpoint/resume activity (nil when the run
	// had no state directory).
	Checkpoint *CheckpointInfo `json:"checkpoint,omitempty"`

	// Events is the total number of trace records consumed.
	Events int `json:"events"`
}

// aggregator folds events into report state. It is guarded by the
// tracer's mutex.
type aggregator struct {
	events int

	outcome    string
	iterations int
	predicates int

	proverCalls  int
	cacheHits    int
	proverGaveUp int
	solverNS     int64

	cubeRounds   int
	cubesChecked int

	sessions        int
	sessionChecks   int
	modelsExtracted int

	stageNS map[string]int64

	procOrder []string
	procs     map[string]*ProcCost

	bebopIters       int
	bebopItersByProc map[string]int
	maxWorklist      int
	maxBDDNodes      int

	newtonRounds []NewtonRound

	degradations []DegradeCost

	hist [histBuckets]int
	topQ []QueryCost // sorted descending by NS, at most topKQueries

	ckpt *CheckpointInfo
}

func (a *aggregator) init() {
	a.stageNS = map[string]int64{}
	a.procs = map[string]*ProcCost{}
	a.bebopItersByProc = map[string]int{}
}

// fieldInt reads an integer field by key (also accepts bools as 0/1).
func fieldIntVal(fields []Field, key string) (int64, bool) {
	for _, f := range fields {
		if f.Key == key && (f.kind == fieldInt || f.kind == fieldBool) {
			return f.num, true
		}
	}
	return 0, false
}

func fieldStrVal(fields []Field, key string) (string, bool) {
	for _, f := range fields {
		if f.Key == key && f.kind == fieldStr {
			return f.str, true
		}
	}
	return "", false
}

func fieldBoolVal(fields []Field, key string) bool {
	v, _ := fieldIntVal(fields, key)
	return v != 0
}

// consume folds one record. It copies everything it retains; the fields
// slice itself is never stored.
func (a *aggregator) consume(cat, name string, dur time.Duration, fields []Field) {
	a.events++
	switch cat {
	case "frontend":
		a.stageNS[name] += int64(dur)
	case "abstract":
		switch name {
		case "signatures":
			a.stageNS["signatures"] += int64(dur)
		case "run":
			a.stageNS["abstract"] += int64(dur)
		case "predicates":
			if n, ok := fieldIntVal(fields, "count"); ok {
				a.predicates = int(n)
			}
		case "proc":
			proc, _ := fieldStrVal(fields, "proc")
			if proc == "" {
				return
			}
			pc := a.procs[proc]
			if pc == nil {
				pc = &ProcCost{Name: proc}
				a.procs[proc] = pc
				a.procOrder = append(a.procOrder, proc)
			}
			pc.NS += int64(dur)
			if n, ok := fieldIntVal(fields, "rounds"); ok {
				pc.Rounds += int(n)
			}
			if n, ok := fieldIntVal(fields, "cubes"); ok {
				pc.Cubes += int(n)
			}
		}
	case "cube":
		switch name {
		case "search", "enforce":
			a.stageNS["cube-search"] += int64(dur)
		case "round":
			a.cubeRounds++
			if n, ok := fieldIntVal(fields, "candidates"); ok {
				a.cubesChecked += int(n)
			}
		}
	case "abs.enum":
		if name != "session" {
			return
		}
		a.sessions++
		if n, ok := fieldIntVal(fields, "checks"); ok {
			a.sessionChecks += int(n)
		}
		if n, ok := fieldIntVal(fields, "models"); ok {
			a.modelsExtracted += int(n)
		}
		// Session checks answered from the prover's shared cache count
		// toward its global cache hits, so fold them in here; the misses
		// computation below accounts session checks accordingly.
		if n, ok := fieldIntVal(fields, "cache_hits"); ok {
			a.cacheHits += int(n)
		}
	case "prover":
		if name != "query" {
			return
		}
		a.proverCalls++
		if fieldBoolVal(fields, "cache_hit") {
			a.cacheHits++
			return
		}
		if fieldBoolVal(fields, "gave_up") {
			a.proverGaveUp++
		}
		a.solverNS += int64(dur)
		a.hist[histBucket(dur)]++
		a.noteQuery(fields, dur)
	case "bebop":
		switch name {
		case "check":
			a.stageNS["check"] += int64(dur)
		case "fixpoint":
			a.stageNS["fixpoint"] += int64(dur)
		case "iter":
			a.bebopIters++
			if proc, ok := fieldStrVal(fields, "proc"); ok {
				a.bebopItersByProc[proc]++
			}
			if n, ok := fieldIntVal(fields, "worklist"); ok && int(n) > a.maxWorklist {
				a.maxWorklist = int(n)
			}
			if n, ok := fieldIntVal(fields, "bdd_nodes"); ok && int(n) > a.maxBDDNodes {
				a.maxBDDNodes = int(n)
			}
		}
	case "newton":
		if name != "analyze" {
			return
		}
		a.stageNS["newton"] += int64(dur)
		r := NewtonRound{InfeasibleIndex: -1}
		if n, ok := fieldIntVal(fields, "path_len"); ok {
			r.PathLen = int(n)
		}
		if n, ok := fieldIntVal(fields, "infeasible_index"); ok {
			r.InfeasibleIndex = int(n)
		}
		if n, ok := fieldIntVal(fields, "preds_harvested"); ok {
			r.PredsHarvested = int(n)
		}
		r.Feasible = fieldBoolVal(fields, "feasible")
		r.GaveUp = fieldBoolVal(fields, "gave_up")
		a.newtonRounds = append(a.newtonRounds, r)
	case "degrade":
		if name != "limit" {
			return
		}
		d := DegradeCost{}
		d.Stage, _ = fieldStrVal(fields, "stage")
		d.Limit, _ = fieldStrVal(fields, "limit")
		d.Detail, _ = fieldStrVal(fields, "detail")
		a.degradations = append(a.degradations, d)
	case "checkpoint":
		if a.ckpt == nil {
			a.ckpt = &CheckpointInfo{}
		}
		switch name {
		case "restore":
			a.ckpt.Resumed = true
			a.ckpt.RestoreNS += int64(dur)
			if n, ok := fieldIntVal(fields, "iteration"); ok {
				a.ckpt.ResumedIteration = int(n)
			}
			if n, ok := fieldIntVal(fields, "cache_entries"); ok {
				a.ckpt.RestoredVerdicts = int(n)
			}
		case "commit":
			a.ckpt.Commits++
			a.ckpt.CommitNS += int64(dur)
		case "repair":
			a.ckpt.Repairs++
		case "coldstart":
			a.ckpt.ColdStarts++
		case "final":
			if s, ok := fieldStrVal(fields, "outcome"); ok {
				a.ckpt.FinalOutcome = s
			}
		}
	case "slam":
		if name == "outcome" {
			if s, ok := fieldStrVal(fields, "outcome"); ok {
				a.outcome = s
			}
			if n, ok := fieldIntVal(fields, "iterations"); ok {
				a.iterations = int(n)
			}
		}
	}
}

// noteQuery inserts a query into the bounded top-K list.
func (a *aggregator) noteQuery(fields []Field, dur time.Duration) {
	if len(a.topQ) == topKQueries && int64(dur) <= a.topQ[len(a.topQ)-1].NS {
		return
	}
	q := QueryCost{NS: int64(dur)}
	q.Kind, _ = fieldStrVal(fields, "kind")
	q.Desc, _ = fieldStrVal(fields, "desc")
	if n, ok := fieldIntVal(fields, "size"); ok {
		q.Size = int(n)
	}
	q.Verdict = fieldBoolVal(fields, "verdict")
	i := sort.Search(len(a.topQ), func(i int) bool { return a.topQ[i].NS < q.NS })
	a.topQ = append(a.topQ, QueryCost{})
	copy(a.topQ[i+1:], a.topQ[i:])
	a.topQ[i] = q
	if len(a.topQ) > topKQueries {
		a.topQ = a.topQ[:topKQueries]
	}
}

// histBucket maps a duration to its exponential µs bucket.
func histBucket(d time.Duration) int {
	us := uint64(d / time.Microsecond)
	b := bits.Len64(us)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func histLabel(i int) string {
	if i == 0 {
		return "<1µs"
	}
	lo := uint64(1) << (i - 1)
	hi := uint64(1) << i
	return fmt.Sprintf("%s–%s", usString(lo), usString(hi))
}

func usString(us uint64) string {
	return time.Duration(us * uint64(time.Microsecond)).String()
}

// Report snapshots the aggregation so far. Safe to call concurrently
// with ongoing event emission (and repeatedly).
func (t *Tracer) Report() *Report {
	if t == nil {
		return &Report{StageNS: map[string]int64{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	a := &t.agg
	r := &Report{
		Outcome:      a.outcome,
		Iterations:   a.iterations,
		Predicates:   a.predicates,
		ProverCalls:  a.proverCalls,
		CacheHits:    a.cacheHits,
		CacheMisses:  a.proverCalls + a.sessionChecks - a.cacheHits,
		ProverGaveUp: a.proverGaveUp,
		SolverNS:     a.solverNS,

		Sessions:        a.sessions,
		SessionChecks:   a.sessionChecks,
		ModelsExtracted: a.modelsExtracted,

		CubeRounds:   a.cubeRounds,
		CubesChecked: a.cubesChecked,
		StageNS:      map[string]int64{},

		BebopIterations: a.bebopIters,
		MaxWorklist:     a.maxWorklist,
		MaxBDDNodes:     a.maxBDDNodes,
		Events:          a.events,
	}
	for k, v := range a.stageNS {
		r.StageNS[k] = v
	}
	for _, name := range a.procOrder {
		r.Procs = append(r.Procs, *a.procs[name])
	}
	if len(a.bebopItersByProc) > 0 {
		r.BebopIterationsByProc = map[string]int{}
		for k, v := range a.bebopItersByProc {
			r.BebopIterationsByProc[k] = v
		}
	}
	r.NewtonRounds = append(r.NewtonRounds, a.newtonRounds...)
	r.Degradations = append(r.Degradations, a.degradations...)
	for i, n := range a.hist {
		if n > 0 {
			r.ProverHist = append(r.ProverHist, HistBucket{Label: histLabel(i), Count: n})
		}
	}
	r.TopQueries = append(r.TopQueries, a.topQ...)
	if a.ckpt != nil {
		c := *a.ckpt
		r.Checkpoint = &c
	}
	return r
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// stageOrder is the pipeline ordering for the stage table.
var stageOrder = []string{"parse", "alias", "signatures", "abstract", "cube-search", "check", "fixpoint", "newton"}

// Text renders the report as a human-readable summary, mirroring (and
// extending) the -stats output of the CLIs.
func (r *Report) Text() string {
	var b strings.Builder
	b.WriteString("=== run report ===\n")
	if r.Outcome != "" {
		fmt.Fprintf(&b, "outcome: %s (CEGAR iterations: %d)\n", r.Outcome, r.Iterations)
	}
	fmt.Fprintf(&b, "predicates: %d\n", r.Predicates)
	fmt.Fprintf(&b, "theorem prover calls: %d (cache hits: %d, misses: %d, gave up: %d)\n",
		r.ProverCalls, r.CacheHits, r.CacheMisses, r.ProverGaveUp)
	if r.Sessions > 0 {
		fmt.Fprintf(&b, "prover sessions: %d (checks: %d, models extracted: %d)\n",
			r.Sessions, r.SessionChecks, r.ModelsExtracted)
	}
	fmt.Fprintf(&b, "cubes checked: %d (in %d search rounds)\n", r.CubesChecked, r.CubeRounds)
	fmt.Fprintf(&b, "theory solver time: %v\n", time.Duration(r.SolverNS))

	var stages []string
	for _, s := range stageOrder {
		if ns, ok := r.StageNS[s]; ok {
			stages = append(stages, fmt.Sprintf("  %-12s %v", s, time.Duration(ns)))
		}
	}
	// Any stage the ordering does not know yet still prints.
	var extra []string
	for s, ns := range r.StageNS {
		if !containsStr(stageOrder, s) {
			extra = append(extra, fmt.Sprintf("  %-12s %v", s, time.Duration(ns)))
		}
	}
	sort.Strings(extra)
	if len(stages)+len(extra) > 0 {
		b.WriteString("stages:\n")
		for _, s := range append(stages, extra...) {
			b.WriteString(s + "\n")
		}
	}

	if len(r.Procs) > 0 {
		b.WriteString("procedures (abstraction cost):\n")
		top := topProcs(r.Procs, topKProcs)
		for _, p := range top {
			fmt.Fprintf(&b, "  %-16s %10v  rounds=%-4d cubes=%d\n",
				p.Name, time.Duration(p.NS), p.Rounds, p.Cubes)
		}
	}

	if r.BebopIterations > 0 {
		fmt.Fprintf(&b, "bebop: %d fixpoint iterations (max worklist %d, max BDD nodes %d)\n",
			r.BebopIterations, r.MaxWorklist, r.MaxBDDNodes)
		if len(r.BebopIterationsByProc) > 0 {
			names := make([]string, 0, len(r.BebopIterationsByProc))
			for n := range r.BebopIterationsByProc {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(&b, "  proc %-16s %d iterations\n", n, r.BebopIterationsByProc[n])
			}
		}
	}

	for i, nr := range r.NewtonRounds {
		fmt.Fprintf(&b, "newton round %d: path length %d, ", i+1, nr.PathLen)
		switch {
		case nr.GaveUp:
			b.WriteString("gave up\n")
		case nr.Feasible:
			b.WriteString("feasible (real error)\n")
		default:
			fmt.Fprintf(&b, "infeasible at suffix index %d, %d predicate(s) harvested\n",
				nr.InfeasibleIndex, nr.PredsHarvested)
		}
	}

	if c := r.Checkpoint; c != nil {
		b.WriteString("checkpoint:\n")
		if c.Resumed {
			fmt.Fprintf(&b, "  resumed after iteration %d (%d cached verdicts restored in %v)\n",
				c.ResumedIteration, c.RestoredVerdicts, time.Duration(c.RestoreNS))
		} else {
			b.WriteString("  cold start (no prior committed iteration)\n")
		}
		fmt.Fprintf(&b, "  commits: %d (%v)\n", c.Commits, time.Duration(c.CommitNS))
		if c.Repairs > 0 {
			fmt.Fprintf(&b, "  torn-tail repairs: %d\n", c.Repairs)
		}
		if c.ColdStarts > 0 {
			fmt.Fprintf(&b, "  journals rejected and recreated: %d\n", c.ColdStarts)
		}
		if c.FinalOutcome != "" {
			fmt.Fprintf(&b, "  final record: %s\n", c.FinalOutcome)
		}
	}

	if len(r.Degradations) > 0 {
		b.WriteString("degradations (soundly weakened on resource limits):\n")
		for _, d := range r.Degradations {
			if d.Detail != "" {
				fmt.Fprintf(&b, "  %-10s %-14s %s\n", d.Stage, d.Limit, d.Detail)
			} else {
				fmt.Fprintf(&b, "  %-10s %s\n", d.Stage, d.Limit)
			}
		}
	}

	if len(r.ProverHist) > 0 {
		b.WriteString("prover latency histogram:\n")
		max := 0
		for _, h := range r.ProverHist {
			if h.Count > max {
				max = h.Count
			}
		}
		for _, h := range r.ProverHist {
			bar := strings.Repeat("#", scaleBar(h.Count, max, 40))
			fmt.Fprintf(&b, "  %-14s %6d %s\n", h.Label, h.Count, bar)
		}
	}

	if len(r.TopQueries) > 0 {
		b.WriteString("most expensive prover queries:\n")
		for _, q := range r.TopQueries {
			fmt.Fprintf(&b, "  %10v  %-5s verdict=%-5v size=%-5d %s\n",
				time.Duration(q.NS), q.Kind, q.Verdict, q.Size, q.Desc)
		}
	}
	return b.String()
}

func scaleBar(n, max, width int) int {
	if max <= 0 {
		return 0
	}
	w := n * width / max
	if w == 0 && n > 0 {
		w = 1
	}
	return w
}

func topProcs(procs []ProcCost, k int) []ProcCost {
	out := append([]ProcCost{}, procs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].NS > out[j].NS })
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
