package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteChrome renders the retained events in the Chrome trace_event JSON
// array format (the "JSON Array Format" of the trace-event spec), which
// Perfetto and chrome://tracing load directly. Spans become "X"
// (complete) events with microsecond timestamps; instants become "i"
// events. Lanes (Span tids) map to Chrome thread ids, so the parallel
// cube-search workers render as separate rows.
//
// The tracer must have been created with Config.RetainChrome; otherwise
// the export is empty (an empty, still-loadable trace).
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := t.events
	t.mu.Unlock()

	if _, err := io.WriteString(w, `{"traceEvents":[`+"\n"); err != nil {
		return err
	}
	b := make([]byte, 0, 256)
	for i, e := range events {
		b = b[:0]
		if i > 0 {
			b = append(b, ',', '\n')
		}
		b = append(b, `{"pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(e.tid), 10)
		b = append(b, `,"ts":`...)
		// Chrome timestamps are microseconds; keep sub-µs precision as a
		// decimal fraction.
		b = appendMicros(b, e.ts)
		if e.dur >= 0 {
			b = append(b, `,"ph":"X","dur":`...)
			b = appendMicros(b, e.dur)
		} else {
			b = append(b, `,"ph":"i","s":"t"`...)
		}
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, e.cat)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, e.name)
		if e.args != "" {
			b = append(b, `,"args":`...)
			b = append(b, e.args...)
		}
		b = append(b, '}')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	// Name the lanes so Perfetto shows "cube worker N" instead of bare
	// tids.
	laneSet := map[int]bool{}
	for _, e := range events {
		laneSet[e.tid] = true
	}
	lanes := make([]int, 0, len(laneSet))
	for tid := range laneSet {
		lanes = append(lanes, tid)
	}
	sort.Ints(lanes)
	needComma := len(events) > 0
	for _, tid := range lanes {
		name := "pipeline"
		if tid != 0 {
			name = fmt.Sprintf("cube worker %d", tid)
		}
		meta := fmt.Sprintf("{\"pid\":1,\"tid\":%d,\"ph\":\"M\",\"name\":\"thread_name\",\"args\":{\"name\":%q}}", tid, name)
		if needComma {
			meta = ",\n" + meta
		}
		needComma = true
		if _, err := io.WriteString(w, meta); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// appendMicros renders ns as a decimal microsecond count ("1234.567").
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	if frac != 0 {
		b = append(b, '.')
		b = append(b, byte('0'+frac/100), byte('0'+(frac/10)%10), byte('0'+frac%10))
	}
	return b
}
