package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestNilTracerZeroAlloc is the ISSUE's benchmark guard: every method on
// a disabled (nil) tracer must allocate nothing, so tracing can be
// threaded unconditionally through the hot cube-search and prover paths.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	cases := map[string]func(){
		"Begin/End": func() {
			s := tr.Begin("cube", "round")
			s.End(Int("candidates", 12), Bool("changed", true))
		},
		"BeginLane/End": func() {
			s := tr.BeginLane(3, "cube", "worker")
			s.End()
		},
		"Event": func() {
			tr.Event("bebop", "iter", Str("proc", "main"), Int("worklist", 7), Int("bdd_nodes", 100))
		},
		"ProverQuery": func() {
			tr.ProverQuery("valid", "x>0 => x>=0", 12, time.Microsecond, true, false, false)
		},
		"SpanAt": func() {
			tr.SpanAt("frontend", "parse", time.Time{}, time.Millisecond, DurNS("t_ns", time.Millisecond))
		},
	}
	for name, fn := range cases {
		if n := testing.AllocsPerRun(200, fn); n != 0 {
			t.Errorf("%s on nil tracer: %.1f allocs/op, want 0", name, n)
		}
	}
}

// emitSample drives one tracer through a representative slice of the
// taxonomy.
func emitSample(tr *Tracer) {
	sp := tr.Begin("frontend", "parse")
	sp.End(DurNS("t_ns", time.Millisecond))
	tr.SpanAt("frontend", "alias", time.Now().Add(-time.Millisecond), time.Millisecond)

	run := tr.Begin("abstract", "run")
	proc := tr.Begin("abstract", "proc")
	cs := tr.Begin("cube", "search")
	rd := tr.Begin("cube", "round")
	w := tr.BeginLane(1, "cube", "worker")
	tr.ProverQuery("valid", "p & q => r", 11, 3*time.Microsecond, true, false, false)
	tr.ProverQuery("valid", "p & q => r", 11, 0, true, true, false)
	tr.ProverQuery("unsat", strings.Repeat("x", 500), 500, 90*time.Microsecond, false, false, true)
	w.End()
	rd.End(Int("candidates", 3), Int("len", 1))
	cs.End()
	proc.End(Str("proc", "main"), Int("rounds", 1), Int("cubes", 3))
	run.End()
	tr.Event("abstract", "predicates", Int("count", 5))

	chk := tr.Begin("bebop", "check")
	fix := tr.Begin("bebop", "fixpoint")
	tr.Event("bebop", "iter", Str("proc", "main"), Int("worklist", 4), Int("bdd_nodes", 64))
	tr.Event("bebop", "iter", Str("proc", "main"), Int("worklist", 2), Int("bdd_nodes", 80))
	fix.End()
	chk.End()

	na := tr.Begin("newton", "analyze")
	na.End(Int("path_len", 9), Int("infeasible_index", 2), Int("preds_harvested", 4),
		Bool("feasible", false), Bool("gave_up", false))

	tr.Event("slam", "outcome", Str("outcome", "verified"), Int("iterations", 2))
}

func TestJSONLValidatesAgainstSchema(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})
	emitSample(tr)
	n, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted JSONL failed schema validation: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("no JSONL lines emitted")
	}
	// Every line must also be plain valid JSON with only expected keys
	// (ValidateLine uses DisallowUnknownFields, so this is double-checked),
	// and carry the correct record type.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line is not JSON: %v: %s", err, line)
		}
	}
}

func TestValidateLineRejections(t *testing.T) {
	bad := []string{
		`{"type":"span","dur":1,"cat":"cube","name":"round"}`,             // missing ts
		`{"ts":1,"type":"span","cat":"cube","name":"round"}`,              // span without dur
		`{"ts":1,"type":"event","dur":3,"cat":"cube","name":"round"}`,     // event with dur
		`{"ts":1,"type":"span","dur":1,"cat":"nope","name":"round"}`,      // unknown category
		`{"ts":1,"type":"span","dur":1,"cat":"cube","name":"nope"}`,       // unknown name
		`{"ts":1,"type":"huh","cat":"cube","name":"round"}`,               // bad type
		`{"ts":1,"type":"event","cat":"cube","name":"round","tid":0}`,     // explicit tid 0
		`{"ts":1,"type":"event","cat":"cube","name":"round","extra":1}`,   // unknown key
		`{"ts":1,"type":"event","cat":"cube","name":"round","fields":{"x":[1]}}`, // non-scalar field
	}
	for _, line := range bad {
		if err := ValidateLine([]byte(line)); err == nil {
			t.Errorf("ValidateLine accepted invalid line: %s", line)
		}
	}
	good := `{"ts":0,"type":"span","dur":42,"cat":"prover","name":"query","tid":2,"fields":{"kind":"valid","size":9,"cache_hit":false}}`
	if err := ValidateLine([]byte(good)); err != nil {
		t.Errorf("ValidateLine rejected valid line: %v", err)
	}
}

func TestReportAggregation(t *testing.T) {
	tr := New(Config{})
	emitSample(tr)
	r := tr.Report()

	if r.Outcome != "verified" || r.Iterations != 2 {
		t.Errorf("outcome = %q/%d, want verified/2", r.Outcome, r.Iterations)
	}
	if r.Predicates != 5 {
		t.Errorf("predicates = %d, want 5", r.Predicates)
	}
	if r.ProverCalls != 3 || r.CacheHits != 1 || r.CacheMisses != 2 || r.ProverGaveUp != 1 {
		t.Errorf("prover counts = %d/%d/%d/%d, want 3/1/2/1",
			r.ProverCalls, r.CacheHits, r.CacheMisses, r.ProverGaveUp)
	}
	if r.CubeRounds != 1 || r.CubesChecked != 3 {
		t.Errorf("cube rounds/checked = %d/%d, want 1/3", r.CubeRounds, r.CubesChecked)
	}
	if len(r.Procs) != 1 || r.Procs[0].Name != "main" || r.Procs[0].Rounds != 1 || r.Procs[0].Cubes != 3 {
		t.Errorf("procs = %+v, want one entry for main with rounds=1 cubes=3", r.Procs)
	}
	if r.BebopIterations != 2 || r.BebopIterationsByProc["main"] != 2 {
		t.Errorf("bebop iterations = %d (%v), want 2 for main", r.BebopIterations, r.BebopIterationsByProc)
	}
	if r.MaxWorklist != 4 || r.MaxBDDNodes != 80 {
		t.Errorf("max worklist/bdd = %d/%d, want 4/80", r.MaxWorklist, r.MaxBDDNodes)
	}
	if len(r.NewtonRounds) != 1 || r.NewtonRounds[0].PredsHarvested != 4 || r.NewtonRounds[0].InfeasibleIndex != 2 {
		t.Errorf("newton rounds = %+v", r.NewtonRounds)
	}
	// Cache hits are excluded from the latency histogram and solver time.
	totalHist := 0
	for _, h := range r.ProverHist {
		totalHist += h.Count
	}
	if totalHist != 2 {
		t.Errorf("histogram counts %d queries, want 2 (cache hits excluded)", totalHist)
	}
	if r.SolverNS != int64(3*time.Microsecond+90*time.Microsecond) {
		t.Errorf("solver ns = %d", r.SolverNS)
	}
	if len(r.TopQueries) != 2 || r.TopQueries[0].NS < r.TopQueries[1].NS {
		t.Errorf("top queries not sorted descending: %+v", r.TopQueries)
	}
	if !strings.HasSuffix(r.TopQueries[0].Desc, "…") || len(r.TopQueries[0].Desc) > maxQueryDesc+len("…") {
		t.Errorf("long query desc not truncated: %q", r.TopQueries[0].Desc)
	}
	for _, s := range []string{"parse", "alias", "signatures", "abstract", "cube-search", "check", "fixpoint", "newton"} {
		if s == "signatures" {
			continue // emitSample does not emit a signatures span
		}
		if _, ok := r.StageNS[s]; !ok {
			t.Errorf("stage %q missing from StageNS %v", s, r.StageNS)
		}
	}

	// Renderers must not fail and must mention headline numbers.
	txt := r.Text()
	for _, want := range []string{"outcome: verified", "predicates: 5", "theorem prover calls: 3", "cubes checked: 3"} {
		if !strings.Contains(txt, want) {
			t.Errorf("report text missing %q:\n%s", want, txt)
		}
	}
	if _, err := r.JSON(); err != nil {
		t.Errorf("report JSON: %v", err)
	}
}

func TestTopQueryBound(t *testing.T) {
	tr := New(Config{})
	for i := 0; i < 100; i++ {
		tr.ProverQuery("valid", "q", 1, time.Duration(i)*time.Microsecond, true, false, false)
	}
	r := tr.Report()
	if len(r.TopQueries) != topKQueries {
		t.Fatalf("top queries = %d, want %d", len(r.TopQueries), topKQueries)
	}
	if r.TopQueries[0].NS != int64(99*time.Microsecond) {
		t.Errorf("top query ns = %d, want 99µs", r.TopQueries[0].NS)
	}
	for i := 1; i < len(r.TopQueries); i++ {
		if r.TopQueries[i].NS > r.TopQueries[i-1].NS {
			t.Fatalf("top queries out of order at %d: %+v", i, r.TopQueries)
		}
	}
}

func TestWriteChrome(t *testing.T) {
	tr := New(Config{RetainChrome: true})
	emitSample(tr)
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	phases := map[string]int{}
	lanes := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if tid, ok := e["tid"].(float64); ok {
			lanes[tid] = true
		}
		if _, ok := e["pid"]; !ok {
			t.Errorf("event missing pid: %v", e)
		}
	}
	if phases["X"] == 0 {
		t.Error("no complete (X) span events in chrome export")
	}
	if phases["i"] == 0 {
		t.Error("no instant (i) events in chrome export")
	}
	if phases["M"] == 0 {
		t.Error("no thread_name metadata events in chrome export")
	}
	if !lanes[1] {
		t.Error("cube worker lane (tid 1) missing from chrome export")
	}

	// A nil tracer still writes a loadable (empty) document.
	var nilBuf bytes.Buffer
	if err := (*Tracer)(nil).WriteChrome(&nilBuf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(nilBuf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-tracer chrome export invalid: %v", err)
	}
}

func TestConcurrentEmission(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf, RetainChrome: true})
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				s := tr.BeginLane(w+1, "cube", "worker")
				tr.ProverQuery("valid", "f", 1, time.Microsecond, true, false, false)
				s.End()
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	if n, err := Validate(bytes.NewReader(buf.Bytes())); err != nil || n != 8*50*2 {
		t.Fatalf("concurrent JSONL: %d lines, err %v (want %d lines)", n, err, 8*50*2)
	}
	if r := tr.Report(); r.ProverCalls != 400 {
		t.Fatalf("prover calls = %d, want 400", r.ProverCalls)
	}
}
