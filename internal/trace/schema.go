package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// The JSONL schema, enforced by Validate (and cmd/tracelint) so the
// sinks cannot drift from their consumers:
//
//	{"ts": <ns int ≥ 0>,            required
//	 "type": "span" | "event",      required
//	 "dur": <ns int ≥ 0>,           required iff type == "span"
//	 "cat": <known category>,       required
//	 "name": <known name for cat>,  required
//	 "tid": <int ≥ 1>,              optional (lane; 0 is implied)
//	 "fields": {k: str|num|bool}}   optional
//
// Categories and event names form a closed taxonomy (Taxonomy). Adding a
// new trace point means adding it there first — tests validate every
// emitted line against it.

// Taxonomy is the closed registry of event categories and names.
var Taxonomy = map[string][]string{
	"frontend": {"parse", "alias"},
	"abstract": {"run", "signatures", "proc", "predicates"},
	"cube":     {"search", "enforce", "round", "worker"},
	// Model-enumeration abstraction engine (-abs-engine=models): one
	// "session" span per blocking-clause loop, with kind/checks/models/
	// complete fields. The default cube engine emits none of these.
	"abs.enum": {"session"},
	"prover":   {"query"},
	"bebop":    {"check", "fixpoint", "iter"},
	"newton":   {"analyze"},
	"slam":     {"iteration", "outcome"},
	"degrade":  {"limit"},
	// Checkpoint/resume (internal/checkpoint): "restore" spans the
	// journal replay + warm start, "commit" spans one durable iteration
	// record, "final" marks the outcome record, "repair" reports a
	// torn-tail truncation and "coldstart" a journal rejected as corrupt
	// or incompatible.
	"checkpoint": {"restore", "commit", "final", "repair", "coldstart"},
	// Daemon supervision (internal/server): lanes the merged Chrome
	// export synthesizes from a job's durable event log — "supervise" and
	// "attempt" span the daemon lane, the rest are instants mirroring the
	// job-event taxonomy (state transitions, worker spawn/kill, orphan
	// adoption, CEGAR progress heartbeats). No worker emits these into
	// trace JSONL; they exist so merged traces validate under one schema.
	"daemon": {"supervise", "attempt", "spawn", "kill", "adopt", "state", "progress"},
	// Fleet routing (internal/fleet): instants mirroring the frontend's
	// durable ledger record taxonomy — a job's admission (and dedup
	// collapse), each backend dispatch, lease expiries (failovers),
	// post-restart adoptions and the terminal verdict. Synthesized-only,
	// like "daemon": no worker emits these, they exist so fleet event
	// streams rendered into merged traces validate under one schema.
	"fleet": {"admit", "dispatch", "lease", "adopt", "verdict"},
	// Remote prover-cache tier (internal/prover + internal/cacheserv):
	// "lookup" spans one budgeted remote fetch (hit/fallback fields),
	// "flush" spans one batched background publish, and "quarantine" is
	// the instant the verify mode benched the tier after a remote verdict
	// contradicted the local decision procedure.
	"cache": {"lookup", "flush", "quarantine"},
}

// rawEvent mirrors one JSONL line for validation.
type rawEvent struct {
	TS     *int64                     `json:"ts"`
	Type   string                     `json:"type"`
	Dur    *int64                     `json:"dur"`
	Cat    string                     `json:"cat"`
	Name   string                     `json:"name"`
	Tid    *int64                     `json:"tid"`
	Fields map[string]json.RawMessage `json:"fields"`
}

// ValidateLine checks one JSONL line against the schema.
func ValidateLine(line []byte) error {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var e rawEvent
	if err := dec.Decode(&e); err != nil {
		return fmt.Errorf("not a schema-conforming JSON object: %v", err)
	}
	if e.TS == nil || *e.TS < 0 {
		return fmt.Errorf("missing or negative ts")
	}
	switch e.Type {
	case "span":
		if e.Dur == nil || *e.Dur < 0 {
			return fmt.Errorf("span without non-negative dur")
		}
	case "event":
		if e.Dur != nil {
			return fmt.Errorf("instant event must not carry dur")
		}
	default:
		return fmt.Errorf("type %q is not span|event", e.Type)
	}
	names, ok := Taxonomy[e.Cat]
	if !ok {
		return fmt.Errorf("unknown category %q", e.Cat)
	}
	if !containsStr(names, e.Name) {
		return fmt.Errorf("unknown name %q in category %q", e.Name, e.Cat)
	}
	if e.Tid != nil && *e.Tid < 1 {
		return fmt.Errorf("explicit tid must be >= 1")
	}
	for k, v := range e.Fields {
		if k == "" {
			return fmt.Errorf("empty field key")
		}
		var s string
		var n float64
		var bo bool
		if json.Unmarshal(v, &s) != nil && json.Unmarshal(v, &n) != nil && json.Unmarshal(v, &bo) != nil {
			return fmt.Errorf("field %q is not string|number|bool", k)
		}
	}
	return nil
}

// Validate checks a whole JSONL stream, returning the first violation
// with its 1-based line number, and the number of valid lines read.
func Validate(r io.Reader) (lines int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := ValidateLine(line); err != nil {
			return n, fmt.Errorf("line %d: %w", n, err)
		}
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}
