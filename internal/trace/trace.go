// Package trace is the structured observability subsystem for the whole
// SLAM pipeline: a span-based, concurrency-safe event recorder threaded
// through parsing, alias analysis, signature computation, per-procedure
// abstraction, every cube-search round, every prover query, every Bebop
// fixpoint iteration and every Newton refinement round.
//
// Three sinks consume the event stream:
//
//   - a JSONL event log (one self-describing JSON object per line, see
//     schema.go for the schema and Validate for the checker);
//   - a Chrome trace_event export (WriteChrome) loadable in Perfetto or
//     chrome://tracing, where the parallel cube-search workers render as
//     separate lanes;
//   - an end-of-run aggregation (Report) rolling the events up into the
//     paper's Table 1/2 cost columns plus prover-latency histograms and
//     the top-K most expensive queries and procedures.
//
// A nil *Tracer is the valid "disabled" tracer: every method is nil-safe,
// returns immediately, and allocates nothing (guarded by
// TestNilTracerZeroAlloc), so pipeline code can thread a tracer
// unconditionally. All methods on a non-nil Tracer are safe for
// concurrent use; the parallel cube-search workers share one instance.
package trace

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Field is one typed key/value attached to an event or span. Fields are
// concrete values (no interface boxing) so that constructing them on the
// disabled-tracer fast path costs zero allocations.
type Field struct {
	Key string
	// kind selects which payload is live.
	kind fieldKind
	str  string
	num  int64
}

type fieldKind uint8

const (
	fieldStr fieldKind = iota
	fieldInt
	fieldBool
)

// Str builds a string-valued field.
func Str(key, val string) Field { return Field{Key: key, kind: fieldStr, str: val} }

// Int builds an integer-valued field.
func Int(key string, val int) Field { return Field{Key: key, kind: fieldInt, num: int64(val)} }

// Int64 builds an integer-valued field from an int64.
func Int64(key string, val int64) Field { return Field{Key: key, kind: fieldInt, num: val} }

// Bool builds a boolean-valued field.
func Bool(key string, val bool) Field {
	f := Field{Key: key, kind: fieldBool}
	if val {
		f.num = 1
	}
	return f
}

// DurNS builds a duration field in nanoseconds. By convention duration
// field keys end in "_ns" so schema-aware consumers (and the golden-test
// normalizer) can identify wall-clock-dependent values.
func DurNS(key string, d time.Duration) Field {
	return Field{Key: key, kind: fieldInt, num: int64(d)}
}

// chromeEvent is one retained event for the Chrome trace_event export.
type chromeEvent struct {
	cat, name string
	ts, dur   int64 // nanoseconds since tracer start; dur < 0 = instant
	tid       int
	args      string // pre-rendered JSON object ("" = none)
}

// Config selects the sinks of a Tracer.
type Config struct {
	// JSONL receives one JSON object per event, newline-terminated. May
	// be nil. The tracer serializes writes; the writer itself need not be
	// concurrency-safe.
	JSONL io.Writer
	// RetainChrome keeps events in memory for WriteChrome. Aggregation
	// for Report is always on; retention is opt-in because event streams
	// can be large.
	RetainChrome bool
}

// Tracer records structured events. The zero value is not useful; use
// New. A nil *Tracer is the disabled tracer: all methods no-op.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	w      io.Writer
	buf    []byte
	retain bool
	events []chromeEvent
	agg    aggregator
}

// New returns a tracer recording from now, with the configured sinks.
func New(cfg Config) *Tracer {
	t := &Tracer{start: time.Now(), w: cfg.JSONL, retain: cfg.RetainChrome}
	t.agg.init()
	return t
}

// Span is an in-flight interval measurement started by Begin. The zero
// Span (from a nil tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	start time.Duration // since t.start
	tid   int
}

// Begin opens a span on lane 0. Close it with End; the span is emitted
// (with its duration) at End time.
func (t *Tracer) Begin(cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, start: time.Since(t.start)}
}

// BeginLane opens a span on an explicit lane (Chrome tid). The parallel
// cube-search workers use one lane per worker so they render as separate
// rows in Perfetto.
func (t *Tracer) BeginLane(lane int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, start: time.Since(t.start), tid: lane}
}

// End closes the span, emitting one "span" record carrying the start
// timestamp, duration and the given fields.
func (s Span) End(fields ...Field) {
	if s.t == nil {
		return
	}
	dur := time.Since(s.t.start) - s.start
	s.t.emit(s.cat, s.name, s.start, dur, s.tid, fields)
}

// Event emits an instant (zero-duration) record.
func (t *Tracer) Event(cat, name string, fields ...Field) {
	if t == nil {
		return
	}
	t.emit(cat, name, time.Since(t.start), -1, 0, fields)
}

// SpanAt emits a span retroactively from an explicit start time and
// duration — used for stages measured before the caller had a tracer in
// hand (e.g. predabs.Load's parse/alias timings replayed by the CLIs).
// Starts earlier than the tracer's own epoch are clamped to 0.
func (t *Tracer) SpanAt(cat, name string, start time.Time, d time.Duration, fields ...Field) {
	if t == nil {
		return
	}
	ts := start.Sub(t.start)
	if ts < 0 {
		ts = 0
	}
	t.emit(cat, name, ts, d, 0, fields)
}

// ProverQuery records one theorem-prover query: its kind ("valid" or
// "unsat"), a size proxy (length of the canonical formula key), the
// query wall time, verdict, whether the memo cache answered it, whether
// the resource cap fired, and a truncated description of the formula.
// This is a dedicated method (rather than Event with fields) because it
// is the hottest trace point in the system.
func (t *Tracer) ProverQuery(kind string, desc string, size int, d time.Duration, verdict, cacheHit, gaveUp bool) {
	if t == nil {
		return
	}
	ts := time.Since(t.start) - d
	if ts < 0 {
		ts = 0
	}
	t.emit("prover", "query", ts, d, 0, []Field{
		Str("kind", kind),
		Int("size", size),
		Bool("verdict", verdict),
		Bool("cache_hit", cacheHit),
		Bool("gave_up", gaveUp),
		Str("desc", truncate(desc, maxQueryDesc)),
	})
}

// Degrade records the first firing of a resource limit: the stage that
// degraded, the canonical limit name, and a short detail (procedure or
// query description). internal/budget deduplicates repeats, so each
// (stage, limit) pair appears at most once per run.
func (t *Tracer) Degrade(stage, limit, detail string) {
	if t == nil {
		return
	}
	t.Event("degrade", "limit",
		Str("stage", stage),
		Str("limit", limit),
		Str("detail", truncate(detail, maxQueryDesc)))
}

// maxQueryDesc bounds the retained formula text per prover query.
const maxQueryDesc = 160

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	// Back off to a rune boundary so the cut never splits UTF-8.
	for n > 0 && s[n]&0xC0 == 0x80 {
		n--
	}
	return s[:n] + "…"
}

// emit serializes one record to the JSONL sink, retains it for the
// Chrome export, and feeds the aggregator. It must not retain the fields
// slice (so callers' variadic backing arrays can live on the stack).
func (t *Tracer) emit(cat, name string, ts, dur time.Duration, tid int, fields []Field) {
	t.mu.Lock()
	defer t.mu.Unlock()

	t.agg.consume(cat, name, dur, fields)

	var args string
	if t.w != nil || t.retain {
		args = renderFields(fields)
	}
	if t.w != nil {
		b := t.buf[:0]
		b = append(b, `{"ts":`...)
		b = strconv.AppendInt(b, int64(ts), 10)
		if dur >= 0 {
			b = append(b, `,"type":"span","dur":`...)
			b = strconv.AppendInt(b, int64(dur), 10)
		} else {
			b = append(b, `,"type":"event"`...)
		}
		b = append(b, `,"cat":`...)
		b = appendJSONString(b, cat)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, name)
		if tid != 0 {
			b = append(b, `,"tid":`...)
			b = strconv.AppendInt(b, int64(tid), 10)
		}
		if args != "" {
			b = append(b, `,"fields":`...)
			b = append(b, args...)
		}
		b = append(b, '}', '\n')
		t.buf = b
		t.w.Write(b) // best-effort sink: a failing writer must not abort the pipeline
	}
	if t.retain {
		t.events = append(t.events, chromeEvent{
			cat: cat, name: name, ts: int64(ts), dur: int64(dur), tid: tid, args: args,
		})
	}
}

// renderFields renders the fields as a JSON object, or "" when empty.
func renderFields(fields []Field) string {
	if len(fields) == 0 {
		return ""
	}
	b := make([]byte, 0, 64)
	b = append(b, '{')
	for i, f := range fields {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case fieldStr:
			b = appendJSONString(b, f.str)
		case fieldInt:
			b = strconv.AppendInt(b, f.num, 10)
		case fieldBool:
			if f.num != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	b = append(b, '}')
	return string(b)
}

// appendJSONString appends s as a JSON string literal, escaping control
// characters, quotes and backslashes. Non-ASCII bytes pass through
// (formula text is UTF-8 already).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			b = append(b, '\\', 'u', '0', '0', hexDigit(c>>4), hexDigit(c&0xf))
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}

func hexDigit(n byte) byte {
	if n < 10 {
		return '0' + n
	}
	return 'a' + n - 10
}
