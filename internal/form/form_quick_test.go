package form

import (
	"math/rand"
	"testing"
)

// randTerm builds a random term over x, y, p (pointer-ish) with bounded
// depth.
func randTerm(r *rand.Rand, depth int) Term {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return Num{V: int64(r.Intn(7) - 3)}
		case 1:
			return Var{Name: "x"}
		case 2:
			return Var{Name: "y"}
		default:
			return Var{Name: "p"}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Arith{Op: OpAdd, X: randTerm(r, depth-1), Y: randTerm(r, depth-1)}
	case 1:
		return Arith{Op: OpSub, X: randTerm(r, depth-1), Y: randTerm(r, depth-1)}
	case 2:
		return Neg{X: randTerm(r, depth-1)}
	case 3:
		return Deref{X: Var{Name: "p"}}
	case 4:
		return Sel{X: Deref{X: Var{Name: "p"}}, Field: "f"}
	default:
		return randTerm(r, depth-1)
	}
}

func randFormula(r *rand.Rand, depth int) Formula {
	if depth == 0 {
		ops := []RelOp{Eq, Ne, Lt, Le, Gt, Ge}
		return Cmp{Op: ops[r.Intn(len(ops))], X: randTerm(r, 1), Y: randTerm(r, 1)}
	}
	switch r.Intn(4) {
	case 0:
		return MkAnd(randFormula(r, depth-1), randFormula(r, depth-1))
	case 1:
		return MkOr(randFormula(r, depth-1), randFormula(r, depth-1))
	case 2:
		return MkNot(randFormula(r, depth-1))
	default:
		return randFormula(r, depth-1)
	}
}

func randEnvQ(r *rand.Rand) *Env {
	env := NewEnv()
	env.Store(Var{Name: "x"}, int64(r.Intn(9)-4))
	env.Store(Var{Name: "y"}, int64(r.Intn(9)-4))
	// p points at x, y, or nowhere meaningful.
	switch r.Intn(3) {
	case 0:
		env.Store(Var{Name: "p"}, env.AddrOfVar("x"))
	case 1:
		env.Store(Var{Name: "p"}, env.AddrOfVar("y"))
	default:
		env.Store(Var{Name: "p"}, int64(r.Intn(50)))
	}
	return env
}

// Property: NNF preserves truth on every environment.
func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 800; trial++ {
		f := randFormula(r, 3)
		g := NNF(f)
		env := randEnvQ(r)
		vf, err1 := env.EvalFormula(f)
		vg, err2 := env.EvalFormula(g)
		if err1 != nil || err2 != nil {
			t.Fatalf("eval error: %v %v", err1, err2)
		}
		if vf != vg {
			t.Fatalf("NNF changed semantics:\n  f = %s (%v)\n  g = %s (%v)", f, vf, g, vg)
		}
	}
}

// Property: MkNot is an involution semantically.
func TestDoubleNegationSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	for trial := 0; trial < 500; trial++ {
		f := randFormula(r, 3)
		g := MkNot(MkNot(f))
		env := randEnvQ(r)
		vf, _ := env.EvalFormula(f)
		vg, _ := env.EvalFormula(g)
		if vf != vg {
			t.Fatalf("double negation changed semantics: %s vs %s", f, g)
		}
	}
}

// Property: substituting a variable by its current value preserves truth.
func TestSubstByValuePreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	for trial := 0; trial < 500; trial++ {
		f := randFormula(r, 2)
		env := randEnvQ(r)
		xv, _ := env.Eval(Var{Name: "x"})
		g := SubstReads(f, Var{Name: "x"}, Num{V: xv})
		vf, err1 := env.EvalFormula(f)
		vg, err2 := env.EvalFormula(g)
		if err1 != nil || err2 != nil {
			continue
		}
		if vf != vg {
			t.Fatalf("substitution by value changed truth:\n  f = %s\n  g = %s (x=%d)", f, g, xv)
		}
	}
}

// Property: SimplifyTerm preserves the value of terms.
func TestSimplifyTermPreservesValue(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	for trial := 0; trial < 800; trial++ {
		tm := randTerm(r, 3)
		st := SimplifyTerm(tm)
		env := randEnvQ(r)
		v1, err1 := env.Eval(tm)
		v2, err2 := env.Eval(st)
		if err1 != nil || err2 != nil {
			continue
		}
		if v1 != v2 {
			t.Fatalf("SimplifyTerm changed value: %s=%d vs %s=%d", tm, v1, st, v2)
		}
	}
}

// Property: canonical strings identify semantics-relevant structure:
// equal strings means equal evaluation everywhere (spot check).
func TestCanonicalStringConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(75))
	for trial := 0; trial < 300; trial++ {
		f := randFormula(r, 2)
		g := randFormula(r, 2)
		if f.String() != g.String() {
			continue
		}
		env := randEnvQ(r)
		vf, _ := env.EvalFormula(f)
		vg, _ := env.EvalFormula(g)
		if vf != vg {
			t.Fatalf("same string, different semantics: %s", f)
		}
	}
}

// Mutating-free check: Subst must not modify its input.
func TestSubstDoesNotMutate(t *testing.T) {
	f := MkAnd(Cmp{Op: Lt, X: Var{Name: "x"}, Y: Var{Name: "y"}},
		Cmp{Op: Eq, X: Deref{X: Var{Name: "p"}}, Y: Num{V: 1}})
	before := f.String()
	_ = Subst(f, Var{Name: "x"}, Num{V: 9})
	_ = SubstReads(f, Var{Name: "x"}, Num{V: 9})
	if f.String() != before {
		t.Fatal("substitution mutated its input")
	}
}
