package form

import (
	"fmt"

	"predabs/internal/cast"
)

// FromExpr converts a MiniC expression into a term. It fails on calls
// (predicates contain no function calls) and on boolean operators, which
// belong in formulas.
func FromExpr(e cast.Expr) (Term, error) {
	switch e := e.(type) {
	case *cast.IntLit:
		return Num{V: e.Value}, nil
	case *cast.NullLit:
		return Num{V: 0}, nil
	case *cast.VarRef:
		return Var{Name: e.Name}, nil
	case *cast.Unary:
		switch e.Op {
		case cast.Neg:
			x, err := FromExpr(e.X)
			if err != nil {
				return nil, err
			}
			if n, ok := x.(Num); ok {
				return Num{V: -n.V}, nil
			}
			return Neg{X: x}, nil
		case cast.Deref_:
			x, err := FromExpr(e.X)
			if err != nil {
				return nil, err
			}
			return Deref{X: x}, nil
		case cast.AddrOf:
			x, err := FromExpr(e.X)
			if err != nil {
				return nil, err
			}
			return AddrOf{X: x}, nil
		case cast.Not:
			return nil, fmt.Errorf("boolean operator %s in term position: %s", e.Op, e)
		}
	case *cast.Binary:
		if e.Op.IsRelational() || e.Op.IsLogical() {
			return nil, fmt.Errorf("boolean operator %s in term position: %s", e.Op, e)
		}
		x, err := FromExpr(e.X)
		if err != nil {
			return nil, err
		}
		y, err := FromExpr(e.Y)
		if err != nil {
			return nil, err
		}
		var op ArithOp
		switch e.Op {
		case cast.Add:
			op = OpAdd
		case cast.Sub:
			op = OpSub
		case cast.Mul:
			op = OpMul
		case cast.Div:
			op = OpDiv
		case cast.Mod:
			op = OpMod
		default:
			return nil, fmt.Errorf("unsupported binary operator %s", e.Op)
		}
		return Arith{Op: op, X: x, Y: y}, nil
	case *cast.Field:
		x, err := FromExpr(e.X)
		if err != nil {
			return nil, err
		}
		if e.Arrow {
			return Sel{X: Deref{X: x}, Field: e.Name}, nil
		}
		return Sel{X: x, Field: e.Name}, nil
	case *cast.Index:
		x, err := FromExpr(e.X)
		if err != nil {
			return nil, err
		}
		i, err := FromExpr(e.I)
		if err != nil {
			return nil, err
		}
		return Idx{X: x, I: i}, nil
	case *cast.Call:
		return nil, fmt.Errorf("function call in predicate: %s", e)
	}
	return nil, fmt.Errorf("unsupported expression %T: %v", e, e)
}

// FromCond converts a MiniC boolean expression into a formula. Scalar
// subexpressions in boolean position are compared against 0 (NULL).
func FromCond(e cast.Expr) (Formula, error) {
	switch e := e.(type) {
	case *cast.IntLit:
		if e.Value != 0 {
			return TrueF{}, nil
		}
		return FalseF{}, nil
	case *cast.Unary:
		if e.Op == cast.Not {
			f, err := FromCond(e.X)
			if err != nil {
				return nil, err
			}
			return MkNot(f), nil
		}
	case *cast.Binary:
		switch {
		case e.Op == cast.LAnd:
			x, err := FromCond(e.X)
			if err != nil {
				return nil, err
			}
			y, err := FromCond(e.Y)
			if err != nil {
				return nil, err
			}
			return MkAnd(x, y), nil
		case e.Op == cast.LOr:
			x, err := FromCond(e.X)
			if err != nil {
				return nil, err
			}
			y, err := FromCond(e.Y)
			if err != nil {
				return nil, err
			}
			return MkOr(x, y), nil
		case e.Op.IsRelational():
			x, err := FromExpr(e.X)
			if err != nil {
				return nil, err
			}
			y, err := FromExpr(e.Y)
			if err != nil {
				return nil, err
			}
			var op RelOp
			switch e.Op {
			case cast.Eq:
				op = Eq
			case cast.Ne:
				op = Ne
			case cast.Lt:
				op = Lt
			case cast.Le:
				op = Le
			case cast.Gt:
				op = Gt
			case cast.Ge:
				op = Ge
			}
			return MkCmp(op, x, y), nil
		}
	}
	// Scalar in boolean position: e != 0.
	t, err := FromExpr(e)
	if err != nil {
		return nil, err
	}
	return MkCmp(Ne, t, Num{V: 0}), nil
}
