package form

import (
	"sort"
	"strings"
)

// RelOp enumerates comparison operators in formulas.
type RelOp int

// Comparison operators.
const (
	Eq RelOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op RelOp) String() string {
	switch op {
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// Negate returns the complementary operator.
func (op RelOp) Negate() RelOp {
	switch op {
	case Eq:
		return Ne
	case Ne:
		return Eq
	case Lt:
		return Ge
	case Le:
		return Gt
	case Gt:
		return Le
	case Ge:
		return Lt
	}
	return op
}

// Flip returns the operator with swapped operands (x op y == y Flip(op) x).
func (op RelOp) Flip() RelOp {
	switch op {
	case Lt:
		return Gt
	case Le:
		return Ge
	case Gt:
		return Lt
	case Ge:
		return Le
	}
	return op
}

// Formula is a quantifier-free boolean formula.
type Formula interface {
	formula()
	// String renders the formula in C-like syntax; canonical.
	String() string
}

// TrueF is the formula true.
type TrueF struct{}

// FalseF is the formula false.
type FalseF struct{}

// Cmp is the atom X Op Y.
type Cmp struct {
	Op   RelOp
	X, Y Term
}

// Not is logical negation.
type Not struct{ F Formula }

// And is n-ary conjunction (empty = true).
type And struct{ Fs []Formula }

// Or is n-ary disjunction (empty = false).
type Or struct{ Fs []Formula }

func (TrueF) formula()  {}
func (FalseF) formula() {}
func (Cmp) formula()    {}
func (Not) formula()    {}
func (And) formula()    {}
func (Or) formula()     {}

func (TrueF) String() string  { return "true" }
func (FalseF) String() string { return "false" }

func (f Cmp) String() string {
	return f.X.String() + " " + f.Op.String() + " " + f.Y.String()
}

func (f Not) String() string { return "!(" + f.F.String() + ")" }

func (f And) String() string {
	if len(f.Fs) == 0 {
		return "true"
	}
	parts := make([]string, len(f.Fs))
	for i, g := range f.Fs {
		parts[i] = "(" + g.String() + ")"
	}
	return strings.Join(parts, " && ")
}

func (f Or) String() string {
	if len(f.Fs) == 0 {
		return "false"
	}
	parts := make([]string, len(f.Fs))
	for i, g := range f.Fs {
		parts[i] = "(" + g.String() + ")"
	}
	return strings.Join(parts, " || ")
}

// FormulaEq reports structural equality via canonical strings.
func FormulaEq(a, b Formula) bool { return a.String() == b.String() }

// MkAnd builds a flattened, simplified conjunction.
func MkAnd(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case TrueF:
		case FalseF:
			return FalseF{}
		case And:
			for _, g := range f.Fs {
				switch g.(type) {
				case TrueF:
				case FalseF:
					return FalseF{}
				default:
					out = append(out, g)
				}
			}
		default:
			out = append(out, f)
		}
	}
	out = dedupFormulas(out)
	switch len(out) {
	case 0:
		return TrueF{}
	case 1:
		return out[0]
	}
	return And{Fs: out}
}

// MkOr builds a flattened, simplified disjunction.
func MkOr(fs ...Formula) Formula {
	var out []Formula
	for _, f := range fs {
		switch f := f.(type) {
		case FalseF:
		case TrueF:
			return TrueF{}
		case Or:
			for _, g := range f.Fs {
				switch g.(type) {
				case FalseF:
				case TrueF:
					return TrueF{}
				default:
					out = append(out, g)
				}
			}
		default:
			out = append(out, f)
		}
	}
	out = dedupFormulas(out)
	switch len(out) {
	case 0:
		return FalseF{}
	case 1:
		return out[0]
	}
	return Or{Fs: out}
}

func dedupFormulas(fs []Formula) []Formula {
	seen := map[string]bool{}
	out := fs[:0]
	for _, f := range fs {
		k := f.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	return out
}

// MkNot builds a simplified negation (pushes through constants and
// comparisons, cancels double negation).
func MkNot(f Formula) Formula {
	switch f := f.(type) {
	case TrueF:
		return FalseF{}
	case FalseF:
		return TrueF{}
	case Not:
		return f.F
	case Cmp:
		return Cmp{Op: f.Op.Negate(), X: f.X, Y: f.Y}
	}
	return Not{F: f}
}

// MkCmp builds a comparison, constant-folding ground atoms.
func MkCmp(op RelOp, x, y Term) Formula {
	nx, xok := x.(Num)
	ny, yok := y.(Num)
	if xok && yok {
		var b bool
		switch op {
		case Eq:
			b = nx.V == ny.V
		case Ne:
			b = nx.V != ny.V
		case Lt:
			b = nx.V < ny.V
		case Le:
			b = nx.V <= ny.V
		case Gt:
			b = nx.V > ny.V
		case Ge:
			b = nx.V >= ny.V
		}
		if b {
			return TrueF{}
		}
		return FalseF{}
	}
	// Address constants: &a and &b are distinct for distinct variables,
	// and never NULL. (Within one formula, equal names mean equal cells.)
	if ax, okx := x.(AddrOf); okx {
		if vx, ok := ax.X.(Var); ok {
			if ay, oky := y.(AddrOf); oky {
				if vy, ok := ay.X.(Var); ok && (op == Eq || op == Ne) {
					same := vx.Name == vy.Name
					if (op == Eq) == same {
						return TrueF{}
					}
					return FalseF{}
				}
			}
			if n, ok := y.(Num); ok && n.V == 0 && (op == Eq || op == Ne) {
				if op == Eq {
					return FalseF{}
				}
				return TrueF{}
			}
		}
	}
	if n, ok := x.(Num); ok && n.V == 0 && (op == Eq || op == Ne) {
		if ay, oky := y.(AddrOf); oky {
			if _, ok := ay.X.(Var); ok {
				if op == Eq {
					return FalseF{}
				}
				return TrueF{}
			}
		}
	}
	if op == Eq && TermEq(x, y) {
		return TrueF{}
	}
	if op == Ne && TermEq(x, y) {
		return FalseF{}
	}
	if (op == Le || op == Ge) && TermEq(x, y) {
		return TrueF{}
	}
	if (op == Lt || op == Gt) && TermEq(x, y) {
		return FalseF{}
	}
	return Cmp{Op: op, X: x, Y: y}
}

// NNF converts f into negation normal form (negations only on atoms,
// realized by flipped comparison operators).
func NNF(f Formula) Formula {
	switch f := f.(type) {
	case TrueF, FalseF, Cmp:
		return f
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = NNF(g)
		}
		return MkAnd(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = NNF(g)
		}
		return MkOr(out...)
	case Not:
		switch g := f.F.(type) {
		case TrueF:
			return FalseF{}
		case FalseF:
			return TrueF{}
		case Cmp:
			return Cmp{Op: g.Op.Negate(), X: g.X, Y: g.Y}
		case Not:
			return NNF(g.F)
		case And:
			out := make([]Formula, len(g.Fs))
			for i, h := range g.Fs {
				out[i] = NNF(Not{F: h})
			}
			return MkOr(out...)
		case Or:
			out := make([]Formula, len(g.Fs))
			for i, h := range g.Fs {
				out[i] = NNF(Not{F: h})
			}
			return MkAnd(out...)
		}
	}
	return f
}

// Subst replaces every occurrence of subterm old with repl throughout f.
func Subst(f Formula, old, repl Term) Formula {
	switch f := f.(type) {
	case TrueF, FalseF:
		return f
	case Cmp:
		return MkCmp(f.Op, SubstTerm(f.X, old, repl), SubstTerm(f.Y, old, repl))
	case Not:
		return MkNot(Subst(f.F, old, repl))
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Subst(g, old, repl)
		}
		return MkAnd(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = Subst(g, old, repl)
		}
		return MkOr(out...)
	}
	return f
}

// FormulaLocations returns the distinct location subterms of f, outer
// (larger) locations first.
func FormulaLocations(f Formula) []Term {
	var terms []Term
	collectFormulaTerms(f, &terms)
	var out []Term
	seen := map[string]bool{}
	for _, t := range terms {
		for _, loc := range Locations(t) {
			k := loc.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, loc)
			}
		}
	}
	sortBySizeDesc(out)
	return out
}

func collectFormulaTerms(f Formula, out *[]Term) {
	switch f := f.(type) {
	case Cmp:
		*out = append(*out, f.X, f.Y)
	case Not:
		collectFormulaTerms(f.F, out)
	case And:
		for _, g := range f.Fs {
			collectFormulaTerms(g, out)
		}
	case Or:
		for _, g := range f.Fs {
			collectFormulaTerms(g, out)
		}
	}
}

// FormulaVars returns the sorted variable names mentioned in f.
func FormulaVars(f Formula) []string {
	set := map[string]bool{}
	var terms []Term
	collectFormulaTerms(f, &terms)
	for _, t := range terms {
		collectTermVars(t, set)
	}
	return sortedKeys(set)
}

// Atoms returns the distinct comparison atoms of f in order of appearance.
func Atoms(f Formula) []Cmp {
	var out []Cmp
	seen := map[string]bool{}
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case Cmp:
			if !seen[f.String()] {
				seen[f.String()] = true
				out = append(out, f)
			}
		case Not:
			walk(f.F)
		case And:
			for _, g := range f.Fs {
				walk(g)
			}
		case Or:
			for _, g := range f.Fs {
				walk(g)
			}
		}
	}
	walk(f)
	return out
}

// SortFormulas orders formulas by canonical string, for deterministic output.
func SortFormulas(fs []Formula) {
	sort.Slice(fs, func(i, j int) bool { return fs[i].String() < fs[j].String() })
}
