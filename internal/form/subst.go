package form

// This file implements the read/address occurrence distinction needed by
// Morris' general axiom of assignment (paper Section 4.2).
//
// A term like &v mentions the location v without reading its cell, and
// p->f reads the cell of p (to compute the address) and the field cell
// itself — but not the struct cell *p as a whole. Weakest preconditions
// must only case-split on and substitute read occurrences.

// ReadLocations returns the distinct locations whose cells are read by f,
// outermost (largest) first.
func ReadLocations(f Formula) []Term {
	var terms []Term
	collectFormulaTerms(f, &terms)
	seen := map[string]bool{}
	var out []Term
	add := func(t Term) {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	for _, t := range terms {
		collectReads(t, add)
	}
	sortBySizeDesc(out)
	return out
}

// TermReadLocations returns the read locations of a single term,
// outermost first.
func TermReadLocations(t Term) []Term {
	seen := map[string]bool{}
	var out []Term
	add := func(t Term) {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	collectReads(t, add)
	sortBySizeDesc(out)
	return out
}

// collectReads visits every location whose cell the value of t depends on.
func collectReads(t Term, add func(Term)) {
	switch t := t.(type) {
	case Num:
	case Var:
		add(t)
	case Deref:
		add(t)
		collectReads(t.X, add)
	case Sel:
		add(t)
		collectAddrReads(t.X, add)
	case Idx:
		add(t)
		collectAddrReads(t.X, add)
		collectReads(t.I, add)
	case AddrOf:
		collectAddrReads(t.X, add)
	case Arith:
		collectReads(t.X, add)
		collectReads(t.Y, add)
	case Neg:
		collectReads(t.X, add)
	}
}

// collectAddrReads visits the locations read while computing the address
// of location loc (the base of a Sel/Idx or the operand of AddrOf).
func collectAddrReads(loc Term, add func(Term)) {
	switch loc := loc.(type) {
	case Var:
		// Address of a variable reads nothing.
	case Deref:
		collectReads(loc.X, add)
	case Sel:
		collectAddrReads(loc.X, add)
	case Idx:
		collectAddrReads(loc.X, add)
		collectReads(loc.I, add)
	default:
		collectReads(loc, add)
	}
}

// SubstReads replaces read occurrences of location old in f with repl,
// leaving address occurrences (under &, or as a Sel/Idx base) intact.
func SubstReads(f Formula, old, repl Term) Formula {
	switch f := f.(type) {
	case TrueF, FalseF:
		return f
	case Cmp:
		return MkCmp(f.Op, substReadsTerm(f.X, old, repl), substReadsTerm(f.Y, old, repl))
	case Not:
		return MkNot(SubstReads(f.F, old, repl))
	case And:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = SubstReads(g, old, repl)
		}
		return MkAnd(out...)
	case Or:
		out := make([]Formula, len(f.Fs))
		for i, g := range f.Fs {
			out[i] = SubstReads(g, old, repl)
		}
		return MkOr(out...)
	}
	return f
}

func substReadsTerm(t, old, repl Term) Term {
	if TermEq(t, old) {
		return repl
	}
	switch t := t.(type) {
	case Deref:
		return SimplifyTerm(Deref{X: substReadsTerm(t.X, old, repl)})
	case Sel:
		return SimplifyTerm(Sel{X: substAddrTerm(t.X, old, repl), Field: t.Field})
	case Idx:
		return SimplifyTerm(Idx{X: substAddrTerm(t.X, old, repl), I: substReadsTerm(t.I, old, repl)})
	case AddrOf:
		return SimplifyTerm(AddrOf{X: substAddrTerm(t.X, old, repl)})
	case Arith:
		return SimplifyTerm(Arith{Op: t.Op, X: substReadsTerm(t.X, old, repl), Y: substReadsTerm(t.Y, old, repl)})
	case Neg:
		return SimplifyTerm(Neg{X: substReadsTerm(t.X, old, repl)})
	}
	return t
}

// substAddrTerm rewrites inside an address-position location: the location
// itself is not a read, but pointers and indexes inside it are.
func substAddrTerm(loc, old, repl Term) Term {
	switch loc := loc.(type) {
	case Var:
		return loc
	case Deref:
		return SimplifyTerm(Deref{X: substReadsTerm(loc.X, old, repl)})
	case Sel:
		return SimplifyTerm(Sel{X: substAddrTerm(loc.X, old, repl), Field: loc.Field})
	case Idx:
		return SimplifyTerm(Idx{X: substAddrTerm(loc.X, old, repl), I: substReadsTerm(loc.I, old, repl)})
	}
	return substReadsTerm(loc, old, repl)
}

// SimplifyTerm applies local algebraic simplifications: *(&x) → x,
// constant folding, x±0 → x, double negation.
func SimplifyTerm(t Term) Term {
	switch t := t.(type) {
	case Deref:
		if a, ok := t.X.(AddrOf); ok {
			return a.X
		}
		return t
	case Neg:
		if n, ok := t.X.(Num); ok {
			return Num{V: -n.V}
		}
		if n, ok := t.X.(Neg); ok {
			return n.X
		}
		return t
	case Arith:
		nx, xok := t.X.(Num)
		ny, yok := t.Y.(Num)
		if xok && yok {
			switch t.Op {
			case OpAdd:
				return Num{V: nx.V + ny.V}
			case OpSub:
				return Num{V: nx.V - ny.V}
			case OpMul:
				return Num{V: nx.V * ny.V}
			case OpDiv:
				if ny.V != 0 {
					return Num{V: nx.V / ny.V}
				}
			case OpMod:
				if ny.V != 0 {
					return Num{V: nx.V % ny.V}
				}
			}
			return t
		}
		if yok && ny.V == 0 && (t.Op == OpAdd || t.Op == OpSub) {
			return t.X
		}
		if xok && nx.V == 0 && t.Op == OpAdd {
			return t.Y
		}
		if yok && ny.V == 1 && t.Op == OpMul {
			return t.X
		}
		if xok && nx.V == 1 && t.Op == OpMul {
			return t.Y
		}
		return t
	}
	return t
}
