package form

import "fmt"

// Env is a concrete little-machine state used to evaluate terms and
// formulas: every variable lives in memory at a distinct address, and all
// reads go through Mem. This gives dereference, field selection and array
// indexing a real semantics, which the property-based tests use as ground
// truth for weakest preconditions and the prover.
type Env struct {
	// Addr maps variable names to their (distinct, nonzero) addresses.
	Addr map[string]int64
	// Mem maps addresses to values (absent addresses read as 0).
	Mem map[int64]int64
	// FieldOff maps field names to offsets within their struct.
	FieldOff map[string]int64
}

// NewEnv returns an empty environment.
func NewEnv() *Env {
	return &Env{
		Addr:     map[string]int64{},
		Mem:      map[int64]int64{},
		FieldOff: map[string]int64{},
	}
}

// Clone deep-copies the environment.
func (env *Env) Clone() *Env {
	out := NewEnv()
	for k, v := range env.Addr {
		out.Addr[k] = v
	}
	for k, v := range env.Mem {
		out.Mem[k] = v
	}
	for k, v := range env.FieldOff {
		out.FieldOff[k] = v
	}
	return out
}

// AddrOfVar returns the address of the named variable, allocating a fresh
// distinct address on first use.
func (env *Env) AddrOfVar(name string) int64 {
	if a, ok := env.Addr[name]; ok {
		return a
	}
	a := int64(1000 + 16*len(env.Addr))
	env.Addr[name] = a
	return a
}

func (env *Env) fieldOff(name string) int64 {
	if o, ok := env.FieldOff[name]; ok {
		return o
	}
	o := int64(1 + len(env.FieldOff))
	env.FieldOff[name] = o
	return o
}

// EvalAddr evaluates the address denoted by location loc.
func (env *Env) EvalAddr(loc Term) (int64, error) {
	switch loc := loc.(type) {
	case Var:
		return env.AddrOfVar(loc.Name), nil
	case Deref:
		return env.Eval(loc.X)
	case Sel:
		base, err := env.EvalAddr(loc.X)
		if err != nil {
			return 0, err
		}
		return base + env.fieldOff(loc.Field), nil
	case Idx:
		base, err := env.EvalAddr(loc.X)
		if err != nil {
			return 0, err
		}
		i, err := env.Eval(loc.I)
		if err != nil {
			return 0, err
		}
		return base + 1 + i, nil
	}
	return 0, fmt.Errorf("not a location: %s", loc)
}

// Eval evaluates the term to an integer value.
func (env *Env) Eval(t Term) (int64, error) {
	switch t := t.(type) {
	case Num:
		return t.V, nil
	case Var, Deref, Sel, Idx:
		a, err := env.EvalAddr(t)
		if err != nil {
			return 0, err
		}
		return env.Mem[a], nil
	case AddrOf:
		return env.EvalAddr(t.X)
	case Neg:
		v, err := env.Eval(t.X)
		return -v, err
	case Arith:
		x, err := env.Eval(t.X)
		if err != nil {
			return 0, err
		}
		y, err := env.Eval(t.Y)
		if err != nil {
			return 0, err
		}
		switch t.Op {
		case OpAdd:
			return x + y, nil
		case OpSub:
			return x - y, nil
		case OpMul:
			return x * y, nil
		case OpDiv:
			if y == 0 {
				return 0, nil // total semantics for testing
			}
			return x / y, nil
		case OpMod:
			if y == 0 {
				return 0, nil
			}
			return x % y, nil
		}
	}
	return 0, fmt.Errorf("cannot evaluate term %s", t)
}

// Store writes value v to the location loc.
func (env *Env) Store(loc Term, v int64) error {
	a, err := env.EvalAddr(loc)
	if err != nil {
		return err
	}
	env.Mem[a] = v
	return nil
}

// EvalFormula evaluates f to a truth value.
func (env *Env) EvalFormula(f Formula) (bool, error) {
	switch f := f.(type) {
	case TrueF:
		return true, nil
	case FalseF:
		return false, nil
	case Cmp:
		x, err := env.Eval(f.X)
		if err != nil {
			return false, err
		}
		y, err := env.Eval(f.Y)
		if err != nil {
			return false, err
		}
		switch f.Op {
		case Eq:
			return x == y, nil
		case Ne:
			return x != y, nil
		case Lt:
			return x < y, nil
		case Le:
			return x <= y, nil
		case Gt:
			return x > y, nil
		case Ge:
			return x >= y, nil
		}
	case Not:
		v, err := env.EvalFormula(f.F)
		return !v, err
	case And:
		for _, g := range f.Fs {
			v, err := env.EvalFormula(g)
			if err != nil {
				return false, err
			}
			if !v {
				return false, nil
			}
		}
		return true, nil
	case Or:
		for _, g := range f.Fs {
			v, err := env.EvalFormula(g)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	}
	return false, fmt.Errorf("cannot evaluate formula %s", f)
}
