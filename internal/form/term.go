// Package form defines the quantifier-free logic used throughout the
// toolkit: integer/pointer terms with uninterpreted dereference, field
// selection and array element functions, and boolean formulas over
// (dis)equalities and linear inequalities.
//
// This is the paper's predicate language ("pure C boolean expressions
// containing no function calls", Section 1): quantifier-free, with a
// logical memory model. Locations — variables, field accesses from a
// location, dereferences of a location (Section 4.2) — are a syntactic
// subclass of terms.
package form

import (
	"fmt"
	"sort"
	"strings"
)

// Term is an integer- or pointer-valued term.
type Term interface {
	term()
	// String renders the term in C-like syntax; the result is canonical
	// (used as cache and equality keys).
	String() string
}

// Num is an integer constant. NULL is Num 0, matching C.
type Num struct{ V int64 }

// Var is a named program variable (scalar, pointer, struct or array).
type Var struct{ Name string }

// Deref is *X for a pointer-valued X.
type Deref struct{ X Term }

// Sel is field selection from a struct-valued term: (X).Field.
// C's p->f is represented as Sel{Deref{p}, f}.
type Sel struct {
	X     Term
	Field string
}

// Idx is array element selection X[I].
type Idx struct {
	X Term
	I Term
}

// AddrOf is &X for a location X.
type AddrOf struct{ X Term }

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators. Mul by a non-constant, Div and Mod are treated as
// uninterpreted by the prover (sound, incomplete).
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
)

func (op ArithOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	}
	return "?"
}

// Arith is a binary arithmetic operation.
type Arith struct {
	Op   ArithOp
	X, Y Term
}

// Neg is unary minus.
type Neg struct{ X Term }

func (Num) term()    {}
func (Var) term()    {}
func (Deref) term()  {}
func (Sel) term()    {}
func (Idx) term()    {}
func (AddrOf) term() {}
func (Arith) term()  {}
func (Neg) term()    {}

func (t Num) String() string { return fmt.Sprintf("%d", t.V) }
func (t Var) String() string { return t.Name }

func (t Deref) String() string { return "*" + parenTerm(t.X) }

func (t Sel) String() string {
	// Render Sel{Deref{p}, f} as p->f, like the source syntax.
	if d, ok := t.X.(Deref); ok {
		return parenTerm(d.X) + "->" + t.Field
	}
	return parenTerm(t.X) + "." + t.Field
}

func (t Idx) String() string { return parenTerm(t.X) + "[" + t.I.String() + "]" }

func (t AddrOf) String() string { return "&" + parenTerm(t.X) }

func (t Arith) String() string {
	return "(" + t.X.String() + " " + t.Op.String() + " " + t.Y.String() + ")"
}

func (t Neg) String() string { return "-" + parenTerm(t.X) }

func parenTerm(t Term) string {
	switch t.(type) {
	case Arith, Neg:
		return "(" + t.String() + ")"
	default:
		return t.String()
	}
}

// TermEq reports structural equality, using canonical strings.
func TermEq(a, b Term) bool { return a.String() == b.String() }

// IsLocation reports whether t is a location in the paper's sense: a
// variable, a field access from a location, a dereference of a location,
// or an array element.
func IsLocation(t Term) bool {
	switch t := t.(type) {
	case Var:
		return true
	case Deref:
		return true
	case Sel:
		return IsLocation(t.X) || isStructDeref(t.X)
	case Idx:
		return true
	}
	return false
}

func isStructDeref(t Term) bool {
	_, ok := t.(Deref)
	return ok
}

// Locations returns the distinct maximal-first list of location subterms of
// t (outer locations before the locations nested inside them).
func Locations(t Term) []Term {
	var out []Term
	seen := map[string]bool{}
	var walk func(t Term)
	walk = func(t Term) {
		if IsLocation(t) {
			k := t.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
		switch t := t.(type) {
		case Deref:
			walk(t.X)
		case Sel:
			walk(t.X)
		case Idx:
			walk(t.X)
			walk(t.I)
		case AddrOf:
			walk(t.X)
		case Arith:
			walk(t.X)
			walk(t.Y)
		case Neg:
			walk(t.X)
		}
	}
	walk(t)
	sortBySizeDesc(out)
	return out
}

// sortBySizeDesc orders terms with larger (outer) terms first, breaking ties
// by string for determinism.
func sortBySizeDesc(ts []Term) {
	sort.SliceStable(ts, func(i, j int) bool {
		si, sj := termSize(ts[i]), termSize(ts[j])
		if si != sj {
			return si > sj
		}
		return ts[i].String() < ts[j].String()
	})
}

// TermSize returns the node count of t (used for inner/outer ordering).
func TermSize(t Term) int { return termSize(t) }

func termSize(t Term) int {
	switch t := t.(type) {
	case Num, Var:
		return 1
	case Deref:
		return 1 + termSize(t.X)
	case Sel:
		return 1 + termSize(t.X)
	case Idx:
		return 1 + termSize(t.X) + termSize(t.I)
	case AddrOf:
		return 1 + termSize(t.X)
	case Arith:
		return 1 + termSize(t.X) + termSize(t.Y)
	case Neg:
		return 1 + termSize(t.X)
	}
	return 1
}

// TermVars returns the sorted set of variable names mentioned in t.
func TermVars(t Term) []string {
	set := map[string]bool{}
	collectTermVars(t, set)
	return sortedKeys(set)
}

func collectTermVars(t Term, set map[string]bool) {
	switch t := t.(type) {
	case Var:
		set[t.Name] = true
	case Deref:
		collectTermVars(t.X, set)
	case Sel:
		collectTermVars(t.X, set)
	case Idx:
		collectTermVars(t.X, set)
		collectTermVars(t.I, set)
	case AddrOf:
		collectTermVars(t.X, set)
	case Arith:
		collectTermVars(t.X, set)
		collectTermVars(t.Y, set)
	case Neg:
		collectTermVars(t.X, set)
	}
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SubstTerm replaces every occurrence of the subterm old (by structural
// equality) in t with repl.
func SubstTerm(t, old, repl Term) Term {
	if TermEq(t, old) {
		return repl
	}
	switch t := t.(type) {
	case Deref:
		return Deref{X: SubstTerm(t.X, old, repl)}
	case Sel:
		return Sel{X: SubstTerm(t.X, old, repl), Field: t.Field}
	case Idx:
		return Idx{X: SubstTerm(t.X, old, repl), I: SubstTerm(t.I, old, repl)}
	case AddrOf:
		return AddrOf{X: SubstTerm(t.X, old, repl)}
	case Arith:
		return Arith{Op: t.Op, X: SubstTerm(t.X, old, repl), Y: SubstTerm(t.Y, old, repl)}
	case Neg:
		return Neg{X: SubstTerm(t.X, old, repl)}
	}
	return t
}

// Addr returns the term denoting the address of location loc:
// Addr(v) = &v, Addr(*p) = p, Addr(l.f) = &(l.f), Addr(a[i]) = &(a[i]).
func Addr(loc Term) Term {
	if d, ok := loc.(Deref); ok {
		return d.X
	}
	return AddrOf{X: loc}
}

// JoinTerms renders a term list for diagnostics.
func JoinTerms(ts []Term, sep string) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, sep)
}
