package form

import (
	"testing"

	"predabs/internal/cparse"
)

func parseF(t *testing.T, src string) Formula {
	t.Helper()
	e, err := cparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	f, err := FromCond(e)
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	return f
}

func parseT(t *testing.T, src string) Term {
	t.Helper()
	e, err := cparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	tm, err := FromExpr(e)
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	return tm
}

func TestFromCondShapes(t *testing.T) {
	cases := []struct{ src, want string }{
		{"x < y", "x < y"},
		{"curr == NULL", "curr == 0"},
		{"curr->val > v", "curr->val > v"},
		{"!(x < y)", "x >= y"},
		{"a && b", "(a != 0) && (b != 0)"},
		{"p", "p != 0"},
		{"x == y + 1", "x == (y + 1)"},
		{"*p <= 0", "*p <= 0"},
		{"&x == p", "&x == p"},
		{"a[i] == 0", "a[i] == 0"},
		{"s.f == 1", "s.f == 1"},
		{"1", "true"},
		{"0", "false"},
	}
	for _, c := range cases {
		f := parseF(t, c.src)
		if f.String() != c.want {
			t.Errorf("%q: got %q, want %q", c.src, f.String(), c.want)
		}
	}
}

func TestFromCondRejectsCalls(t *testing.T) {
	e, err := cparse.ParseExpr("f(x) > 0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCond(e); err == nil {
		t.Fatal("expected error for call in predicate")
	}
}

func TestNNF(t *testing.T) {
	f := parseF(t, "!(x < y && p == NULL)")
	g := NNF(f)
	want := "(x >= y) || (p != 0)"
	if g.String() != want {
		t.Errorf("NNF: got %q, want %q", g.String(), want)
	}
}

func TestMkAndOrSimplification(t *testing.T) {
	x := parseF(t, "x < y")
	if got := MkAnd(TrueF{}, x, TrueF{}); !FormulaEq(got, x) {
		t.Errorf("And(true,x,true) = %s", got)
	}
	if _, ok := MkAnd(x, FalseF{}).(FalseF); !ok {
		t.Error("And(x,false) should be false")
	}
	if got := MkOr(FalseF{}, x); !FormulaEq(got, x) {
		t.Errorf("Or(false,x) = %s", got)
	}
	if _, ok := MkOr(x, TrueF{}).(TrueF); !ok {
		t.Error("Or(x,true) should be true")
	}
	if got := MkAnd(x, x); !FormulaEq(got, x) {
		t.Errorf("And(x,x) = %s, want dedup", got)
	}
}

func TestMkCmpFolding(t *testing.T) {
	if _, ok := MkCmp(Lt, Num{3}, Num{5}).(TrueF); !ok {
		t.Error("3<5 should fold to true")
	}
	if _, ok := MkCmp(Gt, Num{3}, Num{5}).(FalseF); !ok {
		t.Error("3>5 should fold to false")
	}
	if _, ok := MkCmp(Eq, Var{"x"}, Var{"x"}).(TrueF); !ok {
		t.Error("x==x should fold to true")
	}
	// Address constants.
	if _, ok := MkCmp(Eq, AddrOf{Var{"a"}}, AddrOf{Var{"b"}}).(FalseF); !ok {
		t.Error("&a==&b should fold to false")
	}
	if _, ok := MkCmp(Ne, AddrOf{Var{"a"}}, AddrOf{Var{"b"}}).(TrueF); !ok {
		t.Error("&a!=&b should fold to true")
	}
	if _, ok := MkCmp(Eq, AddrOf{Var{"a"}}, Num{0}).(FalseF); !ok {
		t.Error("&a==NULL should fold to false")
	}
	if _, ok := MkCmp(Eq, AddrOf{Var{"a"}}, AddrOf{Var{"a"}}).(TrueF); !ok {
		t.Error("&a==&a should fold to true")
	}
}

func TestReadLocations(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"x < y", []string{"x", "y"}},
		{"*p <= 0", []string{"*p", "p"}},
		{"curr->val > v", []string{"curr->val", "curr", "v"}},
		{"&x == p", []string{"p"}}, // &x reads nothing of x
		{"a[i] == 0", []string{"a[i]", "i"}},
		{"p->next->val == 0", []string{"p->next->val", "p->next", "p"}},
	}
	for _, c := range cases {
		f := parseF(t, c.src)
		locs := ReadLocations(f)
		got := make([]string, len(locs))
		for i, l := range locs {
			got[i] = l.String()
		}
		if len(got) != len(c.want) {
			t.Errorf("%q: locations %v, want %v", c.src, got, c.want)
			continue
		}
		seen := map[string]bool{}
		for _, g := range got {
			seen[g] = true
		}
		for _, w := range c.want {
			if !seen[w] {
				t.Errorf("%q: missing location %q in %v", c.src, w, got)
			}
		}
		// Outer-first ordering: first element is the largest.
		if len(got) > 1 && termSize(locs[0]) < termSize(locs[len(locs)-1]) {
			t.Errorf("%q: not outer-first: %v", c.src, got)
		}
	}
}

func TestSubstReadsLeavesAddressPositions(t *testing.T) {
	// Substituting x in (p == &x && x == 1) must only touch the read.
	f := parseF(t, "p == &x && x == 1")
	g := SubstReads(f, Var{"x"}, Num{7})
	want := "(p == &x) && (false)"
	_ = want
	// x == 1 becomes 7 == 1 → false, so the whole formula folds to false.
	if _, ok := g.(FalseF); !ok {
		t.Errorf("got %s, want false (7==1 folds)", g)
	}
	f2 := parseF(t, "p == &x")
	g2 := SubstReads(f2, Var{"x"}, Num{7})
	if g2.String() != "p == &x" {
		t.Errorf("&x must not be rewritten: %s", g2)
	}
}

func TestSubstReadsNestedChain(t *testing.T) {
	// Substituting p->next inside p->next->val rewrites the base.
	f := parseF(t, "p->next->val == 0")
	g := SubstReads(f, parseT(t, "p->next"), Var{"q"})
	if g.String() != "q->val == 0" {
		t.Errorf("got %s, want q->val == 0", g)
	}
}

func TestSubstDerefAddrSimplifies(t *testing.T) {
	// *(p) with p := &v becomes v.
	f := parseF(t, "*p == 1")
	g := SubstReads(f, Var{"p"}, AddrOf{Var{"v"}})
	if g.String() != "v == 1" {
		t.Errorf("got %s, want v == 1", g)
	}
}

func TestEvalBasics(t *testing.T) {
	env := NewEnv()
	if err := env.Store(Var{"x"}, 3); err != nil {
		t.Fatal(err)
	}
	if err := env.Store(Var{"y"}, 5); err != nil {
		t.Fatal(err)
	}
	got, err := env.EvalFormula(parseF(t, "x + 2 == y"))
	if err != nil || !got {
		t.Errorf("x+2==y: got %v err %v", got, err)
	}
	// Pointer: p = &x, *p reads x.
	pa, _ := env.EvalAddr(Var{"x"})
	if err := env.Store(Var{"p"}, pa); err != nil {
		t.Fatal(err)
	}
	got, err = env.EvalFormula(parseF(t, "*p == 3"))
	if err != nil || !got {
		t.Errorf("*p==3: got %v err %v", got, err)
	}
	got, err = env.EvalFormula(parseF(t, "p == &x"))
	if err != nil || !got {
		t.Errorf("p==&x: got %v err %v", got, err)
	}
}

func TestEvalFields(t *testing.T) {
	env := NewEnv()
	// s.f and s.g are distinct cells.
	if err := env.Store(Sel{X: Var{"s"}, Field: "f"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := env.Store(Sel{X: Var{"s"}, Field: "g"}, 2); err != nil {
		t.Fatal(err)
	}
	got, err := env.EvalFormula(parseF(t, "s.f == 1 && s.g == 2"))
	if err != nil || !got {
		t.Errorf("fields: got %v err %v", got, err)
	}
	// p->f where p = &s.
	sa, _ := env.EvalAddr(Var{"s"})
	if err := env.Store(Var{"p"}, sa); err != nil {
		t.Fatal(err)
	}
	got, err = env.EvalFormula(parseF(t, "p->f == 1"))
	if err != nil || !got {
		t.Errorf("p->f: got %v err %v", got, err)
	}
}

func TestAtoms(t *testing.T) {
	f := parseF(t, "x < y && (x < y || p == NULL)")
	atoms := Atoms(f)
	if len(atoms) != 2 {
		t.Fatalf("atoms: %v", atoms)
	}
}

func TestAddrHelper(t *testing.T) {
	if got := Addr(Deref{Var{"p"}}); got.String() != "p" {
		t.Errorf("Addr(*p) = %s", got)
	}
	if got := Addr(Var{"v"}); got.String() != "&v" {
		t.Errorf("Addr(v) = %s", got)
	}
}
