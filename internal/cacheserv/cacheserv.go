package cacheserv

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"predabs/internal/checkpoint"
	"predabs/internal/metrics"
	"predabs/internal/prover"
)

// maxBatchBody bounds one lookup/publish request body. Formula keys are
// whole canonical formula strings, so batches are large but bounded by
// the prover's flush batching; 64 MiB is far above any sane batch.
const maxBatchBody = 64 << 20

// Wire shapes for the batched endpoints. The prover's remote tier
// declares mirrors of these (importing this package from internal/prover
// would cycle); TestRemoteWireFormatGolden on the prover side pins the
// encoded bytes so the two cannot drift.
type lookupRequest struct {
	Partition string   `json:"partition"`
	Keys      []string `json:"keys"`
}

type lookupResponse struct {
	Entries []prover.CacheEntry `json:"entries"`
}

type publishRequest struct {
	Partition string              `json:"partition"`
	Entries   []prover.CacheEntry `json:"entries"`
}

type publishResponse struct {
	Accepted  int `json:"accepted"`
	Conflicts int `json:"conflicts"`
}

// Config parameterizes a cache Server.
type Config struct {
	// Dir holds the durable store file (required).
	Dir string
	// MaxBytes, when > 0, bounds the store log: a publish that pushes it
	// past this cap compacts the store into a new generation, keeping
	// the hottest partitions and evicting cold ones (see the package
	// comment). 0 disables compaction.
	MaxBytes int64
	// FS is the filesystem the store lives on (default: the real OS
	// filesystem). Tests inject fault-injecting implementations.
	FS checkpoint.FS
	// Metrics is the optional instrument registry (nil disables).
	Metrics *metrics.Registry
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
}

// cacheMetrics is the service's instrument set; nil instruments are
// zero-alloc no-ops per the metrics package contract.
type cacheMetrics struct {
	lookupReqs  *metrics.Counter
	lookupKeys  *metrics.Counter
	lookupHits  *metrics.Counter
	publishReqs *metrics.Counter
	published   *metrics.Counter
	conflicts   *metrics.Counter
	badReqs     *metrics.Counter

	shedDegraded *metrics.Counter
	compactions  *metrics.Counter
	reclaimed    *metrics.Counter
	compactFails *metrics.Counter
	evicted      *metrics.Counter
}

func newCacheMetrics(r *metrics.Registry, st *Store) cacheMetrics {
	if r == nil {
		return cacheMetrics{}
	}
	r.GaugeFunc("predcached_entries", "Live cache entries across all partitions.", func() int64 {
		_, entries := st.Stats()
		return int64(entries)
	})
	r.GaugeFunc("predcached_partitions", "Live compatibility-hash partitions.", func() int64 {
		parts, _ := st.Stats()
		return int64(parts)
	})
	r.GaugeFunc("predcached_store_log_bytes", "Store log size on disk in bytes.", st.Size)
	r.GaugeFunc("predcached_store_generation", "Compaction generations survived by the store.", st.Generation)
	r.GaugeFunc("predcached_persistence_degraded",
		"1 while the store is persistence-degraded (appends failing); lookups keep serving, publishes are shed.",
		func() int64 {
			if st.DegradedErr() != nil {
				return 1
			}
			return 0
		})
	return cacheMetrics{
		lookupReqs:  r.Counter("predcached_lookup_requests_total", "Batched lookup requests served."),
		lookupKeys:  r.Counter("predcached_lookup_keys_total", "Keys asked for across lookup batches."),
		lookupHits:  r.Counter("predcached_lookup_hits_total", "Keys answered from the store."),
		publishReqs: r.Counter("predcached_publish_requests_total", "Batched publish requests served."),
		published:   r.Counter("predcached_publish_entries_total", "Entries accepted into the store."),
		conflicts:   r.Counter("predcached_publish_conflicts_total", "Publishes dropped because the key already holds a different verdict."),
		badReqs:     r.Counter("predcached_bad_requests_total", "Requests refused as malformed."),

		shedDegraded: r.Counter("predcached_publish_shed_degraded_total",
			"Publishes refused while the store is persistence-degraded."),
		compactions: r.Counter("predcached_compactions_total",
			"Store compactions into a new generation."),
		reclaimed: r.Counter("predcached_compaction_reclaimed_bytes_total",
			"Store log bytes reclaimed by compactions."),
		compactFails: r.Counter("predcached_compaction_failures_total",
			"Store compactions abandoned (old generation kept serving)."),
		evicted: r.Counter("predcached_evicted_entries_total",
			"Cache entries evicted with their cold partitions by compaction."),
	}
}

// Server is the predcached HTTP service over one Store.
type Server struct {
	cfg   Config
	store *Store
	met   cacheMetrics
	start time.Time
}

// New opens the store under cfg.Dir (replaying and repairing the framed
// log) and returns the service.
func New(cfg Config) (*Server, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	st, err := OpenStoreFS(cfg.FS, cfg.Dir, cfg.MaxBytes)
	if err != nil {
		return nil, err
	}
	for _, w := range st.Warnings() {
		cfg.Logf("predcached store: %s", w)
	}
	s := &Server{cfg: cfg, store: st, met: newCacheMetrics(cfg.Metrics, st), start: time.Now()}
	st.onCompact = func(reclaimed int64, evicted int, ok bool) {
		if ok {
			s.met.compactions.Inc()
			s.met.reclaimed.Add(reclaimed)
			s.met.evicted.Add(int64(evicted))
			cfg.Logf("predcached: compacted store, reclaimed %d bytes, evicted %d entries", reclaimed, evicted)
		} else {
			s.met.compactFails.Inc()
			cfg.Logf("predcached: compaction failed, old generation kept serving")
		}
	}
	parts, entries := st.Stats()
	cfg.Logf("predcached: store open, %d entries across %d partitions", entries, parts)
	return s, nil
}

// Store exposes the underlying store (chaos harnesses seed and inspect
// it directly).
func (s *Server) Store() *Store { return s.store }

// Handler returns the predcached HTTP surface:
//
//	POST /v1/lookup     {"partition","keys":[...]} -> {"entries":[{"k","v"}...]}
//	POST /v1/publish    {"partition","entries":[...]} -> {"accepted","conflicts"}
//	GET  /v1/snapshot?partition=H   full sorted dump of one partition
//	GET  /v1/partitions             known partition hashes
//	GET  /metrics /healthz /readyz /statz   the usual operational routes
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		var req lookupRequest
		if !s.decode(w, r, &req) {
			return
		}
		if req.Partition == "" {
			s.badRequest(w, "partition must be set")
			return
		}
		s.met.lookupReqs.Inc()
		s.met.lookupKeys.Add(int64(len(req.Keys)))
		entries := s.store.Lookup(req.Partition, req.Keys)
		s.met.lookupHits.Add(int64(len(entries)))
		writeJSON(w, http.StatusOK, lookupResponse{Entries: entries})
	})
	mux.HandleFunc("POST /v1/publish", func(w http.ResponseWriter, r *http.Request) {
		var req publishRequest
		if !s.decode(w, r, &req) {
			return
		}
		if req.Partition == "" {
			s.badRequest(w, "partition must be set")
			return
		}
		s.met.publishReqs.Inc()
		accepted, conflicts, err := s.store.Publish(req.Partition, req.Entries)
		if err != nil {
			s.cfg.Logf("predcached: publish failed: %v", err)
			if s.store.DegradedErr() != nil {
				// The disk is refusing appends: shed the publish with
				// Retry-After rather than silently holding a verdict the
				// store could not persist. Lookups keep serving.
				s.met.shedDegraded.Inc()
				w.Header().Set("Retry-After", "30")
				writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
				return
			}
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		s.met.published.Add(int64(accepted))
		s.met.conflicts.Add(int64(conflicts))
		writeJSON(w, http.StatusOK, publishResponse{Accepted: accepted, Conflicts: conflicts})
	})
	mux.HandleFunc("GET /v1/snapshot", func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Query().Get("partition")
		if p == "" {
			s.badRequest(w, "partition must be set")
			return
		}
		writeJSON(w, http.StatusOK, lookupResponse{Entries: s.store.Snapshot(p)})
	})
	mux.HandleFunc("GET /v1/partitions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"partitions": s.store.Partitions()})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.cfg.Metrics.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "role": "cache",
			"uptime_s":             int64(time.Since(s.start).Seconds()),
			"persistence_degraded": s.store.DegradedErr() != nil})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		parts, entries := s.store.Stats()
		st := map[string]any{
			"role":                 "cache",
			"partitions":           parts,
			"entries":              entries,
			"uptime_s":             int64(time.Since(s.start).Seconds()),
			"store_log_bytes":      s.store.Size(),
			"store_generation":     s.store.Generation(),
			"persistence_degraded": s.store.DegradedErr() != nil,
		}
		if derr := s.store.DegradedErr(); derr != nil {
			st["persistence_error"] = derr.Error()
		}
		writeJSON(w, http.StatusOK, st)
	})
	return mux
}

// Close syncs and closes the durable store.
func (s *Server) Close() error { return s.store.Close() }

// decode reads one bounded JSON request body; a failure answers 400 and
// reports false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.met.badReqs.Inc()
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{"error": "batch too large"})
			return false
		}
		s.badRequest(w, err.Error())
		return false
	}
	return true
}

func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.met.badReqs.Inc()
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}
