// Disk-chaos tests for the predcached store: LRU compaction into new
// generations serves surviving partitions byte-identically to an
// unbounded twin, injected publish faults flip the service to
// persistence-degraded 503s while lookups keep serving, a rename fault
// at the compaction commit point leaves the old generation whole, and
// a concurrent replaying reader never observes a torn generation swap.
package cacheserv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"predabs/internal/checkpoint"
	"predabs/internal/faultinject"
	"predabs/internal/prover"
)

func chaosEntries(part string, n int) []prover.CacheEntry {
	out := make([]prover.CacheEntry, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, prover.CacheEntry{
			Key: fmt.Sprintf("(%s) formula-%03d with enough bytes to cost something", part, i),
			Val: i%2 == 0,
		})
	}
	return out
}

// TestDiskChaosCacheCompactionEquivalence publishes past the byte cap
// and compares the bounded store against an unbounded twin fed the
// identical traffic: every surviving partition answers byte-identical
// lookups and snapshots, the cap holds, and a restart replays the
// compacted generation losslessly.
func TestDiskChaosCacheCompactionEquivalence(t *testing.T) {
	const maxBytes = 4 << 10
	dir := t.TempDir()
	bounded, err := OpenStoreFS(nil, dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	twin := mustOpen(t, t.TempDir())
	defer twin.Close()

	for i := 0; i < 24; i++ {
		part := fmt.Sprintf("part-%02d", i)
		entries := chaosEntries(part, 8)
		if _, _, err := bounded.Publish(part, entries); err != nil {
			t.Fatalf("bounded publish %s: %v", part, err)
		}
		if _, _, err := twin.Publish(part, entries); err != nil {
			t.Fatalf("twin publish %s: %v", part, err)
		}
	}
	if bounded.Generation() == 0 {
		t.Fatalf("store never compacted: %d bytes against a %d cap", bounded.Size(), maxBytes)
	}
	if bounded.Size() > maxBytes {
		t.Fatalf("cap not enforced after compaction: %d > %d", bounded.Size(), maxBytes)
	}
	if err := bounded.DegradedErr(); err != nil {
		t.Fatalf("compaction degraded a healthy store: %v", err)
	}
	survivors := bounded.Partitions()
	if len(survivors) == 0 || len(survivors) >= 24 {
		t.Fatalf("compaction kept %d/24 partitions; eviction never happened or dropped everything", len(survivors))
	}
	// The hottest partition — the one the last publish just touched —
	// must always survive.
	hot := "part-23"
	found := false
	for _, p := range survivors {
		if p == hot {
			found = true
		}
	}
	if !found {
		t.Fatalf("compaction evicted the hottest partition %s; survivors %v", hot, survivors)
	}

	check := func(st *Store, label string) {
		t.Helper()
		for _, part := range survivors {
			keys := make([]string, 0, 8)
			for _, e := range chaosEntries(part, 8) {
				keys = append(keys, e.Key)
			}
			if got, want := fmt.Sprint(st.Lookup(part, keys)), fmt.Sprint(twin.Lookup(part, keys)); got != want {
				t.Fatalf("%s: %s lookup diverged from the unbounded twin:\n  got  %s\n  want %s", label, part, got, want)
			}
			if got, want := fmt.Sprint(st.Snapshot(part)), fmt.Sprint(twin.Snapshot(part)); got != want {
				t.Fatalf("%s: %s snapshot diverged from the unbounded twin", label, part)
			}
		}
	}
	check(bounded, "live")
	if err := bounded.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	reopened, err := OpenStoreFS(nil, dir, maxBytes)
	if err != nil {
		t.Fatalf("reopen compacted generation: %v", err)
	}
	defer reopened.Close()
	if len(reopened.Warnings()) != 0 {
		t.Fatalf("compacted generation reopened with warnings: %v", reopened.Warnings())
	}
	check(reopened, "reopened")
}

// TestDiskChaosCachePublishFaultDegradedService fills the disk under
// the store mid-publish and drives the HTTP surface: publishes shed
// with 503 + Retry-After, lookups keep answering from memory, healthz
// says degraded, and a restart on a healthy disk serves every acked
// entry.
func TestDiskChaosCachePublishFaultDegradedService(t *testing.T) {
	dir := t.TempDir()
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{
		FailWriteAfter: 6, Sticky: true, PathFilter: FileName,
	})
	s, err := New(Config{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	acked := 0
	var code int
	for i := 0; i < 6; i++ {
		code = postJSON(t, ts.URL+"/v1/publish", publishRequest{
			Partition: fmt.Sprintf("p%d", i),
			Entries:   []prover.CacheEntry{{Key: fmt.Sprintf("k%d", i), Val: true}},
		}, nil)
		if code != http.StatusOK {
			break
		}
		acked++
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("disk-full publish = %d, want 503 (acked %d)", code, acked)
	}
	if acked == 0 {
		t.Fatal("no publish acked before the fault")
	}
	// Retry-After tells honest clients when to come back.
	b, _ := json.Marshal(publishRequest{Partition: "late", Entries: []prover.CacheEntry{{Key: "k", Val: true}}})
	resp, err := http.Post(ts.URL+"/v1/publish", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded publish = %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Lookups still serve everything acked, from memory.
	for i := 0; i < acked; i++ {
		var look lookupResponse
		if code := postJSON(t, ts.URL+"/v1/lookup", lookupRequest{
			Partition: fmt.Sprintf("p%d", i), Keys: []string{fmt.Sprintf("k%d", i)},
		}, &look); code != http.StatusOK || len(look.Entries) != 1 {
			t.Fatalf("lookup p%d while degraded = %d %+v", i, code, look)
		}
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if deg, _ := health["persistence_degraded"].(bool); !deg {
		t.Fatalf("healthz hides the degradation: %v", health)
	}
	s.Close()

	s2, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatalf("healthy restart: %v", err)
	}
	defer s2.Close()
	for i := 0; i < acked; i++ {
		got := s2.Store().Lookup(fmt.Sprintf("p%d", i), []string{fmt.Sprintf("k%d", i)})
		if len(got) != 1 || got[0].Val != true {
			t.Fatalf("acked entry p%d/k%d lost across restart: %v", i, i, got)
		}
	}
}

// TestDiskChaosCacheCompactionRenameFaultKeepsServing aborts the first
// compaction at its rename commit point: the store must keep serving
// every entry from the old generation without degrading, and the next
// compaction (healthy rename) must land.
func TestDiskChaosCacheCompactionRenameFaultKeepsServing(t *testing.T) {
	const maxBytes = 2 << 10
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{FailRenameAfter: 1, PathFilter: FileName})
	st, err := OpenStoreFS(ffs, t.TempDir(), maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	published := map[string][]prover.CacheEntry{}
	for i := 0; st.compactFailures == 0; i++ {
		if i > 64 {
			t.Fatalf("compaction never attempted: %d bytes against a %d cap", st.Size(), maxBytes)
		}
		part := fmt.Sprintf("part-%02d", i)
		entries := chaosEntries(part, 4)
		if _, _, err := st.Publish(part, entries); err != nil {
			t.Fatalf("publish during aborted compaction: %v", err)
		}
		published[part] = entries
	}
	if st.Generation() != 0 {
		t.Fatalf("aborted compaction bumped the generation to %d", st.Generation())
	}
	if err := st.DegradedErr(); err != nil {
		t.Fatalf("aborted compaction degraded the store: %v", err)
	}
	// Nothing was evicted: the old generation serves everything.
	for part, entries := range published {
		keys := make([]string, 0, len(entries))
		for _, e := range entries {
			keys = append(keys, e.Key)
		}
		if got := st.Lookup(part, keys); len(got) != len(entries) {
			t.Fatalf("aborted compaction lost entries in %s: %d/%d", part, len(got), len(entries))
		}
	}
	// The rename fault was one-shot: keep publishing until the retried
	// compaction commits.
	for i := 65; st.Generation() == 0; i++ {
		if i > 160 {
			t.Fatalf("compaction never recovered after the rename fault")
		}
		part := fmt.Sprintf("part-%02d", i)
		if _, _, err := st.Publish(part, chaosEntries(part, 4)); err != nil {
			t.Fatalf("publish after rename fault: %v", err)
		}
	}
	if st.Size() > maxBytes {
		t.Fatalf("cap not enforced after recovered compaction: %d > %d", st.Size(), maxBytes)
	}
}

// TestDiskChaosCacheShortWriteTornPublish tears a publish append with a
// short write: the publish errors, the store degrades stickily, and a
// clean reopen repairs the tail back to exactly the acked entries.
func TestDiskChaosCacheShortWriteTornPublish(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStoreFS(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Publish("p", []prover.CacheEntry{{Key: "acked", Val: true}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	ffs := faultinject.NewFS(nil, faultinject.FSConfig{ShortWriteAfter: 2, Sticky: true, PathFilter: FileName})
	st2, err := OpenStoreFS(ffs, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st2.Publish("p", []prover.CacheEntry{{Key: "torn", Val: false}}); err == nil {
		t.Fatal("torn publish reported success")
	}
	if st2.DegradedErr() == nil {
		t.Fatal("torn publish did not degrade the store")
	}
	if _, _, err := st2.Publish("p", []prover.CacheEntry{{Key: "after", Val: true}}); err == nil {
		t.Fatal("publish succeeded on a degraded store")
	}
	st2.Close()

	st3, err := OpenStoreFS(nil, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if len(st3.Warnings()) == 0 {
		t.Fatal("torn tail repaired without a warning")
	}
	got := st3.Lookup("p", []string{"acked", "torn", "after"})
	if len(got) != 1 || got[0].Key != "acked" || got[0].Val != true {
		t.Fatalf("repair must keep exactly the acked entry; got %v", got)
	}
	if _, _, err := st3.Publish("p", []prover.CacheEntry{{Key: "fresh", Val: true}}); err != nil {
		t.Fatalf("publish after repair: %v", err)
	}
}

// TestDiskChaosCacheCompactionRacingReader replays the store file
// continuously while publishes drive it through several compaction
// generations: because the rename swap is atomic and open handles pin
// the old inode, a reader must never see a bad magic, a torn mix of
// generations, or an entry value contradicting first-write-wins.
func TestDiskChaosCacheCompactionRacingReader(t *testing.T) {
	const maxBytes = 2 << 10
	dir := t.TempDir()
	st, err := OpenStoreFS(nil, dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	path := st.path

	// Oracle of every value ever published (first write wins, and
	// values are never mutated, so any replayed entry must match).
	var oracleMu sync.Mutex
	oracle := map[string]bool{}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := checkpoint.ReplayLog(path, Magic, func(payload []byte) {
				var rec record
				if jerr := json.Unmarshal(payload, &rec); jerr != nil {
					t.Errorf("reader: undecodable frame: %v", jerr)
					return
				}
				oracleMu.Lock()
				for _, e := range rec.Entries {
					if want, ok := oracle[rec.Partition+"\x00"+e.Key]; ok && want != e.Val {
						t.Errorf("reader: %s/%s = %v contradicts first-write-wins (%v)",
							rec.Partition, e.Key, e.Val, want)
					}
				}
				oracleMu.Unlock()
			})
			if err != nil {
				t.Errorf("reader: replay failed mid-compaction: %v", err)
				return
			}
		}
	}()

	for i := 0; i < 120 && st.Generation() < 3; i++ {
		part := fmt.Sprintf("part-%03d", i)
		entries := chaosEntries(part, 4)
		oracleMu.Lock()
		for _, e := range entries {
			oracle[part+"\x00"+e.Key] = e.Val
		}
		oracleMu.Unlock()
		if _, _, err := st.Publish(part, entries); err != nil {
			t.Fatalf("publish %s: %v", part, err)
		}
	}
	close(stop)
	wg.Wait()
	if st.Generation() < 3 {
		t.Fatalf("only %d generations; the race never exercised a swap", st.Generation())
	}
}
