// Package cacheserv implements predcached, the fleet-shared prover
// cache service: a durable, partitioned store of prover.CacheEntry
// verdicts served over batched HTTP lookup/publish. One node's proofs
// warm every node.
//
// Entries are partitioned by the checkpoint compatibility hash
// (checkpoint.CompatKey.Hash), so verdicts computed by a different tool
// version, under different limits, or by a different abstraction engine
// can never cross-pollute. Within a partition the store is first-write-
// wins: a publish for an existing key with a different value is counted
// as a conflict and discarded — a poisoned publisher cannot overwrite
// good entries.
//
// Persistence rides the checkpoint package's framed log (magic prefix,
// length+CRC32 frames, fsync per append, torn-tail truncation on open),
// so a SIGKILLed cache service restarts losslessly minus at most the
// batch being written.
package cacheserv

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"predabs/internal/checkpoint"
	"predabs/internal/prover"
)

const (
	// Magic stamps the store file; the terminator keeps any other framed
	// log from sharing a prefix.
	Magic = "PREDABSCACHE1\x00"
	// FileName is the durable store file inside the data directory.
	FileName = "cache.predabs"
)

// record is one durable publish batch: only the entries that were new
// at publish time, so replay is append-cost-proportional and
// first-write-wins is preserved byte-for-byte across restarts.
type record struct {
	Partition string              `json:"p"`
	Entries   []prover.CacheEntry `json:"e"`
}

// Store is the in-memory cache backed by the framed log. All methods
// are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	parts   map[string]map[string]bool
	entries int
	log     *checkpoint.Log
}

// OpenStore opens (or creates) the store under dir, replaying every
// intact record and truncating a torn tail. A file with foreign magic
// surfaces as *checkpoint.CorruptError.
func OpenStore(dir string) (*Store, error) {
	st := &Store{parts: map[string]map[string]bool{}}
	log, err := checkpoint.OpenLog(filepath.Join(dir, FileName), Magic, func(payload []byte) {
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			// CRC-intact but unparseable can only mean a newer schema;
			// skipping keeps the readable prefix serving.
			return
		}
		st.applyLocked(rec.Partition, rec.Entries)
	})
	if err != nil {
		return nil, err
	}
	st.log = log
	return st, nil
}

// applyLocked merges entries into a partition, first-write-wins.
// Callers hold mu (or are the single-threaded replay).
func (st *Store) applyLocked(partition string, entries []prover.CacheEntry) {
	if partition == "" {
		return
	}
	part := st.parts[partition]
	if part == nil {
		part = map[string]bool{}
		st.parts[partition] = part
	}
	for _, e := range entries {
		if _, ok := part[e.Key]; ok {
			continue
		}
		part[e.Key] = e.Val
		st.entries++
	}
}

// Lookup returns the entries known for keys within partition, sorted by
// key. Unknown keys are simply absent.
func (st *Store) Lookup(partition string, keys []string) []prover.CacheEntry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]prover.CacheEntry, 0, len(keys))
	part := st.parts[partition]
	if part == nil {
		return out
	}
	for _, k := range keys {
		if v, ok := part[k]; ok {
			out = append(out, prover.CacheEntry{Key: k, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Publish merges a batch into partition: new keys are journaled (one
// framed record per batch, fsynced) then applied; keys that already
// exist with a different value are conflicts and are dropped. The
// journal-then-apply order means a crash can lose at most the batch
// being written, never serve an entry it did not persist.
func (st *Store) Publish(partition string, entries []prover.CacheEntry) (accepted, conflicts int, err error) {
	if partition == "" {
		return 0, 0, fmt.Errorf("cacheserv: empty partition")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	part := st.parts[partition]
	fresh := make([]prover.CacheEntry, 0, len(entries))
	seen := map[string]bool{}
	for _, e := range entries {
		if v, ok := part[e.Key]; ok {
			if v != e.Val {
				conflicts++
			}
			continue
		}
		if v, ok := seen[e.Key]; ok {
			if v != e.Val {
				conflicts++
			}
			continue
		}
		seen[e.Key] = e.Val
		fresh = append(fresh, e)
	}
	if len(fresh) == 0 {
		return 0, conflicts, nil
	}
	payload, merr := json.Marshal(record{Partition: partition, Entries: fresh})
	if merr != nil {
		return 0, conflicts, merr
	}
	if err := st.log.Append(payload); err != nil {
		return 0, conflicts, err
	}
	st.applyLocked(partition, fresh)
	return len(fresh), conflicts, nil
}

// Snapshot returns every entry in partition, sorted by key.
func (st *Store) Snapshot(partition string) []prover.CacheEntry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	part := st.parts[partition]
	out := make([]prover.CacheEntry, 0, len(part))
	for k, v := range part {
		out = append(out, prover.CacheEntry{Key: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Partitions returns the known partition hashes, sorted.
func (st *Store) Partitions() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.parts))
	for p := range st.parts {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stats returns the live partition and entry counts.
func (st *Store) Stats() (partitions, entries int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.parts), st.entries
}

// Warnings lists torn-tail repairs performed when the store was opened.
func (st *Store) Warnings() []string { return st.log.Warnings() }

// Close syncs and closes the backing log.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.log.Close()
}
