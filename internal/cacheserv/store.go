// Package cacheserv implements predcached, the fleet-shared prover
// cache service: a durable, partitioned store of prover.CacheEntry
// verdicts served over batched HTTP lookup/publish. One node's proofs
// warm every node.
//
// Entries are partitioned by the checkpoint compatibility hash
// (checkpoint.CompatKey.Hash), so verdicts computed by a different tool
// version, under different limits, or by a different abstraction engine
// can never cross-pollute. Within a partition the store is first-write-
// wins: a publish for an existing key with a different value is counted
// as a conflict and discarded — a poisoned publisher cannot overwrite
// good entries.
//
// Persistence rides the checkpoint package's framed log (magic prefix,
// length+CRC32 frames, fsync per append, torn-tail truncation on open),
// so a SIGKILLed cache service restarts losslessly minus at most the
// batch being written.
//
// # Bounded disk
//
// With MaxBytes > 0 the log is kept bounded: when an accepted publish
// pushes it past the cap, the store rewrites itself into a new
// generation — one record per surviving partition, hottest partitions
// (by a logical last-touched clock over lookups and publishes) kept
// until roughly MaxBytes/2 is used, colder partitions evicted whole.
// The rewrite goes to a temp file, is fsynced, and lands under an
// atomic rename: a reader holding the old generation open keeps a
// consistent file, and a crash at any point leaves either the old or
// the new generation, never a mix. Eviction only ever forgets cached
// verdicts (a later publish re-fills them); it can never change one —
// first-write-wins is preserved inside every surviving partition.
package cacheserv

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"predabs/internal/checkpoint"
	"predabs/internal/prover"
)

const (
	// Magic stamps the store file; the terminator keeps any other framed
	// log from sharing a prefix.
	Magic = "PREDABSCACHE1\x00"
	// FileName is the durable store file inside the data directory.
	FileName = "cache.predabs"
)

// record is one durable publish batch: only the entries that were new
// at publish time, so replay is append-cost-proportional and
// first-write-wins is preserved byte-for-byte across restarts. A
// compacted generation reuses the same shape with one record per
// partition.
type record struct {
	Partition string              `json:"p"`
	Entries   []prover.CacheEntry `json:"e"`
}

// partition is one compatibility-hash shard: its verdicts, the key
// insertion order (kept so compaction rewrites deterministically), and
// the logical-clock stamp of its last use, which ranks partitions for
// eviction.
type partition struct {
	vals    map[string]bool
	order   []string
	touched int64
}

// Store is the in-memory cache backed by the framed log. All methods
// are safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	parts   map[string]*partition
	entries int
	log     *checkpoint.Log
	fsys    checkpoint.FS
	path    string

	maxBytes int64
	clock    int64 // logical time: bumped per lookup/publish
	failed   error // sticky: set when the log handle itself is lost

	generation      int64 // compaction epochs survived by this store
	compactions     int64
	reclaimedBytes  int64
	compactFailures int64
	evictedEntries  int64

	// onCompact, when set (before serving starts), observes every
	// compaction attempt — the service layer bridges it to counters.
	onCompact func(reclaimedBytes int64, evictedEntries int, ok bool)
}

// OpenStore opens (or creates) the store under dir on the real
// filesystem with no size cap.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreFS(nil, dir, 0)
}

// OpenStoreFS opens (or creates) the store under dir on fsys (nil: the
// real filesystem), replaying every intact record and truncating a torn
// tail. A file with foreign magic surfaces as *checkpoint.CorruptError;
// a device read error fails the open rather than truncating good
// records. maxBytes > 0 bounds the log via compaction (see the package
// comment); 0 disables it.
func OpenStoreFS(fsys checkpoint.FS, dir string, maxBytes int64) (*Store, error) {
	st := &Store{parts: map[string]*partition{}, fsys: fsys,
		path: filepath.Join(dir, FileName), maxBytes: maxBytes}
	log, err := checkpoint.OpenLogFS(fsys, st.path, Magic, func(payload []byte) {
		var rec record
		if json.Unmarshal(payload, &rec) != nil {
			// CRC-intact but unparseable can only mean a newer schema;
			// skipping keeps the readable prefix serving.
			return
		}
		st.applyLocked(rec.Partition, rec.Entries)
	})
	if err != nil {
		return nil, err
	}
	st.log = log
	return st, nil
}

// applyLocked merges entries into a partition, first-write-wins, and
// stamps the partition's recency. Callers hold mu (or are the
// single-threaded replay — where the stamp makes replay order the
// initial recency order, which is why compaction writes surviving
// partitions coldest-first).
func (st *Store) applyLocked(part string, entries []prover.CacheEntry) {
	if part == "" {
		return
	}
	p := st.parts[part]
	if p == nil {
		p = &partition{vals: map[string]bool{}}
		st.parts[part] = p
	}
	st.clock++
	p.touched = st.clock
	for _, e := range entries {
		if _, ok := p.vals[e.Key]; ok {
			continue
		}
		p.vals[e.Key] = e.Val
		p.order = append(p.order, e.Key)
		st.entries++
	}
}

// Lookup returns the entries known for keys within partition, sorted by
// key, and marks the partition recently used. Unknown keys are simply
// absent.
func (st *Store) Lookup(part string, keys []string) []prover.CacheEntry {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]prover.CacheEntry, 0, len(keys))
	p := st.parts[part]
	if p == nil {
		return out
	}
	st.clock++
	p.touched = st.clock
	for _, k := range keys {
		if v, ok := p.vals[k]; ok {
			out = append(out, prover.CacheEntry{Key: k, Val: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Publish merges a batch into partition: new keys are journaled (one
// framed record per batch, fsynced) then applied; keys that already
// exist with a different value are conflicts and are dropped. The
// journal-then-apply order means a crash can lose at most the batch
// being written, never serve an entry it did not persist. A publish
// that pushes the log past the size cap triggers compaction before
// returning.
func (st *Store) Publish(part string, entries []prover.CacheEntry) (accepted, conflicts int, err error) {
	if part == "" {
		return 0, 0, fmt.Errorf("cacheserv: empty partition")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failed != nil {
		return 0, 0, st.failed
	}
	var vals map[string]bool
	if p := st.parts[part]; p != nil {
		vals = p.vals
	}
	fresh := make([]prover.CacheEntry, 0, len(entries))
	seen := map[string]bool{}
	for _, e := range entries {
		if v, ok := vals[e.Key]; ok {
			if v != e.Val {
				conflicts++
			}
			continue
		}
		if v, ok := seen[e.Key]; ok {
			if v != e.Val {
				conflicts++
			}
			continue
		}
		seen[e.Key] = e.Val
		fresh = append(fresh, e)
	}
	if len(fresh) == 0 {
		return 0, conflicts, nil
	}
	payload, merr := json.Marshal(record{Partition: part, Entries: fresh})
	if merr != nil {
		return 0, conflicts, merr
	}
	if err := st.log.Append(payload); err != nil {
		return 0, conflicts, err
	}
	st.applyLocked(part, fresh)
	if st.maxBytes > 0 && st.log.Size() > st.maxBytes {
		st.compactLocked()
	}
	return len(fresh), conflicts, nil
}

// compactLocked rewrites the store into a new generation under the size
// cap: partitions ranked hottest-first, kept (whole) while the rewrite
// stays under maxBytes/2, written coldest-first so a restart's replay
// reconstructs the same recency ranking. The rewrite is atomic (temp
// file + fsync + rename); on any failure the old generation keeps
// serving unchanged — compaction is an optimization, never a
// correctness step. Evictions apply to memory only after the new
// generation is durably in place.
func (st *Store) compactLocked() {
	names := make([]string, 0, len(st.parts))
	for name := range st.parts {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		pi, pj := st.parts[names[i]], st.parts[names[j]]
		if pi.touched != pj.touched {
			return pi.touched > pj.touched // hottest first
		}
		return names[i] < names[j]
	})
	target := st.maxBytes / 2
	used := int64(len(Magic))
	var frames [][]byte
	kept := map[string]bool{}
	for _, name := range names {
		p := st.parts[name]
		entries := make([]prover.CacheEntry, 0, len(p.order))
		for _, k := range p.order {
			entries = append(entries, prover.CacheEntry{Key: k, Val: p.vals[k]})
		}
		payload, err := json.Marshal(record{Partition: name, Entries: entries})
		if err != nil {
			continue
		}
		cost := int64(len(payload)) + checkpoint.FrameOverhead
		// Always keep the hottest partition, even over budget: the
		// store must never evict the batch it just accepted.
		if len(kept) > 0 && used+cost > target {
			break
		}
		frames = append(frames, payload)
		used += cost
		kept[name] = true
	}
	// Reverse to coldest-first so replay's first-touched == coldest.
	for i, j := 0, len(frames)-1; i < j; i, j = i+1, j-1 {
		frames[i], frames[j] = frames[j], frames[i]
	}

	before := st.log.Size()
	// The write handle must be dropped before the rename lands: after
	// it, the old descriptor points at the orphaned inode. A close
	// failure (e.g. a final-sync error) does not block the rewrite — the
	// on-disk prefix is still CRC-valid, and the rewrite replaces it.
	st.log.Close()
	if err := checkpoint.RewriteLog(st.fsys, st.path, Magic, frames); err != nil {
		// Old generation intact on disk; reopen and keep serving.
		log, oerr := checkpoint.OpenLogFS(st.fsys, st.path, Magic, func([]byte) {})
		if oerr != nil {
			st.failed = fmt.Errorf("cacheserv: reopen after failed compaction (%v): %w", err, oerr)
			st.compactFailures++
			st.report(0, 0, false)
			return
		}
		st.log = log
		st.compactFailures++
		st.report(0, 0, false)
		return
	}
	log, oerr := checkpoint.OpenLogFS(st.fsys, st.path, Magic, func([]byte) {})
	if oerr != nil {
		st.failed = fmt.Errorf("cacheserv: reopen new generation: %w", oerr)
		st.compactFailures++
		st.report(0, 0, false)
		return
	}
	st.log = log
	evicted := 0
	for name, p := range st.parts {
		if !kept[name] {
			evicted += len(p.vals)
			st.entries -= len(p.vals)
			delete(st.parts, name)
		}
	}
	st.generation++
	st.compactions++
	reclaimed := before - st.log.Size()
	st.reclaimedBytes += reclaimed
	st.evictedEntries += int64(evicted)
	st.report(reclaimed, evicted, true)
}

// report invokes the compaction observer without holding it to the
// store's locking discipline (counters only; callers hold mu).
func (st *Store) report(reclaimed int64, evicted int, ok bool) {
	if st.onCompact != nil {
		st.onCompact(reclaimed, evicted, ok)
	}
}

// Snapshot returns every entry in partition, sorted by key.
func (st *Store) Snapshot(part string) []prover.CacheEntry {
	st.mu.RLock()
	defer st.mu.RUnlock()
	p := st.parts[part]
	if p == nil {
		return []prover.CacheEntry{}
	}
	out := make([]prover.CacheEntry, 0, len(p.vals))
	for k, v := range p.vals {
		out = append(out, prover.CacheEntry{Key: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Partitions returns the known partition hashes, sorted.
func (st *Store) Partitions() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.parts))
	for p := range st.parts {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Stats returns the live partition and entry counts.
func (st *Store) Stats() (partitions, entries int) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.parts), st.entries
}

// Size reports the store log's on-disk byte size.
func (st *Store) Size() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.log.Size()
}

// Generation reports how many compaction epochs the store has survived.
func (st *Store) Generation() int64 {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.generation
}

// DegradedErr reports the sticky persistence failure poisoning the
// store, nil while healthy. A degraded store keeps serving lookups from
// memory; publishes fail (the service layer sheds them with
// Retry-After) because they could not be made durable.
func (st *Store) DegradedErr() error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.failed != nil {
		return st.failed
	}
	return st.log.Err()
}

// Warnings lists torn-tail repairs performed when the store was opened.
func (st *Store) Warnings() []string { return st.log.Warnings() }

// Close syncs and closes the backing log.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.log.Close()
}
