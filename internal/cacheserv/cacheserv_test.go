package cacheserv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"predabs/internal/metrics"
	"predabs/internal/prover"
)

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return st
}

func TestStorePublishLookupRoundTrip(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	defer st.Close()
	acc, conf, err := st.Publish("part-a", []prover.CacheEntry{
		{Key: "k1", Val: true}, {Key: "k2", Val: false},
	})
	if err != nil || acc != 2 || conf != 0 {
		t.Fatalf("Publish = (%d, %d, %v), want (2, 0, nil)", acc, conf, err)
	}
	got := st.Lookup("part-a", []string{"k2", "k1", "missing"})
	want := []prover.CacheEntry{{Key: "k1", Val: true}, {Key: "k2", Val: false}}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Lookup = %v, want %v (sorted, misses absent)", got, want)
	}
	if got := st.Lookup("part-b", []string{"k1"}); len(got) != 0 {
		t.Fatalf("partitions must not cross-pollute; foreign lookup = %v", got)
	}
}

func TestStoreFirstWriteWinsOnConflict(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	defer st.Close()
	st.Publish("p", []prover.CacheEntry{{Key: "k", Val: true}})
	acc, conf, err := st.Publish("p", []prover.CacheEntry{{Key: "k", Val: false}})
	if err != nil || acc != 0 || conf != 1 {
		t.Fatalf("conflicting publish = (%d, %d, %v), want (0, 1, nil)", acc, conf, err)
	}
	if got := st.Lookup("p", []string{"k"}); len(got) != 1 || got[0].Val != true {
		t.Fatalf("conflict must keep the existing verdict; got %v", got)
	}
	// Idempotent re-publish of the same value: no accept, no conflict.
	acc, conf, _ = st.Publish("p", []prover.CacheEntry{{Key: "k", Val: true}})
	if acc != 0 || conf != 0 {
		t.Fatalf("idempotent re-publish = (%d, %d), want (0, 0)", acc, conf)
	}
}

func TestStoreRestartReplaysLosslessly(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.Publish("p1", []prover.CacheEntry{{Key: "a", Val: true}, {Key: "b", Val: false}})
	st.Publish("p2", []prover.CacheEntry{{Key: "a", Val: false}})
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := mustOpen(t, dir)
	defer st2.Close()
	parts, entries := st2.Stats()
	if parts != 2 || entries != 3 {
		t.Fatalf("restarted store has %d partitions / %d entries, want 2/3", parts, entries)
	}
	if got := st2.Lookup("p2", []string{"a"}); len(got) != 1 || got[0].Val != false {
		t.Fatalf("p2/a after restart = %v, want [{a false}]", got)
	}
}

func TestStoreTornTailRepairedOnOpen(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir)
	st.Publish("p", []prover.CacheEntry{{Key: "good", Val: true}})
	st.Close()

	// Simulate a SIGKILL mid-append: garbage bytes after the last intact
	// frame.
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open store file: %v", err)
	}
	f.Write([]byte("\x13\x37torn-frame-garbage"))
	f.Close()

	st2 := mustOpen(t, dir)
	defer st2.Close()
	if len(st2.Warnings()) == 0 {
		t.Fatal("torn tail produced no repair warning")
	}
	if got := st2.Lookup("p", []string{"good"}); len(got) != 1 || got[0].Val != true {
		t.Fatalf("intact prefix lost across repair; got %v", got)
	}
	// The repaired log must accept appends again.
	if _, _, err := st2.Publish("p", []prover.CacheEntry{{Key: "after", Val: false}}); err != nil {
		t.Fatalf("publish after repair: %v", err)
	}
}

func TestStoreConcurrentPublishLookup(t *testing.T) {
	st := mustOpen(t, t.TempDir())
	defer st.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k-%d-%d", g, i)
				st.Publish("p", []prover.CacheEntry{{Key: key, Val: i%2 == 0}})
				st.Lookup("p", []string{key, "k-0-0"})
				st.Snapshot("p")
			}
		}()
	}
	wg.Wait()
	_, entries := st.Stats()
	if entries != 8*50 {
		t.Fatalf("entries = %d, want %d", entries, 8*50)
	}
}

func newTestServer(t *testing.T, reg *metrics.Registry) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Dir: t.TempDir(), Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func TestHTTPLookupPublishRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var pub publishResponse
	code := postJSON(t, ts.URL+"/v1/publish", publishRequest{
		Partition: "deadbeef",
		Entries:   []prover.CacheEntry{{Key: "q1", Val: true}, {Key: "q2", Val: false}},
	}, &pub)
	if code != http.StatusOK || pub.Accepted != 2 || pub.Conflicts != 0 {
		t.Fatalf("publish = %d %+v, want 200 accepted=2", code, pub)
	}

	var look lookupResponse
	code = postJSON(t, ts.URL+"/v1/lookup", lookupRequest{
		Partition: "deadbeef", Keys: []string{"q2", "q1", "q3"},
	}, &look)
	if code != http.StatusOK || len(look.Entries) != 2 {
		t.Fatalf("lookup = %d %+v, want 200 with 2 entries", code, look)
	}
	if look.Entries[0].Key != "q1" || look.Entries[1].Key != "q2" {
		t.Fatalf("lookup entries not in canonical key order: %+v", look.Entries)
	}

	// Missing partition is a 400, never a panic or an empty-partition
	// write.
	if code := postJSON(t, ts.URL+"/v1/lookup", lookupRequest{Keys: []string{"q"}}, nil); code != http.StatusBadRequest {
		t.Fatalf("partitionless lookup = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/publish", publishRequest{Entries: []prover.CacheEntry{{Key: "x"}}}, nil); code != http.StatusBadRequest {
		t.Fatalf("partitionless publish = %d, want 400", code)
	}
}

func TestHTTPSnapshotAndPartitions(t *testing.T) {
	_, ts := newTestServer(t, nil)
	postJSON(t, ts.URL+"/v1/publish", publishRequest{Partition: "bbb",
		Entries: []prover.CacheEntry{{Key: "z", Val: true}, {Key: "a", Val: false}}}, nil)
	postJSON(t, ts.URL+"/v1/publish", publishRequest{Partition: "aaa",
		Entries: []prover.CacheEntry{{Key: "k", Val: true}}}, nil)

	resp, err := http.Get(ts.URL + "/v1/partitions")
	if err != nil {
		t.Fatalf("GET partitions: %v", err)
	}
	var parts struct {
		Partitions []string `json:"partitions"`
	}
	json.NewDecoder(resp.Body).Decode(&parts)
	resp.Body.Close()
	if len(parts.Partitions) != 2 || parts.Partitions[0] != "aaa" || parts.Partitions[1] != "bbb" {
		t.Fatalf("partitions = %v, want sorted [aaa bbb]", parts.Partitions)
	}

	resp, err = http.Get(ts.URL + "/v1/snapshot?partition=bbb")
	if err != nil {
		t.Fatalf("GET snapshot: %v", err)
	}
	var snap lookupResponse
	json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if len(snap.Entries) != 2 || snap.Entries[0].Key != "a" || snap.Entries[1].Key != "z" {
		t.Fatalf("snapshot = %+v, want sorted [a z]", snap.Entries)
	}
}

// TestCacheMetricsExpositionDeterministic covers the predcached_*
// metric families under make metrics-lint's deterministic-ordering
// bar: two scrapes of a live registry render byte-identically, and the
// family set includes every predcached instrument.
func TestCacheMetricsExpositionDeterministic(t *testing.T) {
	reg := metrics.New()
	_, ts := newTestServer(t, reg)
	postJSON(t, ts.URL+"/v1/publish", publishRequest{Partition: "p",
		Entries: []prover.CacheEntry{{Key: "k", Val: true}}}, nil)
	postJSON(t, ts.URL+"/v1/lookup", lookupRequest{Partition: "p", Keys: []string{"k", "m"}}, nil)

	scrape := func() string {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	a, b := scrape(), scrape()
	if a != b {
		t.Fatalf("exposition not byte-deterministic:\n--- first\n%s\n--- second\n%s", a, b)
	}
	for _, fam := range []string{
		"predcached_entries", "predcached_partitions",
		"predcached_lookup_requests_total", "predcached_lookup_keys_total",
		"predcached_lookup_hits_total", "predcached_publish_requests_total",
		"predcached_publish_entries_total", "predcached_publish_conflicts_total",
		"predcached_bad_requests_total",
		"predcached_store_log_bytes", "predcached_store_generation",
		"predcached_persistence_degraded", "predcached_publish_shed_degraded_total",
		"predcached_compactions_total", "predcached_compaction_reclaimed_bytes_total",
		"predcached_compaction_failures_total", "predcached_evicted_entries_total",
	} {
		if !bytes.Contains([]byte(a), []byte(fam)) {
			t.Fatalf("exposition missing family %s:\n%s", fam, a)
		}
	}
}
