package ctok

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestScanBasicTokens(t *testing.T) {
	toks, errs := ScanAll("x = y + 42;")
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	want := []Kind{IDENT, Assign, IDENT, Plus, INT, Semi, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestScanKeywordsVsIdents(t *testing.T) {
	cases := map[string]Kind{
		"int":      KwInt,
		"void":     KwVoid,
		"struct":   KwStruct,
		"typedef":  KwTypedef,
		"if":       KwIf,
		"else":     KwElse,
		"while":    KwWhile,
		"goto":     KwGoto,
		"return":   KwReturn,
		"break":    KwBreak,
		"continue": KwContinue,
		"NULL":     KwNull,
		"assert":   KwAssert,
		"assume":   KwAssume,
		"intx":     IDENT,
		"Null":     IDENT,
		"_foo":     IDENT,
		"x2":       IDENT,
	}
	for src, want := range cases {
		toks, errs := ScanAll(src)
		if len(errs) != 0 {
			t.Fatalf("%q: errors %v", src, errs)
		}
		if toks[0].Kind != want {
			t.Errorf("%q: got %s, want %s", src, toks[0].Kind, want)
		}
	}
}

func TestScanTwoCharOperators(t *testing.T) {
	toks, errs := ScanAll("a->b && c || d <= e >= f == g != h")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []Kind{IDENT, Arrow, IDENT, AndAnd, IDENT, OrOr, IDENT, Le, IDENT,
		Ge, IDENT, EqEq, IDENT, NotEq, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestScanComments(t *testing.T) {
	src := `
// line comment
x /* block
   spanning lines */ y
`
	toks, errs := ScanAll(src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Fatalf("comments not skipped: %v", toks)
	}
}

func TestScanPositions(t *testing.T) {
	toks, _ := ScanAll("a\n  bb")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("bb at %v, want 2:3", toks[1].Pos)
	}
}

func TestScanUnterminatedComment(t *testing.T) {
	_, errs := ScanAll("x /* never closed")
	if len(errs) == 0 {
		t.Fatal("expected error for unterminated comment")
	}
}

func TestScanIllegalChar(t *testing.T) {
	toks, errs := ScanAll("x @ y")
	if len(errs) == 0 {
		t.Fatal("expected error for @")
	}
	if toks[1].Kind != ILLEGAL {
		t.Fatalf("got %s, want ILLEGAL", toks[1].Kind)
	}
}

func TestScanSingleBarRejected(t *testing.T) {
	_, errs := ScanAll("a | b")
	if len(errs) == 0 {
		t.Fatal("expected error for single |")
	}
}

func TestScanArrowVsMinus(t *testing.T) {
	toks, _ := ScanAll("a-b a->b a - >b")
	want := []Kind{IDENT, Minus, IDENT, IDENT, Arrow, IDENT, IDENT, Minus, Gt, IDENT, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}
