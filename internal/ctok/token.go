// Package ctok defines the lexical tokens of MiniC, the C subset accepted
// by the predabs frontend, and a scanner that converts source text into a
// token stream.
//
// MiniC covers the constructs the C2bp paper manipulates: integer and
// struct/pointer data, the full C expression operators the paper's predicate
// language needs, and statement forms (if/else, while, goto, labels, return,
// assert, assume) that the simplifier lowers to the paper's simple
// intermediate form.
package ctok

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The ordering groups literals, identifiers, keywords,
// operators and delimiters; Kind values are internal and may change.
const (
	EOF Kind = iota
	ILLEGAL

	IDENT // foo
	INT   // 123

	// Keywords.
	KwInt
	KwVoid
	KwStruct
	KwTypedef
	KwIf
	KwElse
	KwWhile
	KwGoto
	KwReturn
	KwBreak
	KwContinue
	KwNull   // NULL
	KwAssert // assert
	KwAssume // assume

	// Operators and punctuation.
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	Percent  // %
	Amp      // &
	AndAnd   // &&
	OrOr     // ||
	Not      // !
	Lt       // <
	Le       // <=
	Gt       // >
	Ge       // >=
	EqEq     // ==
	NotEq    // !=
	Assign   // =
	Arrow    // ->
	Dot      // .
	Comma    // ,
	Semi     // ;
	Colon    // :
	Question // ?
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBrack   // [
	RBrack   // ]
)

var kindNames = map[Kind]string{
	EOF:        "EOF",
	ILLEGAL:    "ILLEGAL",
	IDENT:      "identifier",
	INT:        "integer",
	KwInt:      "int",
	KwVoid:     "void",
	KwStruct:   "struct",
	KwTypedef:  "typedef",
	KwIf:       "if",
	KwElse:     "else",
	KwWhile:    "while",
	KwGoto:     "goto",
	KwReturn:   "return",
	KwBreak:    "break",
	KwContinue: "continue",
	KwNull:     "NULL",
	KwAssert:   "assert",
	KwAssume:   "assume",
	Plus:       "+",
	Minus:      "-",
	Star:       "*",
	Slash:      "/",
	Percent:    "%",
	Amp:        "&",
	AndAnd:     "&&",
	OrOr:       "||",
	Not:        "!",
	Lt:         "<",
	Le:         "<=",
	Gt:         ">",
	Ge:         ">=",
	EqEq:       "==",
	NotEq:      "!=",
	Assign:     "=",
	Arrow:      "->",
	Dot:        ".",
	Comma:      ",",
	Semi:       ";",
	Colon:      ":",
	Question:   "?",
	LParen:     "(",
	RParen:     ")",
	LBrace:     "{",
	RBrace:     "}",
	LBrack:     "[",
	RBrack:     "]",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int":      KwInt,
	"void":     KwVoid,
	"struct":   KwStruct,
	"typedef":  KwTypedef,
	"if":       KwIf,
	"else":     KwElse,
	"while":    KwWhile,
	"goto":     KwGoto,
	"return":   KwReturn,
	"break":    KwBreak,
	"continue": KwContinue,
	"NULL":     KwNull,
	"assert":   KwAssert,
	"assume":   KwAssume,
}

// Lookup maps an identifier spelling to its keyword kind, or IDENT if the
// spelling is not a keyword.
func Lookup(ident string) Kind {
	if k, ok := keywords[ident]; ok {
		return k
	}
	return IDENT
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
