package ctok

import "fmt"

// Scanner converts MiniC source text into a stream of tokens. It handles
// // line comments and /* block */ comments and tracks line/column positions.
type Scanner struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// NewScanner returns a scanner over src.
func NewScanner(src string) *Scanner {
	return &Scanner{src: src, line: 1, col: 1}
}

// Errs returns the lexical errors encountered so far.
func (s *Scanner) Errs() []error { return s.errs }

func (s *Scanner) errorf(p Pos, format string, args ...any) {
	s.errs = append(s.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) skipSpaceAndComments() {
	for s.off < len(s.src) {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			start := s.pos()
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				s.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func (s *Scanner) pos() Pos { return Pos{Line: s.line, Col: s.col} }

func isLetter(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an EOF token when the input is exhausted.
func (s *Scanner) Next() Token {
	s.skipSpaceAndComments()
	p := s.pos()
	if s.off >= len(s.src) {
		return Token{Kind: EOF, Pos: p}
	}
	c := s.peek()
	switch {
	case isLetter(c):
		start := s.off
		for s.off < len(s.src) && (isLetter(s.peek()) || isDigit(s.peek())) {
			s.advance()
		}
		text := s.src[start:s.off]
		return Token{Kind: Lookup(text), Text: text, Pos: p}
	case isDigit(c):
		start := s.off
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
		return Token{Kind: INT, Text: s.src[start:s.off], Pos: p}
	}

	s.advance()
	two := func(second byte, ifTwo, ifOne Kind) Token {
		if s.peek() == second {
			s.advance()
			return Token{Kind: ifTwo, Text: string(c) + string(second), Pos: p}
		}
		return Token{Kind: ifOne, Text: string(c), Pos: p}
	}
	switch c {
	case '+':
		return Token{Kind: Plus, Text: "+", Pos: p}
	case '-':
		return two('>', Arrow, Minus)
	case '*':
		return Token{Kind: Star, Text: "*", Pos: p}
	case '/':
		return Token{Kind: Slash, Text: "/", Pos: p}
	case '%':
		return Token{Kind: Percent, Text: "%", Pos: p}
	case '&':
		return two('&', AndAnd, Amp)
	case '|':
		if s.peek() == '|' {
			s.advance()
			return Token{Kind: OrOr, Text: "||", Pos: p}
		}
		s.errorf(p, "unexpected character %q (MiniC has no bitwise or)", '|')
		return Token{Kind: ILLEGAL, Text: "|", Pos: p}
	case '!':
		return two('=', NotEq, Not)
	case '<':
		return two('=', Le, Lt)
	case '>':
		return two('=', Ge, Gt)
	case '=':
		return two('=', EqEq, Assign)
	case '.':
		return Token{Kind: Dot, Text: ".", Pos: p}
	case ',':
		return Token{Kind: Comma, Text: ",", Pos: p}
	case ';':
		return Token{Kind: Semi, Text: ";", Pos: p}
	case ':':
		return Token{Kind: Colon, Text: ":", Pos: p}
	case '?':
		return Token{Kind: Question, Text: "?", Pos: p}
	case '(':
		return Token{Kind: LParen, Text: "(", Pos: p}
	case ')':
		return Token{Kind: RParen, Text: ")", Pos: p}
	case '{':
		return Token{Kind: LBrace, Text: "{", Pos: p}
	case '}':
		return Token{Kind: RBrace, Text: "}", Pos: p}
	case '[':
		return Token{Kind: LBrack, Text: "[", Pos: p}
	case ']':
		return Token{Kind: RBrack, Text: "]", Pos: p}
	}
	s.errorf(p, "unexpected character %q", c)
	return Token{Kind: ILLEGAL, Text: string(c), Pos: p}
}

// ScanAll tokenizes the entire input, returning the tokens (ending with EOF)
// and any lexical errors.
func ScanAll(src string) ([]Token, []error) {
	s := NewScanner(src)
	var toks []Token
	for {
		t := s.Next()
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, s.Errs()
		}
	}
}
