package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"predabs/internal/checkpoint"
)

// eventsMagic stamps the per-job event log (format 1); the framing
// underneath is checkpoint.Log's CRC discipline, so a crash mid-append
// loses at most the record being written and a daemon restart replays
// exactly the records that were durable — never duplicating one, because
// replay only reads (sequence numbers are assigned from the replayed
// maximum, not re-appended).
const eventsMagic = "PREDABSEVT1\x00"

// EventsName is the event log's file name inside each job directory.
const EventsName = "events.predabs"

// Job event types. The supervisor writes "state", "spawn", "kill" and
// "adopt"; the worker writes "progress" heartbeats at each CEGAR
// iteration boundary. The two writers never overlap in time: the
// supervisor appends only between worker attempts (before spawn, after
// exit), the worker only while its attempt runs — which is what makes
// the shared single-writer log sound.
const (
	EventState    = "state"    // job state transition (State field)
	EventSpawn    = "spawn"    // worker attempt spawned (Attempt field)
	EventKill     = "kill"     // worker SIGKILLed on the attempt deadline
	EventAdopt    = "adopt"    // orphaned complete result adopted
	EventProgress = "progress" // CEGAR iteration heartbeat from the worker
)

// JobEvent is one record of a job's durable event log, exposed to
// clients as NDJSON at GET /jobs/{id}/events. Seq is assigned at append
// time and is dense and strictly increasing per job across daemon
// restarts and worker attempts, so a client that saw records through
// seq N resumes with ?after=N and observes no gap and no duplicate.
type JobEvent struct {
	Seq     uint64 `json:"seq"`
	TS      int64  `json:"ts"` // unix nanoseconds
	Type    string `json:"type"`
	State   string `json:"state,omitempty"`   // state: the new job state
	Attempt int    `json:"attempt,omitempty"` // 1-based worker attempt
	Detail  string `json:"detail,omitempty"`

	// Progress payload (type "progress"): the CEGAR iteration that just
	// committed, the predicate-pool size entering the next iteration, the
	// cumulative prover interaction count (queries + incremental-session
	// checks) and the abstraction engine.
	Iter    int    `json:"iter,omitempty"`
	Preds   int    `json:"preds,omitempty"`
	Queries int64  `json:"queries,omitempty"`
	Engine  string `json:"engine,omitempty"`
}

// appendJobEvent durably appends ev to dir's event log, assigning the
// next sequence number from the replayed maximum. Open-append-close per
// record keeps the log single-writer-at-a-time under the supervisor /
// worker temporal handoff (neither holds a stale write offset across
// the other's appends) and makes restart replay idempotent by
// construction. The fsync cost is one frame per supervision transition
// or CEGAR iteration — noise next to the checkpoint commit each
// iteration already pays.
func appendJobEvent(dir string, ev JobEvent) (uint64, error) {
	var last uint64
	log, err := checkpoint.OpenLog(filepath.Join(dir, EventsName), eventsMagic,
		func(payload []byte) {
			var e JobEvent
			if json.Unmarshal(payload, &e) == nil && e.Seq > last {
				last = e.Seq
			}
		})
	if err != nil {
		return 0, err
	}
	defer log.Close()
	ev.Seq = last + 1
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano()
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		return 0, err
	}
	if err := log.Append(payload); err != nil {
		return 0, err
	}
	return ev.Seq, nil
}

// readJobEvents returns dir's events with Seq > after, in append order,
// reading strictly read-only (a torn or in-progress tail ends the read,
// it is never repaired from here — see checkpoint.ReplayLog).
func readJobEvents(dir string, after uint64) ([]JobEvent, error) {
	var out []JobEvent
	err := checkpoint.ReplayLog(filepath.Join(dir, EventsName), eventsMagic,
		func(payload []byte) {
			var e JobEvent
			if json.Unmarshal(payload, &e) == nil && e.Seq > after {
				out = append(out, e)
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// knownEventStates are the State values a "state" event may carry.
var knownEventStates = map[string]bool{
	StateQueued: true, StateRunning: true, StateRetrying: true,
	StateDone: true, StateFailed: true,
}

// ValidateEvents checks an NDJSON export of a job event log (the body
// of GET /jobs/{id}/events) against the record schema: known types,
// strictly increasing dense sequence numbers, non-negative timestamps,
// and per-type payload rules. It returns the number of records read and
// the first violation with its 1-based line number. cmd/tracelint
// -events drives it.
func ValidateEvents(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	var prevSeq uint64
	first := true
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev JobEvent
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return n, fmt.Errorf("line %d: not a job-event record: %v", n, err)
		}
		if err := validateEvent(ev, prevSeq, first); err != nil {
			return n, fmt.Errorf("line %d: %w", n, err)
		}
		prevSeq = ev.Seq
		first = false
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

func validateEvent(ev JobEvent, prevSeq uint64, first bool) error {
	if ev.Seq == 0 {
		return fmt.Errorf("missing or zero seq")
	}
	// A stream may start mid-log (?after=N), so the first seq is free;
	// after that the sequence must stay dense — a jump is a lost record,
	// a repeat a duplicated one.
	if !first && ev.Seq != prevSeq+1 {
		return fmt.Errorf("seq %d after %d: stream must be dense and strictly increasing", ev.Seq, prevSeq)
	}
	if ev.TS < 0 {
		return fmt.Errorf("negative ts")
	}
	if ev.Attempt < 0 {
		return fmt.Errorf("negative attempt")
	}
	switch ev.Type {
	case EventState:
		if !knownEventStates[ev.State] {
			return fmt.Errorf("unknown state %q", ev.State)
		}
	case EventSpawn, EventKill:
		if ev.Attempt < 1 {
			return fmt.Errorf("%s event without a positive attempt", ev.Type)
		}
	case EventAdopt:
		// No payload requirements.
	case EventProgress:
		if ev.Iter < 1 {
			return fmt.Errorf("progress event without a positive iter")
		}
		if ev.Preds < 0 || ev.Queries < 0 {
			return fmt.Errorf("progress event with negative counters")
		}
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}
