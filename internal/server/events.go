package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"time"

	"predabs/internal/checkpoint"
)

// eventsMagic stamps the per-job event log (format 1); the framing
// underneath is checkpoint.Log's CRC discipline, so a crash mid-append
// loses at most the record being written and a daemon restart replays
// exactly the records that were durable — never duplicating one, because
// replay only reads (sequence numbers are assigned from the replayed
// maximum, not re-appended).
const eventsMagic = "PREDABSEVT1\x00"

// EventsName is the event log's file name inside each job directory.
const EventsName = "events.predabs"

// Job event types. The supervisor writes "state", "spawn", "kill" and
// "adopt"; the worker writes "progress" heartbeats at each CEGAR
// iteration boundary. The two writers never overlap in time: the
// supervisor appends only between worker attempts (before spawn, after
// exit), the worker only while its attempt runs — which is what makes
// the shared single-writer log sound.
const (
	EventState    = "state"    // job state transition (State field)
	EventSpawn    = "spawn"    // worker attempt spawned (Attempt field)
	EventKill     = "kill"     // worker SIGKILLed on the attempt deadline
	EventAdopt    = "adopt"    // orphaned complete result adopted
	EventProgress = "progress" // CEGAR iteration heartbeat from the worker
	// EventTruncate is the retention-rotation marker: events with
	// sequence numbers <= Seq were discarded when the log outgrew its
	// byte cap (Dropped counts them). It is always the log's first
	// record, its Seq immediately precedes the oldest retained event,
	// and the retained stream stays dense after it — which is what keeps
	// the resumable ?after=N contract intact across rotations: a client
	// whose cursor is at or past the marker sees no difference at all,
	// and one whose cursor predates it receives the marker as explicit
	// notice instead of a silent gap.
	EventTruncate = "truncate"
)

// JobEvent is one record of a job's durable event log, exposed to
// clients as NDJSON at GET /jobs/{id}/events. Seq is assigned at append
// time and is dense and strictly increasing per job across daemon
// restarts and worker attempts, so a client that saw records through
// seq N resumes with ?after=N and observes no gap and no duplicate.
type JobEvent struct {
	Seq     uint64 `json:"seq"`
	TS      int64  `json:"ts"` // unix nanoseconds
	Type    string `json:"type"`
	State   string `json:"state,omitempty"`   // state: the new job state
	Attempt int    `json:"attempt,omitempty"` // 1-based worker attempt
	Detail  string `json:"detail,omitempty"`

	// Progress payload (type "progress"): the CEGAR iteration that just
	// committed, the predicate-pool size entering the next iteration, the
	// cumulative prover interaction count (queries + incremental-session
	// checks) and the abstraction engine.
	Iter    int    `json:"iter,omitempty"`
	Preds   int    `json:"preds,omitempty"`
	Queries int64  `json:"queries,omitempty"`
	Engine  string `json:"engine,omitempty"`

	// Dropped (type "truncate") counts the events discarded by log
	// rotation; sequences are dense from 1, so it always equals Seq.
	Dropped uint64 `json:"dropped,omitempty"`
}

// appendJobEvent durably appends ev to dir's event log, assigning the
// next sequence number from the replayed maximum. Open-append-close per
// record keeps the log single-writer-at-a-time under the supervisor /
// worker temporal handoff (neither holds a stale write offset across
// the other's appends) and makes restart replay idempotent by
// construction. The fsync cost is one frame per supervision transition
// or CEGAR iteration — noise next to the checkpoint commit each
// iteration already pays.
func appendJobEvent(dir string, ev JobEvent) (uint64, error) {
	return appendJobEventFS(nil, dir, 0, ev)
}

// eventFrame pairs a retained event's sequence with its raw payload,
// so rotation rewrites the kept suffix byte-identically.
type eventFrame struct {
	seq     uint64
	payload []byte
}

// appendJobEventFS is appendJobEvent over an explicit filesystem seam
// (nil = the real filesystem) with an optional retention cap: when
// maxBytes > 0 and the log exceeds it after the append, the oldest
// events rotate out behind an EventTruncate marker (see rotateEvents).
func appendJobEventFS(fsys checkpoint.FS, dir string, maxBytes int64, ev JobEvent) (uint64, error) {
	var last uint64
	var kept []eventFrame
	path := filepath.Join(dir, EventsName)
	log, err := checkpoint.OpenLogFS(fsys, path, eventsMagic,
		func(payload []byte) {
			var e JobEvent
			if json.Unmarshal(payload, &e) == nil {
				if e.Seq > last {
					last = e.Seq
				}
				// Rotation rewrites retained events verbatim; an old
				// truncate marker is superseded by the new one.
				if maxBytes > 0 && e.Type != EventTruncate {
					kept = append(kept, eventFrame{e.Seq, append([]byte(nil), payload...)})
				}
			}
		})
	if err != nil {
		return 0, err
	}
	ev.Seq = last + 1
	if ev.TS == 0 {
		ev.TS = time.Now().UnixNano()
	}
	payload, err := json.Marshal(ev)
	if err != nil {
		log.Close()
		return 0, err
	}
	if err := log.Append(payload); err != nil {
		log.Close()
		return 0, err
	}
	over := maxBytes > 0 && log.Size() > maxBytes
	log.Close()
	if over {
		// Best-effort: the append above is already durable, so a failed
		// rotation only means the log stays big until the next try.
		rotateEvents(fsys, path, maxBytes, append(kept, eventFrame{ev.Seq, payload}))
	}
	return ev.Seq, nil
}

// rotateEvents rewrites the event log down to roughly half its byte cap
// by keeping the newest events (always at least the latest one) behind
// an EventTruncate marker whose Seq/Dropped name the last discarded
// sequence. RewriteLog's rename is the commit point: a crash or fault
// mid-rotation leaves the previous generation intact.
func rotateEvents(fsys checkpoint.FS, path string, maxBytes int64, events []eventFrame) {
	target := maxBytes / 2
	keep := len(events) - 1 // always retain the newest event
	size := int64(len(events[keep].payload)) + checkpoint.FrameOverhead
	for keep > 0 {
		next := int64(len(events[keep-1].payload)) + checkpoint.FrameOverhead
		if size+next > target {
			break
		}
		size += next
		keep--
	}
	if keep == 0 {
		return // nothing to drop (one oversized event); the cap is advisory
	}
	lastDropped := events[keep-1].seq
	marker, err := json.Marshal(JobEvent{
		Seq: lastDropped, TS: time.Now().UnixNano(),
		Type: EventTruncate, Dropped: lastDropped,
	})
	if err != nil {
		return
	}
	frames := make([][]byte, 0, len(events)-keep+1)
	frames = append(frames, marker)
	for _, e := range events[keep:] {
		frames = append(frames, e.payload)
	}
	checkpoint.RewriteLog(fsys, path, eventsMagic, frames)
}

// readJobEvents returns dir's events with Seq > after, in append order,
// reading strictly read-only (a torn or in-progress tail ends the read,
// it is never repaired from here — see checkpoint.ReplayLog).
func readJobEvents(dir string, after uint64) ([]JobEvent, error) {
	var out []JobEvent
	err := checkpoint.ReplayLog(filepath.Join(dir, EventsName), eventsMagic,
		func(payload []byte) {
			var e JobEvent
			if json.Unmarshal(payload, &e) == nil && e.Seq > after {
				out = append(out, e)
			}
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// knownEventStates are the State values a "state" event may carry.
var knownEventStates = map[string]bool{
	StateQueued: true, StateRunning: true, StateRetrying: true,
	StateDone: true, StateFailed: true,
}

// ValidateEvents checks an NDJSON export of a job event log (the body
// of GET /jobs/{id}/events) against the record schema: known types,
// strictly increasing dense sequence numbers, non-negative timestamps,
// and per-type payload rules. It returns the number of records read and
// the first violation with its 1-based line number. cmd/tracelint
// -events drives it.
func ValidateEvents(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	n := 0
	var prevSeq uint64
	first := true
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev JobEvent
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return n, fmt.Errorf("line %d: not a job-event record: %v", n, err)
		}
		if err := validateEvent(ev, prevSeq, first); err != nil {
			return n, fmt.Errorf("line %d: %w", n, err)
		}
		prevSeq = ev.Seq
		first = false
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	return n, nil
}

func validateEvent(ev JobEvent, prevSeq uint64, first bool) error {
	if ev.Seq == 0 {
		return fmt.Errorf("missing or zero seq")
	}
	// A stream may start mid-log (?after=N), so the first seq is free;
	// after that the sequence must stay dense — a jump is a lost record,
	// a repeat a duplicated one. A truncation marker does not bend this
	// rule: its Seq is the last discarded sequence, so the oldest
	// retained event is exactly Seq+1 and the stream reads dense across
	// the marker.
	if !first && ev.Seq != prevSeq+1 {
		return fmt.Errorf("seq %d after %d: stream must be dense and strictly increasing", ev.Seq, prevSeq)
	}
	if ev.TS < 0 {
		return fmt.Errorf("negative ts")
	}
	if ev.Attempt < 0 {
		return fmt.Errorf("negative attempt")
	}
	switch ev.Type {
	case EventState:
		if !knownEventStates[ev.State] {
			return fmt.Errorf("unknown state %q", ev.State)
		}
	case EventSpawn, EventKill:
		if ev.Attempt < 1 {
			return fmt.Errorf("%s event without a positive attempt", ev.Type)
		}
	case EventAdopt:
		// No payload requirements.
	case EventTruncate:
		// Rotation markers only ever open a stream: the rewrite puts the
		// marker first, and a resumed cursor past it never sees one.
		if !first {
			return fmt.Errorf("truncate marker mid-stream (seq %d after %d)", ev.Seq, prevSeq)
		}
		if ev.Dropped < 1 {
			return fmt.Errorf("truncate marker without a positive dropped count")
		}
		if ev.Dropped != ev.Seq {
			return fmt.Errorf("truncate marker dropped %d != seq %d (sequences are dense from 1)", ev.Dropped, ev.Seq)
		}
	case EventProgress:
		if ev.Iter < 1 {
			return fmt.Errorf("progress event without a positive iter")
		}
		if ev.Preds < 0 || ev.Queries < 0 {
			return fmt.Errorf("progress event with negative counters")
		}
	default:
		return fmt.Errorf("unknown event type %q", ev.Type)
	}
	return nil
}
