package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predabs"
	"predabs/internal/checkpoint"
	"predabs/internal/metrics"
	"predabs/internal/runner"
)

// Job lifecycle states, as reported by the status API.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateRetrying = "retrying" // in the backoff window between attempts
	StateDone     = "done"     // a worker produced a complete result
	StateFailed   = "failed"   // retry budget exhausted; outcome unknown
)

// Config configures a Server. Zero fields take the documented defaults.
type Config struct {
	// DataDir holds the ledger and one directory per job (required).
	DataDir string
	// WorkerBin is the predabsd binary to re-exec as workers (required;
	// the daemon passes its own os.Executable()).
	WorkerBin string
	// QueueCap bounds the admission queue; submissions beyond it are
	// shed with 503 (default 64).
	QueueCap int
	// Workers is the number of concurrent worker slots (default 2).
	Workers int
	// AttemptTimeout is the default hard per-attempt deadline; an
	// overrunning worker is SIGKILLed and retried (default 60s).
	AttemptTimeout time.Duration
	// Retries is the per-job retry budget: a job gets at most
	// Retries+1 attempts, counted durably across daemon restarts
	// (default 2).
	Retries int
	// RetryBase/RetryMax shape the exponential backoff between
	// attempts: base·2^(attempt-1) with ±50% jitter, capped at max
	// (defaults 250ms / 10s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Artifacts makes every worker write trace.jsonl and report.json
	// job artifacts.
	Artifacts bool
	// AllowJobEnv honours JobSpec.Env (worker environment injection).
	// Leave it off outside chaos testing.
	AllowJobEnv bool
	// CacheURL, when non-empty, is the shared prover cache (predcached)
	// base URL every worker inherits via PREDABSD_CACHE_URL. CacheVerify
	// additionally puts the workers' remote tiers in verify mode
	// (PREDABSD_CACHE_VERIFY=1). Both degrade soundly: a dead, slow or
	// lying cache never changes a verdict, only its speed.
	CacheURL    string
	CacheVerify bool
	// Metrics receives the daemon's instrument registrations and backs
	// GET /metrics. Nil disables metrics: every instrument update then
	// no-ops at zero allocations (the nil-tracer contract), and /metrics
	// serves an empty exposition.
	Metrics *metrics.Registry
	// FS is the filesystem seam under the ledger and the per-job event
	// logs (nil = the real filesystem). The disk-chaos suite threads a
	// fault-injecting implementation through it.
	FS checkpoint.FS
	// LedgerSnapshotBytes makes restart-replay fold terminal jobs into
	// one snapshot record when the ledger exceeds this many bytes
	// (0 = never fold; the ledger only grows).
	LedgerSnapshotBytes int64
	// EventsMaxBytes caps each job's event log: above it the oldest
	// events rotate out behind an explicit truncation record that
	// preserves the resumable ?after=N contract (0 = unbounded).
	EventsMaxBytes int64
	// Logf receives daemon log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.DataDir == "" {
		return errors.New("server: DataDir is required")
	}
	if c.WorkerBin == "" {
		return errors.New("server: WorkerBin is required")
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 60 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Counters are the daemon's monotonic health counters, exposed at
// /statz and logged at shutdown.
type Counters struct {
	Submitted int64 `json:"submitted"` // jobs admitted
	Shed      int64 `json:"shed"`      // submissions rejected on a full queue
	Completed int64 `json:"completed"` // jobs finished with a worker result
	Failed    int64 `json:"failed"`    // jobs failed on retry exhaustion
	Retries   int64 `json:"retries"`   // attempts beyond each job's first
	Kills     int64 `json:"kills"`     // workers SIGKILLed on the attempt deadline
	Resumed   int64 `json:"resumed"`   // jobs re-enqueued from the ledger at startup
	Adopted   int64 `json:"adopted"`   // orphaned complete results adopted at supervise
}

// job is the in-memory runtime state of one admitted job. hash is the
// spec's content address, carried explicitly because a job replayed
// from a ledger snapshot record keeps its hash but not its spec text.
type job struct {
	id   string
	dir  string
	hash string

	mu       sync.Mutex
	spec     JobSpec
	state    string
	attempts int
	resumed  bool // re-enqueued from the ledger after a daemon restart
	result   *WorkerResult
	errmsg   string
}

// JobStatus is the status API's JSON shape, shared by the single-node
// daemon and the fleet frontend.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Attempts int    `json:"attempts"`
	Resumed  bool   `json:"resumed,omitempty"`
	ExitCode int    `json:"exit_code,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Stdout   string `json:"stdout,omitempty"`
	Error    string `json:"error,omitempty"`
	// SpecHash is the content address of the job's normalized spec (see
	// SpecHash). The fleet frontend uses it to verify that a backend job
	// it re-adopts after a restart still runs the work it dispatched.
	SpecHash string `json:"spec_hash,omitempty"`
	// Backend is the backend node a fleet frontend dispatched the job
	// to; single-node daemons leave it empty.
	Backend string `json:"backend,omitempty"`
	// Progress is the last CEGAR heartbeat the worker logged, when any;
	// populated only by GET /jobs/{id} (it reads the job's event log).
	Progress *ProgressInfo `json:"progress,omitempty"`
}

// ProgressInfo summarizes the most recent worker progress event: how far
// the current (or final) attempt's CEGAR loop has gotten.
type ProgressInfo struct {
	Attempt int    `json:"attempt"`
	Iter    int    `json:"iter"`
	Preds   int    `json:"preds"`
	Queries int64  `json:"queries"`
	Engine  string `json:"engine"`
	Seq     uint64 `json:"seq"` // event-log sequence of this heartbeat
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{ID: j.id, State: j.state, Attempts: j.attempts, Resumed: j.resumed,
		Error: j.errmsg, SpecHash: j.hash}
	if j.result != nil {
		st.ExitCode = j.result.ExitCode
		st.Outcome = j.result.Outcome
		st.Stdout = j.result.Stdout
	} else if j.state == StateFailed {
		// Retry exhaustion never invents a verdict: the reported
		// outcome is the sound retreat.
		st.Outcome = "unknown"
		st.ExitCode = runner.ExitUnknown
	}
	return st
}

// Server is the verification daemon: admission, supervision, ledger.
type Server struct {
	cfg    Config
	ledger *ledger

	mu      sync.Mutex // guards jobs, nextSeq, and queue admission
	jobs    map[string]*job
	nextSeq int

	queue    chan *job
	quit     chan struct{} // closed on Shutdown: stop admitting and dequeuing
	runCtx   context.Context
	runStop  context.CancelFunc // hard-kills in-flight workers
	wg       sync.WaitGroup
	draining atomic.Bool
	started  atomic.Bool

	submitted, shed, completed, failed atomic.Int64
	retries, kills, resumed, adopted   atomic.Int64
	// inBackoff counts supervisors currently sleeping out a retry
	// backoff — a point-in-time gauge, not a monotone counter, kept on
	// the Server (not only the registry) so /statz reports it even with
	// metrics disabled.
	inBackoff atomic.Int64

	start time.Time
	met   serverMetrics
}

// New opens (or creates) the data directory and ledger, replays every
// journaled job, and re-enqueues the unfinished ones — their checkpoint
// journals make the resumed runs continue from the last committed CEGAR
// iteration. Call Start to begin executing.
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	path := filepath.Join(cfg.DataDir, LedgerName)
	led, replayed, order, warnings, err := openLedger(cfg.FS, path, cfg.LedgerSnapshotBytes)
	if err != nil {
		var ce *checkpoint.CorruptError
		if !errors.As(err, &ce) {
			return nil, err
		}
		// A ledger that cannot be trusted is quarantined, never deleted:
		// availability wins, the evidence stays on disk.
		quarantine := path + ".corrupt"
		if rerr := os.Rename(path, quarantine); rerr != nil {
			return nil, fmt.Errorf("server: quarantining corrupt ledger: %w", rerr)
		}
		cfg.Logf("predabsd: %v; ledger quarantined to %s, starting fresh", err, quarantine)
		if led, replayed, order, warnings, err = openLedger(cfg.FS, path, cfg.LedgerSnapshotBytes); err != nil {
			return nil, err
		}
	}
	for _, w := range warnings {
		cfg.Logf("predabsd: ledger: %s", w)
	}
	pending := pendingOrder(replayed, order)
	queueCap := cfg.QueueCap
	if len(pending) > queueCap {
		queueCap = len(pending)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		ledger:  led,
		jobs:    make(map[string]*job, len(replayed)),
		nextSeq: nextJobSeq(replayed),
		queue:   make(chan *job, queueCap),
		quit:    make(chan struct{}),
		runCtx:  ctx,
		runStop: cancel,
		start:   time.Now(),
		met:     newServerMetrics(cfg.Metrics),
	}
	// Scrape-time gauges: queue depth reads the channel (len is safe
	// without s.mu), uptime the start timestamp.
	cfg.Metrics.GaugeFunc("predabsd_queue_depth",
		"Jobs waiting in the admission queue.",
		func() int64 { return int64(len(s.queue)) })
	cfg.Metrics.GaugeFunc("predabsd_uptime_seconds",
		"Seconds since the daemon process started.",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	// Disk-durability observability: the ledger's trusted on-disk size
	// and the sticky persistence-degraded flag (1 = an append or fsync
	// failed; the daemon keeps serving but sheds new admissions).
	cfg.Metrics.GaugeFunc("predabsd_ledger_log_bytes",
		"Trusted on-disk size of the job ledger in bytes.",
		func() int64 { return led.size() })
	cfg.Metrics.GaugeFunc("predabsd_persistence_degraded",
		"1 while the ledger is persistence-degraded (append/fsync failed), else 0.",
		func() int64 {
			if led.degradedErr() != nil {
				return 1
			}
			return 0
		})
	s.met.ledgerCompactions.Add(led.compactions)
	s.met.ledgerReclaimed.Add(led.reclaimedBytes)
	for id, rj := range replayed {
		j := &job{id: id, dir: s.jobDir(id), hash: rj.hash, spec: rj.spec, attempts: rj.attempts}
		if rj.done {
			j.state = rj.state
			j.errmsg = rj.detail
			if rj.state == StateDone {
				if res, ok := readResult(j.dir, rj.hash); ok {
					j.result = &res
				} else {
					// The verdict is durable in the ledger even when the
					// result file is gone.
					j.result = &WorkerResult{ExitCode: rj.exit, Outcome: rj.outcome}
				}
			}
		} else {
			j.state = StateQueued
			j.resumed = true
		}
		s.jobs[id] = j
	}
	for _, id := range pending {
		s.queue <- s.jobs[id]
		s.resumed.Add(1)
		s.met.resumed.Inc()
	}
	if len(pending) > 0 {
		cfg.Logf("predabsd: resuming %d in-flight job(s) from the ledger", len(pending))
	}
	return s, nil
}

// Start launches the worker slots.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
}

// Shutdown drains the daemon: admissions stop immediately (readyz goes
// 503), idle worker slots exit, and running attempts get until ctx's
// deadline to finish before their workers are SIGKILLed. Unfinished
// jobs stay journaled in the ledger and resume on the next start —
// their checkpoint journals preserve every committed iteration.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.draining.CompareAndSwap(false, true) {
		close(s.quit)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.runStop() // SIGKILL in-flight workers; journals stay intact
		<-done
		err = ctx.Err()
	}
	s.runStop()
	c := s.CounterSnapshot()
	s.cfg.Logf("predabsd: shutdown: submitted=%d completed=%d failed=%d retries=%d kills=%d shed=%d resumed=%d",
		c.Submitted, c.Completed, c.Failed, c.Retries, c.Kills, c.Shed, c.Resumed)
	if cerr := s.ledger.close(); err == nil {
		err = cerr
	}
	return err
}

// CounterSnapshot returns the current counter values.
func (s *Server) CounterSnapshot() Counters {
	return Counters{
		Submitted: s.submitted.Load(),
		Shed:      s.shed.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
		Retries:   s.retries.Load(),
		Kills:     s.kills.Load(),
		Resumed:   s.resumed.Load(),
		Adopted:   s.adopted.Load(),
	}
}

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id)
}

// Handler returns the daemon's HTTP API: the shared JobAPI surface (see
// APIHandler) extended with the single-node artifact routes:
//
//	GET  /jobs/{id}/trace,/report,/log   job artifacts
//	GET  /jobs/{id}/trace.chrome         merged daemon+worker Chrome trace
func (s *Server) Handler() http.Handler {
	return APIHandler(s, APIExtras{
		Metrics: s.cfg.Metrics,
		Ready: func() error {
			if s.draining.Load() {
				return errors.New("draining")
			}
			return nil
		},
		Healthz: func() map[string]any {
			h := map[string]any{
				"status":               "ok",
				"version":              predabs.Version,
				"uptime_seconds":       int64(time.Since(s.start).Seconds()),
				"persistence_degraded": s.ledger.degradedErr() != nil,
			}
			if s.cfg.CacheURL != "" {
				h["cache_url"] = s.cfg.CacheURL
			}
			return h
		},
		Statz: func() map[string]any {
			s.mu.Lock()
			depth := len(s.queue)
			s.mu.Unlock()
			st := map[string]any{
				"counters":             s.CounterSnapshot(),
				"queue_depth":          depth,
				"queue_cap":            cap(s.queue),
				"draining":             s.draining.Load(),
				"retries_in_backoff":   s.inBackoff.Load(),
				"version":              predabs.Version,
				"uptime_seconds":       int64(time.Since(s.start).Seconds()),
				"ledger_log_bytes":     s.ledger.size(),
				"persistence_degraded": s.ledger.degradedErr() != nil,
			}
			if derr := s.ledger.degradedErr(); derr != nil {
				st["persistence_error"] = derr.Error()
			}
			if s.cfg.CacheURL != "" {
				st["cache_url"] = s.cfg.CacheURL
			}
			return st
		},
		Extend: func(mux *http.ServeMux) {
			mux.HandleFunc("GET /jobs/{id}/trace", s.artifactHandler(traceFile))
			mux.HandleFunc("GET /jobs/{id}/report", s.artifactHandler(reportFile))
			mux.HandleFunc("GET /jobs/{id}/log", s.artifactHandler(workerLogFile))
			mux.HandleFunc("GET /jobs/{id}/trace.chrome", s.handleChromeTrace)
		},
	})
}

// maxJobBody bounds a submission body (a large driver source is well
// under a megabyte; 16 MiB leaves headroom without inviting abuse).
const maxJobBody = 16 << 20

// Admission rejections (mapped to HTTP 503 by the handler).
var (
	ErrDraining  = errors.New("server: draining")
	ErrQueueFull = errors.New("server: queue full")
	// ErrPersistDegraded sheds admissions while the ledger can no longer
	// append durably (disk full, failed fsync): a job the daemon cannot
	// journal would silently vanish on restart, so it is refused with
	// 503 + Retry-After instead. Already-admitted jobs keep running —
	// their verdicts stay sound, merely not durable.
	ErrPersistDegraded = errors.New("server: persistence degraded")
)

// Submit admits one job: validated, journaled in the ledger, enqueued.
// It returns the job ID, or ErrDraining / ErrQueueFull (load shedding)
// / a validation error. Sheds are counted here.
func (s *Server) Submit(spec JobSpec) (string, error) {
	if s.draining.Load() {
		return "", ErrDraining
	}
	if err := spec.Normalize(); err != nil {
		return "", err
	}
	if len(spec.Env) > 0 && !s.cfg.AllowJobEnv {
		return "", errors.New("env: forbidden (daemon runs without -allow-job-env)")
	}
	spec.Artifacts = s.cfg.Artifacts

	s.mu.Lock()
	// Re-check under the lock: a Shutdown that began after the load
	// above must not see this submission race its ledger close.
	if s.draining.Load() {
		s.mu.Unlock()
		return "", ErrDraining
	}
	if len(s.queue) >= cap(s.queue) {
		s.mu.Unlock()
		s.shed.Add(1)
		s.met.shed.Inc()
		return "", ErrQueueFull
	}
	if derr := s.ledger.degradedErr(); derr != nil {
		s.mu.Unlock()
		s.shed.Add(1)
		s.met.shedDegraded.Inc()
		return "", fmt.Errorf("%w: %v", ErrPersistDegraded, derr)
	}
	id := fmt.Sprintf("job-%06d", s.nextSeq)
	s.nextSeq++
	j := &job{id: id, dir: s.jobDir(id), hash: SpecHash(spec), spec: spec, state: StateQueued}
	if err := s.admit(j); err != nil {
		s.mu.Unlock()
		if errors.Is(err, errLedgerClosed) {
			return "", ErrDraining
		}
		if s.ledger.degradedErr() != nil {
			// The admit append itself hit the disk fault: the job never
			// went durable, so refuse it rather than run unjournaled work.
			s.shed.Add(1)
			s.met.shedDegraded.Inc()
			return "", fmt.Errorf("%w: %v", ErrPersistDegraded, err)
		}
		return "", err
	}
	// The admission event opens the job's durable event log. It must
	// precede the queue send: once a worker slot can dequeue the job,
	// the supervisor owns the log's write handoff, and a trailing append
	// from this goroutine would break the single-writer-at-a-time
	// invariant the open-append-close discipline relies on.
	s.event(j, JobEvent{Type: EventState, State: StateQueued})
	s.jobs[id] = j
	// Guaranteed not to block: only submitters (serialized by s.mu) add,
	// and the capacity check above just passed.
	s.queue <- j
	s.mu.Unlock()
	s.submitted.Add(1)
	s.met.submitted.Inc()
	return id, nil
}

// Status reports one job's current status.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// admit persists the job: directory, job.json (the worker's input) and
// the durable ledger record, in that order, so a replayed admit record
// always has its job.json on disk.
func (s *Server) admit(j *job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return err
	}
	// Job IDs restart at 1 when the ledger is quarantined or deleted
	// while old job directories survive, so the directory may already
	// hold another job's artifacts: scrub them before this job's spec
	// goes durable. A directory that cannot be cleaned is not assigned.
	if err := scrubJobDir(j.dir); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(j.dir, jobSpecFile), j.spec); err != nil {
		return err
	}
	return s.ledger.admit(j.id, j.spec)
}

// List returns every job's status in ID order (the JobAPI surface
// behind GET /jobs).
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		out = append(out, j.status())
	}
	return out
}

// Lookup returns one job's full status (the JobAPI surface behind
// GET /jobs/{id}). Live progress rides the status: the last heartbeat
// the worker logged, read fresh from the event log on every fetch.
// Best-effort — a job without artifacts or heartbeats simply omits the
// field.
func (s *Server) Lookup(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	st := j.status()
	st.Progress = lastProgress(j.dir)
	return st, true
}

// Events returns a job's durable events with Seq > after, in sequence
// order (the JobAPI surface behind GET /jobs/{id}/events). ?after=N
// lets a consumer resume exactly where a previous fetch (or a previous
// daemon incarnation) left off; the result is a snapshot, not a tail.
// The error taxonomy is deliberate: an unknown ID is ErrNoJob, a job
// whose event log does not exist yet is an empty stream (not an
// error), and a log that exists but cannot be trusted wraps
// ErrCorruptEvents — a fleet frontend maps the three to "gone",
// "keep waiting" and "re-dispatch" respectively.
func (s *Server) Events(id string, after uint64) ([]any, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNoJob
	}
	evs, err := readJobEvents(j.dir, after)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // admitted, but no events durable yet
		}
		var ce *checkpoint.CorruptError
		if errors.As(err, &ce) {
			return nil, fmt.Errorf("%w: %v", ErrCorruptEvents, err)
		}
		return nil, err
	}
	out := make([]any, len(evs))
	for i := range evs {
		out[i] = evs[i]
	}
	return out, nil
}

// lastProgress returns the most recent progress heartbeat in dir's event
// log, or nil when there is none (no log, no heartbeats, or any error —
// progress display never fails a status fetch).
func lastProgress(dir string) *ProgressInfo {
	evs, err := readJobEvents(dir, 0)
	if err != nil {
		return nil
	}
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Type == EventProgress {
			return &ProgressInfo{
				Attempt: evs[i].Attempt,
				Iter:    evs[i].Iter,
				Preds:   evs[i].Preds,
				Queries: evs[i].Queries,
				Engine:  evs[i].Engine,
				Seq:     evs[i].Seq,
			}
		}
	}
	return nil
}

func (s *Server) artifactHandler(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		j, ok := s.jobs[r.PathValue("id")]
		s.mu.Unlock()
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
			return
		}
		http.ServeFile(w, r, filepath.Join(j.dir, name))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
