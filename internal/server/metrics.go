package server

import (
	"predabs/internal/metrics"
)

// serverMetrics bundles the daemon's registered instruments. With a nil
// registry (metrics disabled) every field is nil and every update
// no-ops at zero allocations — the same contract as the nil tracer —
// so the supervision hot paths never branch on whether metrics are on.
type serverMetrics struct {
	submitted, shed, completed, failed *metrics.Counter
	retries, kills, resumed, adopted   *metrics.Counter
	backoffSleeps                      *metrics.Counter
	shedDegraded                       *metrics.Counter
	ledgerCompactions, ledgerReclaimed *metrics.Counter

	verdictVerified, verdictErrorFound, verdictUnknown *metrics.Counter

	retriesInBackoff, workersBusy *metrics.Gauge

	attemptSeconds, backoffSeconds *metrics.Histogram

	runIterations, runPredicates  *metrics.Counter
	runProverCalls, runCacheHits  *metrics.Counter
	runSessions, runSessionChecks *metrics.Counter
}

// newServerMetrics registers the daemon's metric families on reg (nil
// reg registers nothing and yields all-nil instruments).
func newServerMetrics(reg *metrics.Registry) serverMetrics {
	return serverMetrics{
		submitted: reg.Counter("predabsd_jobs_submitted_total", "Jobs admitted through the queue."),
		shed:      reg.Counter("predabsd_jobs_shed_total", "Submissions rejected on a full queue."),
		completed: reg.Counter("predabsd_jobs_completed_total", "Jobs finished with a worker result."),
		failed:    reg.Counter("predabsd_jobs_failed_total", "Jobs failed on retry exhaustion."),
		retries:   reg.Counter("predabsd_attempt_retries_total", "Worker attempts beyond each job's first."),
		kills:     reg.Counter("predabsd_worker_kills_total", "Workers SIGKILLed on the attempt deadline."),
		resumed:   reg.Counter("predabsd_jobs_resumed_total", "Jobs re-enqueued from the ledger at startup."),
		adopted:   reg.Counter("predabsd_results_adopted_total", "Orphaned complete results adopted at supervise."),
		backoffSleeps: reg.Counter("predabsd_backoff_sleeps_total",
			"Retry backoff sleeps entered between attempts."),
		shedDegraded: reg.Counter("predabsd_jobs_shed_degraded_total",
			"Submissions refused while the ledger is persistence-degraded."),
		ledgerCompactions: reg.Counter("predabsd_ledger_compactions_total",
			"Ledger snapshot folds performed at restart replay."),
		ledgerReclaimed: reg.Counter("predabsd_ledger_compaction_reclaimed_bytes_total",
			"Ledger bytes reclaimed by snapshot folds."),

		verdictVerified: reg.Counter("predabsd_verdict_verified_total",
			"Completed jobs with outcome verified."),
		verdictErrorFound: reg.Counter("predabsd_verdict_error_found_total",
			"Completed jobs with outcome error-found."),
		verdictUnknown: reg.Counter("predabsd_verdict_unknown_total",
			"Jobs with outcome unknown (sound retreats and retry exhaustion)."),

		retriesInBackoff: reg.Gauge("predabsd_retries_in_backoff",
			"Supervisors currently sleeping out a retry backoff."),
		workersBusy: reg.Gauge("predabsd_workers_busy",
			"Worker slots currently supervising a job."),

		attemptSeconds: reg.Histogram("predabsd_worker_attempt_seconds",
			"Worker subprocess lifetimes per attempt.", metrics.DurationBuckets),
		backoffSeconds: reg.Histogram("predabsd_backoff_sleep_seconds",
			"Observed retry backoff sleep durations.", metrics.DurationBuckets),

		runIterations: reg.Counter("predabsd_run_iterations_total",
			"CEGAR iterations folded from completed jobs' run reports."),
		runPredicates: reg.Counter("predabsd_run_predicates_total",
			"Final-abstraction predicates folded from completed jobs' run reports."),
		runProverCalls: reg.Counter("predabsd_run_prover_calls_total",
			"Theorem prover calls folded from completed jobs' run reports."),
		runCacheHits: reg.Counter("predabsd_run_prover_cache_hits_total",
			"Prover cache hits folded from completed jobs' run reports."),
		runSessions: reg.Counter("predabsd_run_prover_sessions_total",
			"Incremental prover sessions folded from completed jobs' run reports."),
		runSessionChecks: reg.Counter("predabsd_run_session_checks_total",
			"Incremental session checks folded from completed jobs' run reports."),
	}
}

// verdict maps an outcome label to its counter (nil for labels outside
// the slam contract, which then no-op like every nil instrument).
func (m *serverMetrics) verdict(outcome string) *metrics.Counter {
	switch outcome {
	case "verified":
		return m.verdictVerified
	case "error-found":
		return m.verdictErrorFound
	case "unknown":
		return m.verdictUnknown
	}
	return nil
}
