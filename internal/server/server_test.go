// End-to-end tests for the predabsd daemon core: the predabsd binary is
// built once, then driven through the exported Server API (and its HTTP
// handler) with real worker subprocesses — verdict fidelity against
// direct in-process runs, admission validation, load shedding, sound
// retry exhaustion, and restart-resume from the ledger.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"predabs/internal/checkpoint"
	"predabs/internal/corpus"
	"predabs/internal/runner"
	"predabs/internal/server"
)

var predabsdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "predabsd-bin-")
	if err != nil {
		panic(err)
	}
	predabsdBin = filepath.Join(dir, "predabsd")
	build := exec.Command("go", "build", "-o", predabsdBin, "predabs/cmd/predabsd")
	wd, _ := os.Getwd()
	build.Dir = filepath.Dir(filepath.Dir(wd)) // internal/server -> repo root
	if out, err := build.CombinedOutput(); err != nil {
		panic("building predabsd: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

const verifiedSrc = `
void main(int x) {
  if (x > 3) {
    assert(x > 1);
  }
}
`

const buggySrc = `
void main(int x) {
  if (x > 3) {
    assert(x < 2);
  }
}
`

// newServer builds a started Server over a fresh data dir; mutate tweaks
// the config before New. The server is shut down at test cleanup (a
// second Shutdown on an already-drained server is a harmless no-op).
func newServer(t *testing.T, mutate func(*server.Config)) *server.Server {
	t.Helper()
	cfg := server.Config{
		DataDir:        t.TempDir(),
		WorkerBin:      predabsdBin,
		AttemptTimeout: 30 * time.Second,
		RetryBase:      time.Millisecond,
		RetryMax:       10 * time.Millisecond,
		Artifacts:      true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// await polls until the job reaches a terminal state.
func await(t *testing.T, s *server.Server, id string, timeout time.Duration) server.JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Status(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if st.State == server.StateDone || st.State == server.StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitState polls until the job reports the wanted state.
func awaitState(t *testing.T, s *server.Server, id, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := s.Status(id)
		if ok && st.State == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached state %q (now %q)", id, want, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// direct runs the same inputs through internal/runner in-process — the
// exact code path a daemon worker uses — as the byte-identical reference.
func direct(t *testing.T, spec server.JobSpec) (string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code, _ := runner.Run(runner.Input{
		SourceName: "job.c",
		Source:     spec.Source,
		Spec:       spec.Spec,
		HasSpec:    spec.Spec != "",
		Entry:      entryOr(spec.Entry),
		MaxIters:   10,
		Explain:    spec.Explain,
	}, &stdout, &stderr)
	return stdout.String(), code
}

func entryOr(e string) string {
	if e == "" {
		return "main"
	}
	return e
}

// TestDaemonVerdictsMatchDirectRuns submits a verified program, a buggy
// program, and a Table 1 driver with its SLIC specification, and checks
// every daemon verdict (stdout and exit code) is byte-identical to a
// direct run, with the job artifacts on disk behind the HTTP API.
func TestDaemonVerdictsMatchDirectRuns(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: verified, multi-iteration
	specs := []server.JobSpec{
		{Source: verifiedSrc},
		{Source: buggySrc, Explain: true},
		{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry},
	}
	wantOutcome := []string{"verified", "error-found", "verified"}

	s := newServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i, spec := range specs {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		st := await(t, s, id, 30*time.Second)
		if st.State != server.StateDone {
			t.Fatalf("job %s: state %q error %q", id, st.State, st.Error)
		}
		if st.Outcome != wantOutcome[i] {
			t.Errorf("job %s: outcome %q, want %q", id, st.Outcome, wantOutcome[i])
		}
		refOut, refCode := direct(t, spec)
		if st.Stdout != refOut {
			t.Errorf("job %s stdout diverges from direct run:\ndaemon:\n%s\ndirect:\n%s", id, st.Stdout, refOut)
		}
		if st.ExitCode != refCode {
			t.Errorf("job %s exit %d, want %d", id, st.ExitCode, refCode)
		}

		// Artifacts are served over HTTP and are well-formed.
		for _, ep := range []string{"trace", "report"} {
			resp, err := http.Get(ts.URL + "/jobs/" + id + "/" + ep)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %s artifact %s: HTTP %d", id, ep, resp.StatusCode)
			}
			if len(bytes.TrimSpace(body)) == 0 {
				t.Fatalf("job %s artifact %s: empty", id, ep)
			}
			if ep == "report" && !json.Valid(body) {
				t.Fatalf("job %s report.json is not valid JSON", id)
			}
		}
	}

	c := s.CounterSnapshot()
	if c.Completed != int64(len(specs)) || c.Failed != 0 || c.Shed != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestSubmitValidation exercises the admission validation surface, both
// through Submit and through the HTTP handler.
func TestSubmitValidation(t *testing.T) {
	s := newServer(t, nil)
	bad := []server.JobSpec{
		{},                                    // empty source
		{Source: verifiedSrc, MaxIters: -1},   // negative limit
		{Source: verifiedSrc, CubeBudget: -5}, // negative limit
		{Source: verifiedSrc, Jobs: -1},       // negative worker count
		{Source: verifiedSrc, Env: []string{"X=1"}}, // env without -allow-job-env
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %d admitted, want validation error", i)
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for name, body := range map[string]string{
		"malformed":     `{"source": `,
		"unknown-field": `{"source": "void main() {}", "bogus": 1}`,
		"empty-source":  `{"entry": "main"}`,
	} {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}
	if c := s.CounterSnapshot(); c.Submitted != 0 {
		t.Fatalf("rejected submissions counted as admitted: %+v", c)
	}
}

// TestQueueShedding wedges the single worker slot with a hanging job,
// fills the one-deep queue, and checks the next submission is shed —
// ErrQueueFull from Submit, 503 + Retry-After over HTTP.
func TestQueueShedding(t *testing.T) {
	s := newServer(t, func(c *server.Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.AllowJobEnv = true
		c.Retries = 0
	})
	hang := server.JobSpec{
		Source:           verifiedSrc,
		Env:              []string{server.HangEnv + "=1"},
		AttemptTimeoutMS: int64((30 * time.Second) / time.Millisecond),
	}
	wedged, err := s.Submit(hang)
	if err != nil {
		t.Fatal(err)
	}
	// The worker slot must have dequeued the wedged job before the queue
	// depth below is meaningful.
	awaitState(t, s, wedged, server.StateRunning, 10*time.Second)

	if _, err := s.Submit(hang); err != nil {
		t.Fatalf("queueing one job behind the wedged worker: %v", err)
	}
	if _, err := s.Submit(hang); err != server.ErrQueueFull {
		t.Fatalf("overfull submit: err %v, want ErrQueueFull", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(hang)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed submission: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed submission: missing Retry-After")
	}
	if c := s.CounterSnapshot(); c.Shed != 2 || c.Submitted != 2 {
		t.Fatalf("counters after shedding: %+v", c)
	}

	// Tear down without waiting for the wedged worker: an expired context
	// forces the SIGKILL path.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s.Shutdown(ctx)
}

// TestRetryExhaustionReportsUnknown schedules a torn-frame crash at the
// first checkpoint commit of every attempt — an attempt that never
// completes and never makes durable progress — and checks the daemon
// retreats to outcome "unknown" when the budget runs out. It must never
// invent a verdict for a job whose workers all died.
func TestRetryExhaustionReportsUnknown(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: has checkpoint commits to crash on
	s := newServer(t, func(c *server.Config) {
		c.AllowJobEnv = true
		c.Retries = 1
	})
	id, err := s.Submit(server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: []string{checkpoint.CrashEnv + "=1:torn"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := await(t, s, id, 30*time.Second)
	if st.State != server.StateFailed {
		t.Fatalf("state %q, want failed (result: %+v)", st.State, st)
	}
	if st.Outcome != "unknown" || st.ExitCode != runner.ExitUnknown {
		t.Fatalf("exhausted job reported outcome %q exit %d — a dead worker must yield unknown",
			st.Outcome, st.ExitCode)
	}
	if st.Attempts != 2 {
		t.Fatalf("attempts %d, want 2 (retries=1)", st.Attempts)
	}
	if !strings.Contains(st.Error, "retry budget exhausted") {
		t.Fatalf("error %q does not name retry exhaustion", st.Error)
	}
	if c := s.CounterSnapshot(); c.Failed != 1 || c.Retries != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestRestartResumesJournaledJobs crashes a job's first attempt after
// one committed CEGAR iteration, shuts the daemon down mid-backoff (the
// retry never runs), then starts a second server over the same data dir:
// the job must be re-enqueued from the ledger, resume from the committed
// iteration, and finish with a verdict byte-identical to a direct run —
// with the durable attempt count spanning both daemon lifetimes.
func TestRestartResumesJournaledJobs(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: verified in 3 iterations, 2 commits
	dataDir := t.TempDir()
	spec := server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: []string{checkpoint.CrashEnv + "=1"}, // die at each attempt's first new commit
	}

	s1 := newServer(t, func(c *server.Config) {
		c.DataDir = dataDir
		c.AllowJobEnv = true
		c.Retries = 5
		c.RetryBase = time.Minute // park attempt 2 in backoff until shutdown
		c.RetryMax = time.Hour
	})
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, s1, id, server.StateRetrying, 20*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s1.Shutdown(ctx) // interrupts the backoff; the job stays pending in the ledger

	s2 := newServer(t, func(c *server.Config) {
		c.DataDir = dataDir
		c.AllowJobEnv = true
		c.Retries = 5
	})
	if c := s2.CounterSnapshot(); c.Resumed != 1 {
		t.Fatalf("restarted daemon resumed %d jobs, want 1", c.Resumed)
	}
	st := await(t, s2, id, 30*time.Second)
	if st.State != server.StateDone {
		t.Fatalf("resumed job: state %q error %q", st.State, st.Error)
	}
	if !st.Resumed {
		t.Fatal("status does not mark the job as resumed")
	}
	// Attempt 1 (first daemon) committed iteration 1; with a crash at
	// every attempt's first new commit, attempts 2 and 3 commit iteration
	// 2 and then converge — 3 attempts across the two daemon lifetimes.
	if st.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (durable budget across restarts)", st.Attempts)
	}
	refOut, refCode := direct(t, spec)
	if st.Stdout != refOut || st.ExitCode != refCode {
		t.Fatalf("resumed verdict diverges from direct run:\ndaemon (exit %d):\n%s\ndirect (exit %d):\n%s",
			st.ExitCode, st.Stdout, refCode, refOut)
	}

	// New submissions on the restarted daemon must not reuse ledger IDs.
	id2, err := s2.Submit(server.JobSpec{Source: verifiedSrc})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("restarted daemon reused job ID %s", id)
	}
	await(t, s2, id2, 30*time.Second)
}

// TestShutdownKillRefundsFinalAttempt forces shutdown's SIGKILL onto a
// job's only budgeted attempt (a wedged worker, Retries=0): the daemon
// must not durably fail the job for work it interrupted itself — the
// attempt is refunded in the ledger, the job stays pending, and a
// restarted daemon runs it again instead of declaring retry exhaustion
// on sight.
func TestShutdownKillRefundsFinalAttempt(t *testing.T) {
	dataDir := t.TempDir()
	hang := server.JobSpec{
		Source:           verifiedSrc,
		Env:              []string{server.HangEnv + "=1"},
		AttemptTimeoutMS: int64((30 * time.Second) / time.Millisecond),
	}
	s1 := newServer(t, func(c *server.Config) {
		c.DataDir = dataDir
		c.AllowJobEnv = true
		c.Retries = 0
		c.Workers = 1
	})
	id, err := s1.Submit(hang)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, s1, id, server.StateRunning, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s1.Shutdown(ctx) // expired grace: the running final attempt is SIGKILLed
	if st, ok := s1.Status(id); !ok || st.State == server.StateFailed {
		t.Fatalf("shutdown durably failed its own interrupted attempt: %+v", st)
	}

	s2 := newServer(t, func(c *server.Config) {
		c.DataDir = dataDir
		c.AllowJobEnv = true
		c.Retries = 0
		c.Workers = 1
	})
	if c := s2.CounterSnapshot(); c.Resumed != 1 {
		t.Fatalf("restarted daemon resumed %d jobs, want 1", c.Resumed)
	}
	// Without the refund the replayed attempt count already equals the
	// budget and the job fails instantly; with it, the attempt re-runs.
	awaitState(t, s2, id, server.StateRunning, 10*time.Second)
	st, _ := s2.Status(id)
	if !st.Resumed || st.Attempts != 1 {
		t.Fatalf("re-run job status %+v, want resumed with the refunded attempt re-counted", st)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	s2.Shutdown(ctx2)
}
