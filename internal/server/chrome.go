package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
)

// This file stitches the two halves of a job's observability across the
// process boundary: the daemon's supervision events (events.predabs,
// wall-clock timestamps) and each worker attempt's trace JSONL
// (timestamps relative to that worker's tracer start). The merged export
// is one Chrome trace_event JSON document where the daemon occupies lane
// 0 and every attempt's worker lanes render under it, rebased onto the
// job's wall-clock timeline using the attempt's spawn event as its epoch.

// mergedEvent is one Chrome trace_event record of the merged export.
// Timestamps and durations are microseconds (float to keep sub-µs
// precision from the worker's nanosecond clocks).
type mergedEvent struct {
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   float64         `json:"ts"`
	Ph   string          `json:"ph"`
	Dur  float64         `json:"dur,omitempty"`
	S    string          `json:"s,omitempty"` // instant scope ("t")
	Cat  string          `json:"cat"`
	Name string          `json:"name"`
	Args json.RawMessage `json:"args,omitempty"`
}

// workerTraceLine mirrors the trace package's JSONL record shape (see
// internal/trace.emit): ts/dur are nanoseconds since the worker tracer
// started, tid 0 is the worker's pipeline lane.
type workerTraceLine struct {
	TS     int64           `json:"ts"`
	Type   string          `json:"type"`
	Dur    int64           `json:"dur"`
	Cat    string          `json:"cat"`
	Name   string          `json:"name"`
	Tid    int             `json:"tid"`
	Fields json.RawMessage `json:"fields"`
}

// attemptLaneStride spaces the merged thread ids of successive attempts:
// attempt N's worker tid K renders as N*stride+K. Worker tids are cube
// worker indices (bounded by -j, far below the stride), so lanes of
// different attempts can never collide.
const attemptLaneStride = 1000

func (s *Server) handleChromeTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	evs, err := readJobEvents(j.dir, 0)
	if err != nil || len(evs) == 0 {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no events recorded for job"})
		return
	}
	doc := mergeChromeTrace(j.dir, evs)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{"traceEvents": doc})
}

// mergeChromeTrace builds the merged event list: the daemon supervision
// lane from the job's event log, then one set of worker lanes per
// attempt that left a trace file, each rebased to its spawn timestamp.
func mergeChromeTrace(dir string, evs []JobEvent) []mergedEvent {
	t0 := evs[0].TS // job epoch: everything is rendered relative to this
	last := evs[len(evs)-1].TS
	micros := func(ns int64) float64 { return float64(ns) / 1e3 }

	var out []mergedEvent
	// The whole supervision window as one span, so the daemon lane shows
	// the job's full extent even when attempts cover only part of it.
	out = append(out, mergedEvent{
		Tid: 0, Ts: 0, Ph: "X", Dur: micros(last - t0),
		Cat: "daemon", Name: "supervise",
	})

	// Per-attempt spans on the daemon lane: spawn opens the attempt, the
	// next non-progress daemon event closes it (kill, or the state
	// transition the supervisor logs right after the worker exits). An
	// attempt still running when the log was read extends to the log end.
	spawnTS := map[int]int64{}
	for i, ev := range evs {
		if ev.Type != EventSpawn {
			continue
		}
		spawnTS[ev.Attempt] = ev.TS
		end := last
		for _, later := range evs[i+1:] {
			if later.Type == EventSpawn || later.Type == EventProgress {
				continue
			}
			end = later.TS
			break
		}
		out = append(out, mergedEvent{
			Tid: 0, Ts: micros(ev.TS - t0), Ph: "X", Dur: micros(end - ev.TS),
			Cat: "daemon", Name: fmt.Sprintf("attempt %d", ev.Attempt),
		})
	}

	// Every other daemon record becomes an instant, so state transitions,
	// kills, adoptions and worker heartbeats all land on the timeline.
	for _, ev := range evs {
		if ev.Type == EventSpawn {
			continue
		}
		name := ev.Type
		if ev.Type == EventState {
			name = "state:" + ev.State
		}
		args, _ := json.Marshal(ev)
		out = append(out, mergedEvent{
			Tid: 0, Ts: micros(ev.TS - t0), Ph: "i", S: "t",
			Cat: "daemon", Name: name, Args: args,
		})
	}

	// Worker lanes. Failed attempts' traces are archived as
	// trace-attempt-N.jsonl; the final attempt keeps trace.jsonl, so it
	// belongs to the highest spawned attempt without an archive.
	maxAttempt := 0
	for n := range spawnTS {
		if n > maxAttempt {
			maxAttempt = n
		}
	}
	lanes := map[int]string{0: "daemon"}
	for n := 1; n <= maxAttempt; n++ {
		path := filepath.Join(dir, attemptTraceFile(n))
		if _, err := os.Stat(path); err != nil {
			if n != maxAttempt {
				continue
			}
			path = filepath.Join(dir, traceFile)
		}
		epoch := spawnTS[n] - t0
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
		for sc.Scan() {
			var line workerTraceLine
			if json.Unmarshal(sc.Bytes(), &line) != nil {
				continue
			}
			tid := n*attemptLaneStride + line.Tid
			if _, seen := lanes[tid]; !seen {
				name := fmt.Sprintf("attempt %d pipeline", n)
				if line.Tid != 0 {
					name = fmt.Sprintf("attempt %d cube worker %d", n, line.Tid)
				}
				lanes[tid] = name
			}
			me := mergedEvent{
				Tid: tid, Ts: micros(epoch + line.TS),
				Cat: line.Cat, Name: line.Name, Args: line.Fields,
			}
			if line.Type == "span" {
				me.Ph, me.Dur = "X", micros(line.Dur)
			} else {
				me.Ph, me.S = "i", "t"
			}
			out = append(out, me)
		}
		f.Close()
	}

	// Lane metadata last, in tid order, so every tid Perfetto encounters
	// has a human name ("attempt 2 cube worker 1", not a bare number).
	tids := make([]int, 0, len(lanes))
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		args, _ := json.Marshal(map[string]string{"name": lanes[tid]})
		out = append(out, mergedEvent{
			Tid: tid, Ph: "M", Cat: "__metadata", Name: "thread_name", Args: args,
		})
	}
	return out
}
