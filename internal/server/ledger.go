package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"predabs/internal/checkpoint"
)

// ledgerMagic stamps the job ledger (format 1); the framing underneath
// is checkpoint.Log's CRC discipline, so a crash mid-append loses at
// most the record being written.
const ledgerMagic = "PREDABSLGR1\x00"

// LedgerName is the ledger's file name inside the daemon data dir.
const LedgerName = "ledger.predabs"

// ledgerRecord is one append-only ledger event. "admit" carries the
// full normalized job spec (the durable copy that survives a daemon
// crash before the worker ever ran); "attempt" increments the job's
// persistent attempt count so the retry budget is honoured across
// restarts; "preempt" refunds an attempt whose worker the daemon itself
// SIGKILLed during shutdown (the attempt never got to finish, so it
// must not burn retry budget); "done" is terminal; "snapshot" is the
// compaction record a restart writes when the ledger outgrows its size
// threshold — every terminal job folded into one record, keeping the
// spec hash (the identity the status API and result binding need) but
// not the spec text, which is what bounds the fold's size.
type ledgerRecord struct {
	Type    string   `json:"type"` // "admit" | "attempt" | "preempt" | "done" | "snapshot"
	ID      string   `json:"id,omitempty"`
	Spec    *JobSpec `json:"spec,omitempty"`    // admit
	Attempt int      `json:"attempt,omitempty"` // attempt, preempt
	State   string   `json:"state,omitempty"`   // done: StateDone | StateFailed
	Exit    int      `json:"exit,omitempty"`    // done
	Outcome string   `json:"outcome,omitempty"` // done
	Detail  string   `json:"detail,omitempty"`  // done (failure reason)

	// Jobs is the snapshot payload: every terminal job at fold time, in
	// admission order.
	Jobs []snapshotJob `json:"jobs,omitempty"`
}

// snapshotJob is one terminal job folded into a snapshot record: the
// durable verdict plus the spec hash standing in for the spec text.
type snapshotJob struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Attempts int    `json:"attempts,omitempty"`
	State    string `json:"state"`
	Exit     int    `json:"exit,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// replayedJob is one job's folded ledger state after replay. A job
// replayed from a snapshot record has hash but a zero spec; only
// terminal jobs are ever snapshot, so every resumable job keeps its
// full spec.
type replayedJob struct {
	spec     JobSpec
	hash     string
	attempts int
	done     bool
	state    string
	exit     int
	outcome  string
	detail   string
}

// errLedgerClosed marks appends that lost the race with shutdown's
// ledger close; admission maps it to ErrDraining.
var errLedgerClosed = errors.New("ledger closed")

// ledger is the durable job log. All appends are fsynced and serialized
// under mu; replay happens once, at open.
type ledger struct {
	mu  sync.Mutex
	log *checkpoint.Log

	// Compaction stats from open (immutable afterwards).
	compactions    int64
	reclaimedBytes int64
}

// foldLedgerRecord applies one replayed record to the per-job state.
// It returns the number of per-job records a future snapshot fold would
// elide for this record (1 for the per-job types, 0 for snapshot).
func foldLedgerRecord(jobs map[string]*replayedJob, order *[]string, rec ledgerRecord) int {
	switch rec.Type {
	case "admit":
		if rec.ID == "" || rec.Spec == nil {
			return 0
		}
		if _, ok := jobs[rec.ID]; !ok {
			*order = append(*order, rec.ID)
		}
		jobs[rec.ID] = &replayedJob{spec: *rec.Spec, hash: SpecHash(*rec.Spec)}
		return 1
	case "attempt":
		if j, ok := jobs[rec.ID]; ok && rec.Attempt > j.attempts {
			j.attempts = rec.Attempt
		}
		return 1
	case "preempt":
		if j, ok := jobs[rec.ID]; ok && rec.Attempt == j.attempts {
			j.attempts--
		}
		return 1
	case "done":
		if j, ok := jobs[rec.ID]; ok {
			j.done = true
			j.state, j.exit, j.outcome, j.detail = rec.State, rec.Exit, rec.Outcome, rec.Detail
		}
		return 1
	case "snapshot":
		for _, sj := range rec.Jobs {
			if sj.ID == "" {
				continue
			}
			if _, ok := jobs[sj.ID]; !ok {
				*order = append(*order, sj.ID)
			}
			jobs[sj.ID] = &replayedJob{
				hash: sj.Hash, attempts: sj.Attempts, done: true,
				state: sj.State, exit: sj.Exit, outcome: sj.Outcome, detail: sj.Detail,
			}
		}
	}
	return 0
}

// replayLedger opens the log at path and folds it; recs counts the
// per-job records each job contributed (what a snapshot would elide).
func replayLedger(fsys checkpoint.FS, path string) (log *checkpoint.Log, jobs map[string]*replayedJob, order []string, recs map[string]int, err error) {
	jobs = map[string]*replayedJob{}
	recs = map[string]int{}
	log, err = checkpoint.OpenLogFS(fsys, path, ledgerMagic, func(payload []byte) {
		var rec ledgerRecord
		if json.Unmarshal(payload, &rec) != nil {
			// An unknown or damaged-but-CRC-valid record cannot happen
			// short of a format bug; skipping is the conservative move.
			return
		}
		recs[rec.ID] += foldLedgerRecord(jobs, &order, rec)
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return log, jobs, order, recs, nil
}

// compactFrames builds the new-generation ledger: one snapshot record
// folding every terminal job, then each live job's admit (full spec)
// and attempt count, all in admission order.
func compactFrames(jobs map[string]*replayedJob, order []string) ([][]byte, error) {
	snap := ledgerRecord{Type: "snapshot"}
	var live []ledgerRecord
	for _, id := range order {
		j := jobs[id]
		if j == nil {
			continue
		}
		if j.done {
			snap.Jobs = append(snap.Jobs, snapshotJob{
				ID: id, Hash: j.hash, Attempts: j.attempts,
				State: j.state, Exit: j.exit, Outcome: j.outcome, Detail: j.detail,
			})
			continue
		}
		spec := j.spec
		live = append(live, ledgerRecord{Type: "admit", ID: id, Spec: &spec})
		if j.attempts > 0 {
			live = append(live, ledgerRecord{Type: "attempt", ID: id, Attempt: j.attempts})
		}
	}
	frames := make([][]byte, 0, len(live)+1)
	for _, rec := range append([]ledgerRecord{snap}, live...) {
		payload, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		frames = append(frames, payload)
	}
	return frames, nil
}

// openLedger opens (or creates) the ledger at path and folds its
// records into per-job state, returned with admission order preserved.
// When snapshotBytes > 0 and the replayed log is larger, terminal jobs
// are folded into one snapshot record and the log atomically rewritten
// (RewriteLog's rename commit point), then re-replayed — a failed
// rewrite keeps the full log with a warning, never the reverse. A
// ledger whose magic cannot be validated is reported via
// *checkpoint.CorruptError so the caller can quarantine it.
func openLedger(fsys checkpoint.FS, path string, snapshotBytes int64) (l *ledger, jobs map[string]*replayedJob, order []string, warnings []string, err error) {
	log, jobs, order, recs, err := replayLedger(fsys, path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	warnings = log.Warnings()
	l = &ledger{log: log}
	foldable := 0
	for id, j := range jobs {
		if j.done {
			foldable += recs[id]
		}
	}
	if snapshotBytes > 0 && log.Size() > snapshotBytes && foldable > 0 {
		frames, ferr := compactFrames(jobs, order)
		oldSize := log.Size()
		if ferr == nil {
			log.Close()
			if rerr := checkpoint.RewriteLog(fsys, path, ledgerMagic, frames); rerr != nil {
				warnings = append(warnings,
					fmt.Sprintf("ledger snapshot fold failed (keeping full log): %v", rerr))
			}
			// Re-replay whichever generation the rename left behind: the
			// folded one on success, the intact original on failure.
			log, jobs, order, _, err = replayLedger(fsys, path)
			if err != nil {
				return nil, nil, nil, nil, err
			}
			warnings = append(warnings, log.Warnings()...)
			l.log = log
			if reclaimed := oldSize - log.Size(); reclaimed > 0 {
				l.compactions = 1
				l.reclaimedBytes = reclaimed
				warnings = append(warnings,
					fmt.Sprintf("ledger snapshot fold reclaimed %d bytes (%d -> %d)", reclaimed, oldSize, log.Size()))
			}
		}
	}
	return l, jobs, order, warnings, nil
}

func (l *ledger) append(rec ledgerRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return errLedgerClosed
	}
	return l.log.Append(payload)
}

func (l *ledger) admit(id string, spec JobSpec) error {
	return l.append(ledgerRecord{Type: "admit", ID: id, Spec: &spec})
}

func (l *ledger) attempt(id string, n int) error {
	return l.append(ledgerRecord{Type: "attempt", ID: id, Attempt: n})
}

func (l *ledger) preempt(id string, n int) error {
	return l.append(ledgerRecord{Type: "preempt", ID: id, Attempt: n})
}

func (l *ledger) done(id, state string, exit int, outcome, detail string) error {
	return l.append(ledgerRecord{Type: "done", ID: id, State: state, Exit: exit, Outcome: outcome, Detail: detail})
}

// size returns the ledger log's trusted on-disk bytes (0 once closed).
func (l *ledger) size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Size()
}

// degradedErr returns the sticky append/sync failure that put the
// ledger in persistence-degraded state, or nil.
func (l *ledger) degradedErr() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Err()
}

func (l *ledger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return nil
	}
	err := l.log.Close()
	l.log = nil
	return err
}

// nextJobSeq returns the successor of the highest job sequence number
// present in the replayed ledger, so restarted daemons never reuse IDs.
func nextJobSeq(jobs map[string]*replayedJob) int {
	max := 0
	for id := range jobs {
		// Not Sscanf("job-%06d"): the %06d width stops parsing at six
		// digits, which would wrap the sequence past job-999999 and
		// recycle live IDs on restart.
		rest, ok := strings.CutPrefix(id, "job-")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(rest); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// pendingOrder filters order down to admitted-but-unfinished jobs.
func pendingOrder(jobs map[string]*replayedJob, order []string) []string {
	var pending []string
	for _, id := range order {
		if j := jobs[id]; j != nil && !j.done {
			pending = append(pending, id)
		}
	}
	sort.Strings(pending)
	return pending
}
