package server

import (
	"encoding/json"
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"

	"predabs/internal/checkpoint"
)

// ledgerMagic stamps the job ledger (format 1); the framing underneath
// is checkpoint.Log's CRC discipline, so a crash mid-append loses at
// most the record being written.
const ledgerMagic = "PREDABSLGR1\x00"

// LedgerName is the ledger's file name inside the daemon data dir.
const LedgerName = "ledger.predabs"

// ledgerRecord is one append-only ledger event. "admit" carries the
// full normalized job spec (the durable copy that survives a daemon
// crash before the worker ever ran); "attempt" increments the job's
// persistent attempt count so the retry budget is honoured across
// restarts; "preempt" refunds an attempt whose worker the daemon itself
// SIGKILLed during shutdown (the attempt never got to finish, so it
// must not burn retry budget); "done" is terminal.
type ledgerRecord struct {
	Type    string   `json:"type"` // "admit" | "attempt" | "preempt" | "done"
	ID      string   `json:"id"`
	Spec    *JobSpec `json:"spec,omitempty"`    // admit
	Attempt int      `json:"attempt,omitempty"` // attempt, preempt
	State   string   `json:"state,omitempty"`   // done: StateDone | StateFailed
	Exit    int      `json:"exit,omitempty"`    // done
	Outcome string   `json:"outcome,omitempty"` // done
	Detail  string   `json:"detail,omitempty"`  // done (failure reason)
}

// replayedJob is one job's folded ledger state after replay.
type replayedJob struct {
	spec     JobSpec
	attempts int
	done     bool
	state    string
	exit     int
	outcome  string
	detail   string
}

// errLedgerClosed marks appends that lost the race with shutdown's
// ledger close; admission maps it to ErrDraining.
var errLedgerClosed = errors.New("ledger closed")

// ledger is the durable job log. All appends are fsynced and serialized
// under mu; replay happens once, at open.
type ledger struct {
	mu  sync.Mutex
	log *checkpoint.Log
}

// openLedger opens (or creates) the ledger at path and folds its
// records into per-job state, returned with admission order preserved.
// A ledger whose magic cannot be validated is reported via
// *checkpoint.CorruptError so the caller can quarantine it.
func openLedger(path string) (l *ledger, jobs map[string]*replayedJob, order []string, warnings []string, err error) {
	jobs = map[string]*replayedJob{}
	log, err := checkpoint.OpenLog(path, ledgerMagic, func(payload []byte) {
		var rec ledgerRecord
		if json.Unmarshal(payload, &rec) != nil || rec.ID == "" {
			// An unknown or damaged-but-CRC-valid record cannot happen
			// short of a format bug; skipping is the conservative move.
			return
		}
		switch rec.Type {
		case "admit":
			if rec.Spec == nil {
				return
			}
			if _, ok := jobs[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			jobs[rec.ID] = &replayedJob{spec: *rec.Spec}
		case "attempt":
			if j, ok := jobs[rec.ID]; ok && rec.Attempt > j.attempts {
				j.attempts = rec.Attempt
			}
		case "preempt":
			if j, ok := jobs[rec.ID]; ok && rec.Attempt == j.attempts {
				j.attempts--
			}
		case "done":
			if j, ok := jobs[rec.ID]; ok {
				j.done = true
				j.state, j.exit, j.outcome, j.detail = rec.State, rec.Exit, rec.Outcome, rec.Detail
			}
		}
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return &ledger{log: log}, jobs, order, log.Warnings(), nil
}

func (l *ledger) append(rec ledgerRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return errLedgerClosed
	}
	return l.log.Append(payload)
}

func (l *ledger) admit(id string, spec JobSpec) error {
	return l.append(ledgerRecord{Type: "admit", ID: id, Spec: &spec})
}

func (l *ledger) attempt(id string, n int) error {
	return l.append(ledgerRecord{Type: "attempt", ID: id, Attempt: n})
}

func (l *ledger) preempt(id string, n int) error {
	return l.append(ledgerRecord{Type: "preempt", ID: id, Attempt: n})
}

func (l *ledger) done(id, state string, exit int, outcome, detail string) error {
	return l.append(ledgerRecord{Type: "done", ID: id, State: state, Exit: exit, Outcome: outcome, Detail: detail})
}

func (l *ledger) close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.log == nil {
		return nil
	}
	err := l.log.Close()
	l.log = nil
	return err
}

// nextJobSeq returns the successor of the highest job sequence number
// present in the replayed ledger, so restarted daemons never reuse IDs.
func nextJobSeq(jobs map[string]*replayedJob) int {
	max := 0
	for id := range jobs {
		// Not Sscanf("job-%06d"): the %06d width stops parsing at six
		// digits, which would wrap the sequence past job-999999 and
		// recycle live IDs on restart.
		rest, ok := strings.CutPrefix(id, "job-")
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(rest); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// pendingOrder filters order down to admitted-but-unfinished jobs.
func pendingOrder(jobs map[string]*replayedJob, order []string) []string {
	var pending []string
	for _, id := range order {
		if j := jobs[id]; j != nil && !j.done {
			pending = append(pending, id)
		}
	}
	sort.Strings(pending)
	return pending
}
