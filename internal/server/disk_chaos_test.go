// Disk-chaos tests for predabsd's two durable stores: the job ledger
// (sticky degradation sheds admissions, acked jobs survive a restart)
// and the per-job event logs (retention rotation keeps the resumable
// ?after=N contract; injected faults never lose an acked event).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predabs/internal/faultinject"
)

func chaosSpec(i int) JobSpec {
	return JobSpec{Source: fmt.Sprintf("void main() { int x%d; }", i), Entry: "main", MaxIters: 10}
}

// TestDiskChaosLedgerDegradedShedsAndRecovers fills the disk under the
// ledger mid-stream: the daemon must flip to persistence-degraded,
// shed new admissions with ErrPersistDegraded, keep answering status
// for acked jobs, and — after a restart on a healthy disk — recover
// every acked job and no shed one.
func TestDiskChaosLedgerDegradedShedsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	// Write ops on the ledger: magic = 1, then 2 per admit frame; op 6
	// kills the third admit. Event logs and job.json are out of scope.
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{
		FailWriteAfter: 6, Sticky: true, PathFilter: LedgerName,
	})
	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent", FS: ffs})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	var acked []string
	var degraded error
	for i := 0; i < 6; i++ {
		id, err := s.Submit(chaosSpec(i))
		if err != nil {
			degraded = err
			break
		}
		acked = append(acked, id)
	}
	if degraded == nil {
		t.Fatalf("disk full never surfaced; acked %v", acked)
	}
	if !errors.Is(degraded, ErrPersistDegraded) {
		t.Fatalf("shed error = %v, want ErrPersistDegraded", degraded)
	}
	if len(acked) != 2 {
		t.Fatalf("acked %d jobs before the fault, want 2", len(acked))
	}
	// Sticky: every later submission sheds the same way, no crash.
	if _, err := s.Submit(chaosSpec(99)); !errors.Is(err, ErrPersistDegraded) {
		t.Fatalf("post-fault submit = %v, want ErrPersistDegraded", err)
	}
	// The daemon keeps serving what it acked.
	for _, id := range acked {
		if _, ok := s.Status(id); !ok {
			t.Fatalf("acked job %s lost while degraded", id)
		}
	}
	// The degradation is surfaced, not hidden: healthz says so.
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if deg, _ := health["persistence_degraded"].(bool); !deg {
		t.Fatalf("healthz hides the degradation: %v", health)
	}
	s.Shutdown(t.Context())

	// Restart on a healthy disk: every acked job is back (resumable),
	// the shed ones never existed, and IDs do not recycle.
	s2, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent"})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer s2.Shutdown(t.Context())
	for _, id := range acked {
		st, ok := s2.Status(id)
		if !ok {
			t.Fatalf("acked job %s lost across restart", id)
		}
		if st.State != StateQueued && st.State != StateRunning && st.State != StateRetrying && st.State != StateFailed {
			t.Fatalf("job %s in unexpected state %q", id, st.State)
		}
	}
	if got := len(s2.List()); got != len(acked) {
		t.Fatalf("restart sees %d jobs, want %d (no shed job may appear)", got, len(acked))
	}
	id, err := s2.Submit(chaosSpec(7))
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	for _, old := range acked {
		if id == old {
			t.Fatalf("job ID %s recycled after degraded restart", id)
		}
	}
}

// TestDiskChaosLedgerSnapshotFoldEquivalence pins the compaction
// contract: a folded ledger replays to exactly the state of its
// unbounded twin, the fold is idempotent, and a rename fault at the
// fold's commit point leaves the full log serving byte-identically.
func TestDiskChaosLedgerSnapshotFoldEquivalence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	l, _, _, _, err := openLedger(nil, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	specs := map[string]JobSpec{}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("job-%06d", i+1)
		specs[id] = chaosSpec(i)
		if err := l.admit(id, specs[id]); err != nil {
			t.Fatal(err)
		}
	}
	// Jobs 1..6 reach verdicts (with some attempt history); 7 is live
	// with a burned attempt; 8 is freshly queued.
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("job-%06d", i+1)
		l.attempt(id, 1)
		state, outcome := StateDone, "verified"
		if i%3 == 2 {
			state, outcome = StateFailed, ""
		}
		if err := l.done(id, state, 0, outcome, ""); err != nil {
			t.Fatal(err)
		}
	}
	l.attempt("job-000007", 1)
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	twin := filepath.Join(dir, "twin.predabs")
	if err := os.WriteFile(twin, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Unbounded twin: the reference replay.
	lt, wantJobs, wantOrder, _, err := openLedger(nil, twin, 0)
	if err != nil {
		t.Fatal(err)
	}
	lt.close()

	// Folded: same visible state, smaller log.
	lf, gotJobs, gotOrder, warnings, err := openLedger(nil, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lf.compactions != 1 || lf.reclaimedBytes <= 0 {
		t.Fatalf("fold did not happen: compactions=%d reclaimed=%d (warnings %v)",
			lf.compactions, lf.reclaimedBytes, warnings)
	}
	foldedSize := lf.size()
	lf.close()
	if len(gotJobs) != len(wantJobs) {
		t.Fatalf("folded replay has %d jobs, twin %d", len(gotJobs), len(wantJobs))
	}
	for id, want := range wantJobs {
		got := gotJobs[id]
		if got == nil {
			t.Fatalf("job %s lost by fold", id)
		}
		if got.hash != want.hash || got.done != want.done || got.state != want.state ||
			got.outcome != want.outcome || got.attempts != want.attempts || got.detail != want.detail {
			t.Fatalf("job %s diverged: folded %+v, twin %+v", id, got, want)
		}
		if want.done && got.spec.Source != "" {
			t.Fatalf("terminal job %s kept its spec text past the fold", id)
		}
		if !want.done && fmt.Sprint(got.spec) != fmt.Sprint(want.spec) {
			t.Fatalf("live job %s lost its spec: %+v", id, got.spec)
		}
	}
	if fmt.Sprint(pendingOrder(gotJobs, gotOrder)) != fmt.Sprint(pendingOrder(wantJobs, wantOrder)) {
		t.Fatalf("pending order diverged: %v vs %v",
			pendingOrder(gotJobs, gotOrder), pendingOrder(wantJobs, wantOrder))
	}
	if nextJobSeq(gotJobs) != nextJobSeq(wantJobs) {
		t.Fatalf("nextJobSeq diverged: %d vs %d", nextJobSeq(gotJobs), nextJobSeq(wantJobs))
	}

	// Idempotence: a third open finds nothing terminal left to elide.
	lf2, _, _, _, err := openLedger(nil, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lf2.compactions != 0 || lf2.size() != foldedSize {
		t.Fatalf("re-fold churned a stable ledger: compactions=%d size %d -> %d",
			lf2.compactions, foldedSize, lf2.size())
	}
	lf2.close()

	// Rename fault at the fold's commit point: the full twin stays
	// byte-identical and replays completely.
	ffs := faultinject.NewFS(nil, faultinject.FSConfig{FailRenameAfter: 1})
	lr, faultJobs, _, rwarn, err := openLedger(ffs, twin, 1)
	if err != nil {
		t.Fatalf("fold under rename fault must keep serving: %v", err)
	}
	lr.close()
	if len(faultJobs) != len(wantJobs) {
		t.Fatalf("aborted fold lost jobs: %d vs %d", len(faultJobs), len(wantJobs))
	}
	found := false
	for _, w := range rwarn {
		if strings.Contains(w, "fold failed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("aborted fold not surfaced in warnings: %v", rwarn)
	}
	after, err := os.ReadFile(twin)
	if err != nil || !bytes.Equal(after, raw) {
		t.Fatalf("aborted fold changed the ledger bytes (err %v)", err)
	}
}

// TestDiskChaosEventsRotationKeepsResumableContract drives a job event
// log past its byte cap and checks the rotation shape end to end: a
// leading truncate marker naming the dropped range, a dense retained
// suffix, a clean ValidateEvents verdict, and cursors at or past the
// marker seeing no difference at all.
func TestDiskChaosEventsRotationKeepsResumableContract(t *testing.T) {
	dir := t.TempDir()
	const maxBytes = 1 << 10
	const total = 40
	for i := 1; i <= total; i++ {
		seq, err := appendJobEventFS(nil, dir, maxBytes, JobEvent{
			Type: EventProgress, Iter: i, Preds: i, Queries: int64(i), Engine: "cartesian",
		})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d; sequences must stay dense across rotations", i, seq)
		}
	}
	info, err := os.Stat(filepath.Join(dir, EventsName))
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() > maxBytes+512 {
		t.Fatalf("event log never rotated: %d bytes against a %d cap", info.Size(), maxBytes)
	}

	events, err := readJobEvents(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 || events[0].Type != EventTruncate {
		t.Fatalf("rotated log must open with a truncate marker; got %+v", events[:min(2, len(events))])
	}
	marker := events[0]
	if marker.Dropped != marker.Seq || marker.Dropped < 1 {
		t.Fatalf("marker dropped=%d seq=%d; dense-from-1 means they match", marker.Dropped, marker.Seq)
	}
	for i, ev := range events[1:] {
		if ev.Seq != marker.Seq+1+uint64(i) {
			t.Fatalf("retained stream not dense after the marker: %d at index %d", ev.Seq, i)
		}
	}
	if events[len(events)-1].Seq != total {
		t.Fatalf("newest event lost: last seq %d, want %d", events[len(events)-1].Seq, total)
	}

	// The exported NDJSON passes the tracelint validator.
	var buf bytes.Buffer
	for _, ev := range events {
		b, _ := json.Marshal(ev)
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if n, err := ValidateEvents(&buf); err != nil {
		t.Fatalf("ValidateEvents rejected a rotated stream after %d records: %v", n, err)
	}

	// A cursor at the marker resumes marker-free and dense; one at the
	// head sees nothing.
	resumed, err := readJobEvents(dir, marker.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) == 0 || resumed[0].Type == EventTruncate || resumed[0].Seq != marker.Seq+1 {
		t.Fatalf("resume at %d = %+v; the marker must be invisible to a caught-up cursor",
			marker.Seq, resumed[:min(1, len(resumed))])
	}
	if tail, _ := readJobEvents(dir, total); len(tail) != 0 {
		t.Fatalf("cursor at head replayed %d events", len(tail))
	}
}

// TestDiskChaosEventsAppendFaults injects write faults into the event
// log: a torn append surfaces as an error and repairs on the next
// append (dense seqs, no lost ack), and a rename fault during rotation
// is absorbed — the oversized generation keeps serving until a later
// rotation lands.
func TestDiskChaosEventsAppendFaults(t *testing.T) {
	t.Run("short-write", func(t *testing.T) {
		dir := t.TempDir()
		for i := 1; i <= 3; i++ {
			if _, err := appendJobEventFS(nil, dir, 0, JobEvent{Type: EventProgress, Iter: i, Engine: "cartesian"}); err != nil {
				t.Fatal(err)
			}
		}
		ffs := faultinject.NewFS(nil, faultinject.FSConfig{ShortWriteAfter: 1, PathFilter: EventsName})
		if _, err := appendJobEventFS(ffs, dir, 0, JobEvent{Type: EventProgress, Iter: 4, Engine: "cartesian"}); err == nil {
			t.Fatal("torn append reported success")
		}
		// Next clean append repairs the tail and reuses the torn seq.
		seq, err := appendJobEventFS(nil, dir, 0, JobEvent{Type: EventProgress, Iter: 4, Engine: "cartesian"})
		if err != nil {
			t.Fatalf("append after torn tail: %v", err)
		}
		if seq != 4 {
			t.Fatalf("seq after repair = %d, want 4 (the unacked torn frame must not burn a seq)", seq)
		}
		events, err := readJobEvents(dir, 0)
		if err != nil || len(events) != 4 {
			t.Fatalf("replay after repair: %d events, err %v", len(events), err)
		}
	})
	t.Run("rotation-rename-fail", func(t *testing.T) {
		dir := t.TempDir()
		const maxBytes = 512
		ffs := faultinject.NewFS(nil, faultinject.FSConfig{FailRenameAfter: 1, PathFilter: EventsName})
		var last uint64
		for i := 1; i <= 20; i++ {
			seq, err := appendJobEventFS(ffs, dir, maxBytes, JobEvent{Type: EventProgress, Iter: i, Engine: "cartesian"})
			if err != nil {
				t.Fatalf("append %d under rename fault: %v (rotation is best-effort)", i, err)
			}
			last = seq
		}
		if last != 20 {
			t.Fatalf("acked seqs ended at %d, want 20", last)
		}
		if ffs.Injected()[faultinject.FSKindRenameFail] != 1 {
			t.Fatalf("rename fault never fired: %v", ffs.Injected())
		}
		// Every event is still there (the failed rotation dropped
		// nothing), and a later healthy rotation bounds the log again.
		events, err := readJobEvents(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		if events[len(events)-1].Seq != 20 {
			t.Fatalf("lost the newest event after an aborted rotation: %+v", events[len(events)-1])
		}
		if _, err := appendJobEventFS(nil, dir, maxBytes, JobEvent{Type: EventProgress, Iter: 21, Engine: "cartesian"}); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(filepath.Join(dir, EventsName))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > maxBytes+256 {
			t.Fatalf("log still unbounded after a healthy rotation: %d bytes", info.Size())
		}
	})
}
