// Leak coverage for the daemon lifecycle: every path that ends a server
// — graceful drain, deadline SIGKILL of a wedged worker, retry
// exhaustion, and a shutdown racing concurrent submitters — must return
// the process to its goroutine and file-descriptor baseline. Designed to
// run under -race (the Makefile's leakcheck target).
package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"predabs/internal/checkpoint"
	"predabs/internal/corpus"
	"predabs/internal/server"
)

// openFDs counts this process's open file descriptors.
func openFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("cannot enumerate fds: %v", err)
	}
	return len(ents)
}

// warmup forces lazily-initialized process state into existence — the
// runtime netpoller (its epoll and wakeup fds are created on first use
// and never closed) and the exec machinery — so the baselines measured
// after it are stable.
func warmup(t *testing.T) {
	t.Helper()
	s := newServer(t, nil)
	id, err := s.Submit(server.JobSpec{Source: verifiedSrc})
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, id, 30*time.Second)
	ts := httptest.NewServer(s.Handler())
	if resp, err := http.Get(ts.URL + "/healthz"); err == nil {
		resp.Body.Close()
	}
	ts.Close()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// settle waits for goroutine and fd counts to return to their baselines;
// both drift transiently while exec'd workers and pollers wind down.
func settle(t *testing.T, baseGoroutines, baseFDs int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		g, f := runtime.NumGoroutine(), openFDs(t)
		if g <= baseGoroutines && f <= baseFDs {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<17)
			n := runtime.Stack(buf, true)
			t.Fatalf("leak: %d goroutines (baseline %d), %d fds (baseline %d)\n%s",
				g, baseGoroutines, f, baseFDs, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerLifecycleLeaks drives the three ways a job can end — a
// clean verdict, SIGKILL on the attempt deadline, and retry exhaustion
// from crashing workers — and checks the daemon leaks neither goroutines
// nor file descriptors after shutdown.
func TestServerLifecycleLeaks(t *testing.T) {
	warmup(t)
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := openFDs(t)

	// Clean verdicts through a graceful drain.
	func() {
		s := newServer(t, nil)
		for i := 0; i < 2; i++ {
			id, err := s.Submit(server.JobSpec{Source: verifiedSrc})
			if err != nil {
				t.Fatal(err)
			}
			await(t, s, id, 30*time.Second)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("graceful drain: %v", err)
		}
	}()
	settle(t, baseGoroutines, baseFDs)

	// A wedged worker SIGKILLed on the per-attempt deadline, twice.
	func() {
		s := newServer(t, func(c *server.Config) {
			c.AllowJobEnv = true
			c.Retries = 1
		})
		id, err := s.Submit(server.JobSpec{
			Source:           verifiedSrc,
			Env:              []string{server.HangEnv + "=1"},
			AttemptTimeoutMS: 150,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := await(t, s, id, 30*time.Second)
		if st.State != server.StateFailed || st.Outcome != "unknown" {
			t.Fatalf("wedged job: %+v", st)
		}
		if c := s.CounterSnapshot(); c.Kills != 2 {
			t.Fatalf("deadline kills = %d, want 2", c.Kills)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	settle(t, baseGoroutines, baseFDs)

	// Retry exhaustion from workers that crash at every commit.
	func() {
		drv := corpus.Drivers()[1]
		s := newServer(t, func(c *server.Config) {
			c.AllowJobEnv = true
			c.Retries = 0
		})
		id, err := s.Submit(server.JobSpec{
			Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
			Env: []string{checkpoint.CrashEnv + "=1:torn"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if st := await(t, s, id, 30*time.Second); st.State != server.StateFailed {
			t.Fatalf("crash-looping job: %+v", st)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	settle(t, baseGoroutines, baseFDs)
}

// TestShutdownStress races concurrent submitters and HTTP probes against
// a drain. The invariants: Submit never panics or wedges (it returns
// ErrDraining/ErrQueueFull once shedding starts), every admitted job is
// in a coherent state afterwards, and the process returns to its
// goroutine/fd baseline. Run under -race this doubles as the shutdown
// data-race check.
func TestShutdownStress(t *testing.T) {
	warmup(t)
	baseGoroutines := runtime.NumGoroutine()
	baseFDs := openFDs(t)

	s := newServer(t, func(c *server.Config) {
		c.Workers = 4
		c.QueueCap = 16
	})
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var admitted sync.Map
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				id, err := s.Submit(server.JobSpec{Source: verifiedSrc})
				if err == nil {
					admitted.Store(id, true)
				} else if err != server.ErrDraining && err != server.ErrQueueFull {
					t.Errorf("submitter %d: unexpected error: %v", n, err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}(i)
	}
	// Concurrent liveness probes must keep answering through the drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ep := range []string{"/healthz", "/readyz", "/statz", "/jobs"} {
				resp, err := http.Get(ts.URL + ep)
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	time.Sleep(50 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("stressed shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	ts.Close()
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()

	valid := map[string]bool{
		server.StateQueued: true, server.StateRunning: true, server.StateRetrying: true,
		server.StateDone: true, server.StateFailed: true,
	}
	count := 0
	admitted.Range(func(k, _ any) bool {
		count++
		st, ok := s.Status(k.(string))
		if !ok {
			t.Errorf("admitted job %v lost", k)
		} else if !valid[st.State] {
			t.Errorf("job %v in impossible state %q", k, st.State)
		}
		return true
	})
	if count == 0 {
		t.Fatal("stress admitted zero jobs; the race window never opened")
	}
	c := s.CounterSnapshot()
	if c.Submitted != int64(count) {
		t.Errorf("submitted counter %d != admitted %d", c.Submitted, count)
	}
	t.Logf("stress: %d admitted, counters %+v", count, c)

	settle(t, baseGoroutines, baseFDs)
}
