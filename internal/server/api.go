package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"predabs/internal/metrics"
)

// JobAPI is the admission and status surface a predabsd flavor exposes
// over HTTP. The single-node daemon (*Server) and the fleet frontend
// (internal/fleet) both implement it, so a client cannot tell — and
// need not care — whether it is talking to one node or a routed fleet:
// same routes, same JSON shapes, same error taxonomy. This is the
// interface the ROADMAP's multi-node scheduler plugs into.
type JobAPI interface {
	// Submit admits one job and returns its ID, or ErrDraining /
	// ErrQueueFull (both mapped to 503 by the handler) / a validation
	// error (400).
	Submit(spec JobSpec) (string, error)
	// Lookup returns one job's full status — including the verdict
	// stdout and, where available, live progress; ok is false for an
	// unknown ID.
	Lookup(id string) (JobStatus, bool)
	// List returns every job's status in ID order. The handler strips
	// stdout so summaries stay small.
	List() []JobStatus
	// Events returns the job's durable events with sequence > after;
	// the handler renders each element as one NDJSON line. Unknown IDs
	// return ErrNoJob; a log that exists but cannot be trusted returns
	// an error wrapping ErrCorruptEvents (so a fleet frontend can tell
	// "no events yet" — an empty slice — from "corrupt log,
	// re-dispatch").
	Events(id string, after uint64) ([]any, error)
}

// Status-surface sentinel errors, mapped by APIHandler.
var (
	// ErrNoJob marks lookups of unknown job IDs (HTTP 404).
	ErrNoJob = errors.New("server: no such job")
	// ErrCorruptEvents marks an event log that exists but cannot be
	// read back (bad magic after quarantine-and-recycle, for example).
	// APIHandler serves it as HTTP 500 with code EventsCorruptCode —
	// distinct from 404, so a dispatcher treats it as "re-dispatch",
	// not "no events yet".
	ErrCorruptEvents = errors.New("server: corrupt event log")
)

// EventsCorruptCode is the machine-readable "code" field APIHandler
// attaches to ErrCorruptEvents responses.
const EventsCorruptCode = "corrupt-event-log"

// Long-poll bounds for GET /jobs/{id}/events?wait=. MaxEventWait caps
// the ?wait= window a client may request; eventWaitStep is the internal
// re-check cadence while a long poll is parked (the JobAPI surface is
// pull-based, so the handler polls it cheaply instead of threading a
// notification channel through every flavor).
const (
	MaxEventWait  = 30 * time.Second
	eventWaitStep = 50 * time.Millisecond
)

// APIExtras parameterizes the routes whose payloads differ per flavor.
// Nil callbacks serve minimal defaults.
type APIExtras struct {
	// Metrics backs GET /metrics (nil serves an empty exposition).
	Metrics *metrics.Registry
	// Ready gates GET /readyz: nil error means ready, anything else is
	// served as 503 with the error text.
	Ready func() error
	// Healthz returns the GET /healthz payload (process liveness).
	Healthz func() map[string]any
	// Statz returns the GET /statz payload (counters and gauges).
	Statz func() map[string]any
	// Extend registers flavor-specific routes (job artifacts, merged
	// traces) on the mux before it is returned.
	Extend func(mux *http.ServeMux)
}

// APIHandler returns the HTTP API shared by every predabsd flavor:
//
//	POST /jobs            submit a JobSpec; 202 {"id": ...}, 503 on shed/drain
//	GET  /jobs            job summaries
//	GET  /jobs/{id}       full status incl. the verdict stdout
//	GET  /jobs/{id}/events[?after=N][&wait=30s]   durable job events as NDJSON;
//	     wait long-polls until events past the cursor exist or the window expires
//	GET  /metrics         Prometheus text exposition (empty when disabled)
//	GET  /healthz         process liveness
//	GET  /readyz          503 with a reason while not ready, 200 otherwise
//	GET  /statz           counters + gauges
func APIHandler(api JobAPI, x APIExtras) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobBody))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		id, err := api.Submit(spec)
		switch {
		case err == nil:
			writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "queue full"})
		case errors.Is(err, ErrPersistDegraded):
			// A full or failing disk does not clear in a second the way a
			// queue drains: tell clients to come back on an ops timescale.
			w.Header().Set("Retry-After", "30")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		out := api.List()
		for i := range out {
			out[i].Stdout = "" // summaries stay small; fetch the job for the verdict
		}
		writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := api.Lookup(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		var after uint64
		if v := r.URL.Query().Get("after"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "after: want an unsigned integer"})
				return
			}
			after = n
		}
		var wait time.Duration
		if v := r.URL.Query().Get("wait"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "wait: want a non-negative duration"})
				return
			}
			if d > MaxEventWait {
				d = MaxEventWait
			}
			wait = d
		}
		evs, err := api.Events(r.PathValue("id"), after)
		if wait > 0 && err == nil && len(evs) == 0 {
			// Push-style subscription: park the request until news
			// arrives past the cursor, the window expires, or the client
			// goes away. Errors (job vanished, log corrupted mid-wait)
			// break out and take the normal taxonomy below.
			deadline := time.Now().Add(wait)
			tick := time.NewTicker(eventWaitStep)
			defer tick.Stop()
		poll:
			for time.Now().Before(deadline) {
				select {
				case <-r.Context().Done():
					break poll
				case <-tick.C:
				}
				evs, err = api.Events(r.PathValue("id"), after)
				if err != nil || len(evs) > 0 {
					break
				}
			}
		}
		switch {
		case errors.Is(err, ErrNoJob):
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
			return
		case errors.Is(err, ErrCorruptEvents):
			writeJSON(w, http.StatusInternalServerError,
				map[string]string{"error": err.Error(), "code": EventsCorruptCode})
			return
		case err != nil:
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range evs {
			enc.Encode(ev)
		}
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		x.Metrics.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		payload := map[string]any{"status": "ok"}
		if x.Healthz != nil {
			payload = x.Healthz()
		}
		writeJSON(w, http.StatusOK, payload)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if x.Ready != nil {
			if err := x.Ready(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ready\n"))
	})
	mux.HandleFunc("GET /statz", func(w http.ResponseWriter, r *http.Request) {
		payload := map[string]any{}
		if x.Statz != nil {
			payload = x.Statz()
		}
		writeJSON(w, http.StatusOK, payload)
	})
	if x.Extend != nil {
		x.Extend(mux)
	}
	return mux
}
