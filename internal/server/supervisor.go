package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"
)

// workerLoop is one worker slot: it dequeues jobs until Shutdown.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.supervise(j)
			// A drained slot exits promptly even if more jobs are
			// queued; they stay ledgered and resume on the next start.
			select {
			case <-s.quit:
				return
			default:
			}
		}
	}
}

// supervise owns one job start to finish: adopt an orphaned result if a
// previous daemon died between the worker finishing and the ledger
// recording it, then run attempts under the hard deadline until a
// result appears or the retry budget runs out. Every attempt resumes
// from the job's checkpoint journal, so progress is monotone across
// SIGKILLs and daemon restarts.
func (s *Server) supervise(j *job) {
	s.met.workersBusy.Inc()
	defer s.met.workersBusy.Dec()
	if res, ok := readResult(j.dir, j.hash); ok {
		s.adopted.Add(1)
		s.met.adopted.Inc()
		s.event(j, JobEvent{Type: EventAdopt, Detail: fmt.Sprintf("exit %d", res.ExitCode)})
		s.cfg.Logf("predabsd: %s: adopting orphaned result (exit %d)", j.id, res.ExitCode)
		s.finishDone(j, res)
		return
	}
	maxAttempts := s.cfg.Retries + 1
	for {
		j.mu.Lock()
		attempt := j.attempts + 1
		j.mu.Unlock()
		if attempt > maxAttempts {
			s.finishFailed(j, fmt.Sprintf("retry budget exhausted after %d attempts", attempt-1))
			return
		}
		if attempt > 1 {
			s.retries.Add(1)
			s.met.retries.Inc()
		}
		if err := s.ledger.attempt(j.id, attempt); err != nil {
			s.cfg.Logf("predabsd: %s: ledger attempt record: %v", j.id, err)
		}
		j.mu.Lock()
		j.attempts = attempt
		j.state = StateRunning
		j.mu.Unlock()
		s.event(j, JobEvent{Type: EventState, State: StateRunning, Attempt: attempt})

		res, failure := s.runAttempt(j, attempt)
		if res != nil {
			s.finishDone(j, *res)
			return
		}
		if s.runCtx.Err() != nil {
			// Shutdown SIGKILLed this attempt before it could finish.
			// Refund it in the ledger and leave the job pending instead
			// of durably failing what may have been its final budgeted
			// attempt: the next daemon start re-runs it. At most one
			// refund per job per daemon lifetime, so the budget stays
			// bounded even across repeated drains.
			if err := s.ledger.preempt(j.id, attempt); err != nil {
				s.cfg.Logf("predabsd: %s: ledger preempt record: %v", j.id, err)
			}
			j.mu.Lock()
			j.attempts = attempt - 1
			j.state = StateQueued
			j.mu.Unlock()
			s.event(j, JobEvent{Type: EventState, State: StateQueued, Attempt: attempt,
				Detail: "attempt preempted by shutdown"})
			s.cfg.Logf("predabsd: %s: attempt %d preempted by shutdown; job stays journaled for resume", j.id, attempt)
			return
		}
		s.cfg.Logf("predabsd: %s: attempt %d/%d failed: %s", j.id, attempt, maxAttempts, failure)
		if attempt >= maxAttempts {
			s.finishFailed(j, fmt.Sprintf("retry budget exhausted after %d attempts (last: %s)", attempt, failure))
			return
		}
		j.mu.Lock()
		j.state = StateRetrying
		j.mu.Unlock()
		s.event(j, JobEvent{Type: EventState, State: StateRetrying, Attempt: attempt, Detail: failure})
		if !s.backoff(attempt) {
			// Shutdown interrupted the backoff: leave the job pending in
			// the ledger; the next daemon start re-enqueues and resumes it.
			return
		}
	}
}

// runAttempt executes one worker subprocess for j. A complete result
// file is the only success signal; nil plus a reason means retry.
func (s *Server) runAttempt(j *job, attempt int) (*WorkerResult, string) {
	// Adoption runs before the first attempt and completed attempts end
	// supervision, so anything still here is a hash-mismatched leftover
	// from a recycled job directory; removing it keeps the "result file
	// == this attempt finished" invariant unconditional.
	os.Remove(filepath.Join(j.dir, resultFile))

	timeout := s.cfg.AttemptTimeout
	if j.spec.AttemptTimeoutMS > 0 {
		timeout = time.Duration(j.spec.AttemptTimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.runCtx, timeout)
	defer cancel()

	// CommandContext's default Cancel is Process.Kill — SIGKILL, the
	// same signal an OOM kill delivers, so the checkpoint journal must
	// absorb it mid-fsync. That is the isolation contract: the worker
	// can die arbitrarily hard and the daemon only ever observes a
	// missing result file.
	cmd := exec.CommandContext(ctx, s.cfg.WorkerBin, "-worker", "-dir", j.dir)
	// The trace context rides the environment: the worker stamps its
	// progress events (and any future worker-side records) with the job
	// and attempt the supervisor assigned. Job-injected env comes last so
	// the chaos suite's overrides still win.
	cmd.Env = append(os.Environ(),
		JobIDEnv+"="+j.id,
		AttemptEnv+"="+strconv.Itoa(attempt))
	if s.cfg.EventsMaxBytes > 0 {
		// The worker appends its own progress heartbeats; it must honour
		// the same retention cap or its appends would regrow a log the
		// supervisor just rotated.
		cmd.Env = append(cmd.Env, EventsMaxEnv+"="+strconv.FormatInt(s.cfg.EventsMaxBytes, 10))
	}
	if s.cfg.CacheURL != "" {
		cmd.Env = append(cmd.Env, CacheURLEnv+"="+s.cfg.CacheURL)
		if s.cfg.CacheVerify {
			cmd.Env = append(cmd.Env, CacheVerifyEnv+"=1")
		}
	}
	cmd.Env = append(cmd.Env, j.spec.Env...)
	logf, err := os.OpenFile(filepath.Join(j.dir, workerLogFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err == nil {
		fmt.Fprintf(logf, "--- attempt %d ---\n", attempt)
		cmd.Stdout, cmd.Stderr = logf, logf
		defer logf.Close()
	}
	// The spawn event is the last daemon-side append before the worker
	// owns the log; its timestamp doubles as the attempt's epoch when the
	// merged Chrome trace rebases worker spans onto the job timeline.
	s.event(j, JobEvent{Type: EventSpawn, Attempt: attempt})
	start := time.Now()
	runErr := cmd.Run()
	s.met.attemptSeconds.Observe(time.Since(start).Seconds())

	if res, ok := readResult(j.dir, j.hash); ok {
		return &res, ""
	}
	// A failed attempt's trace is archived under its attempt number so a
	// retry's fresh trace.jsonl does not overwrite it; the merged Chrome
	// export renders each archive as its own set of lanes.
	if s.cfg.Artifacts {
		os.Rename(filepath.Join(j.dir, traceFile), filepath.Join(j.dir, attemptTraceFile(attempt)))
	}
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.kills.Add(1)
		s.met.kills.Inc()
		s.event(j, JobEvent{Type: EventKill, Attempt: attempt,
			Detail: fmt.Sprintf("attempt deadline %v", timeout)})
		return nil, fmt.Sprintf("SIGKILLed on the %v attempt deadline", timeout)
	case s.runCtx.Err() != nil:
		return nil, "worker killed by daemon shutdown"
	case runErr != nil:
		return nil, fmt.Sprintf("worker died without a result (%v)", runErr)
	default:
		return nil, "worker exited without writing a result"
	}
}

// backoff sleeps the exponential-with-jitter delay before the next
// attempt; false means shutdown interrupted the wait. The sleep is
// visible while it lasts: the retries-in-backoff gauge (mirrored into
// /statz and /metrics) counts supervisors parked here, so a fleet
// dashboard can tell "quiet because idle" from "quiet because every
// slot is waiting out a crash loop".
func (s *Server) backoff(attempt int) bool {
	d := s.cfg.RetryBase << (attempt - 1)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	// Full ±50% jitter decorrelates retry stampedes after a shared
	// cause (e.g. memory pressure killing several workers at once).
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	s.inBackoff.Add(1)
	s.met.retriesInBackoff.Inc()
	s.met.backoffSleeps.Inc()
	start := time.Now()
	defer func() {
		s.inBackoff.Add(-1)
		s.met.retriesInBackoff.Dec()
		s.met.backoffSeconds.Observe(time.Since(start).Seconds())
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) finishDone(j *job, res WorkerResult) {
	j.mu.Lock()
	attempts := j.attempts
	j.mu.Unlock()
	// Durable records first, in-memory state last: a client that observes
	// a terminal status can rely on the event stream already ending with
	// the matching record.
	if err := s.ledger.done(j.id, StateDone, res.ExitCode, res.Outcome, ""); err != nil {
		s.cfg.Logf("predabsd: %s: ledger done record: %v", j.id, err)
	}
	s.event(j, JobEvent{Type: EventState, State: StateDone, Attempt: attempts,
		Detail: res.Outcome})
	j.mu.Lock()
	j.state = StateDone
	j.result = &res
	j.errmsg = ""
	j.mu.Unlock()
	s.completed.Add(1)
	s.met.completed.Inc()
	s.met.verdict(res.Outcome).Inc()
	s.foldRunReport(j)
	s.cfg.Logf("predabsd: %s: done after %d attempt(s): exit %d outcome %q",
		j.id, attempts, res.ExitCode, res.Outcome)
}

// finishFailed marks a job out of retry budget. The daemon never
// invents a verdict: the job's outcome is "unknown", with the reason in
// the status error — a retried job may report Unknown, never Verified.
func (s *Server) finishFailed(j *job, detail string) {
	j.mu.Lock()
	attempts := j.attempts
	j.mu.Unlock()
	// Same ordering as finishDone: durable records before the terminal
	// status becomes observable.
	if err := s.ledger.done(j.id, StateFailed, 0, "unknown", detail); err != nil {
		s.cfg.Logf("predabsd: %s: ledger done record: %v", j.id, err)
	}
	s.event(j, JobEvent{Type: EventState, State: StateFailed, Attempt: attempts,
		Detail: detail})
	j.mu.Lock()
	j.state = StateFailed
	j.errmsg = detail
	j.mu.Unlock()
	s.failed.Add(1)
	s.met.failed.Inc()
	s.met.verdict("unknown").Inc()
	s.cfg.Logf("predabsd: %s: failed: %s", j.id, detail)
}

// event appends one record to j's durable event log; failures are
// diagnostics, never supervision failures (the event log observes the
// job, it does not gate it).
func (s *Server) event(j *job, ev JobEvent) {
	if _, err := appendJobEventFS(s.cfg.FS, j.dir, s.cfg.EventsMaxBytes, ev); err != nil {
		s.cfg.Logf("predabsd: %s: event log: %v", j.id, err)
	}
}

// foldRunReport folds the completed job's report.json counters — the
// per-run prover/session/abstraction work the worker measured — into
// the daemon's metrics, giving /metrics fleet-cumulative totals of what
// -stats shows per run. Best-effort: no artifacts, no fold.
func (s *Server) foldRunReport(j *job) {
	if !s.cfg.Artifacts || s.met.runProverCalls == nil {
		return
	}
	raw, err := os.ReadFile(filepath.Join(j.dir, reportFile))
	if err != nil {
		return
	}
	var rep struct {
		Iterations    int `json:"iterations"`
		Predicates    int `json:"predicates"`
		ProverCalls   int `json:"prover_calls"`
		CacheHits     int `json:"cache_hits"`
		Sessions      int `json:"sessions"`
		SessionChecks int `json:"session_checks"`
	}
	if json.Unmarshal(raw, &rep) != nil {
		return
	}
	s.met.runIterations.Add(int64(rep.Iterations))
	s.met.runPredicates.Add(int64(rep.Predicates))
	s.met.runProverCalls.Add(int64(rep.ProverCalls))
	s.met.runCacheHits.Add(int64(rep.CacheHits))
	s.met.runSessions.Add(int64(rep.Sessions))
	s.met.runSessionChecks.Add(int64(rep.SessionChecks))
}
