package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"time"
)

// workerLoop is one worker slot: it dequeues jobs until Shutdown.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.queue:
			s.supervise(j)
			// A drained slot exits promptly even if more jobs are
			// queued; they stay ledgered and resume on the next start.
			select {
			case <-s.quit:
				return
			default:
			}
		}
	}
}

// supervise owns one job start to finish: adopt an orphaned result if a
// previous daemon died between the worker finishing and the ledger
// recording it, then run attempts under the hard deadline until a
// result appears or the retry budget runs out. Every attempt resumes
// from the job's checkpoint journal, so progress is monotone across
// SIGKILLs and daemon restarts.
func (s *Server) supervise(j *job) {
	if res, ok := readResult(j.dir, j.spec); ok {
		s.adopted.Add(1)
		s.cfg.Logf("predabsd: %s: adopting orphaned result (exit %d)", j.id, res.ExitCode)
		s.finishDone(j, res)
		return
	}
	maxAttempts := s.cfg.Retries + 1
	for {
		j.mu.Lock()
		attempt := j.attempts + 1
		j.mu.Unlock()
		if attempt > maxAttempts {
			s.finishFailed(j, fmt.Sprintf("retry budget exhausted after %d attempts", attempt-1))
			return
		}
		if attempt > 1 {
			s.retries.Add(1)
		}
		if err := s.ledger.attempt(j.id, attempt); err != nil {
			s.cfg.Logf("predabsd: %s: ledger attempt record: %v", j.id, err)
		}
		j.mu.Lock()
		j.attempts = attempt
		j.state = StateRunning
		j.mu.Unlock()

		res, failure := s.runAttempt(j, attempt)
		if res != nil {
			s.finishDone(j, *res)
			return
		}
		if s.runCtx.Err() != nil {
			// Shutdown SIGKILLed this attempt before it could finish.
			// Refund it in the ledger and leave the job pending instead
			// of durably failing what may have been its final budgeted
			// attempt: the next daemon start re-runs it. At most one
			// refund per job per daemon lifetime, so the budget stays
			// bounded even across repeated drains.
			if err := s.ledger.preempt(j.id, attempt); err != nil {
				s.cfg.Logf("predabsd: %s: ledger preempt record: %v", j.id, err)
			}
			j.mu.Lock()
			j.attempts = attempt - 1
			j.state = StateQueued
			j.mu.Unlock()
			s.cfg.Logf("predabsd: %s: attempt %d preempted by shutdown; job stays journaled for resume", j.id, attempt)
			return
		}
		s.cfg.Logf("predabsd: %s: attempt %d/%d failed: %s", j.id, attempt, maxAttempts, failure)
		if attempt >= maxAttempts {
			s.finishFailed(j, fmt.Sprintf("retry budget exhausted after %d attempts (last: %s)", attempt, failure))
			return
		}
		j.mu.Lock()
		j.state = StateRetrying
		j.mu.Unlock()
		if !s.backoff(attempt) {
			// Shutdown interrupted the backoff: leave the job pending in
			// the ledger; the next daemon start re-enqueues and resumes it.
			return
		}
	}
}

// runAttempt executes one worker subprocess for j. A complete result
// file is the only success signal; nil plus a reason means retry.
func (s *Server) runAttempt(j *job, attempt int) (*WorkerResult, string) {
	// Adoption runs before the first attempt and completed attempts end
	// supervision, so anything still here is a hash-mismatched leftover
	// from a recycled job directory; removing it keeps the "result file
	// == this attempt finished" invariant unconditional.
	os.Remove(filepath.Join(j.dir, resultFile))

	timeout := s.cfg.AttemptTimeout
	if j.spec.AttemptTimeoutMS > 0 {
		timeout = time.Duration(j.spec.AttemptTimeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(s.runCtx, timeout)
	defer cancel()

	// CommandContext's default Cancel is Process.Kill — SIGKILL, the
	// same signal an OOM kill delivers, so the checkpoint journal must
	// absorb it mid-fsync. That is the isolation contract: the worker
	// can die arbitrarily hard and the daemon only ever observes a
	// missing result file.
	cmd := exec.CommandContext(ctx, s.cfg.WorkerBin, "-worker", "-dir", j.dir)
	cmd.Env = append(os.Environ(), j.spec.Env...)
	logf, err := os.OpenFile(filepath.Join(j.dir, workerLogFile),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err == nil {
		fmt.Fprintf(logf, "--- attempt %d ---\n", attempt)
		cmd.Stdout, cmd.Stderr = logf, logf
		defer logf.Close()
	}
	runErr := cmd.Run()

	if res, ok := readResult(j.dir, j.spec); ok {
		return &res, ""
	}
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		s.kills.Add(1)
		return nil, fmt.Sprintf("SIGKILLed on the %v attempt deadline", timeout)
	case s.runCtx.Err() != nil:
		return nil, "worker killed by daemon shutdown"
	case runErr != nil:
		return nil, fmt.Sprintf("worker died without a result (%v)", runErr)
	default:
		return nil, "worker exited without writing a result"
	}
}

// backoff sleeps the exponential-with-jitter delay before the next
// attempt; false means shutdown interrupted the wait.
func (s *Server) backoff(attempt int) bool {
	d := s.cfg.RetryBase << (attempt - 1)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	// Full ±50% jitter decorrelates retry stampedes after a shared
	// cause (e.g. memory pressure killing several workers at once).
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.quit:
		return false
	}
}

func (s *Server) finishDone(j *job, res WorkerResult) {
	j.mu.Lock()
	j.state = StateDone
	j.result = &res
	j.errmsg = ""
	attempts := j.attempts
	j.mu.Unlock()
	s.completed.Add(1)
	if err := s.ledger.done(j.id, StateDone, res.ExitCode, res.Outcome, ""); err != nil {
		s.cfg.Logf("predabsd: %s: ledger done record: %v", j.id, err)
	}
	s.cfg.Logf("predabsd: %s: done after %d attempt(s): exit %d outcome %q",
		j.id, attempts, res.ExitCode, res.Outcome)
}

// finishFailed marks a job out of retry budget. The daemon never
// invents a verdict: the job's outcome is "unknown", with the reason in
// the status error — a retried job may report Unknown, never Verified.
func (s *Server) finishFailed(j *job, detail string) {
	j.mu.Lock()
	j.state = StateFailed
	j.errmsg = detail
	j.mu.Unlock()
	s.failed.Add(1)
	if err := s.ledger.done(j.id, StateFailed, 0, "unknown", detail); err != nil {
		s.cfg.Logf("predabsd: %s: ledger done record: %v", j.id, err)
	}
	s.cfg.Logf("predabsd: %s: failed: %s", j.id, detail)
}
