// Observability tests for the predabsd daemon: the /metrics exposition,
// the durable per-job event log and its resumable NDJSON stream, live
// CEGAR progress in job status, the backoff gauge, and the merged
// daemon+worker Chrome trace.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"predabs"
	"predabs/internal/checkpoint"
	"predabs/internal/corpus"
	"predabs/internal/metrics"
	"predabs/internal/server"
)

// getBody fetches url and returns the body and status code.
func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.StatusCode
}

// fetchEvents fetches and decodes a job's NDJSON event stream, first
// validating it with the same checker cmd/tracelint -events uses.
func fetchEvents(t *testing.T, baseURL, id string, after uint64) []server.JobEvent {
	t.Helper()
	url := fmt.Sprintf("%s/jobs/%s/events", baseURL, id)
	if after > 0 {
		url += fmt.Sprintf("?after=%d", after)
	}
	body, code := getBody(t, url)
	if code != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", url, code)
	}
	if _, err := server.ValidateEvents(bytes.NewReader(body)); err != nil {
		t.Fatalf("event stream fails validation: %v\n%s", err, body)
	}
	var out []server.JobEvent
	for _, line := range bytes.Split(body, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev server.JobEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestHealthAndStatzReportVersion checks the liveness and stats
// endpoints carry the build version and a sane uptime.
func TestHealthAndStatzReportVersion(t *testing.T) {
	s := newServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ep := range []string{"/healthz", "/statz"} {
		body, code := getBody(t, ts.URL+ep)
		if code != http.StatusOK {
			t.Fatalf("%s: HTTP %d", ep, code)
		}
		var got struct {
			Status  string `json:"status"`
			Version string `json:"version"`
			Uptime  *int64 `json:"uptime_seconds"`
		}
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("%s: not JSON: %v\n%s", ep, err, body)
		}
		if got.Version != predabs.Version {
			t.Errorf("%s version %q, want %q", ep, got.Version, predabs.Version)
		}
		if got.Uptime == nil || *got.Uptime < 0 {
			t.Errorf("%s uptime_seconds missing or negative: %s", ep, body)
		}
		if ep == "/healthz" && got.Status != "ok" {
			t.Errorf("/healthz status %q, want ok", got.Status)
		}
	}
}

// TestMetricsEndpoint completes one job and checks the Prometheus
// exposition: content type, the daemon's counter families with expected
// values, the folded per-run counters, and byte-identical output across
// consecutive scrapes of the same state.
func TestMetricsEndpoint(t *testing.T) {
	s := newServer(t, func(c *server.Config) { c.Metrics = metrics.New() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := s.Submit(server.JobSpec{Source: verifiedSrc})
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, id, 30*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want the 0.0.4 text exposition", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	for _, want := range []string{
		"predabsd_jobs_submitted_total 1\n",
		"predabsd_jobs_completed_total 1\n",
		"predabsd_verdict_verified_total 1\n",
		"predabsd_jobs_failed_total 0\n",
		"predabsd_workers_busy 0\n",
		"# TYPE predabsd_worker_attempt_seconds histogram",
		"predabsd_worker_attempt_seconds_count 1\n",
		"predabsd_queue_depth 0\n",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The verified job ran at least one CEGAR iteration, and the daemon
	// folds the worker's run report into fleet-cumulative counters.
	if strings.Contains(string(body), "predabsd_run_iterations_total 0\n") {
		t.Error("run report counters were not folded into /metrics")
	}

	// Family ordering is deterministic: two scrapes of unchanged state
	// are byte-identical.
	body2, _ := getBody(t, ts.URL+"/metrics")
	if !bytes.Equal(body, body2) {
		t.Error("consecutive scrapes differ — family ordering is not deterministic")
	}
}

// TestMetricsDisabledServesEmpty checks a daemon without a registry
// still serves /metrics (empty body) instead of failing.
func TestMetricsDisabledServesEmpty(t *testing.T) {
	s := newServer(t, nil) // no Metrics registry
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, code := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK || len(body) != 0 {
		t.Fatalf("disabled metrics: HTTP %d body %q, want 200 and empty", code, body)
	}
}

// TestBackoffGaugeTracksParkedRetries parks a crashing job's retry in a
// long backoff and checks the sleep is visible while it lasts: the
// retries-in-backoff gauge reads 1 in both /statz and /metrics, and
// returns to 0 in /statz after shutdown interrupts the sleep.
func TestBackoffGaugeTracksParkedRetries(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: has checkpoint commits to crash on
	s := newServer(t, func(c *server.Config) {
		c.AllowJobEnv = true
		c.Retries = 5
		c.RetryBase = time.Minute // park attempt 2 in backoff
		c.RetryMax = time.Hour
		c.Metrics = metrics.New()
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := s.Submit(server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: []string{checkpoint.CrashEnv + "=1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, s, id, server.StateRetrying, 20*time.Second)

	// The state flips to retrying just before the supervisor enters the
	// sleep, so poll for the gauge.
	statzGauge := func() int64 {
		body, _ := getBody(t, ts.URL+"/statz")
		var got struct {
			N int64 `json:"retries_in_backoff"`
		}
		json.Unmarshal(body, &got)
		return got.N
	}
	deadline := time.Now().Add(10 * time.Second)
	for statzGauge() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("/statz retries_in_backoff never reached 1 for the parked retry")
		}
		time.Sleep(2 * time.Millisecond)
	}
	body, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(body), "predabsd_retries_in_backoff 1\n") {
		t.Error("/metrics does not show the parked retry in the backoff gauge")
	}
	if !strings.Contains(string(body), "predabsd_backoff_sleeps_total 1\n") {
		t.Error("/metrics does not count the entered backoff sleep")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s.Shutdown(ctx) // interrupts the backoff; the deferred decrement runs
	if n := statzGauge(); n != 0 {
		t.Fatalf("retries_in_backoff %d after shutdown, want 0", n)
	}
}

// TestEventStreamAndProgress runs a multi-iteration job to completion
// and checks its durable event log: the NDJSON stream validates, covers
// the full lifecycle (queued → spawn → running → done), contains the
// worker's CEGAR progress heartbeats, resumes correctly with ?after=N,
// and surfaces the last heartbeat as live progress in the job status.
func TestEventStreamAndProgress(t *testing.T) {
	drv := corpus.Drivers()[1] // ioctl: verified in 3 iterations → heartbeats
	s := newServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := s.Submit(server.JobSpec{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry})
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, id, 30*time.Second)

	evs := fetchEvents(t, ts.URL, id, 0)
	if len(evs) == 0 {
		t.Fatal("completed job has no events")
	}
	if evs[0].Seq != 1 {
		t.Fatalf("first event seq %d, want 1", evs[0].Seq)
	}
	var sawTypes []string
	var progress []server.JobEvent
	for _, ev := range evs {
		key := ev.Type
		if ev.Type == server.EventState {
			key = "state:" + ev.State
		}
		sawTypes = append(sawTypes, key)
		if ev.Type == server.EventProgress {
			progress = append(progress, ev)
		}
	}
	for _, want := range []string{"state:queued", "state:running", "spawn", "state:done"} {
		found := false
		for _, got := range sawTypes {
			found = found || got == want
		}
		if !found {
			t.Errorf("lifecycle event %q missing from stream %v", want, sawTypes)
		}
	}
	// The ioctl driver refines twice before converging: iterations 1 and
	// 2 each commit and heartbeat; the terminal iteration does not.
	if len(progress) != 2 {
		t.Fatalf("progress heartbeats %d, want 2 (one per refining iteration)", len(progress))
	}
	for i, p := range progress {
		if p.Iter != i+1 || p.Attempt != 1 || p.Queries <= 0 || p.Engine == "" {
			t.Errorf("heartbeat %d malformed: %+v", i, p)
		}
	}

	// ?after=N resumes exactly past the cursor.
	cut := evs[len(evs)/2].Seq
	rest := fetchEvents(t, ts.URL, id, cut)
	if len(rest) != len(evs)-int(cut) || rest[0].Seq != cut+1 {
		t.Fatalf("?after=%d returned seqs starting %d count %d, want %d onward, count %d",
			cut, rest[0].Seq, len(rest), cut+1, len(evs)-int(cut))
	}
	if _, code := getBody(t, ts.URL+"/jobs/"+id+"/events?after=x"); code != http.StatusBadRequest {
		t.Errorf("bad ?after: HTTP %d, want 400", code)
	}

	// The job status carries the last heartbeat as live progress.
	body, _ := getBody(t, ts.URL+"/jobs/"+id)
	var st server.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	last := progress[len(progress)-1]
	if st.Progress == nil {
		t.Fatal("job status has no progress")
	}
	if st.Progress.Iter != last.Iter || st.Progress.Seq != last.Seq || st.Progress.Preds != last.Preds {
		t.Fatalf("status progress %+v does not match last heartbeat %+v", st.Progress, last)
	}
}

// TestEventLogSurvivesRestart kills a daemon mid-job (crashing worker
// parked in backoff, expired drain) and checks the event log across the
// restart: nothing a client saw before the kill is lost or re-numbered,
// ?after with the pre-kill cursor resumes with the next sequence and no
// duplicates, and the completed stream still validates end to end.
func TestEventLogSurvivesRestart(t *testing.T) {
	drv := corpus.Drivers()[1]
	dataDir := t.TempDir()
	spec := server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: []string{checkpoint.CrashEnv + "=1"}, // die at each attempt's first new commit
	}
	s1 := newServer(t, func(c *server.Config) {
		c.DataDir = dataDir
		c.AllowJobEnv = true
		c.Retries = 5
		c.RetryBase = time.Minute
		c.RetryMax = time.Hour
	})
	ts1 := httptest.NewServer(s1.Handler())
	id, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, s1, id, server.StateRetrying, 20*time.Second)
	before := fetchEvents(t, ts1.URL, id, 0)
	if len(before) == 0 {
		t.Fatal("no events before the restart")
	}
	cursor := before[len(before)-1].Seq
	ts1.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s1.Shutdown(ctx)

	s2 := newServer(t, func(c *server.Config) {
		c.DataDir = dataDir
		c.AllowJobEnv = true
		c.Retries = 5
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	st := await(t, s2, id, 30*time.Second)
	if st.State != server.StateDone {
		t.Fatalf("resumed job: state %q error %q", st.State, st.Error)
	}

	after := fetchEvents(t, ts2.URL, id, 0)
	if len(after) <= len(before) {
		t.Fatalf("restarted run added no events: %d before, %d after", len(before), len(after))
	}
	// The pre-kill prefix survives the restart bit for bit: same count of
	// leading records, same sequence numbers, same payloads.
	for i, ev := range before {
		if after[i] != ev {
			t.Fatalf("event %d changed across restart:\nbefore: %+v\nafter:  %+v", i, ev, after[i])
		}
	}
	// A client resuming with its pre-kill cursor sees exactly the new
	// records: dense continuation, no gap, no duplicate.
	resumed := fetchEvents(t, ts2.URL, id, cursor)
	if len(resumed) != len(after)-len(before) {
		t.Fatalf("?after=%d returned %d events, want %d", cursor, len(resumed), len(after)-len(before))
	}
	if resumed[0].Seq != cursor+1 {
		t.Fatalf("resume cursor %d continued at seq %d, want %d", cursor, resumed[0].Seq, cursor+1)
	}
}

// TestChromeTraceMergesAttemptLanes retries a crashing job to a verdict
// and checks the merged Chrome export: one daemon lane with the
// supervision span and per-attempt spans, plus distinct worker lanes for
// each attempt's trace (archived for failed attempts, live for the
// final one).
func TestChromeTraceMergesAttemptLanes(t *testing.T) {
	drv := corpus.Drivers()[1]
	s := newServer(t, func(c *server.Config) {
		c.AllowJobEnv = true
		c.Retries = 5
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := s.Submit(server.JobSpec{
		Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry,
		Env: []string{checkpoint.CrashEnv + "=1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := await(t, s, id, 30*time.Second)
	if st.State != server.StateDone || st.Attempts < 2 {
		t.Fatalf("want a retried completed job, got state %q after %d attempts", st.State, st.Attempts)
	}

	body, code := getBody(t, ts.URL+"/jobs/"+id+"/trace.chrome")
	if code != http.StatusOK {
		t.Fatalf("trace.chrome: HTTP %d", code)
	}
	var doc struct {
		TraceEvents []struct {
			Tid  int             `json:"tid"`
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Cat  string          `json:"cat"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace.chrome is not valid JSON: %v", err)
	}

	lanes := map[string]bool{} // thread_name metadata values
	daemonSpans := map[string]bool{}
	workerTids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			var meta struct {
				Name string `json:"name"`
			}
			json.Unmarshal(ev.Args, &meta)
			lanes[meta.Name] = true
		}
		if ev.Tid == 0 && ev.Ph == "X" {
			daemonSpans[ev.Name] = true
		}
		if ev.Tid != 0 && ev.Ph != "M" {
			workerTids[ev.Tid/1000] = true // lane stride groups tids by attempt
		}
	}
	if !daemonSpans["supervise"] {
		t.Error("merged trace has no supervision span on the daemon lane")
	}
	for n := 1; n <= st.Attempts; n++ {
		if !daemonSpans[fmt.Sprintf("attempt %d", n)] {
			t.Errorf("daemon lane missing the attempt %d span", n)
		}
	}
	// Every attempt left worker events in its own lane group: the failed
	// attempts' archived traces and the final attempt's live trace.
	if len(workerTids) < 2 {
		t.Fatalf("merged trace has worker lanes for %d attempts, want at least 2 (lanes: %v)",
			len(workerTids), lanes)
	}
	if !lanes["attempt 1 pipeline"] || !lanes[fmt.Sprintf("attempt %d pipeline", st.Attempts)] {
		t.Fatalf("per-attempt pipeline lanes missing; named lanes: %v", lanes)
	}
}

// TestEventsLongPoll pins the ?wait= long-poll contract on the shared
// job API: a request with events already past the cursor returns
// immediately, a request with nothing new holds the connection for up
// to the wait and then returns an empty 200 stream, a request whose
// events arrive mid-hold returns them well before the full wait, and
// malformed or negative waits are 400s.
func TestEventsLongPoll(t *testing.T) {
	drv := corpus.Drivers()[1]
	s := newServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id, err := s.Submit(server.JobSpec{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry})
	if err != nil {
		t.Fatal(err)
	}
	await(t, s, id, 30*time.Second)
	evs := fetchEvents(t, ts.URL, id, 0)
	if len(evs) == 0 {
		t.Fatal("completed job has no events")
	}
	last := evs[len(evs)-1].Seq

	// Events already available: the wait must not hold the request.
	start := time.Now()
	body, code := getBody(t, fmt.Sprintf("%s/jobs/%s/events?wait=10s", ts.URL, id))
	if code != http.StatusOK || len(bytes.TrimSpace(body)) == 0 {
		t.Fatalf("long-poll with ready events: HTTP %d, body %q", code, body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("long-poll with ready events held for %v", d)
	}

	// Nothing past the cursor: the handler parks for the full wait, then
	// answers an empty stream (HTTP 200, not an error) so the client can
	// re-poll with the same cursor.
	start = time.Now()
	body, code = getBody(t, fmt.Sprintf("%s/jobs/%s/events?after=%d&wait=300ms", ts.URL, id, last))
	held := time.Since(start)
	if code != http.StatusOK || len(bytes.TrimSpace(body)) != 0 {
		t.Fatalf("exhausted long-poll: HTTP %d, body %q", code, body)
	}
	if held < 250*time.Millisecond {
		t.Fatalf("exhausted long-poll returned after %v, want ~300ms hold", held)
	}

	// Events arriving mid-hold cut the wait short: polling a just
	// submitted job past its admission event parks until the worker's
	// running/spawn events land, well inside the 10s wait.
	id2, err := s.Submit(server.JobSpec{Source: drv.Source, Spec: drv.Spec, Entry: drv.Entry})
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	body, code = getBody(t, fmt.Sprintf("%s/jobs/%s/events?after=1&wait=10s", ts.URL, id2))
	held = time.Since(start)
	if code != http.StatusOK || len(bytes.TrimSpace(body)) == 0 {
		t.Fatalf("mid-hold long-poll: HTTP %d, body %q", code, body)
	}
	if held > 5*time.Second {
		t.Fatalf("mid-hold long-poll ran the full wait (%v) instead of returning on arrival", held)
	}
	await(t, s, id2, 30*time.Second)

	// Malformed and negative waits are client errors.
	for _, q := range []string{"wait=x", "wait=-1s"} {
		if _, code := getBody(t, fmt.Sprintf("%s/jobs/%s/events?%s", ts.URL, id, q)); code != http.StatusBadRequest {
			t.Errorf("?%s: HTTP %d, want 400", q, code)
		}
	}
}
