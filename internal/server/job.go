// Package server implements predabsd: a supervised verification
// service that accepts SLAM jobs over HTTP/JSON, admits them through a
// bounded queue with load shedding, and executes each in an isolated
// re-exec'd worker subprocess so a panicking, OOM-killed or wedged job
// can never take down the service or corrupt a sibling.
//
// # Supervision tree
//
//	Server ── workerLoop ×N ── supervise(job) ── worker subprocess
//
// A supervisor owns each running job: per-attempt hard deadline (SIGKILL
// on overrun), exponential backoff with jitter between attempts, and a
// bounded retry budget that persists across daemon restarts. Every
// worker runs with a per-job checkpoint state directory (the PR-4
// -state journals), so a retried attempt resumes from the last
// committed CEGAR iteration instead of starting over — and the resumed
// verdict is byte-identical to an uninterrupted run, the property the
// serve-chaos suite in internal/faultinject pins.
//
// # Soundness under retries
//
// The daemon never synthesizes a verdict. A job is "done" exactly when
// a worker attempt produced a complete result file (written atomically:
// temp file + rename); anything else — SIGKILL, panic, torn journal,
// daemon restart — either retries from the journal or, when the retry
// budget is exhausted, fails the job with outcome "unknown". A retried
// or degraded job may therefore report Unknown, never
// Verified-when-buggy.
package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"predabs"
	"predabs/internal/obs"
	"predabs/internal/runner"
)

// JobSpec is the submitted verification job: the program and (optional)
// specification text plus the per-job limits. All limits mirror the
// slam CLI flags; zero means the flag's default. The daemon stores the
// normalized spec as job.json inside the job directory, which is the
// worker subprocess's only input.
type JobSpec struct {
	// Source is the MiniC program text (required).
	Source string `json:"source"`
	// Spec is the SLIC specification text; empty selects the
	// assert-checking workflow.
	Spec string `json:"spec,omitempty"`
	// Entry is the entry procedure (default "main").
	Entry string `json:"entry,omitempty"`
	// MaxIters bounds refinement iterations (default 10).
	MaxIters int `json:"max_iters,omitempty"`
	// Jobs sizes the cube-search worker pool inside the worker process
	// (0 = GOMAXPROCS). Verdicts are worker-count-independent.
	Jobs int `json:"jobs,omitempty"`
	// AbsEngine selects the abstraction engine ("cubes" or "models";
	// empty means "cubes"). It participates in the spec hash, so changing
	// it changes job identity — a recycled job directory can never serve
	// one engine's result for the other's request.
	AbsEngine string `json:"abs_engine,omitempty"`
	// Explain renders found error paths as annotated source traces.
	Explain bool `json:"explain,omitempty"`

	// Soft limits: the worker degrades soundly when these bind.
	TimeoutMS      int64 `json:"timeout_ms,omitempty"`
	QueryTimeoutMS int64 `json:"query_timeout_ms,omitempty"`
	CubeBudget     int   `json:"cube_budget,omitempty"`
	BDDMaxNodes    int   `json:"bdd_max_nodes,omitempty"`

	// AttemptTimeoutMS is the hard per-attempt wall clock enforced by
	// the supervisor with SIGKILL (0 = the daemon's -job-timeout).
	AttemptTimeoutMS int64 `json:"attempt_timeout_ms,omitempty"`

	// Env appends environment variables ("K=V") to the worker process.
	// Only honoured when the daemon runs with -allow-job-env; the chaos
	// suite uses it to schedule deterministic worker crashes.
	Env []string `json:"env,omitempty"`

	// Artifacts is set by the daemon at admission (from its -artifacts
	// flag): the worker then writes trace.jsonl and report.json next to
	// the result.
	Artifacts bool `json:"artifacts,omitempty"`
}

// Normalize applies defaults and rejects nonsensical fields. Admission
// — the single node's and the fleet frontend's — normalizes before
// hashing, so equal submissions share one spec hash however sparsely
// they were spelled.
func (s *JobSpec) Normalize() error {
	if s.Source == "" {
		return fmt.Errorf("source: must not be empty")
	}
	if s.Entry == "" {
		s.Entry = "main"
	}
	if s.MaxIters == 0 {
		s.MaxIters = 10
	}
	if s.MaxIters < 0 {
		return fmt.Errorf("max_iters: %d: must be positive", s.MaxIters)
	}
	if s.Jobs < 0 {
		return fmt.Errorf("jobs: %d: must not be negative", s.Jobs)
	}
	if !predabs.ValidEngine(s.AbsEngine) {
		return fmt.Errorf("abs_engine: %q: must be %q or %q",
			s.AbsEngine, predabs.EngineCubes, predabs.EngineModels)
	}
	for name, v := range map[string]int64{
		"timeout_ms":         s.TimeoutMS,
		"query_timeout_ms":   s.QueryTimeoutMS,
		"cube_budget":        int64(s.CubeBudget),
		"bdd_max_nodes":      int64(s.BDDMaxNodes),
		"attempt_timeout_ms": s.AttemptTimeoutMS,
	} {
		if v < 0 {
			return fmt.Errorf("%s: %d: must not be negative", name, v)
		}
	}
	return nil
}

// WorkerResult is the worker's output contract, written atomically as
// result.json in the job directory. Its presence is the one and only
// signal that an attempt completed: a SIGKILLed or crashed worker
// leaves no result file, so the supervisor retries from the journal.
type WorkerResult struct {
	// SpecHash fingerprints the job spec this result was computed for.
	// Job IDs recycle when the ledger is quarantined or removed while
	// old job directories survive, so a result is only ever credited to
	// a job whose spec hashes identically — the daemon must never report
	// a previous occupant's verdict for a different program.
	SpecHash string `json:"spec_hash"`
	// ExitCode follows the slam CLI contract: 0 verified, 1 error found
	// (or a fatal input error), 2 unknown.
	ExitCode int `json:"exit_code"`
	// Outcome is "verified", "error-found" or "unknown"; "" when the
	// run failed before producing a verdict (e.g. a parse error).
	Outcome string `json:"outcome"`
	// Stdout is the run's canonical output, byte-identical to a direct
	// slam invocation over the same inputs.
	Stdout string `json:"stdout"`
}

// Job-directory file names.
const (
	jobSpecFile   = "job.json"
	resultFile    = "result.json"
	stateDirName  = "state"
	traceFile     = "trace.jsonl"
	reportFile    = "report.json"
	workerLogFile = "worker.log"
)

// Trace-context environment: the supervisor stamps every worker
// subprocess with the job and attempt it runs, so worker-side records —
// progress events in the job event log, spans in the merged Chrome
// trace — join the daemon's supervision timeline without guessing.
const (
	// JobIDEnv carries the job ID into the worker.
	JobIDEnv = "PREDABSD_JOB_ID"
	// AttemptEnv carries the 1-based attempt number into the worker.
	AttemptEnv = "PREDABSD_ATTEMPT"
	// CacheURLEnv carries the shared prover cache (predcached) base URL
	// into the worker; empty or unset leaves the remote tier off. The
	// supervisor stamps it from Config.CacheURL, so every worker on a
	// node shares (and warms) the same cache.
	CacheURLEnv = "PREDABSD_CACHE_URL"
	// CacheVerifyEnv, when set to "1", puts the worker's remote cache
	// tier in verify mode: sampled remote hits are recomputed locally
	// and any mismatch quarantines the tier for the run.
	CacheVerifyEnv = "PREDABSD_CACHE_VERIFY"
	// EventsMaxEnv carries the daemon's -events-max-bytes retention cap
	// into the worker, whose progress heartbeats append to the same
	// event log the supervisor rotates.
	EventsMaxEnv = "PREDABSD_EVENTS_MAX_BYTES"
)

// HangEnv names the test-only environment variable that wedges a
// worker before its run starts (injected per job via JobSpec.Env under
// -allow-job-env). The leak and chaos suites use it to exercise the
// supervisor's deadline-SIGKILL path deterministically — a wedged
// worker is indistinguishable from a diverging CEGAR job.
const HangEnv = "PREDABSD_WORKER_HANG"

// RunWorker is the worker-subprocess entry point (predabsd -worker
// -dir <jobdir>): it reads job.json, runs the verification with the
// job's checkpoint state directory (resuming any journaled progress),
// writes result.json atomically and exits with the run's exit code.
// Diagnostics go to stderr, which the supervisor routes to worker.log.
func RunWorker(dir string, stderr io.Writer) int {
	if os.Getenv(HangEnv) != "" {
		select {} // wedge until the supervisor's SIGKILL
	}
	raw, err := os.ReadFile(filepath.Join(dir, jobSpecFile))
	if err != nil {
		fmt.Fprintln(stderr, "predabsd worker:", err)
		return 1
	}
	var spec JobSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		fmt.Fprintf(stderr, "predabsd worker: %s: %v\n", jobSpecFile, err)
		return 1
	}
	flags := &obs.Flags{
		Timeout:      time.Duration(spec.TimeoutMS) * time.Millisecond,
		QueryTimeout: time.Duration(spec.QueryTimeoutMS) * time.Millisecond,
		CubeBudget:   spec.CubeBudget,
		BDDMaxNodes:  spec.BDDMaxNodes,
		State:        filepath.Join(dir, stateDirName),
	}
	if spec.Artifacts {
		flags.TraceOut = filepath.Join(dir, traceFile)
		flags.ReportJSON = filepath.Join(dir, reportFile)
	}
	// With a supervisor-stamped trace context the worker appends CEGAR
	// progress heartbeats to the job's durable event log. The temporal
	// handoff makes this safe: the supervisor never appends while the
	// worker runs. Append failures are diagnostics, never run failures.
	var progress func(iter, preds int, queries int64, engine string)
	if attempt, _ := strconv.Atoi(os.Getenv(AttemptEnv)); attempt > 0 {
		eventsMax, _ := strconv.ParseInt(os.Getenv(EventsMaxEnv), 10, 64)
		progress = func(iter, preds int, queries int64, engine string) {
			_, err := appendJobEventFS(nil, dir, eventsMax, JobEvent{
				Type: EventProgress, Attempt: attempt,
				Iter: iter, Preds: preds, Queries: queries, Engine: engine,
			})
			if err != nil {
				fmt.Fprintln(stderr, "predabsd worker: event log:", err)
			}
		}
	}
	var stdout bytes.Buffer
	code, outcome := runner.Run(runner.Input{
		SourceName:  "job.c",
		Source:      spec.Source,
		Spec:        spec.Spec,
		HasSpec:     spec.Spec != "",
		Entry:       spec.Entry,
		MaxIters:    spec.MaxIters,
		Jobs:        spec.Jobs,
		Engine:      spec.AbsEngine,
		Explain:     spec.Explain,
		CacheURL:    os.Getenv(CacheURLEnv),
		CacheVerify: os.Getenv(CacheVerifyEnv) == "1",
		Progress:    progress,
		Obs:         flags,
	}, &stdout, stderr)
	res := WorkerResult{SpecHash: SpecHash(spec), ExitCode: code, Outcome: outcome, Stdout: stdout.String()}
	if err := writeFileAtomic(filepath.Join(dir, resultFile), res); err != nil {
		// No result file means the supervisor will retry; report why.
		fmt.Fprintln(stderr, "predabsd worker: writing result:", err)
		return 1
	}
	return code
}

// writeFileAtomic marshals v and renames a synced temp file over path,
// so a crash mid-write can never leave a half-readable result.
func writeFileAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-result-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readResult loads a complete worker result bound to the given spec
// hash from the job directory; ok is false when no readable result
// exists or the result's spec hash does not match — a stale file left
// by a previous occupant of a recycled job directory is treated as no
// result at all.
func readResult(dir string, hash string) (WorkerResult, bool) {
	raw, err := os.ReadFile(filepath.Join(dir, resultFile))
	if err != nil {
		return WorkerResult{}, false
	}
	var res WorkerResult
	if err := json.Unmarshal(raw, &res); err != nil {
		return WorkerResult{}, false
	}
	if res.SpecHash != hash {
		return WorkerResult{}, false
	}
	return res, true
}

// SpecHash fingerprints a normalized job spec: the SHA-256 content
// address of the verification work it describes. The daemon and the
// worker both derive it from the same marshaling of JobSpec, so the
// hash a worker stamps into its result matches the admitting daemon's
// — and a daemon restarted from the ledger recomputes the same value.
// The fleet frontend keys its content-addressed dedup on it. Artifacts
// is excluded: it is a server-side output toggle the admitting node
// sets, not part of the job's identity, and including it would make a
// frontend's hash disagree with an artifacts-enabled backend's.
func SpecHash(spec JobSpec) string {
	spec.Artifacts = false
	data, err := json.Marshal(spec)
	if err != nil {
		// JobSpec is plain data; Marshal cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// attemptTraceFile names the archived trace of a finished (failed)
// attempt; the live attempt always writes traceFile, which the
// supervisor renames here before the retry so the merged Chrome trace
// can render every attempt as its own lane.
func attemptTraceFile(attempt int) string {
	return fmt.Sprintf("trace-attempt-%d.jsonl", attempt)
}

// scrubJobDir removes every artifact a previous occupant may have left
// in a recycled job directory (result, worker log, traces, report,
// event log, checkpoint state), so a freshly admitted job can neither
// adopt nor resume from — nor report events of — another program's
// output.
func scrubJobDir(dir string) error {
	for _, name := range []string{resultFile, workerLogFile, traceFile, reportFile, EventsName} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	archived, err := filepath.Glob(filepath.Join(dir, "trace-attempt-*.jsonl"))
	if err == nil {
		for _, path := range archived {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return os.RemoveAll(filepath.Join(dir, stateDirName))
}
