// White-box tests for the durable job ledger: replay folding, sequence
// continuation, corrupt-ledger quarantine, and adoption of a result that
// an earlier daemon crashed before recording.
package server

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLedgerReplayFolding(t *testing.T) {
	path := filepath.Join(t.TempDir(), LedgerName)
	l, jobs, _, _, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh ledger replayed %d jobs", len(jobs))
	}
	spec := JobSpec{Source: "void main() {}", Entry: "main", MaxIters: 10}
	// job 1: finished. job 2: two attempts, still in flight. job 7: queued.
	for _, step := range []func() error{
		func() error { return l.admit("job-000001", spec) },
		func() error { return l.attempt("job-000001", 1) },
		func() error { return l.done("job-000001", StateDone, 0, "verified", "") },
		func() error { return l.admit("job-000002", spec) },
		func() error { return l.attempt("job-000002", 1) },
		func() error { return l.attempt("job-000002", 2) },
		func() error { return l.admit("job-000007", spec) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	l2, jobs, order, warnings, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(warnings) != 0 {
		t.Fatalf("clean ledger produced warnings: %v", warnings)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	j1 := jobs["job-000001"]
	if !j1.done || j1.state != StateDone || j1.outcome != "verified" {
		t.Fatalf("job-000001 folded to %+v", j1)
	}
	j2 := jobs["job-000002"]
	if j2.done || j2.attempts != 2 || j2.spec.Source != spec.Source {
		t.Fatalf("job-000002 folded to %+v", j2)
	}
	if got := pendingOrder(jobs, order); len(got) != 2 || got[0] != "job-000002" || got[1] != "job-000007" {
		t.Fatalf("pendingOrder = %v", got)
	}
	if got := nextJobSeq(jobs); got != 8 {
		t.Fatalf("nextJobSeq = %d, want 8", got)
	}
}

func TestCorruptLedgerQuarantinedNotDeleted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	if err := os.WriteFile(path, []byte("not a ledger at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent"})
	if err != nil {
		t.Fatalf("corrupt ledger must not prevent startup: %v", err)
	}
	defer s.Shutdown(context.Background())
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt ledger not quarantined: %v", err)
	}
	raw, err := os.ReadFile(path + ".corrupt")
	if err != nil || string(raw) != "not a ledger at all" {
		t.Fatalf("quarantined evidence altered: %q, %v", raw, err)
	}
}

// TestAdoptionOfOrphanedResult simulates a daemon that died after its
// worker wrote result.json but before the ledger recorded "done": the
// restarted daemon must adopt the finished result instead of re-running
// the job — WorkerBin points at a nonexistent binary, so any attempt to
// re-execute would fail the test.
func TestAdoptionOfOrphanedResult(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Source: "void main() {}", Entry: "main", MaxIters: 10}
	jobDir := filepath.Join(dir, "jobs", "job-000001")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(filepath.Join(jobDir, jobSpecFile), spec); err != nil {
		t.Fatal(err)
	}
	orphan := WorkerResult{ExitCode: 0, Outcome: "verified", Stdout: "RESULT: verified (orphaned)\n"}
	if err := writeFileAtomic(filepath.Join(jobDir, resultFile), orphan); err != nil {
		t.Fatal(err)
	}
	l, _, _, _, err := openLedger(filepath.Join(dir, LedgerName))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.admit("job-000001", spec); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent", Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Status("job-000001")
		if !ok {
			t.Fatal("replayed job missing from status map")
		}
		if st.State == StateDone {
			if st.Stdout != orphan.Stdout || st.Outcome != "verified" {
				t.Fatalf("adopted result mangled: %+v", st)
			}
			break
		}
		if st.State == StateFailed {
			t.Fatalf("orphaned result not adopted; job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c := s.CounterSnapshot(); c.Adopted != 1 || c.Resumed != 1 {
		t.Fatalf("counters: %+v", c)
	}
}
