// White-box tests for the durable job ledger: replay folding, sequence
// continuation, corrupt-ledger quarantine, and adoption of a result that
// an earlier daemon crashed before recording.
package server

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestLedgerReplayFolding(t *testing.T) {
	path := filepath.Join(t.TempDir(), LedgerName)
	l, jobs, _, _, err := openLedger(nil, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("fresh ledger replayed %d jobs", len(jobs))
	}
	spec := JobSpec{Source: "void main() {}", Entry: "main", MaxIters: 10}
	// job 1: finished. job 2: two attempts, still in flight. job 7: queued.
	for _, step := range []func() error{
		func() error { return l.admit("job-000001", spec) },
		func() error { return l.attempt("job-000001", 1) },
		func() error { return l.done("job-000001", StateDone, 0, "verified", "") },
		func() error { return l.admit("job-000002", spec) },
		func() error { return l.attempt("job-000002", 1) },
		func() error { return l.attempt("job-000002", 2) },
		func() error { return l.admit("job-000007", spec) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	l2, jobs, order, warnings, err := openLedger(nil, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	if len(warnings) != 0 {
		t.Fatalf("clean ledger produced warnings: %v", warnings)
	}
	if len(jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(jobs))
	}
	j1 := jobs["job-000001"]
	if !j1.done || j1.state != StateDone || j1.outcome != "verified" {
		t.Fatalf("job-000001 folded to %+v", j1)
	}
	j2 := jobs["job-000002"]
	if j2.done || j2.attempts != 2 || j2.spec.Source != spec.Source {
		t.Fatalf("job-000002 folded to %+v", j2)
	}
	if got := pendingOrder(jobs, order); len(got) != 2 || got[0] != "job-000002" || got[1] != "job-000007" {
		t.Fatalf("pendingOrder = %v", got)
	}
	if got := nextJobSeq(jobs); got != 8 {
		t.Fatalf("nextJobSeq = %d, want 8", got)
	}
}

func TestCorruptLedgerQuarantinedNotDeleted(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, LedgerName)
	if err := os.WriteFile(path, []byte("not a ledger at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent"})
	if err != nil {
		t.Fatalf("corrupt ledger must not prevent startup: %v", err)
	}
	defer s.Shutdown(context.Background())
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt ledger not quarantined: %v", err)
	}
	raw, err := os.ReadFile(path + ".corrupt")
	if err != nil || string(raw) != "not a ledger at all" {
		t.Fatalf("quarantined evidence altered: %q, %v", raw, err)
	}
}

// TestAdoptionOfOrphanedResult simulates a daemon that died after its
// worker wrote result.json but before the ledger recorded "done": the
// restarted daemon must adopt the finished result instead of re-running
// the job — WorkerBin points at a nonexistent binary, so any attempt to
// re-execute would fail the test.
func TestAdoptionOfOrphanedResult(t *testing.T) {
	dir := t.TempDir()
	spec := JobSpec{Source: "void main() {}", Entry: "main", MaxIters: 10}
	jobDir := filepath.Join(dir, "jobs", "job-000001")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := writeFileAtomic(filepath.Join(jobDir, jobSpecFile), spec); err != nil {
		t.Fatal(err)
	}
	orphan := WorkerResult{SpecHash: SpecHash(spec), ExitCode: 0, Outcome: "verified", Stdout: "RESULT: verified (orphaned)\n"}
	if err := writeFileAtomic(filepath.Join(jobDir, resultFile), orphan); err != nil {
		t.Fatal(err)
	}
	l, _, _, _, err := openLedger(nil, filepath.Join(dir, LedgerName), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.admit("job-000001", spec); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent", Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Status("job-000001")
		if !ok {
			t.Fatal("replayed job missing from status map")
		}
		if st.State == StateDone {
			if st.Stdout != orphan.Stdout || st.Outcome != "verified" {
				t.Fatalf("adopted result mangled: %+v", st)
			}
			break
		}
		if st.State == StateFailed {
			t.Fatalf("orphaned result not adopted; job failed: %s", st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c := s.CounterSnapshot(); c.Adopted != 1 || c.Resumed != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

// TestStaleResultFromRecycledJobIDNotAdopted covers the ID-recycling
// hazard: after a ledger quarantine (or manual deletion) job IDs restart
// at job-000001 while old job directories — which keep result.json
// forever for done jobs — survive. A recycled ID whose directory holds a
// different program's result must not adopt it; with no runnable worker
// the job can only fail, never report the stale "verified".
func TestStaleResultFromRecycledJobIDNotAdopted(t *testing.T) {
	dir := t.TempDir()
	staleSpec := JobSpec{Source: "void main(int x) { assert(x > 0); }", Entry: "main", MaxIters: 10}
	spec := JobSpec{Source: "void main() {}", Entry: "main", MaxIters: 10}
	jobDir := filepath.Join(dir, "jobs", "job-000001")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := WorkerResult{SpecHash: SpecHash(staleSpec), ExitCode: 0, Outcome: "verified", Stdout: "RESULT: verified (stale)\n"}
	if err := writeFileAtomic(filepath.Join(jobDir, resultFile), stale); err != nil {
		t.Fatal(err)
	}
	// A fresh ledger (the quarantine aftermath) admits an unrelated spec
	// under the recycled ID.
	l, _, _, _, err := openLedger(nil, filepath.Join(dir, LedgerName), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.admit("job-000001", spec); err != nil {
		t.Fatal(err)
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent", Retries: 0})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Shutdown(context.Background())

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, ok := s.Status("job-000001")
		if !ok {
			t.Fatal("replayed job missing from status map")
		}
		if st.State == StateDone {
			t.Fatalf("stale result of a different program adopted: %+v", st)
		}
		if st.State == StateFailed {
			break // the only sound end for an unrunnable worker
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if c := s.CounterSnapshot(); c.Adopted != 0 {
		t.Fatalf("stale result counted as adopted: %+v", c)
	}
}

// TestAdmitScrubsRecycledJobDir checks admission cleans a recycled job
// directory of every artifact a previous occupant left behind, so the
// new job cannot resume from (or be credited with) foreign state.
func TestAdmitScrubsRecycledJobDir(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "jobs", "job-000001")
	if err := os.MkdirAll(filepath.Join(jobDir, stateDirName), 0o755); err != nil {
		t.Fatal(err)
	}
	leftovers := []string{resultFile, workerLogFile, traceFile, reportFile}
	for _, name := range leftovers {
		if err := os.WriteFile(filepath.Join(jobDir, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(jobDir, stateDirName, "journal.predabs"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{DataDir: dir, WorkerBin: "/nonexistent"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background()) // never started: no worker races the checks

	id, err := s.Submit(JobSpec{Source: "void main() {}"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-000001" {
		t.Fatalf("fresh ledger assigned %s, want the recycled job-000001", id)
	}
	for _, name := range leftovers {
		if _, err := os.Stat(filepath.Join(jobDir, name)); !os.IsNotExist(err) {
			t.Errorf("stale %s survived admission (err %v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(jobDir, stateDirName)); !os.IsNotExist(err) {
		t.Errorf("stale checkpoint state dir survived admission (err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(jobDir, jobSpecFile)); err != nil {
		t.Errorf("admitted job has no %s: %v", jobSpecFile, err)
	}
}

// TestNextJobSeqBeyondSixDigits pins the ID parse past the zero-padded
// width: job-1000000 must advance the sequence, not wrap it back into
// live IDs.
func TestNextJobSeqBeyondSixDigits(t *testing.T) {
	jobs := map[string]*replayedJob{
		"job-000002":  {},
		"job-1000000": {},
		"not-a-job":   {},
	}
	if got := nextJobSeq(jobs); got != 1000001 {
		t.Fatalf("nextJobSeq = %d, want 1000001", got)
	}
}

// TestLedgerPreemptRefundsAttempt checks the shutdown-preemption record
// folds the attempt count back down, so an attempt the daemon itself
// SIGKILLed during a drain does not burn retry budget.
func TestLedgerPreemptRefundsAttempt(t *testing.T) {
	path := filepath.Join(t.TempDir(), LedgerName)
	l, _, _, _, err := openLedger(nil, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{Source: "void main() {}", Entry: "main", MaxIters: 10}
	for _, step := range []func() error{
		func() error { return l.admit("job-000001", spec) },
		func() error { return l.attempt("job-000001", 1) },
		func() error { return l.attempt("job-000001", 2) },
		func() error { return l.preempt("job-000001", 2) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.close(); err != nil {
		t.Fatal(err)
	}
	l2, jobs, order, _, err := openLedger(nil, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.close()
	j := jobs["job-000001"]
	if j == nil || j.done || j.attempts != 1 {
		t.Fatalf("preempted job folded to %+v, want pending with 1 attempt", j)
	}
	if got := pendingOrder(jobs, order); len(got) != 1 || got[0] != "job-000001" {
		t.Fatalf("pendingOrder = %v", got)
	}
}
