package alias

import (
	"predabs/internal/cast"
	"predabs/internal/form"
)

// MayAlias reports whether locations x and y (as logic terms, interpreted
// in function fn) may denote the same memory cell. It is conservative:
// unknown shapes answer true.
//
// Refinements over raw unification, mirroring the paper's use of alias
// information:
//   - two distinct named variables never alias;
//   - a sub-object of a named variable (s.f, a[i]) never aliases a
//     different variable's sub-objects;
//   - a variable whose address is never taken cannot be aliased by any
//     dereference;
//   - accesses through different field names never alias.
func (a *Analysis) MayAlias(fn string, x, y form.Term) bool {
	a.Queries++
	key := fn + "\x00" + x.String() + "\x00" + y.String()
	if v, ok := a.cache[key]; ok {
		return v
	}
	v := a.mayAlias(fn, x, y)
	a.cache[key] = v
	return v
}

func (a *Analysis) mayAlias(fn string, x, y form.Term) bool {
	if form.TermEq(x, y) {
		return true
	}
	xRoot, xDirect := directRoot(x)
	yRoot, yDirect := directRoot(y)
	// An array-typed parameter is a reference: its elements are not a
	// sub-object of a frame-local variable, so the never-alias shortcut
	// for distinct roots does not apply.
	if xDirect && xRoot != "" && a.isArrayParam(fn, xRoot) && !isPlainVar(x) {
		xDirect = false
	}
	if yDirect && yRoot != "" && a.isArrayParam(fn, yRoot) && !isPlainVar(y) {
		yDirect = false
	}

	switch {
	case xDirect && yDirect:
		if xRoot != yRoot {
			return false
		}
		return samePathMayAlias(x, y)
	case xDirect:
		return a.directVsIndirect(fn, xRoot, x, y)
	case yDirect:
		return a.directVsIndirect(fn, yRoot, y, x)
	}

	// Both indirect: different top-level field names cannot alias.
	if xf, ok := x.(form.Sel); ok {
		if yf, ok := y.(form.Sel); ok && xf.Field != yf.Field {
			return false
		}
	}
	cx := a.termCell(fn, x)
	cy := a.termCell(fn, y)
	if cx == nil || cy == nil {
		return true
	}
	return cx.find() == cy.find()
}

func isPlainVar(t form.Term) bool {
	_, ok := t.(form.Var)
	return ok
}

// isArrayParam reports whether name is an array-typed parameter of fn.
func (a *Analysis) isArrayParam(fn, name string) bool {
	f := a.res.Prog.Func(fn)
	if f == nil {
		return false
	}
	for _, p := range f.Params {
		if p.Name == name {
			_, isArr := p.Type.(cast.ArrayType)
			return isArr
		}
	}
	return false
}

// directRoot returns the root variable name of a location that is a direct
// sub-object of a named variable (no dereference on the spine).
func directRoot(t form.Term) (string, bool) {
	switch t := t.(type) {
	case form.Var:
		return t.Name, true
	case form.Sel:
		return directRoot(t.X)
	case form.Idx:
		return directRoot(t.X)
	}
	return "", false
}

// samePathMayAlias compares two direct locations rooted at the same
// variable: fields must match; array indexes may always coincide.
func samePathMayAlias(x, y form.Term) bool {
	switch x := x.(type) {
	case form.Var:
		_, ok := y.(form.Var)
		return ok // same root, both the whole variable
	case form.Sel:
		ys, ok := y.(form.Sel)
		if !ok || x.Field != ys.Field {
			return false
		}
		return samePathMayAlias(x.X, ys.X)
	case form.Idx:
		yi, ok := y.(form.Idx)
		if !ok {
			return false
		}
		return samePathMayAlias(x.X, yi.X)
	}
	return true
}

func (a *Analysis) directVsIndirect(fn, rootVar string, direct, indirect form.Term) bool {
	if !a.AddressTaken(fn, rootVar) {
		return false
	}
	cd := a.termCell(fn, direct)
	ci := a.termCell(fn, indirect)
	if cd == nil || ci == nil {
		return true
	}
	return cd.find() == ci.find()
}

// AddressTaken reports whether &name occurs anywhere in the program for
// the variable visible as name inside fn.
func (a *Analysis) AddressTaken(fn, name string) bool {
	key := scopeKey(fn, name)
	if _, isLocal := a.res.Info.FuncVars[fn][name]; !isLocal {
		if _, isGlobal := a.res.Info.GlobalVars[name]; isGlobal {
			key = scopeKey("", name)
		}
	}
	return a.addrTaken[key]
}

// termCell maps a location term to its abstract memory cell, or nil when
// the shape is unknown (callers must treat nil conservatively).
func (a *Analysis) termCell(fn string, t form.Term) *node {
	switch t := t.(type) {
	case form.Var:
		return a.varCell(fn, t.Name)
	case form.Deref:
		return a.termValue(fn, t.X)
	case form.Sel:
		base := a.termCell(fn, t.X)
		if base == nil {
			return nil
		}
		return field(base, t.Field)
	case form.Idx:
		// a[i]: array variable indexes its own element cell; a pointer
		// indexes the element cell of its target (logical model).
		if v, ok := t.X.(form.Var); ok {
			if vt, found := a.res.Info.VarType(fn, v.Name); found && cast.IsPointer(vt) {
				tgt := a.termValue(fn, t.X)
				if tgt == nil {
					return nil
				}
				return field(tgt, elemField)
			}
		}
		base := a.termCell(fn, t.X)
		if base == nil {
			return nil
		}
		return field(base, elemField)
	}
	return nil
}

// ReachableMayAlias reports whether loc may alias any memory cell
// reachable through (transitive) dereferences and field selections from
// the value of pointer expression arg. Used for the paper's post-call
// update set E_u: a callee can modify anything reachable from its actuals.
func (a *Analysis) ReachableMayAlias(fn string, loc, arg form.Term) bool {
	// A direct sub-object of a variable whose address is never taken is
	// unreachable through the heap.
	if root, direct := directRoot(loc); direct && !a.AddressTaken(fn, root) {
		return false
	}
	start := a.termValue(fn, arg)
	if start == nil {
		return false // non-pointer argument reaches nothing
	}
	lc := a.termCell(fn, loc)
	if lc == nil {
		return true // unknown location shape: be conservative
	}
	target := lc.find()
	// BFS over points-to targets and field children.
	visited := map[*node]bool{}
	queue := []*node{start.find()}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		n = n.find()
		if visited[n] {
			continue
		}
		visited[n] = true
		if n == target {
			return true
		}
		if n.pts != nil {
			queue = append(queue, n.pts.find())
		}
		for _, c := range n.fields {
			queue = append(queue, c.find())
		}
	}
	return false
}

// termValue maps a pointer-valued term to the cell class it may point to.
func (a *Analysis) termValue(fn string, t form.Term) *node {
	switch t := t.(type) {
	case form.Num:
		return nil // NULL points nowhere
	case form.AddrOf:
		return a.termCell(fn, t.X)
	case form.Var, form.Deref, form.Sel, form.Idx:
		cell := a.termCell(fn, t)
		if cell == nil {
			return nil
		}
		return pts(cell)
	case form.Arith:
		if v := a.termValue(fn, t.X); v != nil {
			return v
		}
		return a.termValue(fn, t.Y)
	}
	return nil
}
