package alias

import (
	"testing"

	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/form"
)

func mustNormalize(t *testing.T, src string) *cnorm.Result {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return res
}

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	prog, err := cparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return Analyze(res)
}

func v(name string) form.Term     { return form.Var{Name: name} }
func deref(t form.Term) form.Term { return form.Deref{X: t} }
func fld(t form.Term, f string) form.Term {
	return form.Sel{X: form.Deref{X: t}, Field: f}
}

const partitionSrc = `
typedef struct cell { int val; struct cell* next; } *list;
list partition(list *l, int v) {
  list curr, prev, newl, nextCurr;
  curr = *l;
  prev = NULL;
  newl = NULL;
  while (curr != NULL) {
    nextCurr = curr->next;
    if (curr->val > v) {
      if (prev != NULL) { prev->next = nextCurr; }
      if (curr == *l) { *l = nextCurr; }
      curr->next = newl;
      newl = curr;
    } else {
      prev = curr;
    }
    curr = nextCurr;
  }
  return newl;
}
`

// The paper (Section 2.1): since none of curr, prev, next, newl has its
// address taken, none of these variables can be aliased by any other
// expression in the procedure.
func TestPartitionVarsNotAliased(t *testing.T) {
	a := analyze(t, partitionSrc)
	vars := []string{"curr", "prev", "nextCurr", "newl"}
	for _, name := range vars {
		if a.AddressTaken("partition", name) {
			t.Errorf("%s reported address-taken", name)
		}
		// No dereference can alias the variable cell.
		if a.MayAlias("partition", v(name), deref(v("l"))) {
			t.Errorf("%s may-aliases *l", name)
		}
		if a.MayAlias("partition", v(name), fld(v("curr"), "next")) {
			t.Errorf("%s may-aliases curr->next", name)
		}
		for _, other := range vars {
			if other != name && a.MayAlias("partition", v(name), v(other)) {
				t.Errorf("%s may-aliases %s", name, other)
			}
		}
	}
}

// *prev and *curr point into the same list, so the flow-insensitive
// analysis must say they may alias (the paper then refines this with
// predicates).
func TestPartitionCellsMayAlias(t *testing.T) {
	a := analyze(t, partitionSrc)
	if !a.MayAlias("partition", deref(v("curr")), deref(v("prev"))) {
		t.Error("*curr and *prev should may-alias")
	}
	if !a.MayAlias("partition", fld(v("curr"), "val"), fld(v("prev"), "val")) {
		t.Error("curr->val and prev->val should may-alias")
	}
}

func TestDifferentFieldsNeverAlias(t *testing.T) {
	a := analyze(t, partitionSrc)
	if a.MayAlias("partition", fld(v("curr"), "val"), fld(v("prev"), "next")) {
		t.Error("curr->val and prev->next must not alias (different fields)")
	}
}

func TestAddressTakenEnablesAliasing(t *testing.T) {
	a := analyze(t, `
void f(void) {
  int x;
  int y;
  int* p;
  p = &x;
  *p = 3;
  y = 0;
}
`)
	if !a.AddressTaken("f", "x") {
		t.Fatal("x is address-taken")
	}
	if !a.MayAlias("f", v("x"), deref(v("p"))) {
		t.Error("*p may alias x")
	}
	if a.MayAlias("f", v("y"), deref(v("p"))) {
		t.Error("*p must not alias y (address never taken)")
	}
}

func TestUnrelatedPointersDoNotAlias(t *testing.T) {
	a := analyze(t, `
void f(void) {
  int x;
  int z;
  int* p;
  int* q;
  p = &x;
  q = &z;
  *p = 1;
  *q = 2;
}
`)
	if a.MayAlias("f", deref(v("p")), deref(v("q"))) {
		t.Error("*p and *q point to different variables")
	}
}

func TestPointerCopyAliases(t *testing.T) {
	a := analyze(t, `
void f(void) {
  int x;
  int* p;
  int* q;
  p = &x;
  q = p;
  *q = 2;
}
`)
	if !a.MayAlias("f", deref(v("p")), deref(v("q"))) {
		t.Error("*p and *q alias after q = p")
	}
	if !a.MayAlias("f", v("x"), deref(v("q"))) {
		t.Error("*q aliases x")
	}
}

func TestInterproceduralFlow(t *testing.T) {
	a := analyze(t, `
int g;
void callee(int* p) { *p = 1; }
void f(void) {
  callee(&g);
}
`)
	if !a.MayAlias("callee", deref(v("p")), v("g")) {
		t.Error("*p aliases global g through the call")
	}
}

func TestGlobalsVsLocalsScoping(t *testing.T) {
	a := analyze(t, `
int g;
void f(void) {
  int g;
  int* p;
  p = &g;
  *p = 1;
}
void h(void) {
  int* q;
  q = &g;
  *q = 2;
}
`)
	// f's p points at the local g, h's q at the global g.
	if a.MayAlias("h", deref(v("q")), v("g")) != true {
		t.Error("*q aliases global g")
	}
	if !a.AddressTaken("f", "g") {
		t.Error("local g in f is address-taken")
	}
	if !a.AddressTaken("h", "g") {
		t.Error("global g is address-taken (in h's view)")
	}
}

func TestArrayElements(t *testing.T) {
	a := analyze(t, `
void f(int a[], int b[], int i, int j) {
  a[i] = 1;
  b[j] = 2;
}
`)
	ai := form.Idx{X: v("a"), I: v("i")}
	aj := form.Idx{X: v("a"), I: v("j")}
	bj := form.Idx{X: v("b"), I: v("j")}
	if !a.MayAlias("f", ai, aj) {
		t.Error("a[i] and a[j] may alias")
	}
	// f has no callers in the program, so an unknown caller may pass
	// overlapping arrays: a[i] and b[j] must may-alias (open soundness).
	if !a.MayAlias("f", ai, bj) {
		t.Error("a[i] and b[j] may overlap for an unknown caller")
	}
}

func TestListNextChainAliases(t *testing.T) {
	a := analyze(t, `
struct node { int mark; struct node* next; };
void mark(struct node* list) {
  struct node* this;
  struct node* prev;
  struct node* tmp;
  prev = NULL;
  this = list;
  while (this != NULL) {
    tmp = prev;
    prev = this;
    this = this->next;
    prev->next = tmp;
  }
}
`)
	if !a.MayAlias("mark", fld(v("this"), "next"), fld(v("prev"), "next")) {
		t.Error("this->next and prev->next may alias")
	}
	if a.MayAlias("mark", fld(v("this"), "next"), fld(v("prev"), "mark")) {
		t.Error("next/mark fields must not alias")
	}
	if a.MayAlias("mark", v("this"), fld(v("prev"), "next")) {
		t.Error("variable this (address never taken) aliased by prev->next")
	}
}

func TestQueryCaching(t *testing.T) {
	a := analyze(t, partitionSrc)
	a.MayAlias("partition", v("curr"), v("prev"))
	n := a.Queries
	a.MayAlias("partition", v("curr"), v("prev"))
	if a.Queries != n+1 {
		t.Fatalf("query counter should still increment: %d -> %d", n, a.Queries)
	}
}
