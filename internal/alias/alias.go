// Package alias implements a flow-insensitive, context-insensitive,
// unification-based may-alias analysis over MiniC programs, playing the
// role of Das's points-to algorithm in the C2bp paper (Section 4.2): it
// prunes Morris-axiom alias case splits in weakest preconditions and
// limits which predicates an assignment or call can affect.
//
// The model is Steensgaard-style with field-sensitive abstract objects:
// every variable has a cell node; every cell has at most one points-to
// target (unified on conflicts) and a lazily created child node per field.
// Two locations may alias iff their cell nodes share a union-find
// representative, with the classic refinements that two distinct named
// variables never alias and a variable whose address is never taken cannot
// be aliased by any dereference.
package alias

import (
	"predabs/internal/cast"
	"predabs/internal/cnorm"
)

// elemField is the pseudo-field used for array element cells.
const elemField = "$elem"

// node is an abstract memory cell in the Steensgaard graph.
type node struct {
	parent *node
	pts    *node
	fields map[string]*node
	// isVarCell marks cells that are the direct cell of a named variable
	// (used only for diagnostics).
	name string
}

func (n *node) find() *node {
	root := n
	for root.parent != nil {
		root = root.parent
	}
	for n.parent != nil {
		next := n.parent
		n.parent = root
		n = next
	}
	return root
}

// Analysis is the result of running the points-to analysis on a program.
type Analysis struct {
	res *cnorm.Result
	// vars maps scoped variable keys ("fn\x00name" or "\x00name") to cells.
	vars map[string]*node
	// addrTaken records variables whose address is taken, per scope key.
	addrTaken map[string]bool
	// Queries counts MayAlias queries (cache effectiveness metric).
	Queries int
	cache   map[string]bool
}

// Options configures the analysis.
type Options struct {
	// OpenCallers (the sound default) assumes functions without callers in
	// the program can be invoked by unknown code whose pointer arguments
	// alias each other and pointer globals. Disabling it reproduces the
	// paper's auxiliary-variable ("ghost observer") idiom, where variables
	// like Figure 3's h are exempted from aliasing with the heap they
	// observe; see EXPERIMENTS.md for the soundness discussion.
	OpenCallers bool
}

// Analyze runs the analysis over the normalized program with the sound
// default options.
func Analyze(res *cnorm.Result) *Analysis {
	return AnalyzeOpts(res, Options{OpenCallers: true})
}

// AnalyzeOpts runs the analysis with explicit options.
func AnalyzeOpts(res *cnorm.Result, opts Options) *Analysis {
	a := &Analysis{
		res:       res,
		vars:      map[string]*node{},
		addrTaken: map[string]bool{},
		cache:     map[string]bool{},
	}
	for _, f := range res.Prog.Funcs {
		a.processStmt(f.Name, f.Body)
	}
	if opts.OpenCallers {
		a.openFunctionParams()
	}
	return a
}

// openFunctionParams makes the analysis sound for open programs: a
// function with no callers inside the program can be an entry point, and
// an unknown caller may pass pointer arguments that alias each other and
// any pointer global (e.g. Figure 3's mark(list, h), where h may point
// into the list). The points-to targets of such parameters are unified
// pairwise and with pointer globals. Self-recursion does not count as a
// caller.
func (a *Analysis) openFunctionParams() {
	called := map[string]bool{}
	for _, f := range a.res.Prog.Funcs {
		var walk func(s cast.Stmt)
		scanCalls := func(e cast.Expr) {
			if c, ok := e.(*cast.Call); ok && c.Name != f.Name {
				called[c.Name] = true
			}
		}
		walk = func(s cast.Stmt) {
			switch s := s.(type) {
			case *cast.Block:
				for _, sub := range s.Stmts {
					walk(sub)
				}
			case *cast.AssignStmt:
				scanCalls(s.Rhs)
			case *cast.ExprStmt:
				scanCalls(s.X)
			case *cast.IfStmt:
				walk(s.Then)
				if s.Else != nil {
					walk(s.Else)
				}
			case *cast.WhileStmt:
				walk(s.Body)
			case *cast.LabeledStmt:
				walk(s.Stmt)
			}
		}
		walk(f.Body)
	}

	// Pointer globals participate in every open function's alias class.
	var globalCells []*node
	for name, t := range a.res.Info.GlobalVars {
		if isPointerish(t) {
			globalCells = append(globalCells, a.varCell("", name))
		}
	}
	for _, f := range a.res.Prog.Funcs {
		if called[f.Name] {
			continue
		}
		// Collect the "content" node of each pointer-ish parameter: the
		// points-to target for pointers, the element cell for arrays (an
		// unknown caller may pass overlapping arrays).
		var contents []*node
		for _, p := range f.Params {
			cell := a.varCell(f.Name, p.Name)
			switch p.Type.(type) {
			case cast.PointerType:
				contents = append(contents, pts(cell))
			case cast.ArrayType:
				contents = append(contents, field(cell, elemField))
			}
		}
		for _, g := range globalCells {
			contents = append(contents, pts(g))
		}
		for i := 1; i < len(contents); i++ {
			unify(contents[0], contents[i])
		}
	}
}

func isPointerish(t cast.Type) bool {
	switch t.(type) {
	case cast.PointerType, cast.ArrayType:
		return true
	}
	return false
}

func scopeKey(fn, name string) string { return fn + "\x00" + name }

// varCell returns the cell of variable name as seen from function fn,
// resolving locals before globals.
func (a *Analysis) varCell(fn, name string) *node {
	key := scopeKey(fn, name)
	if _, isLocal := a.res.Info.FuncVars[fn][name]; !isLocal {
		if _, isGlobal := a.res.Info.GlobalVars[name]; isGlobal {
			key = scopeKey("", name)
		}
	}
	if n, ok := a.vars[key]; ok {
		return n
	}
	n := &node{name: name}
	a.vars[key] = n
	return n
}

func (a *Analysis) markAddrTaken(fn, name string) {
	key := scopeKey(fn, name)
	if _, isLocal := a.res.Info.FuncVars[fn][name]; !isLocal {
		if _, isGlobal := a.res.Info.GlobalVars[name]; isGlobal {
			key = scopeKey("", name)
		}
	}
	a.addrTaken[key] = true
}

// pts returns (creating if needed) the points-to target of n's class.
func pts(n *node) *node {
	r := n.find()
	if r.pts == nil {
		r.pts = &node{}
	}
	return r.pts.find()
}

// field returns (creating if needed) the field child of n's class.
func field(n *node, f string) *node {
	r := n.find()
	if r.fields == nil {
		r.fields = map[string]*node{}
	}
	if c, ok := r.fields[f]; ok {
		return c.find()
	}
	c := &node{}
	r.fields[f] = c
	return c
}

// unify merges the classes of x and y, recursively merging points-to
// targets and field children. Cycles terminate because parents are linked
// before recursion.
func unify(x, y *node) {
	x, y = x.find(), y.find()
	if x == y {
		return
	}
	y.parent = x
	// Merge points-to targets.
	if x.pts == nil {
		x.pts = y.pts
	} else if y.pts != nil {
		unify(x.pts, y.pts)
	}
	// Merge fields.
	if x.fields == nil {
		x.fields = y.fields
	} else if y.fields != nil {
		for f, c := range y.fields {
			if xc, ok := x.fields[f]; ok {
				unify(xc, c)
			} else {
				x.fields[f] = c
			}
		}
	}
	y.pts = nil
	y.fields = nil
}

// cellOf returns the memory cell denoted by a location expression, or nil
// when the expression is not a location (e.g. arithmetic).
func (a *Analysis) cellOf(fn string, e cast.Expr) *node {
	switch e := e.(type) {
	case *cast.VarRef:
		return a.varCell(fn, e.Name)
	case *cast.Unary:
		switch e.Op {
		case cast.Deref_:
			base := a.cellOf(fn, e.X)
			if base == nil {
				return nil
			}
			return pts(base)
		}
		return nil
	case *cast.Field:
		if e.Arrow {
			base := a.cellOf(fn, e.X)
			if base == nil {
				return nil
			}
			return field(pts(base), e.Name)
		}
		base := a.cellOf(fn, e.X)
		if base == nil {
			return nil
		}
		return field(base, e.Name)
	case *cast.Index:
		base := a.cellOf(fn, e.X)
		if base == nil {
			return nil
		}
		t := a.res.Info.TypeOf(e.X)
		if cast.IsPointer(t) {
			// p[i] ≡ *(p+i) ≡ *p under the logical model.
			return field(pts(base), elemField)
		}
		return field(base, elemField)
	}
	return nil
}

// valueTarget returns the cell class that the value of pointer expression e
// may point to (creating fresh cells as needed), or nil for non-pointer or
// unknown shapes.
func (a *Analysis) valueTarget(fn string, e cast.Expr) *node {
	switch e := e.(type) {
	case *cast.NullLit, *cast.IntLit:
		return nil
	case *cast.Unary:
		if e.Op == cast.AddrOf {
			// The value of &x is the cell of x itself.
			a.markTakenIn(fn, e.X)
			return a.cellOf(fn, e.X)
		}
	case *cast.Binary:
		// Pointer arithmetic was collapsed by the normalizer; any residue
		// is treated via its pointer operand.
		if t := a.valueTarget(fn, e.X); t != nil {
			return t
		}
		return a.valueTarget(fn, e.Y)
	case *cast.Call:
		callee := a.res.Prog.Func(e.Name)
		if callee == nil {
			return nil
		}
		// Value flows out of the callee's return variable.
		if _, void := callee.Ret.(cast.VoidType); void {
			return nil
		}
		retCell := a.varCell(e.Name, cnorm.RetVarName)
		return pts(retCell)
	}
	if cell := a.cellOf(fn, e); cell != nil {
		// Array-typed expressions decay to a pointer to their element cell.
		if at, ok := a.res.Info.TypeOf(e).(cast.ArrayType); ok {
			_ = at
			return field(cell, elemField)
		}
		return pts(cell)
	}
	return nil
}

func (a *Analysis) markTakenIn(fn string, e cast.Expr) {
	if v, ok := e.(*cast.VarRef); ok {
		a.markAddrTaken(fn, v.Name)
	}
}

// flowInto records the assignment target := source-value.
func (a *Analysis) flowInto(fn string, lhsCell *node, rhs cast.Expr) {
	if lhsCell == nil {
		return
	}
	src := a.valueTarget(fn, rhs)
	if src == nil {
		return
	}
	unify(pts(lhsCell), src)
}

func (a *Analysis) processStmt(fn string, s cast.Stmt) {
	switch s := s.(type) {
	case *cast.Block:
		for _, sub := range s.Stmts {
			a.processStmt(fn, sub)
		}
	case *cast.AssignStmt:
		lhsT := a.res.Info.TypeOf(s.Lhs)
		lhsCell := a.cellOf(fn, s.Lhs)
		if call, ok := s.Rhs.(*cast.Call); ok {
			a.processCall(fn, call)
		}
		switch lhsT.(type) {
		case cast.PointerType, cast.ArrayType:
			a.flowInto(fn, lhsCell, s.Rhs)
		case cast.StructType:
			// Whole-struct assignment: conservatively merge the cells.
			if rhsCell := a.cellOf(fn, s.Rhs); rhsCell != nil && lhsCell != nil {
				unify(lhsCell, rhsCell)
			}
		default:
			// Integer assignment: the address-of operator can still smuggle
			// a pointer value through an int; handle &x on the RHS anyway.
			a.scanAddrTaken(fn, s.Rhs)
		}
	case *cast.ExprStmt:
		if call, ok := s.X.(*cast.Call); ok {
			a.processCall(fn, call)
		}
	case *cast.IfStmt:
		a.scanAddrTaken(fn, s.Cond)
		a.processStmt(fn, s.Then)
		if s.Else != nil {
			a.processStmt(fn, s.Else)
		}
	case *cast.WhileStmt:
		a.scanAddrTaken(fn, s.Cond)
		a.processStmt(fn, s.Body)
	case *cast.LabeledStmt:
		a.processStmt(fn, s.Stmt)
	case *cast.AssertStmt:
		a.scanAddrTaken(fn, s.X)
	case *cast.AssumeStmt:
		a.scanAddrTaken(fn, s.X)
	}
}

// processCall unifies arguments with parameters (call-by-value).
func (a *Analysis) processCall(fn string, c *cast.Call) {
	callee := a.res.Prog.Func(c.Name)
	if callee == nil {
		return
	}
	for i, arg := range c.Args {
		if i >= len(callee.Params) {
			break
		}
		p := callee.Params[i]
		switch p.Type.(type) {
		case cast.PointerType, cast.ArrayType:
			// Argument value (caller scope) flows into the parameter cell
			// (callee scope): call-by-value pointer passing.
			pCell := a.varCell(c.Name, p.Name)
			if src := a.valueTarget(fn, arg); src != nil {
				unify(pts(pCell), src)
			}
		default:
			a.scanAddrTaken(fn, arg)
		}
	}
}

func (a *Analysis) scanAddrTaken(fn string, e cast.Expr) {
	switch e := e.(type) {
	case *cast.Unary:
		if e.Op == cast.AddrOf {
			a.markTakenIn(fn, e.X)
		}
		a.scanAddrTaken(fn, e.X)
	case *cast.Binary:
		a.scanAddrTaken(fn, e.X)
		a.scanAddrTaken(fn, e.Y)
	case *cast.Field:
		a.scanAddrTaken(fn, e.X)
	case *cast.Index:
		a.scanAddrTaken(fn, e.X)
		a.scanAddrTaken(fn, e.I)
	case *cast.Call:
		for _, arg := range e.Args {
			a.scanAddrTaken(fn, arg)
		}
	}
}
