package alias

import (
	"testing"

	"predabs/internal/form"
)

func TestReachableMayAliasDirect(t *testing.T) {
	a := analyze(t, `
struct cell { int val; struct cell* next; };
void callee(struct cell* p) {
  p->val = 1;
}
void f(struct cell* c) {
  callee(c);
}
`)
	// c->val is reachable from the actual c.
	if !a.ReachableMayAlias("f", fld(v("c"), "val"), v("c")) {
		t.Error("c->val reachable from c")
	}
	// A plain local is not reachable through the heap.
	if a.ReachableMayAlias("f", v("c"), v("c")) {
		t.Error("the pointer variable itself is not heap-reachable")
	}
}

func TestReachableMayAliasTransitive(t *testing.T) {
	a := analyze(t, `
struct cell { int val; struct cell* next; };
void callee(struct cell* p) {
  struct cell* q;
  q = p->next;
  q->val = 1;
}
void f(struct cell* c) {
  callee(c);
}
`)
	// Two hops: c->next->val.
	loc := form.Sel{X: form.Deref{X: form.Var{Name: "q"}}, Field: "val"}
	if !a.ReachableMayAlias("callee", loc, v("p")) {
		t.Error("q->val reachable from p (q = p->next)")
	}
}

func TestReachableMayAliasIntArgReachesNothing(t *testing.T) {
	a := analyze(t, `
void callee(int x) { }
void f(int n, int* p) {
  callee(n);
  *p = 1;
}
`)
	if a.ReachableMayAlias("f", deref(v("p")), v("n")) {
		t.Error("an int argument reaches no memory")
	}
}

func TestReachableMayAliasSeparateHeaps(t *testing.T) {
	a := analyze(t, `
struct cell { int val; struct cell* next; };
void takeBoth(struct cell* a1, struct cell* b1) {
  a1->val = 1;
  b1->val = 2;
}
void g(void) {
  struct cell n1;
  struct cell n2;
  takeBoth(&n1, &n2);
}
`)
	// takeBoth has a caller inside the program, so its parameters keep
	// their precise, distinct points-to sets: a1's field is reachable from
	// a1 but not from b1.
	if !a.ReachableMayAlias("takeBoth", fld(v("a1"), "val"), v("a1")) {
		t.Error("a1->val reachable from a1")
	}
	if a.ReachableMayAlias("takeBoth", fld(v("a1"), "val"), v("b1")) {
		t.Error("distinct argument heaps must stay separate for called functions")
	}
}

func TestOpenCallersOffRestoresGhostBehavior(t *testing.T) {
	src := `
struct node { int mark; struct node* next; };
void mark(struct node* list, struct node* h) {
  struct node* prev;
  prev = list;
  prev->next = NULL;
}
`
	prog := mustNormalize(t, src)
	sound := AnalyzeOpts(prog, Options{OpenCallers: true})
	ghost := AnalyzeOpts(prog, Options{OpenCallers: false})
	hn := fld(v("h"), "next")
	pn := fld(v("prev"), "next")
	if !sound.MayAlias("mark", hn, pn) {
		t.Error("sound mode: h->next may alias prev->next")
	}
	if ghost.MayAlias("mark", hn, pn) {
		t.Error("ghost mode: h is an unaliased observer")
	}
}
