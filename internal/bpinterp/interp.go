// Package bpinterp executes boolean programs concretely, resolving
// nondeterminism through a pluggable chooser. It serves as a reference
// semantics: property tests cross-check Bebop's reachability results and
// the soundness of the C2bp abstraction against interpreted runs.
package bpinterp

import (
	"fmt"
	"math/rand"

	"predabs/internal/bp"
)

// Chooser resolves nondeterminism: Choose(n) returns a value in [0, n).
type Chooser interface {
	Choose(n int) int
}

// RandChooser resolves nondeterminism uniformly at random.
type RandChooser struct{ R *rand.Rand }

// Choose returns a uniform value in [0, n).
func (c RandChooser) Choose(n int) int { return c.R.Intn(n) }

// ScriptChooser replays a fixed sequence of choices (then zeroes).
type ScriptChooser struct {
	Script []int
	pos    int
}

// Choose returns the next scripted choice.
func (c *ScriptChooser) Choose(n int) int {
	if c.pos >= len(c.Script) {
		return 0
	}
	v := c.Script[c.pos]
	c.pos++
	if v >= n {
		v = n - 1
	}
	return v
}

// Status describes how a run ended.
type Status int

// Run outcomes.
const (
	// Completed: the entry procedure returned.
	Completed Status = iota
	// Blocked: an assume or enforce filtered the execution out.
	Blocked
	// AssertFailed: an assert evaluated to false.
	AssertFailed
	// OutOfFuel: the step budget was exhausted (possible livelock).
	OutOfFuel
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case Blocked:
		return "blocked"
	case AssertFailed:
		return "assert-failed"
	case OutOfFuel:
		return "out-of-fuel"
	}
	return "?"
}

// TraceEntry records one executed statement.
type TraceEntry struct {
	Proc string
	Stmt int
}

// Result is the outcome of a run.
type Result struct {
	Status Status
	// FailProc/FailStmt locate a failed assert.
	FailProc string
	FailStmt int
	Steps    int
	Trace    []TraceEntry
	// Globals holds the final global values (Completed runs).
	Globals map[string]bool
}

// Interp executes a resolved boolean program.
type Interp struct {
	Prog     *bp.Program
	Choice   Chooser
	MaxSteps int
	// RecordTrace enables trace collection.
	RecordTrace bool

	steps  int
	trace  []TraceEntry
	global map[string]bool
}

type frame struct {
	proc *bp.Proc
	vars map[string]bool
}

// Run executes the entry procedure with nondeterministic globals, locals
// and parameters.
func (in *Interp) Run(entry string) (*Result, error) {
	pr := in.Prog.Proc(entry)
	if pr == nil {
		return nil, fmt.Errorf("bpinterp: no procedure %q", entry)
	}
	if in.MaxSteps == 0 {
		in.MaxSteps = 100000
	}
	in.steps = 0
	in.trace = nil
	in.global = map[string]bool{}
	for _, g := range in.Prog.Globals {
		in.global[g] = in.nondet()
	}
	args := make([]bool, len(pr.Params))
	for i := range args {
		args[i] = in.nondet()
	}
	status, _, failP, failS := in.call(pr, args)
	res := &Result{
		Status:   status,
		FailProc: failP,
		FailStmt: failS,
		Steps:    in.steps,
		Trace:    in.trace,
		Globals:  in.global,
	}
	return res, nil
}

func (in *Interp) nondet() bool { return in.Choice.Choose(2) == 1 }

// call runs a procedure to completion. It returns the status, the return
// values, and the failure location for AssertFailed.
func (in *Interp) call(pr *bp.Proc, args []bool) (Status, []bool, string, int) {
	f := &frame{proc: pr, vars: map[string]bool{}}
	for i, p := range pr.Params {
		f.vars[p] = args[i]
	}
	for _, l := range pr.Locals {
		f.vars[l] = in.nondet()
	}
	// enforce must hold in the initial state.
	if pr.Enforce != nil && !in.evalTotal(f, pr.Enforce) {
		return Blocked, nil, "", 0
	}

	pc := 0
	for {
		if pc >= len(pr.Stmts) {
			// Falling off the end of a void procedure returns.
			return Completed, nil, "", 0
		}
		in.steps++
		if in.steps > in.MaxSteps {
			return OutOfFuel, nil, "", 0
		}
		s := pr.Stmts[pc]
		if in.RecordTrace {
			in.trace = append(in.trace, TraceEntry{Proc: pr.Name, Stmt: pc})
		}
		switch s.Kind {
		case bp.Skip:
			pc++
		case bp.Assign:
			vals := make([]bool, len(s.Rhs))
			for i, e := range s.Rhs {
				vals[i] = in.eval(f, e)
			}
			for i, v := range s.Lhs {
				in.set(f, v, vals[i])
			}
			if pr.Enforce != nil && !in.evalTotal(f, pr.Enforce) {
				return Blocked, nil, "", 0
			}
			pc++
		case bp.Assume:
			if !in.eval(f, s.Cond) {
				return Blocked, nil, "", 0
			}
			pc++
		case bp.Assert:
			if !in.eval(f, s.Cond) {
				return AssertFailed, nil, pr.Name, pc
			}
			pc++
		case bp.Goto:
			tgt := s.Targets[in.Choice.Choose(len(s.Targets))]
			idx, ok := pr.LabelIndex(tgt)
			if !ok {
				return Blocked, nil, "", 0
			}
			pc = idx
		case bp.Call:
			callee := in.Prog.Proc(s.Callee)
			argv := make([]bool, len(s.Args))
			for i, e := range s.Args {
				argv[i] = in.eval(f, e)
			}
			st, rets, fp, fs := in.call(callee, argv)
			if st != Completed {
				return st, nil, fp, fs
			}
			for i, v := range s.CallLhs {
				in.set(f, v, rets[i])
			}
			if pr.Enforce != nil && !in.evalTotal(f, pr.Enforce) {
				return Blocked, nil, "", 0
			}
			pc++
		case bp.Return:
			vals := make([]bool, len(s.RetVals))
			for i, e := range s.RetVals {
				vals[i] = in.eval(f, e)
			}
			return Completed, vals, "", 0
		default:
			pc++
		}
	}
}

func (in *Interp) set(f *frame, name string, val bool) {
	if _, ok := f.vars[name]; ok {
		f.vars[name] = val
		return
	}
	in.global[name] = val
}

func (in *Interp) get(f *frame, name string) bool {
	if v, ok := f.vars[name]; ok {
		return v
	}
	return in.global[name]
}

// eval evaluates an expression, resolving * and unresolved choose
// nondeterministically.
func (in *Interp) eval(f *frame, e bp.Expr) bool {
	switch e := e.(type) {
	case bp.Const:
		return e.Val
	case bp.Ref:
		return in.get(f, e.Name)
	case bp.Unknown:
		return in.nondet()
	case bp.Not:
		return !in.eval(f, e.X)
	case bp.Bin:
		x := in.eval(f, e.X)
		y := in.eval(f, e.Y)
		switch e.Op {
		case bp.And:
			return x && y
		case bp.Or:
			return x || y
		case bp.Implies:
			return !x || y
		case bp.Iff:
			return x == y
		}
	case bp.Choose:
		if in.eval(f, e.Pos) {
			return true
		}
		if in.eval(f, e.Neg) {
			return false
		}
		return in.nondet()
	}
	return false
}

// evalTotal evaluates a deterministic expression (enforce invariants must
// not contain * or choose).
func (in *Interp) evalTotal(f *frame, e bp.Expr) bool {
	return in.eval(f, e)
}
