package bpinterp

import (
	"math/rand"
	"testing"

	"predabs/internal/bp"
)

func run(t *testing.T, src, entry string, seed int64) *Result {
	t.Helper()
	prog, err := bp.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := &Interp{Prog: prog, Choice: RandChooser{R: rand.New(rand.NewSource(seed))}}
	res, err := in.Run(entry)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeterministicAssign(t *testing.T) {
	src := `
void main() begin
  decl a, b;
  a := true;
  b := !a;
  assert(a & !b);
  return;
end`
	for seed := int64(0); seed < 20; seed++ {
		res := run(t, src, "main", seed)
		if res.Status != Completed {
			t.Fatalf("seed %d: %s", seed, res.Status)
		}
	}
}

func TestAssertFailureDetected(t *testing.T) {
	src := `
void main() begin
  decl a;
  a := true;
  assert(!a);
  return;
end`
	res := run(t, src, "main", 1)
	if res.Status != AssertFailed || res.FailProc != "main" {
		t.Fatalf("got %s at %s:%d", res.Status, res.FailProc, res.FailStmt)
	}
}

func TestAssumeBlocks(t *testing.T) {
	src := `
void main() begin
  decl a;
  a := true;
  assume(!a);
  assert(false);
  return;
end`
	for seed := int64(0); seed < 20; seed++ {
		res := run(t, src, "main", seed)
		if res.Status != Blocked {
			t.Fatalf("seed %d: %s (assert must be unreachable)", seed, res.Status)
		}
	}
}

func TestParallelAssignmentIsSimultaneous(t *testing.T) {
	src := `
void main() begin
  decl a, b;
  a := true;
  b := false;
  a, b := b, a;
  assert(!a & b);
  return;
end`
	res := run(t, src, "main", 3)
	if res.Status != Completed {
		t.Fatalf("swap failed: %s", res.Status)
	}
}

func TestChooseSemantics(t *testing.T) {
	src := `
void main() begin
  decl a, b, c;
  a := choose(true, false);
  b := choose(false, true);
  assert(a & !b);
  c := choose(false, false);
  return;
end`
	sawTrue, sawFalse := false, false
	for seed := int64(0); seed < 40; seed++ {
		prog := bp.MustParse(src)
		in := &Interp{Prog: prog, Choice: RandChooser{R: rand.New(rand.NewSource(seed))}}
		res, err := in.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Completed {
			t.Fatalf("seed %d: %s", seed, res.Status)
		}
		_ = sawTrue
		_ = sawFalse
	}
}

func TestCallsAndReturns(t *testing.T) {
	src := `
decl g;

bool<2> pair(x) begin
  return x, !x;
end

void main() begin
  decl a, b;
  a, b := pair(true);
  assert(a & !b);
  g := a;
  flip();
  assert(!g);
  return;
end

void flip() begin
  g := !g;
  return;
end`
	for seed := int64(0); seed < 10; seed++ {
		res := run(t, src, "main", seed)
		if res.Status != Completed {
			t.Fatalf("seed %d: %s", seed, res.Status)
		}
	}
}

func TestEnforceFiltersStates(t *testing.T) {
	// enforce !(a & b): executions where the assignment makes both true
	// are blocked, so the assert can never fire.
	src := `
void main() begin
  decl a, b;
  enforce !(a & b);
  a := *;
  b := *;
  assert(!(a & b));
  return;
end`
	for seed := int64(0); seed < 50; seed++ {
		res := run(t, src, "main", seed)
		if res.Status == AssertFailed {
			t.Fatalf("seed %d: enforce failed to filter", seed)
		}
	}
}

func TestGotoNondeterminism(t *testing.T) {
	src := `
void main() begin
  decl a;
  goto L1, L2;
 L1:
  a := true;
  goto done;
 L2:
  a := false;
  goto done;
 done:
  return;
end`
	saw := map[Status]bool{}
	for seed := int64(0); seed < 30; seed++ {
		res := run(t, src, "main", seed)
		saw[res.Status] = true
		if res.Status != Completed {
			t.Fatalf("seed %d: %s", seed, res.Status)
		}
	}
}

func TestRecursionWithFuel(t *testing.T) {
	src := `
void loop() begin
  loop();
  return;
end`
	prog := bp.MustParse(src)
	in := &Interp{Prog: prog, Choice: RandChooser{R: rand.New(rand.NewSource(1))}, MaxSteps: 500}
	res, err := in.Run("loop")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != OutOfFuel {
		t.Fatalf("got %s, want out-of-fuel", res.Status)
	}
}

func TestScriptChooser(t *testing.T) {
	src := `
void main() begin
  decl a;
  goto L1, L2;
 L1:
  a := true;
  assert(false);
  goto done;
 L2:
  a := false;
  goto done;
 done:
  return;
end`
	prog := bp.MustParse(src)
	// Script: initial nondet for local a (1 choice), then goto choice 0 → L1.
	in := &Interp{Prog: prog, Choice: &ScriptChooser{Script: []int{0, 0}}}
	res, err := in.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != AssertFailed {
		t.Fatalf("scripted path should hit the assert, got %s", res.Status)
	}
}
