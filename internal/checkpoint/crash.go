package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// CrashEnv names the test-only environment variable that kills the
// process at a chosen commit point, for the kill/resume chaos harness
// (internal/faultinject). Values:
//
//	"N"       — commit iteration record N fully (write + fsync), then
//	            SIGKILL the process: the journal ends on a good record.
//	"N:torn"  — write only a prefix of iteration record N's frame, fsync
//	            that, then SIGKILL: the journal ends on a torn record
//	            that replay must truncate.
//
// SIGKILL (not exit) so no deferred cleanup runs — the on-disk state is
// exactly what a power cut or OOM kill would leave.
const CrashEnv = "PREDABS_CRASH_COMMIT"

// crashHook implements CrashEnv. Called with the commit ordinal and the
// marshaled payload BEFORE the real frame is written; on a torn-mode
// match it performs the partial write itself and then kills the process.
func crashHook(commit int, f File, payload []byte) {
	v := os.Getenv(CrashEnv)
	if v == "" {
		return
	}
	spec, torn := strings.CutSuffix(v, ":torn")
	n, err := strconv.Atoi(spec)
	if err != nil || n != commit {
		return
	}
	if torn {
		var hdr [frameOverhead]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		f.Write(hdr[:])
		f.Write(payload[:len(payload)/2]) // half a record, then the lights go out
		f.Sync()
		kill()
	}
	// Full-commit mode: let the real write+sync happen, then die on the
	// next hook entry — simplest is to write here ourselves and kill.
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	f.Write(hdr[:])
	f.Write(payload)
	f.Sync()
	kill()
}

func kill() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	// SIGKILL is not deliverable to self synchronously in all cases;
	// block forever rather than continue past the crash point.
	select {}
}
