package checkpoint

import (
	"io"
	"os"
)

// File is the slice of *os.File the framed logs use. Everything a log
// does to its backing file goes through this interface, so a test
// filesystem (internal/faultinject's FaultFS) can interpose ENOSPC,
// failed fsyncs, short writes and read errors at exactly the syscalls a
// failing disk would corrupt.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Sync() error
	Truncate(size int64) error
}

// FS is the filesystem seam under every durable predabs store: the
// CEGAR journal, the daemon ledger, the per-job event logs, the fleet
// ledger and the cache store. The default implementation (OSFS) is the
// real filesystem; fault-injecting implementations wrap it to prove the
// durability layer degrades soundly when the disk itself misbehaves.
//
// The surface is deliberately small — open/append-oriented file access
// plus the directory and rename operations compaction needs — so a
// faulty implementation covers every byte the stores persist.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// MkdirAll creates path and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Rename atomically replaces newpath with oldpath (the compaction
	// commit point: a crash before it keeps the old generation, after it
	// the new one — never a torn mix).
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Stat reports path's metadata (store size gauges read it).
	Stat(path string) (os.FileInfo, error)
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }

// OSFS returns the real filesystem, the default for every durable
// store when no fault-injecting FS is configured.
func OSFS() FS { return osFS{} }

// orOS returns fsys, defaulting a nil seam to the real filesystem so
// zero-value configs keep today's behavior.
func orOS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}
