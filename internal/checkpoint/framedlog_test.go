package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testLogMagic = "PREDABSTLOG\x00"

func openTestLog(t *testing.T, path string) (*Log, []string) {
	t.Helper()
	var got []string
	l, err := OpenLog(path, testLogMagic, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	return l, got
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "events.log")
	l, got := openTestLog(t, path)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	want := []string{"one", "two", `{"type":"three"}`}
	for _, r := range want {
		if err := l.Append([]byte(r)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, got = openTestLog(t, path)
	defer l.Close()
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("replay mismatch: got %q want %q", got, want)
	}
	if len(l.Warnings()) != 0 {
		t.Fatalf("unexpected warnings: %v", l.Warnings())
	}
	// Appends after a replayed open land after the existing records.
	if err := l.Append([]byte("four")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got = openTestLog(t, path)
	if len(got) != 4 || got[3] != "four" {
		t.Fatalf("post-replay append lost: %q", got)
	}
}

func TestLogTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, _ := openTestLog(t, path)
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the last record: a torn append.
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	l, got := openTestLog(t, path)
	defer l.Close()
	if len(got) != 2 || got[1] != "record-1" {
		t.Fatalf("torn tail replay: got %q, want the first two records", got)
	}
	if len(l.Warnings()) == 0 {
		t.Fatal("torn tail repaired without a warning")
	}
	// The truncation is durable: the next append starts a clean record.
	if err := l.Append([]byte("replacement")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got = openTestLog(t, path)
	if len(got) != 3 || got[2] != "replacement" {
		t.Fatalf("append after repair: got %q", got)
	}
}

func TestLogBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	if err := os.WriteFile(path, []byte("NOTTHELOGFMT-and-some-content"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenLog(path, testLogMagic, nil)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("bad magic: got %v, want *CorruptError", err)
	}
}
