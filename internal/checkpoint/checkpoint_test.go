package checkpoint

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/prover"
)

func testKey() CompatKey {
	return CompatKey{
		Tool: "slam", Version: "test", Program: "void main() {}", Spec: "x > 0",
		Entry: "main", MaxCubeLen: 3,
	}
}

func testRecord(iter int) IterationRecord {
	return IterationRecord{
		Iter: iter,
		Pool: []ScopePreds{
			{Scope: "<global>", Preds: []string{"x > 0"}},
			{Scope: "main", Preds: []string{"y == x", "y > 0"}},
		},
		Sigs: []abstract.SigRecord{{Proc: "main", Ef: []string{"b0"}, Er: []string{"b1"}}},
		Cache: []prover.CacheEntry{
			{Key: "U\x00a", Val: false},
			{Key: "V\x00h\x00g", Val: true},
		},
		Counters: Counters{ProverCalls: 10 * iter, CacheHits: iter, CheckIterations: iter},
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	m, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendIteration(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	rec2 := testRecord(2)
	rec2.Cache = append(rec2.Cache, prover.CacheEntry{Key: "U\x00b", Val: true})
	if err := m.AppendIteration(rec2); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendFinal("Unknown", "deadline"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, key, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	snap := re.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot after replay")
	}
	if snap.Iter != 2 {
		t.Errorf("Iter = %d, want 2", snap.Iter)
	}
	if len(snap.Pool) != 2 || snap.Pool[1].Scope != "main" || len(snap.Pool[1].Preds) != 2 {
		t.Errorf("pool not replayed: %+v", snap.Pool)
	}
	if len(snap.Sigs) != 1 || snap.Sigs[0].Proc != "main" {
		t.Errorf("sigs not replayed: %+v", snap.Sigs)
	}
	// Union of both spills, canonical (sorted) order.
	if len(snap.Cache) != 3 {
		t.Fatalf("cache union = %d entries, want 3: %+v", len(snap.Cache), snap.Cache)
	}
	for i := 1; i < len(snap.Cache); i++ {
		if snap.Cache[i-1].Key >= snap.Cache[i].Key {
			t.Errorf("cache not in canonical order at %d", i)
		}
	}
	if snap.Counters.ProverCalls != 20 {
		t.Errorf("counters = %+v, want ProverCalls 20", snap.Counters)
	}
	if snap.Outcome != "Unknown" {
		t.Errorf("outcome = %q, want Unknown", snap.Outcome)
	}
	if len(re.Warnings()) != 0 {
		t.Errorf("unexpected warnings: %v", re.Warnings())
	}
}

func TestDeltaSpill(t *testing.T) {
	dir := t.TempDir()
	m, err := Create(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.AppendIteration(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	st1, _ := os.Stat(filepath.Join(dir, JournalName))
	// Same cache again: the second record's spill must be empty, so the
	// growth is just the (cache-free) record.
	if err := m.AppendIteration(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	st2, _ := os.Stat(filepath.Join(dir, JournalName))
	growth := st2.Size() - st1.Size()
	rec := testRecord(1)
	if growth <= 0 || growth > st1.Size() {
		t.Errorf("second commit grew journal by %d bytes (first record region %d); delta spill not applied for %d cache entries",
			growth, st1.Size(), len(rec.Cache))
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	m, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendIteration(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendIteration(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	m.Close()

	path := filepath.Join(dir, JournalName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the last record: a torn append.
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, key, false)
	if err != nil {
		t.Fatalf("torn tail must not fail open: %v", err)
	}
	defer re.Close()
	snap := re.Snapshot()
	if snap == nil || snap.Iter != 1 {
		t.Fatalf("want resume from iteration 1 after torn tail, got %+v", snap)
	}
	if len(re.Warnings()) == 0 {
		t.Error("torn-tail truncation should be reported in Warnings")
	}
	// The repair must leave a journal that appends and replays cleanly.
	if err := re.AppendIteration(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := Open(dir, key, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if snap := re2.Snapshot(); snap == nil || snap.Iter != 2 {
		t.Fatalf("want iteration 2 after repaired append, got %+v", snap)
	}
}

func TestBitFlipTruncatesFromFlip(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	m, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AppendIteration(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	off, _ := m.f.Seek(0, io.SeekEnd)
	if err := m.AppendIteration(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendIteration(testRecord(3)); err != nil {
		t.Fatal(err)
	}
	m.Close()

	path := filepath.Join(dir, JournalName)
	raw, _ := os.ReadFile(path)
	raw[off+frameOverhead+3] ^= 0x40 // flip a bit inside record 2's payload
	os.WriteFile(path, raw, 0o644)

	re, err := Open(dir, key, false)
	if err != nil {
		t.Fatalf("bit flip must not fail open: %v", err)
	}
	defer re.Close()
	// Record 3 came after the corrupted record 2: neither is trusted.
	if snap := re.Snapshot(); snap == nil || snap.Iter != 1 {
		t.Fatalf("want resume from iteration 1 after mid-file bit flip, got %+v", snap)
	}
	if len(re.Warnings()) == 0 {
		t.Error("bit-flip truncation should be reported in Warnings")
	}
}

func TestBadMagicIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	m, _ := Create(dir, key)
	m.AppendIteration(testRecord(1))
	m.Close()
	path := filepath.Join(dir, JournalName)
	raw, _ := os.ReadFile(path)
	raw[0] ^= 0xFF
	os.WriteFile(path, raw, 0o644)

	_, err := Open(dir, key, false)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want CorruptError for bad magic, got %v", err)
	}
}

func TestWrongKeyIsIncompatible(t *testing.T) {
	dir := t.TempDir()
	m, _ := Create(dir, testKey())
	m.AppendIteration(testRecord(1))
	m.Close()

	other := testKey()
	other.Program = "void main() { int x; }"
	_, err := Open(dir, other, false)
	var ie *IncompatibleError
	if !errors.As(err, &ie) {
		t.Fatalf("want IncompatibleError for different program, got %v", err)
	}
}

func TestCompatKeyFields(t *testing.T) {
	base := testKey()
	perturb := []struct {
		name string
		f    func(*CompatKey)
	}{
		{"Tool", func(k *CompatKey) { k.Tool = "c2bp" }},
		{"Version", func(k *CompatKey) { k.Version = "other" }},
		{"Program", func(k *CompatKey) { k.Program = "x" }},
		{"Spec", func(k *CompatKey) { k.Spec = "y" }},
		{"Entry", func(k *CompatKey) { k.Entry = "init" }},
		{"MaxCubeLen", func(k *CompatKey) { k.MaxCubeLen++ }},
		{"CubeBudget", func(k *CompatKey) { k.CubeBudget = 7 }},
		{"BDDMaxNodes", func(k *CompatKey) { k.BDDMaxNodes = 7 }},
		{"Extra", func(k *CompatKey) { k.Extra = "nocone" }},
	}
	for _, p := range perturb {
		k := base
		p.f(&k)
		if k.Hash() == base.Hash() {
			t.Errorf("perturbing %s did not change the compatibility hash", p.name)
		}
	}
	// Injective encoding: shifting a boundary between adjacent fields
	// must not collide.
	a := CompatKey{Program: "ab", Spec: "c"}
	b := CompatKey{Program: "a", Spec: "bc"}
	if a.Hash() == b.Hash() {
		t.Error("field-boundary shift collides — encoding not injective")
	}
}

func TestReadOnlyMode(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	m, _ := Create(dir, key)
	m.AppendIteration(testRecord(1))
	m.Close()
	path := filepath.Join(dir, JournalName)
	before, _ := os.ReadFile(path)

	ro, err := Open(dir, key, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ro.ReadOnly() {
		t.Error("ReadOnly() = false")
	}
	if snap := ro.Snapshot(); snap == nil || snap.Iter != 1 {
		t.Fatalf("read-only open must still replay, got %+v", snap)
	}
	if err := ro.AppendIteration(testRecord(2)); err != nil {
		t.Fatal(err)
	}
	if err := ro.AppendFinal("Verified", ""); err != nil {
		t.Fatal(err)
	}
	ro.Close()
	after, _ := os.ReadFile(path)
	if string(before) != string(after) {
		t.Error("read-only manager modified the journal")
	}
}

func TestReadOnlyMissingJournal(t *testing.T) {
	dir := t.TempDir()
	ro, err := Open(dir, testKey(), true)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if ro.Snapshot() != nil {
		t.Error("missing journal should give a nil snapshot")
	}
	if _, err := os.Stat(filepath.Join(dir, JournalName)); !os.IsNotExist(err) {
		t.Error("read-only open of a missing journal must not create one")
	}
}

func TestOpenMissingCreates(t *testing.T) {
	dir := t.TempDir()
	key := testKey()
	m, err := Open(dir, key, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Snapshot() != nil {
		t.Error("fresh journal should have nil snapshot")
	}
	m.AppendIteration(testRecord(1))
	m.Close()
	re, err := Open(dir, key, false)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if snap := re.Snapshot(); snap == nil || snap.Iter != 1 {
		t.Fatalf("want iteration 1, got %+v", snap)
	}
}

func TestNilManagerSafe(t *testing.T) {
	var m *Manager
	if err := m.AppendIteration(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendFinal("Verified", ""); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot() != nil || m.Warnings() != nil || m.Commits() != 0 || m.Err() != nil || m.ReadOnly() || m.Path() != "" {
		t.Error("nil manager accessors must be inert")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
