package checkpoint

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predabs/internal/abstract"
	"predabs/internal/alias"
	"predabs/internal/cnorm"
	"predabs/internal/cparse"
	"predabs/internal/ctype"
	"predabs/internal/prover"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSource/goldenPreds are a fixed subject whose signatures and
// prover-cache content must serialize identically forever: the
// compatibility hash and the byte-identical-resume guarantee both ride
// on this canonical form. If this test fails after a refactor of the
// Signature computation or the cache export, the journal format has
// changed — bump formatVersion rather than updating the golden file in
// place.
const goldenSource = `
int lock;
void acquire() { assume(lock == 0); lock = 1; }
void release() { assume(lock == 1); lock = 0; }
void main(int n) {
	int got;
	got = 0;
	if (n > 0) {
		acquire();
		got = 1;
	}
	if (got == 1) {
		release();
	}
	assert(lock == 0);
}
`

const goldenPreds = `
global:
  lock == 0, lock == 1
main:
  n > 0, got == 1
`

func goldenAbstraction(t *testing.T) (*abstract.Result, *cnorm.Result, *prover.Prover) {
	t.Helper()
	prog, err := cparse.Parse(goldenSource)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ctype.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cnorm.Normalize(info)
	if err != nil {
		t.Fatal(err)
	}
	aa := alias.Analyze(res)
	secs, err := cparse.ParsePredFile(goldenPreds)
	if err != nil {
		t.Fatal(err)
	}
	pv := prover.New()
	abs, err := abstract.Abstract(res, aa, pv, secs, abstract.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return abs, res, pv
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden form — the checkpoint journal format changed.\n got:\n%s\nwant:\n%s", name, got, string(want))
	}
}

// TestGoldenSignatureRecords pins the canonical serialized form of
// per-procedure signatures (E_f/E_r) — procedure order is program
// order, predicate order is predicate-file order.
func TestGoldenSignatureRecords(t *testing.T) {
	abs, res, _ := goldenAbstraction(t)
	var procOrder []string
	for _, f := range res.Prog.Funcs {
		procOrder = append(procOrder, f.Name)
	}
	recs := abstract.SignatureRecords(abs.Sigs, procOrder)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "signatures.json", string(data)+"\n")
}

// TestGoldenCacheExport pins the prover-cache export: canonical (sorted
// by key) ordering and the exact key encoding, independent of shard
// layout and of the order queries were issued in.
func TestGoldenCacheExport(t *testing.T) {
	_, _, pv := goldenAbstraction(t)
	entries := pv.ExportCache()
	if len(entries) == 0 {
		t.Fatal("abstraction issued no cacheable queries")
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Key >= entries[i].Key {
			t.Fatalf("export not sorted at %d: %q >= %q", i, entries[i-1].Key, entries[i].Key)
		}
	}
	var sb strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&sb, "%t %q\n", e.Val, e.Key)
	}
	checkGolden(t, "cache_export.txt", sb.String())
}

// TestGoldenCacheRoundTrip: importing an export reproduces it exactly —
// the identity the warm-start path depends on.
func TestGoldenCacheRoundTrip(t *testing.T) {
	_, _, pv := goldenAbstraction(t)
	entries := pv.ExportCache()
	fresh := prover.New()
	fresh.ImportCache(entries)
	back := fresh.ExportCache()
	if len(back) != len(entries) {
		t.Fatalf("round trip changed size: %d -> %d", len(entries), len(back))
	}
	for i := range entries {
		if back[i] != entries[i] {
			t.Fatalf("round trip changed entry %d: %+v -> %+v", i, entries[i], back[i])
		}
	}
	if fresh.CacheSize() != len(entries) {
		t.Fatalf("CacheSize = %d, want %d", fresh.CacheSize(), len(entries))
	}
}
