package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Log is a minimal append-only durable record log with the journal's
// frame discipline — magic prefix, length+CRC32 framing, fsync per
// append, torn-tail truncation on open — but none of the journal's
// replay semantics. predabsd's job ledger is built on it; anything that
// needs crash-safe ordered records can reuse it.
//
// A Log's corruption contract matches the journal's: a record is either
// replayed intact or it (and everything after it) is discarded, so a
// crash mid-append can lose at most the record being written, never
// corrupt an earlier one.
type Log struct {
	path     string
	f        *os.File
	warnings []string
}

// OpenLog opens (or creates) the framed log at path, whose first bytes
// must be magic (pad or terminate it so no valid log with a different
// schema shares a prefix). Every intact record payload is passed to
// replay in append order. A torn or corrupted tail is truncated with a
// warning; a file whose magic does not match is a *CorruptError — the
// caller decides whether to delete and recreate.
func OpenLog(path, magic string, replay func(payload []byte)) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("log: %w", err)
	}
	l := &Log{path: path, f: f}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("log: %w", err)
	}
	if size == 0 {
		// Fresh file: stamp the magic durably before any record.
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("log: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("log: %w", err)
		}
		return l, nil
	}
	buf := make([]byte, len(magic))
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != magic {
		f.Close()
		return nil, &CorruptError{Path: path, Detail: "bad magic"}
	}
	offset := int64(len(magic))
	for {
		payload, n, err := readFrame(f, offset)
		if err == io.EOF {
			break
		}
		if err != nil {
			l.warnings = append(l.warnings,
				fmt.Sprintf("log tail invalid at offset %d (%v): truncated to last good record", offset, err))
			if terr := f.Truncate(offset); terr != nil {
				f.Close()
				return nil, fmt.Errorf("log: repairing torn tail: %w", terr)
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return nil, fmt.Errorf("log: repairing torn tail: %w", serr)
			}
			break
		}
		if replay != nil {
			replay(payload)
		}
		offset += n
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("log: %w", err)
	}
	return l, nil
}

// Warnings lists the torn-tail repairs performed on open.
func (l *Log) Warnings() []string {
	if l == nil {
		return nil
	}
	return append([]string(nil), l.warnings...)
}

// Path returns the log's file path.
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Append durably writes one record: framed, then fsynced before
// returning. Callers serialize their own appends (the ledger holds its
// mutex across Append).
func (l *Log) Append(payload []byte) error {
	if l == nil || l.f == nil {
		return fmt.Errorf("log: closed")
	}
	if err := appendFrame(l.f, payload); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("log: %w", err)
	}
	return nil
}

// ReplayLog reads the framed log at path strictly read-only: every
// intact record payload is passed to replay in append order, and a torn
// or invalid tail simply ends the replay — it is NOT truncated. This is
// the accessor for concurrent readers (predabsd's event-stream handlers
// read a log its worker may be appending to right now): an in-progress
// append looks like a torn tail, and repairing it from the reader would
// corrupt the writer's next frame. A missing file surfaces as the
// os.Open error; a bad magic is a *CorruptError.
func ReplayLog(path, magic string, replay func(payload []byte)) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, len(magic))
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != magic {
		return &CorruptError{Path: path, Detail: "bad magic"}
	}
	offset := int64(len(magic))
	for {
		payload, n, err := readFrame(f, offset)
		if err != nil {
			// io.EOF is the clean end; anything else is a torn or
			// in-progress tail, which a reader must leave alone.
			return nil
		}
		if replay != nil {
			replay(payload)
		}
		offset += n
	}
}

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
