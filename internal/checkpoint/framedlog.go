package checkpoint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Log is a minimal append-only durable record log with the journal's
// frame discipline — magic prefix, length+CRC32 framing, fsync per
// append, torn-tail truncation on open — but none of the journal's
// replay semantics. predabsd's job ledger is built on it; anything that
// needs crash-safe ordered records can reuse it.
//
// A Log's corruption contract matches the journal's: a record is either
// replayed intact or it (and everything after it) is discarded, so a
// crash mid-append can lose at most the record being written, never
// corrupt an earlier one.
//
// Append failures are sticky: once a frame write or fsync fails, the
// on-disk tail is untrusted (a partial or unsynced frame may precede
// any new one), so every later Append fails fast with the original
// error. Err exposes that state; owners surface it as a
// persistence-degraded condition and keep serving from memory.
type Log struct {
	path     string
	fsys     FS
	f        File
	size     int64 // bytes of trusted log prefix (magic + intact frames)
	failed   error // first append/sync error; sticky
	warnings []string
}

// OpenLog opens (or creates) the framed log at path, whose first bytes
// must be magic (pad or terminate it so no valid log with a different
// schema shares a prefix). Every intact record payload is passed to
// replay in append order. A torn or corrupted tail is truncated with a
// warning; a file whose magic does not match is a *CorruptError — the
// caller decides whether to delete and recreate.
func OpenLog(path, magic string, replay func(payload []byte)) (*Log, error) {
	return OpenLogFS(nil, path, magic, replay)
}

// OpenLogFS is OpenLog over an explicit filesystem seam; a nil fsys is
// the real filesystem.
func OpenLogFS(fsys FS, path, magic string, replay func(payload []byte)) (*Log, error) {
	fsys = orOS(fsys)
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("log: %w", err)
	}
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("log: %w", err)
	}
	l := &Log{path: path, fsys: fsys, f: f}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("log: %w", err)
	}
	if size == 0 {
		// Fresh file: stamp the magic durably before any record.
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, fmt.Errorf("log: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("log: %w", err)
		}
		l.size = int64(len(magic))
		return l, nil
	}
	buf := make([]byte, len(magic))
	if _, err := f.ReadAt(buf, 0); err != nil {
		f.Close()
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// Shorter than the magic: no valid log starts this way.
			return nil, &CorruptError{Path: path, Detail: "bad magic"}
		}
		// A device read error is not corruption: quarantining (or
		// recreating) here would destroy a log that is probably fine.
		return nil, fmt.Errorf("log: reading magic: %w", err)
	}
	if string(buf) != magic {
		f.Close()
		return nil, &CorruptError{Path: path, Detail: "bad magic"}
	}
	offset := int64(len(magic))
	for {
		payload, n, err := readFrame(f, offset)
		if err == io.EOF {
			break
		}
		if err != nil {
			if ioErr := readIOError(err); ioErr != nil {
				// A real read error (EIO, not a torn frame): truncating
				// here could discard good durable records, so fail the
				// open instead of "repairing".
				f.Close()
				return nil, fmt.Errorf("log: reading record at offset %d: %w", offset, ioErr)
			}
			l.warnings = append(l.warnings,
				fmt.Sprintf("log tail invalid at offset %d (%v): truncated to last good record", offset, err))
			if terr := f.Truncate(offset); terr != nil {
				f.Close()
				return nil, fmt.Errorf("log: repairing torn tail: %w", terr)
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return nil, fmt.Errorf("log: repairing torn tail: %w", serr)
			}
			break
		}
		if replay != nil {
			replay(payload)
		}
		offset += n
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("log: %w", err)
	}
	l.size = offset
	return l, nil
}

// Warnings lists the torn-tail repairs performed on open.
func (l *Log) Warnings() []string {
	if l == nil {
		return nil
	}
	return append([]string(nil), l.warnings...)
}

// Path returns the log's file path.
func (l *Log) Path() string {
	if l == nil {
		return ""
	}
	return l.path
}

// Size returns the trusted on-disk size in bytes: the magic plus every
// intact frame replayed on open or appended (and fsynced) since.
// Callers serialize Size with their own appends, same as Append.
func (l *Log) Size() int64 {
	if l == nil {
		return 0
	}
	return l.size
}

// Err returns the first append/sync error, or nil. Once non-nil the log
// is persistence-degraded: the tail is untrusted and every Append fails
// fast with this error. Callers serialize Err with their own appends.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	return l.failed
}

// Append durably writes one record: framed, then fsynced before
// returning. Callers serialize their own appends (the ledger holds its
// mutex across Append). After any failure the log is degraded: the tail
// may hold a partial or unsynced frame, so later Appends fail fast with
// the original error rather than stacking frames after garbage.
func (l *Log) Append(payload []byte) error {
	if l == nil || l.f == nil {
		return fmt.Errorf("log: closed")
	}
	if l.failed != nil {
		return l.failed
	}
	if err := appendFrame(l.f, payload); err != nil {
		l.failed = err
		return err
	}
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("log: %w", err)
		return l.failed
	}
	l.size += frameOverhead + int64(len(payload))
	return nil
}

// ReplayLog reads the framed log at path strictly read-only: every
// intact record payload is passed to replay in append order, and a torn
// or invalid tail simply ends the replay — it is NOT truncated. This is
// the accessor for concurrent readers (predabsd's event-stream handlers
// read a log its worker may be appending to right now): an in-progress
// append looks like a torn tail, and repairing it from the reader would
// corrupt the writer's next frame. A missing file surfaces as the
// open error (satisfying errors.Is(err, fs.ErrNotExist)); a bad magic
// is a *CorruptError.
func ReplayLog(path, magic string, replay func(payload []byte)) error {
	return ReplayLogFS(nil, path, magic, replay)
}

// ReplayLogFS is ReplayLog over an explicit filesystem seam; a nil fsys
// is the real filesystem.
func ReplayLogFS(fsys FS, path, magic string, replay func(payload []byte)) error {
	f, err := orOS(fsys).OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, len(magic))
	if _, err := f.ReadAt(buf, 0); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return &CorruptError{Path: path, Detail: "bad magic"}
		}
		return fmt.Errorf("log: reading magic: %w", err)
	}
	if string(buf) != magic {
		return &CorruptError{Path: path, Detail: "bad magic"}
	}
	offset := int64(len(magic))
	for {
		payload, n, err := readFrame(f, offset)
		if err != nil {
			// io.EOF is the clean end; anything else is a torn or
			// in-progress tail, which a reader must leave alone.
			return nil
		}
		if replay != nil {
			replay(payload)
		}
		offset += n
	}
}

// RewriteLog atomically replaces the framed log at path with a new
// generation holding exactly payloads, in order: the frames are written
// to a sibling temp file, fsynced, and renamed onto path. The rename is
// the commit point — a crash (or an injected fault) before it leaves
// the old generation intact, after it the new one; no schedule can
// surface a torn mix. This is the one rewrite primitive behind every
// store's compaction/rotation (ledger snapshots, event-log retention,
// fleet ledger folds, cache generations). Any open handle on the old
// generation keeps reading the old inode, so a concurrent ReplayLogFS
// reader never observes the swap mid-file.
func RewriteLog(fsys FS, path, magic string, payloads [][]byte) error {
	fsys = orOS(fsys)
	tmp := path + ".rewrite"
	f, err := fsys.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("log rewrite: %w", err)
	}
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		return cleanup(fmt.Errorf("log rewrite: %w", err))
	}
	for _, payload := range payloads {
		if err := appendFrame(f, payload); err != nil {
			return cleanup(fmt.Errorf("log rewrite: %w", err))
		}
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("log rewrite: %w", err))
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("log rewrite: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("log rewrite: %w", err)
	}
	return nil
}

// Close syncs and closes the log file. A degraded log skips the final
// sync (it would fail again) and just releases the handle.
func (l *Log) Close() error {
	if l == nil || l.f == nil {
		return nil
	}
	var err error
	if l.failed == nil {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
