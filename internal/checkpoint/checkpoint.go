// Package checkpoint makes the SLAM refinement loop crash-safe: an
// append-only, checksummed on-disk journal records, per CEGAR iteration,
// the predicate pool, the per-procedure signatures (E_f/E_r) and a spill
// of the prover's memo cache. A later run pointed at the same state
// directory validates the journal, replays the last good iteration and
// continues from there with a warm prover cache — a resumed run produces
// byte-identical final reports to an uninterrupted one.
//
// # Journal format
//
// One file, journal.predabs, inside the state directory:
//
//	magic "PREDABSJNL1\x00"                       (12 bytes)
//	record*                                       (append-only)
//
//	record := len(u32 LE) | crc32(u32 LE) | payload
//
// where crc32 is IEEE over the payload bytes and the payload is one JSON
// object discriminated by "type": a "header" record (format version +
// compatibility hash) first, then "iteration" records (one per commit
// point) and "final" records (run outcome). Iteration records spill the
// prover cache as a delta against everything already journaled, so the
// file grows with new verdicts only.
//
// # Corruption handling
//
// Every record is validated by length and CRC on replay. A torn or
// corrupted record — a crash mid-append, a truncated file, a flipped bit
// — invalidates that record and EVERYTHING after it: the journal is
// truncated back to the last good record and the run resumes from the
// most recent intact commit. A corrupted magic/header, or a
// compatibility-hash mismatch (different program, spec, tool version or
// deterministic limit flags), rejects the whole journal with a typed
// error so the caller can fall back to a cold start with a clear
// diagnostic. Nothing after a checksum failure is ever trusted.
//
// # Soundness under crashes
//
// The journal only ever persists facts that are independent of the
// crash schedule: the predicate pool (candidate predicates are
// heuristics — any pool yields a sound abstraction), signatures
// (recomputed on resume; journaled for diagnosis and format pinning)
// and fully decided prover verdicts. Verdicts abandoned on a wall-clock
// timeout or a cancellation are never cached in memory (internal/prover)
// and therefore never reach disk, so no kill/resume schedule can launder
// a degraded "could not prove" — much less upgrade a buggy program to
// Verified. The kill/resume chaos harness in internal/faultinject
// asserts this against the soundness oracle.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"predabs/internal/abstract"
	"predabs/internal/prover"
)

// JournalName is the journal's file name inside the state directory.
const JournalName = "journal.predabs"

// magic identifies a predabs checkpoint journal (format 1).
const magic = "PREDABSJNL1\x00"

// maxRecordLen bounds one record's payload, so a corrupted length field
// cannot drive a huge allocation.
const maxRecordLen = 1 << 28

// CorruptError reports a journal whose magic or header cannot be
// trusted; the caller should cold-start (Create) with a diagnostic.
type CorruptError struct {
	Path   string
	Detail string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("checkpoint: %s: corrupted journal (%s)", e.Path, e.Detail)
}

// IncompatibleError reports a valid journal written for a different
// (program, spec, tool version, limit flags) combination.
type IncompatibleError struct {
	Path string
	Want string
	Got  string
}

func (e *IncompatibleError) Error() string {
	return fmt.Sprintf("checkpoint: %s: journal belongs to a different run (compatibility hash %.12s…, want %.12s…)",
		e.Path, e.Got, e.Want)
}

// ScopePreds is one scope's predicate pool slice, in insertion order —
// the order the CEGAR loop replays it in, so a resumed pool is
// indistinguishable from the live one.
type ScopePreds struct {
	Scope string   `json:"scope"`
	Preds []string `json:"preds"`
}

// Counters are the cumulative deterministic run counters at a commit
// point; a resumed run adds its own deltas on top so final reports
// match an uninterrupted run's.
type Counters struct {
	ProverCalls           int            `json:"prover_calls"`
	CacheHits             int            `json:"cache_hits"`
	CheckIterations       int            `json:"check_iterations"`
	CheckIterationsByProc map[string]int `json:"check_iterations_by_proc,omitempty"`

	// Model-enumeration engine counters, all zero (and omitted from the
	// journal) under the default cube engine.
	ProverSessions  int `json:"prover_sessions,omitempty"`
	SessionChecks   int `json:"session_checks,omitempty"`
	ModelsExtracted int `json:"models_extracted,omitempty"`
	BlockingClauses int `json:"blocking_clauses,omitempty"`
}

// IterationRecord is one commit point: the full state needed to resume
// the CEGAR loop after this iteration. Cache carries the FULL prover
// cache at the boundary; the Manager spills only the delta against
// records already journaled.
type IterationRecord struct {
	Iter     int
	Pool     []ScopePreds
	Sigs     []abstract.SigRecord
	Cache    []prover.CacheEntry
	Counters Counters
}

// Snapshot is the replayed journal state: the last good iteration
// record plus the union of every cache spill.
type Snapshot struct {
	// Iter is the last committed iteration; resume starts at Iter+1.
	Iter int
	Pool []ScopePreds
	Sigs []abstract.SigRecord
	// Cache is the union of all journaled spills, in canonical (sorted
	// by key) order.
	Cache    []prover.CacheEntry
	Counters Counters
	// Outcome is the last journaled final outcome ("" if the previous
	// run never completed).
	Outcome string
}

// journal payload shapes (the on-disk JSON).
type headerPayload struct {
	Type    string `json:"type"` // "header"
	Version int    `json:"version"`
	Tool    string `json:"tool"`
	Hash    string `json:"hash"`
}

type iterationPayload struct {
	Type     string               `json:"type"` // "iteration"
	Iter     int                  `json:"iter"`
	Pool     []ScopePreds         `json:"pool"`
	Sigs     []abstract.SigRecord `json:"sigs,omitempty"`
	Cache    []prover.CacheEntry  `json:"cache"`
	Counters Counters             `json:"counters"`
}

type finalPayload struct {
	Type    string `json:"type"` // "final"
	Outcome string `json:"outcome"`
	Limit   string `json:"limit,omitempty"`
}

// formatVersion is the journal payload schema version; bumped on any
// incompatible change (it also feeds the compatibility hash).
const formatVersion = 1

// Manager owns one open journal: it replays existing state on Open and
// appends commit records durably (each append is fsynced before it
// returns). Safe for concurrent use, though the CEGAR loop commits from
// a single goroutine.
type Manager struct {
	path     string
	fsys     FS
	readOnly bool

	mu        sync.Mutex
	f         File
	persisted map[string]bool // cache keys already journaled
	snap      *Snapshot
	warnings  []string
	commits   int
	lastErr   error
	degraded  error // first frame-write/fsync failure; sticky
}

// Open validates and replays the journal under dir for the given
// compatibility key. A missing journal is created fresh (cold start). A
// journal whose magic/header cannot be validated returns *CorruptError;
// a valid journal for a different key returns *IncompatibleError — in
// both cases the caller decides whether to Create over it. A torn or
// corrupted tail is truncated (never trusted) and noted in Warnings;
// replay resumes from the last intact record.
//
// readOnly opens for warm-start only: nothing is written, not even the
// truncation repair of a torn tail (the tail is simply ignored).
func Open(dir string, key CompatKey, readOnly bool) (*Manager, error) {
	return OpenFS(nil, dir, key, readOnly)
}

// OpenFS is Open over an explicit filesystem seam; a nil fsys is the
// real filesystem.
func OpenFS(fsys FS, dir string, key CompatKey, readOnly bool) (*Manager, error) {
	fsys = orOS(fsys)
	path := filepath.Join(dir, JournalName)
	if _, err := fsys.Stat(path); errors.Is(err, os.ErrNotExist) {
		if readOnly {
			// Nothing to resume and nothing may be written: an inert
			// manager whose commits are no-ops.
			return &Manager{path: path, fsys: fsys, readOnly: true, persisted: map[string]bool{}}, nil
		}
		return CreateFS(fsys, dir, key)
	}
	flag := os.O_RDWR
	if readOnly {
		flag = os.O_RDONLY
	}
	f, err := fsys.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m := &Manager{path: path, fsys: fsys, f: f, readOnly: readOnly, persisted: map[string]bool{}}
	if err := m.replay(key); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

// Create starts a fresh journal under dir (truncating any previous
// one), writing the magic and the header record for the key.
func Create(dir string, key CompatKey) (*Manager, error) {
	return CreateFS(nil, dir, key)
}

// CreateFS is Create over an explicit filesystem seam; a nil fsys is
// the real filesystem.
func CreateFS(fsys FS, dir string, key CompatKey) (*Manager, error) {
	fsys = orOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	path := filepath.Join(dir, JournalName)
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	m := &Manager{path: path, fsys: fsys, f: f, persisted: map[string]bool{}}
	hdr, err := json.Marshal(headerPayload{Type: "header", Version: formatVersion, Tool: key.Tool, Hash: key.Hash()})
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if err := m.writeFrame(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return m, nil
}

// replay validates the magic and header, then folds every intact record
// into the snapshot, truncating a bad tail.
func (m *Manager) replay(key CompatKey) error {
	buf := make([]byte, len(magic))
	if _, err := m.f.ReadAt(buf, 0); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return &CorruptError{Path: m.path, Detail: "bad magic"}
		}
		// A device read error is not corruption: recreating over the
		// journal would discard commit points that are probably intact.
		return fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if string(buf) != magic {
		return &CorruptError{Path: m.path, Detail: "bad magic"}
	}
	hdrPayload, _, err := readFrame(m.f, int64(len(magic)))
	if err != nil {
		if ioErr := readIOError(err); ioErr != nil {
			return fmt.Errorf("checkpoint: reading header record: %w", ioErr)
		}
		return &CorruptError{Path: m.path, Detail: "unreadable header record"}
	}
	var hdr headerPayload
	if json.Unmarshal(hdrPayload, &hdr) != nil || hdr.Type != "header" {
		return &CorruptError{Path: m.path, Detail: "malformed header record"}
	}
	if hdr.Version != formatVersion {
		return &CorruptError{Path: m.path, Detail: fmt.Sprintf("journal format version %d, want %d", hdr.Version, formatVersion)}
	}
	if want := key.Hash(); hdr.Hash != want {
		return &IncompatibleError{Path: m.path, Want: want, Got: hdr.Hash}
	}

	offset := int64(len(magic)) + frameOverhead + int64(len(hdrPayload))
	var last *iterationPayload
	outcome := ""
	for {
		payload, n, err := readFrame(m.f, offset)
		if err == io.EOF {
			break
		}
		if err != nil {
			if ioErr := readIOError(err); ioErr != nil {
				// A real read error (EIO, not a torn frame): truncating
				// here could discard good durable records, so fail the
				// open instead of "repairing".
				return fmt.Errorf("checkpoint: reading record at offset %d: %w", offset, ioErr)
			}
			// Torn or corrupted tail: truncate back to the last good
			// record (append must start from a trusted prefix) and stop
			// trusting anything beyond it.
			m.warnings = append(m.warnings,
				fmt.Sprintf("journal tail invalid at offset %d (%v): truncated to last good record", offset, err))
			if !m.readOnly {
				if terr := m.f.Truncate(offset); terr != nil {
					return fmt.Errorf("checkpoint: repairing torn tail: %w", terr)
				}
				if serr := m.f.Sync(); serr != nil {
					return fmt.Errorf("checkpoint: repairing torn tail: %w", serr)
				}
			}
			break
		}
		var probe struct {
			Type string `json:"type"`
		}
		if json.Unmarshal(payload, &probe) == nil {
			switch probe.Type {
			case "iteration":
				var it iterationPayload
				if json.Unmarshal(payload, &it) == nil && it.Iter > 0 {
					for _, e := range it.Cache {
						m.persisted[e.Key] = e.Val
					}
					last = &it
				}
			case "final":
				var fin finalPayload
				if json.Unmarshal(payload, &fin) == nil {
					outcome = fin.Outcome
				}
			}
		}
		offset += n
	}
	if _, err := m.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if last != nil {
		snap := &Snapshot{
			Iter:     last.Iter,
			Pool:     last.Pool,
			Sigs:     last.Sigs,
			Counters: last.Counters,
			Outcome:  outcome,
		}
		snap.Cache = make([]prover.CacheEntry, 0, len(m.persisted))
		for k, v := range m.persisted {
			snap.Cache = append(snap.Cache, prover.CacheEntry{Key: k, Val: v})
		}
		sort.Slice(snap.Cache, func(i, j int) bool { return snap.Cache[i].Key < snap.Cache[j].Key })
		m.snap = snap
	}
	return nil
}

// Snapshot returns the replayed resume state, or nil when the journal
// held no committed iteration (cold start).
func (m *Manager) Snapshot() *Snapshot {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snap
}

// Warnings lists non-fatal journal repairs (torn-tail truncations)
// performed on Open.
func (m *Manager) Warnings() []string {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.warnings...)
}

// Path returns the journal file path ("" for an inert manager).
func (m *Manager) Path() string {
	if m == nil {
		return ""
	}
	return m.path
}

// ReadOnly reports whether commits are disabled (-no-persist).
func (m *Manager) ReadOnly() bool { return m != nil && m.readOnly }

// Commits reports how many iteration records this manager appended.
func (m *Manager) Commits() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commits
}

// Err returns the first append error, if any. Persistence failures
// never abort the verification run; callers surface them at exit.
func (m *Manager) Err() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastErr
}

// AppendIteration durably commits one iteration record: the cache spill
// is reduced to the delta against everything already journaled, the
// frame is appended, and the file is fsynced before returning. Nil
// managers and read-only managers are no-ops.
func (m *Manager) AppendIteration(rec IterationRecord) error {
	if m == nil || m.readOnly {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	if m.degraded != nil {
		return m.degraded
	}
	delta := make([]prover.CacheEntry, 0, 16)
	for _, e := range rec.Cache {
		if _, ok := m.persisted[e.Key]; !ok {
			delta = append(delta, e)
		}
	}
	payload, err := json.Marshal(iterationPayload{
		Type: "iteration", Iter: rec.Iter, Pool: rec.Pool, Sigs: rec.Sigs,
		Cache: delta, Counters: rec.Counters,
	})
	if err != nil {
		m.lastErr = err
		return err
	}
	m.commits++
	crashHook(m.commits, m.f, payload)
	if err := m.writeFrame(payload); err != nil {
		m.fail(err)
		return err
	}
	if err := m.f.Sync(); err != nil {
		m.fail(err)
		return err
	}
	for _, e := range delta {
		m.persisted[e.Key] = e.Val
	}
	return nil
}

// fail records a frame-write or fsync failure. The journal tail is now
// untrusted (a partial or unsynced frame may precede any new one), so
// the degraded state is sticky: every later append fails fast with the
// original error. Persistence stays best-effort — the verification run
// continues and surfaces Err at exit; only durability is lost.
func (m *Manager) fail(err error) {
	m.lastErr = err
	if m.degraded == nil {
		m.degraded = err
	}
}

// AppendFinal durably journals the run outcome (and the limit that
// stopped it, if any). Called on every loop exit, including the
// deadline retreat, so a -timeout run's last commit is flushed before
// the process exits 2.
func (m *Manager) AppendFinal(outcome, limit string) error {
	if m == nil || m.readOnly {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	if m.degraded != nil {
		return m.degraded
	}
	payload, err := json.Marshal(finalPayload{Type: "final", Outcome: outcome, Limit: limit})
	if err != nil {
		m.lastErr = err
		return err
	}
	if err := m.writeFrame(payload); err != nil {
		m.fail(err)
		return err
	}
	if err := m.f.Sync(); err != nil {
		m.fail(err)
		return err
	}
	return nil
}

// Close syncs and closes the journal.
func (m *Manager) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.f == nil {
		return nil
	}
	var err error
	if !m.readOnly && m.degraded == nil {
		err = m.f.Sync()
	}
	if cerr := m.f.Close(); err == nil {
		err = cerr
	}
	m.f = nil
	return err
}

// frameOverhead is the per-record framing cost: u32 length + u32 CRC.
const frameOverhead = 8

// FrameOverhead is frameOverhead for store owners sizing their own
// rotation/compaction targets (bytes per record = payload + overhead).
const FrameOverhead = frameOverhead

// writeFrame appends one length-prefixed, checksummed record. The
// caller holds m.mu and syncs afterwards.
func (m *Manager) writeFrame(payload []byte) error {
	return appendFrame(m.f, payload)
}

// appendFrame writes one length-prefixed, checksummed record at f's
// current offset; shared by the journal and the generic Log.
func appendFrame(f File, payload []byte) error {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := f.Write(hdr[:]); err != nil {
		return fmt.Errorf("checkpoint: append: %w", err)
	}
	if _, err := f.Write(payload); err != nil {
		return fmt.Errorf("checkpoint: append: %w", err)
	}
	return nil
}

// readError marks a real device read failure (EIO), as opposed to the
// structural torn-frame errors that replay repairs by truncation.
// Truncating a log because the disk failed to *read* it would destroy
// good durable records, so the two must never be conflated.
type readError struct{ err error }

func (e *readError) Error() string { return e.err.Error() }
func (e *readError) Unwrap() error { return e.err }

// readIOError returns the underlying device error when err is a real
// read failure from readFrame, or nil for structural (torn/corrupt)
// errors and io.EOF.
func readIOError(err error) error {
	var re *readError
	if errors.As(err, &re) {
		return re.err
	}
	return nil
}

// readFrame reads the record at offset, validating length and CRC. It
// returns the payload and the total frame size. A structural violation
// — short header, oversized length, short payload, checksum mismatch —
// comes back as a plain non-EOF error (a torn tail the caller may
// repair); a device read failure comes back as a *readError (which the
// caller must NOT repair by truncation); a clean end-of-file is io.EOF.
func readFrame(f File, offset int64) (payload []byte, size int64, err error) {
	var hdr [frameOverhead]byte
	n, err := f.ReadAt(hdr[:], offset)
	if n == 0 && err == io.EOF {
		return nil, 0, io.EOF
	}
	if err != nil && err != io.EOF {
		return nil, 0, &readError{err}
	}
	if n < frameOverhead {
		return nil, 0, fmt.Errorf("torn record header")
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxRecordLen {
		return nil, 0, fmt.Errorf("implausible record length %d", length)
	}
	payload = make([]byte, length)
	if _, err := f.ReadAt(payload, offset+frameOverhead); err != nil {
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			return nil, 0, &readError{err}
		}
		return nil, 0, fmt.Errorf("torn record payload")
	}
	if crc32.ChecksumIEEE(payload) != want {
		return nil, 0, fmt.Errorf("checksum mismatch")
	}
	return payload, frameOverhead + int64(length), nil
}
