// Disk-chaos tests for the framed-log substrate: every durable store in
// the system (job journal, server ledger, per-job event logs, fleet
// ledger, cache store) rides checkpoint.Log or the journal Manager, so
// the invariants pinned here — acked records survive any injected disk
// fault, appends degrade stickily instead of corrupting, read errors
// never masquerade as corruption, and generation rewrites commit
// atomically — are the floor under all five owners' own chaos suites.
package checkpoint_test

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predabs/internal/checkpoint"
	"predabs/internal/faultinject"
)

// storeMagics mirrors the five durable stores' file formats. The tests
// run the same fault matrix over each: the substrate must behave
// identically no matter which owner's magic stamps the file.
var storeMagics = []struct{ name, magic string }{
	{"journal", "PREDABSJNL1\x00"},
	{"ledger", "PREDABSLGR1\x00"},
	{"events", "PREDABSEVT1\x00"},
	{"fleet", "PREDABSFLT1\x00"},
	{"cache", "PREDABSCACHE1\x00"},
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf(`{"rec":%d,"body":"disk-chaos payload %d"}`, i, i))
}

// runFaultedAppends opens a log at path through ffs and appends records
// until the schedule fires (or maxRecords land). It returns the number
// of acked appends and the first append error (nil if none fired).
func runFaultedAppends(t *testing.T, ffs checkpoint.FS, path, magic string, maxRecords int) (int, error) {
	t.Helper()
	log, err := checkpoint.OpenLogFS(ffs, path, magic, nil)
	if err != nil {
		t.Fatalf("OpenLogFS: %v", err)
	}
	defer log.Close()
	acked := 0
	for i := 0; i < maxRecords; i++ {
		if err := log.Append(payloadFor(acked)); err != nil {
			// Sticky degradation: the same error, fast, forever after.
			if log.Err() == nil {
				t.Fatalf("Append failed (%v) but Err() is nil", err)
			}
			if err2 := log.Append(payloadFor(acked)); err2 == nil {
				t.Fatalf("Append succeeded after a sticky failure")
			}
			return acked, err
		}
		acked++
	}
	return acked, nil
}

// replayAll reopens path on the clean filesystem and returns the
// replayed payloads plus the open warnings.
func replayAll(t *testing.T, path, magic string) ([]string, []string) {
	t.Helper()
	var got []string
	log, err := checkpoint.OpenLog(path, magic, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	warnings := log.Warnings()
	if err := log.Close(); err != nil {
		t.Fatalf("close after clean reopen: %v", err)
	}
	return got, warnings
}

// checkPrefix asserts the replayed records are exactly a prefix of the
// attempted sequence, at least acked long — the no-wrong-record,
// no-lost-ack oracle shared by the whole matrix.
func checkPrefix(t *testing.T, got []string, acked, attempted int) {
	t.Helper()
	if len(got) < acked {
		t.Fatalf("replay lost acked records: got %d, acked %d", len(got), acked)
	}
	if len(got) > attempted {
		t.Fatalf("replay invented records: got %d, attempted %d", len(got), attempted)
	}
	for i, p := range got {
		if want := string(payloadFor(i)); p != want {
			t.Fatalf("record %d corrupted: got %q want %q", i, p, want)
		}
	}
}

// TestDiskChaosLogFaultMatrix walks deterministic op-count schedules of
// every write-path fault kind across every store magic: each run must
// end in sticky degradation (never a panic, never a wrong ack), and a
// clean restart must recover an intact prefix containing every acked
// record.
func TestDiskChaosLogFaultMatrix(t *testing.T) {
	const maxRecords = 8
	schedules := []struct {
		name string
		cfg  func(n int64) faultinject.FSConfig
	}{
		{"write-fail", func(n int64) faultinject.FSConfig {
			return faultinject.FSConfig{FailWriteAfter: n, Sticky: true}
		}},
		{"short-write", func(n int64) faultinject.FSConfig {
			return faultinject.FSConfig{ShortWriteAfter: n, Sticky: true}
		}},
		{"sync-fail", func(n int64) faultinject.FSConfig {
			return faultinject.FSConfig{FailSyncAfter: n, Sticky: true}
		}},
	}
	for _, store := range storeMagics {
		for _, sched := range schedules {
			for n := int64(2); n <= 6; n++ {
				name := fmt.Sprintf("%s/%s/op%d", store.name, sched.name, n)
				t.Run(name, func(t *testing.T) {
					path := filepath.Join(t.TempDir(), "chaos.predabs")
					ffs := faultinject.NewFS(nil, sched.cfg(n))
					acked, ferr := runFaultedAppends(t, ffs, path, store.magic, maxRecords)
					if ferr == nil && ffs.InjectedTotal() > 0 {
						t.Fatalf("fault fired but no append failed")
					}
					attempted := acked
					if ferr != nil {
						attempted++ // the failed append may be partially durable
					}
					got, _ := replayAll(t, path, store.magic)
					checkPrefix(t, got, acked, attempted)
				})
			}
		}
	}
}

// TestDiskChaosLogSeededRates drives the FNV-rolled probabilistic
// schedule across seeds: whatever subset of faults a seed fires, the
// substrate invariants hold, and the same seed fires the identical
// schedule when replayed.
func TestDiskChaosLogSeededRates(t *testing.T) {
	const maxRecords = 16
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			run := func(dir string) (int, int64) {
				path := filepath.Join(dir, "chaos.predabs")
				ffs := faultinject.NewFS(nil, faultinject.FSConfig{
					Seed:           seed,
					WriteFailRate:  0.05,
					ShortWriteRate: 0.05,
					SyncFailRate:   0.05,
					Sticky:         true,
				})
				log, err := checkpoint.OpenLogFS(ffs, path, "PREDABSLGR1\x00", nil)
				if err != nil {
					// The schedule killed the fresh-file magic write/sync:
					// a valid outcome (the owner fails startup), encoded as
					// acked -1 for the determinism comparison.
					return -1, ffs.InjectedTotal()
				}
				acked := 0
				var ferr error
				for i := 0; i < maxRecords; i++ {
					if ferr = log.Append(payloadFor(acked)); ferr != nil {
						break
					}
					acked++
				}
				log.Close()
				attempted := acked
				if ferr != nil {
					attempted++
				}
				got, _ := replayAll(t, path, "PREDABSLGR1\x00")
				checkPrefix(t, got, acked, attempted)
				return acked, ffs.InjectedTotal()
			}
			acked1, fired1 := run(t.TempDir())
			acked2, fired2 := run(t.TempDir())
			if acked1 != acked2 || fired1 != fired2 {
				t.Fatalf("seed %d not deterministic: (%d acked, %d fired) vs (%d, %d)",
					seed, acked1, fired1, acked2, fired2)
			}
		})
	}
}

// TestDiskChaosReadErrorFailsOpenWithoutTruncation pins the EIO-vs-torn
// distinction: a device read error during open must fail the open — for
// every read offset in the file — and must never truncate, so a later
// healthy open still sees every record.
func TestDiskChaosReadErrorFailsOpenWithoutTruncation(t *testing.T) {
	const records = 4
	path := filepath.Join(t.TempDir(), "chaos.predabs")
	magic := "PREDABSLGR1\x00"
	if acked, err := runFaultedAppends(t, nil, path, magic, records); err != nil || acked != records {
		t.Fatalf("seeding: acked %d, err %v", acked, err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	sizeBefore := info.Size()

	// Reads during open: 1 is the magic, then one header + one payload
	// read per record. Fail each in turn.
	for n := int64(1); n <= 1+2*records; n++ {
		ffs := faultinject.NewFS(nil, faultinject.FSConfig{FailReadAfter: n})
		_, oerr := checkpoint.OpenLogFS(ffs, path, magic, nil)
		if oerr == nil {
			t.Fatalf("read fault at op %d: open succeeded", n)
		}
		var corrupt *checkpoint.CorruptError
		if errors.As(oerr, &corrupt) {
			t.Fatalf("read fault at op %d misreported as corruption: %v", n, oerr)
		}
		if info, err := os.Stat(path); err != nil || info.Size() != sizeBefore {
			t.Fatalf("read fault at op %d changed the file: size %d -> %d (%v)",
				n, sizeBefore, info.Size(), err)
		}
	}
	got, warnings := replayAll(t, path, magic)
	if len(warnings) != 0 {
		t.Fatalf("healthy reopen warned: %v", warnings)
	}
	checkPrefix(t, got, records, records)
}

// TestDiskChaosShortWriteLeavesRepairableTail pins the torn-tail shape:
// after a short write the reopen repairs with a warning, and the acked
// prefix survives exactly.
func TestDiskChaosShortWriteLeavesRepairableTail(t *testing.T) {
	for _, store := range storeMagics {
		t.Run(store.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "chaos.predabs")
			// Seed two records cleanly so the torn frame has durable
			// neighbors to threaten.
			if acked, err := runFaultedAppends(t, nil, path, store.magic, 2); err != nil || acked != 2 {
				t.Fatalf("seeding: acked %d, err %v", acked, err)
			}
			ffs := faultinject.NewFS(nil, faultinject.FSConfig{ShortWriteAfter: 1, Sticky: true})
			log, err := checkpoint.OpenLogFS(ffs, path, store.magic, nil)
			if err != nil {
				t.Fatalf("OpenLogFS: %v", err)
			}
			if err := log.Append([]byte(`{"rec":2,"torn":true}`)); err == nil {
				t.Fatalf("short write did not fail the append")
			}
			log.Close()

			got, warnings := replayAll(t, path, store.magic)
			if len(warnings) == 0 {
				t.Fatalf("torn tail repaired without a warning")
			}
			checkPrefix(t, got, 2, 2)
			if len(got) != 2 {
				t.Fatalf("torn record leaked into replay: %d records", len(got))
			}
		})
	}
}

// TestDiskChaosRewriteRenameFailKeepsOldGeneration pins the compaction
// commit point: a rename fault aborts RewriteLog, the old generation
// stays byte-identical, and the temp file does not linger.
func TestDiskChaosRewriteRenameFailKeepsOldGeneration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.predabs")
	magic := "PREDABSCACHE1\x00"
	if acked, err := runFaultedAppends(t, nil, path, magic, 3); err != nil || acked != 3 {
		t.Fatalf("seeding: acked %d, err %v", acked, err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	ffs := faultinject.NewFS(nil, faultinject.FSConfig{FailRenameAfter: 1})
	rewritten := [][]byte{[]byte(`{"gen":2}`)}
	if err := checkpoint.RewriteLog(ffs, path, magic, rewritten); err == nil {
		t.Fatalf("rename fault did not abort the rewrite")
	}
	after, err := os.ReadFile(path)
	if err != nil || string(after) != string(before) {
		t.Fatalf("aborted rewrite changed the old generation (err %v)", err)
	}
	if _, err := os.Stat(path + ".rewrite"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("temp generation left behind: %v", err)
	}

	// The same rewrite on a healthy disk commits atomically.
	if err := checkpoint.RewriteLog(nil, path, magic, rewritten); err != nil {
		t.Fatalf("clean rewrite: %v", err)
	}
	var got []string
	if err := checkpoint.ReplayLog(path, magic, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatalf("replay new generation: %v", err)
	}
	if len(got) != 1 || got[0] != `{"gen":2}` {
		t.Fatalf("new generation replayed %v", got)
	}
}

// TestDiskChaosJournalManagerFaults runs the fault matrix over the full
// journal Manager: iteration commits degrade stickily, and a clean
// restart resumes from a committed iteration boundary with every acked
// commit intact.
func TestDiskChaosJournalManagerFaults(t *testing.T) {
	key := checkpoint.CompatKey{Tool: "slam", Version: "test", Program: "void main() {}", Entry: "main"}
	for _, sched := range []struct {
		name string
		cfg  faultinject.FSConfig
	}{
		{"write-fail", faultinject.FSConfig{FailWriteAfter: 9, Sticky: true}},
		{"short-write", faultinject.FSConfig{ShortWriteAfter: 9, Sticky: true}},
		{"sync-fail", faultinject.FSConfig{FailSyncAfter: 5, Sticky: true}},
	} {
		t.Run(sched.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultinject.NewFS(nil, sched.cfg)
			m, err := checkpoint.CreateFS(ffs, dir, key)
			if err != nil {
				t.Fatalf("CreateFS: %v", err)
			}
			acked := 0
			var ferr error
			for i := 1; i <= 8; i++ {
				rec := checkpoint.IterationRecord{
					Iter: i,
					Pool: []checkpoint.ScopePreds{{Scope: "main", Preds: []string{fmt.Sprintf("x>%d", i)}}},
				}
				if ferr = m.AppendIteration(rec); ferr != nil {
					// Sticky: the next commit fails fast with the same error.
					if err2 := m.AppendIteration(rec); err2 == nil {
						t.Fatalf("commit succeeded after sticky failure")
					} else if !strings.Contains(err2.Error(), ferr.Error()) && err2.Error() != ferr.Error() {
						t.Logf("note: sticky error differs: %v vs %v", err2, ferr)
					}
					break
				}
				acked = i
			}
			m.Close()
			if ferr == nil {
				t.Fatalf("schedule never fired; raise the trigger count")
			}

			m2, err := checkpoint.Open(dir, key, false)
			if err != nil {
				t.Fatalf("clean reopen: %v", err)
			}
			defer m2.Close()
			snap := m2.Snapshot()
			if snap == nil {
				t.Fatalf("no snapshot after reopen")
			}
			if snap.Iter < acked || snap.Iter > acked+1 {
				t.Fatalf("resumed at iteration %d; acked %d", snap.Iter, acked)
			}
			if snap.Iter > 0 {
				// The resumed pool must be the one committed at snap.Iter.
				want := fmt.Sprintf("x>%d", snap.Iter)
				if len(snap.Pool) != 1 || len(snap.Pool[0].Preds) == 0 ||
					snap.Pool[0].Preds[len(snap.Pool[0].Preds)-1] != want {
					t.Fatalf("resumed pool %v does not match iteration %d", snap.Pool, snap.Iter)
				}
			}
		})
	}
}
