package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CompatKey identifies what a journal is valid FOR. Two runs may share a
// journal only when every field matches: same program text, same spec,
// same entry point, same tool and version, and the same values for the
// deterministic limits (they change which verdicts the run computes and
// caches).
//
// Deliberately excluded:
//
//   - The worker count -j: results are j-independent (the determinism
//     tests pin that), and a run checkpointed at one -j must resume at
//     any other.
//   - The wall-clock limits -timeout/-query-timeout: their degradations
//     are environmental and never persisted, so differing wall-clock
//     budgets cannot make journaled state stale.
//   - The iteration budget -maxiters: it only decides when the loop
//     STOPS — the state committed at any iteration boundary is
//     identical for every value — and the prime resume use case is
//     continuing a budget-stopped run with a larger budget.
type CompatKey struct {
	Tool    string // "slam", "c2bp", "bebop"
	Version string
	Program string // full source text
	Spec    string // predicate/spec file text ("" when none)
	Entry   string

	// MaxCubeLen changes which cube queries the search enumerates;
	// CubeBudget and BDDMaxNodes change which deterministic
	// budget-degraded verdicts get computed (and, for the cube budget,
	// cached). All three therefore pin the journal.
	MaxCubeLen  int
	CubeBudget  int64
	BDDMaxNodes int64

	// AbsEngine pins the abstraction engine (-abs-engine). The engines
	// emit byte-identical boolean programs on non-degraded runs, but they
	// populate the persisted prover cache with different key sets and
	// degrade differently under budgets, so a journal written by one must
	// not warm-start the other. Callers normalize "" to "cubes" so the
	// default spelled explicitly and implicitly hashes the same.
	AbsEngine string

	// Extra fingerprints tool-specific deterministic knobs that have no
	// dedicated field (e.g. c2bp's -nocone/-noenforce).
	Extra string
}

// Hash returns the compatibility hash: a hex SHA-256 over an injective
// encoding of every field (length-prefixed, so no concatenation of
// fields can collide with another split).
func (k CompatKey) Hash() string {
	h := sha256.New()
	put := func(s string) {
		fmt.Fprintf(h, "%d:", len(s))
		h.Write([]byte(s))
	}
	put(fmt.Sprintf("predabs-journal-v%d", formatVersion))
	put(k.Tool)
	put(k.Version)
	put(k.Program)
	put(k.Spec)
	put(k.Entry)
	put(fmt.Sprintf("%d/%d/%d", k.MaxCubeLen, k.CubeBudget, k.BDDMaxNodes))
	put(k.AbsEngine)
	put(k.Extra)
	return hex.EncodeToString(h.Sum(nil))
}
